// Package mrapid_test hosts the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation. Each benchmark
// regenerates its experiment on the simulated cluster and reports the
// headline numbers (virtual completion times and improvement percentages)
// as custom benchmark metrics.
//
// Benchmarks default to a reduced input scale so `go test -bench=.` stays
// responsive on a laptop; set MRAPID_BENCH_SCALE=1 to reproduce the paper's
// full input sizes (the numbers recorded in EXPERIMENTS.md), or use
// `go run ./cmd/mrapid-bench` which defaults to full scale.
package mrapid_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"mrapid/internal/bench"
	"mrapid/internal/mapreduce"
	"mrapid/internal/workloads"
)

// benchScale reads MRAPID_BENCH_SCALE (default 0.25).
func benchScale() float64 {
	if s := os.Getenv("MRAPID_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.25
}

// runFigure drives one registered experiment b.N times and reports metrics.
func runFigure(b *testing.B, id string) *bench.Figure {
	b.Helper()
	run, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := bench.Options{Scale: benchScale(), Seed: 1}
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// reportModeMetrics attaches the figure's headline comparisons to the
// benchmark output: mean completion seconds per mode (virtual) and the mean
// improvement percentages the paper quotes.
func reportModeMetrics(b *testing.B, fig *bench.Figure) {
	b.Helper()
	means := map[string]float64{}
	for _, c := range fig.Columns {
		var sum float64
		for i := range fig.Points {
			sum += fig.Get(i, c)
		}
		means[c] = sum / float64(len(fig.Points))
		b.ReportMetric(means[c], c+"-vsec")
	}
	if h, okH := means["hadoop"]; okH && h > 0 {
		if d, ok := means["dplus"]; ok {
			b.ReportMetric((h-d)/h*100, "D+improv%")
		}
	}
	if u, okU := means["uber"]; okU && u > 0 {
		if up, ok := means["uplus"]; ok {
			b.ReportMetric((u-up)/u*100, "U+improv%")
		}
	}
}

// BenchmarkTable2InstanceCatalog reproduces Table II (the Azure instance
// catalog backing every cluster configuration).
func BenchmarkTable2InstanceCatalog(b *testing.B) {
	fig := runFigure(b, "table2")
	if len(fig.Points) != 3 {
		b.Fatalf("catalog rows = %d", len(fig.Points))
	}
}

// BenchmarkFig07WordCountFileCount reproduces Figure 7: WordCount on the
// A3 cluster with 10 MB files, file count 1→16, all four modes.
func BenchmarkFig07WordCountFileCount(b *testing.B) {
	reportModeMetrics(b, runFigure(b, "fig7"))
}

// BenchmarkFig08WordCountFileSize reproduces Figure 8: WordCount with 4
// files of 5→40 MB.
func BenchmarkFig08WordCountFileSize(b *testing.B) {
	reportModeMetrics(b, runFigure(b, "fig8"))
}

// BenchmarkFig09WordCountFixedTotal reproduces Figure 9: 60 MB total input
// split across 2→4 files.
func BenchmarkFig09WordCountFixedTotal(b *testing.B) {
	reportModeMetrics(b, runFigure(b, "fig9"))
}

// BenchmarkFig10TeraSort reproduces Figure 10: TeraSort over 100k→1600k
// rows in 4 blocks.
func BenchmarkFig10TeraSort(b *testing.B) {
	reportModeMetrics(b, runFigure(b, "fig10"))
}

// BenchmarkFig11Pi reproduces Figure 11: PI over 100m→1600m samples.
func BenchmarkFig11Pi(b *testing.B) {
	reportModeMetrics(b, runFigure(b, "fig11"))
}

// BenchmarkFig12ContainersPerCore reproduces Figure 12: 1 vs 2 containers
// per core on the A2 cluster.
func BenchmarkFig12ContainersPerCore(b *testing.B) {
	reportModeMetrics(b, runFigure(b, "fig12"))
}

// BenchmarkFig13ClusterShape reproduces Figure 13: equal-cost 10-node A2 vs
// 5-node A3 clusters.
func BenchmarkFig13ClusterShape(b *testing.B) {
	fig := runFigure(b, "fig13")
	for _, c := range fig.Columns {
		var sum float64
		for i := range fig.Points {
			sum += fig.Get(i, c)
		}
		b.ReportMetric(sum/float64(len(fig.Points)), c+"-vsec")
	}
}

// BenchmarkFig14DPlusAblation reproduces Figure 14: the contribution of
// each D+ optimization (scheduler, AM pool, locality, communication).
func BenchmarkFig14DPlusAblation(b *testing.B) {
	fig := runFigure(b, "fig14")
	base := fig.Points[0].Seconds["elapsed"]
	final := fig.Points[len(fig.Points)-1].Seconds["elapsed"]
	b.ReportMetric(base, "stock-vsec")
	b.ReportMetric(final, "dplus-vsec")
	if base > 0 {
		b.ReportMetric((base-final)/base*100, "improv%")
	}
}

// BenchmarkFig15UPlusAblation reproduces Figure 15: the contribution of
// each U+ optimization (parallel maps, AM pool, memory cache,
// communication).
func BenchmarkFig15UPlusAblation(b *testing.B) {
	fig := runFigure(b, "fig15")
	base := fig.Points[0].Seconds["elapsed"]
	final := fig.Points[len(fig.Points)-1].Seconds["elapsed"]
	b.ReportMetric(base, "uber-vsec")
	b.ReportMetric(final, "uplus-vsec")
	if base > 0 {
		b.ReportMetric((base-final)/base*100, "improv%")
	}
}

// BenchmarkAblationEstimator validates the decision maker's cost model
// (Equations 2–3, supplementary to §III-C): across the Figure 7 sweep it
// reports how often the estimated winner matches the measured winner.
func BenchmarkAblationEstimator(b *testing.B) {
	fig := runFigure(b, "estimator")
	for _, c := range fig.Columns {
		var sum float64
		for i := range fig.Points {
			sum += fig.Get(i, c)
		}
		b.ReportMetric(sum/float64(len(fig.Points)), c)
	}
}

// runParallelWorkload executes one 8-split distributed WordCount with the
// given host parallelism and returns its virtual completion seconds plus
// the host wall-clock seconds spent inside the simulation. Only the job
// execution is timed; building the simulation and generating input are
// setup. The shared map cache is disabled so every map actually computes —
// this benchmark measures host-side execution, not memoization.
func runParallelWorkload(b *testing.B, hostWorkers int) (vsec, hostSec float64) {
	b.Helper()
	b.StopTimer()
	setup := bench.A3x4()
	setup.HostWorkers = hostWorkers
	variant := bench.VariantHadoop()
	env, err := bench.NewEnv(setup, variant)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	env.RT.MapCache = nil
	names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/wc", workloads.WordCountConfig{
		Files: 8, FileBytes: int64(16 * (1 << 20) * benchScale()), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := workloads.WordCountSpec("wordcount", names, "/out", true)
	b.StartTimer()
	start := time.Now()
	res, err := env.Run(variant, spec)
	hostSec = time.Since(start).Seconds()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Profile == nil || res.Profile.Elapsed() <= 0 {
		b.Fatal("empty profile")
	}
	b.StartTimer()
	return res.Profile.Elapsed().Seconds(), hostSec
}

// BenchmarkParallelMapExecution measures the host wall-clock effect of the
// parallel execution layer (Runtime.Workers) on an 8-split WordCount: the
// sequential and parallel sub-benchmarks simulate the identical job — same
// virtual timeline, byte-identical output — differing only in how many OS
// threads execute the pure map/reduce computations.
//
// The parent benchmark reports the resulting speedup× (sequential wall
// time / parallel wall time) and the worker count it was measured with.
// The speedup scales with real cores: on a single-core host (workers=1)
// there is nothing to overlap and the ratio degrades to ~1×.
func BenchmarkParallelMapExecution(b *testing.B) {
	var seqVsec, parVsec, seqHost, parHost float64
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, h := runParallelWorkload(b, 0)
			seqVsec, seqHost = v, seqHost+h
		}
		b.ReportMetric(seqVsec, "vsec")
		seqHost /= float64(b.N)
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, h := runParallelWorkload(b, -1)
			parVsec, parHost = v, parHost+h
		}
		b.ReportMetric(parVsec, "vsec")
		parHost /= float64(b.N)
		if seqHost > 0 && parHost > 0 {
			b.ReportMetric(seqHost/parHost, "speedup×")
			b.ReportMetric(float64(mapreduce.DefaultWorkers()), "workers")
		}
	})
	if seqVsec != 0 && parVsec != 0 && seqVsec != parVsec {
		b.Fatalf("virtual time diverged: sequential %.4f vsec, parallel %.4f vsec", seqVsec, parVsec)
	}
}

// BenchmarkAblationSpeculation measures the cost/benefit of the speculative
// dual-mode executor itself (not a paper figure; §III-C's mechanism):
// first-run speculation vs a history-guided second run of the same program.
func BenchmarkAblationSpeculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		first, second, err := bench.SpeculationOverhead(bench.Options{Scale: benchScale(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(first, "speculative-vsec")
		b.ReportMetric(second, "history-vsec")
	}
}
