package mrapid_test

import (
	"strings"
	"testing"

	"mrapid/internal/bench"
)

// TestRegistrySmoke checks every registered experiment is wired (ID, runner,
// description) and that the cheapest one actually runs, so `go test ./...`
// exercises the top-level harness without paying for a full sweep.
func TestRegistrySmoke(t *testing.T) {
	if len(bench.Registry) < 11 {
		t.Fatalf("registry has %d experiments", len(bench.Registry))
	}
	seen := map[string]bool{}
	for _, r := range bench.Registry {
		if r.ID == "" || r.Run == nil || r.Short == "" {
			t.Fatalf("registry entry %+v incomplete", r.ID)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment %q", r.ID)
		}
		seen[r.ID] = true
		if _, ok := bench.Lookup(r.ID); !ok {
			t.Fatalf("Lookup(%q) failed", r.ID)
		}
	}
	fig, err := bench.TableII(bench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := bench.Render(&b, fig); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A1", "A2", "A3", "0.36"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("rendered Table II missing %q", want)
		}
	}
}
