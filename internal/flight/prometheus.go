package flight

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
)

// WritePrometheus dumps the recorder in Prometheus text exposition format:
// every retained sample of every virtual-clock series, with millisecond
// timestamps on the virtual timeline, followed by the registry's
// histograms (cumulative _bucket/_sum/_count form). The full history makes
// the dump double as the recorder's canonical series artifact — two
// deterministic runs must produce byte-identical output — while still
// being scrapeable/parsable as Prometheus data. The host-side
// self-profiler lane is deliberately absent.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	typed := make(map[string]bool)
	writeType := func(bare, kind string) {
		if !typed[bare] {
			typed[bare] = true
			bw.WriteString("# TYPE " + bare + " " + kind + "\n")
		}
	}

	// Series, grouped under their bare metric name so each # TYPE header
	// is emitted once, keys and groups both sorted.
	for _, key := range r.SeriesNames() {
		name, labels := metrics.ParseSeries(key)
		kind := "gauge"
		if strings.HasSuffix(name, "_total") {
			kind = "counter"
		}
		writeType(name, kind)
		line := name + promLabels(labels)
		for _, s := range r.series[key].Samples() {
			bw.WriteString(line)
			bw.WriteByte(' ')
			bw.WriteString(promFloat(s.Value))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(promMillis(s.At), 10))
			bw.WriteByte('\n')
		}
	}

	// Registry histograms, in the cumulative form Prometheus expects.
	hists := r.reg.Histograms()
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := hists[key]
		name, labels := metrics.ParseSeries(key)
		writeType(name, "histogram")
		var cum int64
		for i, bound := range h.Buckets {
			cum += h.Counts[i]
			bw.WriteString(name + "_bucket" + promLabels(append(labels, metrics.Label{Key: "le", Value: promFloat(bound)})))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(name + "_bucket" + promLabels(append(labels, metrics.Label{Key: "le", Value: "+Inf"})))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(h.Count, 10))
		bw.WriteByte('\n')
		bw.WriteString(name + "_sum" + promLabels(labels) + " " + promFloat(h.Sum) + "\n")
		bw.WriteString(name + "_count" + promLabels(labels) + " " + strconv.FormatInt(h.Count, 10) + "\n")
	}

	return bw.Flush()
}

// promMillis converts a virtual instant to the exposition format's
// millisecond timestamp.
func promMillis(t sim.Time) int64 { return int64(t) / 1e6 }

// promFloat renders a float the way Prometheus text format does.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabels renders a label set as {k="v",...} with exposition-format
// escaping, or "" when empty. The input labels carry the already-unescaped
// values from metrics.ParseSeries, so a tenant named `a=b` round-trips
// into tenant="a=b" here rather than aliasing another series.
func promLabels(labels []metrics.Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promLabelEscaper.Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
