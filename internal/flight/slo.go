package flight

import (
	"fmt"
	"sort"
	"time"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// SLOConfig defines one service-level objective applied uniformly to every
// tenant: an admission queue-wait target plus an error budget that both
// over-target waits and missed deadlines burn against.
type SLOConfig struct {
	// TargetWait is the per-job queue-wait objective: an admission whose
	// wait exceeds it is a bad event. Zero disables the tracker.
	TargetWait time.Duration

	// MissBudget is the tolerated bad-event fraction (e.g. 0.1 = 10% of
	// events may violate the objective). Zero means 0.1.
	MissBudget float64

	// Windows are the virtual-time lookback windows burn rates are
	// computed over. Nil means 30s, 2m, 10m.
	Windows []time.Duration

	// BurnAlert is the burn-rate threshold that opens a breach span (burn
	// 1.0 = consuming exactly the budget). Zero means 1.0.
	BurnAlert float64
}

func (c SLOConfig) enabled() bool { return c.TargetWait > 0 }

func (c SLOConfig) withDefaults() SLOConfig {
	if c.MissBudget <= 0 {
		c.MissBudget = 0.1
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{30 * time.Second, 2 * time.Minute, 10 * time.Minute}
	}
	if c.BurnAlert <= 0 {
		c.BurnAlert = 1.0
	}
	return c
}

// sloEvent is one budget-relevant occurrence: a job admission (bad when the
// wait blew the target) or a job completion (bad when it missed its
// deadline).
type sloEvent struct {
	at  sim.Time
	bad bool
}

// tenantSLO is one tenant's rolling SLO state.
type tenantSLO struct {
	name   string
	events []sloEvent // time-ordered, pruned to the longest window
	waits  *metrics.Histogram

	total, bad int64 // lifetime

	breachOpen map[time.Duration]trace.SpanID
	breaches   int64

	// Series names are label-escaped once on first sample, not per tick.
	nP99, nEvents, nBad, nBreach string
	nBurn                        map[time.Duration]string
}

// seriesNames builds the tenant's recorder series keys once.
func (ts *tenantSLO) seriesNames(windows []time.Duration) {
	if ts.nP99 != "" {
		return
	}
	ts.nP99 = metrics.With("slo_queue_wait_p99_seconds", "tenant", ts.name)
	ts.nEvents = metrics.With("slo_events_total", "tenant", ts.name)
	ts.nBad = metrics.With("slo_bad_events_total", "tenant", ts.name)
	ts.nBreach = metrics.With("slo_breach_total", "tenant", ts.name)
	ts.nBurn = make(map[time.Duration]string, len(windows))
	for _, w := range windows {
		ts.nBurn[w] = metrics.With("slo_burn_rate", "tenant", ts.name, "window", w.String())
	}
}

// SLOTracker watches per-tenant queue waits and deadline misses and turns
// them into multi-window burn rates. It implements core.AdmissionObserver
// structurally (JobAdmitted / JobCompleted), so a JobServer feeds it
// directly.
type SLOTracker struct {
	cfg     SLOConfig
	eng     *sim.Engine
	tlog    *trace.Log
	tenants map[string]*tenantSLO
}

// NewSLOTracker builds a tracker; the trace log may be nil (breach spans
// are then skipped).
func NewSLOTracker(eng *sim.Engine, tlog *trace.Log, cfg SLOConfig) *SLOTracker {
	return &SLOTracker{
		cfg:     cfg.withDefaults(),
		eng:     eng,
		tlog:    tlog,
		tenants: make(map[string]*tenantSLO),
	}
}

// Config reports the tracker's effective (defaulted) configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

func (t *SLOTracker) tenant(name string) *tenantSLO {
	ts := t.tenants[name]
	if ts == nil {
		ts = &tenantSLO{
			name: name,
			waits: &metrics.Histogram{
				Buckets: metrics.DefaultDurationBuckets,
				Counts:  make([]int64, len(metrics.DefaultDurationBuckets)+1),
			},
			breachOpen: make(map[time.Duration]trace.SpanID),
		}
		t.tenants[name] = ts
	}
	return ts
}

func (ts *tenantSLO) observe(v float64) {
	i := sort.SearchFloat64s(ts.waits.Buckets, v)
	ts.waits.Counts[i]++
	ts.waits.Sum += v
	ts.waits.Count++
}

func (t *SLOTracker) add(tenant string, bad bool) {
	ts := t.tenant(tenant)
	ts.events = append(ts.events, sloEvent{at: t.eng.Now(), bad: bad})
	ts.total++
	if bad {
		ts.bad++
	}
}

// JobAdmitted records one admission: the wait feeds the tenant's histogram
// and burns budget when it exceeds the target.
func (t *SLOTracker) JobAdmitted(tenant string, wait time.Duration) {
	ts := t.tenant(tenant)
	ts.observe(wait.Seconds())
	t.add(tenant, wait > t.cfg.TargetWait)
}

// JobCompleted records one completion: a missed deadline burns budget.
func (t *SLOTracker) JobCompleted(tenant string, missedDeadline bool) {
	t.add(tenant, missedDeadline)
}

// Tenants lists tracked tenant names, sorted.
func (t *SLOTracker) Tenants() []string {
	names := make([]string, 0, len(t.tenants))
	for n := range t.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WaitHistogram returns the tenant's queue-wait histogram (nil if the
// tenant is unknown).
func (t *SLOTracker) WaitHistogram(tenant string) *metrics.Histogram {
	ts := t.tenants[tenant]
	if ts == nil {
		return nil
	}
	return ts.waits
}

// P99Wait is the tenant's bucket-interpolated p99 queue wait in seconds.
func (t *SLOTracker) P99Wait(tenant string) float64 {
	return t.WaitHistogram(tenant).Quantile(0.99)
}

// Events reports the tenant's lifetime (total, bad) event counts.
func (t *SLOTracker) Events(tenant string) (total, bad int64) {
	ts := t.tenants[tenant]
	if ts == nil {
		return 0, 0
	}
	return ts.total, ts.bad
}

// Breaches reports how many times the tenant's burn rate crossed the alert
// threshold (across all windows).
func (t *SLOTracker) Breaches(tenant string) int64 {
	ts := t.tenants[tenant]
	if ts == nil {
		return 0
	}
	return ts.breaches
}

// BurnRate computes the tenant's burn rate over the trailing window ending
// now: the bad-event fraction inside the window divided by the budget. 1.0
// means the budget is being consumed exactly as provisioned; above 1.0 the
// tenant is on course to exhaust it early. No events in the window → 0.
func (t *SLOTracker) BurnRate(tenant string, window time.Duration) float64 {
	ts := t.tenants[tenant]
	if ts == nil {
		return 0
	}
	return ts.burn(t.eng.Now(), window, t.cfg.MissBudget)
}

func (ts *tenantSLO) burn(now sim.Time, window time.Duration, budget float64) float64 {
	cutoff := now.Add(-window)
	var total, bad int64
	for i := len(ts.events) - 1; i >= 0; i-- {
		e := ts.events[i]
		if e.at < cutoff {
			break
		}
		total++
		if e.bad {
			bad++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

// prune drops events older than the longest window.
func (ts *tenantSLO) prune(now sim.Time, maxWindow time.Duration) {
	cutoff := now.Add(-maxWindow)
	i := 0
	for i < len(ts.events) && ts.events[i].at < cutoff {
		i++
	}
	if i > 0 {
		ts.events = append(ts.events[:0], ts.events[i:]...)
	}
}

// sample emits the tracker's series for one recorder tick and drives the
// breach state machine: a window whose burn crosses the alert threshold
// opens an "slo" span (visible in the Perfetto lanes and counted in
// slo_breach_total); dropping back below closes it.
func (t *SLOTracker) sample(at sim.Time, record func(name string, v float64)) {
	maxWindow := t.cfg.Windows[0]
	for _, w := range t.cfg.Windows {
		if w > maxWindow {
			maxWindow = w
		}
	}
	for _, name := range t.Tenants() {
		ts := t.tenants[name]
		ts.seriesNames(t.cfg.Windows)
		record(ts.nP99, ts.waits.Quantile(0.99))
		record(ts.nEvents, float64(ts.total))
		record(ts.nBad, float64(ts.bad))
		for _, w := range t.cfg.Windows {
			burn := ts.burn(at, w, t.cfg.MissBudget)
			record(ts.nBurn[w], burn)
			open, isOpen := ts.breachOpen[w]
			switch {
			case burn >= t.cfg.BurnAlert && !isOpen:
				ts.breaches++
				if t.tlog != nil {
					wl := w.String()
					ts.breachOpen[w] = t.tlog.StartSpan(0, "slo",
						fmt.Sprintf("%s burn>%.3g over %s", name, t.cfg.BurnAlert, wl), "",
						trace.A("tenant", name),
						trace.A("window", wl),
						trace.A("burn", fmt.Sprintf("%.3f", burn)))
				} else {
					ts.breachOpen[w] = 0
				}
			case burn < t.cfg.BurnAlert && isOpen:
				if t.tlog != nil {
					t.tlog.EndSpan(open, trace.A("burn", fmt.Sprintf("%.3f", burn)))
				}
				delete(ts.breachOpen, w)
			}
		}
		record(ts.nBreach, float64(ts.breaches))
		ts.prune(at, maxWindow)
	}
}
