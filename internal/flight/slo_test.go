package flight

import (
	"math"
	"testing"
	"time"

	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

func sloFixture() (*sim.Engine, *trace.Log, *SLOTracker) {
	eng := sim.NewEngine()
	tlog := trace.New(eng, 0)
	tr := NewSLOTracker(eng, tlog, SLOConfig{
		TargetWait: time.Second,
		MissBudget: 0.5,
		Windows:    []time.Duration{10 * time.Second},
		BurnAlert:  1.0,
	})
	return eng, tlog, tr
}

func TestSLOBurnRateMath(t *testing.T) {
	eng, _, tr := sloFixture()

	// 4 admissions: 1 over target → bad fraction 0.25, budget 0.5 → burn 0.5.
	eng.At(0, func() {
		tr.JobAdmitted("acme", 100*time.Millisecond)
		tr.JobAdmitted("acme", 200*time.Millisecond)
		tr.JobAdmitted("acme", 5*time.Second) // bad
		tr.JobAdmitted("acme", 900*time.Millisecond)
	})
	eng.Run()

	if got := tr.BurnRate("acme", 10*time.Second); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("burn = %v, want 0.5", got)
	}
	total, bad := tr.Events("acme")
	if total != 4 || bad != 1 {
		t.Fatalf("events = (%d,%d), want (4,1)", total, bad)
	}

	// Missed deadlines burn too: 2 completions, 1 missed → 6 events, 2 bad
	// → fraction 1/3, burn 2/3.
	eng.At(sim.Time(time.Second), func() {
		tr.JobCompleted("acme", true)
		tr.JobCompleted("acme", false)
	})
	eng.Run()
	if got := tr.BurnRate("acme", 10*time.Second); math.Abs(got-(2.0/6.0/0.5)) > 1e-12 {
		t.Fatalf("burn after completions = %v, want 2/3", got)
	}

	// Unknown tenant and empty window are zero, not NaN.
	if tr.BurnRate("ghost", 10*time.Second) != 0 {
		t.Fatal("unknown tenant burn != 0")
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	eng, _, tr := sloFixture()
	eng.At(0, func() { tr.JobAdmitted("acme", 5*time.Second) }) // bad at t=0
	eng.At(sim.Time(20*time.Second), func() {
		if got := tr.BurnRate("acme", 10*time.Second); got != 0 {
			t.Errorf("burn with only stale events = %v, want 0", got)
		}
		tr.JobAdmitted("acme", 2*time.Second) // fresh bad event
		if got := tr.BurnRate("acme", 10*time.Second); math.Abs(got-2.0) > 1e-12 {
			t.Errorf("fresh burn = %v, want 2.0 (1/1 bad over budget 0.5)", got)
		}
	})
	eng.Run()
}

func TestSLOQuantileTracksWaits(t *testing.T) {
	eng, _, tr := sloFixture()
	eng.At(0, func() {
		for i := 0; i < 99; i++ {
			tr.JobAdmitted("acme", 100*time.Millisecond)
		}
		tr.JobAdmitted("acme", 50*time.Second)
	})
	eng.Run()
	// 99% of waits are 0.1s; the p99 must sit in the 0.1s bucket region,
	// far below the one 50s outlier.
	p99 := tr.P99Wait("acme")
	if p99 <= 0 || p99 > 0.25 {
		t.Fatalf("p99 = %v, want within (0, 0.25]", p99)
	}
	h := tr.WaitHistogram("acme")
	if h.Count != 100 {
		t.Fatalf("histogram count = %d", h.Count)
	}
}

func TestSLOBreachSpansOpenAndClose(t *testing.T) {
	eng, tlog, tr := sloFixture()
	record := func(string, float64) {}

	eng.At(0, func() {
		// All-bad admissions: fraction 1.0, burn 2.0 ≥ alert 1.0.
		tr.JobAdmitted("acme", 10*time.Second)
		tr.JobAdmitted("acme", 10*time.Second)
		tr.sample(eng.Now(), record)
	})
	eng.At(sim.Time(5*time.Second), func() {
		// Re-sampling inside the breach must not open a second span.
		tr.sample(eng.Now(), record)
	})
	eng.At(sim.Time(30*time.Second), func() {
		// Events expired from the window → burn 0 → span closes.
		tr.sample(eng.Now(), record)
	})
	eng.Run()

	if got := tr.Breaches("acme"); got != 1 {
		t.Fatalf("breaches = %d, want 1", got)
	}
	var breach *trace.Span
	for _, s := range tlog.Spans() {
		if s.Component == "slo" {
			if breach != nil {
				t.Fatal("more than one breach span")
			}
			breach = s
		}
	}
	if breach == nil {
		t.Fatal("no breach span recorded")
	}
	if !breach.Ended || breach.End != sim.Time(30*time.Second) {
		t.Fatalf("breach span not closed at 30s: ended=%v end=%s", breach.Ended, breach.End)
	}
}

func TestSLOSampleEmitsSeries(t *testing.T) {
	eng, _, tr := sloFixture()
	got := map[string]float64{}
	eng.At(0, func() {
		tr.JobAdmitted("acme", 5*time.Second)
		tr.sample(eng.Now(), func(name string, v float64) { got[name] = v })
	})
	eng.Run()

	for _, want := range []string{
		"slo_burn_rate{tenant=acme,window=10s}",
		"slo_queue_wait_p99_seconds{tenant=acme}",
		"slo_events_total{tenant=acme}",
		"slo_bad_events_total{tenant=acme}",
		"slo_breach_total{tenant=acme}",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("series %q not emitted; got %v", want, got)
		}
	}
	if got["slo_burn_rate{tenant=acme,window=10s}"] != 2.0 {
		t.Fatalf("burn series = %v, want 2.0", got["slo_burn_rate{tenant=acme,window=10s}"])
	}
}
