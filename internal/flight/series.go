package flight

import "mrapid/internal/sim"

// Sample is one (virtual instant, value) point of a time-series.
type Sample struct {
	At    sim.Time
	Value float64
}

// Series is a ring-buffered time-series: a fixed-capacity window of the
// most recent samples. The flight recorder appends one sample per tick;
// once the ring fills, the oldest samples fall off and are counted.
type Series struct {
	// Name is the full series key in metrics.With form, e.g.
	// "slo_burn_rate{tenant=tenant-0,window=30s}".
	Name string

	cap     int
	buf     []Sample
	head    int // index of the oldest sample
	n       int
	evicted int64
}

func newSeries(name string, capacity int) *Series {
	if capacity <= 0 {
		capacity = 1
	}
	return &Series{Name: name, cap: capacity}
}

func (s *Series) add(at sim.Time, v float64) {
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, Sample{At: at, Value: v})
		return
	}
	s.buf[s.head] = Sample{At: at, Value: v}
	s.head = (s.head + 1) % s.cap
	s.evicted++
}

// Len reports the number of retained samples.
func (s *Series) Len() int { return len(s.buf) }

// Evicted reports how many samples the ring has dropped from the front.
func (s *Series) Evicted() int64 { return s.evicted }

// Samples returns the retained samples oldest-first.
func (s *Series) Samples() []Sample {
	out := make([]Sample, 0, len(s.buf))
	out = append(out, s.buf[s.head:]...)
	out = append(out, s.buf[:s.head]...)
	return out
}

// Last returns the most recent sample, if any.
func (s *Series) Last() (Sample, bool) {
	if len(s.buf) == 0 {
		return Sample{}, false
	}
	i := s.head - 1
	if i < 0 {
		i = len(s.buf) - 1
	}
	return s.buf[i], true
}
