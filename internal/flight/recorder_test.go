package flight

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// driveWorkload schedules a tiny synthetic "workload" onto the engine: a
// counter incremented every 100ms for 5s and a gauge following the event
// count. Returns the recorder, stopped at the end of the run.
func driveWorkload(t *testing.T, cfg Config) (*Recorder, *metrics.Registry) {
	t.Helper()
	eng := sim.NewEngine()
	reg := metrics.New()
	tlog := trace.New(eng, 0)
	rec := New(eng, reg, tlog, cfg)

	var gaugeVal float64
	rec.AddGauge(func(sample func(string, float64)) {
		sample("test_gauge", gaugeVal)
		sample(metrics.With("test_labeled_gauge", "node", "node-01"), 2*gaugeVal)
	})

	work := eng.Every(100*time.Millisecond, func() {
		reg.Inc("work_done_total")
		reg.Add("work_bytes", 10)
		gaugeVal++
	})
	var stopAt *sim.Ticker = work
	eng.At(sim.Time(5*time.Second), func() {
		stopAt.Stop()
		rec.Stop()
	})

	rec.Start()
	eng.Run()
	return rec, reg
}

func TestRecorderSamplesValuesAndRates(t *testing.T) {
	rec, _ := driveWorkload(t, Config{Interval: 250 * time.Millisecond})

	// 5s at 250ms → 20 ticks (the final Stop() sample coincides with the
	// tick already taken at t=5s, so no extra sample is added).
	if rec.Samples() < 19 || rec.Samples() > 21 {
		t.Fatalf("samples = %d, want ~20", rec.Samples())
	}

	v := rec.Series("work_done_total")
	if v == nil {
		t.Fatal("no value series for work_done_total")
	}
	// The stop event at t=5s was scheduled before the tickers' 5s firings,
	// so it wins the same-instant tie-break: the final sample sees the 49
	// increments from t=0.1s..4.9s.
	last, _ := v.Last()
	if last.Value != 49 {
		t.Fatalf("final work_done_total = %v, want 49", last.Value)
	}

	// The counter bumps every 100ms → a steady rate of 10/s.
	rate := rec.Series("work_done_total:rate")
	if rate == nil {
		t.Fatalf("no rate series; have %v", rec.SeriesNames())
	}
	s := rate.Samples()
	mid := s[len(s)/2]
	if mid.Value < 7 || mid.Value > 13 {
		t.Fatalf("mid-run rate = %v, want ~10/s", mid.Value)
	}

	// Non-monotonic names must not get a rate series.
	if rec.Series("work_bytes:rate") != nil {
		t.Fatal("work_bytes is not *_total but got a rate series")
	}

	// Gauges, including labeled ones.
	g, _ := rec.Series("test_gauge").Last()
	lg, _ := rec.Series("test_labeled_gauge{node=node-01}").Last()
	if g.Value == 0 || lg.Value != 2*g.Value {
		t.Fatalf("gauges: %v / %v", g.Value, lg.Value)
	}

	// Engine lane rides the deterministic series.
	if rec.Series("engine_pending_events") == nil || rec.Series("engine_events_per_virtual_sec") == nil {
		t.Fatal("missing engine lane series")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec, _ := driveWorkload(t, Config{Interval: 250 * time.Millisecond, RingCap: 4})
	s := rec.Series("work_done_total")
	if s.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", s.Len())
	}
	if s.Evicted() == 0 || rec.Evicted() == 0 {
		t.Fatal("expected evictions with a 4-slot ring over ~20 ticks")
	}
	// The retained window is the most recent samples, oldest-first.
	samples := s.Samples()
	for i := 1; i < len(samples); i++ {
		if samples[i].At <= samples[i-1].At {
			t.Fatalf("samples out of order: %v", samples)
		}
	}
	last, _ := s.Last()
	if last != samples[len(samples)-1] {
		t.Fatal("Last() disagrees with Samples()")
	}
}

func TestRecorderStopIsIdempotentAndDrainsQueue(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.New()
	rec := New(eng, reg, nil, Config{Interval: 100 * time.Millisecond})
	rec.Start()
	eng.At(sim.Time(time.Second), func() {
		rec.Stop()
		rec.Stop()
	})
	end := eng.Run()
	// Without Stop the ticker would run forever; with it the queue drains
	// at the stop instant.
	if end != sim.Time(time.Second) {
		t.Fatalf("engine ran to %s, want 1s", end)
	}
}

func TestRecorderDeterministicPrometheusDump(t *testing.T) {
	var dumps [2]bytes.Buffer
	for i := range dumps {
		rec, _ := driveWorkload(t, Config{Interval: 250 * time.Millisecond})
		if err := rec.WritePrometheus(&dumps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
		t.Fatal("identical runs produced different Prometheus dumps")
	}
	if dumps[0].Len() == 0 {
		t.Fatal("empty dump")
	}
}

func TestRecorderDroppedSpansSurfaced(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.New()
	tlog := trace.New(eng, 2) // tiny event ring
	rec := New(eng, reg, tlog, Config{Interval: 100 * time.Millisecond})
	eng.Every(50*time.Millisecond, func() { tlog.Add("test", "spam") })
	eng.At(sim.Time(time.Second), func() { rec.Stop() })
	rec.Start()
	eng.RunUntil(sim.Time(time.Second))

	if rec.DroppedSpans() == 0 {
		t.Fatal("expected drops with a 2-slot ring")
	}
	s := rec.Series("trace_dropped_spans_total")
	if s == nil {
		t.Fatal("trace_dropped_spans_total not recorded")
	}
	// The spam ticker may squeeze one more drop in after the final sample
	// at the same instant, so the series trails by at most one event.
	last, _ := s.Last()
	if int64(last.Value) == 0 || int64(last.Value) > rec.DroppedSpans() {
		t.Fatalf("series %v vs Dropped %d", last.Value, rec.DroppedSpans())
	}
}

func TestCounterSeriesExport(t *testing.T) {
	rec, _ := driveWorkload(t, Config{Interval: 250 * time.Millisecond})
	cs := rec.CounterSeries()
	if len(cs) != len(rec.SeriesNames()) {
		t.Fatalf("exported %d lanes, have %d series", len(cs), len(rec.SeriesNames()))
	}
	var buf bytes.Buffer
	if err := trace.New(sim.NewEngine(), 0).WriteChromeTraceCounters(&buf, cs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ph": "C"`) || !strings.Contains(out, "work_done_total:rate") {
		t.Fatalf("counter events missing from trace: %.200s", out)
	}
}

func TestRateNameInsertion(t *testing.T) {
	cases := map[string]string{
		"x_total":             "x_total:rate",
		"x_total{tenant=a}":   "x_total:rate{tenant=a}",
		"jobs_admitted_total": "jobs_admitted_total:rate",
	}
	for in, want := range cases {
		if got := rateName(in); got != want {
			t.Errorf("rateName(%q) = %q, want %q", in, got, want)
		}
	}
	if isMonotonic("work_bytes") || !isMonotonic("x_total{a=b}") {
		t.Fatal("isMonotonic misclassifies")
	}
}
