// Package flight is the cluster flight recorder: it samples a running
// simulation on the virtual clock at a fixed interval and keeps the
// results in ring-buffered time-series — metrics-registry counters (raw
// values plus per-second rates for monotonic *_total counters), live
// cluster gauges registered by the embedding code (queue depths, container
// occupancy, shuffle bytes in flight, cache residency), and a per-tenant
// SLO tracker with multi-window burn rates.
//
// Because sampling rides the same deterministic event loop as the
// simulation itself and every probe is read-only with respect to cluster
// state, turning the recorder on cannot change job outputs: runs with the
// recorder on and off stay byte-identical, and two identical runs produce
// identical series dumps. The one intentionally non-deterministic lane is
// the self-profiler (package file selfprof.go), which watches the host —
// wall-clock event throughput, heap depth, allocations — and is excluded
// from the deterministic exports; it only feeds BENCH_engine.json.
//
// The recorded data is surfaced three ways: Prometheus text-format
// exposition (WritePrometheus), Chrome-trace counter lanes next to the
// span tree (CounterSeries + trace.WriteChromeTraceCounters), and a
// self-contained HTML dashboard (WriteDashboard).
package flight

import (
	"sort"
	"strings"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// Config sizes a Recorder.
type Config struct {
	// Interval is the virtual-clock sampling period. Zero means 250ms.
	Interval time.Duration

	// RingCap bounds each series' retained samples. Zero means 4096.
	RingCap int

	// SLO configures the per-tenant SLO tracker; the zero value (no
	// target) disables it.
	SLO SLOConfig
}

// ConfigFromParams builds a recorder Config from the cost-model knobs
// (Params.FlightInterval / Params.FlightRingCap).
func ConfigFromParams(p costmodel.Params) Config {
	return Config{Interval: p.FlightInterval, RingCap: p.FlightRingCap}
}

// GaugeFunc probes live cluster state at each tick. It must only read:
// gauge callbacks run between simulation events and anything they mutate
// would break the recorder's byte-identity guarantee. Implementations call
// sample once per gauge series, with metrics.With-style names.
type GaugeFunc func(sample func(name string, v float64))

// Recorder samples one simulation into ring-buffered time-series.
type Recorder struct {
	eng  *sim.Engine
	reg  *metrics.Registry
	tlog *trace.Log
	cfg  Config

	// droppedSpans is the pre-resolved gauge the span ring's drop count is
	// folded into each tick.
	droppedSpans metrics.Gauge

	series map[string]*Series
	gauges []GaugeFunc
	slo    *SLOTracker
	prof   *SelfProfiler

	ticker  *sim.Ticker
	started bool
	stopped bool
	samples int64

	lastAt       sim.Time
	lastCounters map[string]int64
	lastFired    uint64
}

// New builds a recorder over the engine, registry and (optional) trace
// log. Call AddGauge to register cluster probes, then Start.
func New(eng *sim.Engine, reg *metrics.Registry, tlog *trace.Log, cfg Config) *Recorder {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = 4096
	}
	r := &Recorder{
		eng:    eng,
		reg:    reg,
		tlog:   tlog,
		cfg:    cfg,
		series: make(map[string]*Series),
	}
	if tlog != nil {
		r.droppedSpans = reg.GaugeHandle("trace_dropped_spans_total")
	}
	if cfg.SLO.enabled() {
		r.slo = NewSLOTracker(eng, tlog, cfg.SLO)
	}
	r.prof = newSelfProfiler(eng)
	return r
}

// AddGauge registers a read-only cluster probe, called once per tick.
func (r *Recorder) AddGauge(fn GaugeFunc) { r.gauges = append(r.gauges, fn) }

// SLO returns the per-tenant SLO tracker, or nil when no target is set.
// The tracker satisfies core.AdmissionObserver, so it plugs straight into
// a JobServer's Observer field.
func (r *Recorder) SLO() *SLOTracker { return r.slo }

// SelfProfiler returns the host-side profiler lane.
func (r *Recorder) SelfProfiler() *SelfProfiler { return r.prof }

// Interval reports the effective sampling period.
func (r *Recorder) Interval() time.Duration { return r.cfg.Interval }

// Start begins sampling: one tick every Interval of virtual time until
// Stop. Starting twice is a no-op.
func (r *Recorder) Start() {
	if r.started {
		return
	}
	r.started = true
	r.lastAt = r.eng.Now()
	r.lastCounters = r.reg.Counters()
	r.lastFired = r.eng.Fired()
	r.prof.start()
	r.ticker = r.eng.Every(r.cfg.Interval, r.tick)
}

// Stop takes a final sample and cancels the ticker. The recorder must be
// stopped when the workload completes — a live ticker keeps the event
// queue non-empty, so an un-stopped recorder would run the engine to its
// horizon. Stopping twice is a no-op.
func (r *Recorder) Stop() {
	if !r.started || r.stopped {
		return
	}
	r.stopped = true
	r.ticker.Stop()
	if r.eng.Now() > r.lastAt {
		r.tick()
	}
	r.prof.stop()
}

// StopIfRunning is Stop, but safe on a nil recorder — embedding code can
// call it unconditionally whether or not recording was enabled.
func (r *Recorder) StopIfRunning() {
	if r == nil {
		return
	}
	r.Stop()
}

// Samples reports how many ticks have been recorded.
func (r *Recorder) Samples() int64 { return r.samples }

// DroppedSpans reports the trace log's event-ring drop count (0 with no
// log attached).
func (r *Recorder) DroppedSpans() int64 { return r.tlog.Dropped() }

// Series returns one series by full key, or nil.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// lastValue reads a series' most recent sample, reporting whether the
// series exists and has one.
func (r *Recorder) lastValue(name string) (float64, bool) {
	s, ok := r.series[name]
	if !ok {
		return 0, false
	}
	last, ok := s.Last()
	return last.Value, ok
}

// SeriesNames returns every recorded series key, sorted.
func (r *Recorder) SeriesNames() []string {
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Evicted sums ring evictions across all series.
func (r *Recorder) Evicted() int64 {
	var n int64
	for _, s := range r.series {
		n += s.Evicted()
	}
	return n
}

// record appends one sample, creating the series on first use.
func (r *Recorder) record(at sim.Time, name string, v float64) {
	s := r.series[name]
	if s == nil {
		s = newSeries(name, r.cfg.RingCap)
		r.series[name] = s
	}
	s.add(at, v)
}

// rateName derives the per-second rate series key from a counter key:
// "x_total{a=b}" → "x_total:rate{a=b}". The colon keeps the derived name
// legal in Prometheus exposition (recording-rule convention) while making
// collisions with real registry counters impossible.
func rateName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + ":rate" + key[i:]
	}
	return key + ":rate"
}

// isMonotonic reports whether a series key names a counter that only ever
// goes up, and therefore has a meaningful rate.
func isMonotonic(key string) bool {
	name := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		name = key[:i]
	}
	return strings.HasSuffix(name, "_total")
}

// tick is one sample on the virtual clock.
func (r *Recorder) tick() {
	at := r.eng.Now()
	dt := at.Sub(r.lastAt).Seconds()

	// The span ring's drop count is folded into the registry first so it
	// rides the normal counter path (and the Prometheus export) rather
	// than needing a side channel.
	if r.tlog != nil {
		r.droppedSpans.Set(r.tlog.Dropped())
	}

	counters := r.reg.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := counters[name]
		r.record(at, name, float64(v))
		if isMonotonic(name) && dt > 0 {
			r.record(at, rateName(name), float64(v-r.lastCounters[name])/dt)
		}
	}

	for _, fn := range r.gauges {
		fn(func(name string, v float64) { r.record(at, name, v) })
	}

	// Engine lane: both are functions of the deterministic event schedule,
	// so they belong in the virtual-clock series (unlike the host lane).
	fired := r.eng.Fired()
	if dt > 0 {
		r.record(at, "engine_events_per_virtual_sec", float64(fired-r.lastFired)/dt)
	}
	r.record(at, "engine_pending_events", float64(r.eng.Pending()))

	if r.slo != nil {
		r.slo.sample(at, func(name string, v float64) { r.record(at, name, v) })
	}
	r.prof.tick()

	r.samples++
	r.lastAt = at
	r.lastCounters = counters
	r.lastFired = fired
}

// CounterSeries exports every recorded series as Chrome-trace counter
// lanes for trace.WriteChromeTraceCounters, sorted by name.
func (r *Recorder) CounterSeries() []trace.CounterSeries {
	out := make([]trace.CounterSeries, 0, len(r.series))
	for _, name := range r.SeriesNames() {
		s := r.series[name]
		cs := trace.CounterSeries{Name: name}
		for _, smp := range s.Samples() {
			cs.Samples = append(cs.Samples, trace.CounterSample{At: smp.At, Value: smp.Value})
		}
		out = append(out, cs)
	}
	return out
}
