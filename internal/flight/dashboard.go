package flight

import (
	"fmt"
	"html"
	"io"
	"strconv"

	"mrapid/internal/report"
)

// Dashboard bundles everything WriteDashboard renders: the recorder's
// series and SLO state, the slowest phase-attributed spans from the
// critical-path analyzer, and (optionally) the host-side engine bench.
type Dashboard struct {
	Title string
	Rec   *Recorder

	// TopSpans is the top-k slowest phase-carrying spans (report.TopSpans).
	TopSpans []report.SlowSpan

	// Engine, when non-nil, adds the host-lane block. Leave nil for
	// deterministic output (the host numbers differ run to run).
	Engine *EngineBench
}

// WriteDashboard renders a self-contained HTML page: inline CSS, one SVG
// sparkline per series, the per-tenant SLO table with burn rates, warnings
// for dropped spans / evicted samples, and the top-k slowest phases. No
// external assets, so the file works from a CI artifact or file:// URL.
func WriteDashboard(w io.Writer, d Dashboard) error {
	r := d.Rec
	title := d.Title
	if title == "" {
		title = "mrapid flight recorder"
	}
	out := &errWriter{w: w}

	fmt.Fprintf(out, `<!doctype html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body{font:14px/1.45 system-ui,sans-serif;margin:24px;background:#fafafa;color:#1a1a1a}
h1{font-size:20px;margin:0 0 4px} h2{font-size:16px;margin:28px 0 8px}
.meta{color:#666;margin-bottom:16px}
.warn{background:#fff3cd;border:1px solid #e0c36a;padding:8px 12px;border-radius:4px;margin:8px 0}
table{border-collapse:collapse;background:#fff}
th,td{border:1px solid #ddd;padding:4px 10px;text-align:right;font-variant-numeric:tabular-nums}
th{background:#f0f0f0} td.l,th.l{text-align:left}
td.bad{background:#fdd;font-weight:600} td.ok{background:#dfd}
.grid{display:flex;flex-wrap:wrap;gap:10px}
.card{background:#fff;border:1px solid #ddd;border-radius:4px;padding:8px;width:300px}
.card .name{font-size:11px;color:#444;word-break:break-all}
.card .last{font-size:13px;font-weight:600}
svg polyline{fill:none;stroke:#2563eb;stroke-width:1.5}
.host{color:#666;font-size:13px}
</style></head><body>
<h1>%s</h1>
`, html.EscapeString(title), html.EscapeString(title))

	fmt.Fprintf(out, `<div class="meta">%d samples @ %s virtual interval &middot; %d series &middot; virtual now %s</div>`+"\n",
		r.Samples(), r.Interval(), len(r.series), r.eng.Now())

	if n := r.DroppedSpans(); n > 0 {
		fmt.Fprintf(out, `<div class="warn">&#9888; trace span ring dropped %d events (trace_dropped_spans_total) — the span tree below the ring limit is incomplete.</div>`+"\n", n)
	}
	if n := r.Evicted(); n > 0 {
		fmt.Fprintf(out, `<div class="warn">&#9888; series rings evicted %d samples — early history is truncated; raise Params.FlightRingCap or the interval.</div>`+"\n", n)
	}

	if slo := r.SLO(); slo != nil {
		cfg := slo.Config()
		fmt.Fprintf(out, "<h2>SLO — wait target %s, budget %.3g, alert at burn %.3g</h2>\n<table><tr><th class=\"l\">tenant</th><th>p99 wait</th><th>events</th><th>bad</th>",
			cfg.TargetWait, cfg.MissBudget, cfg.BurnAlert)
		for _, win := range cfg.Windows {
			fmt.Fprintf(out, "<th>burn %s</th>", win)
		}
		fmt.Fprintf(out, "<th>breaches</th></tr>\n")
		for _, tn := range slo.Tenants() {
			total, bad := slo.Events(tn)
			p99 := slo.P99Wait(tn)
			cls := "ok"
			if p99 > cfg.TargetWait.Seconds() {
				cls = "bad"
			}
			fmt.Fprintf(out, `<tr><td class="l">%s</td><td class="%s">%.3fs</td><td>%d</td><td>%d</td>`,
				html.EscapeString(tn), cls, p99, total, bad)
			for _, win := range cfg.Windows {
				burn := slo.BurnRate(tn, win)
				cls := "ok"
				if burn >= cfg.BurnAlert {
					cls = "bad"
				}
				fmt.Fprintf(out, `<td class="%s">%.2f</td>`, cls, burn)
			}
			fmt.Fprintf(out, "<td>%d</td></tr>\n", slo.Breaches(tn))
		}
		fmt.Fprintf(out, "</table>\n")
	}

	// Caches: present only when the run carried the cross-job memo cache
	// (its counters then ride the registry sweep, and the bench gauge probe
	// adds the residency series).
	if hits, ok := r.lastValue("memo_hits_total"); ok {
		misses, _ := r.lastValue("memo_misses_total")
		inval, _ := r.lastValue("memo_invalidations_total")
		lost, _ := r.lastValue("memo_lost_total")
		evict, _ := r.lastValue("memo_evictions_total")
		memB, _ := r.lastValue("memo_cache_mem_bytes")
		dskB, _ := r.lastValue("memo_cache_disk_bytes")
		rate := 0.0
		if hits+misses > 0 {
			rate = hits / (hits + misses)
		}
		cls := "bad"
		if rate > 0 {
			cls = "ok"
		}
		fmt.Fprintf(out, "<h2>Caches</h2>\n<table><tr><th class=\"l\">cache</th><th>hit rate</th><th>hits</th><th>misses</th><th>invalidations</th><th>lost</th><th>evictions</th><th>mem bytes</th><th>disk bytes</th></tr>\n")
		fmt.Fprintf(out, `<tr><td class="l">cross-job memo</td><td class="%s">%.1f%%</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%s</td><td>%s</td></tr>`+"\n",
			cls, 100*rate, hits, misses, inval, lost, evict, promFloat(memB), promFloat(dskB))
		fmt.Fprintf(out, "</table>\n")
	}

	if len(d.TopSpans) > 0 {
		fmt.Fprintf(out, "<h2>Slowest phases</h2>\n<table><tr><th class=\"l\">component</th><th class=\"l\">span</th><th class=\"l\">phase</th><th>start</th><th>duration</th></tr>\n")
		for _, s := range d.TopSpans {
			fmt.Fprintf(out, `<tr><td class="l">%s</td><td class="l">%s</td><td class="l">%s</td><td>%.3fs</td><td>%.3fs</td></tr>`+"\n",
				html.EscapeString(s.Component), html.EscapeString(s.Name), html.EscapeString(s.Phase), s.Start, s.Seconds)
		}
		fmt.Fprintf(out, "</table>\n")
	}

	fmt.Fprintf(out, "<h2>Series</h2>\n<div class=\"grid\">\n")
	for _, name := range r.SeriesNames() {
		s := r.series[name]
		last, _ := s.Last()
		fmt.Fprintf(out, `<div class="card"><div class="name">%s</div><div class="last">%s</div>%s</div>`+"\n",
			html.EscapeString(name), promFloat(last.Value), sparkline(s))
	}
	fmt.Fprintf(out, "</div>\n")

	if d.Engine != nil {
		b := d.Engine
		fmt.Fprintf(out, `<h2>Engine self-profile <span class="host">(host-side, non-deterministic)</span></h2>
<table><tr><th>events</th><th>virtual s</th><th>host s</th><th>events/host-s</th><th>host-ns/virtual-s</th><th>allocs/event</th><th>bytes/event</th><th>max heap depth</th></tr>
<tr><td>%d</td><td>%.3f</td><td>%.3f</td><td>%.0f</td><td>%.0f</td><td>%.1f</td><td>%.0f</td><td>%d</td></tr></table>
`, b.Events, b.VirtualSeconds, b.HostSeconds, b.EventsPerHostSec, b.HostNsPerVirtualSec, b.AllocsPerEvent, b.BytesPerEvent, b.MaxEventHeapDepth)
	}

	fmt.Fprintf(out, "</body></html>\n")
	return out.err
}

// sparkline renders one series as a fixed-size SVG polyline with min/max
// annotations. Coordinates are formatted to one decimal so the output is
// bit-stable across platforms.
func sparkline(s *Series) string {
	const width, height, pad = 280.0, 48.0, 2.0
	samples := s.Samples()
	if len(samples) == 0 {
		return `<svg width="280" height="48"></svg>`
	}
	lo, hi := samples[0].Value, samples[0].Value
	t0, t1 := samples[0].At, samples[len(samples)-1].At
	for _, p := range samples {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	span := hi - lo
	tspan := float64(t1 - t0)
	var b []byte
	b = append(b, `<svg width="280" height="48" viewBox="0 0 280 48"><polyline points="`...)
	for i, p := range samples {
		var x, y float64
		if tspan > 0 {
			x = pad + (width-2*pad)*float64(p.At-t0)/tspan
		} else {
			x = pad
		}
		if span > 0 {
			y = height - pad - (height-2*pad)*(p.Value-lo)/span
		} else {
			y = height / 2
		}
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendFloat(b, x, 'f', 1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, y, 'f', 1, 64)
	}
	b = append(b, `"/></svg><div class="name">min `...)
	b = append(b, promFloat(lo)...)
	b = append(b, ` &middot; max `...)
	b = append(b, promFloat(hi)...)
	b = append(b, `</div>`...)
	return string(b)
}

// errWriter latches the first write error so the renderer doesn't have to
// check every Fprintf.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
