package flight

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
)

func TestWritePrometheusFormat(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.New()
	rec := New(eng, reg, nil, Config{Interval: 100 * time.Millisecond})

	eng.At(0, func() {
		reg.Set(metrics.With("queue_depth", "tenant", "acme"), 3)
		reg.Inc(metrics.With("jobs_admitted_total", "tenant", "acme"))
		reg.Observe(metrics.With("wait_seconds", "tenant", "acme"), 0.2)
		reg.Observe(metrics.With("wait_seconds", "tenant", "acme"), 7)
	})
	eng.At(sim.Time(300*time.Millisecond), func() { rec.Stop() })
	rec.Start()
	eng.Run()

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`# TYPE jobs_admitted_total counter`,
		`# TYPE queue_depth gauge`,
		`# TYPE wait_seconds histogram`,
		`jobs_admitted_total{tenant="acme"} 1 100`,
		`jobs_admitted_total:rate{tenant="acme"}`,
		`queue_depth{tenant="acme"} 3`,
		`wait_seconds_bucket{tenant="acme",le="+Inf"} 2`,
		`wait_seconds_sum{tenant="acme"} 7.2`,
		`wait_seconds_count{tenant="acme"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}

	// Buckets are cumulative: the 0.25 bound has seen the 0.2 observation,
	// the 10 bound both.
	if !strings.Contains(out, `wait_seconds_bucket{tenant="acme",le="0.25"} 1`) {
		t.Error("cumulative bucket at le=0.25 wrong")
	}
	if !strings.Contains(out, `wait_seconds_bucket{tenant="acme",le="10"} 2`) {
		t.Error("cumulative bucket at le=10 wrong")
	}
}

func TestWritePrometheusEscapesHostileLabels(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.New()
	rec := New(eng, reg, nil, Config{Interval: 100 * time.Millisecond})

	// A tenant literally named `a=b,c` plus one named with a quote: the
	// registry key escapes them (metrics.With) and the exposition must
	// re-escape for its own quoting rules without aliasing.
	eng.At(0, func() {
		reg.Set(metrics.With("queue_depth", "tenant", "a=b,c"), 1)
		reg.Set(metrics.With("queue_depth", "tenant", `say "hi"`), 2)
	})
	eng.At(sim.Time(200*time.Millisecond), func() { rec.Stop() })
	rec.Start()
	eng.Run()

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `queue_depth{tenant="a=b,c"} 1`) {
		t.Errorf("structural characters did not round-trip:\n%s", out)
	}
	if !strings.Contains(out, `queue_depth{tenant="say \"hi\""} 2`) {
		t.Errorf("quote not escaped for exposition:\n%s", out)
	}
}

func TestPromHelpers(t *testing.T) {
	if promMillis(sim.Time(1500*time.Millisecond)) != 1500 {
		t.Fatal("promMillis")
	}
	if promFloat(0.5) != "0.5" || promFloat(10) != "10" {
		t.Fatalf("promFloat: %q %q", promFloat(0.5), promFloat(10))
	}
	got := promLabels([]metrics.Label{{Key: "a", Value: `x\y`}, {Key: "b", Value: "z"}})
	if got != `{a="x\\y",b="z"}` {
		t.Fatalf("promLabels = %s", got)
	}
	if promLabels(nil) != "" {
		t.Fatal("empty labels should render nothing")
	}
}

func TestDashboardRenders(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.New()
	rec := New(eng, reg, nil, Config{
		Interval: 100 * time.Millisecond,
		SLO:      SLOConfig{TargetWait: time.Second, MissBudget: 0.5},
	})
	eng.At(0, func() {
		reg.Inc("jobs_total")
		rec.SLO().JobAdmitted("acme", 3*time.Second)
	})
	eng.At(sim.Time(300*time.Millisecond), func() { rec.Stop() })
	rec.Start()
	eng.Run()

	var buf bytes.Buffer
	err := WriteDashboard(&buf, Dashboard{
		Title:  "test run",
		Rec:    rec,
		Engine: &EngineBench{Events: 42, VirtualSeconds: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<title>test run</title>",
		"jobs_total",
		"acme",           // SLO table row
		"<polyline",      // sparkline
		"self-profile",   // host lane
		"</body></html>", // complete document
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// Deterministic without the host lane: render twice.
	var a, b bytes.Buffer
	if err := WriteDashboard(&a, Dashboard{Rec: rec}); err != nil {
		t.Fatal(err)
	}
	if err := WriteDashboard(&b, Dashboard{Rec: rec}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("dashboard render is not deterministic")
	}
}
