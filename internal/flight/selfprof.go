package flight

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"mrapid/internal/sim"
)

// SelfProfiler is the recorder's host-side lane: it watches the simulator
// itself — wall-clock event throughput, host time burned per virtual
// second, allocation pressure, event-heap depth. Everything here reads the
// host clock and runtime, so it is deliberately kept OUT of the
// deterministic series store and the Prometheus/dashboard series dumps;
// its only output is the EngineBench summary (BENCH_engine.json).
type SelfProfiler struct {
	eng *sim.Engine

	hostStart    time.Time
	virtualStart sim.Time
	firedStart   uint64
	memStart     runtime.MemStats

	running bool
	ticks   int64

	bench    EngineBench
	finished bool
}

func newSelfProfiler(eng *sim.Engine) *SelfProfiler {
	return &SelfProfiler{eng: eng}
}

func (p *SelfProfiler) start() {
	p.running = true
	p.hostStart = time.Now()
	p.virtualStart = p.eng.Now()
	p.firedStart = p.eng.Fired()
	runtime.ReadMemStats(&p.memStart)
}

func (p *SelfProfiler) tick() { p.ticks++ }

func (p *SelfProfiler) stop() {
	if !p.running || p.finished {
		return
	}
	p.finished = true

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	hostSec := time.Since(p.hostStart).Seconds()
	virtSec := p.eng.Now().Sub(p.virtualStart).Seconds()
	events := p.eng.Fired() - p.firedStart

	b := EngineBench{
		Events:            events,
		VirtualSeconds:    virtSec,
		HostSeconds:       hostSec,
		MaxEventHeapDepth: p.eng.MaxPending(),
		RecorderTicks:     p.ticks,
	}
	if hostSec > 0 {
		b.EventsPerHostSec = float64(events) / hostSec
	}
	if virtSec > 0 {
		b.HostNsPerVirtualSec = hostSec * 1e9 / virtSec
	}
	if events > 0 {
		b.AllocsPerEvent = float64(mem.Mallocs-p.memStart.Mallocs) / float64(events)
		b.BytesPerEvent = float64(mem.TotalAlloc-p.memStart.TotalAlloc) / float64(events)
	}
	p.bench = b
}

// Summary returns the host-lane figures gathered between Start and Stop.
// Only valid after the recorder is stopped.
func (p *SelfProfiler) Summary() EngineBench { return p.bench }

// EngineBench is the self-profiler's summary of one run: how efficiently
// the engine turned host time into virtual time. The numbers vary from
// host to host and run to run — they are benchmark output, never inputs to
// determinism checks.
type EngineBench struct {
	Events              uint64  `json:"events"`
	VirtualSeconds      float64 `json:"virtual_seconds"`
	HostSeconds         float64 `json:"host_seconds"`
	EventsPerHostSec    float64 `json:"events_per_host_sec"`
	HostNsPerVirtualSec float64 `json:"host_ns_per_virtual_sec"`
	AllocsPerEvent      float64 `json:"allocs_per_event"`
	BytesPerEvent       float64 `json:"bytes_per_event"`
	MaxEventHeapDepth   int     `json:"max_event_heap_depth"`
	RecorderTicks       int64   `json:"recorder_ticks"`
}

// WriteEngineBench writes the summary as indented JSON under an id, the
// shape the repo's BENCH_*.json artifacts use.
func WriteEngineBench(w io.Writer, id string, b EngineBench) error {
	doc := struct {
		ID    string      `json:"id"`
		Bench EngineBench `json:"bench"`
	}{ID: id, Bench: b}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
