// Package metrics provides a labeled counter/gauge/histogram registry used
// by the simulation components and the CLI tools to report protocol and
// I/O activity (heartbeat counts, bytes moved, locality hit rates,
// allocation-latency distributions) alongside job timings.
//
// Two access styles share the same underlying cells:
//
//   - String-keyed calls (Inc, Add, Set, Observe) resolve the series name in
//     a map under the registry mutex on every sample. Convenient for cold
//     paths and tests.
//   - Pre-resolved handles (CounterHandle, GaugeHandle, HistogramHandle)
//     bind a label set once at setup and return a cell pointer; each sample
//     is then a single atomic add with no lock, no map lookup and no label
//     escaping. Hot paths — per-heartbeat, per-container, per-record — use
//     handles.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultDurationBuckets are the upper bounds (in seconds) used by Observe
// for histograms without an explicit Define. They span the latencies this
// simulator cares about: sub-millisecond RPCs up to minute-scale jobs.
var DefaultDurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket histogram snapshot. Counts[i] holds the
// number of observations <= Buckets[i]; Counts[len(Buckets)] holds the
// overflow. Counts are per-bucket, not cumulative.
type Histogram struct {
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Sum     float64   `json:"sum"`
	Count   int64     `json:"count"`
}

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by locating the bucket that
// contains the target rank and interpolating linearly inside it, the way
// Prometheus's histogram_quantile does. Values in the overflow bucket cannot
// be interpolated (no upper bound), so a rank landing there reports the last
// finite bound — a lower bound on the true quantile. Returns 0 with no
// observations.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(h.Buckets) {
				return h.Buckets[len(h.Buckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Buckets[i-1]
			}
			hi := h.Buckets[i]
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.Buckets[len(h.Buckets)-1]
}

// counterCell is the storage behind one counter/gauge series. Handles point
// straight at it, so samples are lock-free atomics.
type counterCell struct {
	v atomic.Int64
}

// histCell is the storage behind one histogram series. Buckets are replaced
// only while the histogram is empty (Define), so observation needs just the
// cell's own mutex — never the registry's.
type histCell struct {
	mu      sync.Mutex
	buckets []float64
	counts  []int64
	sum     float64
	count   int64
}

func (hc *histCell) observe(v float64) {
	hc.mu.Lock()
	i := sort.SearchFloat64s(hc.buckets, v)
	hc.counts[i]++
	hc.sum += v
	hc.count++
	hc.mu.Unlock()
}

func (hc *histCell) snapshot() *Histogram {
	hc.mu.Lock()
	h := &Histogram{
		Buckets: append([]float64(nil), hc.buckets...),
		Counts:  append([]int64(nil), hc.counts...),
		Sum:     hc.sum,
		Count:   hc.count,
	}
	hc.mu.Unlock()
	return h
}

// Registry holds named counters and histograms. The zero value is not
// usable; call New. A nil *Registry is a valid "disabled" registry: every
// method is a no-op (reads return zero values, handle constructors return
// no-op handles), so components can carry an optional registry without
// guards. Registries are safe for concurrent use — PR 1's WorkerPool
// executes host-side map functions on multiple goroutines, and task-level
// instrumentation records from all of them.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterCell
	order    []string
	hists    map[string]*histCell
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*counterCell),
		hists:    make(map[string]*histCell),
	}
}

// With encodes a metric name plus label key/value pairs into a single
// series key: name{k1=v1,k2=v2} with keys sorted, so the same label set
// always yields the same series. Pass kvs as alternating key, value. The
// structural characters `=`, `,`, `{`, `}` and the escape `\` are escaped
// inside label values, so a tenant named "a=b" yields a distinct series
// from a tenant "a" with some other label "b" — and ParseSeries can recover
// the exact labels.
func With(name string, kvs ...string) string {
	if len(kvs) == 0 {
		return name
	}
	n := len(kvs) / 2
	pairs := make([]string, 0, n)
	for i := 0; i+1 < len(kvs); i += 2 {
		pairs = append(pairs, kvs[i]+"="+escapeLabel(kvs[i+1]))
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// labelEscaper guards the characters that delimit a series key.
var labelEscaper = strings.NewReplacer(
	`\`, `\\`, `=`, `\=`, `,`, `\,`, `{`, `\{`, `}`, `\}`,
)

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\=,{}`) {
		return v
	}
	return labelEscaper.Replace(v)
}

func unescapeLabel(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// Label is one decoded key/value pair of a series key.
type Label struct {
	Key   string
	Value string
}

// ParseSeries decodes a series key produced by With back into the bare
// metric name and its labels (values unescaped, in key order). A key with
// no label block returns (key, nil). This is the inverse of With; exporters
// (Prometheus text format, the flight recorder's dashboard) use it to
// re-render labels in their own quoting conventions.
func ParseSeries(key string) (name string, labels []Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:open]
	body := key[open+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	// Split on unescaped commas, then each pair on its first unescaped '='.
	var pairs []string
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case ',':
			pairs = append(pairs, body[start:i])
			start = i + 1
		}
	}
	pairs = append(pairs, body[start:])
	for _, p := range pairs {
		eq := -1
		for i := 0; i < len(p); i++ {
			if p[i] == '\\' {
				i++
				continue
			}
			if p[i] == '=' {
				eq = i
				break
			}
		}
		if eq < 0 {
			labels = append(labels, Label{Key: unescapeLabel(p)})
			continue
		}
		labels = append(labels, Label{Key: p[:eq], Value: unescapeLabel(p[eq+1:])})
	}
	return name, labels
}

// counterCellFor resolves (creating on first use) the cell behind a series.
func (r *Registry) counterCellFor(name string) *counterCell {
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = new(counterCell)
		r.counters[name] = c
		r.order = append(r.order, name)
	}
	r.mu.Unlock()
	return c
}

// histCellFor resolves (creating with the default duration buckets on first
// use) the cell behind a histogram series.
func (r *Registry) histCellFor(name string) *histCell {
	r.mu.Lock()
	hc, ok := r.hists[name]
	if !ok {
		hc = &histCell{
			buckets: DefaultDurationBuckets,
			counts:  make([]int64, len(DefaultDurationBuckets)+1),
		}
		r.hists[name] = hc
	}
	r.mu.Unlock()
	return hc
}

// Counter is a pre-resolved handle on one counter series. The zero value
// (and any handle from a nil registry) is a no-op. Copying is cheap; bind
// once at setup and sample lock-free ever after.
type Counter struct{ c *counterCell }

// Add increments the bound series by delta.
func (c Counter) Add(delta int64) {
	if c.c != nil {
		c.c.v.Add(delta)
	}
}

// Inc increments the bound series by one.
func (c Counter) Inc() {
	if c.c != nil {
		c.c.v.Add(1)
	}
}

// Value reads the bound series (zero for a no-op handle).
func (c Counter) Value() int64 {
	if c.c == nil {
		return 0
	}
	return c.c.v.Load()
}

// Gauge is a pre-resolved handle on one gauge series (a counter cell with
// overwrite semantics). The zero value is a no-op.
type Gauge struct{ c *counterCell }

// Set overwrites the bound series.
func (g Gauge) Set(v int64) {
	if g.c != nil {
		g.c.v.Store(v)
	}
}

// Add adjusts the bound series by delta (useful for +1/-1 occupancy gauges).
func (g Gauge) Add(delta int64) {
	if g.c != nil {
		g.c.v.Add(delta)
	}
}

// Value reads the bound series (zero for a no-op handle).
func (g Gauge) Value() int64 {
	if g.c == nil {
		return 0
	}
	return g.c.v.Load()
}

// Observer is a pre-resolved handle on one histogram series. The zero value
// is a no-op.
type Observer struct{ h *histCell }

// Observe records one value into the bound histogram.
func (o Observer) Observe(v float64) {
	if o.h != nil {
		o.h.observe(v)
	}
}

// CounterHandle resolves a counter series once and returns a lock-free
// handle. Labels are passed as alternating key, value (as for With) and are
// escaped and sorted here, at bind time — never again per sample. A nil
// registry returns a no-op handle.
func (r *Registry) CounterHandle(name string, kvs ...string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{c: r.counterCellFor(With(name, kvs...))}
}

// GaugeHandle resolves a gauge series once and returns a lock-free handle.
// A nil registry returns a no-op handle.
func (r *Registry) GaugeHandle(name string, kvs ...string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{c: r.counterCellFor(With(name, kvs...))}
}

// HistogramHandle resolves a histogram series once and returns a handle
// whose Observe takes only the cell's own mutex. The histogram is created
// with the default duration buckets if it does not exist; Define beforehand
// (or before the first observation) to choose others. A nil registry
// returns a no-op handle.
func (r *Registry) HistogramHandle(name string, kvs ...string) Observer {
	if r == nil {
		return Observer{}
	}
	return Observer{h: r.histCellFor(With(name, kvs...))}
}

// Add increments a counter by delta, creating it on first use.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.counterCellFor(name).v.Add(delta)
}

// Inc increments a counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set overwrites a counter's value (gauge semantics).
func (r *Registry) Set(name string, value int64) {
	if r == nil {
		return
	}
	r.counterCellFor(name).v.Store(value)
}

// Get returns a counter's value (zero when absent).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Define creates (or re-buckets an empty) histogram with explicit upper
// bounds, for series where the default duration buckets are wrong — e.g.
// byte sizes. Bounds must be ascending. Handles bound before Define observe
// into the re-bucketed cell.
func (r *Registry) Define(name string, buckets []float64) {
	if r == nil {
		return
	}
	hc := r.histCellFor(name)
	hc.mu.Lock()
	if hc.count == 0 {
		hc.buckets = append([]float64(nil), buckets...)
		hc.counts = make([]int64, len(buckets)+1)
	}
	hc.mu.Unlock()
}

// Observe records a value into the named histogram, creating it with the
// default duration buckets on first use.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.histCellFor(name).observe(v)
}

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Len reports the number of counters.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters)
}

// Reset zeroes every counter and histogram but keeps the names (and any
// outstanding handles — they keep pointing at the zeroed cells).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, hc := range r.hists {
		hc.mu.Lock()
		for i := range hc.counts {
			hc.counts[i] = 0
		}
		hc.sum = 0
		hc.count = 0
		hc.mu.Unlock()
	}
}

// Counters returns a sorted-by-name snapshot of every counter.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.v.Load()
	}
	return out
}

// Histograms returns a deep-copied snapshot of every histogram.
func (r *Registry) Histograms() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cells := make(map[string]*histCell, len(r.hists))
	for k, hc := range r.hists {
		cells[k] = hc
	}
	r.mu.Unlock()
	out := make(map[string]*Histogram, len(cells))
	for k, hc := range cells {
		out[k] = hc.snapshot()
	}
	return out
}

// Dump writes "name value" lines in sorted order: counters first, then a
// count/mean/max-bucket summary line per histogram.
func (r *Registry) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters := r.Counters()
	hists := r.Histograms()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", name, counters[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(hists))
	for k := range hists {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "%-40s count=%d sum=%.6g mean=%.6g\n",
			name, h.Count, h.Sum, h.Mean()); err != nil {
			return err
		}
	}
	return nil
}

// Ratio returns a/(a+b) as a percentage, guarding division by zero —
// convenient for locality hit rates.
func Ratio(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b) * 100
}
