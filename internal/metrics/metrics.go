// Package metrics provides a small named-counter/gauge registry used by the
// simulation components and the CLI tools to report protocol and I/O
// activity (heartbeat counts, bytes moved, locality hit rates) alongside
// job timings.
package metrics

import (
	"fmt"
	"io"
	"sort"
)

// Registry holds named counters. The zero value is not usable; call New.
// Registries are not safe for concurrent use — the simulation is
// single-threaded by design.
type Registry struct {
	counters map[string]int64
	order    []string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{counters: make(map[string]int64)}
}

// Add increments a counter by delta, creating it on first use.
func (r *Registry) Add(name string, delta int64) {
	if _, ok := r.counters[name]; !ok {
		r.order = append(r.order, name)
	}
	r.counters[name] += delta
}

// Inc increments a counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set overwrites a counter's value.
func (r *Registry) Set(name string, value int64) {
	if _, ok := r.counters[name]; !ok {
		r.order = append(r.order, name)
	}
	r.counters[name] = value
}

// Get returns a counter's value (zero when absent).
func (r *Registry) Get(name string) int64 { return r.counters[name] }

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return names
}

// Len reports the number of counters.
func (r *Registry) Len() int { return len(r.counters) }

// Reset zeroes every counter but keeps the names.
func (r *Registry) Reset() {
	for k := range r.counters {
		r.counters[k] = 0
	}
}

// Dump writes "name value" lines in sorted order.
func (r *Registry) Dump(w io.Writer) error {
	for _, name := range r.Names() {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", name, r.counters[name]); err != nil {
			return err
		}
	}
	return nil
}

// Ratio returns a/(a+b) as a percentage, guarding division by zero —
// convenient for locality hit rates.
func Ratio(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b) * 100
}
