package metrics

import (
	"strings"
	"testing"
)

func TestCountersAddIncSetGet(t *testing.T) {
	r := New()
	r.Inc("a")
	r.Add("a", 4)
	r.Set("b", 10)
	if r.Get("a") != 5 || r.Get("b") != 10 || r.Get("missing") != 0 {
		t.Fatalf("counters wrong: a=%d b=%d", r.Get("a"), r.Get("b"))
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	r.Inc("zulu")
	r.Inc("alpha")
	r.Inc("mike")
	names := r.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mike" || names[2] != "zulu" {
		t.Fatalf("Names = %v", names)
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Add("x", 7)
	r.Reset()
	if r.Get("x") != 0 || r.Len() != 1 {
		t.Fatalf("after reset: x=%d len=%d", r.Get("x"), r.Len())
	}
}

func TestDump(t *testing.T) {
	r := New()
	r.Set("reads", 3)
	r.Set("writes", 1)
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "reads") || !strings.Contains(out, "writes") {
		t.Fatalf("Dump = %q", out)
	}
	if strings.Index(out, "reads") > strings.Index(out, "writes") {
		t.Fatal("dump not sorted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 1); got != 75 {
		t.Fatalf("Ratio(3,1) = %v", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Fatalf("Ratio(0,0) = %v", got)
	}
}

func TestWithEscapesLabelValues(t *testing.T) {
	// Regression: a tenant literally named "a=b" must not alias the series
	// of a different label set that renders to the same bytes.
	k1 := With("jobs", "tenant", "a=b")
	k2 := With("jobs", "tenant", "a", "extra", "b")
	if k1 == k2 {
		t.Fatalf("series alias: %q", k1)
	}
	name, labels := ParseSeries(k1)
	if name != "jobs" || len(labels) != 1 || labels[0].Key != "tenant" || labels[0].Value != "a=b" {
		t.Fatalf("ParseSeries(%q) = %q %v", k1, name, labels)
	}
}

func TestParseSeriesRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"tenant", "t0"},
		{"tenant", "a=b", "mode", "d+,u+"},
		{"k", `back\slash`},
		{"k", "curly{brace}"},
		{"k", ""},
	}
	for _, kvs := range cases {
		key := With("m", kvs...)
		name, labels := ParseSeries(key)
		if name != "m" {
			t.Fatalf("name %q from %q", name, key)
		}
		if len(labels) != len(kvs)/2 {
			t.Fatalf("labels %v from %q", labels, key)
		}
		got := map[string]string{}
		for _, l := range labels {
			got[l.Key] = l.Value
		}
		for i := 0; i+1 < len(kvs); i += 2 {
			if got[kvs[i]] != kvs[i+1] {
				t.Fatalf("label %s = %q, want %q (key %q)", kvs[i], got[kvs[i]], kvs[i+1], key)
			}
		}
	}
	if name, labels := ParseSeries("bare"); name != "bare" || labels != nil {
		t.Fatalf("bare series parsed as %q %v", name, labels)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	r.Define("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 7} {
		r.Observe("lat", v)
	}
	h := r.Histograms()["lat"]
	// 8 observations: bucket counts are ≤1:1, ≤2:2, ≤4:3, ≤8:2.
	if got := h.Quantile(0.5); got < 2 || got > 4 {
		t.Fatalf("p50 = %v, want within (2,4]", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("p100 = %v, want 8", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0 (interpolates to bucket floor)", got)
	}
	// Monotone in p.
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: p=%v gives %v after %v", p, q, prev)
		}
		prev = q
	}
	// Overflow bucket clamps to the last finite bound.
	r.Observe("lat", 100)
	r.Observe("lat", 200)
	r.Observe("lat", 300)
	h = r.Histograms()["lat"]
	if got := h.Quantile(0.99); got != 8 {
		t.Fatalf("overflow p99 = %v, want clamp to 8", got)
	}
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
}
