package metrics

import (
	"strings"
	"testing"
)

func TestCountersAddIncSetGet(t *testing.T) {
	r := New()
	r.Inc("a")
	r.Add("a", 4)
	r.Set("b", 10)
	if r.Get("a") != 5 || r.Get("b") != 10 || r.Get("missing") != 0 {
		t.Fatalf("counters wrong: a=%d b=%d", r.Get("a"), r.Get("b"))
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	r.Inc("zulu")
	r.Inc("alpha")
	r.Inc("mike")
	names := r.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mike" || names[2] != "zulu" {
		t.Fatalf("Names = %v", names)
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Add("x", 7)
	r.Reset()
	if r.Get("x") != 0 || r.Len() != 1 {
		t.Fatalf("after reset: x=%d len=%d", r.Get("x"), r.Len())
	}
}

func TestDump(t *testing.T) {
	r := New()
	r.Set("reads", 3)
	r.Set("writes", 1)
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "reads") || !strings.Contains(out, "writes") {
		t.Fatalf("Dump = %q", out)
	}
	if strings.Index(out, "reads") > strings.Index(out, "writes") {
		t.Fatal("dump not sorted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 1); got != 75 {
		t.Fatalf("Ratio(3,1) = %v", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Fatalf("Ratio(0,0) = %v", got)
	}
}
