package metrics_test

import (
	"io"
	"sync"
	"testing"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
)

// TestRegistryConcurrentFromWorkerPool hammers one registry from the same
// WorkerPool the runtime uses for host-side parallel map execution. Run
// under -race (the CI race job does) this asserts the registry's locking:
// before the mutex was added, counters updated from pool goroutines raced
// with the engine thread's reads.
func TestRegistryConcurrentFromWorkerPool(t *testing.T) {
	reg := metrics.New()
	reg.Define("latency", metrics.DefaultDurationBuckets)
	pool := mapreduce.NewWorkerPool(8)
	defer pool.Close()

	const tasks = 64
	const perTask = 250
	var wg sync.WaitGroup
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		i := i
		pool.Submit(func() {
			defer wg.Done()
			for j := 0; j < perTask; j++ {
				reg.Inc("tasks_total")
				reg.Add(metrics.With("bytes_total", "shard", string(rune('a'+i%4))), 10)
				reg.Observe("latency", float64(j)*0.001)
				if j%50 == 0 {
					// Concurrent readers must see consistent snapshots.
					_ = reg.Get("tasks_total")
					_ = reg.Counters()
					_ = reg.Histograms()
					_ = reg.Dump(io.Discard)
				}
			}
		})
	}
	wg.Wait()

	if got := reg.Get("tasks_total"); got != tasks*perTask {
		t.Fatalf("tasks_total = %d, want %d", got, tasks*perTask)
	}
	var bytes int64
	for name, v := range reg.Counters() {
		if len(name) > 11 && name[:11] == "bytes_total" {
			bytes += v
		}
	}
	if bytes != tasks*perTask*10 {
		t.Fatalf("bytes_total sum = %d, want %d", bytes, tasks*perTask*10)
	}
	h := reg.Histograms()["latency"]
	if h == nil || h.Count != tasks*perTask {
		t.Fatalf("latency histogram = %+v", h)
	}
}
