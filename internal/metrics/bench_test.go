package metrics

import "testing"

// The benchmarks contrast the two access styles on the same registry: the
// string-keyed path pays With (label escape + sort + join) plus a map
// lookup under the registry mutex per sample; a handle pays all of that
// once at bind time and then a bare atomic per sample. Hot paths are
// expected to stay on handles — the perf gate watches allocs/event.

func BenchmarkCounterLookupInc(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(With("containers_launched_total", "node", "node07"))
	}
}

func BenchmarkCounterHandleInc(b *testing.B) {
	r := New()
	h := r.CounterHandle("containers_launched_total", "node", "node07")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

func BenchmarkCounterBareNameInc(b *testing.B) {
	// No labels: isolates the map-lookup + mutex cost from With.
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc("heartbeats_total")
	}
}

func BenchmarkGaugeHandleSet(b *testing.B) {
	r := New()
	g := r.GaugeHandle("pending_events")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkObserveLookup(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("alloc_latency_seconds", 0.003)
	}
}

func BenchmarkObserveHandle(b *testing.B) {
	r := New()
	o := r.HistogramHandle("alloc_latency_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Observe(0.003)
	}
}
