package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// newRuntime builds a full simulated cluster runtime for core tests.
func newRuntime(t testing.TB, instance topology.InstanceType, workers int, sched yarn.Scheduler) *mapreduce.Runtime {
	t.Helper()
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: instance, Workers: workers, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, 42)
	rm := yarn.NewRM(eng, cluster, params, sched)
	rm.Start()
	return mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
}

func oneContainer() topology.Resource { return topology.Resource{VCores: 1, MemoryMB: 1024} }

func TestDPlusGrantsInSameHeartbeat(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	app := rt.RM.NewApp("j")
	ask := &yarn.Ask{App: app, Resource: oneContainer(), Tag: "map-0"}
	var got []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, []*yarn.Ask{ask}, func(cs []*yarn.Container) { got = cs })
	})
	rt.Eng.RunUntil(sim.Time(2 * time.Second))
	if len(got) != 1 {
		t.Fatalf("same-heartbeat response had %d containers, want 1", len(got))
	}
	// The response arrived after just the RPC round trip, far under one
	// heartbeat period.
	if rt.Eng.Now() > sim.Time(2*time.Second) {
		t.Fatalf("response too slow")
	}
}

func TestDPlusSpreadsAcrossNodes(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	app := rt.RM.NewApp("j")
	var asks []*yarn.Ask
	for i := 0; i < 4; i++ {
		asks = append(asks, &yarn.Ask{App: app, Resource: oneContainer(), Tag: "map"})
	}
	var got []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, asks, func(cs []*yarn.Container) { got = cs })
	})
	rt.Eng.RunUntil(sim.Time(2 * time.Second))
	if len(got) != 4 {
		t.Fatalf("granted %d containers", len(got))
	}
	nodes := map[string]int{}
	for _, c := range got {
		nodes[c.Node.Name]++
	}
	if len(nodes) != 4 {
		t.Fatalf("containers landed on %d nodes (%v), want 4 (round-robin spread)", len(nodes), nodes)
	}
}

func TestDPlusHonorsNodeLocality(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	app := rt.RM.NewApp("j")
	pref := rt.Cluster.Workers()[2]
	ask := &yarn.Ask{
		App: app, Resource: oneContainer(),
		PreferredNodes: []*topology.Node{pref},
		PreferredRacks: []string{pref.Rack},
		Tag:            "map-0",
	}
	var got []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, []*yarn.Ask{ask}, func(cs []*yarn.Container) { got = cs })
	})
	rt.Eng.RunUntil(sim.Time(2 * time.Second))
	if len(got) != 1 || got[0].Node != pref {
		t.Fatalf("locality-aware D+ placed on %v, want %v", got[0].Node, pref)
	}
	if rt.RM.Metrics.ByLocality[yarn.NodeLocal] != 1 {
		t.Fatalf("locality metrics = %v", rt.RM.Metrics.ByLocality)
	}
}

func TestDPlusLocalityTiersPreferRackOverAny(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	app := rt.RM.NewApp("j")
	pref := rt.Cluster.Workers()[0] // rack-0, as is worker 2
	// Fill the preferred node completely so NodeLocal is impossible.
	nt := rt.RM.TrackerFor(pref)
	nt.Allocate(nt.Avail)
	ask := &yarn.Ask{
		App: app, Resource: oneContainer(),
		PreferredNodes: []*topology.Node{pref},
		PreferredRacks: []string{pref.Rack},
		Tag:            "map-0",
	}
	var got []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, []*yarn.Ask{ask}, func(cs []*yarn.Container) { got = cs })
	})
	rt.Eng.RunUntil(sim.Time(2 * time.Second))
	if len(got) != 1 {
		t.Fatalf("granted %d", len(got))
	}
	if got[0].Node.Rack != pref.Rack {
		t.Fatalf("placed in rack %s, want rack-local %s", got[0].Node.Rack, pref.Rack)
	}
	if got[0].Node == pref {
		t.Fatal("placed on a full node")
	}
}

func TestDPlusWithoutSameHeartbeatWaitsForNodeUpdate(t *testing.T) {
	opts := FullDPlus()
	opts.SameHeartbeat = false
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(opts))
	app := rt.RM.NewApp("j")
	ask := &yarn.Ask{App: app, Resource: oneContainer(), Tag: "map-0"}
	var first []*yarn.Container
	responded := false
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, []*yarn.Ask{ask}, func(cs []*yarn.Container) {
			first = cs
			responded = true
		})
	})
	rt.Eng.RunUntil(sim.Time(500 * time.Millisecond))
	if !responded {
		t.Fatal("no response")
	}
	if len(first) != 0 {
		t.Fatal("ablated scheduler granted in the same heartbeat")
	}
	// After a node heartbeat plus the next AM heartbeat it arrives.
	var second []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, nil, func(cs []*yarn.Container) { second = cs })
	})
	rt.Eng.RunUntil(sim.Time(3 * time.Second))
	if len(second) != 1 {
		t.Fatalf("delayed grant = %d containers", len(second))
	}
}

func TestDPlusWithoutBalancedSpreadPacksGreedily(t *testing.T) {
	opts := FullDPlus()
	opts.BalancedSpread = false
	opts.LocalityAware = false
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(opts))
	app := rt.RM.NewApp("j")
	var asks []*yarn.Ask
	for i := 0; i < 4; i++ {
		asks = append(asks, &yarn.Ask{App: app, Resource: oneContainer(), Tag: "map"})
	}
	var got []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, asks, func(cs []*yarn.Container) { got = cs })
	})
	rt.Eng.RunUntil(sim.Time(2 * time.Second))
	if len(got) != 4 {
		t.Fatalf("granted %d", len(got))
	}
	nodes := map[string]bool{}
	for _, c := range got {
		nodes[c.Node.Name] = true
	}
	if len(nodes) != 1 {
		t.Fatalf("greedy ablation spread over %d nodes, want 1", len(nodes))
	}
}

func TestDPlusQueueDrainsOnNodeUpdateWhenFull(t *testing.T) {
	rt := newRuntime(t, topology.A3, 1, NewDPlusScheduler(FullDPlus()))
	app := rt.RM.NewApp("j")
	// 9 asks on a 7-slot node: 7 granted immediately, 2 queued.
	var asks []*yarn.Ask
	for i := 0; i < 9; i++ {
		asks = append(asks, &yarn.Ask{App: app, Resource: oneContainer(), Tag: "map"})
	}
	var immediate, later []*yarn.Container
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, asks, func(cs []*yarn.Container) {
			immediate = cs
			// Free two containers; they are reported at the next NM
			// heartbeat, after which the queue drains.
			for _, c := range cs[:2] {
				rt.RM.ReleaseContainer(c)
			}
		})
	})
	rt.Eng.RunUntil(sim.Time(2 * time.Second))
	if len(immediate) != 7 {
		t.Fatalf("immediate grants = %d, want 7 (node memory capacity)", len(immediate))
	}
	rt.Eng.After(0, func() {
		rt.RM.Allocate(app, nil, func(cs []*yarn.Container) { later = cs })
	})
	rt.Eng.RunUntil(sim.Time(5 * time.Second))
	if len(later) != 2 {
		t.Fatalf("queued grants after release = %d, want 2", len(later))
	}
}

// Property: under random ask streams the D+ scheduler never overcommits any
// node and every grant respects the tracker accounting.
func TestQuickDPlusNoOvercommit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		cluster, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 1 + rng.Intn(6), Racks: 2})
		params := costmodel.Default()
		rm := yarn.NewRM(eng, cluster, params, NewDPlusScheduler(FullDPlus()))
		rm.Start()
		app := rm.NewApp("q")
		var asks []*yarn.Ask
		for i := 0; i < 5+rng.Intn(40); i++ {
			asks = append(asks, &yarn.Ask{
				App:      app,
				Resource: topology.Resource{VCores: 1 + rng.Intn(2), MemoryMB: 512 * (1 + rng.Intn(4))},
				Tag:      "m",
			})
		}
		eng.After(0, func() { rm.Allocate(app, asks, func([]*yarn.Container) {}) })
		eng.RunUntil(sim.Time(20 * time.Second))
		for _, nt := range rm.Trackers() {
			u := nt.Used()
			if u.VCores < 0 || u.MemoryMB < 0 || !u.FitsIn(nt.Cap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDPlusSchedulerName(t *testing.T) {
	s := NewDPlusScheduler(FullDPlus())
	if s.Name() != "mrapid-dplus" {
		t.Fatalf("Name = %q", s.Name())
	}
	if !s.Options().SameHeartbeat || !s.Options().LocalityAware || !s.Options().BalancedSpread {
		t.Fatal("FullDPlus toggles wrong")
	}
}

func TestEstimatorEquations(t *testing.T) {
	in := EstimatorInputs{
		TM:  2 * time.Second,
		SI:  10 << 20,
		SO:  8 << 20,
		NM:  8,
		NC:  4,
		NUM: 4,
		TL:  2500 * time.Millisecond,
		DI:  50e6,
		DO:  60e6,
		BI:  50e6,
	}
	// Eq. 2: t_u = t^m · ceil(n^m/n_u^m) = 2s · 2 = 4s.
	if got := EstimateUPlus(in); got != 4*time.Second {
		t.Errorf("EstimateUPlus = %v, want 4s", got)
	}
	// Eq. 3: t_d = (t^l + t^m + s^o/d^i)·2 + (s^o·n^c)/b^i.
	spill := time.Duration(float64(in.SO) / in.DI * float64(time.Second))
	shuffle := time.Duration(float64(in.SO*4) / in.BI * float64(time.Second))
	want := (in.TL+in.TM+spill)*2 + shuffle
	if got := EstimateDPlus(in); got != want {
		t.Errorf("EstimateDPlus = %v, want %v", got, want)
	}
	// Eq. 1 is strictly larger than Eq. 3 (it adds AM setup, read, and the
	// double-spill merge terms).
	if EstimateJob(in, 100<<20) <= EstimateDPlus(in) {
		t.Error("EstimateJob should exceed EstimateDPlus")
	}
	// Merge terms only charged above the sort buffer.
	small := EstimateJob(in, in.SO)
	big := EstimateJob(in, in.SO-1)
	if big <= small {
		t.Error("overflowing the sort buffer should add merge cost")
	}
}

func TestDecide(t *testing.T) {
	base := EstimatorInputs{
		TM: time.Second, SO: 1 << 20, NM: 4, NC: 16, NUM: 4,
		TL: 2500 * time.Millisecond, DI: 50e6, DO: 60e6, BI: 50e6,
	}
	// 4 maps fit one U+ wave: t_u = 1s. D+ pays launches: t_d > 3.5s.
	if got := Decide(base); got != ModeUPlus {
		t.Errorf("Decide = %v, want uplus for tiny jobs", got)
	}
	// Many heavy maps with a big cluster: D+ wins.
	heavy := base
	heavy.TM = 10 * time.Second
	heavy.NM = 64
	heavy.NUM = 4
	heavy.NC = 64
	if got := Decide(heavy); got != ModeDPlus {
		t.Errorf("Decide = %v, want dplus for wide jobs", got)
	}
}

func TestWavesAndIOTime(t *testing.T) {
	if waves(8, 4) != 2 || waves(9, 4) != 3 || waves(1, 4) != 1 || waves(5, 0) != 5 {
		t.Fatal("waves arithmetic wrong")
	}
	if ioTime(100, 100) != time.Second || ioTime(0, 100) != 0 || ioTime(100, 0) != 0 {
		t.Fatal("ioTime arithmetic wrong")
	}
}

func TestInputsFromProfile(t *testing.T) {
	p := costmodel.Default()
	s := profilerSummary()
	in := InputsFromProfile(s, 8, 16, 4, topology.A3, p)
	if in.TM != s.AvgMapCPU || in.SI != s.AvgIn || in.SO != s.AvgOut {
		t.Fatal("measured fields not copied")
	}
	if in.TL != p.ContainerStart() || in.DI != topology.A3.DiskWriteBps {
		t.Fatal("structural fields wrong")
	}
	if in.NM != 8 || in.NC != 16 || in.NUM != 4 {
		t.Fatal("counts wrong")
	}
}
