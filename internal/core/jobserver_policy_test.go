package core

import (
	"fmt"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

// Regression for the late-joining-tenant bug: tenantFor used to create
// unknown tenants with served=0, which under weighted-fair admission let a
// newcomer monopolize the window until it "caught up" with work it never
// submitted. A late joiner must start at the current minimum served/weight
// ratio (virtual-time join).
func TestTenantForVirtualTimeJoin(t *testing.T) {
	s := &JobServer{tenants: map[string]*tenantState{
		"a": {name: "a", weight: 2, served: 10}, // ratio 5
		"b": {name: "b", weight: 1, served: 8},  // ratio 8
	}}
	nt := s.tenantFor("late")
	if nt.served != 5 { // min ratio 5 × weight 1
		t.Fatalf("late joiner served = %v, want 5 (virtual-time join at the minimum ratio)", nt.served)
	}
	// Weighted scaling: a heavier late joiner starts proportionally higher.
	s2 := &JobServer{tenants: map[string]*tenantState{
		"a": {name: "a", weight: 1, served: 6},
	}}
	heavy := &tenantState{}
	*heavy = *s2.tenantFor("h")
	if heavy.served != 6 {
		t.Fatalf("weight-1 joiner served = %v, want 6", heavy.served)
	}
	// The very first tenant still starts from zero.
	s3 := &JobServer{tenants: map[string]*tenantState{}}
	if first := s3.tenantFor("first"); first.served != 0 {
		t.Fatalf("first tenant served = %v, want 0", first.served)
	}
}

// nextByLaxity orders by least laxity — (deadline − now) − predicted — with
// best-effort jobs behind every deadline job.
func TestNextByLaxityOrdering(t *testing.T) {
	rt := newRuntime(t, topology.A3, 2, NewDPlusScheduler(FullDPlus()))
	fw := NewFramework(rt, 0, FullUPlus())
	ten := &tenantState{name: "t", weight: 1}
	mk := func(deadline time.Duration, predicted time.Duration, has bool) *queuedJob {
		return &queuedJob{
			tenant: ten, deadline: sim.Time(deadline), hasDeadline: has, predicted: predicted,
		}
	}
	s := &JobServer{fw: fw, policy: PolicyDeadline, pending: []*queuedJob{
		mk(0, 0, false), // best-effort, arrived first
		mk(100*time.Second, 10*time.Second, true), // laxity 90s
		mk(50*time.Second, 45*time.Second, true),  // laxity 5s — most urgent
		mk(60*time.Second, 20*time.Second, true),  // laxity 40s
	}}
	if got := s.next(); got != 2 {
		t.Fatalf("next = %d, want the least-laxity job at index 2", got)
	}
	// An unpredictable deadline job (predicted 0) schedules on its deadline
	// alone and can out-rank a predictable one with more slack.
	s.pending = []*queuedJob{
		mk(0, 0, false),
		mk(200*time.Second, 0, true), // laxity 200s
		mk(30*time.Second, 0, true),  // laxity 30s
	}
	if got := s.next(); got != 2 {
		t.Fatalf("next = %d, want the tighter deadline at index 2", got)
	}
	// Only best-effort jobs pending: arrival order.
	s.pending = []*queuedJob{mk(0, 0, false), mk(0, 0, false)}
	if got := s.next(); got != 0 {
		t.Fatalf("next = %d, want FIFO head with no deadline jobs", got)
	}
}

// End-to-end deadline scheduling: with a serialized window, a tight-deadline
// job submitted after a loose one jumps the queue; a deadline that cannot be
// met is counted as a miss (and only that one).
func TestJobServerDeadlinePolicy(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	_, s := startJobServer(t, rt, 3, JobServerConfig{Policy: PolicyDeadline, MaxInFlight: 1})
	names, input := stageInput(t, rt, 4, 1<<20)

	var order []string
	done := func(name string) func(*mapreduce.Result) {
		return func(res *mapreduce.Result) {
			if res.Err != nil {
				t.Errorf("job %s failed: %v", name, res.Err)
			}
			order = append(order, name)
			if len(order) == 3 {
				rt.RM.Stop()
			}
		}
	}
	submit := func(name string, deadline time.Duration) {
		spec := testWCSpec(names, "/out/"+name)
		spec.Name = name
		var err error
		if deadline > 0 {
			err = s.SubmitWithDeadline("", ModeUPlus, spec, rt.Eng.Now().Add(deadline), done(name))
		} else {
			err = s.Submit("", ModeUPlus, spec, done(name))
		}
		if err != nil {
			t.Errorf("submit %s: %v", name, err)
		}
	}
	rt.Eng.After(0, func() {
		submit("blocker", 0)            // admitted immediately, occupies the window
		submit("loose", 20*time.Minute) // plenty of slack
		submit("tight", 30*time.Second) // urgent — must jump ahead of loose
	})
	rt.Eng.RunUntil(horizon)

	if len(order) != 3 {
		t.Fatalf("completed %d of 3 jobs", len(order))
	}
	if order[1] != "tight" {
		t.Fatalf("completion order %v: tight deadline did not jump the queue", order)
	}
	// The tight job queued behind the blocker, so 30 s was likely missed;
	// whatever happened, the loose 20-minute deadline cannot have been.
	if s.DeadlineMisses > 1 {
		t.Fatalf("DeadlineMisses = %d, the loose deadline cannot have been missed", s.DeadlineMisses)
	}
	if s.SlotSeconds <= 0 {
		t.Fatalf("SlotSeconds = %v, want positive accumulation", s.SlotSeconds)
	}
	for _, name := range order {
		verifyWC(t, rt, "/out/"+name, input)
	}
}

// A pre-decided speculative submission (recorded history winner) is charged
// one admission slot, not two: with a window of 2, two such jobs run
// concurrently where undecided races could not.
func TestJobServerPreDecidedSpeculativeCostsOne(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f, s := startJobServer(t, rt, 3, JobServerConfig{MaxInFlight: 2})
	names, input := stageInput(t, rt, 4, 1<<20)
	f.History.Record("wordcount", ModeUPlus, 10*time.Second, profilerSummary())

	completed := 0
	inFlightAfterSubmit := 0
	rt.Eng.After(0, func() {
		for i := 0; i < 2; i++ {
			spec := testWCSpec(names, fmt.Sprintf("/out/%d", i))
			spec.Name = fmt.Sprintf("wc-%d", i)
			if err := s.Submit("", ModeSpeculative, spec, func(res *mapreduce.Result) {
				if res.Err != nil {
					t.Errorf("job failed: %v", res.Err)
				}
				completed++
				if completed == 2 {
					rt.RM.Stop()
				}
			}); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		inFlightAfterSubmit = s.InFlight()
	})
	rt.Eng.RunUntil(horizon)

	if completed != 2 {
		t.Fatalf("completed %d of 2", completed)
	}
	// Both cost-1 jobs fit the window-2 together; cost-2 races would have
	// serialized (in-flight 2 = one job).
	if inFlightAfterSubmit != 2 {
		t.Fatalf("in-flight after submits = %d, want both pre-decided jobs admitted", inFlightAfterSubmit)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after both admissions", s.Pending())
	}
	for i := 0; i < 2; i++ {
		verifyWC(t, rt, fmt.Sprintf("/out/%d", i), input)
	}
}
