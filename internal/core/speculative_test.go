package core

import (
	"strings"
	"testing"

	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
)

// runSpeculative drives one speculative submission to completion.
func runSpeculative(t *testing.T, f *Framework, spec *mapreduce.JobSpec) *SpecResult {
	t.Helper()
	rt := f.RT
	var res *SpecResult
	rt.Eng.After(0, func() {
		f.SubmitSpeculative(spec, func(r *SpecResult) {
			res = r
			rt.RM.Stop()
		})
	})
	rt.Eng.RunUntil(horizon)
	if res == nil {
		t.Fatal("speculative job never completed")
	}
	return res
}

func TestSpeculativeFirstRunRacesAndDecides(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 4, 1<<20)
	res := runSpeculative(t, f, testWCSpec(names, "/out"))
	if res.Result.Err != nil {
		t.Fatalf("job failed: %v", res.Result.Err)
	}
	if res.FromHistory {
		t.Fatal("first run claimed a history hit")
	}
	if res.Winner != ModeDPlus && res.Winner != ModeUPlus {
		t.Fatalf("winner = %q", res.Winner)
	}
	// The decision used the estimator (both estimates populated) unless a
	// mode finished before any sample — impossible here given map counts.
	if res.EstimateD == 0 || res.EstimateU == 0 {
		t.Fatalf("estimates missing: D=%v U=%v", res.EstimateD, res.EstimateU)
	}
	verifyWC(t, rt, "/out", all)
	// Temporary outputs were cleaned up.
	for _, name := range rt.DFS.List() {
		if len(name) > 4 && name[:5] == "/out." {
			t.Errorf("leftover temp file %s", name)
		}
	}
	// Both AMs returned to the pool.
	if f.Pool.Idle() != 3 {
		t.Fatalf("pool idle = %d, want 3", f.Pool.Idle())
	}
	// History recorded the winner.
	if w, ok := f.History.Winner("wordcount"); !ok || w != res.Winner {
		t.Fatalf("history winner = %v/%v, want %v", w, ok, res.Winner)
	}
}

func TestSpeculativeSecondRunUsesHistory(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, _ := stageInput(t, rt, 4, 1<<20)
	first := runSpeculative(t, f, testWCSpec(names, "/out1"))

	spec2 := testWCSpec(names, "/out2")
	var second *SpecResult
	rt.Eng.After(0, func() {
		rt.RM.Start()
		f.SubmitSpeculative(spec2, func(r *SpecResult) {
			second = r
			rt.RM.Stop()
		})
	})
	rt.Eng.RunUntil(horizon)
	if second == nil || second.Result.Err != nil {
		t.Fatalf("second run failed: %+v", second)
	}
	if !second.FromHistory {
		t.Fatal("second run did not use the history pre-decision")
	}
	if second.Winner != first.Winner {
		t.Fatalf("history winner %v != first run winner %v", second.Winner, first.Winner)
	}
	// With only one mode running, the second run is at least as fast as the
	// first (no speculative overhead contending for resources).
	if second.Elapsed() > first.Elapsed()*1.25 {
		t.Errorf("history run (%.2fs) much slower than speculative run (%.2fs)",
			second.Elapsed(), first.Elapsed())
	}
}

func TestSpeculativeHistoryPersistsAcrossFrameworks(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, _ := stageInput(t, rt, 4, 512<<10)
	runSpeculative(t, f, testWCSpec(names, "/out1"))

	// A new framework over the same DFS (proxy restart) loads the history.
	f2 := NewFramework(rt, 0, FullUPlus())
	ready := false
	rt.Eng.After(0, func() { f2.Start(func() { ready = true }) })
	rt.Eng.RunUntil(rt.Eng.Now().Add(1 << 30))
	if !ready {
		t.Fatal("second framework never started")
	}
	if _, ok := f2.History.Winner("wordcount"); !ok {
		t.Fatal("restarted proxy lost the execution history")
	}
}

func TestSpeculativeComputeBoundJobPicksUPlus(t *testing.T) {
	// A PI-like job: 4 tiny splits, heavy fixed compute. One U+ wave does
	// all maps in parallel with no container launches; the estimator must
	// pick U+.
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	var names []string
	for i := 0; i < 4; i++ {
		name := mapreduce.PartFileName("/in/pi", i)
		rt.DFS.PutInstant(name, []byte("x\n"), rt.Cluster.Workers()[i%4])
		names = append(names, name)
	}
	spec := testWCSpec(names, "/out")
	spec.JobKey = "pi-like"
	spec.MapFixedCost = 3e9 // 3 s of compute per map
	res := runSpeculative(t, f, spec)
	if res.Result.Err != nil {
		t.Fatalf("job failed: %v", res.Result.Err)
	}
	if res.Winner != ModeUPlus {
		t.Fatalf("winner = %v, want uplus for a compute-bound 4-map job (estimates D=%v U=%v)",
			res.Winner, res.EstimateD, res.EstimateU)
	}
}

func TestSpeculativeWideJobPicksDPlus(t *testing.T) {
	// 16 heavy maps on a 4-core U+ node need 4 waves; 16 D+ containers do
	// one wave. D+ must win.
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, _ := stageInput(t, rt, 16, 64<<10)
	spec := testWCSpec(names, "/out")
	spec.JobKey = "wide"
	spec.MapFixedCost = 8e9 // 8 s per map dwarfs launch overhead
	res := runSpeculative(t, f, spec)
	if res.Result.Err != nil {
		t.Fatalf("job failed: %v", res.Result.Err)
	}
	if res.Winner != ModeDPlus {
		t.Fatalf("winner = %v, want dplus (estimates D=%v U=%v)",
			res.Winner, res.EstimateD, res.EstimateU)
	}
}

func TestSpeculativeNeedsPool(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("speculation with a 1-AM pool did not panic")
		}
	}()
	f.SubmitSpeculative(testWCSpec([]string{"/x"}, "/out"), func(*SpecResult) {})
}

// failAllMapAttempts scripts every attempt of every map task to crash
// almost immediately, for jobs whose output file the filter accepts.
func failAllMapAttempts(rt *mapreduce.Runtime, splits, maxAttempts int, filter func(string) bool) {
	fi := mapreduce.NewFaultInjector(1, 0, 0)
	fi.JobFilter = filter
	for idx := 0; idx < splits; idx++ {
		for a := 0; a < maxAttempts; a++ {
			fi.Fail("map", idx, a, 0.01)
		}
	}
	rt.Faults = fi
}

// Regression for the speculative-race failure bug: a mode that crashes
// (here U+, via fatal map faults exhausting MaxTaskAttempts) used to be
// declared the race winner — killing the healthy D+, promoting a
// nonexistent output, and failing the whole job. The crashed mode must
// drop out and the survivor must win.
func TestSpeculativeSurvivesOneModeCrash(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 4, 1<<20)
	failAllMapAttempts(rt, 4, rt.Params.MaxTaskAttempts, func(out string) bool {
		return strings.HasSuffix(out, ".__uplus")
	})

	res := runSpeculative(t, f, testWCSpec(names, "/out"))
	if res.Result.Err != nil {
		t.Fatalf("job failed despite a healthy D+ mode: %v", res.Result.Err)
	}
	if res.Winner != ModeDPlus {
		t.Fatalf("winner = %v, want the surviving dplus", res.Winner)
	}
	if rt.Faults.Injected == 0 {
		t.Fatal("no faults delivered; the test exercised nothing")
	}
	verifyWC(t, rt, "/out", all)
	// The crashed mode's temp output is cleaned up.
	for _, name := range rt.DFS.List() {
		if strings.HasPrefix(name, "/out.__") {
			t.Errorf("leftover temp file %s", name)
		}
	}
	// Both AMs returned to the pool (the crashed one released on failure).
	if f.Pool.Idle() != 3 {
		t.Fatalf("pool idle = %d, want 3", f.Pool.Idle())
	}
	// The survivor's win is recorded for future pre-decisions.
	if w, ok := f.History.Winner("wordcount"); !ok || w != ModeDPlus {
		t.Fatalf("history winner = %v/%v", w, ok)
	}
}

// Mirror case: D+ crashes, U+ survives and wins.
func TestSpeculativeSurvivesDPlusCrash(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 4, 1<<20)
	failAllMapAttempts(rt, 4, rt.Params.MaxTaskAttempts, func(out string) bool {
		return strings.HasSuffix(out, ".__dplus")
	})

	res := runSpeculative(t, f, testWCSpec(names, "/out"))
	if res.Result.Err != nil {
		t.Fatalf("job failed despite a healthy U+ mode: %v", res.Result.Err)
	}
	if res.Winner != ModeUPlus {
		t.Fatalf("winner = %v, want the surviving uplus", res.Winner)
	}
	verifyWC(t, rt, "/out", all)
	if f.Pool.Idle() != 3 {
		t.Fatalf("pool idle = %d, want 3", f.Pool.Idle())
	}
}

// Only when both modes crash does the speculative job fail as a whole —
// with the underlying task error, clean temp state, and a free pool.
func TestSpeculativeBothModesCrashFailsJob(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, _ := stageInput(t, rt, 4, 512<<10)
	failAllMapAttempts(rt, 4, rt.Params.MaxTaskAttempts, nil) // both modes

	res := runSpeculative(t, f, testWCSpec(names, "/out"))
	if res.Result.Err == nil {
		t.Fatal("job succeeded with every mode crashed")
	}
	for _, name := range rt.DFS.List() {
		if strings.HasPrefix(name, "/out") {
			t.Errorf("output or temp file %s exists after total failure", name)
		}
	}
	if f.Pool.Idle() != 3 {
		t.Fatalf("pool idle = %d, want 3", f.Pool.Idle())
	}
	// A failed run must not poison the history with a phantom winner.
	if _, ok := f.History.Winner("wordcount"); ok {
		t.Fatal("failed job recorded a history winner")
	}
}

func TestSpeculativeOutputMatchesSingleMode(t *testing.T) {
	// The speculative pipeline (temp outputs + rename) must not corrupt the
	// result: compare with a plain D+ run.
	mk := func() (*mapreduce.Runtime, *Framework, []string, []byte) {
		rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
		f := startFramework(t, rt, 3)
		names, all := stageInput(t, rt, 4, 512<<10)
		return rt, f, names, all
	}
	rtA, fA, namesA, allA := mk()
	resA := runSpeculative(t, fA, testWCSpec(namesA, "/out"))
	if resA.Result.Err != nil {
		t.Fatal(resA.Result.Err)
	}
	verifyWC(t, rtA, "/out", allA)

	rtB, fB, namesB, _ := mk()
	var resB *mapreduce.Result
	rtB.Eng.After(0, func() {
		fB.SubmitDPlus(testWCSpec(namesB, "/out"), func(r *mapreduce.Result) {
			resB = r
			rtB.RM.Stop()
		})
	})
	rtB.Eng.RunUntil(horizon)
	a, _ := rtA.DFS.Contents(mapreduce.PartFileName("/out", 0))
	b, _ := rtB.DFS.Contents(mapreduce.PartFileName("/out", 0))
	if string(a) != string(b) {
		t.Fatal("speculative output differs from plain D+ output")
	}
	_ = resB
}
