// Package core implements MRapid, the paper's contribution: the D+
// resource- and locality-aware scheduler (Algorithm 1), the U+ parallel
// in-memory Uber mode, the AM-pool job submission framework, the
// profile-driven completion-time estimator (Equations 1–3), and the
// speculative dual-mode executor with its decision maker.
package core

import (
	"sort"

	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// DPlusOptions toggle the individual D+ optimizations so the Figure 14
// ablation can switch each one off independently. The zero value is the
// stock-equivalent configuration; FullDPlus() is the paper's D+ mode.
type DPlusOptions struct {
	// SameHeartbeat answers container requests from the RM's Cluster
	// Resource view in the requesting heartbeat instead of waiting for
	// NodeManager status reports ("reducing communication").
	SameHeartbeat bool

	// LocalityAware serves asks in NodeLocal → RackLocal → ANY tiers
	// ("locality awareness"). When off, every ask is treated as ANY.
	LocalityAware bool

	// BalancedSpread sorts nodes by available dominant resource in
	// descending order and hands out one container per node per sweep
	// (the paper's "round-robin technique"). When off, nodes are walked in
	// fixed order and packed greedily, like the stock scheduler.
	BalancedSpread bool
}

// FullDPlus returns the paper's complete D+ configuration.
func FullDPlus() DPlusOptions {
	return DPlusOptions{SameHeartbeat: true, LocalityAware: true, BalancedSpread: true}
}

// DPlusScheduler is MRapid's improved CapacityScheduler (Algorithm 1). It
// allocates from the ResourceManager's per-node resource snapshot the
// moment a request arrives, spreading containers across relatively idle
// nodes and honoring data locality tiers.
type DPlusScheduler struct {
	opts  DPlusOptions
	queue []*yarn.Ask // asks the cluster could not satisfy yet
}

// NewDPlusScheduler builds the scheduler with the given toggles.
func NewDPlusScheduler(opts DPlusOptions) *DPlusScheduler {
	return &DPlusScheduler{opts: opts}
}

// Name implements yarn.Scheduler.
func (s *DPlusScheduler) Name() string { return "mrapid-dplus" }

// Options returns the active toggles.
func (s *DPlusScheduler) Options() DPlusOptions { return s.opts }

// Queued reports the number of pending asks (for tests).
func (s *DPlusScheduler) Queued() int { return len(s.queue) }

// OnAllocate implements yarn.Scheduler. With SameHeartbeat on, Algorithm 1
// runs immediately against the Cluster Resource snapshot and the grants ride
// back in the same heartbeat's response; anything that did not fit stays
// queued. With SameHeartbeat off the asks queue like stock Hadoop and are
// only served on node heartbeats (but still with Algorithm 1's placement).
func (s *DPlusScheduler) OnAllocate(rm *yarn.RM, app *yarn.App, asks []*yarn.Ask) []*yarn.Container {
	for _, a := range asks {
		if a.App != app {
			panic("core: ask routed to wrong app")
		}
		s.queue = append(s.queue, a)
		app.AddPending(a)
	}
	if !s.opts.SameHeartbeat {
		return nil
	}
	return s.allocate(rm, app)
}

// OnNodeUpdate implements yarn.Scheduler: leftover queued asks (cluster was
// full, or SameHeartbeat is off) are served as resources free up. Grants
// here are buffered for the app's next heartbeat, as in stock Hadoop.
func (s *DPlusScheduler) OnNodeUpdate(rm *yarn.RM, nt *yarn.NodeTracker) {
	if len(s.queue) == 0 {
		return
	}
	s.allocate(rm, nil)
}

// allocate runs Algorithm 1 over the RM's Cluster Resource snapshot. Grants
// for requester ride back in the same heartbeat's response (returned);
// grants for any other app — or when requester is nil — are delivered
// through the normal buffered path.
func (s *DPlusScheduler) allocate(rm *yarn.RM, requester *yarn.App) []*yarn.Container {
	trackers := rm.Trackers()
	s.compactQueue()
	if len(s.queue) == 0 {
		return nil
	}
	var granted []*yarn.Container

	// Line 1: types = {NodeLocal, RackLocal, ANY}. Without locality
	// awareness everything is ANY.
	tiers := []yarn.Locality{yarn.NodeLocal, yarn.RackLocal, yarn.Any}
	if !s.opts.LocalityAware {
		tiers = []yarn.Locality{yarn.Any}
	}

	for _, tier := range tiers {
		// Lines 3–4: decide the dominant resource and sort nodes by
		// available dominant resource, descending, so relatively idle nodes
		// come first.
		nodes := append([]*yarn.NodeTracker(nil), trackers...)
		if s.opts.BalancedSpread {
			dominant := topology.DominantOf(rm.TotalUsed(), rm.TotalCapacity())
			sort.SliceStable(nodes, func(i, j int) bool {
				return dominant.Of(nodes[i].Avail) > dominant.Of(nodes[j].Avail)
			})
		}
		// Lines 5–16, adapted to the paper's round-robin description: sweep
		// the sorted nodes granting at most one matching ask per node per
		// sweep, repeating until a full sweep grants nothing. (A literal
		// reading of the pseudocode packs each node before moving on, which
		// contradicts the paper's own "spreads tasks ... uniformly" and
		// "round-robin technique" discussion; we follow the prose. The
		// BalancedSpread=false ablation restores the literal greedy packing.)
		grant := func(ask *yarn.Ask, nt *yarn.NodeTracker) {
			c := rm.Grant(ask, nt)
			ask.App.RemovePending(ask)
			if requester != nil && ask.App == requester && !ask.IsDirect() {
				granted = append(granted, c)
			} else {
				ask.Deliver(c)
			}
		}
		if s.opts.BalancedSpread {
			for {
				progress := false
				for _, nt := range nodes {
					if ask := s.takeMatch(rm, nt, tier); ask != nil {
						grant(ask, nt)
						progress = true
					}
				}
				if !progress {
					break
				}
			}
		} else {
			for _, nt := range nodes {
				for {
					ask := s.takeMatch(rm, nt, tier)
					if ask == nil {
						break
					}
					grant(ask, nt)
				}
			}
		}
		if len(s.queue) == 0 {
			break
		}
	}
	return granted
}

// takeMatch removes and returns the first queued ask that fits the node,
// respects its tenant queue's capacity, and matches the locality tier (an
// ask whose achieved locality on this node equals the tier — under
// locality-blind operation every ask matches ANY).
func (s *DPlusScheduler) takeMatch(rm *yarn.RM, nt *yarn.NodeTracker, tier yarn.Locality) *yarn.Ask {
	for i, a := range s.queue {
		if !a.App.Alive() {
			continue // compacted later
		}
		if !a.Resource.FitsIn(nt.Avail) || !rm.QueueAllows(a.App, a.Resource) {
			continue
		}
		if s.opts.LocalityAware && a.LocalityOn(nt.Node) != tier {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		return a
	}
	return nil
}

// compactQueue drops asks from dead apps.
func (s *DPlusScheduler) compactQueue() {
	keep := s.queue[:0]
	for _, a := range s.queue {
		if a.App.Alive() {
			keep = append(keep, a)
		} else {
			a.App.RemovePending(a)
		}
	}
	s.queue = keep
}
