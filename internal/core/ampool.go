package core

import (
	"fmt"

	"mrapid/internal/mapreduce"
	"mrapid/internal/rpc"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// PooledAM is one reserved ApplicationMaster: a warm JVM holding its
// container, waiting for the proxy to hand it a job.
type PooledAM struct {
	ID        int
	Container *yarn.Container
	Node      *topology.Node
	app       *yarn.App // the pool's own app owning the AM container
	busy      bool
}

// Pool is the proxy's reserve of ApplicationMasters, the heart of the
// MRapid job submission framework: "reserves an ApplicationMaster pool for
// reuse and avoids the long waiting time to initialize new ones for short
// jobs." AMs are launched once at cluster start (cost paid outside any
// measured job) and handed out/returned over the proxy's RPC.
type Pool struct {
	rt      *mapreduce.Runtime
	size    int
	ams     []*PooledAM
	idle    []*PooledAM
	waiters []func(*PooledAM)

	// link carries the proxy↔AM control RPCs (the paper implements these
	// over Spring Hadoop).
	link *rpc.Link

	// Dispatches counts jobs served, for metrics.
	Dispatches int64
}

// NewPool creates an (unstarted) AM pool of the given size. Size zero is
// legal and models the framework being disabled.
func NewPool(rt *mapreduce.Runtime, size int) *Pool {
	if size < 0 {
		panic("core: negative pool size")
	}
	return &Pool{
		rt:   rt,
		size: size,
		link: rpc.NewLink(rt.Eng, "proxy-am", rt.Params.RPCLatency, 0),
	}
}

// Link exposes the proxy↔AM RPC link for metrics.
func (p *Pool) Link() *rpc.Link { return p.link }

// Size returns the configured pool size.
func (p *Pool) Size() int { return p.size }

// Idle returns how many AMs are currently free.
func (p *Pool) Idle() int { return len(p.idle) }

// Start launches the reserved AMs through the normal YARN submission path
// (this is cluster startup work: the proxy pays AM allocation, container
// launch, and initialization once, before any job is measured). ready fires
// when every AM is up.
func (p *Pool) Start(ready func()) {
	if ready == nil {
		panic("core: Pool.Start needs a ready callback")
	}
	if p.size == 0 {
		p.rt.Eng.After(0, ready)
		return
	}
	remaining := p.size
	for i := 0; i < p.size; i++ {
		i := i
		amRes := p.rt.Cluster.Workers()[0].Type.ContainerResource()
		p.rt.RM.SubmitApp(fmt.Sprintf("mrapid-am-pool-%d", i), amRes, func(app *yarn.App, c *yarn.Container) {
			p.rt.Eng.After(p.rt.Params.AMInit, func() {
				am := &PooledAM{ID: i, Container: c, Node: c.Node, app: app}
				p.ams = append(p.ams, am)
				p.idle = append(p.idle, am)
				remaining--
				if remaining == 0 {
					ready()
				}
			})
		})
	}
}

// Acquire hands an idle AM to the callback, queueing if all are busy. The
// handoff costs one proxy→AM RPC.
func (p *Pool) Acquire(fn func(*PooledAM)) {
	if fn == nil {
		panic("core: Pool.Acquire needs a callback")
	}
	if p.size == 0 {
		panic("core: Acquire on a disabled (size-0) pool")
	}
	p.waiters = append(p.waiters, fn)
	p.dispatch()
}

// Release returns an AM to the pool for the next short job.
func (p *Pool) Release(am *PooledAM) {
	if !am.busy {
		panic(fmt.Sprintf("core: AM %d released while idle", am.ID))
	}
	am.busy = false
	p.idle = append(p.idle, am)
	p.dispatch()
}

func (p *Pool) dispatch() {
	for len(p.waiters) > 0 && len(p.idle) > 0 {
		am := p.idle[0]
		p.idle = p.idle[1:]
		fn := p.waiters[0]
		p.waiters = p.waiters[1:]
		am.busy = true
		p.Dispatches++
		p.link.Send(0, func() { fn(am) })
	}
}
