package core

import (
	"fmt"

	"mrapid/internal/mapreduce"
	"mrapid/internal/rpc"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// PooledAM is one reserved ApplicationMaster: a warm JVM holding its
// container, waiting for the proxy to hand it a job.
type PooledAM struct {
	ID        int
	Container *yarn.Container
	Node      *topology.Node
	app       *yarn.App // the pool's own app owning the AM container
	busy      bool

	// lost marks an AM whose node died. A lost AM never returns to the idle
	// list; the pool launches a replacement in the background.
	lost bool

	// onLost, set by the framework while the AM serves a job, is how a job
	// in flight learns its AM just died under it.
	onLost func()
}

// Lost reports whether this AM's node died.
func (am *PooledAM) Lost() bool { return am.lost }

// Pool is the proxy's reserve of ApplicationMasters, the heart of the
// MRapid job submission framework: "reserves an ApplicationMaster pool for
// reuse and avoids the long waiting time to initialize new ones for short
// jobs." AMs are launched once at cluster start (cost paid outside any
// measured job) and handed out/returned over the proxy's RPC. An AM lost
// to node failure is replaced in the background; while none are alive the
// framework degrades to the stock submission path.
type Pool struct {
	rt      *mapreduce.Runtime
	size    int
	ams     []*PooledAM
	idle    []*PooledAM
	waiters []func(*PooledAM)
	nextID  int

	// link carries the proxy↔AM control RPCs (the paper implements these
	// over Spring Hadoop).
	link *rpc.Link

	// Dispatches counts jobs served; Lost counts AMs that died with their
	// node; Replenished counts background replacement launches.
	Dispatches  int64
	Lost        int64
	Replenished int64
}

// NewPool creates an (unstarted) AM pool of the given size. Size zero is
// legal and models the framework being disabled.
func NewPool(rt *mapreduce.Runtime, size int) *Pool {
	if size < 0 {
		panic("core: negative pool size")
	}
	return &Pool{
		rt:   rt,
		size: size,
		link: rpc.NewLink(rt.Eng, "proxy-am", rt.Params.RPCLatency, 0),
	}
}

// Link exposes the proxy↔AM RPC link for metrics.
func (p *Pool) Link() *rpc.Link { return p.link }

// Size returns the configured pool size.
func (p *Pool) Size() int { return p.size }

// Idle returns how many AMs are currently free.
func (p *Pool) Idle() int { return len(p.idle) }

// AliveAMs returns how many pooled AMs currently exist (idle or serving a
// job). Replacements still launching don't count yet.
func (p *Pool) AliveAMs() int { return len(p.ams) }

// Exhausted reports that the pool has no live AM to offer — every reserved
// AM died and the replacements are still coming up (or the pool has size
// zero). The framework falls back to stock submission rather than queueing
// jobs behind the relaunches.
func (p *Pool) Exhausted() bool { return len(p.ams) == 0 }

// Start launches the reserved AMs through the normal YARN submission path
// (this is cluster startup work: the proxy pays AM allocation, container
// launch, and initialization once, before any job is measured). ready fires
// when every AM is up.
func (p *Pool) Start(ready func()) {
	if ready == nil {
		panic("core: Pool.Start needs a ready callback")
	}
	if p.size == 0 {
		p.rt.Eng.After(0, ready)
		return
	}
	remaining := p.size
	for i := 0; i < p.size; i++ {
		p.launchOne(func() {
			remaining--
			if remaining == 0 {
				ready()
			}
		})
	}
}

// launchOne brings one AM up through SubmitApp. The loss handler is
// registered on the pool's app before any container exists, so a node that
// dies at any point — during launch, while idle, or mid-job — is noticed.
// up, when non-nil, fires once the AM is serving (it does not fire for an
// AM that dies while launching; the replacement carries no callback).
func (p *Pool) launchOne(up func()) {
	id := p.nextID
	p.nextID++
	holder := &PooledAM{ID: id}
	app := p.rt.RM.SubmitApp(fmt.Sprintf("mrapid-am-pool-%d", id), p.rt.AMResource(), func(_ *yarn.App, c *yarn.Container) {
		p.rt.Eng.After(p.rt.Params.AMInit, func() {
			if holder.lost {
				return
			}
			holder.Container = c
			holder.Node = c.Node
			p.ams = append(p.ams, holder)
			p.idle = append(p.idle, holder)
			p.rt.Trace.Add("pool", "AM %d up on %s", holder.ID, c.Node.Name)
			if up != nil {
				up()
			}
			p.dispatch()
		})
	})
	holder.app = app
	app.OnContainerLost = func(*yarn.Container) { p.amLost(holder) }
}

// amLost handles an AM container dying with its node: the AM leaves the
// pool, any job it was serving is told, and a replacement launches in the
// background (jobs queued meanwhile fall back to stock submission via
// Exhausted, or wait for the replacement if other AMs remain).
func (p *Pool) amLost(am *PooledAM) {
	if am.lost {
		return
	}
	am.lost = true
	p.Lost++
	for i, x := range p.idle {
		if x == am {
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			break
		}
	}
	for i, x := range p.ams {
		if x == am {
			p.ams = append(p.ams[:i], p.ams[i+1:]...)
			break
		}
	}
	p.rt.Trace.Add("pool", "AM %d lost with its node; launching replacement", am.ID)
	if am.busy && am.onLost != nil {
		cb := am.onLost
		am.onLost = nil
		cb()
	}
	p.Replenished++
	p.launchOne(nil)
}

// Acquire hands an idle AM to the callback, queueing if all are busy. The
// handoff costs one proxy→AM RPC.
func (p *Pool) Acquire(fn func(*PooledAM)) {
	if fn == nil {
		panic("core: Pool.Acquire needs a callback")
	}
	if p.size == 0 {
		panic("core: Acquire on a disabled (size-0) pool")
	}
	p.waiters = append(p.waiters, fn)
	p.dispatch()
}

// Release returns an AM to the pool for the next short job. The completion
// report travels AM→proxy over the same link as Acquire's dispatch, and is
// charged the same RPC — the accounting must be symmetric. A lost AM is not
// re-idled; its replacement is already launching.
func (p *Pool) Release(am *PooledAM) {
	if !am.busy {
		panic(fmt.Sprintf("core: AM %d released while idle", am.ID))
	}
	am.busy = false
	am.onLost = nil
	if am.lost {
		return
	}
	p.link.Send(0, func() {
		if am.lost {
			// The node died while the completion report was in flight.
			return
		}
		p.idle = append(p.idle, am)
		p.dispatch()
	})
}

func (p *Pool) dispatch() {
	for len(p.waiters) > 0 && len(p.idle) > 0 {
		am := p.idle[0]
		p.idle = p.idle[1:]
		fn := p.waiters[0]
		p.waiters = p.waiters[1:]
		am.busy = true
		p.Dispatches++
		p.link.Send(0, func() {
			if am.lost {
				// The AM died while the dispatch RPC was in flight: put the
				// job back at the head of the queue for the next AM (or the
				// background replacement).
				p.waiters = append([]func(*PooledAM){fn}, p.waiters...)
				p.dispatch()
				return
			}
			fn(am)
		})
	}
}
