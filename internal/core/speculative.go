package core

import (
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// SpecResult is the outcome of a speculative submission.
type SpecResult struct {
	Result *mapreduce.Result
	Winner ModeKind

	// FromHistory is true when the decision maker answered from the
	// execution-record store and only one mode ran.
	FromHistory bool

	// FromPrediction is true when the calibrating estimator pre-decided the
	// mode from workload-class aggregates (no exact history record, no
	// race); Predicted is its calibrated completion-time prediction.
	FromPrediction bool
	Predicted      time.Duration

	// DecidedAt is when the estimator's verdict killed the slower mode
	// (zero when the decision came from history or a mode finishing first).
	DecidedAt sim.Time

	// EstimateD and EstimateU are the Equation 2/3 estimates the decision
	// used (zero when no estimate was needed).
	EstimateD time.Duration
	EstimateU time.Duration

	// Span is the root of the race's span tree in the run's trace.Log (the
	// winner's own job span is a child); 0 when untraced or pre-decided
	// from history (then the winner's Result.Profile.Span is the root).
	Span trace.SpanID
}

// Elapsed returns the winner's completion time in seconds.
func (r *SpecResult) Elapsed() float64 {
	if r.Result == nil {
		return 0
	}
	return r.Result.Elapsed()
}

// tempOutput names a mode's private output prefix during speculation.
func tempOutput(base string, mode ModeKind) string {
	return base + ".__" + string(mode)
}

// SubmitSpeculative runs a job through the full MRapid workflow of Figure 6:
//
//  1. the client uploads the job artifacts and submits to the proxy;
//  2. the decision maker consults the history — a recorded winner runs
//     alone;
//  3. otherwise both D+ and U+ launch (against private temporary outputs);
//  4. the profiler reports each mode's first completed map;
//  5. the decision maker evaluates Equations 2 and 3 and kills the slower
//     mode;
//  6. the winner's output is promoted and the verdict is recorded for
//     future submissions of the same job key.
func (f *Framework) SubmitSpeculative(spec *mapreduce.JobSpec, done func(*SpecResult)) {
	if done == nil {
		panic("core: SubmitSpeculative needs a completion callback")
	}
	if f.Pool.Size() < 2 {
		panic("core: speculative execution needs an AM pool of at least 2")
	}

	// Step 0, ahead of even the history consult: the memoization cache. A
	// hit ends the whole workflow — no mode ever runs, so there is nothing
	// to decide and no outcome to record (a served result must not feed the
	// estimator's calibration with near-zero elapsed times). On a miss the
	// commit hook rides each branch's completion; the branches below submit
	// through submitNoMemo/race so the one lookup here is the only one.
	serve, commit := f.memoLookup(spec)
	if serve != nil {
		serve(func(res *mapreduce.Result) {
			done(&SpecResult{Result: res, Winner: ModeMemo})
		})
		return
	}
	if commit != nil {
		inner := done
		done = func(out *SpecResult) {
			if out.Result != nil {
				commit(out.Result)
			}
			inner(out)
		}
	}

	// Pre-decision from history (step 2).
	if winner, ok := f.History.Winner(spec.Key()); ok {
		f.RT.Reg.Inc(metrics.With("estimator_direct_total", "source", "history"))
		exec := Executor(uplusExecutor{})
		if winner == ModeDPlus {
			exec = dplusExecutor{}
		}
		f.submitNoMemo(exec, spec, func(res *mapreduce.Result) {
			f.recordOutcome(spec, winner, res)
			out := &SpecResult{Result: res, Winner: winner, FromHistory: true}
			if res.Profile != nil {
				out.Span = res.Profile.Span
			}
			done(out)
		})
		return
	}

	// Pre-decision from the calibrating estimator: a job whose workload
	// class has converged launches the projected winner directly — no 2×
	// dual-launch — and its outcome keeps calibrating the class.
	if pred, ok := f.PredictMode(spec); ok {
		exec, err := ExecutorFor(pred.Mode)
		if err == nil {
			f.RT.Reg.Inc(metrics.With("estimator_direct_total", "source", "prediction"))
			f.RT.Trace.Add("proxy", "estimator pre-decision: %s direct (predicted %s, class %s over %d runs)",
				pred.Mode, pred.Runtime, pred.Class, pred.Runs)
			f.submitNoMemo(exec, spec, func(res *mapreduce.Result) {
				f.recordOutcome(spec, pred.Mode, res)
				f.accountPrediction(pred, spec, res)
				out := &SpecResult{
					Result: res, Winner: pred.Mode,
					FromPrediction: true, Predicted: pred.Runtime,
					EstimateD: pred.EstimateD, EstimateU: pred.EstimateU,
				}
				if res.Profile != nil {
					out.Span = res.Profile.Span
				}
				done(out)
			})
			return
		}
	}

	f.RT.Reg.Inc("estimator_race_total")
	root := f.RT.Trace.StartSpan(0, "job", spec.Name, "", trace.A("mode", "speculative"))
	uploadStart := f.RT.Eng.Now()
	f.RT.UploadArtifacts(spec, func(err error) {
		f.RT.Trace.SpanSince(root, "client", "upload artifacts", "submit", uploadStart)
		if err != nil {
			f.RT.Trace.EndSpan(root, trace.A("error", err.Error()))
			done(&SpecResult{Result: &mapreduce.Result{Spec: spec, Err: err}, Span: root})
			return
		}
		f.race(spec, root, done)
	})
}

// race runs both modes and arbitrates (steps 3–6). A mode that crashes
// (e.g. a fault-injected task exhausting MaxTaskAttempts) drops out of the
// race and the surviving mode wins by default; the job as a whole fails
// only when no runnable mode remains.
func (f *Framework) race(spec *mapreduce.JobSpec, root trace.SpanID, done func(*SpecResult)) {
	dSpec := *spec
	dSpec.OutputFile = tempOutput(spec.OutputFile, ModeDPlus)
	uSpec := *spec
	uSpec.OutputFile = tempOutput(spec.OutputFile, ModeUPlus)

	out := &SpecResult{Span: root}
	decided := false
	finished := false
	var dHandle, uHandle *handle
	var dSample, uSample *profiler.TaskProfile
	crashed := map[ModeKind]bool{}
	var firstErr error

	finish := func(winner ModeKind, res *mapreduce.Result) {
		if finished {
			return
		}
		finished = true
		// Kill the loser if it is still running (a finished mode's kill is
		// a no-op).
		if winner == ModeDPlus && uHandle != nil {
			uHandle.Kill()
		}
		if winner == ModeUPlus && dHandle != nil {
			dHandle.Kill()
		}
		// Promote the winner's output and discard the loser's — from HDFS
		// and the intermediate store both, since intra-query stages commit
		// their racing temp outputs to the store.
		f.RT.DeleteOutputPrefix(tempOutput(spec.OutputFile, loserOf(winner)))
		if err := f.RT.RenameOutputPrefix(tempOutput(spec.OutputFile, winner), spec.OutputFile); err != nil && res.Err == nil {
			res.Err = err
		}
		res.Spec = spec
		out.Result = res
		out.Winner = winner
		if res.Profile != nil {
			// The verdict instant belongs in the winner's profile too, so
			// the analyzer and the cost model read the same record.
			res.Profile.DecidedAt = out.DecidedAt
		}
		f.RT.Trace.EndSpan(root, trace.A("winner", string(winner)))
		f.recordOutcome(spec, winner, res)
		done(out)
	}

	// handleOf returns the launch handle for a mode (once assigned).
	handleOf := func(mode ModeKind) *handle {
		if mode == ModeDPlus {
			return dHandle
		}
		return uHandle
	}

	// dropOut removes a crashed mode from the race. If the other mode is
	// still runnable it simply inherits the win; if it already crashed or
	// was killed by the decision maker, nobody can produce output and the
	// job fails with the first crash's error.
	dropOut := func(mode ModeKind, res *mapreduce.Result) {
		if finished {
			return
		}
		crashed[mode] = true
		if firstErr == nil {
			firstErr = res.Err
		}
		// The estimator must not kill the sole survivor after this point.
		decided = true
		f.RT.DeleteOutputPrefix(tempOutput(spec.OutputFile, mode))
		other := loserOf(mode)
		otherH := handleOf(other)
		if crashed[other] || (otherH != nil && otherH.killed) {
			finished = true
			f.RT.DeleteOutputPrefix(tempOutput(spec.OutputFile, other))
			out.Result = &mapreduce.Result{Spec: spec, Err: firstErr}
			f.RT.Trace.EndSpan(root, trace.A("error", firstErr.Error()))
			done(out)
		}
	}

	// modeDone routes a mode's completion: clean finishes arbitrate the
	// race, crashes drop the mode out.
	modeDone := func(mode ModeKind) func(*mapreduce.Result) {
		return func(res *mapreduce.Result) {
			if res.Err != nil {
				dropOut(mode, res)
				return
			}
			finish(mode, res)
		}
	}

	// Step 5: once the profiler has a sample, estimate both modes and kill
	// the projected loser. Map compute time is mode-independent, so the
	// first sample from either mode suffices.
	decide := func() {
		if decided || finished {
			return
		}
		sample := dSample
		if sample == nil {
			sample = uSample
		}
		if sample == nil {
			return
		}
		decided = true
		in := f.estimatorInputs(spec)
		in.TM = sample.ComputeDur
		in.SI = sample.InputBytes
		in.SO = sample.OutputBytes
		out.EstimateU = EstimateUPlus(in)
		out.EstimateD = EstimateDPlus(in)
		out.DecidedAt = f.RT.Eng.Now()
		projected := Decide(in)
		// The decision instant is a point event on the race span: which
		// mode was projected to lose, and from which estimates.
		f.RT.Trace.Annotate(root,
			trace.A("decided_at", out.DecidedAt.String()),
			trace.A("estimate_dplus", out.EstimateD.String()),
			trace.A("estimate_uplus", out.EstimateU.String()),
			trace.A("projected_winner", string(projected)))
		f.RT.Trace.Add("proxy", "speculative decision: %s projected to win (D+=%s U+=%s)",
			projected, out.EstimateD, out.EstimateU)
		if projected == ModeDPlus {
			uHandle.Kill()
		} else {
			dHandle.Kill()
		}
	}

	dHandle = f.launch(dplusExecutor{}, &dSpec, root, func(tp *profiler.TaskProfile) {
		if dSample == nil {
			dSample = tp
			decide()
		}
	}, modeDone(ModeDPlus))
	uHandle = f.launch(uplusExecutor{}, &uSpec, root, func(tp *profiler.TaskProfile) {
		if uSample == nil {
			uSample = tp
			decide()
		}
	}, modeDone(ModeUPlus))
}

func loserOf(winner ModeKind) ModeKind {
	if winner == ModeDPlus {
		return ModeUPlus
	}
	return ModeDPlus
}

// recordOutcome updates the history with the finished run (step 6): the
// exact-match running aggregates and the workload class's calibration.
func (f *Framework) recordOutcome(spec *mapreduce.JobSpec, winner ModeKind, res *mapreduce.Result) {
	if res.Err != nil || res.Profile == nil {
		return
	}
	sum := res.Profile.Summarize()
	f.History.Record(spec.Key(), winner, res.Profile.Elapsed(), sum)
	f.calibrate(spec, winner, res.Profile.Elapsed(), sum)
	// Persisting the snapshot mirrors the profiler uploading records to
	// HDFS; failures only cost future pre-decisions.
	_ = f.History.Save(f.RT.DFS)
}

// countSplits returns n^m for the estimator.
func countSplits(rt *mapreduce.Runtime, spec *mapreduce.JobSpec) int {
	splits, err := rt.Splits(spec.InputFiles)
	if err != nil {
		return 0
	}
	return len(splits)
}
