package core

import (
	"errors"

	"mrapid/internal/mapreduce"
	"mrapid/internal/memo"
	"mrapid/internal/profiler"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// Framework is the MRapid job submission framework: the proxy with its AM
// pool, the execution-record history, and the configured U+ options. One
// Framework serves one simulated cluster.
type Framework struct {
	RT      *mapreduce.Runtime
	Pool    *Pool
	History *History
	UOpts   UPlusOptions

	// NotifyPoll makes the framework report completion at the client's next
	// status-poll tick instead of over the proxy's direct RPC. It exists
	// only for the "reducing communication" ablation (Figures 14–15); the
	// real framework always notifies directly.
	NotifyPoll bool

	// Memo, when non-nil, attaches the cross-job memoization cache: every
	// Submit/SubmitSpeculative consults it first, a hit skips execution
	// entirely (ModeMemo result, zero containers), and a miss commits the
	// successful fresh output for future identical submissions. Attached by
	// the bench/CLI layers when Params.MemoCache is set; nil means every
	// submission executes.
	Memo *memo.Cache

	// Predict enables the online-calibrating estimator: speculative
	// submissions whose workload class has passed the history's confidence
	// gate launch the projected winner directly instead of paying the 2×
	// dual-launch. Off by default — the paper's decision maker only trusts
	// exact-match history.
	Predict bool

	// StockFallbacks counts jobs routed through the stock submission path
	// because the AM pool had no live AM to offer (every reserved AM died
	// and the replacements were still launching).
	StockFallbacks int64

	started bool
}

// notify delivers a finished result to the client: direct RPC normally,
// poll-aligned under the communication ablation.
func (f *Framework) notify(prof *profiler.JobProfile, res *mapreduce.Result, done func(*mapreduce.Result)) {
	if !f.NotifyPoll {
		f.RT.Trace.EndSpan(prof.Span)
		done(res)
		return
	}
	pollStart := f.RT.Eng.Now()
	f.RT.PollAlignedNotify(prof.SubmittedAt, func() {
		if res.Profile != nil {
			res.Profile.DoneAt = f.RT.Eng.Now()
		}
		f.RT.Trace.SpanSince(prof.Span, "client", "poll wait", "notify", pollStart)
		f.RT.Trace.EndSpan(prof.Span)
		done(res)
	})
}

// NewFramework assembles the framework over a runtime. poolSize is the
// number of reserved AMs (the paper's default is 3, from the cost model's
// AMPoolSize).
func NewFramework(rt *mapreduce.Runtime, poolSize int, uopts UPlusOptions) *Framework {
	return &Framework{
		RT:      rt,
		Pool:    NewPool(rt, poolSize),
		History: NewHistory(),
		UOpts:   uopts,
	}
}

// Start launches the proxy service: the AM pool comes up and any persisted
// history is loaded. ready fires when the framework can accept jobs.
func (f *Framework) Start(ready func()) {
	if f.started {
		panic("core: framework started twice")
	}
	f.started = true
	if err := f.History.Load(f.RT.DFS); err != nil {
		// A corrupt history snapshot only disables pre-decisions.
		f.History = NewHistory()
	}
	f.Pool.Start(ready)
}

// handle tracks a mode execution whose AM materializes asynchronously, so
// the decision maker can kill it at any point.
type handle struct {
	killed bool
	killFn func()
}

func (h *handle) Kill() {
	h.killed = true
	if h.killFn != nil {
		h.killFn()
	}
}

func (h *handle) attach(kill func()) {
	h.killFn = kill
	if h.killed {
		kill()
	}
}

// SubmitDPlus runs a job in D+ mode through the framework: artifacts are
// uploaded, a pooled AM is dispatched by the proxy (no AM allocation or JVM
// start), and the distributed AM requests containers from the D+ scheduler.
// If the serving AM dies with its node the job is relaunched (fresh pooled
// AM, partial output removed) up to Params.MaxAMAttempts times; if the pool
// has no live AM at all, the job degrades to the stock submission path.
func (f *Framework) SubmitDPlus(spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	f.Submit(dplusExecutor{}, spec, done)
}

// SubmitUPlus runs a job in U+ mode through the framework, with the same
// AM-loss relaunch and pool-exhaustion degradation as SubmitDPlus (the
// stock path for U+ is a cold-submitted uber-style AM).
func (f *Framework) SubmitUPlus(spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	f.Submit(uplusExecutor{}, spec, done)
}

// fallBackToStock records and traces a pool-exhaustion degradation, then
// runs the stock submission closure.
func (f *Framework) fallBackToStock(spec *mapreduce.JobSpec, submit func()) {
	f.StockFallbacks++
	f.RT.Trace.Add("proxy", "AM pool exhausted; job %s falls back to stock submission", spec.Name)
	submit()
}

// retryLostAM relaunches a job whose serving AM died, if the attempt budget
// allows: partial output is removed first so the re-run's writes don't
// collide. Returns true when the retry was taken.
func (f *Framework) retryLostAM(spec *mapreduce.JobSpec, attempt int, res *mapreduce.Result, relaunch func()) bool {
	if !errors.Is(res.Err, mapreduce.ErrAMLost) || attempt >= f.RT.Params.MaxAMAttempts {
		return false
	}
	f.RT.Trace.Add("proxy", "job %s attempt %d lost its AM; relaunching", spec.Name, attempt)
	f.RT.DeleteOutputPrefix(spec.OutputFile)
	relaunch()
	return true
}

// SubmitUPlusCold runs U+ without the submission framework (for the Figure
// 15 ablation): the AM is allocated and launched through the normal YARN
// path, then executes the U+ task plan.
func SubmitUPlusCold(rt *mapreduce.Runtime, spec *mapreduce.JobSpec, uopts UPlusOptions, done func(*mapreduce.Result)) {
	if done == nil {
		panic("core: SubmitUPlusCold needs a completion callback")
	}
	prof := &profiler.JobProfile{
		Job:         spec.Key(),
		Mode:        string(ModeUPlus),
		SubmittedAt: rt.Eng.Now(),
	}
	prof.Span = rt.Trace.StartSpan(0, "job", spec.Name+" (uplus cold)", "",
		trace.A("mode", string(ModeUPlus)))
	fail := func(err error) {
		prof.DoneAt = rt.Eng.Now()
		rt.Trace.EndSpan(prof.Span, trace.A("error", err.Error()))
		done(&mapreduce.Result{Spec: spec, Mode: string(ModeUPlus), Profile: prof, Err: err})
	}
	uploadStart := rt.Eng.Now()
	rt.UploadArtifacts(spec, func(err error) {
		rt.Trace.SpanSince(prof.Span, "client", "upload artifacts", "submit", uploadStart)
		if err != nil {
			fail(err)
			return
		}
		amSpan := rt.Trace.StartSpan(prof.Span, "am", "am-startup", "am", trace.A("cold", "true"))
		app := rt.RM.SubmitApp(spec.Name, rt.AMResource(), func(app *yarn.App, amC *yarn.Container) {
			amEpoch := amC.Node.Epoch()
			rt.Eng.After(rt.Params.AMInit, func() {
				if !amC.Node.AliveEpoch(amEpoch) {
					return
				}
				rt.Localize(spec, amC.Node, func(err error) {
					if !amC.Node.AliveEpoch(amEpoch) {
						return
					}
					if err != nil {
						fail(err)
						return
					}
					prof.AMReadyAt = rt.Eng.Now()
					prof.AMStartup = prof.AMReadyAt.Sub(prof.SubmittedAt)
					rt.Trace.EndSpan(amSpan)
					am, err := NewUPlusAM(rt, spec, app, amC.Node, prof, uopts)
					if err != nil {
						fail(err)
						return
					}
					am.Run(func(p *profiler.JobProfile, err error) {
						// No proxy here: the stock client polls for status.
						pollStart := rt.Eng.Now()
						rt.PollAlignedNotify(prof.SubmittedAt, func() {
							if p != nil {
								p.DoneAt = rt.Eng.Now()
							}
							rt.Trace.SpanSince(prof.Span, "client", "poll wait", "notify", pollStart)
							rt.Trace.EndSpan(prof.Span)
							done(&mapreduce.Result{Spec: spec, Mode: string(ModeUPlus), Profile: p, Err: err})
						})
					})
				})
			})
		})
		app.Span = amSpan
		// Covers the window before the U+ AM installs its own handler in
		// Run(): an AM node death here would otherwise hang the client.
		app.OnContainerLost = func(c *yarn.Container) {
			if c.Tag == "am" {
				fail(mapreduce.ErrAMLost)
			}
		}
	})
}
