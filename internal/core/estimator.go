package core

import (
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/profiler"
	"mrapid/internal/topology"
)

// EstimatorInputs carries the Table I quantities the decision maker plugs
// into Equations 1–3. Measured values (t^m, s^i, s^o) come from the
// profiler; structural values (n^m, n^c, n_u^m) from the job and cluster;
// rates (d^i, d^o, b^i, t^l) from the cost model and instance type.
type EstimatorInputs struct {
	TM time.Duration // t^m: map-function compute time per task
	SI int64         // s^i: average map input bytes
	SO int64         // s^o: average map output bytes

	NM  int // n^m: number of map tasks
	NC  int // n^c: task containers available cluster-wide (D+)
	NUM int // n_u^m: maps per wave in U+ (vcores × threads per core)

	TL time.Duration // t^l: container launch + JVM start
	DI float64       // d^i: disk input (write) rate, bytes/s
	DO float64       // d^o: disk output (read) rate, bytes/s
	BI float64       // b^i: network bandwidth, bytes/s

	TReduce time.Duration // reduce-phase time, identical across modes (Eq. 2/3 omit it)

	// ShuffleRatio scales s^o in the shuffle terms of Equations 1 and 3:
	// with the node-level shuffle service attached, in-node combining and
	// compression move fewer bytes across the network than the maps
	// emitted (Runtime.ShuffleWireRatio supplies the factor). Zero (unset)
	// and 1 both mean an unscaled shuffle. Spill and merge terms stay at
	// the raw s^o — the service transforms data after the map materializes
	// it.
	ShuffleRatio float64
}

// shuffleBytes is s^o scaled by ShuffleRatio for the shuffle terms.
func (in EstimatorInputs) shuffleBytes() int64 {
	r := in.ShuffleRatio
	if r <= 0 || r >= 1 {
		return in.SO
	}
	return int64(float64(in.SO) * r)
}

// InputsFromProfile builds estimator inputs from a measured job summary and
// the cluster configuration, the way the decision maker assembles them from
// the profiler records uploaded to HDFS.
func InputsFromProfile(s profiler.Summary, nm, nc, num int, it topology.InstanceType, p costmodel.Params) EstimatorInputs {
	return EstimatorInputs{
		TM:  s.AvgMapCPU,
		SI:  s.AvgIn,
		SO:  s.AvgOut,
		NM:  nm,
		NC:  nc,
		NUM: num,
		TL:  p.ContainerStart(),
		DI:  it.DiskWriteBps,
		DO:  it.DiskReadBps,
		BI:  it.NetworkBps,
	}
}

// waves returns ceil(tasks / perWave); the paper writes the plain ratio
// n^m/n^c but a fractional wave is physically a whole extra wave.
func waves(tasks, perWave int) int {
	if perWave <= 0 {
		return tasks
	}
	return (tasks + perWave - 1) / perWave
}

// ioTime converts bytes over a rate into a duration.
func ioTime(bytes int64, rate float64) time.Duration {
	if rate <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / rate * float64(time.Second))
}

// EstimateJob implements Equation 1, the full completion-time model for a
// stock distributed job:
//
//	t^job = t^AM + t^Map + t^Shuffle + t^Reduce
//	      = t^l + (t^l + s^i/d^o + t^m + s^o/d^i + s^o/d^o + s^o/d^i) · n^w
//	        + (s^o · n^c)/b^i + t^Reduce
//
// The merge terms (s^o/d^o + s^o/d^i) are only charged when the output
// overflows the sort buffer and actually merges, matching the paper's
// "if the intermediate data is too large to spill once".
func EstimateJob(in EstimatorInputs, sortBuffer int64) time.Duration {
	nw := waves(in.NM, in.NC)
	perWave := in.TL + ioTime(in.SI, in.DO) + in.TM + ioTime(in.SO, in.DI)
	if in.SO > sortBuffer {
		perWave += ioTime(in.SO, in.DO) + ioTime(in.SO, in.DI)
	}
	shuffle := ioTime(in.shuffleBytes()*int64(in.NC), in.BI)
	return in.TL + perWave*time.Duration(nw) + shuffle + in.TReduce
}

// EstimateUPlus implements Equation 2: with the AM pool removing setup, the
// single container removing shuffle, and the memory cache removing spill
// and merge, only the map compute remains, repeated over the U+ waves:
//
//	t_u = t^m · (n^m / n_u^m)
func EstimateUPlus(in EstimatorInputs) time.Duration {
	return in.TM * time.Duration(waves(in.NM, in.NUM))
}

// EstimateDPlus implements Equation 3: launch, map compute, and a single
// spill per wave, plus one overlapped shuffle term:
//
//	t_d = (t^l + t^m + s^o/d^i) · (n^m / n^c) + (s^o · n^c)/b^i
func EstimateDPlus(in EstimatorInputs) time.Duration {
	perWave := in.TL + in.TM + ioTime(in.SO, in.DI)
	shuffle := ioTime(in.shuffleBytes()*int64(in.NC), in.BI)
	return perWave*time.Duration(waves(in.NM, in.NC)) + shuffle
}

// ModeKind identifies one of the four execution modes.
type ModeKind string

// Execution modes, matching the labels used throughout the benchmarks.
const (
	ModeHadoop ModeKind = "hadoop" // stock distributed
	ModeUber   ModeKind = "uber"   // stock Uber
	ModeDPlus  ModeKind = "dplus"  // MRapid improved distributed
	ModeUPlus  ModeKind = "uplus"  // MRapid improved Uber
)

// Decide compares the Equation 2 and 3 estimates and returns the faster
// MRapid mode. Ties go to U+, the cheaper mode to keep running (one
// container).
func Decide(in EstimatorInputs) ModeKind {
	tu := EstimateUPlus(in)
	td := EstimateDPlus(in)
	if td < tu {
		return ModeDPlus
	}
	return ModeUPlus
}
