package core

import (
	"encoding/json"
	"fmt"
	"slices"
	"time"

	"mrapid/internal/hdfs"
	"mrapid/internal/profiler"
)

// HistoryEntry records the outcome of one profiled execution of a job key.
type HistoryEntry struct {
	Job       string        `json:"job"`
	Winner    ModeKind      `json:"winner"`
	Elapsed   time.Duration `json:"elapsed"`
	AvgMapCPU time.Duration `json:"avg_map_cpu"`
	AvgIn     int64         `json:"avg_in"`
	AvgOut    int64         `json:"avg_out"`
	Runs      int           `json:"runs"`
}

// History is the decision maker's execution-record store. The paper keys
// records by program identity — "based on the execution records of the same
// job, even if they were executed with different input data" — and persists
// them to HDFS so future submissions skip speculative execution.
type History struct {
	entries map[string]*HistoryEntry
}

// NewHistory returns an empty store.
func NewHistory() *History {
	return &History{entries: make(map[string]*HistoryEntry)}
}

// Record stores (or updates) the winner for a job key.
func (h *History) Record(job string, winner ModeKind, elapsed time.Duration, s profiler.Summary) {
	e, ok := h.entries[job]
	if !ok {
		e = &HistoryEntry{Job: job}
		h.entries[job] = e
	}
	e.Winner = winner
	e.Elapsed = elapsed
	e.AvgMapCPU = s.AvgMapCPU
	e.AvgIn = s.AvgIn
	e.AvgOut = s.AvgOut
	e.Runs++
}

// Winner returns the recorded mode for a job key, if any.
func (h *History) Winner(job string) (ModeKind, bool) {
	if e, ok := h.entries[job]; ok {
		return e.Winner, true
	}
	return "", false
}

// Entry returns the full record for a job key.
func (h *History) Entry(job string) (*HistoryEntry, bool) {
	e, ok := h.entries[job]
	return e, ok
}

// Len reports the number of recorded job keys.
func (h *History) Len() int { return len(h.entries) }

// Forget removes a job's record (used by tests and by operators resetting a
// stale decision).
func (h *History) Forget(job string) { delete(h.entries, job) }

const (
	historyPath    = "/mrapid/history.json"
	historyTmpPath = historyPath + ".tmp"
)

// Save serializes the store into HDFS (replacing any previous snapshot).
// The write itself is metadata-sized; like the paper's profile uploads it
// happens off the measured path, so it is staged costlessly.
//
// The replacement is atomic: the new snapshot is staged at a temporary
// name first and renamed over (a pure NameNode metadata operation), so at
// every instant either the old or the new snapshot is durable. The old
// delete-then-put sequence had a window where a crash lost the whole
// history.
func (h *History) Save(dfs *hdfs.DFS) error {
	list := make([]*HistoryEntry, 0, len(h.entries))
	for _, name := range sortedKeys(h.entries) {
		list = append(list, h.entries[name])
	}
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding history: %w", err)
	}
	if dfs.Exists(historyTmpPath) {
		if err := dfs.Delete(historyTmpPath); err != nil {
			return err
		}
	}
	if _, err := dfs.PutInstant(historyTmpPath, data, nil); err != nil {
		return err
	}
	// From here the new snapshot is durable at the temporary name; Load
	// falls back to it if a crash lands between the delete and the rename.
	if dfs.Exists(historyPath) {
		if err := dfs.Delete(historyPath); err != nil {
			return err
		}
	}
	return dfs.Rename(historyTmpPath, historyPath)
}

// Load restores a snapshot saved by Save. A missing snapshot yields an
// empty store, not an error; an interrupted Save is recovered from its
// staged temporary.
func (h *History) Load(dfs *hdfs.DFS) error {
	path := historyPath
	if !dfs.Exists(path) {
		if !dfs.Exists(historyTmpPath) {
			return nil
		}
		path = historyTmpPath
	}
	data, err := dfs.Contents(path)
	if err != nil {
		return err
	}
	var list []*HistoryEntry
	if err := json.Unmarshal(data, &list); err != nil {
		return fmt.Errorf("core: decoding history: %w", err)
	}
	for _, e := range list {
		h.entries[e.Job] = e
	}
	return nil
}

func sortedKeys(m map[string]*HistoryEntry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
