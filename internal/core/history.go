package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"time"

	"mrapid/internal/hdfs"
	"mrapid/internal/profiler"
)

// HistoryEntry records the outcome of the profiled executions of one job
// key. Elapsed, AvgMapCPU, AvgIn, and AvgOut are running means over all
// recorded runs (not last-run values — a single anomalous run used to
// overwrite the whole record and flip future mode decisions); Wins counts
// how often each mode won, and Winner is the majority vote.
type HistoryEntry struct {
	Job       string           `json:"job"`
	Winner    ModeKind         `json:"winner"`
	Elapsed   time.Duration    `json:"elapsed"`
	AvgMapCPU time.Duration    `json:"avg_map_cpu"`
	AvgIn     int64            `json:"avg_in"`
	AvgOut    int64            `json:"avg_out"`
	Runs      int              `json:"runs"`
	Wins      map[ModeKind]int `json:"wins,omitempty"`
}

// Welford is an online mean/variance accumulator (Welford's algorithm),
// the substrate of the calibrating estimator's per-class aggregates.
type Welford struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Add folds one sample into the running aggregates.
func (w *Welford) Add(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (x - w.Mean)
}

// Std returns the sample standard deviation (0 with fewer than 2 samples).
func (w Welford) Std() float64 {
	if w.N < 2 {
		return 0
	}
	return math.Sqrt(w.M2 / float64(w.N-1))
}

// CV returns the coefficient of variation (Std/|Mean|). A zero mean with
// spread is reported as +Inf — never confident.
func (w Welford) CV() float64 {
	s := w.Std()
	if w.Mean == 0 {
		if s == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s / math.Abs(w.Mean)
}

// ClassStats holds the online-calibrating estimator's aggregates for one
// workload class (a job-spec fingerprint family, JobSpec.ClassKey). The
// per-byte rates generalize across input sizes, so repeat and *similar*
// jobs — new names, new data — can be predicted without a speculative race.
type ClassStats struct {
	Class string `json:"class"`
	Runs  int    `json:"runs"`

	// Rate is map-function compute seconds per input byte (t^m / s^i) and
	// Sel is the map selectivity (s^o / s^i): together with a new job's
	// measured split size they reconstruct the Table I inputs of Eq. 2/3.
	Rate Welford `json:"rate"`
	Sel  Welford `json:"sel"`

	// Calib is the measured-elapsed / raw-model-estimate ratio of the
	// winning mode: the online correction for everything Equations 2 and 3
	// deliberately omit (AM dispatch, the reduce phase, queueing inside the
	// job). Predicted runtimes are the raw estimate scaled by this mean.
	Calib Welford `json:"calib"`

	// IntraCV aggregates the within-job coefficient of variation of map
	// compute time: a class whose individual runs are internally skewed is
	// less predictable than its across-run variance alone suggests.
	IntraCV Welford `json:"intra_cv"`

	DWins int `json:"d_wins"`
	UWins int `json:"u_wins"`
}

// History is the decision maker's execution-record store. The paper keys
// records by program identity — "based on the execution records of the same
// job, even if they were executed with different input data" — and persists
// them to HDFS so future submissions skip speculative execution. On top of
// the exact-match entries it keeps per-workload-class calibration aggregates
// (ClassStats) so the estimator can pre-decide jobs it has never seen under
// that exact key.
type History struct {
	entries map[string]*HistoryEntry
	classes map[string]*ClassStats

	// Confidence gate: a class predicts only after MinRuns observations
	// with across-run rate/selectivity CVs at most MaxCV and a mean
	// within-job map-compute CV at most MaxIntraCV. Below the gate the job
	// still races (and its outcome calibrates the class).
	MinRuns    int
	MaxCV      float64
	MaxIntraCV float64
}

// NewHistory returns an empty store with the default confidence gate.
func NewHistory() *History {
	return &History{
		entries:    make(map[string]*HistoryEntry),
		classes:    make(map[string]*ClassStats),
		MinRuns:    3,
		MaxCV:      0.25,
		MaxIntraCV: 0.75,
	}
}

// Record folds one finished run into the job key's running aggregates. The
// recorded Winner is the majority vote over all runs, ties going to the most
// recent winner — a mode keeps the crown only while it wins at least as often
// as the incumbent, so one anomalous run amid a streak cannot flip future
// mode decisions.
func (h *History) Record(job string, winner ModeKind, elapsed time.Duration, s profiler.Summary) {
	e, ok := h.entries[job]
	if !ok {
		e = &HistoryEntry{Job: job, Wins: make(map[ModeKind]int)}
		h.entries[job] = e
	}
	if e.Wins == nil {
		e.Wins = make(map[ModeKind]int)
	}
	e.Runs++
	n := time.Duration(e.Runs)
	e.Elapsed += (elapsed - e.Elapsed) / n
	e.AvgMapCPU += (s.AvgMapCPU - e.AvgMapCPU) / n
	e.AvgIn += (s.AvgIn - e.AvgIn) / int64(e.Runs)
	e.AvgOut += (s.AvgOut - e.AvgOut) / int64(e.Runs)
	e.Wins[winner]++
	if e.Winner == "" || e.Wins[winner] >= e.Wins[e.Winner] {
		e.Winner = winner
	}
}

// Observe folds one finished run into its workload class's calibration
// aggregates. modelEst is the raw Eq. 2/3 estimate for the mode that ran,
// computed from the run's own measured sample — its ratio to the measured
// elapsed time is the calibration factor future predictions are scaled by.
func (h *History) Observe(class string, winner ModeKind, elapsed time.Duration, modelEst time.Duration, s profiler.Summary) {
	if class == "" || s.MapCount == 0 || s.AvgIn <= 0 {
		return
	}
	cs, ok := h.classes[class]
	if !ok {
		cs = &ClassStats{Class: class}
		h.classes[class] = cs
	}
	cs.Runs++
	cs.Rate.Add(s.AvgMapCPU.Seconds() / float64(s.AvgIn))
	cs.Sel.Add(float64(s.AvgOut) / float64(s.AvgIn))
	if s.AvgMapCPU > 0 {
		cs.IntraCV.Add(s.MapCPUStd.Seconds() / s.AvgMapCPU.Seconds())
	}
	if modelEst > 0 && elapsed > 0 {
		cs.Calib.Add(elapsed.Seconds() / modelEst.Seconds())
	}
	switch winner {
	case ModeDPlus:
		cs.DWins++
	case ModeUPlus:
		cs.UWins++
	}
}

// Class returns the calibration aggregates for a workload class, if any.
func (h *History) Class(class string) (*ClassStats, bool) {
	cs, ok := h.classes[class]
	return cs, ok
}

// Confident reports whether a class has converged enough to pre-decide a
// job without racing: enough runs, stable per-byte rate and selectivity
// across runs, and internally un-skewed maps.
func (h *History) Confident(class string) bool {
	cs, ok := h.classes[class]
	if !ok || cs.Runs < h.MinRuns {
		return false
	}
	return cs.Rate.CV() <= h.MaxCV && cs.Sel.CV() <= h.MaxCV && cs.IntraCV.Mean <= h.MaxIntraCV
}

// Winner returns the recorded majority mode for a job key, if any.
func (h *History) Winner(job string) (ModeKind, bool) {
	if e, ok := h.entries[job]; ok {
		return e.Winner, true
	}
	return "", false
}

// Entry returns the full record for a job key.
func (h *History) Entry(job string) (*HistoryEntry, bool) {
	e, ok := h.entries[job]
	return e, ok
}

// Entries returns every exact-match record, sorted by job key.
func (h *History) Entries() []*HistoryEntry {
	out := make([]*HistoryEntry, 0, len(h.entries))
	for _, name := range sortedKeys(h.entries) {
		out = append(out, h.entries[name])
	}
	return out
}

// Classes returns every workload-class aggregate, sorted by class key.
func (h *History) Classes() []*ClassStats {
	names := make([]string, 0, len(h.classes))
	for k := range h.classes {
		names = append(names, k)
	}
	slices.Sort(names)
	out := make([]*ClassStats, 0, len(names))
	for _, name := range names {
		out = append(out, h.classes[name])
	}
	return out
}

// Len reports the number of recorded job keys.
func (h *History) Len() int { return len(h.entries) }

// Forget removes a job's record (used by tests and by operators resetting a
// stale decision).
func (h *History) Forget(job string) { delete(h.entries, job) }

const (
	historyPath    = "/mrapid/history.json"
	historyTmpPath = historyPath + ".tmp"
)

// historySnapshot is the persisted schema (version 2): exact-match entries
// plus workload-class calibration aggregates. Version 1 snapshots were a
// bare JSON array of entries; Load still accepts them.
type historySnapshot struct {
	Version int             `json:"version"`
	Jobs    []*HistoryEntry `json:"jobs"`
	Classes []*ClassStats   `json:"classes,omitempty"`
}

// Save serializes the store into HDFS (replacing any previous snapshot).
// The write itself is metadata-sized; like the paper's profile uploads it
// happens off the measured path, so it is staged costlessly.
//
// The replacement is atomic: the new snapshot is staged at a temporary
// name first and renamed over (a pure NameNode metadata operation), so at
// every instant either the old or the new snapshot is durable. The old
// delete-then-put sequence had a window where a crash lost the whole
// history.
func (h *History) Save(dfs *hdfs.DFS) error {
	snap := historySnapshot{Version: 2, Jobs: h.Entries(), Classes: h.Classes()}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding history: %w", err)
	}
	if dfs.Exists(historyTmpPath) {
		if err := dfs.Delete(historyTmpPath); err != nil {
			return err
		}
	}
	if _, err := dfs.PutInstant(historyTmpPath, data, nil); err != nil {
		return err
	}
	// From here the new snapshot is durable at the temporary name; Load
	// falls back to it if a crash lands between the delete and the rename.
	if dfs.Exists(historyPath) {
		if err := dfs.Delete(historyPath); err != nil {
			return err
		}
	}
	return dfs.Rename(historyTmpPath, historyPath)
}

// Load restores a snapshot saved by Save. A missing snapshot yields an
// empty store, not an error; an interrupted Save is recovered from its
// staged temporary. Version-1 snapshots (a bare array, written before the
// running-aggregate schema) migrate transparently: their single recorded
// values seed the means and their run count seeds the winner's vote.
func (h *History) Load(dfs *hdfs.DFS) error {
	path := historyPath
	if !dfs.Exists(path) {
		if !dfs.Exists(historyTmpPath) {
			return nil
		}
		path = historyTmpPath
	}
	data, err := dfs.Contents(path)
	if err != nil {
		return err
	}
	var list []*HistoryEntry
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		// Version 1: a bare entry array with last-run values.
		if err := json.Unmarshal(data, &list); err != nil {
			return fmt.Errorf("core: decoding history: %w", err)
		}
	} else {
		var snap historySnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("core: decoding history: %w", err)
		}
		list = snap.Jobs
		for _, cs := range snap.Classes {
			if cs != nil && cs.Class != "" {
				h.classes[cs.Class] = cs
			}
		}
	}
	for _, e := range list {
		if e.Wins == nil && e.Winner != "" {
			runs := e.Runs
			if runs <= 0 {
				runs = 1
			}
			e.Wins = map[ModeKind]int{e.Winner: runs}
		}
		h.entries[e.Job] = e
	}
	return nil
}

func sortedKeys(m map[string]*HistoryEntry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
