package core

import (
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/profiler"
	"mrapid/internal/trace"
)

// Prediction is the calibrating estimator's up-front verdict for a job: the
// mode to launch directly (no speculative race) and the calibrated
// completion-time prediction the admission layer can schedule against.
type Prediction struct {
	Class   string
	Mode    ModeKind
	Runtime time.Duration // calibrated completion-time prediction

	// EstimateD and EstimateU are the raw Equation 2/3 estimates built from
	// the class's per-byte aggregates and this job's measured split size.
	EstimateD time.Duration
	EstimateU time.Duration

	// Runs is how many calibration observations backed the verdict.
	Runs int
}

// estimatorInputs assembles the cluster-structural Table I quantities for a
// spec — everything except the measured TM/SI/SO, which the caller fills
// from a profiler sample (the speculative race) or from class aggregates
// (the calibrating estimator).
func (f *Framework) estimatorInputs(spec *mapreduce.JobSpec) EstimatorInputs {
	workers := f.RT.Cluster.Workers()
	it := workers[0].Type
	return EstimatorInputs{
		NM:  countSplits(f.RT, spec),
		NC:  mapreduce.ClusterContainerSlots(f.RT),
		NUM: f.UOpts.MapsPerWave(workers[0]),
		TL:  f.RT.Params.ContainerStart(),
		DI:  it.DiskWriteBps,
		DO:  it.DiskReadBps,
		BI:  it.NetworkBps,
		// With the shuffle service attached, the decision maker prices the
		// post-combine, post-compress shuffle, not the raw map output.
		ShuffleRatio: f.RT.ShuffleWireRatio(spec),
	}
}

// avgSplitBytes returns the job's mean input split size (0 when unknown).
func (f *Framework) avgSplitBytes(spec *mapreduce.JobSpec) int64 {
	splits, err := f.RT.Splits(spec.InputFiles)
	if err != nil || len(splits) == 0 {
		return 0
	}
	var total int64
	for _, s := range splits {
		total += s.Length
	}
	return total / int64(len(splits))
}

// calibrated scales a raw Eq. 2/3 estimate by the class's measured
// actual/estimate ratio (identity until the class has calibration samples).
func (cs *ClassStats) calibrated(est time.Duration) time.Duration {
	if cs == nil || cs.Calib.N == 0 || cs.Calib.Mean <= 0 {
		return est
	}
	return time.Duration(cs.Calib.Mean * float64(est))
}

// PredictMode consults the calibrating estimator for a job the framework
// has never seen under its exact key. It answers only when prediction is
// enabled and the job's workload class has passed the confidence gate;
// everything else keeps racing (and calibrating).
func (f *Framework) PredictMode(spec *mapreduce.JobSpec) (*Prediction, bool) {
	if !f.Predict {
		return nil, false
	}
	class := spec.ClassKey()
	cs, ok := f.History.Class(class)
	if !ok || !f.History.Confident(class) {
		return nil, false
	}
	in := f.estimatorInputs(spec)
	si := f.avgSplitBytes(spec)
	if in.NM <= 0 || si <= 0 {
		return nil, false
	}
	in.SI = si
	in.TM = time.Duration(cs.Rate.Mean * float64(si) * float64(time.Second))
	in.SO = int64(cs.Sel.Mean * float64(si))
	p := &Prediction{
		Class:     class,
		Runs:      cs.Runs,
		EstimateD: EstimateDPlus(in),
		EstimateU: EstimateUPlus(in),
	}
	p.Mode = Decide(in)
	est := p.EstimateU
	if p.Mode == ModeDPlus {
		est = p.EstimateD
	}
	p.Runtime = cs.calibrated(est)
	return p, true
}

// PredictRuntime returns the best available completion-time prediction for
// a spec: the exact-match history's running mean when the job key is known,
// otherwise the class estimator's calibrated estimate. The admission layer
// uses it for deadline/SLO-aware ordering.
func (f *Framework) PredictRuntime(spec *mapreduce.JobSpec) (time.Duration, bool) {
	if e, ok := f.History.Entry(spec.Key()); ok && e.Runs > 0 && e.Elapsed > 0 {
		return e.Elapsed, true
	}
	if p, ok := f.PredictMode(spec); ok {
		return p.Runtime, true
	}
	return 0, false
}

// PreDecided reports whether a speculative submission of this spec would
// skip the race and launch a single mode — either from an exact-match
// history record or from a confident class prediction. The JobServer
// charges such submissions one admission slot instead of two.
func (f *Framework) PreDecided(spec *mapreduce.JobSpec) bool {
	if _, ok := f.History.Winner(spec.Key()); ok {
		return true
	}
	_, ok := f.PredictMode(spec)
	return ok
}

// calibrate feeds a finished run's measurements into its class aggregates:
// the per-byte rates and the actual/estimate ratio for the mode that ran.
func (f *Framework) calibrate(spec *mapreduce.JobSpec, winner ModeKind, elapsed time.Duration, sum profiler.Summary) {
	if sum.MapCount == 0 || sum.AvgIn <= 0 {
		return
	}
	in := f.estimatorInputs(spec)
	in.TM, in.SI, in.SO = sum.AvgMapCPU, sum.AvgIn, sum.AvgOut
	var est time.Duration
	switch winner {
	case ModeDPlus:
		est = EstimateDPlus(in)
	case ModeUPlus:
		est = EstimateUPlus(in)
	}
	f.History.Observe(spec.ClassKey(), winner, elapsed, est, sum)
}

// accountPrediction settles the books on a direct-pick run: the relative
// prediction error lands in the estimator_prediction_error histogram and on
// the job span, and the skipped mode is re-estimated from the run's own
// measured sample — when that calibrated estimate beats the time we
// actually took, the pick is charged as regret (estimator_regret_total,
// estimator_regret_seconds).
func (f *Framework) accountPrediction(pred *Prediction, spec *mapreduce.JobSpec, res *mapreduce.Result) {
	if res.Err != nil || res.Profile == nil {
		return
	}
	actual := res.Profile.Elapsed()
	if actual <= 0 {
		return
	}
	relErr := (actual - pred.Runtime).Abs().Seconds() / actual.Seconds()
	f.RT.Reg.Observe("estimator_prediction_error", relErr)
	f.RT.Trace.Annotate(res.Profile.Span,
		trace.A("predicted", pred.Runtime.String()),
		trace.A("prediction_class", pred.Class),
		trace.A("prediction_error", time.Duration(relErr*float64(time.Second)).String()))

	sum := res.Profile.Summarize()
	if sum.MapCount == 0 || sum.AvgIn <= 0 {
		return
	}
	in := f.estimatorInputs(spec)
	in.TM, in.SI, in.SO = sum.AvgMapCPU, sum.AvgIn, sum.AvgOut
	other := loserOf(pred.Mode)
	otherEst := EstimateUPlus(in)
	if other == ModeDPlus {
		otherEst = EstimateDPlus(in)
	}
	cs, _ := f.History.Class(pred.Class)
	otherEst = cs.calibrated(otherEst)
	if otherEst > 0 && otherEst < actual {
		regret := actual - otherEst
		f.RT.Reg.Inc(metrics.With("estimator_regret_total", "picked", string(pred.Mode)))
		f.RT.Reg.Observe("estimator_regret_seconds", regret.Seconds())
		f.RT.Trace.Annotate(res.Profile.Span, trace.A("regret", regret.String()),
			trace.A("regret_vs", string(other)))
	}
}
