package core

import (
	"hash/fnv"
	"sort"

	"mrapid/internal/mapreduce"
	"mrapid/internal/memo"
	"mrapid/internal/profiler"
	"mrapid/internal/trace"
)

// ModeMemo labels results served from the cross-job memoization cache: no
// AM, no containers, the committed output of an earlier identical run
// materialized under the "memo" transport.
const ModeMemo ModeKind = "memo"

// memoIdentity resolves a spec's cache identity: the content-sensitive key
// and the digest of its current inputs. A caller-provided MemoKey (the
// query layer's plan-content signature) wins outright; otherwise the
// automatic path requires a fingerprintable spec — named transforms only
// (MemoSafe), a real HDFS output, and inputs that are plain HDFS files,
// not intermediate-store entries whose names say nothing about content.
func (f *Framework) memoIdentity(spec *mapreduce.JobSpec) (key string, digest uint64, ok bool) {
	if f.Memo == nil {
		return "", 0, false
	}
	if spec.MemoKey != "" {
		return spec.MemoKey, spec.MemoDigest, true
	}
	if spec.IntermediateOutput || !spec.MemoSafe() {
		return "", 0, false
	}
	inputs := append([]string(nil), spec.InputFiles...)
	sort.Strings(inputs)
	h := fnv.New64a()
	for _, in := range inputs {
		if st := f.RT.Intermediates; st != nil && st.Has(in) {
			return "", 0, false
		}
		d, err := f.RT.DFS.FileDigest(in)
		if err != nil {
			return "", 0, false
		}
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(d >> (8 * i))
		}
		h.Write([]byte(in))
		h.Write(buf[:])
	}
	return spec.SpecFingerprint(), h.Sum64(), true
}

// memoLookup consults the cache once per submission. A hit returns serve:
// call it instead of executing and it materializes the cached output and
// delivers a ModeMemo result. A miss returns commit: thread it through the
// chosen execution path's completion so a successful fresh run is cached
// (errors and partial runs never are). Both nil means this spec is not
// memoizable — run normally, touch nothing.
func (f *Framework) memoLookup(spec *mapreduce.JobSpec) (serve func(func(*mapreduce.Result)), commit func(*mapreduce.Result)) {
	key, digest, ok := f.memoIdentity(spec)
	if !ok {
		return nil, nil
	}
	// Misses of every flavor — absent, invalidated by an input write, or
	// lost with a dead disk node — fall through to normal execution; the
	// lost case is precisely the stale-entry fault-tolerance contract.
	hit, err := f.Memo.Lookup(key, digest)
	if err == nil {
		return func(done func(*mapreduce.Result)) {
			f.materializeMemo(spec, hit, done)
		}, nil
	}
	return nil, func(res *mapreduce.Result) {
		if res == nil || res.Err != nil {
			return
		}
		parts, ok := f.memoCollect(spec)
		if !ok {
			return
		}
		var cost float64
		if res.Profile != nil {
			cost = res.Profile.Elapsed().Seconds()
		}
		f.Memo.Commit(key, digest, parts, cost)
	}
}

// memoCollect snapshots a freshly committed output: one byte slice per
// reduce partition, from the intermediate store (intra-query stages) or
// HDFS. Any unreadable part — e.g. a store entry whose producer died in
// the commit window — aborts the collection; caching a torn output would
// serve corrupt bytes forever.
func (f *Framework) memoCollect(spec *mapreduce.JobSpec) ([][]byte, bool) {
	parts := make([][]byte, spec.NumReduces)
	for p := range parts {
		name := mapreduce.PartFileName(spec.OutputFile, p)
		if st := f.RT.Intermediates; st != nil && st.Has(name) {
			data, ok := st.Contents(name)
			if !ok {
				return nil, false
			}
			parts[p] = data
			continue
		}
		data, err := f.RT.DFS.Contents(name)
		if err != nil {
			return nil, false
		}
		parts[p] = data
	}
	return parts, true
}

// materializeMemo serves a cache hit: after the proxy round-trip (and a
// disk read at the holder for disk-tier entries) the cached part files are
// installed under the spec's output — intermediate store for intra-query
// stages, HDFS otherwise — with each part observed under the "memo"
// shuffle transport. The result carries a minimal profile: zero tasks,
// zero containers, elapsed ≈ the RPC plus any disk read.
func (f *Framework) materializeMemo(spec *mapreduce.JobSpec, hit *memo.Hit, done func(*mapreduce.Result)) {
	rt := f.RT
	prof := &profiler.JobProfile{
		Job:         spec.Key(),
		Mode:        string(ModeMemo),
		SubmittedAt: rt.Eng.Now(),
		AMPoolHit:   true,
		NumReduces:  spec.NumReduces,
	}
	prof.Span = rt.Trace.StartSpan(0, "job", spec.Name+" (memo)", "", trace.A("mode", string(ModeMemo)))
	install := func() {
		rt.DeleteOutputPrefix(spec.OutputFile)
		node := hit.Node
		if node == nil {
			// Memory-tier hits have no holder; intermediate-store entries
			// still need one, so park them on the first live worker (the
			// cache service's local spill target) deterministically.
			for _, w := range rt.Cluster.Workers() {
				if w.Alive() {
					node = w
					break
				}
			}
		}
		for p, data := range hit.Parts {
			name := mapreduce.PartFileName(spec.OutputFile, p)
			if spec.IntermediateOutput && rt.Intermediates != nil && node != nil {
				rt.Intermediates.Put(name, data, node)
			} else {
				rt.DFS.Delete(name)
				if _, err := rt.DFS.PutInstant(name, data, node); err != nil {
					prof.DoneAt = rt.Eng.Now()
					rt.Trace.EndSpan(prof.Span, trace.A("error", err.Error()))
					done(&mapreduce.Result{Spec: spec, Mode: string(ModeMemo), Profile: prof, Err: err})
					return
				}
			}
			rt.ObserveShuffle("memo", "memo", int64(len(data)))
		}
		now := rt.Eng.Now()
		prof.AMReadyAt, prof.FirstTaskAt, prof.MapsDoneAt, prof.DoneAt = now, now, now, now
		rt.Trace.EndSpan(prof.Span, trace.A("memo_hit", "true"))
		done(&mapreduce.Result{Spec: spec, Mode: string(ModeMemo), Profile: prof})
	}
	rt.Eng.After(rt.Params.RPCLatency, func() {
		if !hit.InMemory && hit.Node != nil && hit.Bytes > 0 {
			hit.Node.Disk.Use(hit.Bytes, install)
			return
		}
		install()
	})
}
