package core

import (
	"bytes"
	"testing"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// chaosRuntime is newRuntime with a caller-chosen placement seed, so the
// chaos suite can repeat its scenarios across several deterministic worlds.
func chaosRuntime(t testing.TB, seed int64) *mapreduce.Runtime {
	t.Helper()
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, seed)
	rm := yarn.NewRM(eng, cluster, params, NewDPlusScheduler(FullDPlus()))
	rm.Start()
	return mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
}

// runChaosDPlus runs a pooled D+ WordCount with an optional node fault and
// returns the result, the output bytes, and the framework. The RM keeps
// heartbeating after job completion so pool replenishment can finish.
func runChaosDPlus(t *testing.T, seed int64, faults []mapreduce.NodeFault) (*mapreduce.Result, []byte, *Framework) {
	t.Helper()
	rt := chaosRuntime(t, seed)
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 4, 1<<20)
	if len(faults) > 0 {
		if err := rt.ScheduleNodeFaults(faults); err != nil {
			t.Fatal(err)
		}
	}
	var res *mapreduce.Result
	rt.Eng.After(0, func() {
		f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r })
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(600 * time.Second))
	rt.RM.Stop()
	if res == nil {
		t.Fatal("job did not finish")
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	verifyWC(t, rt, "/out", all)
	out, err := rt.DFS.Contents(mapreduce.PartFileName("/out", 0))
	if err != nil {
		t.Fatal(err)
	}
	return res, out, f
}

// A mid-job machine crash must never change what the job computes: across
// several placement seeds, the faulty run's output is byte-identical to the
// fault-free run's.
func TestChaosOutputByteIdenticalAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		clean, cleanOut, _ := runChaosDPlus(t, seed, nil)
		mid := time.Duration(float64(clean.Elapsed())/2*float64(time.Second)) + time.Millisecond
		victim := "node-02"
		_, faultyOut, _ := runChaosDPlus(t, seed, []mapreduce.NodeFault{{Node: victim, At: mid}})
		if !bytes.Equal(cleanOut, faultyOut) {
			t.Fatalf("seed %d: output diverged after crashing %s at %s", seed, victim, mid)
		}
	}
}

// Killing a pooled AM's machine must trigger background replenishment: the
// pool detects the loss, relaunches a standby on a surviving node, and the
// submitted job still completes with correct output.
func TestPoolAMNodeCrashReplenished(t *testing.T) {
	rt := chaosRuntime(t, 1)
	f := startFramework(t, rt, 3)
	victim := f.Pool.ams[0].Node
	names, all := stageInput(t, rt, 4, 1<<20)
	var res *mapreduce.Result
	rt.Eng.After(500*time.Millisecond, victim.Fail)
	rt.Eng.After(0, func() {
		f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r })
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(600 * time.Second))
	rt.RM.Stop()
	if res == nil || res.Err != nil {
		t.Fatalf("job did not survive the AM-node crash: %+v", res)
	}
	verifyWC(t, rt, "/out", all)
	if f.Pool.Lost < 1 || f.Pool.Replenished < 1 {
		t.Fatalf("pool lost/replenished = %d/%d, want >= 1 each", f.Pool.Lost, f.Pool.Replenished)
	}
	if f.Pool.AliveAMs() != 3 {
		t.Fatalf("pool holds %d AMs after replenishment, want 3", f.Pool.AliveAMs())
	}
	for _, am := range f.Pool.ams {
		if am.Node == victim {
			t.Fatal("replenished AM placed on the dead node")
		}
	}
}

// With every pooled AM gone and the replacement still launching, a D+
// submission must degrade gracefully to the stock submission path instead of
// deadlocking on an empty pool.
func TestPoolExhaustionFallsBackToStock(t *testing.T) {
	rt := chaosRuntime(t, 1)
	f := startFramework(t, rt, 1)
	victim := f.Pool.ams[0].Node
	names, all := stageInput(t, rt, 4, 1<<20)
	rt.Eng.After(time.Second, victim.Fail)
	var res *mapreduce.Result
	submitted := false
	ticker := rt.Eng.Every(200*time.Millisecond, func() {
		if submitted || !f.Pool.Exhausted() {
			return
		}
		submitted = true
		f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r })
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(600 * time.Second))
	ticker.Stop()
	rt.RM.Stop()
	if !submitted {
		t.Fatal("pool never reported exhaustion after its only AM's node died")
	}
	if res == nil {
		t.Fatal("fallback submission deadlocked")
	}
	if res.Err != nil {
		t.Fatalf("fallback job failed: %v", res.Err)
	}
	if f.StockFallbacks != 1 {
		t.Fatalf("StockFallbacks = %d, want 1", f.StockFallbacks)
	}
	verifyWC(t, rt, "/out", all)
	if f.Pool.AliveAMs() != 1 {
		t.Fatalf("pool did not recover: %d AMs alive", f.Pool.AliveAMs())
	}
}

// When one racing speculative mode's AM machine dies before the decision
// point, that mode drops out and the survivor wins with correct output.
func TestSpeculativeSurvivesAMNodeCrash(t *testing.T) {
	rt := chaosRuntime(t, 1)
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 8, 8<<20)
	var res *SpecResult
	rt.Eng.After(0, func() {
		f.SubmitSpeculative(testWCSpec(names, "/out"), func(r *SpecResult) { res = r })
	})
	// Crash the first pooled AM to go busy — one of the two racing modes —
	// the moment it acquires, well before the estimator's decision point.
	crashed := false
	ticker := rt.Eng.Every(100*time.Millisecond, func() {
		if crashed {
			return
		}
		for _, am := range f.Pool.ams {
			if am.busy {
				am.Node.Fail()
				crashed = true
				return
			}
		}
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(900 * time.Second))
	ticker.Stop()
	rt.RM.Stop()
	if !crashed {
		t.Fatal("no pooled AM ever went busy for the speculative race")
	}
	if res == nil {
		t.Fatal("speculative job did not finish")
	}
	if res.Result.Err != nil {
		t.Fatalf("speculative job failed: %v", res.Result.Err)
	}
	verifyWC(t, rt, "/out", all)
	t.Logf("winner=%s", res.Winner)
}

// Whitebox: a map attempt that dies after admitting its output to the U+
// memory cache must refund the admitted bytes before the retry, or every
// crashed-and-retried map leaks budget. The phantom admission stands in for
// the dead attempt's charge; after the retry succeeds the cache must hold
// exactly the successful attempt's bytes.
func TestUPlusCacheRefundOnCrashedAttempt(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	fi := mapreduce.NewFaultInjector(1, 0, 0)
	fi.Fail("map", 0, 0, 0.5)
	rt.Faults = fi
	names, _ := stageInput(t, rt, 1, 256<<10)
	app := rt.RM.NewApp("uplus-refund")
	node := rt.Cluster.Workers()[0]
	prof := &profiler.JobProfile{}
	am, err := NewUPlusAM(rt, testWCSpec(names, "/out"), app, node, prof, FullUPlus())
	if err != nil {
		t.Fatal(err)
	}
	const phantom = int64(10_000)
	am.admitted[0] = phantom
	am.cacheUsed = phantom
	var jobErr error
	finished := false
	rt.Eng.After(0, func() {
		am.Run(func(_ *profiler.JobProfile, err error) {
			finished = true
			jobErr = err
		})
	})
	rt.Eng.RunUntil(horizon)
	if !finished || jobErr != nil {
		t.Fatalf("job finished=%v err=%v", finished, jobErr)
	}
	var out int64
	for _, tp := range prof.Tasks {
		if tp.Kind == profiler.MapTask && !tp.Failed {
			out = tp.OutputBytes
		}
	}
	if out == 0 {
		t.Fatal("no successful map attempt recorded")
	}
	if am.CacheUsed() != out {
		t.Fatalf("cacheUsed = %d, want %d (phantom %d not refunded before retry)",
			am.CacheUsed(), out, phantom)
	}
}
