package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/memo"
	"mrapid/internal/metrics"
	"mrapid/internal/topology"
	"mrapid/internal/workloads"
)

// containersLaunched sums lifetime container launches across all nodes.
func containersLaunched(reg *metrics.Registry) int64 {
	var n int64
	for name, v := range reg.Counters() {
		if strings.HasPrefix(name, "yarn_containers_launched_total") {
			n += v
		}
	}
	return n
}

func memoRuntime(t *testing.T) (*mapreduce.Runtime, *metrics.Registry) {
	t.Helper()
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	reg := metrics.New()
	rt.Reg = reg
	rt.RM.Reg = reg
	return rt, reg
}

func submitWC(t *testing.T, f *Framework, spec *mapreduce.JobSpec) *mapreduce.Result {
	t.Helper()
	var res *mapreduce.Result
	run := *spec
	f.RT.Eng.After(0, func() {
		f.SubmitDPlus(&run, func(r *mapreduce.Result) { res = r })
	})
	f.RT.Eng.RunUntil(f.RT.Eng.Now().Add(10 * time.Minute))
	if res == nil {
		t.Fatal("job did not finish")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestMemoHitSkipsExecution is the tentpole's acceptance contract at the
// framework level: a repeat submission of an identical job over unchanged
// inputs launches zero containers, returns byte-identical output, and
// reports ModeMemo under the "memo" transport; mutating an input block
// invalidates the entry and forces full re-execution.
func TestMemoHitSkipsExecution(t *testing.T) {
	rt, reg := memoRuntime(t)
	f := startFramework(t, rt, 2)
	f.Memo = memo.New(reg, rt.Cluster.Workers(), memo.Config{})

	input := []byte("the quick brown fox the lazy dog the end\n")
	if _, err := rt.DFS.PutInstant("/in/m-0", input, nil); err != nil {
		t.Fatal(err)
	}
	spec := workloads.WordCountSpec("memo-wc", []string{"/in/m-0"}, "/out1", false)
	if !spec.MemoSafe() {
		t.Fatal("wordcount spec should be memo-safe (named transforms)")
	}

	res1 := submitWC(t, f, spec)
	if res1.Mode != string(ModeDPlus) {
		t.Fatalf("first run mode = %q, want dplus", res1.Mode)
	}
	fresh, err := rt.DFS.Contents(mapreduce.PartFileName("/out1", 0))
	if err != nil {
		t.Fatal(err)
	}
	launched := containersLaunched(reg)
	if launched == 0 {
		t.Fatal("first run launched no containers?")
	}

	// Repeat over unchanged inputs, different output path (the output
	// location is not part of the computation).
	spec2 := workloads.WordCountSpec("memo-wc#2", []string{"/in/m-0"}, "/out2", false)
	res2 := submitWC(t, f, spec2)
	if res2.Mode != string(ModeMemo) {
		t.Fatalf("repeat run mode = %q, want memo", res2.Mode)
	}
	if got := containersLaunched(reg); got != launched {
		t.Fatalf("memo hit launched %d containers", got-launched)
	}
	served, err := rt.DFS.Contents(mapreduce.PartFileName("/out2", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, fresh) {
		t.Fatal("memo-served output is not byte-identical to the fresh run")
	}
	if reg.Get(metrics.With("mapreduce_shuffle_fetch_total", "kind", "memo", "transport", "memo")) == 0 {
		t.Fatal("memo materialization not observed under the memo transport")
	}
	if reg.Get("memo_hits_total") != 1 || reg.Get("memo_misses_total") != 1 {
		t.Fatalf("hit/miss counters: %d/%d, want 1/1",
			reg.Get("memo_hits_total"), reg.Get("memo_misses_total"))
	}

	// Mutate one input block: the write generation moves, the entry is
	// invalidated, and the resubmission executes in full.
	if _, err := rt.DFS.OverwriteInstant("/in/m-0", []byte("entirely new words now\n"), nil); err != nil {
		t.Fatal(err)
	}
	spec3 := workloads.WordCountSpec("memo-wc#3", []string{"/in/m-0"}, "/out3", false)
	res3 := submitWC(t, f, spec3)
	if res3.Mode != string(ModeDPlus) {
		t.Fatalf("post-mutation run mode = %q, want dplus (full re-execution)", res3.Mode)
	}
	if reg.Get("memo_invalidations_total") != 1 {
		t.Fatalf("invalidations = %d, want 1", reg.Get("memo_invalidations_total"))
	}
	if got := containersLaunched(reg); got == launched {
		t.Fatal("invalidated resubmission launched no containers")
	}

	// The re-run recommitted under the new digest: the next repeat hits.
	spec4 := workloads.WordCountSpec("memo-wc#4", []string{"/in/m-0"}, "/out4", false)
	if res4 := submitWC(t, f, spec4); res4.Mode != string(ModeMemo) {
		t.Fatalf("post-recommit repeat mode = %q, want memo", res4.Mode)
	}
	served4, _ := rt.DFS.Contents(mapreduce.PartFileName("/out4", 0))
	fresh3, _ := rt.DFS.Contents(mapreduce.PartFileName("/out3", 0))
	if !bytes.Equal(served4, fresh3) {
		t.Fatal("post-invalidation hit served stale bytes")
	}
}

// TestMemoSpeculativeHit pins the speculative workflow's step 0: a cache
// hit ends the run before the history consult, with ModeMemo as the winner
// and no outcome recorded (a served result must not calibrate the
// estimator).
func TestMemoSpeculativeHit(t *testing.T) {
	rt, reg := memoRuntime(t)
	f := startFramework(t, rt, 2)
	f.Memo = memo.New(reg, rt.Cluster.Workers(), memo.Config{})

	if _, err := rt.DFS.PutInstant("/in/s-0", []byte("alpha beta alpha gamma\n"), nil); err != nil {
		t.Fatal(err)
	}
	run := func(name, out string) *SpecResult {
		spec := workloads.WordCountSpec(name, []string{"/in/s-0"}, out, false)
		spec.JobKey = name // keep exact-match history out of the picture
		var res *SpecResult
		rt.Eng.After(0, func() {
			f.SubmitSpeculative(spec, func(r *SpecResult) { res = r })
		})
		rt.Eng.RunUntil(rt.Eng.Now().Add(10 * time.Minute))
		if res == nil {
			t.Fatalf("%s did not finish", name)
		}
		if res.Result.Err != nil {
			t.Fatal(res.Result.Err)
		}
		return res
	}

	first := run("swc", "/outA")
	if first.Winner == ModeMemo {
		t.Fatal("first speculative run cannot be a memo hit")
	}
	entries := len(f.History.Entries())

	second := run("swc2", "/outB")
	if second.Winner != ModeMemo || second.FromHistory || second.FromPrediction {
		t.Fatalf("repeat = %+v, want a pure memo win", second)
	}
	if len(f.History.Entries()) != entries {
		t.Fatal("memo hit leaked into the execution-record history")
	}
	a, _ := rt.DFS.Contents(mapreduce.PartFileName("/outA", 0))
	b, _ := rt.DFS.Contents(mapreduce.PartFileName("/outB", 0))
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatal("speculative memo hit output differs from the raced run")
	}
}

// TestMemoDiskLossFallsThrough is the stale-entry chaos path end to end: a
// disk-tier entry whose holder died fails the lookup and the submission
// falls through to full execution, then recommits.
func TestMemoDiskLossFallsThrough(t *testing.T) {
	rt, reg := memoRuntime(t)
	f := startFramework(t, rt, 2)
	// A 1-byte memory tier forces every entry straight to a worker disk.
	f.Memo = memo.New(reg, rt.Cluster.Workers(), memo.Config{MemBytes: 1})

	if _, err := rt.DFS.PutInstant("/in/d-0", []byte("one two two three three three\n"), nil); err != nil {
		t.Fatal(err)
	}
	spec := workloads.WordCountSpec("dwc", []string{"/in/d-0"}, "/outD1", false)
	submitWC(t, f, spec)

	// Find the holder the way the materializer would, then kill it. The
	// extra lookup counts one hit; the assertions below use lost/misses.
	key, digest, ok := f.memoIdentity(spec)
	if !ok {
		t.Fatal("spec not memoizable")
	}
	hit, err := f.Memo.Lookup(key, digest)
	if err != nil {
		t.Fatal(err)
	}
	if hit.InMemory || hit.Node == nil {
		t.Fatal("entry should be disk-resident under the 1-byte memory tier")
	}
	holder := hit.Node
	rt.Eng.After(0, func() { holder.Fail() })
	rt.Eng.RunUntil(rt.Eng.Now().Add(30 * time.Second))

	spec2 := workloads.WordCountSpec("dwc#2", []string{"/in/d-0"}, "/outD2", false)
	res := submitWC(t, f, spec2)
	if res.Mode == string(ModeMemo) {
		t.Fatal("lookup against a dead holder served a memo hit")
	}
	if reg.Get("memo_lost_total") != 1 {
		t.Fatalf("lost = %d, want 1", reg.Get("memo_lost_total"))
	}
	a, _ := rt.DFS.Contents(mapreduce.PartFileName("/outD1", 0))
	b, _ := rt.DFS.Contents(mapreduce.PartFileName("/outD2", 0))
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatal("fall-through re-execution produced different bytes")
	}
}
