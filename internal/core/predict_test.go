package core

import (
	"fmt"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

// uniqueKeySpec builds the shared-class WordCount spec under a fresh JobKey,
// so the exact-match history can never answer and only the class estimator
// could pre-decide.
func uniqueKeySpec(names []string, i int) *mapreduce.JobSpec {
	spec := testWCSpec(names, fmt.Sprintf("/out/%d", i))
	spec.Name = fmt.Sprintf("wc-%d", i)
	spec.JobKey = spec.Name
	return spec
}

// runSpeculativeSeq drives n class-identical, key-unique speculative jobs
// through the framework, one after another, returning every result.
func runSpeculativeSeq(t *testing.T, f *Framework, names []string, n int) []*SpecResult {
	t.Helper()
	out := make([]*SpecResult, 0, n)
	for i := 0; i < n; i++ {
		i := i
		spec := uniqueKeySpec(names, i)
		var res *SpecResult
		f.RT.Eng.After(0, func() {
			if i > 0 {
				f.RT.RM.Start() // the previous job's completion stopped it
			}
			f.SubmitSpeculative(spec, func(r *SpecResult) {
				res = r
				f.RT.RM.Stop()
			})
		})
		f.RT.Eng.RunUntil(horizon)
		if res == nil {
			t.Fatalf("job %d never completed", i)
		}
		if res.Result.Err != nil {
			t.Fatalf("job %d failed: %v", i, res.Result.Err)
		}
		out = append(out, res)
	}
	return out
}

// A first-sight workload class must race even with prediction enabled: the
// estimator has no aggregates, so the full dual-launch runs and calibrates.
func TestPredictFirstSightStillRaces(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	rt.Reg = metrics.New()
	f := startFramework(t, rt, 3)
	f.Predict = true
	names, all := stageInput(t, rt, 4, 1<<20)

	res := runSpeculativeSeq(t, f, names, 1)[0]
	if res.FromPrediction || res.FromHistory {
		t.Fatalf("first-sight job skipped the race: %+v", res)
	}
	if rt.Reg.Get("estimator_race_total") != 1 {
		t.Fatalf("race counter = %d, want 1", rt.Reg.Get("estimator_race_total"))
	}
	verifyWC(t, rt, "/out/0", all)
	// The race's outcome seeded the class aggregates.
	if cs, ok := f.History.Class(uniqueKeySpec(names, 0).ClassKey()); !ok || cs.Runs != 1 {
		t.Fatalf("class aggregates not seeded: %+v / %v", cs, ok)
	}
}

// The tentpole's acceptance path: after MinRuns races of one workload class,
// a new job of that class (fresh key, same shape) launches its predicted
// winner directly — no dual-launch — with byte-identical output, and the
// prediction error lands in the metrics.
func TestPredictConvergedClassGoesDirect(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	rt.Reg = metrics.New()
	f := startFramework(t, rt, 3)
	f.Predict = true
	names, all := stageInput(t, rt, 4, 1<<20)

	results := runSpeculativeSeq(t, f, names, 4)
	for i, res := range results[:3] {
		if res.FromPrediction {
			t.Fatalf("warm-up job %d predicted before the class converged", i)
		}
	}
	last := results[3]
	if !last.FromPrediction {
		t.Fatalf("converged class still raced: %+v (class %+v)",
			last, f.History.Classes())
	}
	if last.Winner != results[2].Winner {
		t.Fatalf("predicted winner %v != racing winner %v", last.Winner, results[2].Winner)
	}
	if last.Predicted <= 0 {
		t.Fatalf("direct pick carried no runtime prediction: %+v", last)
	}
	verifyWC(t, rt, "/out/3", all)

	if got := rt.Reg.Get(metrics.With("estimator_direct_total", "source", "prediction")); got != 1 {
		t.Fatalf("direct-prediction counter = %d, want 1", got)
	}
	if got := rt.Reg.Get("estimator_race_total"); got != 3 {
		t.Fatalf("race counter = %d, want the 3 warm-up races", got)
	}
	h := rt.Reg.Histograms()["estimator_prediction_error"]
	if h == nil || h.Count != 1 {
		t.Fatalf("prediction-error histogram missing or short: %+v", h)
	}
	// The prediction should be in the right ballpark: identical inputs, so
	// the calibrated estimate lands near the measured runtime.
	if h.Mean() > 0.35 {
		t.Errorf("mean relative prediction error %.2f above 35%%", h.Mean())
	}

	// Prediction stays off unless opted in: with the flag cleared, the same
	// confident class must not answer.
	f.Predict = false
	if _, ok := f.PredictMode(uniqueKeySpec(names, 9)); ok {
		t.Fatal("PredictMode answered with Predict disabled")
	}
}

// Golden determinism: a direct-picked job's output must be byte-identical to
// what the full race would have produced in an identical universe.
func TestPredictDirectOutputMatchesRace(t *testing.T) {
	run := func(predict bool) (*mapreduce.Runtime, *SpecResult) {
		rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
		f := startFramework(t, rt, 3)
		f.Predict = predict
		names, _ := stageInput(t, rt, 4, 512<<10)
		results := runSpeculativeSeq(t, f, names, 4)
		return rt, results[3]
	}
	rtRace, raceRes := run(false)
	rtPred, predRes := run(true)
	if predRes.FromPrediction == raceRes.FromPrediction {
		t.Fatalf("expected one direct pick and one race: predict=%v race=%v",
			predRes.FromPrediction, raceRes.FromPrediction)
	}
	a, err := rtRace.DFS.Contents(mapreduce.PartFileName("/out/3", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rtPred.DFS.Contents(mapreduce.PartFileName("/out/3", 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("direct-picked output differs from the race's output")
	}
}

// PredictRuntime prefers the exact-match record and falls back to the class
// estimate; with neither it reports no prediction.
func TestPredictRuntimeSources(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	f.Predict = true
	names, _ := stageInput(t, rt, 4, 1<<20)
	spec := uniqueKeySpec(names, 0)

	if d, ok := f.PredictRuntime(spec); ok || d != 0 {
		t.Fatalf("cold store predicted %v/%v", d, ok)
	}
	f.History.Record(spec.Key(), ModeDPlus, 17*time.Second, profilerSummary())
	if d, ok := f.PredictRuntime(spec); !ok || d != 17*time.Second {
		t.Fatalf("exact-match prediction = %v/%v, want 17s", d, ok)
	}
}

// Regret accounting: when the skipped mode — re-estimated from the direct
// run's own measured sample — would have finished sooner than we actually
// did, the pick is charged to the regret counter and histogram.
func TestPredictRegretAccounting(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	rt.Reg = metrics.New()
	f := startFramework(t, rt, 3)
	names, _ := stageInput(t, rt, 4, 1<<20)
	spec := uniqueKeySpec(names, 0)

	// A run that took 60 s wall time whose tiny measured maps put either
	// mode's model estimate far below that: the skipped mode must register
	// as regret.
	prof := &profiler.JobProfile{Job: spec.Key(), Mode: string(ModeDPlus), DoneAt: sim.Time(60 * time.Second)}
	prof.Add(&profiler.TaskProfile{
		Kind: profiler.MapTask, ComputeDur: 50 * time.Millisecond,
		InputBytes: 1 << 20, OutputBytes: 1 << 20,
	})
	pred := &Prediction{Class: spec.ClassKey(), Mode: ModeDPlus, Runtime: 55 * time.Second}
	f.accountPrediction(pred, spec, &mapreduce.Result{Spec: spec, Profile: prof})

	if got := rt.Reg.Get(metrics.With("estimator_regret_total", "picked", string(ModeDPlus))); got != 1 {
		t.Fatalf("regret counter = %d, want 1", got)
	}
	h := rt.Reg.Histograms()["estimator_regret_seconds"]
	if h == nil || h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("regret histogram missing or empty: %+v", h)
	}
	if e := rt.Reg.Histograms()["estimator_prediction_error"]; e == nil || e.Count != 1 {
		t.Fatalf("prediction-error histogram missing: %+v", e)
	}
}
