package core

import (
	"testing"
	"time"

	"mrapid/internal/profiler"
	"mrapid/internal/topology"
)

// Regression for the history-feedback bug: Record used to overwrite Elapsed /
// AvgMapCPU / AvgIn / AvgOut with the last run's values while still counting
// Runs++, so one anomalous run rewrote the whole record. The fields must be
// running means over every recorded run.
func TestHistoryRecordRunningAggregates(t *testing.T) {
	h := NewHistory()
	mk := func(cpu time.Duration, in, out int64) profiler.Summary {
		return profiler.Summary{MapCount: 4, AvgMapCPU: cpu, AvgIn: in, AvgOut: out}
	}
	h.Record("job", ModeDPlus, 10*time.Second, mk(1*time.Second, 100, 200))
	h.Record("job", ModeDPlus, 20*time.Second, mk(3*time.Second, 300, 400))
	h.Record("job", ModeDPlus, 30*time.Second, mk(5*time.Second, 500, 600))

	e, ok := h.Entry("job")
	if !ok || e.Runs != 3 {
		t.Fatalf("entry = %+v / %v", e, ok)
	}
	if e.Elapsed != 20*time.Second {
		t.Errorf("Elapsed = %v, want the 20s running mean, not the last run", e.Elapsed)
	}
	if e.AvgMapCPU != 3*time.Second {
		t.Errorf("AvgMapCPU = %v, want 3s mean", e.AvgMapCPU)
	}
	if e.AvgIn != 300 || e.AvgOut != 400 {
		t.Errorf("AvgIn/AvgOut = %d/%d, want 300/400 means", e.AvgIn, e.AvgOut)
	}
}

// The winner is a majority vote with ties going to the latest run: a single
// anomalous U+ win amid a D+ streak must not flip the decision.
func TestHistoryWinnerMajorityVote(t *testing.T) {
	h := NewHistory()
	s := profilerSummary()
	h.Record("job", ModeDPlus, 10*time.Second, s)
	h.Record("job", ModeDPlus, 10*time.Second, s)
	h.Record("job", ModeUPlus, 9*time.Second, s) // anomaly: 2-1 for D+
	if w, _ := h.Winner("job"); w != ModeDPlus {
		t.Fatalf("winner = %v after a 2-1 D+ majority", w)
	}
	// Two more U+ wins (3-2) flip it legitimately.
	h.Record("job", ModeUPlus, 9*time.Second, s)
	h.Record("job", ModeUPlus, 9*time.Second, s)
	if w, _ := h.Winner("job"); w != ModeUPlus {
		t.Fatalf("winner = %v after a 3-2 U+ majority", w)
	}
}

// Version-1 snapshots (a bare entry array) must load transparently, seeding
// the win counters from the recorded winner and run count.
func TestHistoryV1Migration(t *testing.T) {
	rt := newRuntime(t, topology.A3, 2, NewDPlusScheduler(FullDPlus()))
	v1 := []byte(`[
	  {"job": "wordcount", "winner": "dplus", "elapsed": 20000000000,
	   "avg_map_cpu": 1500000000, "avg_in": 1048576, "avg_out": 2097152, "runs": 3}
	]`)
	if _, err := rt.DFS.PutInstant("/mrapid/history.json", v1, nil); err != nil {
		t.Fatal(err)
	}
	h := NewHistory()
	if err := h.Load(rt.DFS); err != nil {
		t.Fatal(err)
	}
	e, ok := h.Entry("wordcount")
	if !ok || e.Runs != 3 || e.Winner != ModeDPlus {
		t.Fatalf("migrated entry = %+v / %v", e, ok)
	}
	if e.Wins[ModeDPlus] != 3 {
		t.Fatalf("migrated wins = %v, want the run count seeding the winner's vote", e.Wins)
	}
	// A post-migration anomaly still cannot flip a 3-run streak.
	h.Record("wordcount", ModeUPlus, 9*time.Second, profilerSummary())
	if w, _ := h.Winner("wordcount"); w != ModeDPlus {
		t.Fatalf("winner = %v, one post-migration run flipped a 3-win record", w)
	}
}

// The version-2 snapshot round-trips both the exact-match entries and the
// per-class calibration aggregates.
func TestHistoryV2RoundTripWithClasses(t *testing.T) {
	rt := newRuntime(t, topology.A3, 2, NewDPlusScheduler(FullDPlus()))
	h := NewHistory()
	h.Record("wordcount", ModeDPlus, 20*time.Second, profilerSummary())
	for i := 0; i < 4; i++ {
		h.Observe("class-abc", ModeDPlus, 20*time.Second, 18*time.Second, profilerSummary())
	}
	if err := h.Save(rt.DFS); err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory()
	if err := h2.Load(rt.DFS); err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 1 {
		t.Fatalf("loaded %d entries", h2.Len())
	}
	cs, ok := h2.Class("class-abc")
	if !ok || cs.Runs != 4 {
		t.Fatalf("class = %+v / %v", cs, ok)
	}
	want, _ := h.Class("class-abc")
	if cs.Rate.Mean != want.Rate.Mean || cs.Calib.N != want.Calib.N {
		t.Fatalf("class aggregates lost in round-trip: %+v vs %+v", cs, want)
	}
	if !h2.Confident("class-abc") {
		t.Fatal("identical samples over MinRuns must pass the confidence gate")
	}
}

// The confidence gate: too few runs, noisy across-run rates, or internally
// skewed maps all keep a class racing.
func TestHistoryConfidenceGate(t *testing.T) {
	h := NewHistory()
	stable := profilerSummary()

	// Under MinRuns: never confident.
	h.Observe("young", ModeDPlus, 20*time.Second, 18*time.Second, stable)
	h.Observe("young", ModeDPlus, 20*time.Second, 18*time.Second, stable)
	if h.Confident("young") {
		t.Fatal("confident after 2 runs with MinRuns=3")
	}
	h.Observe("young", ModeDPlus, 20*time.Second, 18*time.Second, stable)
	if !h.Confident("young") {
		t.Fatal("not confident after 3 identical runs")
	}

	// Noisy per-byte rate across runs: CV blows past MaxCV.
	for i, cpu := range []time.Duration{500 * time.Millisecond, 3 * time.Second, 9 * time.Second} {
		s := stable
		s.AvgMapCPU = cpu
		h.Observe("noisy", ModeDPlus, 20*time.Second, 18*time.Second, s)
		_ = i
	}
	if h.Confident("noisy") {
		t.Fatal("confident despite wildly varying map rates")
	}

	// Internally skewed maps: high within-job CV keeps the class gated even
	// when the across-run aggregates are stable.
	skewed := stable
	skewed.MapCPUStd = 2 * skewed.AvgMapCPU
	for i := 0; i < 3; i++ {
		h.Observe("skewed", ModeDPlus, 20*time.Second, 18*time.Second, skewed)
	}
	if h.Confident("skewed") {
		t.Fatal("confident despite intra-job map skew above MaxIntraCV")
	}

	// Unknown class: not confident, no panic.
	if h.Confident("never-seen") {
		t.Fatal("confident about an unknown class")
	}
}

// Observe ignores unusable samples instead of poisoning the aggregates.
func TestHistoryObserveGuards(t *testing.T) {
	h := NewHistory()
	h.Observe("", ModeDPlus, time.Second, time.Second, profilerSummary())
	h.Observe("c", ModeDPlus, time.Second, time.Second, profiler.Summary{})
	if len(h.Classes()) != 0 {
		t.Fatalf("guarded samples created classes: %+v", h.Classes())
	}
}
