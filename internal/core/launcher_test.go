package core

import (
	"hash/fnv"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
)

// launchFingerprint is the observable behavior of one launch flow: when the
// job finished, what it wrote, and how its profile describes the run. The
// expected values below were captured on the pre-refactor per-mode launch
// bodies (launchDPlus/launchUPlus); the shared Executor launcher must
// reproduce them bit for bit — the refactor is structure, not behavior.
type launchFingerprint struct {
	elapsed    time.Duration
	outHash    uint64
	outLen     int
	mode       string
	maps       int
	containers int
	poolHit    bool
	amStartup  time.Duration
	tasks      int
}

func fingerprintOf(t *testing.T, rt *mapreduce.Runtime, res *mapreduce.Result, out string) launchFingerprint {
	t.Helper()
	if res == nil {
		t.Fatal("job never completed")
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	b, err := rt.DFS.Contents(mapreduce.PartFileName(out, 0))
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(b)
	p := res.Profile
	return launchFingerprint{
		elapsed:    p.Elapsed(),
		outHash:    h.Sum64(),
		outLen:     len(b),
		mode:       res.Mode,
		maps:       p.NumMaps,
		containers: p.NumContainers,
		poolHit:    p.AMPoolHit,
		amStartup:  p.AMStartup,
		tasks:      len(p.Tasks),
	}
}

// TestLauncherGoldenFingerprints drives every launch flow — D+, U+, the
// pool-exhaustion stock fallback, the AM-loss relaunch, and the speculative
// race — through the shared mode-agnostic launcher and pins each flow's
// behavior to the fingerprint the per-mode launch bodies produced before the
// refactor. Any drift in virtual timing, output bytes, or profile shape
// fails the test.
func TestLauncherGoldenFingerprints(t *testing.T) {
	const wcHash = uint64(427899536177052244) // word-count output, 4×1MiB synthetic input

	cases := []struct {
		name string
		run  func(t *testing.T) launchFingerprint
		want launchFingerprint
	}{
		{
			name: "dplus",
			run: func(t *testing.T) launchFingerprint {
				rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
				f := startFramework(t, rt, 3)
				names, _ := stageInput(t, rt, 4, 1<<20)
				var res *mapreduce.Result
				rt.Eng.After(0, func() {
					f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r; rt.RM.Stop() })
				})
				rt.Eng.RunUntil(horizon)
				return fingerprintOf(t, rt, res, "/out")
			},
			want: launchFingerprint{
				elapsed: 4373972954, outHash: wcHash, outLen: 122, mode: "dplus",
				maps: 4, containers: 28, poolHit: true, amStartup: 93608470, tasks: 5,
			},
		},
		{
			name: "uplus",
			run: func(t *testing.T) launchFingerprint {
				rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
				f := startFramework(t, rt, 3)
				names, _ := stageInput(t, rt, 4, 1<<20)
				var res *mapreduce.Result
				rt.Eng.After(0, func() {
					f.SubmitUPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r; rt.RM.Stop() })
				})
				rt.Eng.RunUntil(horizon)
				return fingerprintOf(t, rt, res, "/out")
			},
			want: launchFingerprint{
				elapsed: 1261532080, outHash: wcHash, outLen: 122, mode: "uplus",
				maps: 4, containers: 1, poolHit: true, amStartup: 93608470, tasks: 5,
			},
		},
		{
			// A size-0 pool is permanently exhausted: SubmitDPlus must degrade
			// to the stock distributed path (cold AM, poll-based completion).
			name: "stock-fallback",
			run: func(t *testing.T) launchFingerprint {
				rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
				f := startFramework(t, rt, 0)
				names, _ := stageInput(t, rt, 4, 1<<20)
				var res *mapreduce.Result
				rt.Eng.After(0, func() {
					f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r; rt.RM.Stop() })
				})
				rt.Eng.RunUntil(horizon)
				if f.StockFallbacks != 1 {
					t.Fatalf("StockFallbacks = %d, want 1", f.StockFallbacks)
				}
				return fingerprintOf(t, rt, res, "/out")
			},
			want: launchFingerprint{
				elapsed: 9000000000, outHash: wcHash, outLen: 122, mode: "hadoop",
				maps: 4, containers: 28, poolHit: false, amStartup: 4383131028, tasks: 5,
			},
		},
		{
			// The serving AM's node dies mid-job: the attempt fails with
			// ErrAMLost, partial output is wiped, and a fresh pooled AM reruns
			// the job to a clean finish.
			name: "am-loss-relaunch",
			run: func(t *testing.T) launchFingerprint {
				rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
				f := startFramework(t, rt, 3)
				victim := f.Pool.ams[0].Node
				names, _ := stageInput(t, rt, 4, 1<<20)
				var res *mapreduce.Result
				rt.Eng.After(500*time.Millisecond, victim.Fail)
				rt.Eng.After(0, func() {
					f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) { res = r })
				})
				rt.Eng.RunUntil(rt.Eng.Now().Add(600 * time.Second))
				rt.RM.Stop()
				if f.Pool.Lost != 1 {
					t.Fatalf("Pool.Lost = %d, want 1", f.Pool.Lost)
				}
				return fingerprintOf(t, rt, res, "/out")
			},
			want: launchFingerprint{
				elapsed: 4340281966, outHash: wcHash, outLen: 122, mode: "dplus",
				maps: 4, containers: 28, poolHit: true, amStartup: 94302381, tasks: 5,
			},
		},
		{
			// Both modes race; the estimator's verdict kills the projected
			// loser (D+ here) and the U+ winner's output is promoted.
			name: "speculative-kill",
			run: func(t *testing.T) launchFingerprint {
				rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
				f := startFramework(t, rt, 3)
				names, _ := stageInput(t, rt, 4, 1<<20)
				var res *SpecResult
				rt.Eng.After(0, func() {
					f.SubmitSpeculative(testWCSpec(names, "/out"), func(r *SpecResult) { res = r; rt.RM.Stop() })
				})
				rt.Eng.RunUntil(horizon)
				if res == nil {
					t.Fatal("speculative run never completed")
				}
				if res.Winner != ModeUPlus {
					t.Fatalf("winner = %s, want %s", res.Winner, ModeUPlus)
				}
				if res.EstimateD != 5467440281 || res.EstimateU != 194781382 {
					t.Fatalf("estimates D=%d U=%d, want D=5467440281 U=194781382", res.EstimateD, res.EstimateU)
				}
				if res.DecidedAt != 60579447673 {
					t.Fatalf("DecidedAt = %d, want 60579447673", res.DecidedAt)
				}
				return fingerprintOf(t, rt, res.Result, "/out")
			},
			want: launchFingerprint{
				elapsed: 1262225991, outHash: wcHash, outLen: 122, mode: "uplus",
				maps: 4, containers: 1, poolHit: true, amStartup: 94302381, tasks: 5,
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t)
			if got != tc.want {
				t.Errorf("fingerprint drifted:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}

// TestExecutorFor checks the mode→executor registry, including the stock
// modes the JobServer routes around the pool.
func TestExecutorFor(t *testing.T) {
	for _, tc := range []struct {
		mode ModeKind
		pool bool
	}{
		{ModeDPlus, true},
		{ModeUPlus, true},
		{ModeHadoop, false},
		{ModeUber, false},
	} {
		exec, err := ExecutorFor(tc.mode)
		if err != nil {
			t.Fatalf("ExecutorFor(%s): %v", tc.mode, err)
		}
		if exec.Mode() != tc.mode {
			t.Errorf("ExecutorFor(%s).Mode() = %s", tc.mode, exec.Mode())
		}
		if exec.UsesPool() != tc.pool {
			t.Errorf("ExecutorFor(%s).UsesPool() = %v, want %v", tc.mode, exec.UsesPool(), tc.pool)
		}
	}
	if _, err := ExecutorFor(ModeKind("bogus")); err == nil {
		t.Error("ExecutorFor(bogus) did not fail")
	}
	if _, err := ExecutorFor(ModeSpeculative); err == nil {
		t.Error("ExecutorFor(speculative) did not fail: the race is a JobServer routing mode, not an executor")
	}
}
