package core

import (
	"fmt"
	"math"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// ModeSpeculative asks the JobServer to run a job through the full MRapid
// speculative workflow (D+ and U+ race, decision maker kills the loser).
// It is a JobServer routing mode, not a single-executor ModeKind: the race
// holds two pooled AMs, so admission charges it double.
const ModeSpeculative ModeKind = "speculative"

// AdmissionPolicy orders waiting jobs when the admission window has room.
type AdmissionPolicy string

const (
	// PolicyFIFO admits jobs strictly in arrival order, tenants interleaved.
	PolicyFIFO AdmissionPolicy = "fifo"

	// PolicyWeightedFair admits the next job of the tenant with the lowest
	// served-work-to-weight ratio (weight = the tenant queue's configured
	// capacity), so a burst from one tenant cannot starve the others. Within
	// a tenant, jobs stay FIFO.
	PolicyWeightedFair AdmissionPolicy = "wfair"

	// PolicyDeadline admits the deadline job with the least laxity —
	// (deadline − now) − predicted runtime, the prediction coming from the
	// framework's history/class estimator (see Framework.PredictRuntime).
	// Jobs without deadlines wait behind all deadline jobs in arrival order;
	// an unpredictable deadline job schedules on the deadline alone.
	PolicyDeadline AdmissionPolicy = "deadline"
)

// JobServerConfig sizes the admission layer.
type JobServerConfig struct {
	// Queues configures tenant capacity queues on the RM (optional: with no
	// queues every tenant shares the default queue unconstrained). A
	// "default" queue is added automatically with the leftover capacity when
	// absent — the AM pool's own containers live there, so it must exist.
	Queues []yarn.QueueConfig

	// Policy selects the admission order; empty means PolicyFIFO.
	Policy AdmissionPolicy

	// MaxInFlight caps concurrently executing jobs (a speculative job counts
	// twice — it holds two pooled AMs). Zero derives the window from the
	// framework: one job per reserved AM, bounded by the cluster's container
	// slots; a pool-less framework serializes stock submissions.
	MaxInFlight int
}

// tenantState tracks one tenant's weighted-fair accounting and statistics.
type tenantState struct {
	name   string
	weight float64
	served float64 // admission cost admitted so far, for served/weight ordering

	Submitted int64
	Completed int64

	// Pre-resolved tenant-labeled handles, bound per registry (RT.Reg is
	// assignable after the server is built; see handles).
	hSrc          *metrics.Registry
	hSubmitted    map[ModeKind]metrics.Counter
	hCompleted    metrics.Counter
	hDeadlineMiss metrics.Counter
	hQueueWait    metrics.Observer
}

// handles rebinds the tenant's metric handles when the registry changed.
func (t *tenantState) handles(reg *metrics.Registry) *tenantState {
	if t.hSrc != reg || t.hSubmitted == nil {
		t.hSrc = reg
		t.hSubmitted = make(map[ModeKind]metrics.Counter)
		t.hCompleted = reg.CounterHandle("jobserver_completed_total", "tenant", t.name)
		t.hDeadlineMiss = reg.CounterHandle("jobserver_deadline_miss_total", "tenant", t.name)
		t.hQueueWait = reg.HistogramHandle("jobserver_queue_wait_seconds", "tenant", t.name)
	}
	return t
}

func (t *tenantState) submittedCounter(reg *metrics.Registry, mode ModeKind) metrics.Counter {
	t.handles(reg)
	c, ok := t.hSubmitted[mode]
	if !ok {
		c = reg.CounterHandle("jobserver_submitted_total", "tenant", t.name, "mode", string(mode))
		t.hSubmitted[mode] = c
	}
	return c
}

// queuedJob is one submission waiting for admission.
type queuedJob struct {
	tenant *tenantState
	spec   *mapreduce.JobSpec
	mode   ModeKind
	cost   int
	run    func() // dispatches through the framework and settles the window
	done   func(*mapreduce.Result)
	span   trace.SpanID
	enqAt  sim.Time

	// deadline is the absolute completion target (hasDeadline false = none);
	// predicted is the estimator's runtime prediction at submission, used by
	// PolicyDeadline's laxity ordering.
	deadline    sim.Time
	hasDeadline bool
	predicted   time.Duration

	admitAt sim.Time // when the job left the queue, for slot-second accounting
}

// laxity is the job's scheduling slack at time now: how long admission could
// still be deferred before the predicted runtime overruns the deadline.
func (j *queuedJob) laxity(now sim.Time) time.Duration {
	return j.deadline.Sub(now) - j.predicted
}

// AdmissionObserver receives the JobServer's per-tenant lifecycle signals.
// The flight recorder's SLO tracker hangs off this: queue waits feed the
// per-tenant p99 objective, completions feed the deadline-miss budget.
// Callbacks fire on the engine's virtual-clock goroutine, synchronously
// with the state change they describe.
type AdmissionObserver interface {
	// JobAdmitted fires when a job leaves the queue, with the time it waited.
	JobAdmitted(tenant string, wait time.Duration)

	// JobCompleted fires when a job finishes, before the submitter's own
	// callback. missedDeadline is true for a deadline job past its target.
	JobCompleted(tenant string, missedDeadline bool)
}

// JobServer is the long-running submission service in front of a Framework:
// clients Submit jobs tagged with a tenant, the server validates the tenant
// queue, applies backpressure against the admission window, orders waiting
// jobs by the configured policy, and routes each admitted job through the
// shared mode-agnostic launcher (or the speculative race). Queue-wait is
// visible per job as a trace span and a per-tenant histogram.
type JobServer struct {
	fw      *Framework
	policy  AdmissionPolicy
	window  int
	pending []*queuedJob
	tenants map[string]*tenantState

	inFlight int // admission cost currently executing

	// Submitted, Completed, and Rejected count jobs over the server's
	// lifetime (Rejected = submissions refused for an unknown tenant queue).
	Submitted int64
	Completed int64
	Rejected  int64

	// SlotSeconds accumulates admission-cost × execution-time over completed
	// jobs: the cluster-slot consumption the speculative 2× dual-launch pays
	// for and the calibrating estimator claws back. DeadlineMisses counts
	// deadline jobs that finished past their target.
	SlotSeconds    float64
	DeadlineMisses int64

	// Observer, when non-nil, is notified of admissions and completions
	// (see AdmissionObserver). Set it before submitting.
	Observer AdmissionObserver
}

// NewJobServer builds the admission layer over a started framework. Tenant
// queues from cfg are installed on the RM; an invalid queue configuration is
// returned as an error before anything is mutated on the RM.
func NewJobServer(fw *Framework, cfg JobServerConfig) (*JobServer, error) {
	if fw == nil {
		panic("core: NewJobServer needs a framework")
	}
	policy := cfg.Policy
	if policy == "" {
		policy = PolicyFIFO
	}
	if policy != PolicyFIFO && policy != PolicyWeightedFair && policy != PolicyDeadline {
		return nil, fmt.Errorf("core: unknown admission policy %q", policy)
	}
	s := &JobServer{
		fw:      fw,
		policy:  policy,
		window:  cfg.MaxInFlight,
		tenants: make(map[string]*tenantState),
	}
	if s.window <= 0 {
		s.window = defaultWindow(fw)
	}
	if len(cfg.Queues) > 0 {
		queues, err := withDefaultQueue(cfg.Queues)
		if err != nil {
			return nil, err
		}
		if err := fw.RT.RM.ConfigureQueues(queues); err != nil {
			return nil, err
		}
		for _, q := range queues {
			s.tenants[q.Name] = &tenantState{name: q.Name, weight: q.Capacity}
		}
	}
	return s, nil
}

// defaultWindow derives the admission window: one job per reserved AM keeps
// every admitted job on the warm path (more would just stack up inside
// Pool.Acquire), clamped by the cluster's container slots; a size-0 pool
// serializes the stock submissions it degrades to.
func defaultWindow(fw *Framework) int {
	w := fw.Pool.Size()
	if w == 0 {
		w = 1
	}
	if slots := mapreduce.ClusterContainerSlots(fw.RT); w > slots && slots > 0 {
		w = slots
	}
	return w
}

// withDefaultQueue ensures the configuration routes the AM pool somewhere:
// pooled AMs (and jobs with no tenant) live in the default queue, so when the
// tenants don't declare one it is added with the leftover capacity.
func withDefaultQueue(configs []yarn.QueueConfig) ([]yarn.QueueConfig, error) {
	var sum float64
	for _, c := range configs {
		if c.Name == yarn.DefaultQueue {
			return configs, nil
		}
		sum += c.Capacity
	}
	leftover := 1.0 - sum
	if leftover <= 1e-9 {
		return nil, fmt.Errorf("core: tenant capacities sum to %v; reserve headroom for the %q queue (the AM pool runs there) or declare it explicitly", sum, yarn.DefaultQueue)
	}
	out := make([]yarn.QueueConfig, len(configs), len(configs)+1)
	copy(out, configs)
	return append(out, yarn.QueueConfig{Name: yarn.DefaultQueue, Capacity: leftover}), nil
}

// tenantFor returns (creating on first use) the state for a tenant name. With
// queues configured, tenants were pre-created in NewJobServer and unknown
// names were already rejected by Submit; without queues, every name is a
// weight-1 tenant in the shared default queue.
func (s *JobServer) tenantFor(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{name: name, weight: 1}
		// Virtual-time join: a tenant arriving after the others have been
		// served starts at the current minimum served/weight ratio, not at
		// zero — otherwise weighted-fair would hand the newcomer the whole
		// window until it "caught up" on work it never submitted.
		minRatio := math.Inf(1)
		for _, o := range s.tenants {
			if r := o.served / o.weight; r < minRatio {
				minRatio = r
			}
		}
		if !math.IsInf(minRatio, 1) {
			t.served = minRatio * t.weight
		}
		s.tenants[name] = t
	}
	return t
}

// Tenant reports a tenant's submission statistics (nil when never seen).
func (s *JobServer) Tenant(name string) *tenantState { return s.tenants[name] }

// Pending reports how many submissions are waiting for admission.
func (s *JobServer) Pending() int { return len(s.pending) }

// PendingByTenant counts the queued submissions per tenant — the queue-depth
// gauge the flight recorder samples. Tenants with nothing queued but known
// to the server (configured queues or past submitters) report 0, so their
// series do not wink out between bursts.
func (s *JobServer) PendingByTenant() map[string]int {
	out := make(map[string]int, len(s.tenants))
	for name := range s.tenants {
		out[name] = 0
	}
	for _, j := range s.pending {
		out[j.tenant.name]++
	}
	return out
}

// InFlight reports the admission cost currently executing.
func (s *JobServer) InFlight() int { return s.inFlight }

// Submit hands a job to the server on behalf of a tenant. The tenant names
// the target queue ("" = default); an unknown queue is rejected here, at the
// submission boundary, so the RM never sees an unroutable app. mode selects
// the execution path — one of the four single-mode executors or
// ModeSpeculative. done fires with the job's result once it completes.
//
// Submission is asynchronous admission: the job may queue behind the
// admission window; its queue-wait is recorded as a span and a per-tenant
// histogram sample.
func (s *JobServer) Submit(tenant string, mode ModeKind, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) error {
	return s.submit(tenant, tenant, mode, spec, sim.Time(0), false, done)
}

// SubmitAs is Submit with the fairness identity decoupled from the RM
// queue: admission accounting (weighted-fair ordering, queue-wait
// histograms, served-work ratios) runs under tenant, while the job's
// containers land in queue ("" = default). The query DAG runner uses this
// to give every query its own admission tenant — so one query's burst of
// ready stages cannot starve another query's — without requiring an RM
// capacity queue per query. The queue, not the tenant, is validated
// against the RM.
func (s *JobServer) SubmitAs(tenant, queue string, mode ModeKind, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) error {
	return s.submit(tenant, queue, mode, spec, sim.Time(0), false, done)
}

// ReleaseTenant drops a logical tenant's fairness state once it has no
// pending or future submissions (a finished query). Dropping the state
// keeps the tenant map from growing one entry per query forever; a tenant
// with jobs still queued is left alone.
func (s *JobServer) ReleaseTenant(name string) {
	for _, j := range s.pending {
		if j.tenant.name == name {
			return
		}
	}
	delete(s.tenants, name)
}

// SubmitWithDeadline is Submit with an absolute completion target on the
// virtual clock. Under PolicyDeadline the queue orders by least laxity —
// (deadline − now) minus the estimator's predicted runtime — and a job that
// finishes past its target increments DeadlineMisses and the
// jobserver_deadline_miss_total counter (the job itself still completes
// normally; the deadline is an SLO, not a kill switch).
func (s *JobServer) SubmitWithDeadline(tenant string, mode ModeKind, spec *mapreduce.JobSpec, deadline sim.Time, done func(*mapreduce.Result)) error {
	return s.submit(tenant, tenant, mode, spec, deadline, true, done)
}

func (s *JobServer) submit(tenant, queue string, mode ModeKind, spec *mapreduce.JobSpec, deadline sim.Time, hasDeadline bool, done func(*mapreduce.Result)) error {
	if spec == nil {
		panic("core: Submit needs a job spec")
	}
	if done == nil {
		panic("core: Submit needs a completion callback")
	}
	if !s.fw.RT.RM.ValidQueue(queue) {
		s.Rejected++
		s.fw.RT.Reg.Inc(metrics.With("jobserver_rejected_total", "tenant", tenant))
		return fmt.Errorf("core: unknown tenant queue %q", queue)
	}
	cost := 1
	var run func(*queuedJob)
	switch mode {
	case ModeSpeculative:
		if s.fw.Pool.Size() < 2 {
			return fmt.Errorf("core: speculative submission needs an AM pool of at least 2")
		}
		cost = 2 // the race holds a pooled AM per mode
		if s.fw.PreDecided(spec) {
			// History or the calibrating estimator will skip the race and
			// launch one mode, so admission charges a single slot.
			cost = 1
		}
		run = func(j *queuedJob) {
			s.fw.SubmitSpeculative(j.spec, func(res *SpecResult) {
				s.settle(j, res.Result)
			})
		}
	default:
		exec, err := ExecutorFor(mode)
		if err != nil {
			return err
		}
		run = func(j *queuedJob) {
			s.fw.Submit(exec, j.spec, func(res *mapreduce.Result) {
				s.settle(j, res)
			})
		}
	}

	t := s.tenantFor(tenant)
	t.Submitted++
	s.Submitted++
	spec.Queue = queue
	j := &queuedJob{
		tenant:      t,
		spec:        spec,
		mode:        mode,
		cost:        cost,
		done:        done,
		enqAt:       s.fw.RT.Eng.Now(),
		deadline:    deadline,
		hasDeadline: hasDeadline,
	}
	if hasDeadline {
		// The prediction is pinned at submission: laxity then orders the
		// queue deterministically as the clock advances.
		j.predicted, _ = s.fw.PredictRuntime(spec)
	}
	j.run = func() { run(j) }
	if s.fw.RT.Trace != nil {
		j.span = s.fw.RT.Trace.StartSpan(0, "jobserver", spec.Name+" queue-wait", "admit",
			trace.A("tenant", t.name), trace.A("mode", string(mode)))
	}
	t.submittedCounter(s.fw.RT.Reg, mode).Inc()
	s.pending = append(s.pending, j)
	s.dispatch()
	return nil
}

// settle returns a finished job's admission cost to the window, admits
// whoever is next, and reports the result to the submitter.
func (s *JobServer) settle(j *queuedJob, res *mapreduce.Result) {
	now := s.fw.RT.Eng.Now()
	s.inFlight -= j.cost
	s.SlotSeconds += float64(j.cost) * now.Sub(j.admitAt).Seconds()
	missed := j.hasDeadline && now.Sub(j.deadline) > 0
	if missed {
		s.DeadlineMisses++
		j.tenant.handles(s.fw.RT.Reg).hDeadlineMiss.Inc()
		if s.fw.RT.Trace != nil {
			s.fw.RT.Trace.Add("jobserver", "job %s missed its deadline by %s", j.spec.Name, now.Sub(j.deadline))
		}
	}
	j.tenant.Completed++
	s.Completed++
	if s.Observer != nil {
		s.Observer.JobCompleted(j.tenant.name, missed)
	}
	s.dispatch()
	// The submitter's callback runs after dispatch so a chain of short jobs
	// can't observe an artificially empty window.
	if res == nil {
		res = &mapreduce.Result{Spec: j.spec}
	}
	j.tenant.handles(s.fw.RT.Reg).hCompleted.Inc()
	j.done(res)
}

// dispatch admits waiting jobs while the window has room, in policy order.
func (s *JobServer) dispatch() {
	for len(s.pending) > 0 {
		idx := s.next()
		j := s.pending[idx]
		if s.inFlight > 0 && s.inFlight+j.cost > s.window {
			return
		}
		s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
		s.admit(j)
	}
}

// next picks the pending index to admit: FIFO takes the head; weighted-fair
// takes the earliest job of the most underserved tenant (lowest
// served/weight, ties broken by arrival order for determinism); deadline
// takes the least-laxity deadline job, no-deadline jobs after all of them.
func (s *JobServer) next() int {
	if s.policy == PolicyFIFO {
		return 0
	}
	if s.policy == PolicyDeadline {
		return s.nextByLaxity()
	}
	best := 0
	bestRatio := s.pending[0].tenant.served / s.pending[0].tenant.weight
	seen := map[*tenantState]bool{s.pending[0].tenant: true}
	for i := 1; i < len(s.pending); i++ {
		t := s.pending[i].tenant
		if seen[t] {
			continue // a tenant's own jobs stay FIFO
		}
		seen[t] = true
		if ratio := t.served / t.weight; ratio < bestRatio {
			best, bestRatio = i, ratio
		}
	}
	return best
}

// nextByLaxity picks the deadline job whose slack — time to deadline minus
// predicted runtime — is smallest (least-laxity-first). Jobs without
// deadlines are best-effort: they wait behind every deadline job, in arrival
// order. Ties break by arrival order for determinism.
func (s *JobServer) nextByLaxity() int {
	now := s.fw.RT.Eng.Now()
	best := -1
	var bestLax time.Duration
	for i, j := range s.pending {
		if !j.hasDeadline {
			continue
		}
		if lax := j.laxity(now); best < 0 || lax < bestLax {
			best, bestLax = i, lax
		}
	}
	if best < 0 {
		return 0 // only best-effort jobs pending: arrival order
	}
	return best
}

// admit moves a job from the queue into execution: the wait span closes, the
// wait lands in the tenant's histogram, and the job runs through the
// framework.
func (s *JobServer) admit(j *queuedJob) {
	s.inFlight += j.cost
	j.admitAt = s.fw.RT.Eng.Now()
	j.tenant.served += float64(j.cost)
	wait := s.fw.RT.Eng.Now().Sub(j.enqAt)
	if j.span != 0 {
		s.fw.RT.Trace.EndSpan(j.span, trace.A("wait", wait.String()))
	}
	j.tenant.handles(s.fw.RT.Reg).hQueueWait.Observe(wait.Seconds())
	if s.Observer != nil {
		s.Observer.JobAdmitted(j.tenant.name, wait)
	}
	j.run()
}
