package core

import (
	"fmt"
	"testing"

	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
)

// TestConcurrentSpeculativeJobs runs two speculative jobs at once: four AM
// racers (2 jobs × 2 modes) share the pool and cluster. Both must finish
// with correct output and the pool must drain back to idle.
func TestConcurrentSpeculativeJobs(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 4)
	namesA, allA := stageInput(t, rt, 3, 512<<10)

	// Second input set under a different prefix.
	var namesB []string
	var allB []byte
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("/inB/part-%d", i)
		data := []byte(fmt.Sprintf("gamma delta gamma %d\nepsilon zeta\n", i))
		rt.DFS.PutInstant(name, data, rt.Cluster.Workers()[i%4])
		namesB = append(namesB, name)
		allB = append(allB, data...)
	}

	specA := testWCSpec(namesA, "/outA")
	specA.Name, specA.JobKey = "jobA", "jobA"
	specB := testWCSpec(namesB, "/outB")
	specB.Name, specB.JobKey = "jobB", "jobB"

	var resA, resB *SpecResult
	rt.Eng.After(0, func() {
		f.SubmitSpeculative(specA, func(r *SpecResult) { resA = r })
		f.SubmitSpeculative(specB, func(r *SpecResult) { resB = r })
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(1 << 41))
	rt.RM.Stop()
	if resA == nil || resB == nil {
		t.Fatalf("jobs unfinished: A=%v B=%v", resA != nil, resB != nil)
	}
	if resA.Result.Err != nil || resB.Result.Err != nil {
		t.Fatalf("errors: %v / %v", resA.Result.Err, resB.Result.Err)
	}
	verifyWC(t, rt, "/outA", allA)
	verifyWC(t, rt, "/outB", allB)
	if f.Pool.Idle() != 4 {
		t.Fatalf("pool idle = %d, want 4", f.Pool.Idle())
	}
	if f.History.Len() != 2 {
		t.Fatalf("history entries = %d", f.History.Len())
	}
}

// TestManySequentialJobsThroughPool stresses AM reuse: ten jobs back to
// back must all succeed through the same 2-AM pool with no leakage.
func TestManySequentialJobsThroughPool(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 2)
	names, all := stageInput(t, rt, 2, 128<<10)
	for j := 0; j < 10; j++ {
		spec := testWCSpec(names, fmt.Sprintf("/out%d", j))
		spec.Name = fmt.Sprintf("job-%d", j)
		var res *mapreduce.Result
		rt.Eng.After(0, func() {
			if j%2 == 0 {
				f.SubmitDPlus(spec, func(r *mapreduce.Result) { res = r })
			} else {
				f.SubmitUPlus(spec, func(r *mapreduce.Result) { res = r })
			}
		})
		rt.Eng.RunUntil(rt.Eng.Now().Add(1 << 39))
		if res == nil || res.Err != nil {
			t.Fatalf("job %d failed: %+v", j, res)
		}
		verifyWC(t, rt, fmt.Sprintf("/out%d", j), all)
	}
	rt.RM.Stop()
	if f.Pool.Idle() != 2 {
		t.Fatalf("pool leaked: idle = %d", f.Pool.Idle())
	}
	if f.Pool.Dispatches != 10 {
		t.Fatalf("dispatches = %d", f.Pool.Dispatches)
	}
	if used := rt.RM.TotalUsed(); used.VCores != 2 {
		t.Fatalf("resources leaked: %v (want just the 2 pooled AMs)", used)
	}
}

// TestSpeculativeJobsQueueOnSmallPool: with a 2-AM pool, a second
// speculative job must wait for AMs instead of deadlocking.
func TestSpeculativeJobsQueueOnSmallPool(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 2)
	names, _ := stageInput(t, rt, 2, 256<<10)
	var done int
	rt.Eng.After(0, func() {
		for j := 0; j < 3; j++ {
			spec := testWCSpec(names, fmt.Sprintf("/outq%d", j))
			spec.Name = fmt.Sprintf("qjob-%d", j)
			spec.JobKey = fmt.Sprintf("qjob-%d", j) // distinct: all speculate
			f.SubmitSpeculative(spec, func(r *SpecResult) {
				if r.Result.Err != nil {
					t.Errorf("job failed: %v", r.Result.Err)
				}
				done++
			})
		}
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(1 << 42))
	rt.RM.Stop()
	if done != 3 {
		t.Fatalf("completed %d of 3 queued speculative jobs", done)
	}
	if f.Pool.Idle() != 2 {
		t.Fatalf("pool idle = %d", f.Pool.Idle())
	}
}
