package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// startJobServer assembles runtime → framework → JobServer in the order a
// real deployment would: queues are configured before the pool starts, so the
// reserved AM containers are charged against the default queue.
func startJobServer(t *testing.T, rt *mapreduce.Runtime, poolSize int, cfg JobServerConfig) (*Framework, *JobServer) {
	t.Helper()
	f := NewFramework(rt, poolSize, FullUPlus())
	s, err := NewJobServer(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ready := false
	rt.Eng.After(0, func() { f.Start(func() { ready = true }) })
	rt.Eng.RunUntil(sim.Time(60 * time.Second))
	if !ready {
		t.Fatal("framework pool never came up")
	}
	return f, s
}

// TestJobServerMultiTenantFairness is the acceptance scenario: ≥50 concurrent
// submissions across two tenants with capacity queues. Every job must
// complete correctly, per-queue usage must stay under the configured ceiling
// at every sample, the admission window must hold, and each job's queue wait
// must be visible as a span and a per-tenant histogram sample.
func TestJobServerMultiTenantFairness(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	rt.Trace = trace.New(rt.Eng, 0)
	rt.Reg = metrics.New()
	rt.RM.Trace = rt.Trace
	_, s := startJobServer(t, rt, 3, JobServerConfig{
		Queues: []yarn.QueueConfig{
			{Name: "alice", Capacity: 0.4},
			{Name: "bob", Capacity: 0.3},
		},
		Policy: PolicyWeightedFair,
	})
	names, input := stageInput(t, rt, 4, 1<<20)

	const perTenant = 26 // 52 total
	total := 2 * perTenant
	completed := 0
	outputs := map[string]string{} // output path → tenant
	overCap := ""

	// Sample queue usage against the hard ceilings while jobs run.
	ceiling := func(q string, frac float64) topology.Resource {
		c := rt.RM.TotalCapacity()
		return topology.Resource{VCores: int(float64(c.VCores) * frac), MemoryMB: int(float64(c.MemoryMB) * frac)}
	}
	sampler := rt.Eng.Every(50*time.Millisecond, func() {
		for q, frac := range map[string]float64{"alice": 0.4, "bob": 0.3} {
			used, limit := rt.RM.QueueUsed(q), ceiling(q, frac)
			if !used.FitsIn(limit) && overCap == "" {
				overCap = fmt.Sprintf("queue %s used %+v over ceiling %+v at %s", q, used, limit, rt.Eng.Now())
			}
		}
		if s.InFlight() > 3+1 { // window = pool size 3; a cost-2 job may overhang by 1
			overCap = fmt.Sprintf("admission window breached: in-flight %d", s.InFlight())
		}
	})

	rt.Eng.After(0, func() {
		for i := 0; i < perTenant; i++ {
			for _, tenant := range []string{"alice", "bob"} {
				tenant := tenant
				out := fmt.Sprintf("/out/%s-%d", tenant, i)
				spec := testWCSpec(names, out)
				spec.Name = fmt.Sprintf("wc-%s-%d", tenant, i)
				mode := ModeDPlus
				if i%2 == 1 {
					mode = ModeUPlus
				}
				outputs[out] = tenant
				if err := s.Submit(tenant, mode, spec, func(res *mapreduce.Result) {
					if res.Err != nil {
						t.Errorf("job %s failed: %v", res.Spec.Name, res.Err)
					}
					completed++
					if completed == total {
						sampler.Stop()
						rt.RM.Stop()
					}
				}); err != nil {
					t.Errorf("submit %s: %v", spec.Name, err)
				}
			}
		}
	})
	rt.Eng.RunUntil(horizon)

	if overCap != "" {
		t.Fatal(overCap)
	}
	if completed != total {
		t.Fatalf("completed %d of %d jobs (pending %d, in-flight %d)", completed, total, s.Pending(), s.InFlight())
	}
	if s.Submitted != int64(total) || s.Completed != int64(total) || s.Pending() != 0 {
		t.Fatalf("server counters: submitted=%d completed=%d pending=%d", s.Submitted, s.Completed, s.Pending())
	}
	for out := range outputs {
		verifyWC(t, rt, out, input)
	}

	// Queue-wait must be visible per job: one ended jobserver span per
	// submission, and per-tenant wait histograms covering every job.
	spans := 0
	for _, sp := range rt.Trace.Spans() {
		if sp.Component == "jobserver" {
			spans++
			if !sp.Ended {
				t.Errorf("queue-wait span %q never ended", sp.Name)
			}
		}
	}
	if spans != total {
		t.Errorf("found %d jobserver queue-wait spans, want %d", spans, total)
	}
	hists := rt.Reg.Histograms()
	for _, tenant := range []string{"alice", "bob"} {
		h := hists[metrics.With("jobserver_queue_wait_seconds", "tenant", tenant)]
		if h == nil || h.Count != perTenant {
			t.Errorf("tenant %s queue-wait histogram missing or short: %+v", tenant, h)
		}
		ts := s.Tenant(tenant)
		if ts == nil || ts.Submitted != perTenant || ts.Completed != perTenant {
			t.Errorf("tenant %s stats wrong: %+v", tenant, ts)
		}
	}
}

// TestJobServerWeightedFairInterleaving checks that a burst from one tenant
// cannot starve another: with equal weights and a serialized window, the
// light tenant's jobs are admitted alternately with the heavy backlog instead
// of queueing behind all of it.
func TestJobServerWeightedFairInterleaving(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	_, s := startJobServer(t, rt, 3, JobServerConfig{
		Queues: []yarn.QueueConfig{
			{Name: "heavy", Capacity: 0.35},
			{Name: "light", Capacity: 0.35},
		},
		Policy:      PolicyWeightedFair,
		MaxInFlight: 1,
	})
	names, _ := stageInput(t, rt, 4, 1<<20)

	var order []string
	submit := func(tenant string, i int) {
		spec := testWCSpec(names, fmt.Sprintf("/out/%s-%d", tenant, i))
		spec.Name = fmt.Sprintf("wc-%s-%d", tenant, i)
		if err := s.Submit(tenant, ModeUPlus, spec, func(res *mapreduce.Result) {
			if res.Err != nil {
				t.Errorf("job %s failed: %v", res.Spec.Name, res.Err)
			}
			order = append(order, tenant)
			if len(order) == 16 {
				rt.RM.Stop()
			}
		}); err != nil {
			t.Errorf("submit: %v", err)
		}
	}
	rt.Eng.After(0, func() {
		// The heavy burst lands first, then the light tenant shows up.
		for i := 0; i < 12; i++ {
			submit("heavy", i)
		}
		for i := 0; i < 4; i++ {
			submit("light", i)
		}
	})
	rt.Eng.RunUntil(horizon)

	if len(order) != 16 {
		t.Fatalf("completed %d of 16 jobs", len(order))
	}
	// All four light jobs must finish within the first half of the run; FIFO
	// would hold them behind the entire heavy backlog.
	lightDone := 0
	for _, tenant := range order[:8] {
		if tenant == "light" {
			lightDone++
		}
	}
	if lightDone != 4 {
		t.Errorf("only %d/4 light jobs completed in the first 8 finishes (order %v)", lightDone, order)
	}
}

// TestJobServerSubmitValidation covers the submission boundary: unknown
// tenant queues, unroutable modes, and a pool too small for speculation are
// rejected with errors (never panics) before anything reaches the RM.
func TestJobServerSubmitValidation(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	rt.Reg = metrics.New()
	_, s := startJobServer(t, rt, 1, JobServerConfig{
		Queues: []yarn.QueueConfig{{Name: "alice", Capacity: 0.5}},
	})
	names, _ := stageInput(t, rt, 2, 1<<18)
	spec := testWCSpec(names, "/out")
	noop := func(*mapreduce.Result) {}

	if err := s.Submit("mallory", ModeDPlus, spec, noop); err == nil || !strings.Contains(err.Error(), "unknown tenant queue") {
		t.Errorf("unknown tenant: err = %v", err)
	}
	if s.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Rejected)
	}
	if got := rt.Reg.Get(metrics.With("jobserver_rejected_total", "tenant", "mallory")); got != 1 {
		t.Errorf("rejected metric = %d, want 1", got)
	}
	if err := s.Submit("alice", ModeKind("warp"), spec, noop); err == nil || !strings.Contains(err.Error(), "no executor") {
		t.Errorf("bogus mode: err = %v", err)
	}
	if err := s.Submit("alice", ModeSpeculative, spec, noop); err == nil || !strings.Contains(err.Error(), "pool of at least 2") {
		t.Errorf("speculative on pool of 1: err = %v", err)
	}
	if s.Submitted != 0 {
		t.Errorf("rejected submissions were counted: Submitted = %d", s.Submitted)
	}

	// The default queue was added automatically, so tenantless submission
	// works and lands in it.
	if !rt.RM.ValidQueue("") {
		t.Fatal("default queue missing after auto-configuration")
	}
	done := false
	rt.Eng.After(0, func() {
		if err := s.Submit("", ModeUPlus, spec, func(res *mapreduce.Result) {
			if res.Err != nil {
				t.Errorf("default-queue job failed: %v", res.Err)
			}
			done = true
			rt.RM.Stop()
		}); err != nil {
			t.Errorf("default-queue submit: %v", err)
		}
	})
	rt.Eng.RunUntil(horizon)
	if !done {
		t.Fatal("default-queue job never completed")
	}
}

// TestNewJobServerConfig covers the constructor's rejection paths.
func TestNewJobServerConfig(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := NewFramework(rt, 1, FullUPlus())

	if _, err := NewJobServer(f, JobServerConfig{Policy: AdmissionPolicy("lifo")}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Tenants claiming the whole cluster leave no room for the default queue
	// the AM pool needs.
	if _, err := NewJobServer(f, JobServerConfig{
		Queues: []yarn.QueueConfig{{Name: "a", Capacity: 0.5}, {Name: "b", Capacity: 0.5}},
	}); err == nil || !strings.Contains(err.Error(), "default") {
		t.Errorf("full-capacity tenants: err = %v", err)
	}
	// An invalid queue set is refused by ConfigureQueues through the same
	// constructor path.
	if _, err := NewJobServer(f, JobServerConfig{
		Queues: []yarn.QueueConfig{{Name: "a", Capacity: 1.5}},
	}); err == nil {
		t.Error("capacity > 1 accepted")
	}
	// A declared default queue is used as-is (capacities may then sum to 1).
	s, err := NewJobServer(f, JobServerConfig{
		Queues: []yarn.QueueConfig{
			{Name: yarn.DefaultQueue, Capacity: 0.2},
			{Name: "a", Capacity: 0.8},
		},
	})
	if err != nil {
		t.Fatalf("explicit default queue rejected: %v", err)
	}
	if !rt.RM.ValidQueue("a") || !rt.RM.ValidQueue("") {
		t.Error("configured queues not installed")
	}
	if s.window != 1 {
		t.Errorf("derived window = %d, want pool size 1", s.window)
	}
}
