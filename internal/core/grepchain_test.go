package core

import (
	"bytes"
	"testing"

	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
	"mrapid/internal/workloads"
)

// TestGrepChainThroughFramework runs Hadoop's two-job Grep chain through
// the MRapid framework: the search job feeds the sort job, both submitted
// speculatively. The second job is tiny — exactly the ad-hoc short-job
// traffic the framework targets.
func TestGrepChainThroughFramework(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)

	text := bytes.Repeat([]byte("alpha req-a beta req-b req-a\nplain line\n"), 20_000)
	rt.DFS.PutInstant("/in/g/part-0", text, rt.Cluster.Workers()[0])
	rt.DFS.PutInstant("/in/g/part-1", bytes.Repeat([]byte("req-c req-a gamma\n"), 10_000), rt.Cluster.Workers()[1])

	search := workloads.GrepSearchSpec("grep-search", []string{"/in/g/part-0", "/in/g/part-1"}, "/grep/inter", "req")
	var searchRes, sortRes *SpecResult
	rt.Eng.After(0, func() {
		f.SubmitSpeculative(search, func(r *SpecResult) {
			searchRes = r
			if r.Result.Err != nil {
				return
			}
			sortSpec := workloads.GrepSortSpec("grep-sort",
				[]string{mapreduce.PartFileName("/grep/inter", 0)}, "/grep/out")
			f.SubmitSpeculative(sortSpec, func(r2 *SpecResult) {
				sortRes = r2
				rt.RM.Stop()
			})
		})
	})
	rt.Eng.RunUntil(rt.Eng.Now().Add(1 << 42))
	if searchRes == nil || searchRes.Result.Err != nil {
		t.Fatalf("search job: %+v", searchRes)
	}
	if sortRes == nil || sortRes.Result.Err != nil {
		t.Fatalf("sort job: %+v", sortRes)
	}

	matches, err := workloads.ParseGrepOutput(rt.DFS, "/grep/out")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"req-a": 50_000, "req-b": 20_000, "req-c": 10_000}
	if len(matches) != len(want) {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Word != "req-a" {
		t.Fatalf("top match = %+v", matches[0])
	}
	for _, m := range matches {
		if want[m.Word] != m.Count {
			t.Fatalf("count[%s] = %d, want %d", m.Word, m.Count, want[m.Word])
		}
	}
	// Two distinct job keys recorded: the next chain invocation would skip
	// speculation for both stages.
	if _, ok := f.History.Winner("grep-search"); !ok {
		t.Error("grep-search not in history")
	}
	if _, ok := f.History.Winner("grep-sort"); !ok {
		t.Error("grep-sort not in history")
	}
	// The sort stage is far smaller than the search stage.
	if sortRes.Elapsed() >= searchRes.Elapsed() {
		t.Errorf("sort (%.2fs) not cheaper than search (%.2fs)", sortRes.Elapsed(), searchRes.Elapsed())
	}
}
