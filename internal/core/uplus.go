package core

import (
	"errors"
	"fmt"

	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/profiler"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// UPlusOptions toggle the U+ optimizations for the Figure 15 ablation. The
// zero value degenerates to the stock Uber behaviour (sequential, all
// spills); FullUPlus() is the paper's U+ mode.
type UPlusOptions struct {
	// ThreadsPerCore is n_c^m, the map threads multiplexed on each vcore;
	// maps per wave is n_u^m = n^c · n_c^m. Zero or negative means 0 →
	// sequential execution (stock Uber).
	ThreadsPerCore int

	// MemoryCache admits intermediate data into the in-heap cache (up to
	// the cost model's UberCacheBytes) instead of spilling to disk.
	MemoryCache bool
}

// FullUPlus returns the paper's complete U+ configuration.
func FullUPlus() UPlusOptions {
	return UPlusOptions{ThreadsPerCore: 1, MemoryCache: true}
}

// MapsPerWave returns n_u^m for an AM running on the given node.
func (o UPlusOptions) MapsPerWave(node *topology.Node) int {
	tpc := o.ThreadsPerCore
	if tpc <= 0 {
		return 1
	}
	return node.Cores.Total() * tpc
}

// UPlusAM is the improved Uber mode: all tasks still run inside the AM's
// single container, but map tasks execute concurrently (n_u^m per wave)
// and small intermediate outputs stay in memory, so the reduce reads them
// without touching the disk.
type UPlusAM struct {
	rt     *mapreduce.Runtime
	spec   *mapreduce.JobSpec
	app    *yarn.App
	amNode *topology.Node
	prof   *profiler.JobProfile
	opts   UPlusOptions

	splits    []*hdfs.Split
	next      int
	inFlight  int
	completed int
	outputs   []*mapreduce.MapOutput
	// reduceInputs is what the reduce partitions actually consume: the raw
	// outputs, or their per-node consolidation when the shuffle service is
	// attached.
	reduceInputs []*mapreduce.MapOutput
	cacheUsed    int64
	// admitted remembers how many cache bytes each split's running attempt
	// charged, so a crashed attempt refunds its budget before the retry.
	admitted       map[int]int64
	mapAttempts    map[int]int
	reduceAttempts map[int]int
	killed         bool
	cacheReleased  bool
	failed         error
	done           func(*profiler.JobProfile, error)

	// OnMapComplete, when set before Run, observes every finished map task.
	OnMapComplete func(*profiler.TaskProfile)
}

// NewUPlusAM prepares a U+ AM on the pooled AM's node.
func NewUPlusAM(rt *mapreduce.Runtime, spec *mapreduce.JobSpec, app *yarn.App, amNode *topology.Node, prof *profiler.JobProfile, opts UPlusOptions) (*UPlusAM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	splits, err := rt.Splits(spec.InputFiles)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("core: job %q has no input splits", spec.Name)
	}
	prof.NumMaps = len(splits)
	prof.NumReduces = spec.NumReduces
	prof.NumWorkers = len(rt.Cluster.Workers())
	prof.NumContainers = 1
	return &UPlusAM{
		rt: rt, spec: spec, app: app, amNode: amNode, prof: prof, opts: opts, splits: splits,
		mapAttempts: make(map[int]int), reduceAttempts: make(map[int]int),
		admitted: make(map[int]int64),
	}, nil
}

// Run starts the parallel map waves.
func (am *UPlusAM) Run(done func(*profiler.JobProfile, error)) {
	if done == nil {
		panic("core: UPlusAM.Run needs a completion callback")
	}
	am.done = done
	// Cold-submitted U+ owns its AM container through this app; losing it
	// loses the attempt. (A pooled U+ job's app owns no containers — the AM
	// container belongs to the pool's app, which notifies the framework.)
	am.app.OnContainerLost = func(*yarn.Container) { am.Abort(mapreduce.ErrAMLost) }
	am.app.Span = am.prof.Span
	am.prof.FirstTaskAt = am.rt.Eng.Now()
	am.pump()
}

// Kill abandons the job.
func (am *UPlusAM) Kill() {
	if am.killed {
		return
	}
	am.killed = true
	am.releaseCacheGauge()
	am.rt.RM.KillApp(am.app)
}

// Progress reports completed and total map counts.
func (am *UPlusAM) Progress() (completed, total int) {
	return am.completed, len(am.splits)
}

// CacheUsed reports how much intermediate data currently sits in the memory
// cache.
func (am *UPlusAM) CacheUsed() int64 { return am.cacheUsed }

// pump keeps up to n_u^m map tasks in flight.
func (am *UPlusAM) pump() {
	if am.killed {
		return
	}
	limit := am.opts.MapsPerWave(am.amNode)
	for am.inFlight < limit && am.next < len(am.splits) {
		s := am.splits[am.next]
		am.next++
		am.inFlight++
		am.runOne(s)
	}
}

// admitToCache decides whether a finished map's output fits the remaining
// cache budget; if so the budget is consumed.
func (am *UPlusAM) admitToCache(outBytes int64) bool {
	if !am.opts.MemoryCache {
		return false
	}
	if am.cacheUsed+outBytes > am.rt.Params.UberCacheBytes {
		return false
	}
	am.cacheUsed += outBytes
	am.rt.Reg.Add("uplus_cache_bytes", outBytes)
	return true
}

// releaseCacheGauge returns this AM's share of the cluster-wide
// uplus_cache_bytes gauge when the job ends (finished or killed): the
// in-heap outputs are freed with the JVM. CacheUsed itself is kept for
// post-run inspection; only the shared gauge is settled, exactly once.
func (am *UPlusAM) releaseCacheGauge() {
	if am.cacheReleased {
		return
	}
	am.cacheReleased = true
	am.rt.Reg.Add("uplus_cache_bytes", -am.cacheUsed)
}

func (am *UPlusAM) runOne(s *hdfs.Split) {
	opts := mapreduce.MapTaskOptions{
		SpillToDisk: true,
		KeepInMemory: func(b int64) bool {
			if !am.admitToCache(b) {
				return false
			}
			am.admitted[s.Index] = b
			return true
		},
		Attempt: am.mapAttempts[s.Index],
		Parent:  am.prof.Span,
	}
	am.rt.RunMapTask(am.spec, s, am.amNode, opts, func(mo *mapreduce.MapOutput, tp *profiler.TaskProfile, err error) {
		if am.killed {
			return
		}
		am.inFlight--
		var ae *mapreduce.AttemptError
		if errors.As(err, &ae) {
			// Retry the crashed map thread in place, within the wave limit.
			// Any cache budget the dead attempt admitted is refunded first —
			// its in-heap output died with it, and without the refund every
			// crashed-and-retried map would leak budget until U+ degrades to
			// spilling everything.
			if b, ok := am.admitted[s.Index]; ok {
				am.cacheUsed -= b
				am.rt.Reg.Add("uplus_cache_bytes", -b)
				delete(am.admitted, s.Index)
			}
			am.prof.Add(tp)
			am.mapAttempts[s.Index]++
			if am.mapAttempts[s.Index] >= am.rt.Params.MaxTaskAttempts {
				am.fail(fmt.Errorf("core: map %d failed %d attempts: %w",
					s.Index, am.mapAttempts[s.Index], err))
				return
			}
			am.inFlight++
			am.runOne(s)
			return
		}
		if err != nil {
			am.fail(err)
			return
		}
		am.prof.Add(tp)
		am.outputs = append(am.outputs, mo)
		if am.rt.Shuffle != nil {
			am.rt.Shuffle.Register(am.spec, mo)
		}
		am.completed++
		if am.OnMapComplete != nil {
			am.OnMapComplete(tp)
		}
		if am.killed {
			// The observer may have killed this mode.
			return
		}
		if am.completed == len(am.splits) {
			am.prof.MapsDoneAt = am.rt.Eng.Now()
			am.runReduce()
			return
		}
		am.pump()
	})
}

// runReduce reads back any spilled outputs (in-memory ones are free) and
// runs the reduce partitions in the AM container.
func (am *UPlusAM) runReduce() {
	am.reduceInputs = am.outputs
	if am.rt.Shuffle != nil {
		am.runReduceService()
		return
	}
	remaining := len(am.outputs) * am.spec.NumReduces
	if remaining == 0 {
		am.runReducePartitions(0)
		return
	}
	for _, mo := range am.outputs {
		for p := 0; p < am.spec.NumReduces; p++ {
			am.rt.ShuffleFetch(am.prof.Span, mo, p, am.amNode, func(err error) {
				if am.killed {
					return
				}
				if err != nil {
					// U+ outputs live on the AM's own node; losing them means
					// the AM node itself died, which kills the attempt.
					am.Abort(err)
					return
				}
				remaining--
				if remaining == 0 {
					am.runReducePartitions(0)
				}
			})
		}
	}
}

// runReduceService is the shuffle-service read-back: every U+ output lives
// on the AM's node, so its service merges (and re-combines) them into one
// consolidated output and the reduce issues a single local fetch per
// partition — cached members come straight from the heap, spilled ones off
// the disk. A fetch error means the AM node itself died, which kills the
// attempt (per-map fallback is meaningless when the fallback data died with
// the same node).
func (am *UPlusAM) runReduceService() {
	groups := mapreduce.GroupOutputsByNode(am.outputs)
	if len(groups) == 0 {
		am.runReducePartitions(0)
		return
	}
	inputs := make([]*mapreduce.MapOutput, 0, len(groups))
	remaining := len(groups) * am.spec.NumReduces
	for _, group := range groups {
		cons := am.rt.Shuffle.Consolidate(am.spec, group)
		inputs = append(inputs, cons.Out)
		for p := 0; p < am.spec.NumReduces; p++ {
			am.rt.Shuffle.Fetch(am.prof.Span, am.spec, cons, p, am.amNode, func(err error) {
				if am.killed {
					return
				}
				if err != nil {
					am.Abort(err)
					return
				}
				remaining--
				if remaining == 0 {
					am.reduceInputs = inputs
					am.runReducePartitions(0)
				}
			})
		}
	}
}

// Abort ends the job with err (the AM's node died; the submission framework
// decides whether to relaunch).
func (am *UPlusAM) Abort(err error) {
	if am.killed {
		return
	}
	am.fail(err)
}

func (am *UPlusAM) runReducePartitions(p int) {
	if am.killed {
		return
	}
	if p == am.spec.NumReduces {
		am.finish(nil)
		return
	}
	ropts := mapreduce.ReduceOptions{Attempt: am.reduceAttempts[p], Parent: am.prof.Span}
	am.rt.RunReduceTask(am.spec, p, ropts, am.reduceInputs, am.amNode, func(tp *profiler.TaskProfile, err error) {
		if am.killed {
			return
		}
		var ae *mapreduce.AttemptError
		if errors.As(err, &ae) {
			am.prof.Add(tp)
			am.reduceAttempts[p]++
			if am.reduceAttempts[p] >= am.rt.Params.MaxTaskAttempts {
				am.fail(fmt.Errorf("core: reduce %d failed %d attempts: %w",
					p, am.reduceAttempts[p], err))
				return
			}
			am.runReducePartitions(p)
			return
		}
		if err != nil {
			am.fail(err)
			return
		}
		am.prof.Add(tp)
		am.runReducePartitions(p + 1)
	})
}

func (am *UPlusAM) fail(err error) {
	if am.failed == nil {
		am.failed = err
	}
	am.finish(err)
}

func (am *UPlusAM) finish(err error) {
	if am.killed {
		return
	}
	am.killed = true
	am.releaseCacheGauge()
	if am.rt.Shuffle != nil {
		for _, mo := range am.outputs {
			am.rt.Shuffle.Forget(am.spec, mo)
		}
	}
	am.prof.DoneAt = am.rt.Eng.Now()
	am.rt.RM.FinishApp(am.app)
	am.done(am.prof, err)
}
