package core

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

const horizon = sim.Time(1 << 42)

// profilerSummary builds a plausible measured summary for estimator tests.
func profilerSummary() profiler.Summary {
	return profiler.Summary{
		Job: "wc", Mode: "dplus", MapCount: 4,
		AvgMapCPU: 1500 * time.Millisecond, AvgIn: 10 << 20, AvgOut: 12 << 20,
	}
}

// stageInput writes n deterministic text files and returns names + all data.
func stageInput(t testing.TB, rt *mapreduce.Runtime, n, size int) ([]string, []byte) {
	t.Helper()
	var names []string
	var all []byte
	line := []byte("lorem ipsum dolor sit amet consectetur adipiscing elit sed do\n")
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		for buf.Len() < size {
			buf.Write(line)
		}
		name := "/in/part-" + strconv.Itoa(i)
		if _, err := rt.DFS.PutInstant(name, buf.Bytes(), rt.Cluster.Workers()[i%len(rt.Cluster.Workers())]); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		all = append(all, buf.Bytes()...)
	}
	return names, all
}

func testWCSpec(inputs []string, output string) *mapreduce.JobSpec {
	return &mapreduce.JobSpec{
		Name:       "wc-core",
		JobKey:     "wordcount",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: 1,
		Format:     mapreduce.LineFormat{},
		Map: func(_, line []byte, emit mapreduce.Emit) {
			for _, w := range bytes.Fields(line) {
				emit(w, []byte("1"))
			}
		},
		Reduce: func(key []byte, values [][]byte, emit mapreduce.Emit) {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			emit(key, []byte(strconv.Itoa(total)))
		},
		MapRate:    6e6,
		ReduceRate: 12e6,
	}
}

// startFramework builds a framework over rt with the given pool size and
// waits for the pool to come up.
func startFramework(t testing.TB, rt *mapreduce.Runtime, poolSize int) *Framework {
	t.Helper()
	f := NewFramework(rt, poolSize, FullUPlus())
	ready := false
	rt.Eng.After(0, func() { f.Start(func() { ready = true }) })
	rt.Eng.RunUntil(sim.Time(60 * time.Second))
	if !ready {
		t.Fatal("framework pool never came up")
	}
	return f
}

func verifyWC(t testing.TB, rt *mapreduce.Runtime, output string, input []byte) {
	t.Helper()
	want := map[string]int{}
	for _, w := range bytes.Fields(input) {
		want[string(w)]++
	}
	data, err := rt.DFS.Contents(mapreduce.PartFileName(output, 0))
	if err != nil {
		t.Fatalf("output missing: %v", err)
	}
	got := map[string]int{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, '\t')
		n, _ := strconv.Atoi(string(line[i+1:]))
		got[string(line[:i])] = n
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d words, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestPoolStartAcquireRelease(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	if f.Pool.Idle() != 3 {
		t.Fatalf("idle = %d, want 3", f.Pool.Idle())
	}
	var got []*PooledAM
	for i := 0; i < 4; i++ { // one more than the pool holds
		f.Pool.Acquire(func(am *PooledAM) { got = append(got, am) })
	}
	rt.Eng.RunUntil(rt.Eng.Now().Add(time.Second))
	if len(got) != 3 {
		t.Fatalf("acquired %d, want 3 (fourth waits)", len(got))
	}
	f.Pool.Release(got[0])
	rt.Eng.RunUntil(rt.Eng.Now().Add(time.Second))
	if len(got) != 4 {
		t.Fatalf("waiter not served after release: %d", len(got))
	}
	if f.Pool.Dispatches != 4 {
		t.Fatalf("Dispatches = %d", f.Pool.Dispatches)
	}
}

func TestPoolOccupiesClusterResources(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	startFramework(t, rt, 3)
	used := rt.RM.TotalUsed()
	if used.VCores != 3 {
		t.Fatalf("pool holds %v, want 3 vcores reserved", used)
	}
}

func TestPoolReleaseIdlePanics(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Pool.Release(f.Pool.ams[0])
}

func TestSubmitDPlusEndToEnd(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 4, 1<<20)
	var res *mapreduce.Result
	rt.Eng.After(0, func() {
		f.SubmitDPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) {
			res = r
			rt.RM.Stop()
		})
	})
	rt.Eng.RunUntil(horizon)
	if res == nil || res.Err != nil {
		t.Fatalf("job failed: %+v", res)
	}
	verifyWC(t, rt, "/out", all)
	if res.Mode != "dplus" {
		t.Fatalf("mode = %q", res.Mode)
	}
	if f.Pool.Idle() != 3 {
		t.Fatalf("AM not returned to pool: idle = %d", f.Pool.Idle())
	}
}

func TestSubmitUPlusEndToEnd(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	f := startFramework(t, rt, 3)
	names, all := stageInput(t, rt, 4, 1<<20)
	var res *mapreduce.Result
	rt.Eng.After(0, func() {
		f.SubmitUPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) {
			res = r
			rt.RM.Stop()
		})
	})
	rt.Eng.RunUntil(horizon)
	if res == nil || res.Err != nil {
		t.Fatalf("job failed: %+v", res)
	}
	verifyWC(t, rt, "/out", all)
	// All intermediate data fits the cache: no map spilled.
	for _, tp := range res.Profile.Tasks {
		if tp.Kind == profiler.MapTask && tp.Spills != 0 {
			t.Errorf("map %d spilled despite the memory cache", tp.Index)
		}
	}
}

func TestDPlusFasterThanStockHadoop(t *testing.T) {
	run := func(sched yarn.Scheduler, framework bool) float64 {
		rt := newRuntime(t, topology.A3, 4, sched)
		names, _ := stageInput(t, rt, 8, 1<<20)
		spec := testWCSpec(names, "/out")
		var elapsed float64
		if framework {
			f := startFramework(t, rt, 3)
			rt.Eng.After(0, func() {
				f.SubmitDPlus(spec, func(r *mapreduce.Result) {
					elapsed = r.Elapsed()
					rt.RM.Stop()
				})
			})
		} else {
			rt.Eng.After(0, func() {
				mapreduce.Submit(rt, spec, mapreduce.ModeDistributed, func(r *mapreduce.Result) {
					elapsed = r.Elapsed()
					rt.RM.Stop()
				})
			})
		}
		rt.Eng.RunUntil(horizon)
		return elapsed
	}
	stock := run(yarn.NewStockScheduler(), false)
	dplus := run(NewDPlusScheduler(FullDPlus()), true)
	if stock == 0 || dplus == 0 {
		t.Fatal("a run did not complete")
	}
	if dplus >= stock {
		t.Fatalf("D+ (%.2fs) not faster than stock Hadoop (%.2fs)", dplus, stock)
	}
	improvement := (stock - dplus) / stock * 100
	t.Logf("stock=%.2fs dplus=%.2fs improvement=%.1f%%", stock, dplus, improvement)
	if improvement < 10 || improvement > 90 {
		t.Errorf("improvement %.1f%% outside the paper's 11–88%% envelope", improvement)
	}
}

func TestUPlusFasterThanStockUber(t *testing.T) {
	run := func(uplus bool) float64 {
		rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
		names, _ := stageInput(t, rt, 4, 1<<20)
		spec := testWCSpec(names, "/out")
		var elapsed float64
		if uplus {
			f := startFramework(t, rt, 3)
			rt.Eng.After(0, func() {
				f.SubmitUPlus(spec, func(r *mapreduce.Result) {
					elapsed = r.Elapsed()
					rt.RM.Stop()
				})
			})
		} else {
			rt.Eng.After(0, func() {
				mapreduce.Submit(rt, spec, mapreduce.ModeUber, func(r *mapreduce.Result) {
					elapsed = r.Elapsed()
					rt.RM.Stop()
				})
			})
		}
		rt.Eng.RunUntil(horizon)
		return elapsed
	}
	stock := run(false)
	uplus := run(true)
	if uplus >= stock {
		t.Fatalf("U+ (%.2fs) not faster than stock Uber (%.2fs)", uplus, stock)
	}
	t.Logf("uber=%.2fs uplus=%.2fs improvement=%.1f%%", stock, uplus, (stock-uplus)/stock*100)
}

func TestUPlusCacheOverflowSpills(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	rt.Params.UberCacheBytes = 64 << 10 // tiny budget: most maps must spill
	f := NewFramework(rt, 2, FullUPlus())
	ready := false
	rt.Eng.After(0, func() { f.Start(func() { ready = true }) })
	rt.Eng.RunUntil(sim.Time(60 * time.Second))
	if !ready {
		t.Fatal("pool not ready")
	}
	names, all := stageInput(t, rt, 4, 256<<10)
	var res *mapreduce.Result
	rt.Eng.After(0, func() {
		f.SubmitUPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) {
			res = r
			rt.RM.Stop()
		})
	})
	rt.Eng.RunUntil(horizon)
	if res == nil || res.Err != nil {
		t.Fatalf("job failed: %+v", res)
	}
	verifyWC(t, rt, "/out", all)
	spilled := 0
	for _, tp := range res.Profile.Tasks {
		if tp.Kind == profiler.MapTask && tp.Spills > 0 {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("no map spilled despite the tiny cache budget")
	}
}

func TestSubmitUPlusColdSlowerThanPooled(t *testing.T) {
	runCold := func() float64 {
		rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
		names, _ := stageInput(t, rt, 2, 512<<10)
		var elapsed float64
		rt.Eng.After(0, func() {
			SubmitUPlusCold(rt, testWCSpec(names, "/out"), FullUPlus(), func(r *mapreduce.Result) {
				elapsed = r.Elapsed()
				rt.RM.Stop()
			})
		})
		rt.Eng.RunUntil(horizon)
		return elapsed
	}
	runPooled := func() float64 {
		rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
		f := startFramework(t, rt, 2)
		names, _ := stageInput(t, rt, 2, 512<<10)
		var elapsed float64
		rt.Eng.After(0, func() {
			f.SubmitUPlus(testWCSpec(names, "/out"), func(r *mapreduce.Result) {
				elapsed = r.Elapsed()
				rt.RM.Stop()
			})
		})
		rt.Eng.RunUntil(horizon)
		return elapsed
	}
	cold, pooled := runCold(), runPooled()
	if pooled >= cold {
		t.Fatalf("pooled U+ (%.2fs) not faster than cold U+ (%.2fs)", pooled, cold)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	rt := newRuntime(t, topology.A3, 4, NewDPlusScheduler(FullDPlus()))
	h := NewHistory()
	h.Record("wordcount", ModeDPlus, 20*time.Second, profilerSummary())
	h.Record("pi", ModeUPlus, 9*time.Second, profilerSummary())
	h.Record("wordcount", ModeUPlus, 18*time.Second, profilerSummary()) // update
	if err := h.Save(rt.DFS); err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory()
	if err := h2.Load(rt.DFS); err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 2 {
		t.Fatalf("loaded %d entries", h2.Len())
	}
	w, ok := h2.Winner("wordcount")
	if !ok || w != ModeUPlus {
		t.Fatalf("winner = %v/%v", w, ok)
	}
	e, _ := h2.Entry("wordcount")
	if e.Runs != 2 {
		t.Fatalf("runs = %d", e.Runs)
	}
	h2.Forget("pi")
	if _, ok := h2.Winner("pi"); ok {
		t.Fatal("forgotten entry still present")
	}
	// Save twice (overwrite path).
	if err := h2.Save(rt.DFS); err != nil {
		t.Fatal(err)
	}
	// Loading from an empty DFS is fine.
	h3 := NewHistory()
	rt2 := newRuntime(t, topology.A3, 2, NewDPlusScheduler(FullDPlus()))
	if err := h3.Load(rt2.DFS); err != nil || h3.Len() != 0 {
		t.Fatalf("empty load: %v / %d", err, h3.Len())
	}
}

func TestUPlusOptionsMapsPerWave(t *testing.T) {
	eng := sim.NewEngine()
	node := topology.NewNode(eng, 1, "rack-0", topology.A3)
	if got := FullUPlus().MapsPerWave(node); got != 4 {
		t.Fatalf("MapsPerWave = %d, want 4 (A3 cores × 1)", got)
	}
	if got := (UPlusOptions{ThreadsPerCore: 2}).MapsPerWave(node); got != 8 {
		t.Fatalf("MapsPerWave = %d, want 8", got)
	}
	if got := (UPlusOptions{}).MapsPerWave(node); got != 1 {
		t.Fatalf("sequential MapsPerWave = %d, want 1", got)
	}
}
