package core

import (
	"fmt"

	"mrapid/internal/mapreduce"
	"mrapid/internal/profiler"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// AM is the runnable ApplicationMaster interface every execution mode's AM
// satisfies; the shared launcher drives attempts through it.
type AM interface {
	// Run executes the job and reports the finished profile (or error).
	Run(done func(*profiler.JobProfile, error))
	// Kill abandons the attempt (speculative losers, lost-AM cleanup).
	Kill()
}

// Executor abstracts one execution mode behind the framework's shared
// launcher: how to build the mode's AM on a pooled node, and how to submit
// the job through the mode's stock path when no pooled AM is available.
// D+, U+, and the two stock modes are all implementations, so the
// speculative race, AM-loss relaunch, and pool-exhaustion degradation logic
// is written exactly once.
type Executor interface {
	// Mode identifies the executor in results, spans, and history records.
	Mode() ModeKind

	// UsesPool reports whether the mode dispatches to a reserved pooled AM
	// (the MRapid modes) or always cold-submits (the stock modes).
	UsesPool() bool

	// NewAM constructs the mode's ApplicationMaster on the pooled AM's node
	// and finishes populating the profile (container counts etc.). onMap,
	// when non-nil, observes map completions (the decision maker's sample).
	// Only called when UsesPool() is true.
	NewAM(f *Framework, spec *mapreduce.JobSpec, app *yarn.App, node *topology.Node,
		prof *profiler.JobProfile, onMap func(*profiler.TaskProfile)) (AM, error)

	// SubmitStock runs the job through the mode's cold submission path:
	// the only path for stock modes, the degraded path for pooled modes
	// when the AM pool is exhausted.
	SubmitStock(f *Framework, spec *mapreduce.JobSpec, done func(*mapreduce.Result))
}

// dplusExecutor runs jobs in MRapid's D+ distributed mode.
type dplusExecutor struct{}

func (dplusExecutor) Mode() ModeKind { return ModeDPlus }
func (dplusExecutor) UsesPool() bool { return true }

func (dplusExecutor) NewAM(f *Framework, spec *mapreduce.JobSpec, app *yarn.App, node *topology.Node,
	prof *profiler.JobProfile, onMap func(*profiler.TaskProfile)) (AM, error) {
	am, err := mapreduce.NewDistributedAM(f.RT, spec, app, node, prof)
	if err != nil {
		return nil, err
	}
	prof.NumContainers = mapreduce.ClusterContainerSlots(f.RT)
	am.OnMapComplete = onMap
	return am, nil
}

func (dplusExecutor) SubmitStock(f *Framework, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	mapreduce.Submit(f.RT, spec, mapreduce.ModeDistributed, done)
}

// uplusExecutor runs jobs in MRapid's U+ uber mode.
type uplusExecutor struct{}

func (uplusExecutor) Mode() ModeKind { return ModeUPlus }
func (uplusExecutor) UsesPool() bool { return true }

func (uplusExecutor) NewAM(f *Framework, spec *mapreduce.JobSpec, app *yarn.App, node *topology.Node,
	prof *profiler.JobProfile, onMap func(*profiler.TaskProfile)) (AM, error) {
	am, err := NewUPlusAM(f.RT, spec, app, node, prof, f.UOpts)
	if err != nil {
		return nil, err
	}
	am.OnMapComplete = onMap
	return am, nil
}

func (uplusExecutor) SubmitStock(f *Framework, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	SubmitUPlusCold(f.RT, spec, f.UOpts, done)
}

// stockExecutor runs jobs through the classic Hadoop submission flow in
// either distributed or uber mode; it never touches the AM pool.
type stockExecutor struct {
	kind ModeKind
	mode mapreduce.Mode
}

func (e stockExecutor) Mode() ModeKind { return e.kind }
func (stockExecutor) UsesPool() bool   { return false }

func (stockExecutor) NewAM(*Framework, *mapreduce.JobSpec, *yarn.App, *topology.Node,
	*profiler.JobProfile, func(*profiler.TaskProfile)) (AM, error) {
	panic("core: stock executor has no pooled AM")
}

func (e stockExecutor) SubmitStock(f *Framework, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	mapreduce.Submit(f.RT, spec, e.mode, done)
}

// ExecutorFor returns the executor implementing a single-mode ModeKind.
func ExecutorFor(mode ModeKind) (Executor, error) {
	switch mode {
	case ModeDPlus:
		return dplusExecutor{}, nil
	case ModeUPlus:
		return uplusExecutor{}, nil
	case ModeHadoop:
		return stockExecutor{kind: ModeHadoop, mode: mapreduce.ModeDistributed}, nil
	case ModeUber:
		return stockExecutor{kind: ModeUber, mode: mapreduce.ModeUber}, nil
	}
	return nil, fmt.Errorf("core: no executor for mode %q", mode)
}

// attempt is the state of one pooled launch: which AM serves it, whether
// that AM went back to the pool, and whether the client already heard the
// outcome. It replaces the nested released/finished closure flags the two
// per-mode launch bodies used to duplicate.
type attempt struct {
	f        *Framework
	exec     Executor
	spec     *mapreduce.JobSpec
	prof     *profiler.JobProfile
	pam      *PooledAM
	done     func(*mapreduce.Result)
	released bool
	finished bool
}

// release returns the serving AM to the pool exactly once.
func (a *attempt) release() {
	if !a.released {
		a.released = true
		a.f.Pool.Release(a.pam)
	}
}

// finish reports the outcome exactly once: the AM goes back to the pool and
// the client is notified (direct RPC, or poll-aligned under the ablation).
func (a *attempt) finish(res *mapreduce.Result) {
	if a.finished {
		return
	}
	a.finished = true
	a.release()
	a.f.notify(a.prof, res, a.done)
}

// fail stamps the attempt's end and finishes with the error.
func (a *attempt) fail(err error) {
	a.prof.DoneAt = a.f.RT.Eng.Now()
	a.finish(&mapreduce.Result{Spec: a.spec, Mode: string(a.exec.Mode()), Profile: a.prof, Err: err})
}

// Submit runs a job through the framework in the executor's mode: MRapid
// modes dispatch to a pooled AM (with AM-loss relaunch and pool-exhaustion
// degradation), stock modes cold-submit. This is the mode-agnostic entry
// the JobServer routes admitted jobs through.
//
// With a memoization cache attached, the cache is consulted first: a hit
// serves the cached output instead of executing — no upload, no AM, no
// containers — and a miss commits the successful fresh result on the way
// out. SubmitSpeculative does its own lookup before its three-way branch,
// so its internal submissions route through submitNoMemo.
func (f *Framework) Submit(exec Executor, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	if done == nil {
		panic("core: Submit needs a completion callback")
	}
	serve, commit := f.memoLookup(spec)
	if serve != nil {
		serve(done)
		return
	}
	if commit != nil {
		inner := done
		done = func(res *mapreduce.Result) {
			commit(res)
			inner(res)
		}
	}
	f.submitNoMemo(exec, spec, done)
}

// submitNoMemo is Submit's execution body, past the memoization hook.
func (f *Framework) submitNoMemo(exec Executor, spec *mapreduce.JobSpec, done func(*mapreduce.Result)) {
	if !exec.UsesPool() {
		exec.SubmitStock(f, spec, done)
		return
	}
	root := f.RT.Trace.StartSpan(0, "job", spec.Name, "", trace.A("mode", string(exec.Mode())))
	finish := func(res *mapreduce.Result) {
		f.RT.Trace.EndSpan(root)
		done(res)
	}
	uploadStart := f.RT.Eng.Now()
	f.RT.UploadArtifacts(spec, func(err error) {
		f.RT.Trace.SpanSince(root, "client", "upload artifacts", "submit", uploadStart)
		if err != nil {
			finish(&mapreduce.Result{Spec: spec, Mode: string(exec.Mode()), Err: err})
			return
		}
		f.run(exec, spec, 1, root, finish)
	})
}

// run is one pooled attempt plus its recovery policy: degrade to the stock
// path when the pool has no live AM, relaunch (fresh pooled AM, partial
// output removed) when the serving AM dies, up to Params.MaxAMAttempts.
func (f *Framework) run(exec Executor, spec *mapreduce.JobSpec, attemptNo int, parent trace.SpanID, done func(*mapreduce.Result)) {
	if f.Pool.Size() == 0 || f.Pool.Exhausted() {
		f.fallBackToStock(spec, func() {
			exec.SubmitStock(f, spec, done)
		})
		return
	}
	f.launch(exec, spec, parent, nil, func(res *mapreduce.Result) {
		if f.retryLostAM(spec, attemptNo, res, func() { f.run(exec, spec, attemptNo+1, parent, done) }) {
			return
		}
		done(res)
	})
}

// launch dispatches an uploaded job to a pooled AM in the executor's mode.
// onMap, when non-nil, observes map completions (for the decision maker).
// parent is the trace span the attempt nests under (0 for an untraced run).
func (f *Framework) launch(exec Executor, spec *mapreduce.JobSpec, parent trace.SpanID,
	onMap func(*profiler.TaskProfile), done func(*mapreduce.Result)) *handle {
	h := &handle{}
	att := &attempt{
		f: f, exec: exec, spec: spec, done: done,
		prof: &profiler.JobProfile{
			Job:         spec.Key(),
			Mode:        string(exec.Mode()),
			SubmittedAt: f.RT.Eng.Now(),
			AMPoolHit:   true,
		},
	}
	// The attempt span covers exactly [SubmittedAt, DoneAt]; f.notify
	// closes it.
	att.prof.Span = f.RT.Trace.StartSpan(parent, "job", spec.Name+" ("+string(exec.Mode())+")", "")
	dispatchStart := f.RT.Eng.Now()
	f.Pool.Acquire(func(pam *PooledAM) {
		// The pooled AM only needs the job's artifacts; its JVM and runtime
		// are already warm.
		att.pam = pam
		// If the AM's node dies at any point while serving this job, the
		// attempt is gone: kill whatever work the job app still has out on
		// other nodes and report the loss (the submit wrapper may relaunch).
		pam.onLost = func() {
			h.Kill()
			att.fail(mapreduce.ErrAMLost)
		}
		f.RT.Localize(spec, pam.Node, func(err error) {
			if att.finished {
				return
			}
			if err != nil {
				att.fail(err)
				return
			}
			att.prof.AMReadyAt = f.RT.Eng.Now()
			att.prof.AMStartup = att.prof.AMReadyAt.Sub(att.prof.SubmittedAt)
			// A pool hit pays only proxy dispatch + localization, never an
			// AM allocation or JVM start — the paper's central saving.
			f.RT.Trace.SpanSince(att.prof.Span, "proxy", "am-dispatch", "am", dispatchStart,
				trace.A("pool_hit", "true"), trace.A("am_node", pam.Node.Name))
			app := f.RT.RM.NewAppInQueue(spec.Name+"@"+string(exec.Mode()), spec.Queue)
			am, err := exec.NewAM(f, spec, app, pam.Node, att.prof, onMap)
			if err != nil {
				att.fail(err)
				return
			}
			h.attach(func() {
				am.Kill()
				att.release()
				// A speculative loser's span is closed at the kill instant.
				f.RT.Trace.EndSpan(att.prof.Span, trace.A("killed", "true"))
			})
			if h.killed {
				return
			}
			am.Run(func(p *profiler.JobProfile, err error) {
				att.finish(&mapreduce.Result{Spec: spec, Mode: string(exec.Mode()), Profile: p, Err: err})
			})
		})
	})
	return h
}
