package hdfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func testCluster(t *testing.T, workers int) (*sim.Engine, *topology.Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: workers, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestPutInstantAndContents(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 1)
	data := []byte("hello mapreduce world")
	if _, err := d.PutInstant("/in/a.txt", data, nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.Contents("/in/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Contents = %q, want %q", got, data)
	}
	if !d.Exists("/in/a.txt") || d.Exists("/in/b.txt") {
		t.Fatal("Exists wrong")
	}
}

func TestPutInstantDuplicateFails(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 1)
	if _, err := d.PutInstant("/x", []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutInstant("/x", []byte("b"), nil); err == nil {
		t.Fatal("duplicate PutInstant did not fail")
	}
}

func TestDeleteAndList(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 1)
	d.PutInstant("/b", []byte("b"), nil)
	d.PutInstant("/a", []byte("a"), nil)
	if got := d.List(); len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("List = %v", got)
	}
	if err := d.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("/a"); err == nil {
		t.Fatal("double delete did not fail")
	}
	if got := d.List(); len(got) != 1 || got[0] != "/b" {
		t.Fatalf("List after delete = %v", got)
	}
}

func TestBlockSplitting(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1) // 10-byte blocks
	data := make([]byte, 35)
	for i := range data {
		data[i] = byte(i)
	}
	f, err := d.PutInstant("/big", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	if f.Size() != 35 {
		t.Fatalf("size = %d", f.Size())
	}
	wantSizes := []int64{10, 10, 10, 5}
	for i, b := range f.Blocks {
		if b.Size() != wantSizes[i] {
			t.Errorf("block %d size = %d, want %d", i, b.Size(), wantSizes[i])
		}
		if b.Offset != int64(i*10) {
			t.Errorf("block %d offset = %d", i, b.Offset)
		}
	}
	got, _ := d.Contents("/big")
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block content mismatch")
	}
}

func TestPlacementPolicy(t *testing.T) {
	eng, c := testCluster(t, 6)
	d := New(eng, c, 128<<20, 3, 42)
	writer := c.Workers()[0]
	f, _ := d.PutInstant("/p", make([]byte, 100), writer)
	b := f.Blocks[0]
	if len(b.Replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(b.Replicas))
	}
	if b.Replicas[0] != writer {
		t.Errorf("first replica should be the writer, got %v", b.Replicas[0])
	}
	if b.Replicas[1].Rack == writer.Rack {
		t.Errorf("second replica in writer's rack %s", b.Replicas[1].Rack)
	}
	if b.Replicas[2].Rack != b.Replicas[1].Rack {
		t.Errorf("third replica should share the second's rack: %s vs %s",
			b.Replicas[2].Rack, b.Replicas[1].Rack)
	}
	if b.Replicas[2] == b.Replicas[1] {
		t.Error("third replica duplicates the second")
	}
}

// Property: replicas are always distinct nodes and number min(replication,
// reachable workers).
func TestQuickPlacementDistinct(t *testing.T) {
	f := func(seed int64, workers8 uint8) bool {
		workers := 2 + int(workers8%9) // 2..10
		eng := sim.NewEngine()
		c, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A2, Workers: workers, Racks: 2})
		if err != nil {
			return false
		}
		d := New(eng, c, 128<<20, 3, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			writer := c.Workers()[rng.Intn(workers)]
			reps := d.place(writer)
			seen := map[*topology.Node]bool{}
			for _, r := range reps {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
			want := 3
			if workers < 3 {
				want = workers
			}
			if len(reps) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChargesTime(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 1)
	writer := c.Workers()[0]
	data := make([]byte, 60<<20) // 60 MB: ~1s+ of disk time on A3
	var doneAt sim.Time
	d.Write("/out", data, writer, func(f *File, err error) {
		if err != nil {
			t.Errorf("write failed: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("write completion never fired")
	}
	// At least the disk-write time on one replica: 60MB / 55MB/s ≈ 1.09s.
	if doneAt.Seconds() < 1.0 {
		t.Errorf("write completed at %v, expected ≥ 1s of simulated cost", doneAt)
	}
	if d.BytesWritten != 60<<20 {
		t.Errorf("BytesWritten = %d", d.BytesWritten)
	}
}

func TestWriteDuplicateReportsError(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 1)
	d.PutInstant("/dup", []byte("x"), nil)
	var gotErr error
	called := false
	d.Write("/dup", []byte("y"), c.Workers()[0], func(_ *File, err error) {
		called = true
		gotErr = err
	})
	eng.Run()
	if !called || gotErr == nil {
		t.Fatal("duplicate Write did not report an error")
	}
}

func TestReadLocalVsRemoteCost(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 7)
	data := make([]byte, 30<<20)
	local := c.Workers()[0]
	f, _ := d.PutInstant("/r", data, local)

	// Find a node with no replica to act as the remote reader.
	var remote *topology.Node
	for _, n := range c.Workers() {
		if !f.Blocks[0].HostedOn(n) {
			remote = n
			break
		}
	}
	if remote == nil {
		t.Skip("all nodes host a replica (cluster too small)")
	}

	readAt := func(reader *topology.Node) float64 {
		e2 := sim.NewEngine()
		c2, _ := topology.NewCluster(e2, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
		d2 := New(e2, c2, 128<<20, 3, 7)
		l2 := c2.Workers()[reader.ID-1]
		d2.PutInstant("/r", data, c2.Workers()[local.ID-1])
		var at sim.Time
		d2.ReadAll("/r", l2, func(b []byte, err error) {
			if err != nil || len(b) != len(data) {
				t.Errorf("read failed: %v len=%d", err, len(b))
			}
			at = e2.Now()
		})
		e2.Run()
		return at.Seconds()
	}
	localT := readAt(local)
	remoteT := readAt(remote)
	if remoteT <= localT {
		t.Errorf("remote read (%.3fs) should cost more than local read (%.3fs)", remoteT, localT)
	}
}

func TestReadLocalityCounters(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 7)
	local := c.Workers()[0]
	f, _ := d.PutInstant("/r", make([]byte, 1000), local)
	d.ReadAll("/r", local, func([]byte, error) {})
	eng.Run()
	if d.LocalReads != 1 || d.RackReads != 0 || d.RemoteReads != 0 {
		t.Errorf("locality counters = %d/%d/%d, want 1/0/0", d.LocalReads, d.RackReads, d.RemoteReads)
	}
	// A reader that holds no replica but shares a rack with one → rack read.
	var rackReader *topology.Node
	for _, n := range c.Workers() {
		if !f.Blocks[0].HostedOn(n) {
			for _, r := range f.Blocks[0].Replicas {
				if r.Rack == n.Rack {
					rackReader = n
				}
			}
		}
	}
	if rackReader != nil {
		d.ReadAll("/r", rackReader, func([]byte, error) {})
		eng.Run()
		if d.RackReads != 1 {
			t.Errorf("RackReads = %d, want 1", d.RackReads)
		}
	}
}

func TestReadRangeSlicing(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	d.PutInstant("/s", data, nil)
	var got []byte
	d.ReadRange("/s", 8, 10, c.Workers()[0], func(b []byte, err error) {
		if err != nil {
			t.Errorf("ReadRange: %v", err)
		}
		got = b
	})
	eng.Run()
	if string(got) != "ijklmnopqr" {
		t.Fatalf("ReadRange = %q, want %q", got, "ijklmnopqr")
	}
}

func TestReadErrors(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 1)
	d.PutInstant("/e", []byte("abc"), nil)
	var missErr, rangeErr error
	d.ReadAll("/missing", c.Workers()[0], func(_ []byte, err error) { missErr = err })
	d.ReadRange("/e", 2, 10, c.Workers()[0], func(_ []byte, err error) { rangeErr = err })
	eng.Run()
	if missErr == nil {
		t.Error("read of missing file did not error")
	}
	if rangeErr == nil {
		t.Error("out-of-range read did not error")
	}
}

// Property: ReadRange(o, l) always returns data[o:o+l] regardless of block
// size and reader placement.
func TestQuickReadRangeCorrect(t *testing.T) {
	f := func(seed int64, blockSize8 uint8, o16, l16 uint16) bool {
		blockSize := 1 + int64(blockSize8%64)
		eng := sim.NewEngine()
		c, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A2, Workers: 4, Racks: 2})
		d := New(eng, c, blockSize, 3, seed)
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 500)
		rng.Read(data)
		d.PutInstant("/q", data, nil)
		off := int64(o16) % 500
		l := int64(l16) % (500 - off)
		var got []byte
		var gotErr error
		d.ReadRange("/q", off, l, c.Workers()[rng.Intn(4)], func(b []byte, err error) {
			got, gotErr = b, err
		})
		eng.Run()
		return gotErr == nil && bytes.Equal(got, data[off:off+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplits(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	d.PutInstant("/a", make([]byte, 25), nil) // 3 blocks
	d.PutInstant("/b", make([]byte, 10), nil) // 1 block
	splits, err := d.Splits([]string{"/a", "/b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("splits = %d, want 4", len(splits))
	}
	for i, s := range splits {
		if s.Index != i {
			t.Errorf("split %d has index %d", i, s.Index)
		}
		if len(s.Hosts) != 3 {
			t.Errorf("split %d has %d hosts", i, len(s.Hosts))
		}
	}
	if splits[2].Length != 5 {
		t.Errorf("tail split length = %d, want 5", splits[2].Length)
	}
	if _, err := d.Splits([]string{"/missing"}); err == nil {
		t.Fatal("Splits on missing file did not error")
	}
}

func TestSplitLocalityHelpers(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 128<<20, 3, 3)
	local := c.Workers()[1]
	d.PutInstant("/h", make([]byte, 100), local)
	splits, _ := d.Splits([]string{"/h"})
	s := splits[0]
	if !s.HostedOn(local) {
		t.Error("split not hosted on its writer")
	}
	if !s.RackLocalTo(local) {
		t.Error("split not rack-local to its writer")
	}
	if s.String() == "" {
		t.Error("empty split String()")
	}
}

func TestEmptyFileHasOneEmptyBlockAndNoSplits(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	f, err := d.PutInstant("/empty", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatalf("size = %d", f.Size())
	}
	splits, err := d.Splits([]string{"/empty"})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Fatalf("splits for empty file = %d, want 0", len(splits))
	}
}
