package hdfs

import (
	"fmt"

	"mrapid/internal/topology"
)

// Split is one map task's input slice: a contiguous byte range of a file
// together with the nodes hosting it, the locality hints the scheduler
// consumes. Short jobs in the paper use one split per (sub-block-sized)
// file; larger files get one split per block.
type Split struct {
	File   string
	Index  int // ordinal within the job's split list
	Offset int64
	Length int64
	Hosts  []*topology.Node
}

func (s *Split) String() string {
	return fmt.Sprintf("split{%s[%d:%d)}", s.File, s.Offset, s.Offset+s.Length)
}

// HostedOn reports whether node n holds a replica of the split's data.
func (s *Split) HostedOn(n *topology.Node) bool {
	for _, h := range s.Hosts {
		if h == n {
			return true
		}
	}
	return false
}

// RackLocalTo reports whether any replica shares a rack with node n.
func (s *Split) RackLocalTo(n *topology.Node) bool {
	for _, h := range s.Hosts {
		if h.Rack == n.Rack {
			return true
		}
	}
	return false
}

// Splits computes the input splits for a list of files, one split per block,
// numbered in file order. It mirrors FileInputFormat.getSplits for inputs
// whose records never straddle block boundaries (our generators pad to
// record boundaries, so the simplification is lossless).
func (d *DFS) Splits(files []string) ([]*Split, error) {
	var splits []*Split
	for _, name := range files {
		f, err := d.Lookup(name)
		if err != nil {
			return nil, err
		}
		for _, b := range f.Blocks {
			if b.Size() == 0 {
				continue
			}
			splits = append(splits, &Split{
				File:   name,
				Index:  len(splits),
				Offset: b.Offset,
				Length: b.Size(),
				Hosts:  b.Replicas,
			})
		}
	}
	return splits, nil
}
