package hdfs

import (
	"bytes"
	"testing"
)

func TestRenameMovesMetadata(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	data := []byte("abcdefghijklmnop")
	d.PutInstant("/a", data, nil)
	if err := d.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("/a") {
		t.Fatal("old name still present")
	}
	got, err := d.Contents("/b")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("renamed contents = %q, %v", got, err)
	}
	f, _ := d.Lookup("/b")
	if f.Name != "/b" {
		t.Fatalf("file.Name = %q", f.Name)
	}
	for _, b := range f.Blocks {
		if b.File != "/b" {
			t.Fatalf("block.File = %q", b.File)
		}
	}
}

func TestRenameErrors(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	d.PutInstant("/a", []byte("x"), nil)
	d.PutInstant("/b", []byte("y"), nil)
	if err := d.Rename("/missing", "/c"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
	if err := d.Rename("/a", "/b"); err == nil {
		t.Fatal("rename onto existing file succeeded")
	}
}

func TestRenamePrefix(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	d.PutInstant("/out.__uplus/part-00000", []byte("a"), nil)
	d.PutInstant("/out.__uplus/part-00001", []byte("b"), nil)
	d.PutInstant("/other", []byte("c"), nil)
	n, err := d.RenamePrefix("/out.__uplus", "/out")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("moved %d files", n)
	}
	if !d.Exists("/out/part-00000") || !d.Exists("/out/part-00001") || !d.Exists("/other") {
		t.Fatalf("post-rename listing = %v", d.List())
	}
}

func TestRenamePrefixConflict(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	d.PutInstant("/tmp/x", []byte("a"), nil)
	d.PutInstant("/dst/x", []byte("b"), nil)
	if _, err := d.RenamePrefix("/tmp", "/dst"); err == nil {
		t.Fatal("conflicting prefix rename succeeded")
	}
}

func TestDeletePrefix(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 10, 3, 1)
	d.PutInstant("/tmp/a", []byte("a"), nil)
	d.PutInstant("/tmp/b", []byte("b"), nil)
	d.PutInstant("/keep", []byte("c"), nil)
	if n := d.DeletePrefix("/tmp"); n != 2 {
		t.Fatalf("deleted %d", n)
	}
	if got := d.List(); len(got) != 1 || got[0] != "/keep" {
		t.Fatalf("List = %v", got)
	}
	if n := d.DeletePrefix("/nothing"); n != 0 {
		t.Fatalf("deleted %d from empty prefix", n)
	}
}

func TestSingleBlockReadIsZeroCopy(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 1<<20, 3, 1)
	data := []byte("zero copy block")
	f, _ := d.PutInstant("/z", data, nil)
	var got []byte
	d.ReadAll("/z", c.Workers()[0], func(b []byte, err error) { got = b })
	eng.Run()
	if &got[0] != &f.Blocks[0].Data[0] {
		t.Fatal("single-block full read copied the data")
	}
}
