package hdfs

import (
	"bytes"
	"testing"
)

// TestGenerationBumpsOnMutation is the memoization cache's invalidation
// contract: FileDigest must change on every mutation (overwrite, append)
// and stay stable when nothing was written.
func TestGenerationBumpsOnMutation(t *testing.T) {
	eng, c := testCluster(t, 4)
	d := New(eng, c, 16, 3, 1) // tiny block size so multi-block paths run

	if _, err := d.PutInstant("/t/a", []byte("twelve bytes"), nil); err != nil {
		t.Fatal(err)
	}
	d0, err := d.FileDigest("/t/a")
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := d.FileDigest("/t/a"); again != d0 {
		t.Fatalf("FileDigest not stable without writes: %#x vs %#x", again, d0)
	}

	// Overwrite with identical bytes: the content is the same but the write
	// happened — the generation (and therefore the digest) must move, which
	// is what makes the digest a metadata-only check.
	if _, err := d.OverwriteInstant("/t/a", []byte("twelve bytes"), nil); err != nil {
		t.Fatal(err)
	}
	d1, err := d.FileDigest("/t/a")
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d0 {
		t.Fatal("overwrite did not change FileDigest")
	}

	// Append within the last block's slack: the block mutates in place, so
	// its generation must bump even though no new block is allocated.
	f, _ := d.Lookup("/t/a")
	lastGen := f.Blocks[len(f.Blocks)-1].Gen
	if _, err := d.Append("/t/a", []byte("+abc"), nil); err != nil {
		t.Fatal(err)
	}
	if got := f.Blocks[len(f.Blocks)-1].Gen; got <= lastGen {
		t.Fatalf("in-place append kept generation %d (was %d)", got, lastGen)
	}
	d2, err := d.FileDigest("/t/a")
	if err != nil {
		t.Fatal(err)
	}
	if d2 == d1 {
		t.Fatal("append did not change FileDigest")
	}
	want := []byte("twelve bytes+abc")
	if got, _ := d.Contents("/t/a"); !bytes.Equal(got, want) {
		t.Fatalf("Contents after append = %q, want %q", got, want)
	}

	// Append past the block boundary: the spill must land in fresh blocks
	// with correct offsets and contents.
	tail := bytes.Repeat([]byte("x"), 40)
	if _, err := d.Append("/t/a", tail, nil); err != nil {
		t.Fatal(err)
	}
	want = append(want, tail...)
	if got, _ := d.Contents("/t/a"); !bytes.Equal(got, want) {
		t.Fatalf("Contents after spilling append = %q, want %q", got, want)
	}
	var off int64
	for i, b := range f.Blocks {
		if b.Offset != off {
			t.Fatalf("block %d offset = %d, want %d", i, b.Offset, off)
		}
		off += b.Size()
	}
	if d3, _ := d.FileDigest("/t/a"); d3 == d2 {
		t.Fatal("spilling append did not change FileDigest")
	}

	// Distinct files never share a digest, even with identical bytes: block
	// IDs and generations are cluster-global.
	if _, err := d.PutInstant("/t/b", want, nil); err != nil {
		t.Fatal(err)
	}
	da, _ := d.FileDigest("/t/a")
	db, _ := d.FileDigest("/t/b")
	if da == db {
		t.Fatal("two files with identical bytes share a FileDigest")
	}

	if _, err := d.FileDigest("/t/missing"); err == nil {
		t.Fatal("FileDigest of a missing file did not error")
	}
}
