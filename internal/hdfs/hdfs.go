// Package hdfs implements the simulated distributed filesystem: a NameNode
// view of files split into blocks, block replicas placed rack-aware across
// DataNodes, and costed read/write paths that charge the owning nodes' disk
// and network devices on the virtual clock.
//
// Data is real: blocks hold actual bytes, so MapReduce jobs running on top
// of this filesystem compute real answers that tests can verify.
package hdfs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
)

// Block is one replicated chunk of a file.
type Block struct {
	ID       int
	File     string
	Offset   int64 // offset of this block within the file
	Data     []byte
	Replicas []*topology.Node // placement order: first is the "primary"

	// Gen is the NameNode's monotonic write generation, stamped when the
	// block's bytes were (re)written. Any mutation — overwrite, append —
	// produces a fresh generation, so (ID, Gen) identifies block *content*
	// without hashing it. FileDigest folds these stamps into the cheap
	// input-freshness check the cross-job memoization cache keys on.
	Gen int64
}

// Size returns the block length in bytes.
func (b *Block) Size() int64 { return int64(len(b.Data)) }

// HostedOn reports whether a replica of b lives on node n.
func (b *Block) HostedOn(n *topology.Node) bool {
	for _, r := range b.Replicas {
		if r == n {
			return true
		}
	}
	return false
}

// File is a NameNode file entry.
type File struct {
	Name   string
	Blocks []*Block
}

// Size returns the total file length.
func (f *File) Size() int64 {
	var s int64
	for _, b := range f.Blocks {
		s += b.Size()
	}
	return s
}

// DFS is the simulated HDFS instance for one cluster.
type DFS struct {
	eng         *sim.Engine
	cluster     *topology.Cluster
	blockSize   int64
	replication int
	files       map[string]*File
	nextBlockID int
	gen         int64 // monotonic write-generation counter (see Block.Gen)
	rng         *rand.Rand

	// BytesRead / BytesWritten tally costed traffic for metrics.
	BytesRead    int64
	BytesWritten int64
	// LocalReads / RackReads / RemoteReads count read locality outcomes.
	LocalReads  int64
	RackReads   int64
	RemoteReads int64

	// Trace, when non-nil, records read/write events on the virtual clock.
	Trace *trace.Log
}

// New creates an empty filesystem over the cluster. blockSize and
// replication typically come from costmodel.Params. The seed fixes replica
// placement, keeping runs reproducible.
func New(eng *sim.Engine, cluster *topology.Cluster, blockSize int64, replication int, seed int64) *DFS {
	if blockSize <= 0 {
		panic("hdfs: block size must be positive")
	}
	if replication <= 0 {
		panic("hdfs: replication must be positive")
	}
	return &DFS{
		eng:         eng,
		cluster:     cluster,
		blockSize:   blockSize,
		replication: replication,
		files:       make(map[string]*File),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// BlockSize returns the filesystem block size.
func (d *DFS) BlockSize() int64 { return d.blockSize }

// Lookup returns the file entry, or an error if it does not exist.
func (d *DFS) Lookup(name string) (*File, error) {
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q not found", name)
	}
	return f, nil
}

// Exists reports whether the named file exists.
func (d *DFS) Exists(name string) bool { _, ok := d.files[name]; return ok }

// Delete removes a file; deleting a missing file is an error.
func (d *DFS) Delete(name string) error {
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("hdfs: delete: file %q not found", name)
	}
	delete(d.files, name)
	return nil
}

// Rename moves a file to a new name. It is a pure NameNode metadata
// operation with no data movement, so it carries no simulated cost; the
// speculative executor uses it to promote the winning mode's temporary
// output. Renaming onto an existing name or from a missing one is an error.
func (d *DFS) Rename(oldName, newName string) error {
	f, ok := d.files[oldName]
	if !ok {
		return fmt.Errorf("hdfs: rename: file %q not found", oldName)
	}
	if _, exists := d.files[newName]; exists {
		return fmt.Errorf("hdfs: rename: file %q already exists", newName)
	}
	delete(d.files, oldName)
	f.Name = newName
	for _, b := range f.Blocks {
		b.File = newName
	}
	d.files[newName] = f
	return nil
}

// RenamePrefix renames every file under oldPrefix to the corresponding name
// under newPrefix (directory rename). It returns the number of files moved.
func (d *DFS) RenamePrefix(oldPrefix, newPrefix string) (int, error) {
	var moved []string
	for _, name := range d.List() {
		if len(name) >= len(oldPrefix) && name[:len(oldPrefix)] == oldPrefix {
			moved = append(moved, name)
		}
	}
	for _, name := range moved {
		if err := d.Rename(name, newPrefix+name[len(oldPrefix):]); err != nil {
			return 0, err
		}
	}
	return len(moved), nil
}

// DeletePrefix removes every file under the prefix and reports how many.
func (d *DFS) DeletePrefix(prefix string) int {
	n := 0
	for _, name := range d.List() {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			delete(d.files, name)
			n++
		}
	}
	return n
}

// List returns all file names in sorted order.
func (d *DFS) List() []string {
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// place chooses replica nodes for one block following the policy the paper
// describes: one replica on the writer's node (or a random worker when the
// writer is not a DataNode), one on a node in a different rack, and one on a
// different node in that same remote rack. Additional replicas (replication
// > 3) go to random distinct workers.
func (d *DFS) place(writer *topology.Node) []*topology.Node {
	// Only live DataNodes take new replicas — the NameNode never targets a
	// dead node. (Existing replicas on a crashed node survive on its disk
	// and are readable again after a restart; see bestReplica.)
	var workers []*topology.Node
	for _, n := range d.cluster.Workers() {
		if n.Alive() {
			workers = append(workers, n)
		}
	}
	if len(workers) == 0 {
		panic("hdfs: cluster has no live workers")
	}
	var first *topology.Node
	if writer != nil && writer != d.cluster.Master() && writer.Alive() {
		first = writer
	} else {
		first = workers[d.rng.Intn(len(workers))]
	}
	replicas := []*topology.Node{first}
	if d.replication == 1 {
		return replicas
	}

	// Second replica: a node in a different rack if one exists.
	var remoteRack []*topology.Node
	for _, n := range workers {
		if n.Rack != first.Rack {
			remoteRack = append(remoteRack, n)
		}
	}
	if len(remoteRack) > 0 {
		second := remoteRack[d.rng.Intn(len(remoteRack))]
		replicas = append(replicas, second)
		if d.replication >= 3 {
			// Third replica: a different node in the second replica's rack.
			var sameRemote []*topology.Node
			for _, n := range workers {
				if n.Rack == second.Rack && n != second {
					sameRemote = append(sameRemote, n)
				}
			}
			if len(sameRemote) > 0 {
				replicas = append(replicas, sameRemote[d.rng.Intn(len(sameRemote))])
			}
		}
	}
	// Fill any remaining replication with distinct random workers.
	for len(replicas) < d.replication && len(replicas) < len(workers) {
		cand := workers[d.rng.Intn(len(workers))]
		dup := false
		for _, r := range replicas {
			if r == cand {
				dup = true
				break
			}
		}
		if !dup {
			replicas = append(replicas, cand)
		}
	}
	return replicas
}

func (d *DFS) makeBlocks(name string, data []byte, writer *topology.Node) *File {
	f := &File{Name: name}
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0); off += d.blockSize {
		end := off + d.blockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		d.nextBlockID++
		d.gen++
		f.Blocks = append(f.Blocks, &Block{
			ID:       d.nextBlockID,
			File:     name,
			Offset:   off,
			Data:     data[off:end],
			Replicas: d.place(writer),
			Gen:      d.gen,
		})
		if len(data) == 0 {
			break
		}
	}
	return f
}

// PutInstant installs a file without charging any I/O cost. It exists for
// experiment setup (pre-loading the input corpus before the measured job
// begins), mirroring how the paper's inputs were staged before timing.
// Overwriting an existing file is an error.
func (d *DFS) PutInstant(name string, data []byte, writer *topology.Node) (*File, error) {
	if d.Exists(name) {
		return nil, fmt.Errorf("hdfs: file %q already exists", name)
	}
	f := d.makeBlocks(name, data, writer)
	d.files[name] = f
	return f, nil
}

// Write stores a file with full pipeline cost: for every block, the writer's
// NIC pushes the bytes once, the replica disks each write them, and replica
// NICs receive them (cross-rack hops also transit the core switch). done
// fires when the last replica of the last block is durable.
func (d *DFS) Write(name string, data []byte, writer *topology.Node, done func(*File, error)) {
	if done == nil {
		panic("hdfs: Write needs a completion callback")
	}
	if d.Exists(name) {
		d.eng.After(0, func() { done(nil, fmt.Errorf("hdfs: file %q already exists", name)) })
		return
	}
	f := d.makeBlocks(name, data, writer)
	d.files[name] = f
	d.BytesWritten += int64(len(data))
	if writer != nil {
		d.Trace.Add("hdfs", "write %s (%d bytes, %d blocks) from %s", name, len(data), len(f.Blocks), writer.Name)
	} else {
		d.Trace.Add("hdfs", "write %s (%d bytes, %d blocks)", name, len(data), len(f.Blocks))
	}

	pending := 0
	finished := false
	complete := func() {
		pending--
		if pending == 0 && finished {
			done(f, nil)
		}
	}
	for _, b := range f.Blocks {
		n := b.Size()
		if writer != nil {
			pending++
			writer.NIC.Use(n*int64(len(b.Replicas)), complete)
		}
		for _, r := range b.Replicas {
			pending++
			r.Disk.Use(n, complete) // disk write charged at the replica
			if writer != nil && r != writer {
				pending++
				r.NIC.Use(n, complete)
				if writer.Rack != r.Rack {
					pending++
					d.cluster.CoreSwitch.Use(n, complete)
				}
			}
		}
	}
	finished = true
	if pending == 0 {
		d.eng.After(0, func() { done(f, nil) })
	}
}

// bestReplica picks the cheapest live replica for a reader, preferring
// node-local then rack-local then any, and updates the locality counters.
// It returns nil when every replica's node is down (with the default
// replication of 3 that takes a multi-node failure), and the read fails.
func (d *DFS) bestReplica(b *Block, reader *topology.Node) *topology.Node {
	var live []*topology.Node
	for _, r := range b.Replicas {
		if r.Alive() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if reader != nil {
		for _, r := range live {
			if r == reader {
				d.LocalReads++
				return r
			}
		}
		for _, r := range live {
			if r.Rack == reader.Rack {
				d.RackReads++
				return r
			}
		}
	}
	d.RemoteReads++
	return live[0]
}

// ReadRange reads length bytes starting at offset from the named file on
// behalf of reader, charging the replica's disk and, for non-local reads,
// both NICs (plus the core switch across racks). done receives the bytes.
func (d *DFS) ReadRange(name string, offset, length int64, reader *topology.Node, done func([]byte, error)) {
	if done == nil {
		panic("hdfs: ReadRange needs a completion callback")
	}
	f, err := d.Lookup(name)
	if err != nil {
		d.eng.After(0, func() { done(nil, err) })
		return
	}
	if offset < 0 || length < 0 || offset+length > f.Size() {
		d.eng.After(0, func() {
			done(nil, fmt.Errorf("hdfs: read [%d,%d) out of range for %q (size %d)", offset, offset+length, name, f.Size()))
		})
		return
	}

	if reader != nil {
		d.Trace.Add("hdfs", "read %s [%d,%d) on %s", name, offset, offset+length, reader.Name)
	} else {
		d.Trace.Add("hdfs", "read %s [%d,%d)", name, offset, offset+length)
	}
	var out []byte
	// Fast path: a read covering exactly one whole block returns the block
	// bytes without copying. Readers must treat returned data as immutable,
	// which every consumer in this repository does.
	single := len(f.Blocks) == 1 && offset == 0 && length == f.Size()
	if !single {
		out = make([]byte, 0, length)
	}
	pending := 0
	finished := false
	complete := func() {
		pending--
		if pending == 0 && finished {
			done(out, nil)
		}
	}
	for _, b := range f.Blocks {
		bStart, bEnd := b.Offset, b.Offset+b.Size()
		if bEnd <= offset || bStart >= offset+length {
			continue
		}
		lo, hi := max(offset, bStart)-bStart, min(offset+length, bEnd)-bStart
		if single {
			out = b.Data
		} else {
			out = append(out, b.Data[lo:hi]...)
		}
		n := hi - lo
		d.BytesRead += n
		src := d.bestReplica(b, reader)
		if src == nil {
			bid := b.ID
			d.eng.After(0, func() {
				done(nil, fmt.Errorf("hdfs: all replicas of %q block %d are offline", name, bid))
			})
			return
		}
		pending++
		src.Disk.Use(n, complete)
		if reader != nil && src != reader {
			pending++
			src.NIC.Use(n, complete)
			pending++
			reader.NIC.Use(n, complete)
			if src.Rack != reader.Rack {
				pending++
				d.cluster.CoreSwitch.Use(n, complete)
			}
		}
	}
	finished = true
	if pending == 0 {
		d.eng.After(0, func() { done(out, nil) })
	}
}

// ReadAll reads a whole file.
func (d *DFS) ReadAll(name string, reader *topology.Node, done func([]byte, error)) {
	f, err := d.Lookup(name)
	if err != nil {
		d.eng.After(0, func() { done(nil, err) })
		return
	}
	d.ReadRange(name, 0, f.Size(), reader, done)
}

// Contents returns a file's bytes without charging any cost — for test
// verification and for the decision-maker's history lookups, which the
// paper treats as negligible.
func (d *DFS) Contents(name string) ([]byte, error) {
	f, err := d.Lookup(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, f.Size())
	for _, b := range f.Blocks {
		out = append(out, b.Data...)
	}
	return out, nil
}

// FileDigest folds a file's per-block (ID, generation, length) triples into
// one 64-bit value. It is a pure NameNode metadata walk — no block data is
// hashed and no I/O cost is charged — yet any content change is visible:
// every write path stamps a fresh generation on the blocks it touches
// (PutInstant/Write on creation, OverwriteInstant/Append on mutation). The
// memoization cache uses it as the input-freshness half of its key.
func (d *DFS) FileDigest(name string) (uint64, error) {
	f, err := d.Lookup(name)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, b := range f.Blocks {
		word(uint64(b.ID))
		word(uint64(b.Gen))
		word(uint64(len(b.Data)))
	}
	return h.Sum64(), nil
}

// OverwriteInstant replaces an existing file's contents (or creates the file)
// without charging I/O cost, the mutation analogue of PutInstant. The old
// blocks are discarded and every new block gets a fresh write generation, so
// FileDigest changes and any memoized result derived from the old bytes is
// invalidated.
func (d *DFS) OverwriteInstant(name string, data []byte, writer *topology.Node) (*File, error) {
	delete(d.files, name)
	return d.PutInstant(name, data, writer)
}

// Append extends an existing file in place without charging I/O cost: the
// last block absorbs bytes up to the block size (its generation is bumped —
// its content changed), and the remainder spills into fresh blocks. Like the
// other *Instant helpers it models out-of-band data arrival, e.g. a log
// shipper adding records between measured jobs.
func (d *DFS) Append(name string, data []byte, writer *topology.Node) (*File, error) {
	f, err := d.Lookup(name)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return f, nil
	}
	if n := len(f.Blocks); n > 0 {
		last := f.Blocks[n-1]
		if room := d.blockSize - last.Size(); room > 0 {
			take := room
			if take > int64(len(data)) {
				take = int64(len(data))
			}
			// Copy-on-append: readers hold references to block data and
			// treat it as immutable, so never grow the old slice in place.
			grown := make([]byte, 0, last.Size()+take)
			grown = append(grown, last.Data...)
			grown = append(grown, data[:take]...)
			last.Data = grown
			d.gen++
			last.Gen = d.gen
			data = data[take:]
		}
	}
	base := f.Size()
	for len(data) > 0 {
		end := d.blockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		d.nextBlockID++
		d.gen++
		f.Blocks = append(f.Blocks, &Block{
			ID:       d.nextBlockID,
			File:     name,
			Offset:   base,
			Data:     data[:end:end],
			Replicas: d.place(writer),
			Gen:      d.gen,
		})
		base += end
		data = data[end:]
	}
	return f, nil
}
