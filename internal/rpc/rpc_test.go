package rpc

import (
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/sim"
)

func TestSendChargesLatency(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "client-proxy", 30*time.Millisecond, 0)
	var at sim.Time
	l.Send(0, func() { at = eng.Now() })
	eng.Run()
	if at != sim.Time(30*time.Millisecond) {
		t.Fatalf("delivered at %v, want 30ms", at)
	}
	if l.Calls != 1 || l.Bytes != 0 {
		t.Fatalf("counters = %d/%d", l.Calls, l.Bytes)
	}
}

func TestSendChargesPayloadOverBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "data", 10*time.Millisecond, 1e6) // 1 MB/s
	var at sim.Time
	l.Send(500_000, func() { at = eng.Now() })
	eng.Run()
	want := sim.Time(510 * time.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if l.Bytes != 500_000 {
		t.Fatalf("Bytes = %d", l.Bytes)
	}
}

func TestZeroBandwidthIgnoresPayload(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "ctl", 5*time.Millisecond, 0)
	var at sim.Time
	l.Send(1<<30, func() { at = eng.Now() })
	eng.Run()
	if at != sim.Time(5*time.Millisecond) {
		t.Fatalf("control link charged payload: %v", at)
	}
}

func TestCallRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "proxy-am", 20*time.Millisecond, 0)
	var serverAt, replyAt sim.Time
	l.Call(0, func() int64 {
		serverAt = eng.Now()
		return 0
	}, func() { replyAt = eng.Now() })
	eng.Run()
	if serverAt != sim.Time(20*time.Millisecond) {
		t.Fatalf("server ran at %v", serverAt)
	}
	if replyAt != sim.Time(40*time.Millisecond) {
		t.Fatalf("reply at %v, want 40ms", replyAt)
	}
	if l.Calls != 2 {
		t.Fatalf("Calls = %d, want 2 (request + reply)", l.Calls)
	}
}

func TestNegativePayloadCountsZero(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "x", time.Millisecond, 1e6)
	l.Send(-100, func() {})
	eng.Run()
	if l.Bytes != 0 {
		t.Fatalf("Bytes = %d", l.Bytes)
	}
}

func TestBadConstructionPanics(t *testing.T) {
	eng := sim.NewEngine()
	for _, f := range []func(){
		func() { NewLink(eng, "a", -time.Millisecond, 0) },
		func() { NewLink(eng, "b", 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad link construction did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: delivery time is exactly latency + payload/bandwidth for any
// payload, and calls accumulate monotonically.
func TestQuickSendTiming(t *testing.T) {
	f := func(payload32 uint32, latMs uint16) bool {
		eng := sim.NewEngine()
		lat := time.Duration(latMs) * time.Millisecond
		l := NewLink(eng, "q", lat, 1e6)
		payload := int64(payload32 % 10_000_000)
		var at sim.Time
		l.Send(payload, func() { at = eng.Now() })
		eng.Run()
		want := sim.Time(lat) + sim.Time(float64(payload)/1e6*float64(time.Second))
		diff := at.Sub(want)
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
