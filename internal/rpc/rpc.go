// Package rpc models point-to-point remote procedure calls on the virtual
// clock: a call charges the link's latency, optionally a payload transfer
// over a bandwidth-limited link, and counts traffic for metrics. The MRapid
// submission framework uses it for the client↔proxy and proxy↔AM calls the
// paper implements over Spring Hadoop.
package rpc

import (
	"fmt"
	"time"

	"mrapid/internal/sim"
)

// Link is a bidirectional message channel with fixed one-way latency and
// optional bandwidth limiting for payloads.
type Link struct {
	eng     *sim.Engine
	name    string
	latency time.Duration
	// bandwidth in bytes/second; zero means payload size is free (control
	// messages).
	bandwidth float64

	// Calls and Bytes count traffic over the link's lifetime.
	Calls int64
	Bytes int64
}

// NewLink creates a link with the given one-way latency. bandwidth may be
// zero for latency-only control links.
func NewLink(eng *sim.Engine, name string, latency time.Duration, bandwidth float64) *Link {
	if latency < 0 {
		panic(fmt.Sprintf("rpc: link %q has negative latency", name))
	}
	if bandwidth < 0 {
		panic(fmt.Sprintf("rpc: link %q has negative bandwidth", name))
	}
	return &Link{eng: eng, name: name, latency: latency, bandwidth: bandwidth}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Latency returns the one-way latency.
func (l *Link) Latency() time.Duration { return l.latency }

// transferTime converts a payload size into link time.
func (l *Link) transferTime(payload int64) time.Duration {
	if payload <= 0 || l.bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(payload) / l.bandwidth * float64(time.Second))
}

// Send delivers a one-way message of the given payload size: handler runs
// after the latency plus transfer time.
func (l *Link) Send(payload int64, handler func()) {
	if handler == nil {
		panic("rpc: Send needs a handler")
	}
	l.Calls++
	l.Bytes += max(payload, 0)
	l.eng.After(l.latency+l.transferTime(payload), handler)
}

// Call performs a round trip: the server handler runs after one latency,
// then the reply it returns is delivered to the client after another. The
// handler's return value sizes the response payload.
func (l *Link) Call(payload int64, handler func() int64, reply func()) {
	if handler == nil || reply == nil {
		panic("rpc: Call needs a handler and a reply continuation")
	}
	l.Send(payload, func() {
		respSize := handler()
		l.Send(respSize, reply)
	})
}
