package mapreduce

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

func TestMapCacheHitReturnsEqualResult(t *testing.T) {
	spec := wcSpec([]string{"/in"}, "/out")
	data := bytes.Repeat([]byte("cache me if you can\n"), 5000)
	c := NewMapCache(1 << 30)

	if _, ok := c.lookup(spec, "/in", 0, data); ok {
		t.Fatal("hit on empty cache")
	}
	fresh := ExecMap(spec, data)
	c.store(spec, "/in", 0, data, fresh)
	hit, ok := c.lookup(spec, "/in", 0, data)
	if !ok {
		t.Fatal("no hit after store")
	}
	if hit.TotalBytes != fresh.TotalBytes || hit.Records != fresh.Records {
		t.Fatalf("cached aggregates differ: %d/%d vs %d/%d",
			hit.TotalBytes, hit.Records, fresh.TotalBytes, fresh.Records)
	}
	if len(hit.Partitions[0]) != len(fresh.Partitions[0]) {
		t.Fatal("cached partitions differ")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("counters = %d/%d", c.Hits(), c.Misses())
	}
}

func TestMapCacheKeyDiscriminates(t *testing.T) {
	spec := wcSpec([]string{"/in"}, "/out")
	data := bytes.Repeat([]byte("same name different content\n"), 100)
	other := bytes.Repeat([]byte("SAME name different CONTENT!\n"), 100)
	c := NewMapCache(1 << 30)
	c.store(spec, "/in", 0, data, ExecMap(spec, data))

	if _, ok := c.lookup(spec, "/in", 0, other); ok {
		t.Fatal("hit on different content under the same name")
	}
	if _, ok := c.lookup(spec, "/in2", 0, data); ok {
		t.Fatal("hit on different file name")
	}
	if _, ok := c.lookup(spec, "/in", 100, data); ok {
		t.Fatal("hit on different offset")
	}
	spec2 := wcSpec([]string{"/in"}, "/out")
	spec2.JobKey = "other-job"
	if _, ok := c.lookup(spec2, "/in", 0, data); ok {
		t.Fatal("hit across job identities")
	}
	spec3 := wcSpec([]string{"/in"}, "/out")
	spec3.NumReduces = 3
	if _, ok := c.lookup(spec3, "/in", 0, data); ok {
		t.Fatal("hit across partition counts")
	}
	spec4 := wcSpec([]string{"/in"}, "/out")
	spec4.Combine = spec4.Reduce
	if _, ok := c.lookup(spec4, "/in", 0, data); ok {
		t.Fatal("hit across combiner settings")
	}
}

// Regression: the old fingerprint sampled three 4 KiB windows, so two
// same-length splits differing only outside the windows collided and a
// cache hit silently returned the wrong job's output.
func TestMapCacheSameLengthDifferentContentNoCollision(t *testing.T) {
	spec := wcSpec([]string{"/in"}, "/out")
	a := bytes.Repeat([]byte("the quick brown fox jumps over the dog\n"), 8000) // ~300 KB
	b := append([]byte(nil), a...)
	// Mutate a region far from the start, middle, and end windows the old
	// fingerprint sampled.
	copy(b[80_000:], []byte("CORRUPTED RECORD"))
	if len(a) != len(b) {
		t.Fatal("test needs equal lengths")
	}
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("same-length different-content splits share a fingerprint")
	}
	c := NewMapCache(1 << 30)
	c.store(spec, "/in", 0, a, ExecMap(spec, a))
	if _, ok := c.lookup(spec, "/in", 0, b); ok {
		t.Fatal("cache hit for different content: wrong job output would be returned")
	}
	mb := ExecMap(spec, b)
	c.store(spec, "/in", 0, b, mb)
	hit, ok := c.lookup(spec, "/in", 0, b)
	if !ok {
		t.Fatal("no hit for b after storing b")
	}
	if hit.Records != mb.Records || hit.TotalBytes != mb.TotalBytes {
		t.Fatal("hit returned a different split's result")
	}
}

// lookup must hand out a private PartBytes slice: callers own the returned
// MapOutput, and a shared slice would let one job's mutation corrupt every
// later hit.
func TestMapCacheLookupCopiesPartBytes(t *testing.T) {
	spec := wcSpec([]string{"/in"}, "/out")
	data := bytes.Repeat([]byte("isolated part bytes\n"), 1000)
	c := NewMapCache(1 << 30)
	c.store(spec, "/in", 0, data, ExecMap(spec, data))
	first, _ := c.lookup(spec, "/in", 0, data)
	first.PartBytes[0] = -1
	second, ok := c.lookup(spec, "/in", 0, data)
	if !ok {
		t.Fatal("no hit")
	}
	if second.PartBytes[0] == -1 {
		t.Fatal("cached PartBytes shared with a returned MapOutput")
	}
}

func TestMapCacheEvictsFIFO(t *testing.T) {
	spec := wcSpec([]string{"/in"}, "/out")
	mk := func(tag byte) []byte {
		return bytes.Repeat([]byte{tag, ' ', tag, '\n'}, 30_000) // ~120 KB
	}
	c := NewMapCache(600 << 10) // far under one entry's retained bytes
	for i := 0; i < 5; i++ {
		data := mk(byte('a' + i))
		c.store(spec, "/in", int64(i), data, ExecMap(spec, data))
	}
	// Each entry retains ~2 MB (data + pairs + headers), far over the
	// budget, so the cache evicts down to the single most recent entry —
	// it always keeps at least one so oversized splits still memoize.
	if c.Len() != 1 {
		t.Fatalf("eviction kept %d entries (%d bytes), want 1", c.Len(), c.Used())
	}
	// Newest entry survives.
	newest := mk(byte('a' + 4))
	if _, ok := c.lookup(spec, "/in", 4, newest); !ok {
		t.Fatal("newest entry evicted")
	}
	// Evicted entries are gone.
	if _, ok := c.lookup(spec, "/in", 0, mk('a')); ok {
		t.Fatal("oldest entry still cached")
	}
}

// Concurrent stress: many goroutines hammer lookup/store over overlapping
// keys. Run under -race this proves the sharded locking is sound; the
// assertions prove no entry is ever corrupted.
func TestMapCacheConcurrentStress(t *testing.T) {
	spec := wcSpec([]string{"/in"}, "/out")
	const splits = 8
	datas := make([][]byte, splits)
	want := make([]*MapOutput, splits)
	for i := range datas {
		datas[i] = bytes.Repeat([]byte(fmt.Sprintf("split %d words here\n", i)), 500+100*i)
		want[i] = ExecMap(spec, datas[i])
	}
	c := NewMapCache(1 << 30)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % splits
				mo, ok := c.lookup(spec, "/in", int64(i), datas[i])
				if !ok {
					mo = ExecMap(spec, datas[i])
					c.store(spec, "/in", int64(i), datas[i], mo)
				}
				if mo.Records != want[i].Records || mo.TotalBytes != want[i].TotalBytes {
					t.Errorf("split %d: got %d/%d records/bytes, want %d/%d",
						i, mo.Records, mo.TotalBytes, want[i].Records, want[i].TotalBytes)
					return
				}
				mo.PartBytes[0] = -7 // must never leak into the cache
			}
		}(g)
	}
	wg.Wait()
	for i := range datas {
		mo, ok := c.lookup(spec, "/in", int64(i), datas[i])
		if !ok {
			t.Fatalf("split %d missing after stress", i)
		}
		if mo.PartBytes[0] != want[i].PartBytes[0] {
			t.Fatalf("split %d PartBytes corrupted: %d", i, mo.PartBytes[0])
		}
	}
	if c.Hits()+c.Misses() != 16*50+int64(splits) {
		t.Fatalf("counter total = %d, want %d", c.Hits()+c.Misses(), 16*50+splits)
	}
}

func TestMapCacheNeverChangesSimulatedTiming(t *testing.T) {
	run := func(cache *MapCache) (sim.Time, int64) {
		eng := sim.NewEngine()
		cluster, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
		rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
		rt.MapCache = cache
		node := rt.Cluster.Workers()[0]
		data := bytes.Repeat([]byte("timing must not depend on the cache\n"), 20_000)
		rt.DFS.PutInstant("/in", data, node)
		splits, _ := rt.DFS.Splits([]string{"/in"})
		spec := wcSpec([]string{"/in"}, "/out")
		var end sim.Time
		var out int64
		rt.RunMapTask(spec, splits[0], node, MapTaskOptions{SpillToDisk: true},
			func(mo *MapOutput, tp *profiler.TaskProfile, err error) {
				if err != nil {
					t.Fatal(err)
				}
				end = rt.Eng.Now()
				out = mo.TotalBytes
			})
		rt.Eng.RunUntil(sim.Time(1 << 40))
		_ = cluster
		return end, out
	}
	cache := NewMapCache(1 << 30)
	t1, o1 := run(nil)   // no cache
	t2, o2 := run(cache) // miss
	t3, o3 := run(cache) // hit
	if t1 != t2 || t2 != t3 {
		t.Fatalf("virtual completion differs: %v / %v / %v", t1, t2, t3)
	}
	if o1 != o2 || o2 != o3 {
		t.Fatalf("outputs differ: %d / %d / %d", o1, o2, o3)
	}
	if cache.Hits() != 1 {
		t.Fatalf("Hits = %d", cache.Hits())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := bytes.Repeat([]byte("x"), 100_000)
	b := append(append([]byte{}, a...), 'y')
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("length change not detected")
	}
	c := append([]byte{}, a...)
	c[50_000] = 'z'
	if fingerprint(a) == fingerprint(c) {
		t.Fatal("middle mutation not detected")
	}
	// Mutations anywhere must be detected now that the full content is
	// hashed (the old sampled windows missed this position).
	d := append([]byte{}, a...)
	d[30_000] = 'z'
	if fingerprint(a) == fingerprint(d) {
		t.Fatal("off-window mutation not detected")
	}
	if fingerprint(a) != fingerprint(append([]byte{}, a...)) {
		t.Fatal("identical content fingerprints differ")
	}
	// Tiny inputs work too.
	if fingerprint([]byte{}) == fingerprint([]byte{1}) {
		t.Fatal("tiny inputs collide")
	}
}
