package mapreduce

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// horizon is a far-future deadline for draining job simulations whose
// NM-heartbeat tickers never stop on their own.
const horizon = sim.Time(1 << 42)

// runJob submits a job in the given stock mode and drives the simulation to
// completion.
func runJob(t *testing.T, rt *Runtime, spec *JobSpec, mode Mode) *Result {
	t.Helper()
	var res *Result
	rt.Eng.After(0, func() {
		Submit(rt, spec, mode, func(r *Result) {
			res = r
			rt.RM.Stop()
		})
	})
	rt.Eng.RunUntil(horizon)
	if res == nil {
		t.Fatal("job never completed")
	}
	return res
}

// stageWordCountInput writes n files of roughly size bytes each and returns
// (names, all concatenated data).
func stageWordCountInput(t *testing.T, rt *Runtime, n int, size int) ([]string, []byte) {
	t.Helper()
	var names []string
	var all []byte
	sentences := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog\n"),
		[]byte("pack my box with five dozen liquor jugs\n"),
		[]byte("how vexingly quick daft zebras jump\n"),
	}
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		for buf.Len() < size {
			buf.Write(sentences[(i+buf.Len())%len(sentences)])
		}
		name := "/in/wc/part-" + strconv.Itoa(i)
		if _, err := rt.DFS.PutInstant(name, buf.Bytes(), rt.Cluster.Workers()[i%len(rt.Cluster.Workers())]); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		all = append(all, buf.Bytes()...)
	}
	return names, all
}

func verifyWordCount(t *testing.T, rt *Runtime, output string, input []byte) {
	t.Helper()
	want := map[string]int{}
	for _, w := range bytes.Fields(input) {
		want[string(w)]++
	}
	data, err := rt.DFS.Contents(PartFileName(output, 0))
	if err != nil {
		t.Fatalf("output missing: %v", err)
	}
	got := map[string]int{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, '\t')
		n, err := strconv.Atoi(string(line[i+1:]))
		if err != nil {
			t.Fatalf("bad output line %q", line)
		}
		got[string(line[:i])] = n
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d words, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestDistributedWordCountEndToEnd(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, all := stageWordCountInput(t, rt, 4, 2<<20)
	spec := wcSpec(names, "/out/wc")
	res := runJob(t, rt, spec, ModeDistributed)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	verifyWordCount(t, rt, "/out/wc", all)

	p := res.Profile
	if p.NumMaps != 4 {
		t.Errorf("NumMaps = %d", p.NumMaps)
	}
	maps, reduces := 0, 0
	for _, tp := range p.Tasks {
		switch tp.Kind {
		case profiler.MapTask:
			maps++
		case profiler.ReduceTask:
			reduces++
		}
	}
	if maps != 4 || reduces != 1 {
		t.Errorf("task records = %d maps / %d reduces", maps, reduces)
	}
	if p.Elapsed() <= 0 || p.AMReadyAt <= p.SubmittedAt || p.DoneAt < p.MapsDoneAt {
		t.Errorf("profile timeline inconsistent: %+v", p)
	}
	// Sanity on magnitude: a 4×2MB wordcount on stock Hadoop lands in the
	// tens of seconds, not milliseconds and not hours.
	if e := p.Elapsed(); e < 5*time.Second || e > 120*time.Second {
		t.Errorf("elapsed = %v, implausible for a short job", e)
	}
}

func TestUberWordCountEndToEnd(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, all := stageWordCountInput(t, rt, 2, 1<<20)
	spec := wcSpec(names, "/out/wc")
	res := runJob(t, rt, spec, ModeUber)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	verifyWordCount(t, rt, "/out/wc", all)
	if res.Profile.NumContainers != 1 {
		t.Errorf("uber NumContainers = %d", res.Profile.NumContainers)
	}
	// All tasks ran on the AM node.
	node := res.Profile.Tasks[0].Node
	for _, tp := range res.Profile.Tasks {
		if tp.Node != node {
			t.Errorf("uber task ran on %s, AM on %s", tp.Node, node)
		}
	}
}

func TestDistributedAndUberAgreeOnOutput(t *testing.T) {
	rtD := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	rtU := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	namesD, _ := stageWordCountInput(t, rtD, 3, 1<<20)
	namesU, _ := stageWordCountInput(t, rtU, 3, 1<<20)
	runJob(t, rtD, wcSpec(namesD, "/out"), ModeDistributed)
	runJob(t, rtU, wcSpec(namesU, "/out"), ModeUber)
	a, errA := rtD.DFS.Contents(PartFileName("/out", 0))
	b, errB := rtU.DFS.Contents(PartFileName("/out", 0))
	if errA != nil || errB != nil {
		t.Fatalf("outputs missing: %v %v", errA, errB)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("distributed and uber outputs differ")
	}
}

func TestUberSequentialVsDistributedParallel(t *testing.T) {
	// With several equally sized maps and a healthy cluster, distributed
	// mode's parallel waves beat uber's strictly sequential execution once
	// per-map work dominates the fixed overheads.
	mk := func() (*Runtime, *JobSpec) {
		rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
		names, _ := stageWordCountInput(t, rt, 8, 1<<20)
		spec := wcSpec(names, "/out")
		// Slow the map function down so per-map compute dominates the fixed
		// overheads without inflating the real data volume.
		spec.MapRate = 1e6
		return rt, spec
	}
	rtD, specD := mk()
	rtU, specU := mk()
	d := runJob(t, rtD, specD, ModeDistributed)
	u := runJob(t, rtU, specU, ModeUber)
	if d.Err != nil || u.Err != nil {
		t.Fatalf("jobs failed: %v / %v", d.Err, u.Err)
	}
	if d.Elapsed() >= u.Elapsed() {
		t.Errorf("distributed (%.1fs) should beat sequential uber (%.1fs) on 8×4MB",
			d.Elapsed(), u.Elapsed())
	}
}

func TestDistributedRunsMultipleWaves(t *testing.T) {
	// 2 workers × 2 containers (A2) = 4 slots; 10 maps needs ≥ 3 waves.
	rt := newTestRuntime(t, topology.A2, 2, yarn.NewStockScheduler())
	names, all := stageWordCountInput(t, rt, 10, 256<<10)
	res := runJob(t, rt, wcSpec(names, "/out"), ModeDistributed)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	verifyWordCount(t, rt, "/out", all)
	if got := len(res.Profile.Tasks); got != 11 {
		t.Errorf("tasks = %d, want 10 maps + 1 reduce", got)
	}
}

func TestJobFailsOnMissingInput(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	spec := wcSpec([]string{"/does/not/exist"}, "/out")
	res := runJob(t, rt, spec, ModeDistributed)
	if res.Err == nil {
		t.Fatal("job with missing input succeeded")
	}
}

func TestJobFailsOnInvalidSpec(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	spec := wcSpec(nil, "/out")
	res := runJob(t, rt, spec, ModeUber)
	if res.Err == nil {
		t.Fatal("invalid spec succeeded")
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() float64 {
		rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
		names, _ := stageWordCountInput(t, rt, 4, 1<<20)
		return runJob(t, rt, wcSpec(names, "/out"), ModeDistributed).Elapsed()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs took %.6fs and %.6fs", a, b)
	}
}

func TestMultiReduceDistributed(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, all := stageWordCountInput(t, rt, 4, 512<<10)
	spec := wcSpec(names, "/out")
	spec.NumReduces = 3
	res := runJob(t, rt, spec, ModeDistributed)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	want := map[string]int{}
	for _, w := range bytes.Fields(all) {
		want[string(w)]++
	}
	got := map[string]int{}
	for p := 0; p < 3; p++ {
		data, err := rt.DFS.Contents(PartFileName("/out", p))
		if err != nil {
			t.Fatalf("partition %d missing: %v", p, err)
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			i := bytes.IndexByte(line, '\t')
			n, _ := strconv.Atoi(string(line[i+1:]))
			got[string(line[:i])] = n
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d words, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestProfileSummarize(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, _ := stageWordCountInput(t, rt, 4, 1<<20)
	res := runJob(t, rt, wcSpec(names, "/out"), ModeDistributed)
	s := res.Profile.Summarize()
	if s.MapCount != 4 {
		t.Errorf("MapCount = %d", s.MapCount)
	}
	if s.AvgMapCPU <= 0 || s.AvgIn <= 0 || s.AvgOut <= 0 {
		t.Errorf("summary empty: %+v", s)
	}
	if s.ReduceInput <= 0 {
		t.Errorf("ReduceInput = %d", s.ReduceInput)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
}
