package mapreduce

import (
	"bytes"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// newTestRuntime builds a full simulated cluster runtime for tests.
func newTestRuntime(t *testing.T, instance topology.InstanceType, workers int, sched yarn.Scheduler) *Runtime {
	t.Helper()
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: instance, Workers: workers, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, 42)
	rm := yarn.NewRM(eng, cluster, params, sched)
	rm.Start()
	return NewRuntime(eng, cluster, dfs, rm, params)
}

func wcSpec(inputs []string, output string) *JobSpec {
	return &JobSpec{
		Name:       "wc-test",
		JobKey:     "wordcount",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: 1,
		Format:     LineFormat{},
		Map: func(_, line []byte, emit Emit) {
			for _, w := range bytes.Fields(line) {
				emit(w, []byte("1"))
			}
		},
		Reduce: func(key []byte, values [][]byte, emit Emit) {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			emit(key, []byte(strconv.Itoa(total)))
		},
		MapRate:    6e6,
		ReduceRate: 12e6,
	}
}

func TestExecMapPartitionsAndSorts(t *testing.T) {
	spec := wcSpec([]string{"/x"}, "/o")
	spec.NumReduces = 4
	mo := ExecMap(spec, []byte("pear apple pear\nbanana apple\n"))
	if mo.Records != 2 {
		t.Fatalf("records = %d, want 2 lines", mo.Records)
	}
	var total int
	for p, pairs := range mo.Partitions {
		for i := 1; i < len(pairs); i++ {
			if bytes.Compare(pairs[i-1].Key, pairs[i].Key) > 0 {
				t.Fatalf("partition %d not sorted", p)
			}
		}
		for _, pr := range pairs {
			if HashPartition(pr.Key, 4) != p {
				t.Fatalf("key %q in wrong partition %d", pr.Key, p)
			}
		}
		total += len(pairs)
	}
	if total != 5 {
		t.Fatalf("pairs = %d, want 5 words", total)
	}
	var sum int64
	for p := range mo.PartBytes {
		sum += mo.PartBytes[p]
	}
	if sum != mo.TotalBytes || mo.TotalBytes == 0 {
		t.Fatalf("byte accounting wrong: %v vs %d", mo.PartBytes, mo.TotalBytes)
	}
}

func TestExecMapCombiner(t *testing.T) {
	spec := wcSpec([]string{"/x"}, "/o")
	spec.Combine = spec.Reduce
	mo := ExecMap(spec, []byte("a a a b\n"))
	if len(mo.Partitions[0]) != 2 {
		t.Fatalf("combiner left %d pairs, want 2", len(mo.Partitions[0]))
	}
	for _, p := range mo.Partitions[0] {
		if string(p.Key) == "a" && string(p.Value) != "3" {
			t.Fatalf("combined count for a = %q", p.Value)
		}
	}
}

func TestExecReduceGroupsAcrossOutputs(t *testing.T) {
	spec := wcSpec([]string{"/x"}, "/o")
	a := ExecMap(spec, []byte("x y\n"))
	b := ExecMap(spec, []byte("y z\n"))
	out := ExecReduce(spec, 0, []*MapOutput{a, b})
	got := map[string]string{}
	for _, p := range out {
		got[string(p.Key)] = string(p.Value)
	}
	if got["x"] != "1" || got["y"] != "2" || got["z"] != "1" {
		t.Fatalf("reduce output = %v", got)
	}
	// Output must be key-sorted.
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1].Key, out[i].Key) > 0 {
			t.Fatal("reduce output not sorted")
		}
	}
}

// Property: ExecMap/ExecReduce over any partition count computes the same
// word counts as direct counting.
func TestQuickMapReduceEquivalence(t *testing.T) {
	f := func(raw []byte, nred8 uint8) bool {
		nred := 1 + int(nred8%5)
		data := bytes.Map(func(r rune) rune {
			if r == 0 {
				return ' '
			}
			return r
		}, raw)
		spec := wcSpec([]string{"/x"}, "/o")
		spec.NumReduces = nred
		mo := ExecMap(spec, data)
		want := map[string]int{}
		for _, w := range bytes.Fields(data) {
			want[string(w)]++
		}
		got := map[string]int{}
		for p := 0; p < nred; p++ {
			for _, pr := range ExecReduce(spec, p, []*MapOutput{mo}) {
				n, err := strconv.Atoi(string(pr.Value))
				if err != nil {
					return false
				}
				got[string(pr.Key)] = n
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpillCount(t *testing.T) {
	cases := []struct {
		n, buf int64
		want   int
	}{
		{0, 100, 0}, {1, 100, 1}, {100, 100, 1}, {101, 100, 2}, {350, 100, 4},
	}
	for _, c := range cases {
		if got := spillCount(c.n, c.buf); got != c.want {
			t.Errorf("spillCount(%d,%d) = %d, want %d", c.n, c.buf, got, c.want)
		}
	}
}

func TestRunMapTaskChargesPhases(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	node := rt.Cluster.Workers()[0]
	data := bytes.Repeat([]byte("hello world foo bar baz qux\n"), 50_000) // ~1.4 MB
	rt.DFS.PutInstant("/in", data, node)
	splits, _ := rt.DFS.Splits([]string{"/in"})
	spec := wcSpec([]string{"/in"}, "/out")

	var gotMO *MapOutput
	rt.RunMapTask(spec, splits[0], node, MapTaskOptions{SpillToDisk: true}, func(mo *MapOutput, tp *profiler.TaskProfile, err error) {
		if err != nil {
			t.Errorf("map failed: %v", err)
		}
		gotMO = mo
		if tp.ReadDur <= 0 || tp.ComputeDur <= 0 || tp.SpillDur <= 0 {
			t.Errorf("phases not charged: read=%v compute=%v spill=%v", tp.ReadDur, tp.ComputeDur, tp.SpillDur)
		}
		if tp.Spills != 1 {
			t.Errorf("spills = %d, want 1", tp.Spills)
		}
		if !tp.NodeLocal {
			t.Error("local read not flagged NodeLocal")
		}
		if tp.InputBytes != int64(len(data)) {
			t.Errorf("InputBytes = %d", tp.InputBytes)
		}
	})
	rt.Eng.RunUntil(sim.Time(1 << 40))
	if gotMO == nil {
		t.Fatal("map never completed")
	}
	if gotMO.TotalBytes == 0 || gotMO.Records == 0 {
		t.Fatal("map produced no output")
	}
}

func TestRunMapTaskMemoryModeSkipsSpill(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	node := rt.Cluster.Workers()[0]
	rt.DFS.PutInstant("/in", bytes.Repeat([]byte("a b c\n"), 1000), node)
	splits, _ := rt.DFS.Splits([]string{"/in"})
	spec := wcSpec([]string{"/in"}, "/out")
	done := false
	rt.RunMapTask(spec, splits[0], node, MapTaskOptions{SpillToDisk: false}, func(mo *MapOutput, tp *profiler.TaskProfile, err error) {
		done = true
		if tp.SpillDur != 0 || tp.Spills != 0 {
			t.Errorf("memory mode charged spill: %v / %d", tp.SpillDur, tp.Spills)
		}
		if !mo.InMemory {
			t.Error("output not marked InMemory")
		}
	})
	rt.Eng.RunUntil(sim.Time(1 << 40))
	if !done {
		t.Fatal("map never completed")
	}
}

func TestMergePassChargedWhenOutputExceedsSortBuffer(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	rt.Params.SortBufferBytes = 10 << 10 // 10 KB buffer forces merging
	node := rt.Cluster.Workers()[0]
	rt.DFS.PutInstant("/in", bytes.Repeat([]byte("alpha beta gamma delta\n"), 5000), node)
	splits, _ := rt.DFS.Splits([]string{"/in"})
	spec := wcSpec([]string{"/in"}, "/out")
	done := false
	rt.RunMapTask(spec, splits[0], node, MapTaskOptions{SpillToDisk: true}, func(_ *MapOutput, tp *profiler.TaskProfile, err error) {
		done = true
		if tp.Spills < 2 {
			t.Errorf("spills = %d, want ≥ 2", tp.Spills)
		}
		if tp.MergeDur <= 0 {
			t.Error("merge pass not charged")
		}
	})
	rt.Eng.RunUntil(sim.Time(1 << 40))
	if !done {
		t.Fatal("map never completed")
	}
}

func TestFetchPartitionCosts(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	src := rt.Cluster.Workers()[0]
	dst := rt.Cluster.Workers()[1]
	spec := wcSpec([]string{"/x"}, "/o")
	mo := ExecMap(spec, bytes.Repeat([]byte("word list for shuffle cost test\n"), 100_000))
	mo.Node = src

	measure := func(m *MapOutput, to *topology.Node) float64 {
		e := sim.NewEngine()
		c, _ := topology.NewCluster(e, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
		p := costmodel.Default()
		d := hdfs.New(e, c, p.HDFSBlockBytes, p.Replication, 42)
		r2 := NewRuntime(e, c, d, nil, p)
		m2 := *m
		m2.Node = c.Workers()[m.Node.ID-1]
		var at sim.Time
		r2.FetchPartition(&m2, 0, c.Workers()[to.ID-1], func(err error) {
			if err != nil {
				t.Fatalf("fetch failed: %v", err)
			}
			at = e.Now()
		})
		e.Run()
		return at.Seconds()
	}

	mo.InMemory = false
	remote := measure(mo, dst)
	local := measure(mo, src)
	if remote <= local {
		t.Errorf("remote fetch %.4fs not slower than local disk read %.4fs", remote, local)
	}
	mo.InMemory = true
	mem := measure(mo, src)
	if mem != 0 {
		t.Errorf("in-memory same-node fetch cost %.4fs, want 0", mem)
	}
	// In-memory flag does not help a remote reader.
	memRemote := measure(mo, dst)
	if memRemote <= 0 {
		t.Error("remote fetch of in-memory output should still cost network time")
	}
}

func TestEncodePairsAndPartFileName(t *testing.T) {
	got := EncodePairs([]Pair{{Key: []byte("k"), Value: []byte("v")}, {Key: []byte("a"), Value: []byte("2")}})
	if string(got) != "k\tv\na\t2\n" {
		t.Fatalf("EncodePairs = %q", got)
	}
	if PartFileName("/out", 3) != "/out/part-00003" {
		t.Fatalf("PartFileName = %q", PartFileName("/out", 3))
	}
}

func TestGroupSortedYieldsEachKeyOnce(t *testing.T) {
	in := []Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
		{Key: []byte("b"), Value: []byte("3")},
	}
	var keys []string
	var sizes []int
	groupSorted(in, func(k []byte, vs [][]byte) {
		keys = append(keys, string(k))
		sizes = append(sizes, len(vs))
	})
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" || sizes[0] != 2 || sizes[1] != 1 {
		t.Fatalf("groups = %v %v", keys, sizes)
	}
}

// Property: sortPairs is a permutation that yields sorted keys.
func TestQuickSortPairs(t *testing.T) {
	f := func(keys [][]byte) bool {
		ps := make([]Pair, len(keys))
		for i, k := range keys {
			ps[i] = Pair{Key: k, Value: []byte{byte(i)}}
		}
		sortPairs(ps)
		if len(ps) != len(keys) {
			return false
		}
		return sort.SliceIsSorted(ps, func(i, j int) bool {
			return bytes.Compare(ps[i].Key, ps[j].Key) < 0
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
