package mapreduce

import (
	"fmt"
	"strings"
	"time"

	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

// NodeFault is one scripted machine failure: the named worker crashes at
// virtual time At; if RestartAfter > 0 it reboots that long after the crash
// (with empty local disk and fresh devices — HDFS block replicas survive,
// intermediate map output does not).
type NodeFault struct {
	Node         string
	At           time.Duration
	RestartAfter time.Duration
}

func (f NodeFault) String() string {
	if f.RestartAfter > 0 {
		return fmt.Sprintf("%s@%s:%s", f.Node, f.At, f.RestartAfter)
	}
	return fmt.Sprintf("%s@%s", f.Node, f.At)
}

// ParseNodeFaults parses a comma-separated node-fault schedule of the form
//
//	node@at[:restartAfter]
//
// e.g. "node-02@5s" (node-02 dies 5 s in, stays dead) or
// "node-02@5s:20s,node-07@8s" (node-02 reboots 20 s after crashing). An
// empty string yields no faults.
func ParseNodeFaults(s string) ([]NodeFault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []NodeFault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rest, ok := strings.Cut(item, "@")
		if !ok || name == "" {
			return nil, fmt.Errorf("mapreduce: node fault %q: want node@at[:restartAfter]", item)
		}
		atStr, restartStr, hasRestart := strings.Cut(rest, ":")
		at, err := time.ParseDuration(atStr)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("mapreduce: node fault %q: bad crash time %q", item, atStr)
		}
		f := NodeFault{Node: name, At: at}
		if hasRestart {
			d, err := time.ParseDuration(restartStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("mapreduce: node fault %q: bad restart delay %q", item, restartStr)
			}
			f.RestartAfter = d
		}
		out = append(out, f)
	}
	return out, nil
}

// ScheduleNodeFaults arms the scripted machine failures on the runtime's
// virtual clock. Each fault's At is measured from the moment the schedule
// is armed — callers arm it when the cluster is ready, just before
// submitting work, so "node-02@5s" means five seconds into the run
// regardless of how much virtual time framework startup consumed. Only
// worker nodes may fail (the master hosts the simulated RM and NameNode).
func (rt *Runtime) ScheduleNodeFaults(faults []NodeFault) error {
	for _, f := range faults {
		var target *topology.Node
		for _, w := range rt.Cluster.Workers() {
			if w.Name == f.Node {
				target = w
				break
			}
		}
		if target == nil {
			if rt.Cluster.Master().Name == f.Node {
				return fmt.Errorf("mapreduce: node fault on master %q: the master cannot fail", f.Node)
			}
			return fmt.Errorf("mapreduce: node fault on unknown node %q", f.Node)
		}
		at := rt.Eng.Now() + sim.Time(f.At)
		n, restart := target, f.RestartAfter
		rt.Eng.At(at, func() {
			rt.Trace.Add("fault", "node %s CRASHED", n.Name)
			n.Fail()
			if restart > 0 {
				rt.Eng.After(restart, func() {
					rt.Trace.Add("fault", "node %s restarted", n.Name)
					n.Restart()
				})
			}
		})
	}
	return nil
}
