package mapreduce

import (
	"bytes"
	"testing"

	"mrapid/internal/profiler"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

func TestUberEligibleRule(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	rt.Params.HDFSBlockBytes = 1 << 20 // 1 MB block for the size check

	stage := func(name string, files int, size int) []string {
		var names []string
		for i := 0; i < files; i++ {
			n := name + "/" + string(rune('a'+i))
			rt.DFS.PutInstant(n, bytes.Repeat([]byte("x\n"), size/2), rt.Cluster.Workers()[0])
			names = append(names, n)
		}
		return names
	}

	// Small job: 4 maps, 1 reduce, 200 KB total → eligible.
	small := wcSpec(stage("/small", 4, 50<<10), "/out1")
	if ok, err := UberEligible(rt, small); err != nil || !ok {
		t.Fatalf("small job not eligible: %v %v", ok, err)
	}

	// Too many mappers: 10 files.
	many := wcSpec(stage("/many", 10, 1<<10), "/out2")
	if ok, _ := UberEligible(rt, many); ok {
		t.Fatal("10-map job eligible")
	}

	// More than one reducer.
	multiR := wcSpec(stage("/multir", 2, 1<<10), "/out3")
	multiR.NumReduces = 2
	if ok, _ := UberEligible(rt, multiR); ok {
		t.Fatal("2-reduce job eligible")
	}

	// Input at/over one block.
	big := wcSpec(stage("/big", 2, 600<<10), "/out4") // 1.2 MB ≥ 1 MB block
	if ok, _ := UberEligible(rt, big); ok {
		t.Fatal("over-block job eligible")
	}

	// Missing input propagates the error.
	missing := wcSpec([]string{"/nope"}, "/out5")
	if _, err := UberEligible(rt, missing); err == nil {
		t.Fatal("missing input did not error")
	}
}

func TestUberAMProgressAndKill(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, _ := stageWordCountInput(t, rt, 3, 128<<10)
	spec := wcSpec(names, "/out")
	spec.MapRate = 1e5 // ~1.3 s per map so the kill lands mid-run
	app := rt.RM.NewApp("u")
	prof := &profiler.JobProfile{Job: "u", Mode: "uber", SubmittedAt: rt.Eng.Now()}
	am, err := NewUberAM(rt, spec, app, rt.Cluster.Workers()[0], prof)
	if err != nil {
		t.Fatal(err)
	}
	if done, total := am.Progress(); done != 0 || total != 3 {
		t.Fatalf("initial progress = %d/%d", done, total)
	}
	finished := false
	rt.Eng.After(0, func() {
		am.Run(func(_ *profiler.JobProfile, err error) { finished = true })
	})
	// Kill after the first map should prevent completion.
	rt.Eng.RunUntil(rt.Eng.Now().Add(3e9))
	am.Kill()
	am.Kill() // idempotent
	rt.Eng.RunUntil(rt.Eng.Now().Add(1 << 40))
	if finished {
		t.Fatal("killed uber job reported completion")
	}
	rt.RM.Stop()
}
