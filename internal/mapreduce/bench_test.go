package mapreduce

import (
	"bytes"
	"testing"
)

// benchInput builds ~1 MB of text once for the map benchmarks.
var benchInput = bytes.Repeat([]byte("alpha beta gamma delta epsilon zeta eta theta iota kappa\n"), 18_000)

// BenchmarkExecMap measures the real map execution hot path (scan, map,
// partition, sort), the dominant host cost of every experiment.
func BenchmarkExecMap(b *testing.B) {
	spec := wcSpec([]string{"/x"}, "/o")
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo := ExecMap(spec, benchInput)
		if mo.Records == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkExecMapWithCombiner measures the same path with map-side
// combining enabled.
func BenchmarkExecMapWithCombiner(b *testing.B) {
	spec := wcSpec([]string{"/x"}, "/o")
	spec.Combine = spec.Reduce
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExecMap(spec, benchInput)
	}
}

// BenchmarkExecReduce measures the reduce-side k-way merge and grouping
// over 8 pre-sorted map outputs.
func BenchmarkExecReduce(b *testing.B) {
	spec := wcSpec([]string{"/x"}, "/o")
	outputs := make([]*MapOutput, 8)
	for i := range outputs {
		outputs[i] = ExecMap(spec, benchInput)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ExecReduce(spec, 0, outputs); len(out) == 0 {
			b.Fatal("empty reduce")
		}
	}
}

// BenchmarkMergeSortedRuns isolates the k-way merge against re-sorting.
func BenchmarkMergeSortedRuns(b *testing.B) {
	spec := wcSpec([]string{"/x"}, "/o")
	runs := make([][]Pair, 16)
	for i := range runs {
		runs[i] = ExecMap(spec, benchInput).Partitions[0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, scratch := mergeSortedRuns(runs)
		if len(out) == 0 {
			b.Fatal("empty merge")
		}
		if scratch {
			putPairs(out)
		}
	}
}

// BenchmarkMapCacheFingerprint measures the cache key fingerprint on a
// 10 MB split.
func BenchmarkMapCacheFingerprint(b *testing.B) {
	data := bytes.Repeat(benchInput, 10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fingerprint(data)
	}
}
