package mapreduce

import (
	"errors"
	"fmt"

	"mrapid/internal/hdfs"
	"mrapid/internal/profiler"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// UberEligible implements Hadoop's own definition of a job small enough for
// Uber mode, as the paper quotes it: "a small job has less than 10 mappers,
// only 1 reducer, and the input size is less than the size of one HDFS
// block". MRapid deliberately does not rely on this rule — its decision
// maker compares estimated completion times instead — but the stock runtime
// exposes it so callers can reproduce Hadoop's behaviour.
func UberEligible(rt *Runtime, spec *JobSpec) (bool, error) {
	splits, err := rt.Splits(spec.InputFiles)
	if err != nil {
		return false, err
	}
	if len(splits) >= 10 || spec.NumReduces > 1 {
		return false, nil
	}
	var total int64
	for _, s := range splits {
		total += s.Length
	}
	return total < rt.Params.HDFSBlockBytes, nil
}

// UberAM is the stock Uber mode: every map task and the reduce run inside
// the AM's own JVM, strictly sequentially, and intermediate data always
// spills to the AM node's local disk. There is no container request, no
// per-task JVM start, and no network shuffle — but also no parallelism and
// full disk traffic, the two weaknesses the U+ mode removes.
type UberAM struct {
	rt     *Runtime
	spec   *JobSpec
	app    *yarn.App
	amNode *topology.Node
	prof   *profiler.JobProfile

	splits         []*hdfs.Split
	outputs        []*MapOutput
	mapAttempts    map[int]int
	reduceAttempts map[int]int
	killed         bool
	done           func(*profiler.JobProfile, error)

	// OnMapComplete, when set before Run, observes every finished map task.
	OnMapComplete func(*profiler.TaskProfile)
}

// NewUberAM prepares a stock-Uber AM on the node where the AM container
// runs.
func NewUberAM(rt *Runtime, spec *JobSpec, app *yarn.App, amNode *topology.Node, prof *profiler.JobProfile) (*UberAM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	splits, err := rt.Splits(spec.InputFiles)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mapreduce: job %q has no input splits", spec.Name)
	}
	prof.NumMaps = len(splits)
	prof.NumReduces = spec.NumReduces
	prof.NumWorkers = len(rt.Cluster.Workers())
	prof.NumContainers = 1
	return &UberAM{
		rt: rt, spec: spec, app: app, amNode: amNode, prof: prof, splits: splits,
		mapAttempts: make(map[int]int), reduceAttempts: make(map[int]int),
	}, nil
}

// Run executes the whole job sequentially in the AM container.
func (am *UberAM) Run(done func(*profiler.JobProfile, error)) {
	if done == nil {
		panic("mapreduce: UberAM.Run needs a completion callback")
	}
	am.done = done
	am.app.OnContainerLost = func(*yarn.Container) { am.Abort(ErrAMLost) }
	am.app.Span = am.prof.Span
	am.runMap(0)
}

// Abort ends the job with err: everything — tasks, intermediate data, the
// AM itself — lived in the one AM container, so losing its node loses the
// whole attempt.
func (am *UberAM) Abort(err error) {
	if am.killed {
		return
	}
	am.finish(err)
}

// Kill abandons the job.
func (am *UberAM) Kill() {
	if am.killed {
		return
	}
	am.killed = true
	am.rt.RM.KillApp(am.app)
}

// Progress reports completed and total map counts.
func (am *UberAM) Progress() (completed, total int) {
	return len(am.outputs), len(am.splits)
}

func (am *UberAM) runMap(i int) {
	if am.killed {
		return
	}
	if i == len(am.splits) {
		am.prof.MapsDoneAt = am.rt.Eng.Now()
		am.runReduce()
		return
	}
	if am.prof.FirstTaskAt == 0 {
		am.prof.FirstTaskAt = am.rt.Eng.Now()
	}
	s := am.splits[i]
	opts := MapTaskOptions{SpillToDisk: true, Attempt: am.mapAttempts[s.Index], Parent: am.prof.Span}
	am.rt.RunMapTask(am.spec, s, am.amNode, opts,
		func(mo *MapOutput, tp *profiler.TaskProfile, err error) {
			if am.killed {
				return
			}
			var ae *AttemptError
			if errors.As(err, &ae) {
				// Sequential uber retries the task in place.
				am.prof.Add(tp)
				am.mapAttempts[s.Index]++
				if am.mapAttempts[s.Index] >= am.rt.Params.MaxTaskAttempts {
					am.finish(fmt.Errorf("mapreduce: map %d failed %d attempts: %w",
						s.Index, am.mapAttempts[s.Index], err))
					return
				}
				am.runMap(i)
				return
			}
			if err != nil {
				am.finish(err)
				return
			}
			am.prof.Add(tp)
			am.outputs = append(am.outputs, mo)
			if am.OnMapComplete != nil {
				am.OnMapComplete(tp)
			}
			am.runMap(i + 1)
		})
}

func (am *UberAM) runReduce() {
	// The reduce reads each spilled map output back from the local disk
	// (FetchPartition prices a same-node fetch as a disk read), then runs
	// the partitions in order.
	remaining := len(am.outputs) * am.spec.NumReduces
	if remaining == 0 {
		am.runReducePartitions(0)
		return
	}
	for _, mo := range am.outputs {
		for p := 0; p < am.spec.NumReduces; p++ {
			am.rt.ShuffleFetch(am.prof.Span, mo, p, am.amNode, func(err error) {
				if am.killed {
					return
				}
				if err != nil {
					// Uber outputs live on the AM's own node; losing them
					// means the AM node itself died, which kills the attempt.
					am.Abort(err)
					return
				}
				remaining--
				if remaining == 0 {
					am.runReducePartitions(0)
				}
			})
		}
	}
}

func (am *UberAM) runReducePartitions(p int) {
	if am.killed {
		return
	}
	if p == am.spec.NumReduces {
		am.finish(nil)
		return
	}
	ropts := ReduceOptions{Attempt: am.reduceAttempts[p], Parent: am.prof.Span}
	am.rt.RunReduceTask(am.spec, p, ropts, am.outputs, am.amNode, func(tp *profiler.TaskProfile, err error) {
		if am.killed {
			return
		}
		var ae *AttemptError
		if errors.As(err, &ae) {
			am.prof.Add(tp)
			am.reduceAttempts[p]++
			if am.reduceAttempts[p] >= am.rt.Params.MaxTaskAttempts {
				am.finish(fmt.Errorf("mapreduce: reduce %d failed %d attempts: %w",
					p, am.reduceAttempts[p], err))
				return
			}
			am.runReducePartitions(p)
			return
		}
		if err != nil {
			am.finish(err)
			return
		}
		am.prof.Add(tp)
		am.runReducePartitions(p + 1)
	})
}

func (am *UberAM) finish(err error) {
	if am.killed {
		return
	}
	am.killed = true
	am.prof.DoneAt = am.rt.Eng.Now()
	am.rt.RM.FinishApp(am.app)
	am.done(am.prof, err)
}
