package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/metrics"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// Runtime bundles the substrate a job executes on. One Runtime corresponds
// to one simulated cluster with its filesystem and resource manager.
type Runtime struct {
	Eng     *sim.Engine
	Cluster *topology.Cluster
	DFS     *hdfs.DFS
	RM      *yarn.RM
	Params  costmodel.Params

	// MapCache, when non-nil, memoizes pure ExecMap results across runs
	// over byte-identical inputs (see MapCache). It changes host CPU time
	// only, never simulated results.
	MapCache *MapCache

	// Faults, when non-nil, injects deterministic task-attempt failures;
	// ApplicationMasters retry up to Params.MaxTaskAttempts.
	Faults *FaultInjector

	// Trace, when non-nil, records task lifecycle events and spans.
	Trace *trace.Log

	// Reg, when non-nil, receives task-duration and shuffle-byte
	// histograms and task counters. It must be thread-safe: completions
	// run on the engine goroutine, but nothing stops future callers from
	// observing from worker-pool tasks.
	Reg *metrics.Registry

	// Intermediates, when non-nil, holds intra-query intermediate tables
	// outside HDFS (see IntermediateStore): jobs marked
	// spec.IntermediateOutput commit reduce outputs there, and Splits /
	// ReadSplit resolve inputs against it before falling through to HDFS.
	Intermediates *IntermediateStore

	// Shuffle, when non-nil, is the per-node shuffle service
	// (internal/shuffle): AMs register committed map outputs with it and
	// reducers fetch one consolidated result per (node, partition) through
	// it instead of one FetchPartition per (map, partition). Nil keeps the
	// stock per-map shuffle.
	Shuffle ShuffleProvider

	// shuffleInFlight is the byte-count of shuffle fetches currently
	// running (see ShuffleBytesInFlight).
	shuffleInFlight int64

	// Workers opts into parallel host-side execution of the pure map and
	// reduce computations: 0 or 1 keeps the fully sequential path, a value
	// > 1 sizes a bounded worker pool of real OS threads, and a negative
	// value asks for DefaultWorkers (GOMAXPROCS). The virtual timeline is
	// byte-for-byte identical across all settings — the pool changes host
	// wall-clock time only. Set before the first task runs.
	Workers int

	pool *WorkerPool

	// h caches pre-resolved metric handles for the per-attempt and
	// per-fetch paths; see handles().
	h rtHandles
}

// rtHandles holds the runtime's pre-resolved metric handles: the four
// kind×outcome task-attempt counters, the two task-duration histograms, and
// the transport/kind-keyed shuffle series (bound on first sight of each
// label value). Reg is a public field assigned after construction, so
// handles() rebinds whenever it changes.
type rtHandles struct {
	src           *metrics.Registry
	mapOK         metrics.Counter
	mapFailed     metrics.Counter
	reduceOK      metrics.Counter
	reduceFailed  metrics.Counter
	mapSeconds    metrics.Observer
	reduceSeconds metrics.Observer
	shuffleBytes  map[string]metrics.Observer // by transport
	shuffleFetch  map[string]metrics.Counter  // by kind+transport
}

func (rt *Runtime) handles() *rtHandles {
	if rt.h.src != rt.Reg {
		rt.h = rtHandles{
			src:           rt.Reg,
			mapOK:         rt.Reg.CounterHandle("mapreduce_task_attempts_total", "kind", "map", "outcome", "ok"),
			mapFailed:     rt.Reg.CounterHandle("mapreduce_task_attempts_total", "kind", "map", "outcome", "failed"),
			reduceOK:      rt.Reg.CounterHandle("mapreduce_task_attempts_total", "kind", "reduce", "outcome", "ok"),
			reduceFailed:  rt.Reg.CounterHandle("mapreduce_task_attempts_total", "kind", "reduce", "outcome", "failed"),
			mapSeconds:    rt.Reg.HistogramHandle("mapreduce_task_seconds", "kind", "map"),
			reduceSeconds: rt.Reg.HistogramHandle("mapreduce_task_seconds", "kind", "reduce"),
			shuffleBytes:  make(map[string]metrics.Observer),
			shuffleFetch:  make(map[string]metrics.Counter),
		}
	}
	return &rt.h
}

// workerPool lazily builds the pool selected by Workers. Called only from
// the engine goroutine, like every other Runtime method.
func (rt *Runtime) workerPool() *WorkerPool {
	if rt.Workers >= 0 && rt.Workers <= 1 {
		return nil
	}
	if rt.pool == nil {
		rt.pool = NewWorkerPool(rt.Workers) // Workers < 0 → DefaultWorkers
	}
	return rt.pool
}

// CloseWorkers shuts the worker pool down (a no-op when none was started).
// Call it when a Runtime with Workers > 1 is discarded.
func (rt *Runtime) CloseWorkers() {
	if rt.pool != nil {
		rt.pool.Close()
		rt.pool = nil
	}
}

// NewRuntime wires a runtime together.
func NewRuntime(eng *sim.Engine, cluster *topology.Cluster, dfs *hdfs.DFS, rm *yarn.RM, params costmodel.Params) *Runtime {
	return &Runtime{Eng: eng, Cluster: cluster, DFS: dfs, RM: rm, Params: params}
}

// AMResource returns the ApplicationMaster container request. It comes from
// the job configuration (Params), never from any particular node's shape:
// deriving it from Workers()[0] gives the wrong answer on heterogeneous
// clusters.
func (rt *Runtime) AMResource() topology.Resource {
	return topology.Resource{VCores: rt.Params.AMContainerVCores, MemoryMB: rt.Params.AMContainerMB}
}

// MapOutput is the materialized result of one map task: real intermediate
// pairs bucketed by reduce partition, each bucket sorted by key.
type MapOutput struct {
	Split      *hdfs.Split
	Node       *topology.Node
	Partitions [][]Pair
	PartBytes  []int64
	TotalBytes int64
	Records    int64
	// InMemory marks outputs held in the U+ memory cache; their reduce-side
	// read is free.
	InMemory bool

	// NodeEpoch is the hosting node's boot generation when the output was
	// produced. Map output lives on the task node's local disk (or the AM
	// heap), not in HDFS — if the node has since crashed, the output is gone
	// and shuffle fetches against it fail.
	NodeEpoch int
}

// Available reports whether the output can still be fetched (its node is up
// and has not rebooted since the map ran).
func (mo *MapOutput) Available() bool { return mo.Node.AliveEpoch(mo.NodeEpoch) }

// ErrOutputLost is reported by FetchPartition when a completed map's output
// vanished with its node — Hadoop's too-many-fetch-failures signal, which
// makes the AM re-execute the map.
var ErrOutputLost = errors.New("mapreduce: map output lost with its node")

// ErrAMLost reports that a job's ApplicationMaster died with its node. The
// submission framework treats it as retryable: the job is relaunched from
// scratch up to MaxAMAttempts times (yarn.resourcemanager.am.max-attempts).
var ErrAMLost = errors.New("mapreduce: application master lost with its node")

// ExecMap runs the map function for real over split data: scan records,
// map, partition, sort each partition, and optionally combine. It is pure
// computation — the caller charges the virtual clock separately.
func ExecMap(spec *JobSpec, data []byte) *MapOutput {
	return ExecMapFile(spec, "", data)
}

// ExecMapFile is ExecMap for a named input file, honoring spec.MapFor.
func ExecMapFile(spec *JobSpec, file string, data []byte) *MapOutput {
	nred := spec.NumReduces
	part := spec.partitioner()
	out := &MapOutput{
		Partitions: make([][]Pair, nred),
		PartBytes:  make([]int64, nred),
	}
	var emit Emit
	if nred == 1 {
		// Single-reduce short jobs (the paper's case) skip partitioning.
		emit = func(k, v []byte) {
			out.Partitions[0] = append(out.Partitions[0], Pair{Key: k, Value: v})
		}
	} else {
		emit = func(k, v []byte) {
			p := part(k, nred)
			if p < 0 || p >= nred {
				panic(fmt.Sprintf("mapreduce: partitioner returned %d of %d", p, nred))
			}
			out.Partitions[p] = append(out.Partitions[p], Pair{Key: k, Value: v})
		}
	}
	mapFn := spec.Map
	if spec.MapFor != nil {
		if fn := spec.MapFor(file); fn != nil {
			mapFn = fn
		}
	}
	spec.Format.Scan(data, func(k, v []byte) {
		out.Records++
		mapFn(k, v, emit)
	})
	for p := range out.Partitions {
		sortPairs(out.Partitions[p])
		if spec.Combine != nil {
			raw := out.Partitions[p]
			out.Partitions[p] = combine(spec.Combine, raw)
			putPairs(raw) // pre-combine scratch, replaced and unreferenced
		}
		var n int64
		for _, pr := range out.Partitions[p] {
			n += pr.Bytes()
		}
		out.PartBytes[p] = n
		out.TotalBytes += n
	}
	return out
}

// comparePairs orders pairs by key, breaking key ties by value so the order
// — and therefore every downstream byte — is fully deterministic without
// needing a stable sort.
func comparePairs(a, b Pair) int {
	if c := bytes.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	return bytes.Compare(a.Value, b.Value)
}

// sortPairs orders pairs with comparePairs. Sorting intermediate data is the
// hottest real computation in the whole simulator, hence slices.SortFunc
// (pdqsort, no reflection-based swaps).
func sortPairs(ps []Pair) {
	slices.SortFunc(ps, comparePairs)
}

// mergeSortedRuns merges already-sorted pair runs into one sorted slice via
// a k-way heap merge — O(n log k) instead of re-sorting everything, which
// matters when a reduce pulls dozens of pre-sorted map outputs. The heap is
// a plain [][]Pair with hand-rolled sifts (container/heap would box every
// run through an interface), and the output draws on the pair pool.
//
// The second result reports whether the returned slice is pool scratch the
// caller owns (and should putPairs once done) — false when it aliases one
// of the input runs or is nil.
func mergeSortedRuns(runs [][]Pair) ([]Pair, bool) {
	var total int
	var nonEmpty int
	var last []Pair
	for _, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
			last = r
		}
	}
	if nonEmpty == 0 {
		return nil, false
	}
	if nonEmpty == 1 {
		return last, false
	}
	h := getRuns(nonEmpty)
	for _, r := range runs {
		if len(r) > 0 {
			h = append(h, r)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftRun(h, i)
	}
	out := getPairs(total)
	for len(h) > 0 {
		r := h[0]
		out = append(out, r[0])
		if len(r) > 1 {
			h[0] = r[1:]
		} else {
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
		}
		siftRun(h, 0)
	}
	putRuns(h)
	return out, true
}

// siftRun restores the min-heap property at index i of a heap of runs
// ordered by their head pair.
func siftRun(h [][]Pair, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && comparePairs(h[r][0], h[l][0]) < 0 {
			m = r
		}
		if comparePairs(h[m][0], h[i][0]) >= 0 {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// combine collapses sorted runs of equal keys through the combiner. The
// result is freshly built (seeded from the pair pool, never put back by
// combine itself — call sites retain it); the input is left untouched.
func combine(c ReduceFunc, in []Pair) []Pair {
	out := getPairs(len(in))
	emit := func(k, v []byte) { out = append(out, Pair{Key: k, Value: v}) }
	groupSorted(in, func(key []byte, values [][]byte) { c(key, values, emit) })
	sortPairs(out)
	return out
}

// groupSorted walks key-sorted pairs and yields each distinct key with its
// values. The values slice is scratch reused between keys (and pooled
// across calls): consumers — reducers and combiners — must not retain it
// past the yield, the same contract Hadoop's reduce iterable has. Retaining
// individual value byte slices is fine.
func groupSorted(in []Pair, yield func(key []byte, values [][]byte)) {
	values := getVals()
	i := 0
	for i < len(in) {
		j := i + 1
		for j < len(in) && bytes.Equal(in[j].Key, in[i].Key) {
			j++
		}
		values = values[:0]
		for k := i; k < j; k++ {
			values = append(values, in[k].Value)
		}
		yield(in[i].Key, values)
		i = j
	}
	putVals(values)
}

// spillCount reports how many spill files a map output of n bytes produces
// given the sort buffer size.
func spillCount(n, sortBuf int64) int {
	if n <= 0 {
		return 0
	}
	c := int((n + sortBuf - 1) / sortBuf)
	if c < 1 {
		c = 1
	}
	return c
}

// MapTaskOptions control how a map task charges its output I/O.
type MapTaskOptions struct {
	// SpillToDisk charges the spill (and merge, when the output exceeds the
	// sort buffer) to the node's disk. The U+ mode turns this off while the
	// output fits its memory cache.
	SpillToDisk bool

	// KeepInMemory, when non-nil, is consulted once the map's output size is
	// known; returning true overrides SpillToDisk and stores the output in
	// memory. The U+ mode uses this to admit outputs into its cache budget.
	KeepInMemory func(outBytes int64) bool

	// Attempt is the retry ordinal of this task execution (0 = first).
	Attempt int

	// Parent is the trace span the task's spans nest under (the owning
	// job's root span); 0 when untraced.
	Parent trace.SpanID
}

// keepInMemory resolves the effective storage decision for an output size.
func (o MapTaskOptions) keepInMemory(outBytes int64) bool {
	if o.KeepInMemory != nil {
		return o.KeepInMemory(outBytes)
	}
	return !o.SpillToDisk
}

// RunMapTask executes one map task on a node: read the split from HDFS
// (locality-priced), run the map function on a core, and spill the output.
// done receives the materialized output together with the task profile.
func (rt *Runtime) RunMapTask(spec *JobSpec, split *hdfs.Split, node *topology.Node, opts MapTaskOptions, done func(*MapOutput, *profiler.TaskProfile, error)) {
	if done == nil {
		panic("mapreduce: RunMapTask needs a completion callback")
	}
	tp := &profiler.TaskProfile{
		Kind:      profiler.MapTask,
		Index:     split.Index,
		Node:      node.Name,
		Started:   rt.Eng.Now(),
		NodeLocal: split.HostedOn(node),
		Attempt:   opts.Attempt,
	}
	// The task process dies silently if its node crashes: engine events
	// cannot be cancelled, so every continuation below re-checks the boot
	// generation captured here and abandons the task (no done, no core
	// release — the reborn node starts with fresh devices; its spans stay
	// open, which the analyzer and exporters read as "abandoned"). The AM
	// learns of the loss from the RM's lost-container report instead.
	epoch := node.Epoch()
	comp := "task/" + node.Name
	var span, readSpan trace.SpanID
	if rt.Trace != nil {
		span = rt.Trace.StartSpan(opts.Parent, comp, fmt.Sprintf("map-%d", split.Index), "map",
			trace.A("attempt", fmt.Sprint(opts.Attempt)),
			trace.A("split", split.File))
		readSpan = rt.Trace.StartSpan(span, comp, "read", "map")
	}
	readStart := rt.Eng.Now()
	rt.ReadSplit(split, node, func(data []byte, err error) {
		if !node.AliveEpoch(epoch) {
			return
		}
		if err != nil {
			if rt.Trace != nil {
				rt.Trace.EndSpan(readSpan, trace.A("error", err.Error()))
				rt.Trace.EndSpan(span, trace.A("error", err.Error()))
			}
			done(nil, tp, err)
			return
		}
		tp.ReadDur = rt.Eng.Now().Sub(readStart)
		if rt.Trace != nil {
			rt.Trace.EndSpan(readSpan, trace.A("bytes", fmt.Sprint(len(data))))
		}
		tp.InputBytes = int64(len(data))
		if fail, point := rt.Faults.MapAttemptFor(spec.OutputFile, split.Index, opts.Attempt); fail {
			// The attempt crashes partway through its compute phase: charge
			// the core for the work done before the death, then surface the
			// failure for the AM to reschedule.
			node.Cores.Acquire(1, func() {
				if !node.AliveEpoch(epoch) {
					return
				}
				partial := time.Duration(float64(spec.MapComputeTime(split, int64(len(data)), node)) * point)
				computeStart := rt.Eng.Now()
				rt.Eng.After(partial, func() {
					if !node.AliveEpoch(epoch) {
						return
					}
					tp.ComputeDur = rt.Eng.Now().Sub(computeStart)
					node.Cores.Release(1)
					tp.Failed = true
					tp.Ended = rt.Eng.Now()
					rt.Faults.FailNow()
					if rt.Trace != nil {
						rt.Trace.Add("task", "map %d attempt %d FAILED on %s", split.Index, opts.Attempt, node.Name)
						rt.Trace.SpanSince(span, comp, "compute", "map", computeStart)
						rt.Trace.EndSpan(span, trace.A("failed", "true"))
					}
					rt.handles().mapFailed.Inc()
					done(nil, tp, &AttemptError{Kind: "map", Index: split.Index, Attempt: opts.Attempt})
				})
			})
			return
		}
		// Dispatch the pure map computation as soon as the bytes are known:
		// on the worker pool it overlaps with other tasks (and with the
		// engine itself); on the sequential path Async runs it inline here.
		// Either way the virtual timeline below is identical.
		fut := Async(rt.workerPool(), func() *MapOutput {
			return rt.execMapCached(spec, split, data)
		})
		node.Cores.Acquire(1, func() {
			if !node.AliveEpoch(epoch) {
				fut.Wait() // drain the host-side computation
				return
			}
			// Charge the map function first — its cost depends only on the
			// input size — and await the real result when the output-sized
			// sort charge needs it. The await point is a fixed event on the
			// virtual timeline, so parallelism never reorders anything.
			compute := spec.MapComputeTime(split, int64(len(data)), node)
			computeStart := rt.Eng.Now()
			rt.Eng.After(compute, func() {
				mo := fut.Wait()
				if !node.AliveEpoch(epoch) {
					return
				}
				mo.Split = split
				mo.Node = node
				mo.NodeEpoch = epoch
				mo.InMemory = opts.keepInMemory(mo.TotalBytes)
				tp.Records = mo.Records
				tp.OutputBytes = mo.TotalBytes
				// Sorting/serializing the output buffer is CPU charged with
				// the map function.
				sort := time.Duration(float64(mo.TotalBytes) / (rt.Params.SortCPUBytesPerSec * node.Type.CPUSpeed) * float64(time.Second))
				rt.Eng.After(sort, func() {
					if !node.AliveEpoch(epoch) {
						return
					}
					tp.ComputeDur = rt.Eng.Now().Sub(computeStart)
					node.Cores.Release(1)
					if rt.Trace != nil {
						rt.Trace.SpanSince(span, comp, "compute", "map", computeStart,
							trace.A("records", fmt.Sprint(mo.Records)))
					}
					rt.spillPhase(mo, node, epoch, span, tp, func() {
						tp.Ended = rt.Eng.Now()
						if rt.Trace != nil {
							rt.Trace.Add("task", "map %d attempt %d done on %s (in=%d out=%d mem=%v)",
								split.Index, opts.Attempt, node.Name, tp.InputBytes, tp.OutputBytes, mo.InMemory)
							rt.Trace.EndSpan(span, trace.A("out_bytes", fmt.Sprint(mo.TotalBytes)))
						}
						h := rt.handles()
						h.mapOK.Inc()
						h.mapSeconds.Observe(tp.Elapsed().Seconds())
						done(mo, tp, nil)
					})
				})
			})
		})
	})
}

// execMapCached runs ExecMapFile through the MapCache. It is called from
// worker-pool goroutines, possibly concurrently for the same key (e.g. the
// two speculative modes mapping the same split); the cache's sharded locks
// make that safe, and the duplicate store deduplicates.
func (rt *Runtime) execMapCached(spec *JobSpec, split *hdfs.Split, data []byte) *MapOutput {
	if rt.MapCache != nil {
		if hit, ok := rt.MapCache.lookup(spec, split.File, split.Offset, data); ok {
			return hit
		}
	}
	mo := ExecMapFile(spec, split.File, data)
	if rt.MapCache != nil {
		rt.MapCache.store(spec, split.File, split.Offset, data, mo)
	}
	return mo
}

// spillPhase charges the spill and merge sub-phases of Eq. 1: the spill
// writes s^o once; when the output needed multiple spills, the merge pass
// reads everything back and writes it again.
func (rt *Runtime) spillPhase(mo *MapOutput, node *topology.Node, epoch int, parent trace.SpanID, tp *profiler.TaskProfile, done func()) {
	comp := "task/" + node.Name
	if mo.InMemory || mo.TotalBytes == 0 {
		tp.Spills = 0
		rt.Eng.After(0, func() {
			if !node.AliveEpoch(epoch) {
				return
			}
			done()
		})
		return
	}
	tp.Spills = spillCount(mo.TotalBytes, rt.Params.SortBufferBytes)
	spillStart := rt.Eng.Now()
	node.Disk.Use(mo.TotalBytes, func() {
		if !node.AliveEpoch(epoch) {
			return
		}
		tp.SpillDur = rt.Eng.Now().Sub(spillStart)
		if rt.Trace != nil {
			rt.Trace.SpanSince(parent, comp, "spill", "map", spillStart,
				trace.A("spills", fmt.Sprint(tp.Spills)))
		}
		if tp.Spills <= 1 {
			done()
			return
		}
		mergeStart := rt.Eng.Now()
		node.Disk.Use(mo.TotalBytes, func() { // read spills back
			node.Disk.Use(mo.TotalBytes, func() { // write merged file
				if !node.AliveEpoch(epoch) {
					return
				}
				tp.MergeDur = rt.Eng.Now().Sub(mergeStart)
				if rt.Trace != nil {
					rt.Trace.SpanSince(parent, comp, "merge", "map", mergeStart)
				}
				done()
			})
		})
	})
}

// shuffleByteBuckets are the upper bounds for the shuffle-size histogram:
// powers of ~4 from 1 KiB to 1 GiB.
var shuffleByteBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// ShuffleTransport classifies how a reduce-side read of mo actually moves
// on dst: straight from the heap (U+ memory cache on the same node), off
// the local disk, or across the network. It labels mapreduce_shuffle_bytes
// so in-memory cache reads are distinguishable from real shuffle traffic.
func ShuffleTransport(mo *MapOutput, dst *topology.Node) string {
	switch {
	case mo.InMemory && mo.Node == dst:
		return "memory"
	case mo.Node == dst:
		return "disk"
	default:
		return "network"
	}
}

// AddShuffleInFlight adjusts the count of shuffle bytes currently on the
// move — fetch starts add, completions subtract. Exported for the shuffle
// service, which charges its consolidated wire bytes through the same
// gauge. It moves only on the engine goroutine.
func (rt *Runtime) AddShuffleInFlight(n int64) { rt.shuffleInFlight += n }

// ShuffleBytesInFlight reports the bytes of shuffle fetches currently in
// progress, the gauge the flight recorder samples.
func (rt *Runtime) ShuffleBytesInFlight() int64 { return rt.shuffleInFlight }

// ObserveShuffle records one completed shuffle fetch: n bytes into the
// transport-labeled mapreduce_shuffle_bytes histogram plus a tick of the
// mapreduce_shuffle_fetch_total counter. kind is "permap" for the stock
// per-(map, partition) fetch and "consolidated" for the shuffle service's
// per-(node, partition) fetch.
func (rt *Runtime) ObserveShuffle(kind, transport string, n int64) {
	if rt.Reg == nil {
		return
	}
	h := rt.handles()
	ob, ok := h.shuffleBytes[transport]
	if !ok {
		name := metrics.With("mapreduce_shuffle_bytes", "transport", transport)
		rt.Reg.Define(name, shuffleByteBuckets)
		ob = rt.Reg.HistogramHandle(name)
		h.shuffleBytes[transport] = ob
	}
	ob.Observe(float64(n))
	fetch, ok := h.shuffleFetch[kind+"/"+transport]
	if !ok {
		fetch = rt.Reg.CounterHandle("mapreduce_shuffle_fetch_total", "kind", kind, "transport", transport)
		h.shuffleFetch[kind+"/"+transport] = fetch
	}
	fetch.Inc()
}

// ShuffleFetch is FetchPartition with observability: the fetch is recorded
// as a shuffle span under parent and its size lands in the shuffle-bytes
// histogram. AMs use this; FetchPartition remains the raw primitive.
func (rt *Runtime) ShuffleFetch(parent trace.SpanID, mo *MapOutput, part int, dst *topology.Node, done func(error)) {
	transport := ShuffleTransport(mo, dst)
	var span trace.SpanID
	if rt.Trace != nil {
		span = rt.Trace.StartSpan(parent, "task/"+dst.Name,
			fmt.Sprintf("fetch map-%d.p%d", mo.Split.Index, part), "shuffle",
			trace.A("from", mo.Node.Name),
			trace.A("transport", transport),
			trace.A("bytes", fmt.Sprint(mo.PartBytes[part])))
	}
	rt.AddShuffleInFlight(mo.PartBytes[part])
	rt.FetchPartition(mo, part, dst, func(err error) {
		rt.AddShuffleInFlight(-mo.PartBytes[part])
		if err != nil {
			if span != 0 {
				rt.Trace.EndSpan(span, trace.A("error", err.Error()))
			}
		} else {
			if span != 0 {
				rt.Trace.EndSpan(span)
			}
			rt.ObserveShuffle("permap", transport, mo.PartBytes[part])
		}
		done(err)
	})
}

// FetchPartition models the reduce-side fetch of one map output partition:
// a local disk read when the output sits on the reducer's node, a free
// access for U+ in-memory outputs, or a full network transfer (source disk,
// both NICs, core switch across racks) otherwise. done receives
// ErrOutputLost when the map output's node died before — or while — the
// fetch ran (Hadoop's fetch failure, which the AM answers by re-executing
// the map).
func (rt *Runtime) FetchPartition(mo *MapOutput, part int, dst *topology.Node, done func(error)) {
	if done == nil {
		panic("mapreduce: FetchPartition needs a completion callback")
	}
	if !mo.Available() {
		rt.Eng.After(rt.Params.RPCLatency, func() { done(ErrOutputLost) })
		return
	}
	n := mo.PartBytes[part]
	if n == 0 {
		rt.Eng.After(0, func() { done(nil) })
		return
	}
	if mo.InMemory && mo.Node == dst {
		// U+ memory cache: the reduce reads straight from the heap.
		rt.Eng.After(0, func() { done(nil) })
		return
	}
	// A fetch in flight when the source node dies is a failed fetch: the
	// completion re-checks availability (the timing still charges the
	// devices, matching a connection that drops partway through).
	if mo.Node == dst {
		dst.Disk.Use(n, func() {
			if !mo.Available() {
				done(ErrOutputLost)
				return
			}
			done(nil)
		})
		return
	}
	pending := 0
	finished := false
	complete := func() {
		pending--
		if pending == 0 && finished {
			if !mo.Available() {
				done(ErrOutputLost)
				return
			}
			done(nil)
		}
	}
	pending++
	mo.Node.Disk.Use(n, complete)
	pending++
	mo.Node.NIC.Use(n, complete)
	pending++
	dst.NIC.Use(n, complete)
	if mo.Node.Rack != dst.Rack {
		pending++
		rt.Cluster.CoreSwitch.Use(n, complete)
	}
	finished = true
}

// ExecReduce runs the reduce function for real over the fetched partitions:
// merge, group by key, reduce. Pure computation.
func ExecReduce(spec *JobSpec, part int, outputs []*MapOutput) []Pair {
	runs := getRuns(len(outputs))
	for _, mo := range outputs {
		runs = append(runs, mo.Partitions[part])
	}
	merged, scratch := mergeSortedRuns(runs)
	putRuns(runs)
	var result []Pair
	emit := func(k, v []byte) { result = append(result, Pair{Key: k, Value: v}) }
	groupSorted(merged, func(key []byte, values [][]byte) { spec.Reduce(key, values, emit) })
	if scratch {
		putPairs(merged)
	}
	return result
}

// EncodePairs serializes output pairs as tab-separated lines, the shape of
// TextOutputFormat, so job output is a plain inspectable HDFS file. The
// buffer is sized exactly up front — output encoding runs once per reduce
// over everything the task produced, so the doubling-growth copies a
// bytes.Buffer would do are pure waste.
func EncodePairs(ps []Pair) []byte {
	var n int
	for _, p := range ps {
		n += len(p.Key) + len(p.Value) + 2
	}
	buf := make([]byte, 0, n)
	for _, p := range ps {
		buf = append(buf, p.Key...)
		buf = append(buf, '\t')
		buf = append(buf, p.Value...)
		buf = append(buf, '\n')
	}
	return buf
}

// PartFileName returns the output file for one reduce partition.
func PartFileName(outputFile string, part int) string {
	return fmt.Sprintf("%s/part-%05d", outputFile, part)
}

// ReduceOptions control a reduce task execution.
type ReduceOptions struct {
	// Attempt is the retry ordinal (0 = first).
	Attempt int
	// Parent is the trace span the task's spans nest under; 0 when
	// untraced.
	Parent trace.SpanID
}

// RunReducePhase executes reduce partition part on node. It is
// RunReduceTask without tracing, kept for callers that predate spans.
func (rt *Runtime) RunReducePhase(spec *JobSpec, part, attempt int, outputs []*MapOutput, node *topology.Node, done func(*profiler.TaskProfile, error)) {
	rt.RunReduceTask(spec, part, ReduceOptions{Attempt: attempt}, outputs, node, done)
}

// RunReduceTask executes reduce partition part on node: merge-sort CPU,
// the reduce function, and the HDFS write of the output. Fetches must have
// completed already. done fires when the output file is durable.
func (rt *Runtime) RunReduceTask(spec *JobSpec, part int, opts ReduceOptions, outputs []*MapOutput, node *topology.Node, done func(*profiler.TaskProfile, error)) {
	if done == nil {
		panic("mapreduce: RunReduceTask needs a completion callback")
	}
	attempt := opts.Attempt
	tp := &profiler.TaskProfile{
		Kind:    profiler.ReduceTask,
		Index:   part,
		Node:    node.Name,
		Started: rt.Eng.Now(),
		Attempt: attempt,
	}
	comp := "task/" + node.Name
	var span trace.SpanID
	if rt.Trace != nil {
		span = rt.Trace.StartSpan(opts.Parent, comp, fmt.Sprintf("reduce-%d", part), "reduce",
			trace.A("attempt", fmt.Sprint(attempt)))
	}
	var in int64
	for _, mo := range outputs {
		in += mo.PartBytes[part]
	}
	tp.InputBytes = in
	// Abandon silently if the node dies mid-phase (see RunMapTask): the AM
	// hears about the lost container from the RM, never from the task.
	epoch := node.Epoch()
	if fail, point := rt.Faults.ReduceAttemptFor(spec.OutputFile, part, attempt); fail {
		node.Cores.Acquire(1, func() {
			if !node.AliveEpoch(epoch) {
				return
			}
			partial := time.Duration(float64(spec.ReduceComputeTime(in, node)) * point)
			computeStart := rt.Eng.Now()
			rt.Eng.After(partial, func() {
				if !node.AliveEpoch(epoch) {
					return
				}
				tp.ComputeDur = rt.Eng.Now().Sub(computeStart)
				node.Cores.Release(1)
				tp.Failed = true
				tp.Ended = rt.Eng.Now()
				rt.Faults.FailNow()
				if rt.Trace != nil {
					rt.Trace.SpanSince(span, comp, "compute", "reduce", computeStart)
					rt.Trace.EndSpan(span, trace.A("failed", "true"))
				}
				rt.handles().reduceFailed.Inc()
				done(tp, &AttemptError{Kind: "reduce", Index: part, Attempt: attempt})
			})
		})
		return
	}
	// The reduce computation is pure over already-materialized map outputs;
	// dispatch it now and await the encoded bytes only at the write point.
	type reduced struct {
		encoded []byte
		records int64
	}
	fut := Async(rt.workerPool(), func() reduced {
		result := ExecReduce(spec, part, outputs)
		r := reduced{encoded: EncodePairs(result), records: int64(len(result))}
		putPairs(result) // encoded copies the bytes; the pair headers are dead
		return r
	})
	node.Cores.Acquire(1, func() {
		if !node.AliveEpoch(epoch) {
			fut.Wait() // drain the host-side computation
			return
		}
		compute := spec.ReduceComputeTime(in, node)
		// Merge-sort CPU over the shuffled bytes.
		compute += time.Duration(float64(in) / (rt.Params.SortCPUBytesPerSec * node.Type.CPUSpeed) * float64(time.Second))
		computeStart := rt.Eng.Now()
		rt.Eng.After(compute, func() {
			r := fut.Wait()
			if !node.AliveEpoch(epoch) {
				return
			}
			tp.OutputBytes = int64(len(r.encoded))
			tp.Records = r.records
			tp.ComputeDur = rt.Eng.Now().Sub(computeStart)
			node.Cores.Release(1)
			if rt.Trace != nil {
				rt.Trace.SpanSince(span, comp, "compute", "reduce", computeStart,
					trace.A("records", fmt.Sprint(r.records)))
			}
			writeStart := rt.Eng.Now()
			committed := func(err error) {
				if !node.AliveEpoch(epoch) {
					return
				}
				tp.SpillDur = rt.Eng.Now().Sub(writeStart)
				tp.Ended = rt.Eng.Now()
				if rt.Trace != nil {
					rt.Trace.Add("task", "reduce %d attempt %d done on %s (in=%d out=%d)",
						part, attempt, node.Name, tp.InputBytes, tp.OutputBytes)
					rt.Trace.SpanSince(span, comp, "write", "reduce", writeStart,
						trace.A("bytes", fmt.Sprint(tp.OutputBytes)))
					rt.Trace.EndSpan(span)
				}
				h := rt.handles()
				h.reduceOK.Inc()
				h.reduceSeconds.Observe(tp.Elapsed().Seconds())
				done(tp, err)
			}
			if spec.IntermediateOutput && rt.Intermediates != nil {
				// Intra-query intermediates skip the replicated HDFS write:
				// the output stays on the producer node (memory while the
				// store's budget lasts, local disk after) and the consuming
				// stage reads it shuffle-style. CommitIntermediate is
				// last-writer-wins like the HDFS path below.
				rt.CommitIntermediate(PartFileName(spec.OutputFile, part), r.encoded, node, committed)
				return
			}
			// A superseded attempt's write cannot be cancelled (engine events
			// are uncancellable), so a stale part file may have landed after an
			// AM relaunch wiped the output directory. Reduce output for a given
			// (job, partition) is deterministic, so committing is safely
			// last-writer-wins: clear any stale file and write ours.
			rt.DFS.Delete(PartFileName(spec.OutputFile, part))
			rt.DFS.Write(PartFileName(spec.OutputFile, part), r.encoded, node, func(_ *hdfs.File, err error) {
				committed(err)
			})
		})
	})
}

// Localize charges a fresh container's download of the job jar and
// configuration from HDFS (step 6 of the submission flow).
func (rt *Runtime) Localize(spec *JobSpec, node *topology.Node, done func(error)) {
	jar := JarPath(spec)
	conf := ConfPath(spec)
	rt.DFS.ReadAll(jar, node, func(_ []byte, err error) {
		if err != nil {
			done(err)
			return
		}
		rt.DFS.ReadAll(conf, node, func(_ []byte, err2 error) { done(err2) })
	})
}

// PollAlignedNotify invokes done at the client's next status-poll tick
// (polls happen every ClientPollInterval from submission). Stock Hadoop
// clients learn of job completion this way; the MRapid proxy's direct RPC
// notification skips it.
func (rt *Runtime) PollAlignedNotify(submittedAt sim.Time, done func()) {
	interval := rt.Params.ClientPollInterval
	if interval <= 0 {
		rt.Eng.After(0, done)
		return
	}
	elapsed := rt.Eng.Now().Sub(submittedAt)
	rem := interval - elapsed%interval
	if rem == interval {
		rem = 0
	}
	rt.Eng.After(rem, done)
}

// JarPath and ConfPath name the job artifacts a client uploads to HDFS.
func JarPath(spec *JobSpec) string  { return "/staging/" + spec.Name + "/job.jar" }
func ConfPath(spec *JobSpec) string { return "/staging/" + spec.Name + "/job.xml" }

// UploadArtifacts stages the job jar and configuration into HDFS from the
// client (master) node, charged as real writes — step 1 of the flow. A
// resubmission of the same job name replaces the previous staging files
// (each submission pays the upload, as each Hadoop job ID stages afresh).
func (rt *Runtime) UploadArtifacts(spec *JobSpec, done func(error)) {
	for _, name := range []string{JarPath(spec), ConfPath(spec)} {
		if rt.DFS.Exists(name) {
			if err := rt.DFS.Delete(name); err != nil {
				rt.Eng.After(0, func() { done(err) })
				return
			}
		}
	}
	jar := make([]byte, rt.Params.JobJarBytes)
	conf := make([]byte, rt.Params.JobConfBytes)
	rt.DFS.Write(JarPath(spec), jar, rt.Cluster.Master(), func(_ *hdfs.File, err error) {
		if err != nil {
			done(err)
			return
		}
		rt.DFS.Write(ConfPath(spec), conf, rt.Cluster.Master(), func(_ *hdfs.File, err2 error) {
			done(err2)
		})
	})
}
