package mapreduce

import (
	"errors"
	"fmt"

	"mrapid/internal/profiler"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// Mode selects between the two stock execution modes.
type Mode int

// Stock execution modes.
const (
	ModeDistributed Mode = iota
	ModeUber
)

func (m Mode) String() string {
	if m == ModeUber {
		return "uber"
	}
	return "hadoop"
}

// Result is the outcome of one job execution.
type Result struct {
	Spec    *JobSpec
	Mode    string
	Profile *profiler.JobProfile
	Err     error
}

// Elapsed returns the job's completion time.
func (r *Result) Elapsed() float64 {
	if r.Profile == nil {
		return 0
	}
	return r.Profile.Elapsed().Seconds()
}

// Submit runs the classic Hadoop submission flow (Figure 1 of the paper)
// with no MRapid optimizations:
//
//  1. the client uploads the job jar and configuration to HDFS,
//  2. submits the job to the ResourceManager,
//  3. the scheduler allocates an AM container (waiting for a NodeManager
//     heartbeat under the stock scheduler) and the NM launches the AM JVM,
//  4. the AM initializes and localizes the job artifacts,
//  5. the job runs in the requested mode.
//
// done fires with the result once the output is durable.
func Submit(rt *Runtime, spec *JobSpec, mode Mode, done func(*Result)) {
	if done == nil {
		panic("mapreduce: Submit needs a completion callback")
	}
	prof := &profiler.JobProfile{
		Job:         spec.Key(),
		Mode:        mode.String(),
		SubmittedAt: rt.Eng.Now(),
	}
	// The job root span covers exactly [SubmittedAt, DoneAt]; the analyzer
	// relies on that to make phase durations sum to the job wall clock.
	prof.Span = rt.Trace.StartSpan(0, "job", spec.Name, "",
		trace.A("mode", mode.String()))
	// A stock client only observes the outcome at its next status poll.
	notify := func(r *Result) {
		pollStart := rt.Eng.Now()
		rt.PollAlignedNotify(prof.SubmittedAt, func() {
			if r.Profile != nil {
				r.Profile.DoneAt = rt.Eng.Now()
			}
			rt.Trace.SpanSince(prof.Span, "client", "poll wait", "notify", pollStart)
			rt.Trace.EndSpan(prof.Span)
			done(r)
		})
	}
	uploadStart := rt.Eng.Now()
	rt.UploadArtifacts(spec, func(err error) {
		rt.Trace.SpanSince(prof.Span, "client", "upload artifacts", "submit", uploadStart)
		if err != nil {
			notify(&Result{Spec: spec, Mode: mode.String(), Profile: prof, Err: err})
			return
		}
		rt.launchStockAM(spec, mode, prof, 1, notify)
	})
}

// launchStockAM runs one AM attempt of a stock submission. An attempt that
// dies with its machine is relaunched — partial output removed, same staged
// artifacts — up to Params.MaxAMAttempts times, mirroring YARN's
// yarn.resourcemanager.am.max-attempts; any other failure, or exhausting the
// budget, surfaces to the client.
func (rt *Runtime) launchStockAM(spec *JobSpec, mode Mode, prof *profiler.JobProfile, attempt int, notify func(*Result)) {
	var app *yarn.App
	finish := func(p *profiler.JobProfile, err error) {
		if errors.Is(err, ErrAMLost) && attempt < rt.Params.MaxAMAttempts {
			rt.Trace.Add("am", "job %q AM attempt %d lost with its node; relaunching", spec.Name, attempt)
			rt.RM.FinishApp(app)
			rt.DFS.DeletePrefix(spec.OutputFile)
			rt.launchStockAM(spec, mode, prof, attempt+1, notify)
			return
		}
		notify(&Result{Spec: spec, Mode: mode.String(), Profile: p, Err: err})
	}
	fail := func(err error) { finish(prof, err) }
	// AM startup: RM submission, AM container allocation + launch (those
	// spans nest here via app.Span), AM init, and localization.
	amSpan := rt.Trace.StartSpan(prof.Span, "am", "am-startup", "am",
		trace.A("attempt", fmt.Sprint(attempt)), trace.A("cold", "true"))
	app = rt.RM.SubmitAppInQueue(spec.Name, spec.Queue, rt.AMResource(), func(app *yarn.App, amC *yarn.Container) {
		amEpoch := amC.Node.Epoch()
		// The AM initializes: fixed init cost plus localizing the job
		// artifacts from HDFS.
		rt.Eng.After(rt.Params.AMInit, func() {
			if !amC.Node.AliveEpoch(amEpoch) {
				return
			}
			rt.Localize(spec, amC.Node, func(err error) {
				if !amC.Node.AliveEpoch(amEpoch) {
					return
				}
				if err != nil {
					fail(err)
					return
				}
				prof.AMReadyAt = rt.Eng.Now()
				prof.AMStartup = prof.AMReadyAt.Sub(prof.SubmittedAt)
				rt.Trace.EndSpan(amSpan)
				switch mode {
				case ModeUber:
					am, err := NewUberAM(rt, spec, app, amC.Node, prof)
					if err != nil {
						fail(err)
						return
					}
					am.Run(finish)
				default:
					am, err := NewDistributedAM(rt, spec, app, amC.Node, prof)
					if err != nil {
						fail(err)
						return
					}
					prof.NumContainers = ClusterContainerSlots(rt)
					am.Run(finish)
				}
			})
		})
	})
	// If the AM's node dies before the AM installs its own loss handler
	// (while the container launches, or during the AM's init/localization
	// above), the attempt is dead and the client must hear about it —
	// otherwise the job hangs forever. The AMs' Run() methods replace this
	// handler.
	app.OnContainerLost = func(c *yarn.Container) {
		if c.Tag == "am" {
			fail(ErrAMLost)
		}
	}
	// Nest the AM container's scheduling wait and launch under am-startup.
	app.Span = amSpan
}

// ClusterContainerSlots counts the task containers the cluster can hold, the
// n^c of the paper's estimator. It is the single shared helper for every
// layer that sizes work against the cluster (the stock submit path, the
// MRapid framework, and the JobServer's admission backpressure).
func ClusterContainerSlots(rt *Runtime) int {
	total := 0
	for _, n := range rt.Cluster.Workers() {
		total += n.Type.MaxContainers()
	}
	return total
}
