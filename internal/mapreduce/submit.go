package mapreduce

import (
	"mrapid/internal/profiler"
	"mrapid/internal/yarn"
)

// Mode selects between the two stock execution modes.
type Mode int

// Stock execution modes.
const (
	ModeDistributed Mode = iota
	ModeUber
)

func (m Mode) String() string {
	if m == ModeUber {
		return "uber"
	}
	return "hadoop"
}

// Result is the outcome of one job execution.
type Result struct {
	Spec    *JobSpec
	Mode    string
	Profile *profiler.JobProfile
	Err     error
}

// Elapsed returns the job's completion time.
func (r *Result) Elapsed() float64 {
	if r.Profile == nil {
		return 0
	}
	return r.Profile.Elapsed().Seconds()
}

// Submit runs the classic Hadoop submission flow (Figure 1 of the paper)
// with no MRapid optimizations:
//
//  1. the client uploads the job jar and configuration to HDFS,
//  2. submits the job to the ResourceManager,
//  3. the scheduler allocates an AM container (waiting for a NodeManager
//     heartbeat under the stock scheduler) and the NM launches the AM JVM,
//  4. the AM initializes and localizes the job artifacts,
//  5. the job runs in the requested mode.
//
// done fires with the result once the output is durable.
func Submit(rt *Runtime, spec *JobSpec, mode Mode, done func(*Result)) {
	if done == nil {
		panic("mapreduce: Submit needs a completion callback")
	}
	prof := &profiler.JobProfile{
		Job:         spec.Key(),
		Mode:        mode.String(),
		SubmittedAt: rt.Eng.Now(),
	}
	// A stock client only observes the outcome at its next status poll.
	notify := func(r *Result) {
		rt.PollAlignedNotify(prof.SubmittedAt, func() {
			if r.Profile != nil {
				r.Profile.DoneAt = rt.Eng.Now()
			}
			done(r)
		})
	}
	fail := func(err error) {
		notify(&Result{Spec: spec, Mode: mode.String(), Profile: prof, Err: err})
	}
	rt.UploadArtifacts(spec, func(err error) {
		if err != nil {
			fail(err)
			return
		}
		amRes := rt.Cluster.Workers()[0].Type.ContainerResource()
		rt.RM.SubmitApp(spec.Name, amRes, func(app *yarn.App, amC *yarn.Container) {
			// The AM initializes: fixed init cost plus localizing the job
			// artifacts from HDFS.
			rt.Eng.After(rt.Params.AMInit, func() {
				rt.Localize(spec, amC.Node, func(err error) {
					if err != nil {
						fail(err)
						return
					}
					prof.AMReadyAt = rt.Eng.Now()
					finish := func(p *profiler.JobProfile, err error) {
						notify(&Result{Spec: spec, Mode: mode.String(), Profile: p, Err: err})
					}
					switch mode {
					case ModeUber:
						am, err := NewUberAM(rt, spec, app, amC.Node, prof)
						if err != nil {
							fail(err)
							return
						}
						am.Run(finish)
					default:
						am, err := NewDistributedAM(rt, spec, app, amC.Node, prof)
						if err != nil {
							fail(err)
							return
						}
						prof.NumContainers = clusterContainerSlots(rt)
						am.Run(finish)
					}
				})
			})
		})
	})
}

// clusterContainerSlots counts the task containers the cluster can hold, the
// n^c of the paper's estimator.
func clusterContainerSlots(rt *Runtime) int {
	total := 0
	for _, n := range rt.Cluster.Workers() {
		total += n.Type.MaxContainers()
	}
	return total
}
