package mapreduce

import (
	"errors"
	"testing"
	"time"

	"mrapid/internal/profiler"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

func TestParseNodeFaults(t *testing.T) {
	got, err := ParseNodeFaults(" node-02@5s:20s , node-07@8s ")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeFault{
		{Node: "node-02", At: 5 * time.Second, RestartAfter: 20 * time.Second},
		{Node: "node-07", At: 8 * time.Second},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].String() != "node-02@5s:20s" || got[1].String() != "node-07@8s" {
		t.Fatalf("round-trip strings: %q / %q", got[0], got[1])
	}
	if faults, err := ParseNodeFaults(""); err != nil || faults != nil {
		t.Fatalf("empty schedule: %v / %v", faults, err)
	}
	for _, bad := range []string{"node-02", "@5s", "node-02@", "node-02@-1s", "node-02@5s:0s", "node-02@5s:x"} {
		if _, err := ParseNodeFaults(bad); err == nil {
			t.Errorf("ParseNodeFaults(%q) accepted", bad)
		}
	}
}

func TestScheduleNodeFaultsRejectsUnknownAndMaster(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	if err := rt.ScheduleNodeFaults([]NodeFault{{Node: "node-99", At: time.Second}}); err == nil {
		t.Fatal("unknown node accepted")
	}
	master := rt.Cluster.Master().Name
	if err := rt.ScheduleNodeFaults([]NodeFault{{Node: master, At: time.Second}}); err == nil {
		t.Fatal("master fault accepted")
	}
}

func TestMapOutputUnavailableAfterNodeDeath(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, _ := stageWordCountInput(t, rt, 1, 64<<10)
	splits, err := rt.DFS.Splits(names)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := rt.Cluster.Workers()[0], rt.Cluster.Workers()[1]
	spec := wcSpec(names, "/out")
	var mo *MapOutput
	rt.Eng.After(0, func() {
		rt.RunMapTask(spec, splits[0], src, MapTaskOptions{SpillToDisk: true}, func(m *MapOutput, _ *profiler.TaskProfile, err error) {
			if err != nil {
				t.Errorf("map failed: %v", err)
			}
			mo = m
		})
	})
	rt.Eng.RunUntil(horizon)
	if mo == nil {
		t.Fatal("map never completed")
	}
	if !mo.Available() {
		t.Fatal("fresh output reported unavailable")
	}
	src.Fail()
	if mo.Available() {
		t.Fatal("output on a dead node reported available")
	}
	var fetchErr error
	fetched := false
	rt.Eng.After(0, func() {
		rt.FetchPartition(mo, 0, dst, func(err error) {
			fetched = true
			fetchErr = err
		})
	})
	rt.Eng.RunUntil(horizon)
	if !fetched {
		t.Fatal("fetch callback never fired")
	}
	if !errors.Is(fetchErr, ErrOutputLost) {
		t.Fatalf("fetch error = %v, want ErrOutputLost", fetchErr)
	}
	// A restart does not resurrect the intermediate data: the reborn node
	// has an empty local disk.
	src.Restart()
	if mo.Available() {
		t.Fatal("output survived the node's reboot")
	}
}

// runWordCountWithFaults runs a small distributed WordCount with the given
// node-fault schedule armed at submission time.
func runWordCountWithFaults(t *testing.T, files, size int, faults []NodeFault) (*Result, *Runtime, []byte) {
	t.Helper()
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	names, all := stageWordCountInput(t, rt, files, size)
	if len(faults) > 0 {
		if err := rt.ScheduleNodeFaults(faults); err != nil {
			t.Fatal(err)
		}
	}
	return runJob(t, rt, wcSpec(names, "/out"), ModeDistributed), rt, all
}

// mapNodesOf lists the distinct nodes that ran successful map attempts, in
// first-use order.
func mapNodesOf(res *Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, tp := range res.Profile.Tasks {
		if tp.Kind != profiler.MapTask || tp.Failed || seen[tp.Node] {
			continue
		}
		seen[tp.Node] = true
		out = append(out, tp.Node)
	}
	return out
}

// Crashing a node that holds committed map output during the shuffle makes
// the reduce's fetch fail, and the AM must re-execute the lost maps
// (Hadoop's too-many-fetch-failures path). The clean run pins down the
// deterministic timeline; the victim is whichever map-hosting node the AM
// does not sit on.
func TestShuffleFetchFailureReexecutesMap(t *testing.T) {
	clean, _, _ := runWordCountWithFaults(t, 4, 512<<10, nil)
	if clean.Err != nil {
		t.Fatalf("clean run failed: %v", clean.Err)
	}
	crashAt := time.Duration(clean.Profile.MapsDoneAt) + time.Millisecond
	for _, node := range mapNodesOf(clean) {
		res, rt, all := runWordCountWithFaults(t, 4, 512<<10, []NodeFault{{Node: node, At: crashAt}})
		if res.Err != nil {
			t.Fatalf("crash of %s: job failed: %v", node, res.Err)
		}
		verifyWordCount(t, rt, "/out", all)
		// A fetch-failure recovery reschedules the lost map, so the repeat
		// runs at attempt >= 1. (An AM-hosting victim recovers by a full AM
		// relaunch instead, whose re-runs are all attempt 0 — not the path
		// under test, so try the next candidate.)
		rescheduled := 0
		for _, tp := range res.Profile.Tasks {
			if tp.Kind == profiler.MapTask && !tp.Failed && tp.Attempt >= 1 {
				rescheduled++
			}
		}
		if rescheduled >= 1 {
			return
		}
	}
	t.Fatal("no candidate crash produced a rescheduled map; fetch-failure path not exercised")
}

// Losing the machine hosting a cold-submitted AM must relaunch the whole
// attempt (YARN's am.max-attempts), not fail the job. The AM's placement is
// deterministic but not exposed, so every worker is crashed in turn: all
// runs must succeed, and the run that hit the AM's node is visible as a
// second application submission.
func TestColdAMLostRelaunches(t *testing.T) {
	clean, cleanRT, _ := runWordCountWithFaults(t, 4, 512<<10, nil)
	if clean.Err != nil {
		t.Fatalf("clean run failed: %v", clean.Err)
	}
	crashAt := time.Duration(clean.Profile.AMReadyAt) - 50*time.Millisecond
	relaunches := 0
	for _, w := range cleanRT.Cluster.Workers() {
		res, rt, all := runWordCountWithFaults(t, 4, 512<<10, []NodeFault{{Node: w.Name, At: crashAt}})
		if res.Err != nil {
			t.Fatalf("crash of %s: job failed: %v", w.Name, res.Err)
		}
		verifyWordCount(t, rt, "/out", all)
		if rt.RM.Metrics.AppsSubmitted >= 2 {
			relaunches++
		}
	}
	if relaunches == 0 {
		t.Fatal("no crash ever hit the AM's node; relaunch path not exercised")
	}
}

// A crashed-then-restarted node rejoins mid-job: the RM re-admits it and the
// remaining work may schedule there, with the job completing correctly.
func TestNodeRestartRejoinsMidJob(t *testing.T) {
	clean, _, _ := runWordCountWithFaults(t, 4, 512<<10, nil)
	if clean.Err != nil {
		t.Fatalf("clean run failed: %v", clean.Err)
	}
	mid := time.Duration(clean.Profile.FirstTaskAt) / 2
	node := mapNodesOf(clean)[0]
	res, rt, all := runWordCountWithFaults(t, 4, 512<<10,
		[]NodeFault{{Node: node, At: mid, RestartAfter: 10 * time.Second}})
	if res.Err != nil {
		t.Fatalf("crash/restart of %s: job failed: %v", node, res.Err)
	}
	verifyWordCount(t, rt, "/out", all)
}
