package mapreduce

import "sync"

// Scratch pools for the sort/merge/group hot path. Map and reduce
// computations run on host worker goroutines (see parallel.go), so the
// pools are sync.Pools rather than per-runtime free lists.
//
// Ownership discipline, which every call site below follows:
//
//   - only provably-dead slices are put back: a pre-combine partition
//     after the combiner replaced it, a merge result after grouping
//     consumed it, a runs table after the merge took its pick;
//   - retained data (MapOutput.Partitions, reduce results, encoded
//     output) may be *seeded* from a pool but is never put back — an
//     array handed to retained data simply leaves the pool;
//   - entries are cleared before pooling so stale Pair/value headers do
//     not pin job data past its lifetime.

var pairPool = sync.Pool{New: func() any { ps := make([]Pair, 0, 64); return &ps }}

// getPairs returns an empty pair slice with at least the hinted capacity.
func getPairs(capHint int) []Pair {
	p := pairPool.Get().(*[]Pair)
	if cap(*p) < capHint {
		pairPool.Put(p)
		return make([]Pair, 0, capHint)
	}
	return *p
}

// putPairs recycles a dead pair slice. The caller asserts nothing aliases
// it anymore.
func putPairs(ps []Pair) {
	if cap(ps) == 0 {
		return
	}
	clear(ps)
	ps = ps[:0]
	pairPool.Put(&ps)
}

var runsPool = sync.Pool{New: func() any { rs := make([][]Pair, 0, 16); return &rs }}

// getRuns returns an empty run table with at least the hinted capacity.
func getRuns(capHint int) [][]Pair {
	p := runsPool.Get().(*[][]Pair)
	if cap(*p) < capHint {
		runsPool.Put(p)
		return make([][]Pair, 0, capHint)
	}
	return *p
}

func putRuns(rs [][]Pair) {
	if cap(rs) == 0 {
		return
	}
	clear(rs)
	rs = rs[:0]
	runsPool.Put(&rs)
}

var valsPool = sync.Pool{New: func() any { vs := make([][]byte, 0, 64); return &vs }}

func getVals() [][]byte { return *valsPool.Get().(*[][]byte) }

func putVals(vs [][]byte) {
	clear(vs)
	vs = vs[:0]
	valsPool.Put(&vs)
}
