package mapreduce

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

func TestWorkerPoolExecutesEverything(t *testing.T) {
	p := NewWorkerPool(4)
	defer p.Close()
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
	var n atomic.Int64
	futs := make([]*Future[int], 100)
	for i := range futs {
		i := i
		futs[i] = Async(p, func() int {
			n.Add(1)
			return i * i
		})
	}
	for i, f := range futs {
		if got := f.Wait(); got != i*i {
			t.Fatalf("future %d = %d", i, got)
		}
	}
	if n.Load() != 100 {
		t.Fatalf("executed %d of 100", n.Load())
	}
}

func TestAsyncNilPoolRunsInline(t *testing.T) {
	ran := false
	f := Async[string](nil, func() string {
		ran = true
		return "inline"
	})
	if !ran {
		t.Fatal("nil-pool Async did not run inline")
	}
	if !f.Resolved() {
		t.Fatal("inline future not resolved")
	}
	// Wait is idempotent.
	if f.Wait() != "inline" || f.Wait() != "inline" {
		t.Fatal("Wait changed its answer")
	}
}

func TestWorkerPoolCloseIsIdempotent(t *testing.T) {
	p := NewWorkerPool(2)
	f := Async(p, func() int { return 7 })
	p.Close()
	p.Close() // second close must not panic
	if f.Wait() != 7 {
		t.Fatal("queued work lost on close")
	}
}

func TestRuntimeWorkerKnob(t *testing.T) {
	rt := &Runtime{}
	if rt.workerPool() != nil {
		t.Fatal("Workers=0 built a pool")
	}
	rt.Workers = 1
	if rt.workerPool() != nil {
		t.Fatal("Workers=1 built a pool")
	}
	rt.Workers = 3
	p := rt.workerPool()
	if p == nil || p.Size() != 3 {
		t.Fatalf("Workers=3 pool = %+v", p)
	}
	if rt.workerPool() != p {
		t.Fatal("pool not reused")
	}
	rt.CloseWorkers()
	rt.Workers = -1
	p = rt.workerPool()
	if p == nil || p.Size() != DefaultWorkers() {
		t.Fatal("Workers=-1 did not size by GOMAXPROCS")
	}
	rt.CloseWorkers()
	rt.CloseWorkers() // idempotent
}

// runWorkersJob executes one multi-split wordcount through the distributed
// submission path with the given host parallelism and returns the virtual
// completion time, total engine events fired, and the job's output bytes.
func runWorkersJob(t *testing.T, workers int) (sim.Time, uint64, []byte) {
	t.Helper()
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	rt.Workers = workers
	defer rt.CloseWorkers()
	var names []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/in/part-%d", i)
		data := bytes.Repeat([]byte(fmt.Sprintf("split %d alpha beta gamma delta %d\n", i, i*i)), 6000)
		rt.DFS.PutInstant(name, data, rt.Cluster.Workers()[i%4])
		names = append(names, name)
	}
	spec := wcSpec(names, "/out")
	spec.NumReduces = 2
	var res *Result
	rt.Eng.After(0, func() {
		Submit(rt, spec, ModeDistributed, func(r *Result) {
			res = r
			rt.RM.Stop()
		})
	})
	end := rt.Eng.RunUntil(sim.Time(1 << 42))
	if res == nil {
		t.Fatal("job did not finish")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var out []byte
	for p := 0; p < spec.NumReduces; p++ {
		data, err := rt.DFS.Contents(PartFileName("/out", p))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data...)
	}
	return end, rt.Eng.Fired(), out
}

// Determinism guarantee of the parallel execution layer: the virtual
// timeline (completion time and event count) and every output byte are
// identical whether the pure computations run sequentially or on N real
// threads.
func TestWorkersDeterminism(t *testing.T) {
	seqEnd, seqFired, seqOut := runWorkersJob(t, 1)
	if len(seqOut) == 0 {
		t.Fatal("no output")
	}
	for _, workers := range []int{4, -1} {
		end, fired, out := runWorkersJob(t, workers)
		if end != seqEnd {
			t.Errorf("Workers=%d virtual completion %v != sequential %v", workers, end, seqEnd)
		}
		if fired != seqFired {
			t.Errorf("Workers=%d fired %d events != sequential %d", workers, fired, seqFired)
		}
		if !bytes.Equal(out, seqOut) {
			t.Errorf("Workers=%d output differs from sequential", workers)
		}
	}
}

// The same guarantee holds with the MapCache in play (shared results across
// concurrent workers).
func TestWorkersDeterminismWithSharedCache(t *testing.T) {
	run := func(workers int) (sim.Time, []byte) {
		rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
		rt.Workers = workers
		rt.MapCache = NewMapCache(1 << 28)
		defer rt.CloseWorkers()
		var names []string
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("/in/f%d", i)
			data := bytes.Repeat([]byte("cached words repeat here\n"), 4000)
			rt.DFS.PutInstant(name, data, rt.Cluster.Workers()[i%4])
			names = append(names, name)
		}
		spec := wcSpec(names, "/out")
		var res *Result
		rt.Eng.After(0, func() {
			Submit(rt, spec, ModeDistributed, func(r *Result) {
				res = r
				rt.RM.Stop()
			})
		})
		end := rt.Eng.RunUntil(sim.Time(1 << 42))
		if res == nil || res.Err != nil {
			t.Fatalf("job failed: %+v", res)
		}
		out, err := rt.DFS.Contents(PartFileName("/out", 0))
		if err != nil {
			t.Fatal(err)
		}
		return end, out
	}
	seqEnd, seqOut := run(1)
	parEnd, parOut := run(8)
	if seqEnd != parEnd {
		t.Errorf("cached parallel run completion %v != sequential %v", parEnd, seqEnd)
	}
	if !bytes.Equal(seqOut, parOut) {
		t.Error("cached parallel run output differs")
	}
}
