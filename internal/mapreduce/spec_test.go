package mapreduce

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func TestLineFormat(t *testing.T) {
	var lines []string
	LineFormat{}.Scan([]byte("a\nbb\n\nccc"), func(_, v []byte) {
		lines = append(lines, string(v))
	})
	want := []string{"a", "bb", "", "ccc"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %q, want %q", lines, want)
		}
	}
}

func TestLineFormatEmpty(t *testing.T) {
	n := 0
	LineFormat{}.Scan(nil, func(_, _ []byte) { n++ })
	if n != 0 {
		t.Fatalf("empty input yielded %d records", n)
	}
}

// Property: joining LineFormat records with newlines reproduces the input
// (modulo one trailing newline).
func TestQuickLineFormatRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		data := bytes.ReplaceAll(raw, []byte{0}, []byte{'x'})
		var got [][]byte
		LineFormat{}.Scan(data, func(_, v []byte) {
			got = append(got, v)
		})
		joined := bytes.Join(got, []byte("\n"))
		trimmed := bytes.TrimSuffix(data, []byte("\n"))
		return bytes.Equal(joined, trimmed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedFormat(t *testing.T) {
	var keys, vals []string
	FixedFormat{KeyLen: 2, ValLen: 3}.Scan([]byte("aaBBBccDDDx"), func(k, v []byte) {
		keys = append(keys, string(k))
		vals = append(vals, string(v))
	})
	if len(keys) != 2 || keys[0] != "aa" || keys[1] != "cc" || vals[0] != "BBB" || vals[1] != "DDD" {
		t.Fatalf("keys=%q vals=%q", keys, vals)
	}
}

func TestFixedFormatBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero record length did not panic")
		}
	}()
	FixedFormat{}.Scan([]byte("x"), func(_, _ []byte) {})
}

func TestHashPartitionInRange(t *testing.T) {
	f := func(key []byte, n8 uint8) bool {
		n := 1 + int(n8%16)
		p := HashPartition(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func validSpec() *JobSpec {
	return &JobSpec{
		Name:       "j",
		InputFiles: []string{"/in"},
		OutputFile: "/out",
		NumReduces: 1,
		Format:     LineFormat{},
		Map:        func(_, _ []byte, _ Emit) {},
		Reduce:     func(_ []byte, _ [][]byte, _ Emit) {},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*JobSpec){
		func(s *JobSpec) { s.Name = "" },
		func(s *JobSpec) { s.InputFiles = nil },
		func(s *JobSpec) { s.OutputFile = "" },
		func(s *JobSpec) { s.NumReduces = 0 },
		func(s *JobSpec) { s.Format = nil },
		func(s *JobSpec) { s.Map = nil },
		func(s *JobSpec) { s.Reduce = nil },
		func(s *JobSpec) { s.MapRate = -1 },
	}
	for i, mut := range bad {
		s := validSpec()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestSpecKey(t *testing.T) {
	s := validSpec()
	if s.Key() != "j" {
		t.Fatalf("Key = %q", s.Key())
	}
	s.JobKey = "wordcount"
	if s.Key() != "wordcount" {
		t.Fatalf("Key = %q", s.Key())
	}
}

func TestComputeTimes(t *testing.T) {
	eng := sim.NewEngine()
	node := topology.NewNode(eng, 1, "rack-0", topology.A3)
	s := validSpec()
	s.MapRate = 10e6
	s.MapFixedCost = time.Second
	if got := s.MapComputeTime(nil, 20e6, node); got != 3*time.Second {
		t.Fatalf("MapComputeTime = %v, want 3s", got)
	}
	s.ReduceRate = 5e6
	if got := s.ReduceComputeTime(10e6, node); got != 2*time.Second {
		t.Fatalf("ReduceComputeTime = %v, want 2s", got)
	}
	s.ReduceRate = 0
	if got := s.ReduceComputeTime(10e6, node); got != 0 {
		t.Fatalf("zero-rate reduce = %v", got)
	}
}

func TestPairBytes(t *testing.T) {
	p := Pair{Key: []byte("ab"), Value: []byte("cde")}
	if p.Bytes() != 13 {
		t.Fatalf("Bytes = %d, want 13 (2+3+8)", p.Bytes())
	}
}
