package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrTaskFailed marks a task attempt that died mid-execution (JVM crash,
// node blip). ApplicationMasters react the way Hadoop's do: the attempt is
// rescheduled until mapreduce.map.maxattempts is exhausted.
var ErrTaskFailed = errors.New("mapreduce: task attempt failed")

// AttemptError carries the failing attempt's coordinates.
type AttemptError struct {
	Kind    string
	Index   int
	Attempt int
}

func (e *AttemptError) Error() string {
	return fmt.Sprintf("mapreduce: %s task %d attempt %d failed", e.Kind, e.Index, e.Attempt)
}

// Unwrap lets errors.Is(err, ErrTaskFailed) match.
func (e *AttemptError) Unwrap() error { return ErrTaskFailed }

// FaultInjector decides, deterministically from a seed, which task attempts
// die. A task attempt that fails is charged its read phase plus a fraction
// of its compute before the failure surfaces, like a real mid-task crash.
type FaultInjector struct {
	rng *rand.Rand
	// MapFailProb and ReduceFailProb are per-attempt failure probabilities.
	MapFailProb    float64
	ReduceFailProb float64
	// decisions memoizes per (kind,index,attempt) so replays are stable
	// regardless of event interleaving.
	decisions map[string]faultDecision

	// JobFilter, when non-nil, restricts injection to executions whose
	// output file it accepts. Speculative execution gives each racing mode
	// a distinct temporary output prefix, so a filter on the output file
	// can crash exactly one mode of a race.
	JobFilter func(outputFile string) bool

	// Injected counts failures actually delivered.
	Injected int64
}

type faultDecision struct {
	fail bool
	// point is the fraction of the compute phase completed before dying.
	point float64
}

// NewFaultInjector builds an injector with the given seed and per-attempt
// map/reduce failure probabilities.
func NewFaultInjector(seed int64, mapProb, reduceProb float64) *FaultInjector {
	if mapProb < 0 || mapProb > 1 || reduceProb < 0 || reduceProb > 1 {
		panic("mapreduce: failure probabilities must be within [0,1]")
	}
	return &FaultInjector{
		rng:            rand.New(rand.NewSource(seed)),
		MapFailProb:    mapProb,
		ReduceFailProb: reduceProb,
		decisions:      make(map[string]faultDecision),
	}
}

// decide returns the memoized verdict for one attempt.
func (fi *FaultInjector) decide(kind string, index, attempt int, prob float64) faultDecision {
	key := fmt.Sprintf("%s/%d/%d", kind, index, attempt)
	if d, ok := fi.decisions[key]; ok {
		return d
	}
	d := faultDecision{
		fail:  fi.rng.Float64() < prob,
		point: fi.rng.Float64(),
	}
	fi.decisions[key] = d
	return d
}

// MapAttempt reports whether the given map attempt should fail and how far
// through its compute phase.
func (fi *FaultInjector) MapAttempt(index, attempt int) (fail bool, point float64) {
	if fi == nil {
		return false, 0
	}
	d := fi.decide("map", index, attempt, fi.MapFailProb)
	return d.fail, d.point
}

// ReduceAttempt reports whether the given reduce attempt should fail.
func (fi *FaultInjector) ReduceAttempt(index, attempt int) (fail bool, point float64) {
	if fi == nil {
		return false, 0
	}
	d := fi.decide("reduce", index, attempt, fi.ReduceFailProb)
	return d.fail, d.point
}

// Fail scripts a specific attempt to fail at the given compute fraction,
// overriding the probabilistic draw. kind is "map" or "reduce". Tests use
// it for deterministic failure scenarios.
func (fi *FaultInjector) Fail(kind string, index, attempt int, point float64) {
	if point < 0 || point >= 1 {
		panic("mapreduce: failure point must be within [0,1)")
	}
	fi.decisions[fmt.Sprintf("%s/%d/%d", kind, index, attempt)] = faultDecision{fail: true, point: point}
}

// accepts applies the optional JobFilter to an execution's output file.
func (fi *FaultInjector) accepts(outputFile string) bool {
	return fi.JobFilter == nil || fi.JobFilter(outputFile)
}

// MapAttemptFor is MapAttempt gated by the JobFilter (the task runtime's
// entry point; it passes the executing job's output file).
func (fi *FaultInjector) MapAttemptFor(outputFile string, index, attempt int) (fail bool, point float64) {
	if fi == nil || !fi.accepts(outputFile) {
		return false, 0
	}
	return fi.MapAttempt(index, attempt)
}

// ReduceAttemptFor is ReduceAttempt gated by the JobFilter.
func (fi *FaultInjector) ReduceAttemptFor(outputFile string, index, attempt int) (fail bool, point float64) {
	if fi == nil || !fi.accepts(outputFile) {
		return false, 0
	}
	return fi.ReduceAttempt(index, attempt)
}

// FailNow records a delivered failure (called by the task runtime).
func (fi *FaultInjector) FailNow() {
	if fi != nil {
		fi.Injected++
	}
}
