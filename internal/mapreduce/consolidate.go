package mapreduce

import (
	"mrapid/internal/topology"
	"mrapid/internal/trace"
)

// ShuffleProvider is the hook a node-level shuffle service (implemented by
// internal/shuffle) plugs into the runtime. When Runtime.Shuffle is non-nil,
// the ApplicationMasters register committed map outputs with the service and
// fetch consolidated per-(node, partition) results through it instead of
// issuing one FetchPartition per (map, partition).
type ShuffleProvider interface {
	// Register notes a committed map output with the service on its node.
	Register(spec *JobSpec, mo *MapOutput)

	// Forget withdraws an output (it was lost with its node, or its job
	// finished and the intermediate data is garbage).
	Forget(spec *JobSpec, mo *MapOutput)

	// Consolidate merges one node's committed outputs into a single
	// synthetic output (cross-task in-node combining when the job has a
	// combiner) and records the byte-reduction stats.
	Consolidate(spec *JobSpec, group []*MapOutput) *Consolidated

	// Fetch moves one consolidated partition to dst, charging the service's
	// merge/combine/compress cost model. done receives ErrOutputLost when
	// the source node died before — or while — the fetch ran; the AM then
	// falls back to per-map recovery for every member of the group.
	Fetch(parent trace.SpanID, spec *JobSpec, c *Consolidated, part int, dst *topology.Node, done func(error))

	// WireRatio estimates how the service scales the job's shuffled bytes
	// (post-combine, post-compress) relative to the raw map output — the
	// correction the Eq. 1/3 estimator applies to s^o.
	WireRatio(spec *JobSpec) float64
}

// Consolidated is one node's merged map outputs: Out is a synthetic
// MapOutput whose partitions hold the cross-task merged (and re-combined)
// pairs, so the reduce path consumes it exactly like a per-map output;
// Members are the real outputs it was built from, kept for the per-map
// fallback when the node dies before the consolidated fetch lands.
type Consolidated struct {
	Out     *MapOutput
	Members []*MapOutput
}

// GroupOutputsByNode partitions outputs into per-(node, boot-epoch) groups
// in first-appearance order, the deterministic unit the shuffle service
// consolidates. Outputs from different boot epochs of the same node never
// mix: an old-epoch output is already unavailable and must fail alone.
func GroupOutputsByNode(outputs []*MapOutput) [][]*MapOutput {
	type key struct {
		node  *topology.Node
		epoch int
	}
	index := make(map[key]int)
	var groups [][]*MapOutput
	for _, mo := range outputs {
		k := key{mo.Node, mo.NodeEpoch}
		i, ok := index[k]
		if !ok {
			i = len(groups)
			index[k] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], mo)
	}
	return groups
}

// ConsolidateGroup builds the synthetic output for one node's group: each
// partition is the k-way merge of the members' sorted runs, re-combined
// through the job's combiner when it has one. Pure computation — the
// shuffle service charges the virtual cost separately. Correctness rests on
// comparePairs breaking key ties by value: merging sorted runs in any
// grouping yields the same final sequence the reducer would have merged
// per map, so job output is byte-identical with or without consolidation.
func ConsolidateGroup(spec *JobSpec, group []*MapOutput) *Consolidated {
	if len(group) == 0 {
		panic("mapreduce: ConsolidateGroup needs a non-empty group")
	}
	if len(group) == 1 {
		// A single output needs no merge, and re-running the combiner over
		// already-combined data would only re-serialize identical values.
		return &Consolidated{Out: group[0], Members: group}
	}
	first := group[0]
	out := &MapOutput{
		Split:      first.Split,
		Node:       first.Node,
		NodeEpoch:  first.NodeEpoch,
		Partitions: make([][]Pair, spec.NumReduces),
		PartBytes:  make([]int64, spec.NumReduces),
	}
	out.InMemory = true
	for _, mo := range group {
		out.Records += mo.Records
		if !mo.InMemory {
			out.InMemory = false
		}
	}
	runs := getRuns(len(group))
	for p := 0; p < spec.NumReduces; p++ {
		runs = runs[:0]
		for _, mo := range group {
			runs = append(runs, mo.Partitions[p])
		}
		merged, scratch := mergeSortedRuns(runs)
		if spec.Combine != nil {
			combined := combine(spec.Combine, merged)
			if scratch {
				putPairs(merged)
			}
			merged = combined
		}
		// Without a combiner the merge scratch itself is retained as the
		// consolidated partition; it simply leaves the pool.
		out.Partitions[p] = merged
		var n int64
		for _, pr := range merged {
			n += pr.Bytes()
		}
		out.PartBytes[p] = n
		out.TotalBytes += n
	}
	putRuns(runs)
	return &Consolidated{Out: out, Members: group}
}

// RawPartBytes sums the members' original (pre-consolidation) bytes for one
// partition — what the service merges on the source node.
func (c *Consolidated) RawPartBytes(part int) int64 {
	var n int64
	for _, mo := range c.Members {
		n += mo.PartBytes[part]
	}
	return n
}

// SpilledPartBytes sums the members' on-disk bytes for one partition: the
// service's disk read at the source. U+ in-memory outputs cost nothing to
// pick up.
func (c *Consolidated) SpilledPartBytes(part int) int64 {
	var n int64
	for _, mo := range c.Members {
		if !mo.InMemory {
			n += mo.PartBytes[part]
		}
	}
	return n
}

// ShuffleWireRatio reports how the attached shuffle service (if any) scales
// shuffled bytes relative to raw map output; 1 without a service. The
// speculative decision maker multiplies s^o by this so Equations 1 and 3
// price the post-combine, post-compress shuffle.
func (rt *Runtime) ShuffleWireRatio(spec *JobSpec) float64 {
	if rt.Shuffle == nil {
		return 1
	}
	return rt.Shuffle.WireRatio(spec)
}
