package mapreduce

import (
	"errors"
	"fmt"

	"mrapid/internal/hdfs"
	"mrapid/internal/profiler"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// DistributedAM is the distributed-mode ApplicationMaster: it requests one
// container per map task (with locality preferences from the split replica
// locations) plus one per reduce, assigns granted containers to the
// best-matching pending task, overlaps the shuffle with remaining map
// waves, and runs the reduce once all map outputs are fetched.
//
// The same AM serves stock Hadoop and MRapid's D+ mode: the difference
// between them lives in the RM's scheduler and in how the AM itself was
// brought up (cold submission vs. the AM pool).
type DistributedAM struct {
	rt     *Runtime
	spec   *JobSpec
	app    *yarn.App
	amNode *topology.Node
	prof   *profiler.JobProfile

	splits       []*hdfs.Split
	pendingMaps  []*hdfs.Split
	containerRes topology.Resource

	mapOutputs    []*MapOutput
	completedMaps int
	failed        error

	// mapAttempts / reduceAttempts are the next attempt ordinals (unique
	// attempt IDs); failedMapAttempts / failedReduceAttempts count only
	// attempts that FAILED. Hadoop distinguishes FAILED from KILLED: a task
	// lost with its node is killed through no fault of its own and must not
	// consume the MaxTaskAttempts failure budget.
	mapAttempts       map[int]int
	reduceAttempts    map[int]int
	failedMapAttempts map[int]int
	retryAsks         []*yarn.Ask

	// runningMaps tracks which split each live map container is executing so
	// a lost-container report can requeue exactly the stranded work.
	runningMaps map[*yarn.Container]*hdfs.Split

	reduceContainer *yarn.Container
	reduceReady     bool
	reduceRunning   bool
	fetched         map[*MapOutput]bool
	fetchesDone     int
	// reduceGen is bumped when the reduce container is lost; in-flight
	// shuffle completions from the previous reduce attempt carry the old
	// generation and are dropped.
	reduceGen int

	// Shuffle-service state (rt.Shuffle != nil): the per-node consolidated
	// outputs the reduce will consume, and how many consolidated group
	// fetches are still in flight.
	consolidated  []*MapOutput
	pendingGroups int

	ticker      *sim.Ticker
	sentMapAsks bool
	killed      bool
	done        func(*profiler.JobProfile, error)

	// OnMapComplete, when set before Run, observes every finished map task;
	// the speculative decision maker uses it to collect the profile samples
	// Equations 1–3 need.
	OnMapComplete func(*profiler.TaskProfile)
}

// NewDistributedAM prepares a distributed-mode AM. The caller has already
// brought the AM process up (cold or pooled) on amNode and charged that
// cost; prof carries the submission timestamps.
func NewDistributedAM(rt *Runtime, spec *JobSpec, app *yarn.App, amNode *topology.Node, prof *profiler.JobProfile) (*DistributedAM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	splits, err := rt.Splits(spec.InputFiles)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mapreduce: job %q has no input splits", spec.Name)
	}
	am := &DistributedAM{
		rt:                rt,
		spec:              spec,
		app:               app,
		amNode:            amNode,
		prof:              prof,
		splits:            splits,
		pendingMaps:       append([]*hdfs.Split(nil), splits...),
		containerRes:      amNode.Type.ContainerResource(),
		fetched:           make(map[*MapOutput]bool),
		mapAttempts:       make(map[int]int),
		reduceAttempts:    make(map[int]int),
		failedMapAttempts: make(map[int]int),
		runningMaps:       make(map[*yarn.Container]*hdfs.Split),
	}
	prof.NumMaps = len(splits)
	prof.NumReduces = spec.NumReduces
	prof.NumWorkers = len(rt.Cluster.Workers())
	return am, nil
}

// Run starts the AM's allocate-heartbeat loop. done fires once the job
// output is durable in HDFS (or the job fails or is killed).
func (am *DistributedAM) Run(done func(*profiler.JobProfile, error)) {
	if done == nil {
		panic("mapreduce: DistributedAM.Run needs a completion callback")
	}
	am.done = done
	am.app.OnContainerLost = am.onContainerLost
	// From here on, task-container scheduling waits and launches nest
	// under the job root span rather than the AM-startup span.
	am.app.Span = am.prof.Span
	am.heartbeat() // first allocate immediately after AM init
	am.ticker = am.rt.Eng.Every(am.rt.Params.AMHeartbeat, am.heartbeat)
}

// Kill stops the job: outstanding work is abandoned and the RM releases the
// app's containers. Used by speculative execution to cancel the slower mode.
func (am *DistributedAM) Kill() {
	if am.killed {
		return
	}
	am.killed = true
	if am.ticker != nil {
		am.ticker.Stop()
	}
	am.rt.RM.KillApp(am.app)
}

// Progress reports completed and total map counts, the signal the
// speculative decision maker polls.
func (am *DistributedAM) Progress() (completed, total int) {
	return am.completedMaps, len(am.splits)
}

func (am *DistributedAM) heartbeat() {
	if am.killed {
		return
	}
	asks := append(am.buildAsks(), am.retryAsks...)
	am.retryAsks = nil
	am.rt.RM.Allocate(am.app, asks, func(granted []*yarn.Container) {
		if am.killed {
			return
		}
		for _, c := range granted {
			am.place(c)
		}
	})
}

// buildAsks emits, once, one ask per map task with locality preferences
// plus the reduce container ask. A short job's single reducer clears the
// default slow-start threshold (5% of a handful of maps) immediately, so
// Hadoop's allocator ramps it up with the first request — starting the
// reducer early is what lets the shuffle overlap the remaining map waves
// (the overlap Equations 1 and 3 assume).
func (am *DistributedAM) buildAsks() []*yarn.Ask {
	if am.sentMapAsks {
		return nil
	}
	am.sentMapAsks = true
	var asks []*yarn.Ask
	for _, s := range am.splits {
		racks := make([]string, 0, len(s.Hosts))
		for _, h := range s.Hosts {
			racks = append(racks, h.Rack)
		}
		asks = append(asks, &yarn.Ask{
			App:            am.app,
			Resource:       am.containerRes,
			PreferredNodes: s.Hosts,
			PreferredRacks: racks,
			Tag:            fmt.Sprintf("map-%d", s.Index),
		})
	}
	for p := 0; p < am.spec.NumReduces; p++ {
		asks = append(asks, &yarn.Ask{
			App:      am.app,
			Resource: am.containerRes,
			Tag:      fmt.Sprintf("reduce-%d", p),
		})
	}
	return asks
}

// place assigns a granted container to work: reduce containers start the
// reduce side, map containers take the best-locality pending split.
func (am *DistributedAM) place(c *yarn.Container) {
	if len(c.Tag) >= 6 && c.Tag[:6] == "reduce" {
		am.startReduceContainer(c)
		return
	}
	s := am.takeBestSplit(c.Node)
	if s == nil {
		// Nothing left to run (maps finished while this grant was in
		// flight): hand the container straight back.
		am.rt.RM.ReleaseContainer(c)
		return
	}
	// Bind the split to the container before the start RPC: if the node dies
	// from here on, the lost-container report tells us exactly which split to
	// requeue.
	am.runningMaps[c] = s
	nm := am.rt.RM.NMOn(c.Node)
	nm.StartContainer(c, false, func() {
		if am.killed {
			am.rt.RM.ReleaseContainer(c)
			return
		}
		am.rt.Localize(am.spec, c.Node, func(err error) {
			if err != nil {
				am.fail(err)
				return
			}
			am.runMap(c, s)
		})
	})
}

// takeBestSplit pops the pending split with the best locality for node:
// node-local first, then rack-local, then the oldest pending.
func (am *DistributedAM) takeBestSplit(node *topology.Node) *hdfs.Split {
	best, bestRank := -1, 3
	for i, s := range am.pendingMaps {
		rank := 2
		if s.HostedOn(node) {
			rank = 0
		} else if s.RackLocalTo(node) {
			rank = 1
		}
		if rank < bestRank {
			best, bestRank = i, rank
			if rank == 0 {
				break
			}
		}
	}
	if best < 0 {
		return nil
	}
	s := am.pendingMaps[best]
	am.pendingMaps = append(am.pendingMaps[:best], am.pendingMaps[best+1:]...)
	return s
}

func (am *DistributedAM) runMap(c *yarn.Container, s *hdfs.Split) {
	if am.prof.FirstTaskAt == 0 {
		am.prof.FirstTaskAt = am.rt.Eng.Now()
	}
	attempt := am.mapAttempts[s.Index]
	opts := MapTaskOptions{SpillToDisk: true, Attempt: attempt, Parent: am.prof.Span}
	am.rt.RunMapTask(am.spec, s, c.Node, opts, func(mo *MapOutput, tp *profiler.TaskProfile, err error) {
		if am.killed {
			am.rt.RM.ReleaseContainer(c)
			return
		}
		var ae *AttemptError
		if errors.As(err, &ae) {
			// The attempt crashed: give the container back, record the
			// failed attempt, and reschedule on a fresh container unless
			// the attempt budget is exhausted (Hadoop's maxattempts).
			delete(am.runningMaps, c)
			am.rt.RM.ReleaseContainer(c)
			am.prof.Add(tp)
			am.failedMapAttempts[s.Index]++
			if am.failedMapAttempts[s.Index] >= am.rt.Params.MaxTaskAttempts {
				am.fail(fmt.Errorf("mapreduce: map %d failed %d attempts: %w",
					s.Index, am.failedMapAttempts[s.Index], err))
				return
			}
			am.rescheduleMap(s, "attempt failed")
			return
		}
		if err != nil {
			am.fail(err)
			return
		}
		// Commit handshake with the AM, then the container is released (a
		// fresh one is requested per task, as in MRv2).
		commitStart := am.rt.Eng.Now()
		am.rt.Eng.After(am.rt.Params.TaskCommit, func() {
			if am.killed {
				am.rt.RM.ReleaseContainer(c)
				return
			}
			if _, ok := am.runningMaps[c]; !ok {
				// The node (and this container) died during the commit
				// handshake: the RM already reported the loss and the task
				// was rescheduled. Drop the stale completion.
				return
			}
			delete(am.runningMaps, c)
			am.rt.RM.ReleaseContainer(c)
			am.rt.Trace.SpanSince(am.prof.Span, "am",
				fmt.Sprintf("commit map-%d", s.Index), "commit", commitStart)
			am.prof.Add(tp)
			am.mapOutputs = append(am.mapOutputs, mo)
			if am.rt.Shuffle != nil {
				am.rt.Shuffle.Register(am.spec, mo)
			}
			am.completedMaps++
			if am.completedMaps == len(am.splits) {
				am.prof.MapsDoneAt = am.rt.Eng.Now()
			}
			if am.OnMapComplete != nil {
				am.OnMapComplete(tp)
			}
			am.pumpShuffle()
		})
	})
}

func (am *DistributedAM) startReduceContainer(c *yarn.Container) {
	if am.reduceContainer != nil {
		// Only single-reduce jobs are exercised by the paper's experiments;
		// extra grants are returned. (NumReduces > 1 still works: each
		// partition reuses the one reduce container serially.)
		am.rt.RM.ReleaseContainer(c)
		return
	}
	am.reduceContainer = c
	nm := am.rt.RM.NMOn(c.Node)
	nm.StartContainer(c, false, func() {
		if am.killed {
			am.rt.RM.ReleaseContainer(c)
			return
		}
		am.rt.Localize(am.spec, c.Node, func(err error) {
			if err != nil {
				am.fail(err)
				return
			}
			am.reduceReady = true
			am.pumpShuffle()
		})
	})
}

// pumpShuffle fetches any completed-but-unfetched map outputs to the reduce
// node, overlapping with still-running map waves, and starts the reduce
// when everything has arrived. A fetch failure (the map's node died with
// the intermediate data on its local disk) is Hadoop's
// too-many-fetch-failures signal: the AM declares the completed map lost
// and re-executes it.
func (am *DistributedAM) pumpShuffle() {
	if am.killed || !am.reduceReady {
		return
	}
	if am.rt.Shuffle != nil {
		am.pumpShuffleService()
		return
	}
	dst := am.reduceContainer.Node
	gen := am.reduceGen
	for _, mo := range append([]*MapOutput(nil), am.mapOutputs...) {
		if am.fetched[mo] {
			continue
		}
		am.fetched[mo] = true
		// Fetch every partition this reducer will handle (all of them: one
		// physical reduce container processes each partition in turn).
		mo := mo
		total := 0
		failed := false
		for p := 0; p < am.spec.NumReduces; p++ {
			total++
			am.rt.ShuffleFetch(am.prof.Span, mo, p, dst, func(err error) {
				if am.killed || gen != am.reduceGen {
					// The reduce attempt this fetch fed was itself lost;
					// the replacement reshuffles from scratch.
					return
				}
				if err != nil {
					if !failed {
						failed = true
						am.loseMapOutput(mo)
					}
					return
				}
				total--
				if total == 0 && !failed {
					am.fetchesDone++
					am.maybeReduce()
				}
			})
		}
	}
	am.maybeReduce()
}

// pumpShuffleService is the shuffle-service fetch path: once every map has
// committed, the registered outputs are consolidated per node — merged and
// re-combined by each node's service — and the reducer issues one fetch per
// (node, partition) instead of one per (map, partition). A consolidated
// fetch that fails means the source node died with every registered output
// on it, so the AM falls back to the per-map recovery: each member of the
// group is declared lost and re-executed, and the next pump consolidates
// the replacements.
//
// Waiting for the last map trades the per-map shuffle's map-wave overlap
// for the consolidation: the service cannot finalize a node's merged
// partition while maps are still adding to it. For the paper's short jobs
// the trade wins — the saved fetches and bytes outweigh the lost overlap.
func (am *DistributedAM) pumpShuffleService() {
	if am.completedMaps != len(am.splits) {
		return
	}
	dst := am.reduceContainer.Node
	gen := am.reduceGen
	var pending []*MapOutput
	for _, mo := range am.mapOutputs {
		if !am.fetched[mo] {
			pending = append(pending, mo)
		}
	}
	for _, group := range GroupOutputsByNode(pending) {
		group := group
		for _, mo := range group {
			am.fetched[mo] = true
		}
		cons := am.rt.Shuffle.Consolidate(am.spec, group)
		am.pendingGroups++
		remaining := am.spec.NumReduces
		failed := false
		for p := 0; p < am.spec.NumReduces; p++ {
			am.rt.Shuffle.Fetch(am.prof.Span, am.spec, cons, p, dst, func(err error) {
				if am.killed || gen != am.reduceGen {
					return
				}
				if err != nil {
					if !failed {
						failed = true
						am.pendingGroups--
						for _, mo := range group {
							am.loseMapOutput(mo)
						}
					}
					return
				}
				remaining--
				if remaining == 0 && !failed {
					am.pendingGroups--
					am.consolidated = append(am.consolidated, cons.Out)
					am.maybeReduce()
				}
			})
		}
	}
	am.maybeReduce()
}

// loseMapOutput handles a completed map whose output died with its node:
// the map reverts to incomplete and is re-executed on a fresh container.
func (am *DistributedAM) loseMapOutput(mo *MapOutput) {
	for i, x := range am.mapOutputs {
		if x == mo {
			am.mapOutputs = append(am.mapOutputs[:i], am.mapOutputs[i+1:]...)
			delete(am.fetched, mo)
			if am.rt.Shuffle != nil {
				am.rt.Shuffle.Forget(am.spec, mo)
			}
			am.completedMaps--
			am.rt.Trace.Add("am", "map %d output lost on %s; re-executing", mo.Split.Index, mo.Node.Name)
			am.rescheduleMap(mo.Split, "output lost")
			return
		}
	}
}

// rescheduleMap requeues a split and asks for a replacement container with
// the split's locality preferences. The attempt ordinal advances (attempt
// IDs are never reused) but the failure budget is only charged by the
// AttemptError path in runMap — a task killed by node loss is KILLED, not
// FAILED, in Hadoop's accounting.
func (am *DistributedAM) rescheduleMap(s *hdfs.Split, why string) {
	am.mapAttempts[s.Index]++
	am.pendingMaps = append(am.pendingMaps, s)
	racks := make([]string, 0, len(s.Hosts))
	for _, h := range s.Hosts {
		racks = append(racks, h.Rack)
	}
	am.retryAsks = append(am.retryAsks, &yarn.Ask{
		App:            am.app,
		Resource:       am.containerRes,
		PreferredNodes: s.Hosts,
		PreferredRacks: racks,
		Tag:            fmt.Sprintf("map-%d-attempt-%d", s.Index, am.mapAttempts[s.Index]),
	})
	am.rt.Trace.Add("am", "map %d rescheduled (%s) as attempt %d", s.Index, why, am.mapAttempts[s.Index])
}

// onContainerLost is the RM's report that one of this job's containers
// vanished with its node. In-flight maps requeue their split; the reduce
// container triggers a full reshuffle onto a replacement; a cold-submitted
// AM's own container means the job attempt itself is gone.
func (am *DistributedAM) onContainerLost(c *yarn.Container) {
	if am.killed {
		return
	}
	am.rt.Trace.Add("am", "lost %s", c)
	if c.Tag == "am" {
		// Our own AM container (cold submission): the whole attempt dies;
		// the submitter decides whether to relaunch.
		am.fail(ErrAMLost)
		return
	}
	if s, ok := am.runningMaps[c]; ok {
		delete(am.runningMaps, c)
		am.rescheduleMap(s, "node lost")
		return
	}
	if c == am.reduceContainer {
		am.recoverReduce()
		return
	}
	if len(c.Tag) >= 6 && c.Tag[:6] == "reduce" {
		// A reduce grant lost before it was started: ask again.
		am.retryAsks = append(am.retryAsks, &yarn.Ask{
			App:      am.app,
			Resource: am.containerRes,
			Tag:      "reduce-recovery",
		})
		return
	}
	// A map grant that died before being bound to a split (it sat in the
	// RM's undelivered-grant buffer): some pending split now has no
	// container coming, so request a replacement.
	am.retryAsks = append(am.retryAsks, &yarn.Ask{
		App:      am.app,
		Resource: am.containerRes,
		Tag:      "map-replacement",
	})
}

// recoverReduce restarts the reduce side after its container was lost:
// every fetch must be redone on the replacement node, and any partition
// files a previous attempt already committed are removed so the re-run's
// writes don't collide. Node loss does not charge the reduce failure
// budget (KILLED, not FAILED).
func (am *DistributedAM) recoverReduce() {
	am.reduceGen++
	am.reduceContainer = nil
	am.reduceReady = false
	am.reduceRunning = false
	am.fetchesDone = 0
	am.fetched = make(map[*MapOutput]bool)
	am.consolidated = nil
	am.pendingGroups = 0
	for p := 0; p < am.spec.NumReduces; p++ {
		am.rt.DeleteOutput(PartFileName(am.spec.OutputFile, p))
	}
	am.retryAsks = append(am.retryAsks, &yarn.Ask{
		App:      am.app,
		Resource: am.containerRes,
		Tag:      "reduce-recovery",
	})
	am.rt.Trace.Add("am", "reduce container lost; restarting shuffle (gen %d)", am.reduceGen)
}

func (am *DistributedAM) maybeReduce() {
	if am.killed || am.reduceRunning || !am.reduceReady {
		return
	}
	if am.completedMaps != len(am.splits) {
		return
	}
	if am.rt.Shuffle != nil {
		// Service mode: every output must belong to a consolidated fetch
		// that has fully arrived.
		if am.pendingGroups > 0 {
			return
		}
		for _, mo := range am.mapOutputs {
			if !am.fetched[mo] {
				return
			}
		}
	} else if am.fetchesDone != len(am.splits) {
		return
	}
	am.reduceRunning = true
	am.runReducePartitions(0)
}

func (am *DistributedAM) runReducePartitions(p int) {
	if p == am.spec.NumReduces {
		am.finish(nil)
		return
	}
	if am.reduceContainer == nil {
		// The reduce container was lost; recovery restarts from partition 0
		// once a replacement arrives.
		return
	}
	gen := am.reduceGen
	ropts := ReduceOptions{Attempt: am.reduceAttempts[p], Parent: am.prof.Span}
	inputs := am.mapOutputs
	if am.rt.Shuffle != nil {
		inputs = am.consolidated
	}
	am.rt.RunReduceTask(am.spec, p, ropts, inputs, am.reduceContainer.Node, func(tp *profiler.TaskProfile, err error) {
		if am.killed || gen != am.reduceGen {
			return
		}
		var ae *AttemptError
		if errors.As(err, &ae) {
			am.prof.Add(tp)
			am.reduceAttempts[p]++
			if am.reduceAttempts[p] >= am.rt.Params.MaxTaskAttempts {
				am.fail(fmt.Errorf("mapreduce: reduce %d failed %d attempts: %w",
					p, am.reduceAttempts[p], err))
				return
			}
			// Retried in the same container: the shuffled data is already
			// local to it.
			am.runReducePartitions(p)
			return
		}
		if err != nil {
			am.fail(err)
			return
		}
		am.prof.Add(tp)
		am.runReducePartitions(p + 1)
	})
}

func (am *DistributedAM) fail(err error) {
	if am.failed == nil {
		am.failed = err
	}
	am.finish(err)
}

func (am *DistributedAM) finish(err error) {
	if am.killed {
		return
	}
	am.killed = true
	if am.ticker != nil {
		am.ticker.Stop()
	}
	if am.rt.Shuffle != nil {
		// The job's intermediate data is garbage now; withdraw it from the
		// node services.
		for _, mo := range am.mapOutputs {
			am.rt.Shuffle.Forget(am.spec, mo)
		}
	}
	am.prof.DoneAt = am.rt.Eng.Now()
	am.rt.RM.FinishApp(am.app)
	am.done(am.prof, err)
}
