package mapreduce

import (
	"bytes"
	"errors"
	"strconv"
	"testing"
	"testing/quick"

	"mrapid/internal/profiler"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

func splitWords(data []byte) []string {
	var out []string
	for _, w := range bytes.Fields(data) {
		out = append(out, string(w))
	}
	return out
}

func parseCounts(data []byte) (map[string]int, error) {
	counts := map[string]int{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, '\t')
		if i < 0 {
			return nil, errors.New("malformed line")
		}
		n, err := strconv.Atoi(string(line[i+1:]))
		if err != nil {
			return nil, err
		}
		counts[string(line[:i])] = n
	}
	return counts, nil
}

// failOnce returns an injector that fails exactly the given attempts.
func failOnce(kind string, index, attempt int) *FaultInjector {
	fi := NewFaultInjector(1, 0, 0)
	fi.decisions[keyFor(kind, index, attempt)] = faultDecision{fail: true, point: 0.5}
	return fi
}

func keyFor(kind string, index, attempt int) string {
	fi := NewFaultInjector(1, 0, 0)
	fi.decide(kind, index, attempt, 0)
	for k := range fi.decisions {
		return k
	}
	panic("unreachable")
}

func TestAttemptErrorUnwraps(t *testing.T) {
	err := &AttemptError{Kind: "map", Index: 3, Attempt: 1}
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatal("AttemptError does not unwrap to ErrTaskFailed")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestInjectorDeterministicDecisions(t *testing.T) {
	a := NewFaultInjector(7, 0.5, 0.5)
	b := NewFaultInjector(7, 0.5, 0.5)
	for i := 0; i < 20; i++ {
		fa, pa := a.MapAttempt(i, 0)
		fb, pb := b.MapAttempt(i, 0)
		if fa != fb || pa != pb {
			t.Fatalf("same seed diverged at %d", i)
		}
		// Memoized: asking again gives the same verdict even after other
		// queries advanced the RNG.
		fa2, pa2 := a.MapAttempt(i, 0)
		if fa2 != fa || pa2 != pa {
			t.Fatalf("memoization broken at %d", i)
		}
	}
}

func TestNilInjectorNeverFails(t *testing.T) {
	var fi *FaultInjector
	if fail, _ := fi.MapAttempt(0, 0); fail {
		t.Fatal("nil injector failed a map")
	}
	if fail, _ := fi.ReduceAttempt(0, 0); fail {
		t.Fatal("nil injector failed a reduce")
	}
	fi.FailNow() // must not panic
}

func TestInjectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad probability did not panic")
		}
	}()
	NewFaultInjector(1, 1.5, 0)
}

func TestFailScriptsAttempts(t *testing.T) {
	fi := NewFaultInjector(1, 0, 0) // zero probability: only scripts fail
	fi.Fail("map", 3, 1, 0.25)
	if fail, _ := fi.MapAttempt(3, 0); fail {
		t.Fatal("unscripted attempt failed")
	}
	fail, point := fi.MapAttempt(3, 1)
	if !fail || point != 0.25 {
		t.Fatalf("scripted attempt = %v/%v, want true/0.25", fail, point)
	}
	if fail, _ := fi.ReduceAttempt(3, 1); fail {
		t.Fatal("script leaked across task kinds")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fail accepted point=1 (task would complete before dying)")
		}
	}()
	fi.Fail("map", 0, 0, 1)
}

func TestJobFilterScopesInjection(t *testing.T) {
	fi := NewFaultInjector(1, 0, 0)
	fi.Fail("map", 0, 0, 0.5)
	fi.JobFilter = func(out string) bool { return out == "/out.__uplus" }
	if fail, _ := fi.MapAttemptFor("/out.__dplus", 0, 0); fail {
		t.Fatal("filtered-out job was injected")
	}
	if fail, _ := fi.MapAttemptFor("/out.__uplus", 0, 0); !fail {
		t.Fatal("accepted job was not injected")
	}
	if fail, _ := fi.ReduceAttemptFor("/out.__dplus", 0, 0); fail {
		t.Fatal("filtered-out reduce was injected")
	}
	// Nil receiver and nil filter stay safe.
	var nilFI *FaultInjector
	if fail, _ := nilFI.MapAttemptFor("/out", 0, 0); fail {
		t.Fatal("nil injector failed an attempt")
	}
	fi.JobFilter = nil
	if fail, _ := fi.MapAttemptFor("/anything", 0, 0); !fail {
		t.Fatal("nil filter should accept every job")
	}
}

// distributedJobWithFaults runs a small distributed WordCount with the
// given injector and returns the result plus the profile.
func distributedJobWithFaults(t *testing.T, fi *FaultInjector) *Result {
	t.Helper()
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	rt.Faults = fi
	names, all := stageWordCountInput(t, rt, 4, 256<<10)
	res := runJob(t, rt, wcSpec(names, "/out"), ModeDistributed)
	if res.Err == nil {
		verifyWordCount(t, rt, "/out", all)
	}
	return res
}

func TestMapFailureRetriedOnFreshContainer(t *testing.T) {
	fi := failOnce("map", 2, 0)
	res := distributedJobWithFaults(t, fi)
	if res.Err != nil {
		t.Fatalf("job failed despite retry budget: %v", res.Err)
	}
	if fi.Injected != 1 {
		t.Fatalf("injected = %d", fi.Injected)
	}
	var failed, retried int
	for _, tp := range res.Profile.Tasks {
		if tp.Kind != profiler.MapTask || tp.Index != 2 {
			continue
		}
		if tp.Failed {
			failed++
		} else if tp.Attempt == 1 {
			retried++
		}
	}
	if failed != 1 || retried != 1 {
		t.Fatalf("profile records: failed=%d retried=%d", failed, retried)
	}
}

func TestMapFailureExhaustsAttempts(t *testing.T) {
	fi := NewFaultInjector(1, 0, 0)
	for attempt := 0; attempt < 8; attempt++ {
		fi.decisions[keyFor("map", 1, attempt)] = faultDecision{fail: true, point: 0.3}
	}
	res := distributedJobWithFaults(t, fi)
	if res.Err == nil {
		t.Fatal("job succeeded despite permanent task failure")
	}
	if !errors.Is(res.Err, ErrTaskFailed) {
		t.Fatalf("error %v does not wrap ErrTaskFailed", res.Err)
	}
}

func TestReduceFailureRetried(t *testing.T) {
	fi := failOnce("reduce", 0, 0)
	res := distributedJobWithFaults(t, fi)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	var reduceAttempts int
	for _, tp := range res.Profile.Tasks {
		if tp.Kind == profiler.ReduceTask {
			reduceAttempts++
		}
	}
	if reduceAttempts != 2 {
		t.Fatalf("reduce attempts recorded = %d, want 2 (failed + success)", reduceAttempts)
	}
}

func TestUberModeRetriesInPlace(t *testing.T) {
	rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
	rt.Faults = failOnce("map", 0, 0)
	names, all := stageWordCountInput(t, rt, 2, 128<<10)
	res := runJob(t, rt, wcSpec(names, "/out"), ModeUber)
	if res.Err != nil {
		t.Fatalf("uber job failed: %v", res.Err)
	}
	verifyWordCount(t, rt, "/out", all)
	if rt.Faults.Injected != 1 {
		t.Fatalf("injected = %d", rt.Faults.Injected)
	}
}

func TestFailureCostsTime(t *testing.T) {
	clean := distributedJobWithFaults(t, nil)
	faulty := distributedJobWithFaults(t, failOnce("map", 0, 0))
	if clean.Err != nil || faulty.Err != nil {
		t.Fatalf("jobs failed: %v / %v", clean.Err, faulty.Err)
	}
	if faulty.Elapsed() <= clean.Elapsed() {
		t.Fatalf("failure was free: clean %.2fs, faulty %.2fs", clean.Elapsed(), faulty.Elapsed())
	}
}

// Property: under random failure rates below certainty, jobs either finish
// with correct output or report a task-failure error — never hang, never
// silently corrupt.
func TestQuickRandomFailures(t *testing.T) {
	f := func(seed int64, prob8 uint8) bool {
		prob := float64(prob8%60) / 100 // 0–0.59 per-attempt failure rate
		rt := newTestRuntime(t, topology.A3, 4, yarn.NewStockScheduler())
		rt.Faults = NewFaultInjector(seed, prob, prob)
		names, all := stageWordCountInput(t, rt, 3, 64<<10)
		var res *Result
		rt.Eng.After(0, func() {
			Submit(rt, wcSpec(names, "/out"), ModeDistributed, func(r *Result) {
				res = r
				rt.RM.Stop()
			})
		})
		rt.Eng.RunUntil(horizon)
		if res == nil {
			return false // hung
		}
		if res.Err != nil {
			return errors.Is(res.Err, ErrTaskFailed)
		}
		want := map[string]int{}
		for _, w := range splitWords(all) {
			want[w]++
		}
		data, err := rt.DFS.Contents(PartFileName("/out", 0))
		if err != nil {
			return false
		}
		got, err := parseCounts(data)
		if err != nil || len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
