package mapreduce

import (
	"errors"
	"fmt"
	"strings"

	"mrapid/internal/hdfs"
	"mrapid/internal/topology"
)

// ErrIntermediateLost reports that an intra-query intermediate output died
// with its producer node before a consumer read it. Unlike HDFS files,
// intermediates are unreplicated — they live in the producer's memory or on
// its local disk, like U+ cache entries — so losing the node loses the
// data. The DAG runner answers this by reverting and re-running the
// producing stage (lineage recovery), the same move the AM makes for lost
// map outputs.
var ErrIntermediateLost = errors.New("mapreduce: intermediate output lost with its node")

// interFile is one committed intermediate file: the bytes, the node that
// produced (and holds) them, and that node's boot generation at commit
// time.
type interFile struct {
	data     []byte
	node     *topology.Node
	epoch    int
	inMemory bool
}

// available reports whether the entry can still be read: its node is up and
// has not rebooted since the commit. Empty entries carry no bytes and stay
// readable forever.
func (f *interFile) available() bool {
	return len(f.data) == 0 || f.node.AliveEpoch(f.epoch)
}

// IntermediateStore holds intra-query intermediate tables outside HDFS,
// extending the U+ in-memory cache idea from intra-job to inter-stage:
// committed reduce outputs stay in the producer node's memory while a
// shared budget lasts and spill to its local disk after, instead of paying
// a replicated HDFS write plus a re-read in the consuming stage. Entries
// are unreplicated and node-local, so consumers price their reads like
// shuffle fetches (memory | disk | network transports) and lose the data
// when the producer dies.
//
// All methods run on the engine goroutine, like every other Runtime method.
type IntermediateStore struct {
	// MemBudget bounds the bytes held in memory across all entries;
	// commits past it go to the producer's local disk.
	MemBudget int64

	files   map[string]*interFile
	memUsed int64

	// MemBytes and DiskBytes count committed bytes by residence;
	// HDFSBytesAvoided totals every commit — bytes that skipped the
	// replicated HDFS write path entirely.
	MemBytes         int64
	DiskBytes        int64
	HDFSBytesAvoided int64
}

// NewIntermediateStore builds an empty store with the given memory budget.
func NewIntermediateStore(memBudget int64) *IntermediateStore {
	return &IntermediateStore{MemBudget: memBudget, files: make(map[string]*interFile)}
}

// EnsureIntermediates attaches an intermediate store to the runtime (reusing
// the U+ cache budget as its memory bound) and returns it. Idempotent.
func (rt *Runtime) EnsureIntermediates() *IntermediateStore {
	if rt.Intermediates == nil {
		rt.Intermediates = NewIntermediateStore(rt.Params.UberCacheBytes)
	}
	return rt.Intermediates
}

// lookup returns the entry for a name, if present.
func (st *IntermediateStore) lookup(name string) (*interFile, bool) {
	f, ok := st.files[name]
	return f, ok
}

// Has reports whether the store holds a file under name (readable or not).
func (st *IntermediateStore) Has(name string) bool {
	_, ok := st.files[name]
	return ok
}

// Available reports whether a held file can still be read.
func (st *IntermediateStore) Available(name string) bool {
	f, ok := st.files[name]
	return ok && f.available()
}

// Size returns a held file's length in bytes.
func (st *IntermediateStore) Size(name string) (int64, bool) {
	f, ok := st.files[name]
	if !ok {
		return 0, false
	}
	return int64(len(f.data)), true
}

// MemUsed reports the bytes currently held in memory.
func (st *IntermediateStore) MemUsed() int64 { return st.memUsed }

// Contents returns a held file's bytes without charging any cost — the
// store-side counterpart of DFS.Contents, used by the memoization cache to
// snapshot a committed output. It refuses entries whose producer node died
// (the bytes are gone; pretending otherwise would cache data no consumer
// could have read).
func (st *IntermediateStore) Contents(name string) ([]byte, bool) {
	f, ok := st.files[name]
	if !ok || !f.available() {
		return nil, false
	}
	return f.data, true
}

// Holder returns the node that committed (and holds) a file.
func (st *IntermediateStore) Holder(name string) (*topology.Node, bool) {
	f, ok := st.files[name]
	if !ok {
		return nil, false
	}
	return f.node, true
}

// Put stores a file instantly, without charging any device — the
// bookkeeping primitive behind empty-stage short-circuits and renames. Use
// Runtime.CommitIntermediate for priced commits.
func (st *IntermediateStore) Put(name string, data []byte, node *topology.Node) {
	st.Delete(name)
	inMem := st.memUsed+int64(len(data)) <= st.MemBudget
	if inMem {
		st.memUsed += int64(len(data))
	}
	st.files[name] = &interFile{data: data, node: node, epoch: node.Epoch(), inMemory: inMem}
}

// Delete drops a file, refunding its memory budget. Unknown names are a
// no-op.
func (st *IntermediateStore) Delete(name string) {
	f, ok := st.files[name]
	if !ok {
		return
	}
	if f.inMemory {
		st.memUsed -= int64(len(f.data))
	}
	delete(st.files, name)
}

// DeletePrefix drops every file under a path prefix and reports how many.
func (st *IntermediateStore) DeletePrefix(prefix string) int {
	n := 0
	for name := range st.files {
		if strings.HasPrefix(name, prefix) {
			st.Delete(name)
			n++
		}
	}
	return n
}

// RenamePrefix moves every file under oldPrefix to newPrefix and reports
// how many, the store half of a speculative winner's output promotion.
func (st *IntermediateStore) RenamePrefix(oldPrefix, newPrefix string) int {
	n := 0
	for name, f := range st.files {
		if strings.HasPrefix(name, oldPrefix) {
			delete(st.files, name)
			st.files[newPrefix+name[len(oldPrefix):]] = f
			n++
		}
	}
	return n
}

// CommitIntermediate stores a reduce task's output bytes as an intermediate
// file on the producing node: free while the memory budget lasts, a local
// disk write after (no replication pipeline either way — that is the entire
// point). Last-writer-wins like the HDFS commit path: any stale entry from
// a superseded attempt is dropped first.
func (rt *Runtime) CommitIntermediate(name string, data []byte, node *topology.Node, done func(error)) {
	st := rt.Intermediates
	if st == nil {
		panic("mapreduce: CommitIntermediate without an intermediate store")
	}
	st.Delete(name)
	n := int64(len(data))
	st.HDFSBytesAvoided += n
	entry := &interFile{data: data, node: node, epoch: node.Epoch()}
	st.files[name] = entry
	if st.memUsed+n <= st.MemBudget {
		entry.inMemory = true
		st.memUsed += n
		st.MemBytes += n
		rt.Eng.After(0, func() { done(nil) })
		return
	}
	st.DiskBytes += n
	if n == 0 {
		rt.Eng.After(0, func() { done(nil) })
		return
	}
	node.Disk.Use(n, func() { done(nil) })
}

// Splits computes a job's input splits with the intermediate store layered
// over HDFS: files the store holds get synthesized splits (chunked at the
// HDFS block size, hosted on the producer node); everything else falls
// through to DFS.Splits. Split indices are renumbered to stay ordinal
// within the combined list. Entries whose node died are still listed — the
// read surfaces ErrIntermediateLost, which the failing job's owner answers
// with lineage recovery.
func (rt *Runtime) Splits(files []string) ([]*hdfs.Split, error) {
	st := rt.Intermediates
	if st == nil {
		return rt.DFS.Splits(files)
	}
	var splits []*hdfs.Split
	for _, name := range files {
		if f, ok := st.lookup(name); ok {
			block := rt.Params.HDFSBlockBytes
			for off := int64(0); off < int64(len(f.data)); off += block {
				length := min(block, int64(len(f.data))-off)
				splits = append(splits, &hdfs.Split{
					File: name, Index: len(splits), Offset: off, Length: length,
					Hosts: []*topology.Node{f.node},
				})
			}
			continue
		}
		fs, err := rt.DFS.Splits([]string{name})
		if err != nil {
			return nil, err
		}
		for _, s := range fs {
			s.Index = len(splits)
			splits = append(splits, s)
		}
	}
	return splits, nil
}

// ReadSplit reads one input split on behalf of a map task running on node.
// Intermediate-store splits are priced like shuffle fetches — free from the
// producer's memory on the same node, a local disk read, or a network
// transfer (source disk, both NICs, core switch across racks) — and
// observed under kind "intermediate" with the matching transport label.
// Everything else is a plain locality-priced HDFS range read.
func (rt *Runtime) ReadSplit(split *hdfs.Split, node *topology.Node, done func([]byte, error)) {
	st := rt.Intermediates
	var f *interFile
	if st != nil {
		f, _ = st.lookup(split.File)
	}
	if f == nil {
		rt.DFS.ReadRange(split.File, split.Offset, split.Length, node, done)
		return
	}
	lost := func() {
		rt.Eng.After(rt.Params.RPCLatency, func() {
			done(nil, fmt.Errorf("reading %s: %w", split, ErrIntermediateLost))
		})
	}
	if !f.available() {
		lost()
		return
	}
	data := f.data[split.Offset : split.Offset+split.Length]
	n := split.Length
	transport := "disk"
	if f.inMemory {
		transport = "memory"
	}
	if f.node != node {
		transport = "network"
	}
	finish := func() {
		// A read in flight when the producer dies is a failed read, like a
		// dropped shuffle connection.
		if !f.available() {
			lost()
			return
		}
		rt.ObserveShuffle("intermediate", transport, n)
		done(data, nil)
	}
	switch {
	case f.inMemory && f.node == node:
		rt.Eng.After(0, finish)
	case f.node == node:
		node.Disk.Use(n, finish)
	default:
		pending := 0
		armed := false
		complete := func() {
			pending--
			if pending == 0 && armed {
				finish()
			}
		}
		if !f.inMemory {
			pending++
			f.node.Disk.Use(n, complete)
		}
		pending++
		f.node.NIC.Use(n, complete)
		pending++
		node.NIC.Use(n, complete)
		if f.node.Rack != node.Rack {
			pending++
			rt.Cluster.CoreSwitch.Use(n, complete)
		}
		armed = true
		if pending == 0 {
			rt.Eng.After(0, finish)
		}
	}
}

// DeleteOutput removes one committed output file from wherever it lives —
// the intermediate store, HDFS, or both. Used by recovery paths that wipe
// a superseded attempt's part files.
func (rt *Runtime) DeleteOutput(name string) {
	if rt.Intermediates != nil {
		rt.Intermediates.Delete(name)
	}
	if rt.DFS.Exists(name) {
		_ = rt.DFS.Delete(name)
	}
}

// DeleteOutputPrefix removes every output file under a prefix from both the
// intermediate store and HDFS.
func (rt *Runtime) DeleteOutputPrefix(prefix string) {
	if rt.Intermediates != nil {
		rt.Intermediates.DeletePrefix(prefix)
	}
	rt.DFS.DeletePrefix(prefix)
}

// RenameOutputPrefix moves every output file under oldPrefix to newPrefix
// in both the intermediate store and HDFS — the speculative race's winner
// promotion, which must work whether the racing modes committed to HDFS or
// to the store.
func (rt *Runtime) RenameOutputPrefix(oldPrefix, newPrefix string) error {
	if rt.Intermediates != nil {
		rt.Intermediates.RenamePrefix(oldPrefix, newPrefix)
	}
	_, err := rt.DFS.RenamePrefix(oldPrefix, newPrefix)
	return err
}
