package mapreduce

import "testing"

// Named package-level transforms: distinct symbols with identical shapes,
// so ClassKey cannot tell them apart but SpecFingerprint must.
func fpMapA(_, line []byte, emit Emit)            { emit(line, nil) }
func fpMapB(_, line []byte, emit Emit)            { emit(nil, line) }
func fpReduce(key []byte, _ [][]byte, emit Emit)  { emit(key, nil) }
func fpCombine(key []byte, _ [][]byte, emit Emit) { emit(key, nil) }

// fpMakeGrep returns a parameterized closure from a single definition site,
// the shape a query compiler's predicate factory has. noinline matters: an
// inlined factory would give each call site its own closure symbol, hiding
// exactly the collision this file pins down.
//
//go:noinline
func fpMakeGrep(word string) MapFunc {
	return func(_, line []byte, emit Emit) { emit([]byte(word), line) }
}

func fpSpec() *JobSpec {
	return &JobSpec{
		Name:       "fp",
		JobKey:     "fp",
		InputFiles: []string{"/in/a", "/in/b"},
		OutputFile: "/out",
		NumReduces: 2,
		Format:     LineFormat{},
		Map:        fpMapA,
		Reduce:     fpReduce,
		MapRate:    1e6,
		ReduceRate: 2e6,
	}
}

// TestSpecFingerprintSensitivity mirrors TestFingerprintSensitivity for the
// job-spec fingerprint: identical specs agree, and every content change —
// transform identity, parameters, input set — moves the fingerprint, even
// when the shape-only ClassKey stays put.
func TestSpecFingerprintSensitivity(t *testing.T) {
	base := fpSpec()
	if got, again := base.SpecFingerprint(), fpSpec().SpecFingerprint(); got != again {
		t.Fatalf("identical specs disagree: %s vs %s", got, again)
	}

	// Same shape, different program: the workload-class key must pool them
	// (that is its job) while the memo fingerprint must separate them.
	other := fpSpec()
	other.Map = fpMapB
	if base.ClassKey() != other.ClassKey() {
		t.Fatal("ClassKey should be shape-only: swapping the map symbol changed it")
	}
	if base.SpecFingerprint() == other.SpecFingerprint() {
		t.Fatal("SpecFingerprint blind to the map function's identity")
	}

	mutations := map[string]func(*JobSpec){
		"combiner added":  func(s *JobSpec) { s.Combine = fpCombine },
		"reduce count":    func(s *JobSpec) { s.NumReduces = 3 },
		"map rate":        func(s *JobSpec) { s.MapRate = 3e6 },
		"reduce rate":     func(s *JobSpec) { s.ReduceRate = 1e6 },
		"fixed cost":      func(s *JobSpec) { s.MapFixedCost = 1 },
		"input added":     func(s *JobSpec) { s.InputFiles = append(s.InputFiles, "/in/c") },
		"input removed":   func(s *JobSpec) { s.InputFiles = s.InputFiles[:1] },
		"input renamed":   func(s *JobSpec) { s.InputFiles = []string{"/in/a", "/in/B"} },
		"partitioner set": func(s *JobSpec) { s.Partition = HashPartition },
		"format to fixed": func(s *JobSpec) { s.Format = FixedFormat{KeyLen: 10, ValLen: 90} },
		"reduce swapped":  func(s *JobSpec) { s.Reduce = fpCombine },
	}
	for name, mutate := range mutations {
		s := fpSpec()
		mutate(s)
		if s.SpecFingerprint() == base.SpecFingerprint() {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}

	// Input *order* is not part of the computation: splits are planned per
	// file, so a permuted list is the same job.
	perm := fpSpec()
	perm.InputFiles = []string{"/in/b", "/in/a"}
	if perm.SpecFingerprint() != base.SpecFingerprint() {
		t.Fatal("input order changed the fingerprint")
	}

	// Name/JobKey are submission identity, not computation: two tenants
	// submitting the same program over the same files must share an entry.
	renamed := fpSpec()
	renamed.Name, renamed.JobKey = "fp#2", "tenant-b"
	if renamed.SpecFingerprint() != base.SpecFingerprint() {
		t.Fatal("submission identity leaked into the fingerprint")
	}
}

// TestMemoSafe pins the closure guard: named package-level transforms are
// fingerprintable, closures (whose symbols collapse to one ".funcN" per
// definition site regardless of captures) are not.
func TestMemoSafe(t *testing.T) {
	if !fpSpec().MemoSafe() {
		t.Fatal("spec with named transforms reported unsafe")
	}
	capture := "x"
	cl := fpSpec()
	cl.Map = func(_, line []byte, emit Emit) { emit([]byte(capture), line) }
	if cl.MemoSafe() {
		t.Fatal("spec with a closure map reported memo-safe")
	}
	// The hazard MemoSafe exists for: two closures from one definition site
	// with different captured state share a fingerprint.
	s1, s2 := fpSpec(), fpSpec()
	s1.Map, s2.Map = fpMakeGrep("ERROR"), fpMakeGrep("WARN")
	if s1.SpecFingerprint() != s2.SpecFingerprint() {
		t.Fatal("expected the closure collision the MemoSafe guard protects against")
	}
	if s1.MemoSafe() || s2.MemoSafe() {
		t.Fatal("colliding closure specs reported memo-safe")
	}
}
