// Package mapreduce implements the simulated MapReduce runtime: job
// specifications with real map/reduce functions, record formats, the map
// task's sub-phases (read, map, spill, merge), shuffle, reduce, the
// distributed-mode ApplicationMaster, and the stock Uber mode. Jobs compute
// real answers over real bytes in the simulated HDFS while every phase is
// charged to the virtual clock.
package mapreduce

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"mrapid/internal/hdfs"
	"mrapid/internal/topology"
)

// Pair is one intermediate or output key/value record.
type Pair struct {
	Key   []byte
	Value []byte
}

// Bytes returns the serialized size of the pair, the unit charged to disks
// and networks. The +8 models the two length prefixes of Hadoop's
// IFile format.
func (p Pair) Bytes() int64 { return int64(len(p.Key)+len(p.Value)) + 8 }

// Emit is the output callback handed to map, combine, and reduce functions.
type Emit func(key, value []byte)

// MapFunc consumes one record and emits intermediate pairs.
type MapFunc func(key, value []byte, emit Emit)

// ReduceFunc consumes one key and all its values (sorted ordering of keys is
// guaranteed by the framework) and emits output pairs.
type ReduceFunc func(key []byte, values [][]byte, emit Emit)

// PartitionFunc routes a key to one of n reduce partitions.
type PartitionFunc func(key []byte, n int) int

// HashPartition is the default partitioner (Hadoop's HashPartitioner).
func HashPartition(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// RecordFormat splits raw input bytes into records.
type RecordFormat interface {
	// Scan invokes yield for every record in data.
	Scan(data []byte, yield func(key, value []byte))
}

// LineFormat yields one record per newline-terminated line (TextInputFormat):
// the key is unused (nil) and the value is the line without its newline.
type LineFormat struct{}

// Scan implements RecordFormat.
func (LineFormat) Scan(data []byte, yield func(key, value []byte)) {
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			yield(nil, data)
			return
		}
		yield(nil, data[:i])
		data = data[i+1:]
	}
}

// FixedFormat yields fixed-length records of KeyLen+ValLen bytes, the shape
// of TeraSort's 100-byte rows (10-byte key, 90-byte payload). A trailing
// partial record is ignored, matching TeraInputFormat.
type FixedFormat struct {
	KeyLen int
	ValLen int
}

// Scan implements RecordFormat.
func (f FixedFormat) Scan(data []byte, yield func(key, value []byte)) {
	rec := f.KeyLen + f.ValLen
	if rec <= 0 {
		panic("mapreduce: FixedFormat needs positive record length")
	}
	for len(data) >= rec {
		yield(data[:f.KeyLen], data[f.KeyLen:rec])
		data = data[rec:]
	}
}

// JobSpec describes one MapReduce job: its real functions, its input and
// output locations, and the compute-cost coefficients the virtual clock
// charges for the map and reduce functions.
type JobSpec struct {
	// Name labels this submission; JobKey identifies the program for the
	// decision-maker's history ("the execution records of the same job,
	// even if they were executed with different input data").
	Name   string
	JobKey string

	InputFiles []string
	OutputFile string
	NumReduces int

	// IntermediateOutput marks a job whose output is an intra-query
	// intermediate: when the runtime has an IntermediateStore attached, the
	// reduce commit lands there (producer-local memory or disk, no HDFS
	// replication) and downstream stages read it shuffle-style. The final
	// stage of a query leaves this false so results stay in HDFS.
	IntermediateOutput bool

	// Queue is the YARN tenant queue every app of this job submits to
	// ("" = default). The JobServer stamps it from the submitting tenant so
	// the RM's per-queue capacity ceilings bound the job's containers on
	// every execution path, pooled or stock.
	Queue string

	Format    RecordFormat
	Map       MapFunc
	Combine   ReduceFunc // optional map-side combiner
	Reduce    ReduceFunc
	Partition PartitionFunc // defaults to HashPartition

	// MapFor, when set, selects the map function per input file and
	// overrides Map wherever it returns non-nil. Repartition joins use it
	// to tag the two sides of the join differently.
	MapFor func(file string) MapFunc

	// MapRate is the map function's compute throughput in input bytes per
	// second on one reference core; zero means the map function itself is
	// free (I/O only). MapFixedCost is charged per task regardless of input
	// size — compute-bound jobs like PI put their whole cost here via
	// SplitCost.
	MapRate      float64
	MapFixedCost time.Duration
	// SplitCost, when set, returns extra per-split compute (e.g. PI's
	// sample count encoded in the split's file).
	SplitCost func(s *hdfs.Split) time.Duration

	// ReduceRate is the reduce function's throughput over its input bytes
	// per second on one reference core.
	ReduceRate float64

	// MemoKey / MemoDigest, when MemoKey is non-empty, override the
	// memoization cache's automatic identity for this job: MemoKey names the
	// computation and MemoDigest fingerprints its inputs. The query layer
	// sets them from plan-content signatures and lineage digests, because
	// its transform closures all share one function symbol — the automatic
	// SpecFingerprint/MemoSafe path would either refuse them or, worse,
	// collide distinct predicates. Callers that set MemoKey take over the
	// collision-freedom obligation.
	MemoKey    string
	MemoDigest uint64
}

// Validate checks the spec is runnable.
func (s *JobSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("mapreduce: job needs a name")
	case len(s.InputFiles) == 0:
		return fmt.Errorf("mapreduce: job %q has no input files", s.Name)
	case s.OutputFile == "":
		return fmt.Errorf("mapreduce: job %q has no output file", s.Name)
	case s.NumReduces <= 0:
		return fmt.Errorf("mapreduce: job %q needs at least one reduce", s.Name)
	case s.Format == nil:
		return fmt.Errorf("mapreduce: job %q has no record format", s.Name)
	case s.Map == nil && s.MapFor == nil:
		return fmt.Errorf("mapreduce: job %q has no map function", s.Name)
	case s.Reduce == nil:
		return fmt.Errorf("mapreduce: job %q has no reduce function", s.Name)
	case s.MapRate < 0 || s.ReduceRate < 0:
		return fmt.Errorf("mapreduce: job %q has negative compute rates", s.Name)
	}
	return nil
}

// Key returns the history key, falling back to the name.
func (s *JobSpec) Key() string {
	if s.JobKey != "" {
		return s.JobKey
	}
	return s.Name
}

// ClassKey fingerprints the job's workload class: the structural program
// shape (record format, compute rates, reduce count, presence of combiner /
// per-file maps / split costs) without its identity or inputs. Jobs that
// share a class key behave alike per input byte, so the decision maker's
// calibrating estimator can generalize execution records across similar
// jobs that never share an exact Key.
//
// ClassKey is intentionally shape-only and therefore lossy: two different
// programs with the same structure (say, grep-for-ERROR and grep-for-WARN,
// both LineFormat × 1 reduce × equal rates) share a class, which is exactly
// what lets the estimator pool their timing samples. That lossiness makes it
// unusable as a cache key — reusing grep-for-ERROR's output for a
// grep-for-WARN submission would be wrong. SpecFingerprint is the
// content-sensitive counterpart the memoization cache keys on.
func (s *JobSpec) ClassKey() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%T|%d|%g|%g|%d|%v|%v|%v",
		s.Format, s.NumReduces, s.MapRate, s.ReduceRate, s.MapFixedCost,
		s.Combine != nil, s.MapFor != nil, s.SplitCost != nil)
	return fmt.Sprintf("class-%016x", h.Sum64())
}

// funcSymbol resolves a function value to its linker symbol name
// ("mrapid/internal/workloads.wordCountMap"), the identity the memoization
// fingerprint hashes. Nil-safe: nil functions map to "".
func funcSymbol(fn interface{}) string {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.IsNil() {
		return ""
	}
	f := runtime.FuncForPC(v.Pointer())
	if f == nil {
		return ""
	}
	return f.Name()
}

// SpecFingerprint fingerprints the job's *computation*: which transform
// functions run (by linker symbol), with which parameters, over which input
// set. Unlike the shape-only ClassKey it distinguishes grep-for-ERROR from
// grep-for-WARN, WordCount with and without its combiner, and the same
// program pointed at different files — any two specs that could produce
// different output bytes get different fingerprints. Paired with the HDFS
// write-generation digest of the inputs it forms the memoization cache key:
// same fingerprint × same input digest ⇒ same committed output.
//
// The function identity is the package-level symbol name, which is exact for
// named functions but blind to captured state — every closure from one
// definition site shares a symbol. MemoSafe gates on that: specs carrying
// closures are never auto-memoized (the query layer provides explicit
// MemoKeys built from plan content instead).
func (s *JobSpec) SpecFingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%T|%d|%g|%g|%d", s.Format, s.NumReduces,
		s.MapRate, s.ReduceRate, s.MapFixedCost)
	fmt.Fprintf(h, "|map=%s|combine=%s|reduce=%s|part=%s|mapfor=%s|splitcost=%s",
		funcSymbol(s.Map), funcSymbol(s.Combine), funcSymbol(s.Reduce),
		funcSymbol(s.Partition), funcSymbol(s.MapFor), funcSymbol(s.SplitCost))
	// The input *set* is part of the computation; order is not (splits are
	// planned per file), so hash a sorted copy.
	inputs := append([]string(nil), s.InputFiles...)
	sort.Strings(inputs)
	for _, in := range inputs {
		fmt.Fprintf(h, "|in=%s", in)
	}
	return fmt.Sprintf("spec-%016x", h.Sum64())
}

// MemoSafe reports whether SpecFingerprint fully captures this job's
// computation: every configured transform must be a named package-level
// function. A closure's symbol ends in a ".funcN" segment and is shared by
// all instances from that definition site regardless of captured variables,
// so two semantically different jobs could collide — such specs are only
// memoized when the caller supplies an explicit MemoKey.
func (s *JobSpec) MemoSafe() bool {
	for _, sym := range []string{
		funcSymbol(s.Map), funcSymbol(s.Combine), funcSymbol(s.Reduce),
		funcSymbol(s.Partition), funcSymbol(s.MapFor), funcSymbol(s.SplitCost),
	} {
		if i := strings.LastIndexByte(sym, '.'); i >= 0 && strings.HasPrefix(sym[i+1:], "func") {
			return false
		}
	}
	return true
}

// partitioner returns the configured or default partition function.
func (s *JobSpec) partitioner() PartitionFunc {
	if s.Partition != nil {
		return s.Partition
	}
	return HashPartition
}

// MapComputeTime returns the virtual compute duration of the map function
// over n input bytes on the given node.
func (s *JobSpec) MapComputeTime(split *hdfs.Split, n int64, node *topology.Node) time.Duration {
	d := s.MapFixedCost
	if s.MapRate > 0 {
		d += time.Duration(float64(n) / (s.MapRate * node.Type.CPUSpeed) * float64(time.Second))
	}
	if s.SplitCost != nil && split != nil {
		d += time.Duration(float64(s.SplitCost(split)) / node.Type.CPUSpeed)
	}
	return d
}

// ReduceComputeTime returns the virtual compute duration of the reduce
// function over n shuffled bytes on the given node.
func (s *JobSpec) ReduceComputeTime(n int64, node *topology.Node) time.Duration {
	if s.ReduceRate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (s.ReduceRate * node.Type.CPUSpeed) * float64(time.Second))
}
