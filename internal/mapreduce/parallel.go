package mapreduce

import "runtime"

// DefaultWorkers returns the pool size used when a caller asks for "all
// cores": the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Host-side parallel execution layer.
//
// The discrete-event engine is strictly single-threaded: every virtual-time
// charge and every completion callback fires on the one goroutine driving
// sim.Engine. The *pure* computations embedded in the simulation, however —
// ExecMapFile scans/sorts, ExecReduce merges — have no effect on virtual
// time beyond their already-known cost-model charges, so they can run on
// real OS threads while the engine keeps processing other events.
//
// The pattern is dispatch-early / await-late: a task's computation is
// submitted to the WorkerPool the moment its input bytes are known (a point
// in virtual time), and the engine blocks on the Future only at the later
// virtual instant where the result feeds back into the simulation (output
// sizes for the sort charge, encoded bytes for the HDFS write). Because the
// await happens at exactly the event where the sequential path ran the
// computation inline, the event order, every virtual timestamp, and every
// output byte are identical whether zero, one, or N workers execute the
// closures — only host wall-clock time changes.
type WorkerPool struct {
	jobs      chan func()
	size      int
	closeOnce chan struct{} // closed exactly once by Close
}

// NewWorkerPool starts size worker goroutines; size <= 0 means
// DefaultWorkers (GOMAXPROCS).
func NewWorkerPool(size int) *WorkerPool {
	if size <= 0 {
		size = DefaultWorkers()
	}
	p := &WorkerPool{
		jobs:      make(chan func(), 4*size),
		size:      size,
		closeOnce: make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		go func() {
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Size reports the number of worker goroutines.
func (p *WorkerPool) Size() int { return p.size }

// Submit enqueues f for execution; it blocks when the bounded queue is
// full, providing natural backpressure on the dispatching engine thread.
func (p *WorkerPool) Submit(f func()) { p.jobs <- f }

// Close stops the workers after queued work drains. Futures already
// submitted still resolve; Submit after Close panics.
func (p *WorkerPool) Close() {
	select {
	case <-p.closeOnce:
		return
	default:
		close(p.closeOnce)
		close(p.jobs)
	}
}

// Future is the pending result of a computation dispatched with Async.
type Future[T any] struct {
	done chan struct{}
	val  T
}

// Wait blocks until the computation finishes and returns its result. It is
// safe to call from any goroutine and more than once.
func (f *Future[T]) Wait() T {
	<-f.done
	return f.val
}

// Resolved reports whether Wait would return without blocking.
func (f *Future[T]) Resolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Async runs fn on the pool and returns its Future. A nil pool runs fn
// inline before returning — the sequential path — so call sites need no
// branching between modes.
func Async[T any](p *WorkerPool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.val = fn()
		close(f.done)
		return f
	}
	p.Submit(func() {
		f.val = fn()
		close(f.done)
	})
	return f
}
