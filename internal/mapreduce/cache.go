package mapreduce

import (
	"fmt"
	"hash/fnv"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// MapCache memoizes pure ExecMap results across simulations. The benchmark
// harness compares four execution modes over byte-identical inputs; the map
// function's real output is the same every time, only the virtual-clock
// charges differ, so recomputing it per mode is pure host-CPU waste. The
// cache is keyed by the job identity plus a hash of the full split content,
// and it never affects simulated timing: ExecMap is instantaneous on the
// virtual clock whether it hits or misses.
//
// MapCache is safe for concurrent use: entries live in sharded,
// mutex-protected maps so worker-pool goroutines (Runtime.Workers > 1) and
// the engine goroutine can hit it simultaneously, and a single
// mutex-protected FIFO ledger enforces the global byte budget on the rarer
// store path.
type MapCache struct {
	shards [cacheShardCount]cacheShard

	// mu guards the eviction ledger: insertion order and retained bytes.
	mu    sync.Mutex
	limit int64
	used  int64
	order []string // FIFO eviction
	count int64

	hits   atomic.Int64
	misses atomic.Int64
}

const cacheShardCount = 16

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cachedExec
}

type cachedExec struct {
	partitions [][]Pair
	partBytes  []int64
	totalBytes int64
	records    int64
	retained   int64 // approximate host bytes held alive
}

// NewMapCache creates a cache that evicts oldest-first once the retained
// host bytes exceed limit.
func NewMapCache(limitBytes int64) *MapCache {
	if limitBytes <= 0 {
		panic("mapreduce: MapCache needs a positive limit")
	}
	c := &MapCache{limit: limitBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cachedExec)
	}
	return c
}

// key builds the cache key: job identity, split coordinates, partitioning
// configuration, and the full-content hash guarding against two generators
// producing different bytes under the same names.
func (c *MapCache) key(spec *JobSpec, file string, offset int64, data []byte) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%t|%x",
		spec.Key(), file, offset, len(data), spec.NumReduces, spec.Combine != nil, fingerprint(data))
}

// fingerprintSeed is fixed per process; the cache never outlives it.
var fingerprintSeed = maphash.MakeSeed()

// fingerprint hashes the entire split content. An earlier version sampled
// three 4 KiB windows, which let two same-length splits differing only
// outside the windows collide — a silent wrong-output bug on a cache hit.
// Hashing everything (maphash runs at memory speed) is still far cheaper
// than re-running the map function.
func fingerprint(data []byte) uint64 {
	return maphash.Bytes(fingerprintSeed, data)
}

// shardFor picks the shard holding a key.
func (c *MapCache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShardCount]
}

// lookup returns a previously computed result for identical input, if any.
// The returned MapOutput gets its own PartBytes slice — callers treat it as
// their own — while the (immutable once stored) partition data is shared.
func (c *MapCache) lookup(spec *JobSpec, file string, offset int64, data []byte) (*MapOutput, bool) {
	k := c.key(spec, file, offset, data)
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return &MapOutput{
		Partitions: e.partitions,
		PartBytes:  append([]int64(nil), e.partBytes...),
		TotalBytes: e.totalBytes,
		Records:    e.records,
	}, true
}

// store saves a computed result, evicting oldest entries past the budget.
// Concurrent stores of the same key keep the first; the cache never holds
// two entries for one key.
func (c *MapCache) store(spec *JobSpec, file string, offset int64, data []byte, mo *MapOutput) {
	k := c.key(spec, file, offset, data)
	// Pairs alias the input data, so the whole split stays alive.
	retained := int64(len(data)) + mo.TotalBytes + 48*mo.Records
	e := &cachedExec{
		partitions: mo.Partitions,
		partBytes:  append([]int64(nil), mo.PartBytes...),
		totalBytes: mo.TotalBytes,
		records:    mo.Records,
		retained:   retained,
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if _, exists := s.entries[k]; exists {
		s.mu.Unlock()
		return
	}
	s.entries[k] = e
	s.mu.Unlock()

	c.mu.Lock()
	c.order = append(c.order, k)
	c.used += retained
	c.count++
	// Evict down to the budget, always keeping at least one entry so
	// oversized splits still memoize.
	for c.used > c.limit && len(c.order) > 1 {
		victim := c.order[0]
		c.order = c.order[1:]
		vs := c.shardFor(victim)
		vs.mu.Lock()
		if v, ok := vs.entries[victim]; ok {
			c.used -= v.retained
			c.count--
			delete(vs.entries, victim)
		}
		vs.mu.Unlock()
	}
	c.mu.Unlock()
}

// Len reports the number of cached map results.
func (c *MapCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.count)
}

// Used reports the approximate retained host bytes.
func (c *MapCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Hits reports how many lookups found an entry.
func (c *MapCache) Hits() int64 { return c.hits.Load() }

// Misses reports how many lookups came up empty.
func (c *MapCache) Misses() int64 { return c.misses.Load() }
