package mapreduce

import (
	"fmt"
	"hash/fnv"
)

// MapCache memoizes pure ExecMap results across simulations. The benchmark
// harness compares four execution modes over byte-identical inputs; the map
// function's real output is the same every time, only the virtual-clock
// charges differ, so recomputing it per mode is pure host-CPU waste. The
// cache is keyed by the job identity plus a fingerprint of the actual split
// bytes, and it never affects simulated timing: ExecMap is instantaneous on
// the virtual clock whether it hits or misses.
type MapCache struct {
	limit   int64
	used    int64
	entries map[string]*cachedExec
	order   []string // FIFO eviction

	Hits   int64
	Misses int64
}

type cachedExec struct {
	partitions [][]Pair
	partBytes  []int64
	totalBytes int64
	records    int64
	retained   int64 // approximate host bytes held alive
}

// NewMapCache creates a cache that evicts oldest-first once the retained
// host bytes exceed limit.
func NewMapCache(limitBytes int64) *MapCache {
	if limitBytes <= 0 {
		panic("mapreduce: MapCache needs a positive limit")
	}
	return &MapCache{limit: limitBytes, entries: make(map[string]*cachedExec)}
}

// key builds the cache key: job identity, split coordinates, partitioning
// configuration, and a content fingerprint guarding against two generators
// producing different bytes under the same names.
func (c *MapCache) key(spec *JobSpec, file string, offset int64, data []byte) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%t|%x",
		spec.Key(), file, offset, len(data), spec.NumReduces, spec.Combine != nil, fingerprint(data))
}

// fingerprint hashes the length plus three sampled windows — cheap on
// multi-megabyte splits yet specific enough for deterministic generators.
func fingerprint(data []byte) uint64 {
	h := fnv.New64a()
	var lenBuf [8]byte
	n := len(data)
	for i := 0; i < 8; i++ {
		lenBuf[i] = byte(n >> (8 * i))
	}
	h.Write(lenBuf[:])
	const window = 4 << 10
	for _, start := range []int{0, n/2 - window/2, n - window} {
		if start < 0 {
			start = 0
		}
		end := start + window
		if end > n {
			end = n
		}
		h.Write(data[start:end])
	}
	return h.Sum64()
}

// lookup returns a previously computed result for identical input, if any.
func (c *MapCache) lookup(spec *JobSpec, file string, offset int64, data []byte) (*MapOutput, bool) {
	e, ok := c.entries[c.key(spec, file, offset, data)]
	if !ok {
		c.Misses++
		return nil, false
	}
	c.Hits++
	return &MapOutput{
		Partitions: e.partitions,
		PartBytes:  e.partBytes,
		TotalBytes: e.totalBytes,
		Records:    e.records,
	}, true
}

// store saves a computed result, evicting oldest entries past the budget.
func (c *MapCache) store(spec *JobSpec, file string, offset int64, data []byte, mo *MapOutput) {
	k := c.key(spec, file, offset, data)
	if _, exists := c.entries[k]; exists {
		return
	}
	// Pairs alias the input data, so the whole split stays alive.
	retained := int64(len(data)) + mo.TotalBytes + 48*mo.Records
	e := &cachedExec{
		partitions: mo.Partitions,
		partBytes:  mo.PartBytes,
		totalBytes: mo.TotalBytes,
		records:    mo.Records,
		retained:   retained,
	}
	c.entries[k] = e
	c.order = append(c.order, k)
	c.used += retained
	for c.used > c.limit && len(c.order) > 1 {
		victim := c.order[0]
		c.order = c.order[1:]
		if v, ok := c.entries[victim]; ok {
			c.used -= v.retained
			delete(c.entries, victim)
		}
	}
}

// Len reports the number of cached map results.
func (c *MapCache) Len() int { return len(c.entries) }

// Used reports the approximate retained host bytes.
func (c *MapCache) Used() int64 { return c.used }
