// Package query implements a miniature Hive/Pig-style dataflow frontend
// over the MapReduce runtime — the workload that motivates the paper:
// "higher level query languages, such as Hive and Pig, would handle a
// complex query by breaking it into smaller ad-hoc ones." A logical plan
// (scan → filter/project → group-by / join / order-by) compiles into a
// chain of short MapReduce jobs, each submitted through the MRapid
// framework, with intermediate tables materialized in HDFS.
package query

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"mrapid/internal/hdfs"
	"mrapid/internal/topology"
)

// colSep separates columns inside an encoded row. Rows travel through the
// MapReduce runtime as pair keys/values, whose own framing uses tabs and
// newlines, so columns use the ASCII unit separator.
const colSep = "\x1f"

// Schema names a table's columns, in order.
type Schema []string

// Index returns a column's position, or an error naming the column.
func (s Schema) Index(col string) (int, error) {
	for i, c := range s {
		if c == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("query: unknown column %q (have %v)", col, []string(s))
}

// Row is one record: column values as strings, parallel to the schema.
type Row []string

// EncodeRow serializes a row for transport through pair keys/values.
func EncodeRow(r Row) []byte { return []byte(strings.Join(r, colSep)) }

// DecodeRow parses an encoded row. An empty encoding decodes as one empty
// column: zero-width rows cannot exist (schemas are non-empty), so the
// single-empty-column reading makes Encode/Decode a lossless round trip for
// every legal row.
func DecodeRow(b []byte) Row {
	return Row(strings.Split(string(b), colSep))
}

// Table is a named relation stored as one or more HDFS files of
// newline-separated encoded rows.
type Table struct {
	Name   string
	Files  []string
	Schema Schema
}

// Catalog registers tables over one DFS.
type Catalog struct {
	dfs     *hdfs.DFS
	cluster *topology.Cluster
	tables  map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog(dfs *hdfs.DFS, cluster *topology.Cluster) *Catalog {
	return &Catalog{dfs: dfs, cluster: cluster, tables: make(map[string]*Table)}
}

// Lookup returns a registered table.
func (c *Catalog) Lookup(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown table %q", name)
	}
	return t, nil
}

// Register adds an existing table (e.g. a query result) to the catalog.
func (c *Catalog) Register(t *Table) error {
	if t.Name == "" || len(t.Schema) == 0 {
		return fmt.Errorf("query: table needs a name and schema")
	}
	if len(t.Files) == 0 {
		return fmt.Errorf("query: table %q has no files", t.Name)
	}
	if _, exists := c.tables[t.Name]; exists {
		return fmt.Errorf("query: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Create materializes rows as a new table spread over files input files,
// staged instantly (experiment setup, like the workload generators).
func (c *Catalog) Create(name string, schema Schema, rows []Row, files int) (*Table, error) {
	if files <= 0 {
		files = 1
	}
	for _, r := range rows {
		if len(r) != len(schema) {
			return nil, fmt.Errorf("query: row width %d != schema width %d", len(r), len(schema))
		}
		// The runtime's framing bytes (tab, newline), the column separator,
		// and NUL (reserved by the descending-sort encoding) may not appear
		// inside values: a value smuggling one of them would silently corrupt
		// every downstream row decode.
		for j, v := range r {
			if strings.ContainsAny(v, "\t\n"+colSep+"\x00") {
				return nil, fmt.Errorf("query: value %q for column %q contains a reserved byte (tab, newline, 0x1f, or NUL)", v, schema[j])
			}
		}
	}
	t := &Table{Name: name, Schema: schema}
	workers := c.cluster.Workers()
	perFile := (len(rows) + files - 1) / files
	for i := 0; i < files; i++ {
		lo := i * perFile
		if lo >= len(rows) && i > 0 {
			break
		}
		hi := lo + perFile
		if hi > len(rows) {
			hi = len(rows)
		}
		var buf bytes.Buffer
		for _, r := range rows[lo:hi] {
			buf.Write(EncodeRow(r))
			buf.WriteByte('\n')
		}
		file := fmt.Sprintf("/warehouse/%s/part-%05d", name, i)
		if _, err := c.dfs.PutInstant(file, buf.Bytes(), workers[i%len(workers)]); err != nil {
			return nil, err
		}
		t.Files = append(t.Files, file)
	}
	if err := c.Register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadTable loads a table's rows (costlessly; for verification and for
// returning final results to the caller).
func (c *Catalog) ReadTable(t *Table) ([]Row, error) {
	var rows []Row
	for _, f := range t.Files {
		data, err := c.dfs.Contents(f)
		if err != nil {
			return nil, err
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			// Result part files are pair-encoded: key TAB value. The row
			// lives in the key; values carry either nothing or a row (for
			// order-by results, where the key is the sort key).
			var row Row
			if i := bytes.IndexByte(line, '\t'); i >= 0 {
				key, val := line[:i], line[i+1:]
				if len(val) > 0 {
					row = DecodeRow(val)
				} else {
					row = DecodeRow(key)
				}
			} else {
				row = DecodeRow(line)
			}
			if len(row) != len(t.Schema) {
				return nil, fmt.Errorf("query: table %q: row %q decodes to %d columns, schema %v has %d",
					t.Name, line, len(row), []string(t.Schema), len(t.Schema))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// numeric parses a column value for comparisons and aggregation.
func numeric(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// formatNum renders an aggregate value without trailing noise: integers
// print as integers.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 12, 64)
}
