package query

import (
	"errors"
	"fmt"
	"hash/fnv"

	"mrapid/internal/core"
	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// maxDAGRecoveries bounds lineage-recovery rounds per query: a cluster
// losing intermediates faster than stages can recompute them fails the
// query instead of looping.
const maxDAGRecoveries = 5

// DAGRunner executes compiled queries as a stage DAG: every stage whose
// dependencies are satisfied is submitted immediately through a
// core.JobServer, so independent branches (a join's two input subtrees,
// stages of different in-flight queries) overlap on the cluster. Each query
// runs under its own logical admission tenant, so one query's burst of
// ready stages cannot starve another's. Intra-query intermediates live in
// the runtime's IntermediateStore (memory within budget, producer-local
// disk beyond) instead of HDFS; stages whose inputs die with a node are
// recomputed from lineage.
type DAGRunner struct {
	FW   *core.Framework
	Srv  *core.JobServer
	Cat  *Catalog
	Mode SubmitMode
	Opts CompileOptions

	// Queue is the RM capacity queue stage jobs land in ("" = default). The
	// admission tenant is always the query itself.
	Queue string

	qseq int
}

// NewDAGRunner builds a DAG runner over a started framework. srv may be nil:
// a private weighted-fair JobServer (default window, no capacity queues) is
// created. Pass a shared server to mix queries with other tenants' jobs
// under one admission window.
func NewDAGRunner(fw *core.Framework, srv *core.JobServer, cat *Catalog) (*DAGRunner, error) {
	if srv == nil {
		var err error
		srv, err = core.NewJobServer(fw, core.JobServerConfig{Policy: core.PolicyWeightedFair})
		if err != nil {
			return nil, err
		}
	}
	return &DAGRunner{FW: fw, Srv: srv, Cat: cat, Mode: ViaSpeculative}, nil
}

// jobMode maps the runner's submission mode to the JobServer routing mode.
func (r *DAGRunner) jobMode() core.ModeKind {
	switch r.Mode {
	case ViaDPlus:
		return core.ModeDPlus
	case ViaUPlus:
		return core.ModeUPlus
	default:
		return core.ModeSpeculative
	}
}

// stage lifecycle within one DAG execution.
type stageStatus int

const (
	stagePending stageStatus = iota
	stageRunning
	stageDone
)

// dagRun is the in-flight state of one query's DAG execution.
type dagRun struct {
	r        *DAGRunner
	qid      string
	tenant   string
	compiled *Compiled
	res      *Result
	done     func(*Result, error)
	span     trace.SpanID
	startAt  sim.Time

	status    []stageStatus
	remaining []int // unfinished dependencies per stage
	children  [][]int
	spans     []trace.SpanID
	winners   []core.ModeKind

	running    int
	doneCount  int
	recoveries int
	failed     bool
}

func (d *dagRun) rt() *mapreduce.Runtime { return d.r.FW.RT }

// Run compiles the plan into a stage DAG and executes it, invoking done
// with the result. Results are row-identical to the sequential Runner's
// (modulo row order across part files); Elapsed is the query's makespan on
// the virtual clock rather than a per-stage sum.
func (r *DAGRunner) Run(p *Plan, done func(*Result, error)) {
	if done == nil {
		panic("query: Run needs a completion callback")
	}
	r.qseq++
	qid := fmt.Sprintf("dq%04d", r.qseq)
	compiled, err := CompileWith(r.Cat, qid, p, r.Opts)
	if err != nil {
		r.FW.RT.Eng.After(0, func() { done(nil, err) })
		return
	}
	rt := r.FW.RT
	rt.EnsureIntermediates()
	n := len(compiled.Stages)
	d := &dagRun{
		r:         r,
		qid:       qid,
		tenant:    "query/" + qid,
		compiled:  compiled,
		res:       &Result{Table: compiled.Out, Stages: n},
		done:      done,
		startAt:   rt.Eng.Now(),
		status:    make([]stageStatus, n),
		remaining: make([]int, n),
		children:  make([][]int, n),
		spans:     make([]trace.SpanID, n),
		winners:   make([]core.ModeKind, n),
	}
	for _, st := range compiled.Stages {
		d.remaining[st.ID] = len(st.Deps)
		for _, dep := range st.Deps {
			d.children[dep] = append(d.children[dep], st.ID)
		}
	}
	d.span = rt.Trace.StartSpan(0, "query", qid+" dag", "",
		trace.A("stages", fmt.Sprint(n)))
	d.submitReady()
}

// submitReady launches every pending stage whose dependencies are done.
func (d *dagRun) submitReady() {
	if d.failed {
		return
	}
	for _, st := range d.compiled.Stages {
		if d.status[st.ID] == stagePending && d.remaining[st.ID] == 0 {
			d.launch(st)
		}
	}
}

// stampMemo gives a ready stage its cross-query cache identity before
// submission: MemoKey is the plan-content signature (query IDs never appear
// in it, so an identical stage of a *different* query maps to the same
// entry), MemoDigest is the recursive lineage digest — every base table's
// current (block, generation) digest folded up through the stage's
// dependency subtree. A base file that cannot be digested (e.g. dropped
// between compile and launch) leaves the stage unstamped: it runs normally
// and is never cached.
func (d *dagRun) stampMemo(st *Stage) {
	if d.r.FW.Memo == nil || st.Sig == "" {
		return
	}
	if digest, ok := d.stageDigest(st, make(map[int]uint64)); ok {
		st.Spec.MemoKey = "query:" + st.Sig
		st.Spec.MemoDigest = digest
	}
}

// stageDigest folds a stage's signature, its dependencies' digests
// (recursively), and the digests of the base-table files it reads directly.
// Intermediate inputs contribute through their producer's digest, not their
// (query-scoped, content-free) file names.
func (d *dagRun) stageDigest(st *Stage, cache map[int]uint64) (uint64, bool) {
	if v, ok := cache[st.ID]; ok {
		return v, true
	}
	h := fnv.New64a()
	h.Write([]byte(st.Sig))
	produced := map[string]bool{}
	for _, dep := range st.Deps {
		dd, ok := d.stageDigest(d.compiled.Stages[dep], cache)
		if !ok {
			return 0, false
		}
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(dd >> (8 * i))
		}
		h.Write(buf[:])
		for _, f := range d.compiled.Stages[dep].Out.Files {
			produced[f] = true
		}
	}
	for _, f := range st.Spec.InputFiles {
		if produced[f] {
			continue
		}
		fd, err := d.rt().DFS.FileDigest(f)
		if err != nil {
			return 0, false
		}
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(fd >> (8 * i))
		}
		h.Write([]byte(f))
		h.Write(buf[:])
	}
	v := h.Sum64()
	cache[st.ID] = v
	return v, true
}

// launch submits one ready stage. Empty-input stages short-circuit: their
// output files materialize empty without running a job.
func (d *dagRun) launch(st *Stage) {
	rt := d.rt()
	d.status[st.ID] = stageRunning
	d.running++
	if d.running > d.res.MaxConcurrent {
		d.res.MaxConcurrent = d.running
	}
	d.spans[st.ID] = rt.Trace.StartSpan(d.span, "query", st.Spec.Name, "stage",
		trace.A("kind", st.Kind), trace.A("reduces", fmt.Sprint(st.Spec.NumReduces)))
	if stageInputBytes(rt, st.Spec.InputFiles) == 0 {
		rt.Eng.After(0, func() {
			if err := emitEmptyOutputs(rt, st); err != nil {
				d.complete(st, StageSkipped, err)
				return
			}
			d.complete(st, StageSkipped, nil)
		})
		return
	}
	d.stampMemo(st)
	err := d.r.Srv.SubmitAs(d.tenant, d.r.Queue, d.r.jobMode(), st.Spec, func(jr *mapreduce.Result) {
		winner := core.ModeKind(jr.Mode)
		d.complete(st, winner, jr.Err)
	})
	if err != nil {
		d.complete(st, "", err)
	}
}

// complete settles one stage's outcome: successes unlock children, lost
// intermediates trigger lineage recovery, anything else fails the query.
func (d *dagRun) complete(st *Stage, winner core.ModeKind, err error) {
	if d.failed {
		return
	}
	rt := d.rt()
	d.running--
	if err != nil {
		rt.Trace.EndSpan(d.spans[st.ID], trace.A("error", err.Error()))
		if errors.Is(err, mapreduce.ErrIntermediateLost) && d.recoveries < maxDAGRecoveries {
			d.recover(st)
			return
		}
		d.fail(fmt.Errorf("query: stage %d (%s): %w", st.ID, st.Kind, err))
		return
	}
	rt.Trace.EndSpan(d.spans[st.ID], trace.A("winner", string(winner)))
	d.status[st.ID] = stageDone
	d.doneCount++
	d.winners[st.ID] = winner
	for _, c := range d.children[st.ID] {
		d.remaining[c]--
	}
	d.submitReady()
	d.maybeFinish()
}

// outputsAvailable reports whether a stage's committed intermediates are
// still readable (a node death takes its unreplicated share down with it).
// Final-stage outputs live in HDFS and are always considered available.
func (d *dagRun) outputsAvailable(st *Stage) bool {
	if !st.Spec.IntermediateOutput {
		return true
	}
	store := d.rt().Intermediates
	for _, f := range st.Out.Files {
		if !store.Available(f) {
			return false
		}
	}
	return true
}

// recover handles a stage that failed reading a lost intermediate: the
// stage reverts to pending, every done producer whose outputs are no longer
// available reverts too (its output is recomputed from lineage — the paper's
// short-job setting makes recompute cheaper than replicating intermediates),
// dependency counts are rebuilt, and the ready frontier resubmits.
func (d *dagRun) recover(failed *Stage) {
	rt := d.rt()
	d.recoveries++
	rt.Trace.Add("query", "%s: stage %d lost an intermediate input; recovery round %d",
		d.qid, failed.ID, d.recoveries)
	d.status[failed.ID] = stagePending
	rt.DeleteOutputPrefix(failed.Spec.OutputFile)
	for _, st := range d.compiled.Stages {
		if d.status[st.ID] == stageDone && !d.outputsAvailable(st) {
			d.status[st.ID] = stagePending
			d.doneCount--
			rt.DeleteOutputPrefix(st.Spec.OutputFile)
		}
	}
	for _, st := range d.compiled.Stages {
		if d.status[st.ID] != stagePending {
			continue
		}
		n := 0
		for _, dep := range st.Deps {
			if d.status[dep] != stageDone {
				n++
			}
		}
		d.remaining[st.ID] = n
	}
	d.submitReady()
}

// maybeFinish completes the query once every stage is done: intermediates
// are released, the per-query admission tenant retires, and the result
// table is read back from HDFS.
func (d *dagRun) maybeFinish() {
	if d.failed || d.doneCount < len(d.compiled.Stages) || d.running > 0 {
		return
	}
	rt := d.rt()
	d.res.Elapsed = rt.Eng.Now().Sub(d.startAt).Seconds()
	d.res.Recoveries = d.recoveries
	d.res.Winners = append(d.res.Winners, d.winners...)
	for _, st := range d.compiled.Stages {
		if st.Spec.IntermediateOutput {
			rt.Intermediates.DeletePrefix(st.Spec.OutputFile)
		}
	}
	d.r.Srv.ReleaseTenant(d.tenant)
	rt.Trace.EndSpan(d.span, trace.A("max_concurrent", fmt.Sprint(d.res.MaxConcurrent)))
	finishQuery(d.r.FW, d.r.Cat, d.compiled, d.res, d.done)
}

// fail reports a terminal error. Stages still in flight keep running to
// completion on the cluster but their outcomes are ignored.
func (d *dagRun) fail(err error) {
	if d.failed {
		return
	}
	d.failed = true
	rt := d.rt()
	rt.Trace.EndSpan(d.span, trace.A("error", err.Error()))
	d.r.Srv.ReleaseTenant(d.tenant)
	d.done(nil, err)
}
