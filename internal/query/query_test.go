package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// env bundles a started framework + catalog for query tests.
type env struct {
	eng *sim.Engine
	rm  *yarn.RM
	cat *Catalog
	run *Runner
}

func newEnv(t *testing.T) *env {
	t.Helper()
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, 5)
	rm := yarn.NewRM(eng, cluster, params, core.NewDPlusScheduler(core.FullDPlus()))
	rm.Start()
	rt := mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
	fw := core.NewFramework(rt, 3, core.FullUPlus())
	ready := false
	eng.After(0, func() { fw.Start(func() { ready = true }) })
	eng.RunUntil(sim.Time(60 * time.Second))
	if !ready {
		t.Fatal("framework not ready")
	}
	cat := NewCatalog(dfs, cluster)
	return &env{eng: eng, rm: rm, cat: cat, run: NewRunner(fw, cat)}
}

// salesRows builds a deterministic sales table.
func salesRows(n int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"east", "west", "north", "south"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			strconv.Itoa(i),                        // id
			regions[rng.Intn(len(regions))],        // region
			strconv.Itoa(100 + rng.Intn(900)),      // amount
			fmt.Sprintf("cust-%02d", rng.Intn(20)), // customer
		}
	}
	return rows
}

var salesSchema = Schema{"id", "region", "amount", "customer"}

func (e *env) mustCreate(t *testing.T, name string, schema Schema, rows []Row, files int) *Table {
	t.Helper()
	tab, err := e.cat.Create(name, schema, rows, files)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// exec runs a plan to completion on the virtual clock.
func (e *env) exec(t *testing.T, p *Plan) *Result {
	t.Helper()
	var res *Result
	var errOut error
	e.eng.After(0, func() {
		e.run.Run(p, func(r *Result, err error) {
			res, errOut = r, err
		})
	})
	e.eng.RunUntil(e.eng.Now().Add(1 << 42))
	if errOut != nil {
		t.Fatal(errOut)
	}
	if res == nil {
		t.Fatal("query never completed")
	}
	return res
}

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	f := func(cols []string) bool {
		// colSep and newline are reserved.
		row := make(Row, 0, len(cols))
		for _, c := range cols {
			clean := []byte(c)
			for i, b := range clean {
				if b == 0x1f || b == '\n' || b == '\t' {
					clean[i] = '_'
				}
			}
			row = append(row, string(clean))
		}
		if len(row) == 0 {
			return true
		}
		return reflect.DeepEqual(DecodeRow(EncodeRow(row)), row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{"a", "b"}
	if i, err := s.Index("b"); err != nil || i != 1 {
		t.Fatalf("Index(b) = %d, %v", i, err)
	}
	if _, err := s.Index("zz"); err == nil {
		t.Fatal("unknown column did not error")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		v    string
		cond Cond
		want bool
	}{
		{"5", Where("x", OpEq, "5"), true},
		{"5", Where("x", OpEq, "5.0"), true}, // numeric comparison
		{"5", Where("x", OpLt, "10"), true},
		{"10", Where("x", OpLt, "5"), false},
		{"9", Where("x", OpGt, "10"), false}, // numeric, not lexical
		{"abc", Where("x", OpGe, "abb"), true},
		{"abc", Where("x", OpNe, "abd"), true},
		{"hello world", Where("x", OpContains, "lo wo"), true},
		{"hello", Where("x", OpContains, "xyz"), false},
		{"hello", Where("x", OpContains, ""), true},
		{"3", Where("x", OpLe, "3"), true},
	}
	for _, c := range cases {
		if got := c.cond.eval(c.v); got != c.want {
			t.Errorf("eval(%q %s %q) = %v, want %v", c.v, c.cond.Op, c.cond.Val, got, c.want)
		}
	}
}

func TestAggNames(t *testing.T) {
	if Count().Name() != "count(*)" || Sum("x").Name() != "sum(x)" ||
		Avg("y").Name() != "avg(y)" || Min("z").Name() != "min(z)" || Max("w").Name() != "max(w)" {
		t.Fatal("aggregate names wrong")
	}
}

func TestCatalogCreateAndRead(t *testing.T) {
	e := newEnv(t)
	rows := salesRows(100, 1)
	tab := e.mustCreate(t, "sales", salesSchema, rows, 3)
	if len(tab.Files) != 3 {
		t.Fatalf("files = %d", len(tab.Files))
	}
	got, err := e.cat.ReadTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("round-tripped rows differ")
	}
	if _, err := e.cat.Create("sales", salesSchema, rows, 1); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := e.cat.Create("bad", Schema{"one"}, rows, 1); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := e.cat.Lookup("missing"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
}

func TestCompileShapes(t *testing.T) {
	e := newEnv(t)
	e.mustCreate(t, "sales", salesSchema, salesRows(10, 1), 2)
	e.mustCreate(t, "regions", Schema{"name", "manager"}, []Row{{"east", "amy"}, {"west", "bob"}}, 1)

	cases := []struct {
		plan   *Plan
		stages []string
	}{
		{Scan("sales"), []string{"materialize"}},
		{Scan("sales").Filter(Where("amount", OpGt, "500")), []string{"materialize"}},
		{Scan("sales").GroupBy([]string{"region"}, Count()), []string{"groupby"}},
		{Scan("sales").Filter(Where("amount", OpGt, "500")).GroupBy([]string{"region"}, Count()), []string{"groupby"}},
		{Scan("sales").Join(Scan("regions"), "region", "name"), []string{"join"}},
		{Scan("sales").GroupBy([]string{"region"}, Sum("amount")).OrderBy("sum(amount)", true), []string{"groupby", "orderby"}},
		{Scan("sales").GroupBy([]string{"region"}, Count()).Filter(Where("count(*)", OpGt, "1")), []string{"groupby", "materialize"}},
	}
	for i, c := range cases {
		compiled, err := Compile(e.cat, fmt.Sprintf("t%d", i), c.plan)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var kinds []string
		for _, st := range compiled.Stages {
			kinds = append(kinds, st.Kind)
		}
		if !reflect.DeepEqual(kinds, c.stages) {
			t.Errorf("case %d (%s): stages = %v, want %v", i, c.plan, kinds, c.stages)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	e := newEnv(t)
	e.mustCreate(t, "sales", salesSchema, salesRows(5, 1), 1)
	bad := []*Plan{
		Scan("nope"),
		Scan("sales").Filter(Where("missing", OpEq, "1")),
		Scan("sales").Project("missing"),
		Scan("sales").GroupBy(nil, Count()),
		Scan("sales").GroupBy([]string{"region"}),
		Scan("sales").GroupBy([]string{"region"}, Sum("missing")),
		Scan("sales").Join(Scan("nope"), "region", "name"),
	}
	for i, p := range bad {
		if _, err := Compile(e.cat, fmt.Sprintf("b%d", i), p); err == nil {
			t.Errorf("case %d compiled", i)
		}
	}
}

func TestGroupByAggregatesEndToEnd(t *testing.T) {
	e := newEnv(t)
	rows := salesRows(300, 7)
	e.mustCreate(t, "sales", salesSchema, rows, 4)
	res := e.exec(t, Scan("sales").GroupBy([]string{"region"},
		Count(), Sum("amount"), Min("amount"), Max("amount"), Avg("amount")))

	// Reference aggregation.
	type agg struct {
		n        int
		sum      float64
		min, max float64
	}
	want := map[string]*agg{}
	for _, r := range rows {
		a := want[r[1]]
		if a == nil {
			a = &agg{min: 1e18, max: -1e18}
			want[r[1]] = a
		}
		v, _ := strconv.ParseFloat(r[2], 64)
		a.n++
		a.sum += v
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		a := want[r[0]]
		if a == nil {
			t.Fatalf("unexpected group %q", r[0])
		}
		if r[1] != strconv.Itoa(a.n) {
			t.Errorf("%s count = %s, want %d", r[0], r[1], a.n)
		}
		if r[2] != formatNum(a.sum) || r[3] != formatNum(a.min) || r[4] != formatNum(a.max) {
			t.Errorf("%s sum/min/max = %v, want %v/%v/%v", r[0], r[1:5], a.sum, a.min, a.max)
		}
		if r[5] != formatNum(a.sum/float64(a.n)) {
			t.Errorf("%s avg = %s", r[0], r[5])
		}
	}
}

func TestFilterProjectEndToEnd(t *testing.T) {
	e := newEnv(t)
	rows := salesRows(200, 3)
	e.mustCreate(t, "sales", salesSchema, rows, 3)
	res := e.exec(t, Scan("sales").
		Filter(Where("amount", OpGt, "500"), Where("region", OpEq, "east")).
		Project("id", "amount"))

	want := map[string]string{}
	for _, r := range rows {
		amt, _ := strconv.Atoi(r[2])
		if amt > 500 && r[1] == "east" {
			want[r[0]] = r[2]
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if len(r) != 2 {
			t.Fatalf("projected width = %d", len(r))
		}
		if want[r[0]] != r[1] {
			t.Errorf("row %v unexpected", r)
		}
	}
}

func TestJoinEndToEnd(t *testing.T) {
	e := newEnv(t)
	sales := salesRows(120, 9)
	e.mustCreate(t, "sales", salesSchema, sales, 3)
	regions := []Row{{"east", "amy"}, {"west", "bob"}, {"north", "carol"}} // south unmatched
	e.mustCreate(t, "regions", Schema{"name", "manager"}, regions, 1)

	res := e.exec(t, Scan("sales").Join(Scan("regions"), "region", "name"))
	// Reference nested-loop join.
	count := 0
	managers := map[string]string{"east": "amy", "west": "bob", "north": "carol"}
	for _, s := range sales {
		if _, ok := managers[s[1]]; ok {
			count++
		}
	}
	if len(res.Rows) != count {
		t.Fatalf("join rows = %d, want %d", len(res.Rows), count)
	}
	for _, r := range res.Rows {
		if len(r) != len(salesSchema)+2 {
			t.Fatalf("join width = %d", len(r))
		}
		if r[1] != r[4] {
			t.Errorf("join key mismatch: %v", r)
		}
		if managers[r[1]] != r[5] {
			t.Errorf("wrong manager in %v", r)
		}
	}
}

func TestOrderByNumericAndString(t *testing.T) {
	e := newEnv(t)
	rows := []Row{{"3", "c"}, {"-7", "a"}, {"10", "b"}, {"0.5", "d"}}
	e.mustCreate(t, "t", Schema{"num", "name"}, rows, 1)

	asc := e.exec(t, Scan("t").OrderBy("num", false))
	var nums []string
	for _, r := range asc.Rows {
		nums = append(nums, r[0])
	}
	if !reflect.DeepEqual(nums, []string{"-7", "0.5", "3", "10"}) {
		t.Fatalf("ascending = %v", nums)
	}

	desc := e.exec(t, Scan("t").OrderBy("num", true))
	nums = nil
	for _, r := range desc.Rows {
		nums = append(nums, r[0])
	}
	if !reflect.DeepEqual(nums, []string{"10", "3", "0.5", "-7"}) {
		t.Fatalf("descending = %v", nums)
	}

	byName := e.exec(t, Scan("t").OrderBy("name", false))
	var names []string
	for _, r := range byName.Rows {
		names = append(names, r[1])
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("string order = %v", names)
	}
}

func TestMultiStageQueryEndToEnd(t *testing.T) {
	// The full Hive-style pipeline: filter → join → group-by → order-by,
	// four chained MapReduce jobs.
	e := newEnv(t)
	sales := salesRows(250, 11)
	e.mustCreate(t, "sales", salesSchema, sales, 4)
	regions := []Row{{"east", "amy"}, {"west", "bob"}, {"north", "carol"}, {"south", "dan"}}
	e.mustCreate(t, "regions", Schema{"name", "manager"}, regions, 1)

	plan := Scan("sales").
		Filter(Where("amount", OpGe, "300")).
		Join(Scan("regions"), "region", "name").
		GroupBy([]string{"manager"}, Sum("amount"), Count()).
		OrderBy("sum(amount)", true)
	res := e.exec(t, plan)
	if res.Stages != 3 {
		t.Fatalf("stages = %d, want 3 (join, groupby, orderby)", res.Stages)
	}

	// Reference computation.
	managerOf := map[string]string{}
	for _, r := range regions {
		managerOf[r[0]] = r[1]
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, s := range sales {
		amt, _ := strconv.ParseFloat(s[2], 64)
		if amt >= 300 {
			m := managerOf[s[1]]
			sums[m] += amt
			counts[m]++
		}
	}
	if len(res.Rows) != len(sums) {
		t.Fatalf("result groups = %d, want %d", len(res.Rows), len(sums))
	}
	prev := 1e18
	for _, r := range res.Rows {
		m := r[0]
		got, _ := strconv.ParseFloat(r[1], 64)
		if got != sums[m] {
			t.Errorf("%s sum = %v, want %v", m, got, sums[m])
		}
		if r[2] != strconv.Itoa(counts[m]) {
			t.Errorf("%s count = %s, want %d", m, r[2], counts[m])
		}
		if got > prev {
			t.Errorf("descending order violated at %v", r)
		}
		prev = got
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time charged")
	}
}

func TestQueryHistoryReusedAcrossQueries(t *testing.T) {
	e := newEnv(t)
	e.mustCreate(t, "sales", salesSchema, salesRows(100, 2), 3)
	p := func() *Plan { return Scan("sales").GroupBy([]string{"region"}, Count()) }
	first := e.exec(t, p())
	second := e.exec(t, p())
	if len(first.Winners) != 1 || len(second.Winners) != 1 {
		t.Fatalf("winners = %v / %v", first.Winners, second.Winners)
	}
	// Same stage kind → the second query's group-by stage is pre-decided
	// from history and must pick the same winner.
	if first.Winners[0] != second.Winners[0] {
		t.Fatalf("winner changed: %v vs %v", first.Winners[0], second.Winners[0])
	}
	if second.Elapsed > first.Elapsed*1.3 {
		t.Errorf("history-guided run slower: %.2fs vs %.2fs", second.Elapsed, first.Elapsed)
	}
}

func TestQueryDeterminism(t *testing.T) {
	run := func() ([]Row, float64) {
		e := newEnv(t)
		e.mustCreate(t, "sales", salesSchema, salesRows(150, 4), 3)
		res := e.exec(t, Scan("sales").GroupBy([]string{"region"}, Sum("amount")).OrderBy("sum(amount)", true))
		return res.Rows, res.Elapsed
	}
	r1, t1 := run()
	r2, t2 := run()
	if !reflect.DeepEqual(r1, r2) || t1 != t2 {
		t.Fatalf("nondeterministic query execution: %v/%v vs %v/%v", r1, t1, r2, t2)
	}
}

func TestSortKeyOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		ka := string(sortKey(formatNum(a), false))
		kb := string(sortKey(formatNum(b), false))
		// formatNum may round; compare on the parsed-back values.
		pa, _ := numeric(formatNum(a))
		pb, _ := numeric(formatNum(b))
		switch {
		case pa < pb:
			return ka < kb
		case pa > pb:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
