package query

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/memo"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

// dagEnv extends the test env with a DAG runner over the same framework, so
// chain and DAG executions share a cluster, catalog, and history.
type dagEnv struct {
	*env
	dag *DAGRunner
}

func newDAGEnv(t *testing.T, workers int) *dagEnv {
	t.Helper()
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: workers, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, 5)
	rm := yarn.NewRM(eng, cluster, params, core.NewDPlusScheduler(core.FullDPlus()))
	rm.Start()
	rt := mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
	rt.Reg = metrics.New()
	fw := core.NewFramework(rt, 3, core.FullUPlus())
	ready := false
	eng.After(0, func() { fw.Start(func() { ready = true }) })
	eng.RunUntil(sim.Time(60 * time.Second))
	if !ready {
		t.Fatal("framework not ready")
	}
	cat := NewCatalog(dfs, cluster)
	dag, err := NewDAGRunner(fw, nil, cat)
	if err != nil {
		t.Fatal(err)
	}
	return &dagEnv{
		env: &env{eng: eng, rm: rm, cat: cat, run: NewRunner(fw, cat)},
		dag: dag,
	}
}

// execDAG runs a plan through the DAG runner to completion.
func (e *dagEnv) execDAG(t *testing.T, p *Plan) *Result {
	t.Helper()
	var res *Result
	var errOut error
	e.eng.After(0, func() {
		e.dag.Run(p, func(r *Result, err error) {
			res, errOut = r, err
		})
	})
	e.eng.RunUntil(e.eng.Now().Add(1 << 42))
	if errOut != nil {
		t.Fatal(errOut)
	}
	if res == nil {
		t.Fatal("DAG query never completed")
	}
	return res
}

// canonRows renders rows order-independently for cross-runner comparison
// (multi-reduce outputs spread rows over part files in partition order).
func canonRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(out)
	return out
}

// returnsRows builds a deterministic second table for join workloads.
func returnsRows(n int) []Row {
	regions := []string{"east", "west", "north", "south"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			strconv.Itoa(i),         // rid
			regions[i%len(regions)], // region
			strconv.Itoa(10 + i%50), // refund
		}
	}
	return rows
}

var returnsSchema = Schema{"rid", "region", "refund"}

// branchyPlan joins two independently aggregated subtrees — the DAG shape
// with genuinely parallel branches (each group-by is a shuffle stage).
func branchyPlan() *Plan {
	return Scan("sales").
		Filter(Where("amount", OpGt, "200")).
		GroupBy([]string{"region"}, Sum("amount"), Count()).
		Join(Scan("returns").GroupBy([]string{"region"}, Sum("refund")), "region", "region").
		OrderBy("sum(amount)", true)
}

func TestCompileDAGEdges(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(200, 21), 3)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(80), 2)

	compiled, err := Compile(e.cat, "edges", branchyPlan())
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, st := range compiled.Stages {
		kinds = append(kinds, st.Kind)
	}
	if !reflect.DeepEqual(kinds, []string{"groupby", "groupby", "join", "orderby"}) {
		t.Fatalf("stage kinds = %v", kinds)
	}
	if len(compiled.Stages[0].Deps) != 0 || len(compiled.Stages[1].Deps) != 0 {
		t.Fatalf("group-by branches must be dependency-free: %v / %v",
			compiled.Stages[0].Deps, compiled.Stages[1].Deps)
	}
	if !reflect.DeepEqual(compiled.Stages[2].Deps, []int{0, 1}) {
		t.Fatalf("join deps = %v, want [0 1]", compiled.Stages[2].Deps)
	}
	if !reflect.DeepEqual(compiled.Stages[3].Deps, []int{2}) {
		t.Fatalf("orderby deps = %v, want [2]", compiled.Stages[3].Deps)
	}
	if compiled.Stages[3].Spec.NumReduces != 1 {
		t.Fatalf("orderby reduces = %d, want 1 (global order)", compiled.Stages[3].Spec.NumReduces)
	}
	// Every stage but the result producer routes through the store.
	for _, st := range compiled.Stages[:3] {
		if !st.Spec.IntermediateOutput {
			t.Errorf("stage %d (%s) not marked intermediate", st.ID, st.Kind)
		}
	}
	if compiled.Stages[3].Spec.IntermediateOutput {
		t.Error("result stage marked intermediate; the result must land in HDFS")
	}
	if compiled.Stages[0].EstInBytes <= 0 {
		t.Error("scan-fed stage has no input-size estimate")
	}
}

func TestCompileReduceCountHeuristic(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(300, 22), 3)

	// ~300 rows ≈ 6 KB: a 1 KiB target wants ≥6 reduces, capped at 4.
	opts := CompileOptions{TargetBytesPerReduce: 1 << 10, MaxReduces: 4}
	compiled, err := CompileWith(e.cat, "rc", Scan("sales").GroupBy([]string{"region"}, Count()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := compiled.Stages[0].Spec.NumReduces; got != 4 {
		t.Fatalf("group-by reduces = %d, want 4 (capped)", got)
	}
	// Default options keep tiny tables single-reduce.
	compiled, err = Compile(e.cat, "rc2", Scan("sales").GroupBy([]string{"region"}, Count()))
	if err != nil {
		t.Fatal(err)
	}
	if got := compiled.Stages[0].Spec.NumReduces; got != 1 {
		t.Fatalf("default reduces = %d, want 1", got)
	}
}

func TestCompileNoInteriorMaterialize(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(50, 23), 2)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(20), 1)

	plans := []*Plan{
		Scan("sales"),
		Scan("sales").Filter(Where("amount", OpGt, "500")).Project("id"),
		branchyPlan(),
		Scan("sales").Filter(Where("region", OpEq, "east")).
			Join(Scan("returns").Filter(Where("refund", OpGt, "20")), "region", "region"),
		Scan("sales").GroupBy([]string{"region"}, Count()).Filter(Where("count(*)", OpGt, "1")),
	}
	for i, p := range plans {
		compiled, err := Compile(e.cat, fmt.Sprintf("nm%d", i), p)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		for j, st := range compiled.Stages {
			if st.Kind == "materialize" && j != len(compiled.Stages)-1 {
				t.Errorf("plan %d: interior materialize at stage %d (map-only work must fuse into its consumer)", i, j)
			}
		}
	}
}

// TestDAGMatchesChain is the golden row-identity check: across worker
// counts, for branch-parallel joins, empty-input stages, and multi-reduce
// partitioned intermediates, the DAG runner's result rows are identical
// (after canonical sort) to the sequential chain's.
func TestDAGMatchesChain(t *testing.T) {
	for _, workers := range []int{3, 5} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := newDAGEnv(t, workers)
			e.mustCreate(t, "sales", salesSchema, salesRows(300, 31), 4)
			e.mustCreate(t, "returns", returnsSchema, returnsRows(100), 2)

			cases := []struct {
				name string
				plan func() *Plan
				opts CompileOptions
			}{
				{"branchy-join", branchyPlan, CompileOptions{}},
				// Both branches filtered to nothing: the group-bys run on
				// real input and produce empty tables, the join and order-by
				// short-circuit as empty-input stages.
				{"empty-branches", func() *Plan {
					return Scan("sales").
						Filter(Where("amount", OpGt, "99999")).
						GroupBy([]string{"region"}, Count()).
						Join(Scan("returns").Filter(Where("refund", OpGt, "99999")).
							GroupBy([]string{"region"}, Count()), "region", "region").
						OrderBy("region", false)
				}, CompileOptions{}},
				// Tiny reduce target: the DAG side runs multi-reduce
				// partitioned intermediates while the chain stays
				// single-reduce — the rows must still agree.
				{"multi-reduce", branchyPlan, CompileOptions{TargetBytesPerReduce: 1 << 10}},
			}
			for _, c := range cases {
				t.Run(c.name, func(t *testing.T) {
					chain := e.exec(t, c.plan())
					e.dag.Opts = c.opts
					dag := e.execDAG(t, c.plan())
					if !reflect.DeepEqual(canonRows(chain.Rows), canonRows(dag.Rows)) {
						t.Fatalf("DAG rows differ from chain:\nchain: %v\ndag:   %v", chain.Rows, dag.Rows)
					}
					if len(dag.Winners) != dag.Stages {
						t.Fatalf("winners = %d, stages = %d", len(dag.Winners), dag.Stages)
					}
				})
			}
		})
	}
}

func TestDAGSkipsEmptyStages(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(100, 33), 2)
	res := e.execDAG(t, Scan("sales").
		Filter(Where("amount", OpGt, "99999")).
		GroupBy([]string{"region"}, Count()).
		OrderBy("region", false))
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want none", res.Rows)
	}
	skipped := 0
	for _, w := range res.Winners {
		if w == StageSkipped {
			skipped++
		}
	}
	// The group-by reads real input (and emits nothing); the order-by has
	// nothing to read and must short-circuit.
	if skipped != 1 {
		t.Fatalf("skipped stages = %d (winners %v), want 1", skipped, res.Winners)
	}
}

// TestDAGBranchOverlap proves the point of the scheduler: the two group-by
// branches of a join run concurrently (D+ directly, so the admission window
// isn't double-charged by a first-sight race).
func TestDAGBranchOverlap(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(400, 35), 4)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(200), 2)
	e.dag.Mode = ViaDPlus
	res := e.execDAG(t, branchyPlan())
	if res.MaxConcurrent < 2 {
		t.Fatalf("MaxConcurrent = %d; the join's input branches never overlapped", res.MaxConcurrent)
	}
	if res.Stages != 4 {
		t.Fatalf("stages = %d, want 4", res.Stages)
	}
}

// TestDAGIntermediatesAvoidHDFS checks the transport rewiring: interior
// stage outputs land in the intermediate store (counted as HDFS bytes
// avoided), and only the result stage writes to HDFS.
func TestDAGIntermediatesAvoidHDFS(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(300, 37), 3)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(120), 2)
	e.dag.Mode = ViaDPlus
	rt := e.dag.FW.RT
	before := rt.DFS.BytesWritten
	res := e.execDAG(t, branchyPlan())
	if len(res.Rows) == 0 {
		t.Fatal("no result rows")
	}
	store := rt.Intermediates
	if store == nil || store.HDFSBytesAvoided == 0 {
		t.Fatal("no intermediate bytes avoided HDFS")
	}
	// Interior intermediates are released at query end; the result table is
	// the only surviving output.
	for _, f := range res.Table.Files {
		if store.Has(f) {
			t.Fatalf("result file %s lives in the store; results must persist in HDFS", f)
		}
		if !rt.DFS.Exists(f) {
			t.Fatalf("result file %s missing from HDFS", f)
		}
	}
	if rt.DFS.BytesWritten == before {
		t.Fatal("result stage wrote nothing to HDFS")
	}
}

// TestDAGNodeCrashChaos kills a worker (with restart) while the DAG query
// runs: unreplicated intermediates die with it, lineage recovery recomputes
// them, and the rows still match a fault-free chain execution.
func TestDAGNodeCrashChaos(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(400, 39), 4)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(150), 2)

	// Fault-free reference first (also warms the history).
	chain := e.exec(t, branchyPlan())

	rt := e.dag.FW.RT
	victim := rt.Cluster.Workers()[1].Name
	for _, at := range []time.Duration{3 * time.Second, 8 * time.Second} {
		e.eng.After(0, func() {
			if err := rt.ScheduleNodeFaults([]mapreduce.NodeFault{
				{Node: victim, At: at, RestartAfter: 15 * time.Second},
			}); err != nil {
				t.Error(err)
			}
		})
		dag := e.execDAG(t, branchyPlan())
		if !reflect.DeepEqual(canonRows(chain.Rows), canonRows(dag.Rows)) {
			t.Fatalf("crash at %s: DAG rows differ from fault-free chain:\nchain: %v\ndag:   %v",
				at, chain.Rows, dag.Rows)
		}
	}
}

// TestDAGLineageRecovery kills the node holding a committed group-by
// intermediate just before the join consumes it: the read surfaces
// ErrIntermediateLost, the runner reverts the producer from lineage, and the
// query still answers correctly.
func TestDAGLineageRecovery(t *testing.T) {
	e := newDAGEnv(t, 4)
	e.mustCreate(t, "sales", salesSchema, salesRows(400, 41), 4)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(150), 2)
	e.dag.Mode = ViaDPlus
	rt := e.dag.FW.RT

	// The first DAG query is dq0001; its left group-by writes stage-0.
	target := "/query/dq0001/stage-0/part-00000"
	killed := false
	var watch func()
	watch = func() {
		if killed {
			return
		}
		if st := rt.Intermediates; st != nil && st.Available(target) {
			if n, ok := st.Holder(target); ok {
				killed = true
				// Let the producing job finish its commit handshake, then
				// take the holder down (restarting later so capacity
				// returns): the consuming join finds a dead node's
				// intermediate and must recompute it from lineage.
				e.eng.After(2*time.Second, func() {
					n.Fail()
					e.eng.After(15*time.Second, n.Restart)
				})
				return
			}
		}
		e.eng.After(100*time.Millisecond, watch)
	}
	e.eng.After(0, watch)

	res := e.execDAG(t, branchyPlan())
	if !killed {
		t.Fatal("no intermediate ever appeared in the store")
	}
	if res.Recoveries == 0 {
		t.Fatal("holder death did not trigger lineage recovery")
	}

	// The fault has passed (node restarted); a fresh chain run is the
	// reference.
	chain := e.exec(t, branchyPlan())
	if !reflect.DeepEqual(canonRows(chain.Rows), canonRows(res.Rows)) {
		t.Fatalf("recovered DAG rows differ from chain:\nchain: %v\ndag:   %v", chain.Rows, res.Rows)
	}
}

// --- Satellite regressions -------------------------------------------------

// TestSortKeyDescendingStrings is the satellite-1 regression: descending
// string keys must order exactly opposite to ascending lexical order,
// including prefix pairs ("abc" before "ab" when descending). The pre-fix
// encoding (byte inversion, no terminator) sorted prefixes first both ways.
func TestSortKeyDescendingStrings(t *testing.T) {
	sanitize := func(s string) (string, bool) {
		b := []byte(s)
		for i, ch := range b {
			if ch == '\t' || ch == '\n' || ch == 0x1f || ch == 0x00 {
				b[i] = '_'
			}
		}
		out := string(b)
		if _, isNum := numeric(out); isNum {
			return "", false // numerics take the numeric key path
		}
		return out, true
	}
	check := func(vals []string) error {
		want := append([]string(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
		got := append([]string(nil), vals...)
		sort.Slice(got, func(i, j int) bool {
			return string(sortKey(got[i], true)) < string(sortKey(got[j], true))
		})
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("descending sort-key order %q != reference %q", got, want)
		}
		return nil
	}
	// The pre-fix code fails this immediately: inv("ab") is a prefix of
	// inv("abc") and sorts first, but descending order puts "abc" first.
	if err := check([]string{"ab", "abc", "abcd", "b", ""}); err != nil {
		t.Fatal(err)
	}
	f := func(raw []string) bool {
		var vals []string
		for _, s := range raw {
			if v, ok := sanitize(s); ok {
				vals = append(vals, v)
			}
		}
		return check(vals) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDegenerateTables is the satellite-2 regression: zero-file and
// non-part-file tables produce descriptive errors instead of index panics.
func TestDegenerateTables(t *testing.T) {
	e := newDAGEnv(t, 4)

	if err := e.cat.Register(&Table{Name: "ghost", Schema: Schema{"a"}}); err == nil {
		t.Fatal("Register accepted a zero-file table")
	}

	// A zero-file table smuggled past Register (e.g. built by hand) must
	// fail compilation with an error, not panic in endsAtStage.
	e.cat.tables["ghost"] = &Table{Name: "ghost", Schema: Schema{"a"}}
	if _, err := Compile(e.cat, "g", Scan("ghost")); err == nil {
		t.Fatal("Compile of a zero-file table did not error")
	}

	if _, err := outputBase(&Table{Name: "t"}); err == nil {
		t.Fatal("outputBase of a file-less table did not error")
	}
	if _, err := outputBase(&Table{Name: "t", Files: []string{"/data/blob"}}); err == nil {
		t.Fatal("outputBase of a non-part file did not error")
	}
	if base, err := outputBase(&Table{Name: "t", Files: []string{"/query/q/stage-0/part-00000"}}); err != nil || base != "/query/q/stage-0" {
		t.Fatalf("outputBase = %q, %v", base, err)
	}
}

// TestCatalogRejectsReservedBytes is the satellite-3 regression: values
// carrying framing bytes are rejected at the catalog boundary, and rows
// whose width disagrees with the schema fail ReadTable instead of silently
// shifting columns.
func TestCatalogRejectsReservedBytes(t *testing.T) {
	e := newDAGEnv(t, 4)
	for _, bad := range []string{"a\tb", "a\nb", "a\x1fb", "a\x00b"} {
		if _, err := e.cat.Create("t"+strconv.Itoa(len(bad)), Schema{"x"}, []Row{{bad}}, 1); err == nil {
			t.Errorf("Create accepted reserved byte in %q", bad)
		}
	}

	// A row wider than the schema (e.g. a stray separator written by hand)
	// must fail loudly on read.
	node := e.dag.FW.RT.Cluster.Workers()[0]
	if _, err := e.dag.FW.RT.DFS.PutInstant("/warehouse/corrupt/part-00000",
		[]byte("a\x1fb\x1fc\n"), node); err != nil {
		t.Fatal(err)
	}
	wide := &Table{Name: "corrupt", Schema: Schema{"x", "y"}, Files: []string{"/warehouse/corrupt/part-00000"}}
	if err := e.cat.Register(wide); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cat.ReadTable(wide); err == nil {
		t.Fatal("ReadTable accepted a row wider than the schema")
	}
}

// TestAggSkipsNonNumeric is the satellite-4 regression: non-numeric values
// no longer aggregate as silent zeros — they are skipped, counted, and a
// group with no parsable values reports NULL.
func TestAggSkipsNonNumeric(t *testing.T) {
	e := newDAGEnv(t, 4)
	rows := []Row{
		{"1", "east", "100", "c1"},
		{"2", "east", "N/A", "c2"},
		{"3", "east", "300", "c3"},
		{"4", "west", "oops", "c4"},
		{"5", "west", "bad", "c5"},
	}
	e.mustCreate(t, "sales", salesSchema, rows, 1)
	e.run.Mode = ViaDPlus // single mode, single attempt: exact skip counts
	res := e.exec(t, Scan("sales").GroupBy([]string{"region"},
		Count(), Sum("amount"), Min("amount"), Max("amount"), Avg("amount")))

	byRegion := map[string]Row{}
	for _, r := range res.Rows {
		byRegion[r[0]] = r
	}
	east := byRegion["east"]
	if east == nil || east[1] != "3" || east[2] != "400" || east[3] != "100" || east[4] != "300" || east[5] != "200" {
		t.Fatalf("east = %v; want count 3 over all rows, sum/min/max/avg over the 2 numeric ones", east)
	}
	west := byRegion["west"]
	if west == nil || west[1] != "2" {
		t.Fatalf("west = %v; count must include unparsable rows", west)
	}
	for i, want := range []string{"NULL", "NULL", "NULL", "NULL"} {
		if west[2+i] != want {
			t.Fatalf("west agg %d = %q, want NULL (every value unparsable); row %v", i, west[2+i], west)
		}
	}
	// 3 bad values × 4 value-reading aggregates (count never parses).
	if res.AggParseErrors != 12 {
		t.Fatalf("AggParseErrors = %d, want 12", res.AggParseErrors)
	}
	if got := e.run.FW.RT.Reg.Get("query_agg_parse_errors"); got != 12 {
		t.Fatalf("query_agg_parse_errors metric = %d, want 12", got)
	}
}

// TestDAGCrossQueryMemoReuse is the query-layer hook end to end: with the
// cross-job memo cache attached, a repeat of an identical query is served
// entirely from cache (every stage ModeMemo, zero containers launched,
// identical rows); a *different* query sharing the aggregated-sales subtree
// reuses that one materialized stage; mutating a base table invalidates the
// whole lineage and forces fresh execution.
func TestDAGCrossQueryMemoReuse(t *testing.T) {
	e := newDAGEnv(t, 4)
	rt := e.dag.FW.RT
	reg := rt.Reg
	e.rm.Reg = reg
	e.dag.FW.Memo = memo.New(reg, rt.Cluster.Workers(), memo.Config{})

	e.mustCreate(t, "sales", salesSchema, salesRows(200, 21), 3)
	e.mustCreate(t, "returns", returnsSchema, returnsRows(80), 2)

	launched := func() int64 {
		var n int64
		for name, v := range reg.Counters() {
			if strings.HasPrefix(name, "yarn_containers_launched_total") {
				n += v
			}
		}
		return n
	}

	res1 := e.execDAG(t, branchyPlan())
	for _, w := range res1.Winners {
		if w == core.ModeMemo {
			t.Fatalf("cold query served from cache: %v", res1.Winners)
		}
	}
	if reg.Get("memo_misses_total") != int64(res1.Stages) {
		t.Fatalf("cold query misses = %d, want one per stage (%d)",
			reg.Get("memo_misses_total"), res1.Stages)
	}
	// These tiny stages all race to U+ wins inside pooled AMs, so the cold
	// count may be zero; the repeat must not add launches of any kind —
	// not even AM-pool replenishment.
	base := launched()

	// Identical repeat: every stage is a hit, no containers move.
	res2 := e.execDAG(t, branchyPlan())
	for i, w := range res2.Winners {
		if w != core.ModeMemo {
			t.Fatalf("repeat stage %d winner = %q, want memo (%v)", i, w, res2.Winners)
		}
	}
	if reg.Get("memo_hits_total") != int64(res1.Stages) {
		t.Fatalf("repeat hits = %d, want %d", reg.Get("memo_hits_total"), res1.Stages)
	}
	if got := launched(); got != base {
		t.Fatalf("repeat query launched %d containers", got-base)
	}
	if !reflect.DeepEqual(canonRows(res1.Rows), canonRows(res2.Rows)) {
		t.Fatal("memo-served query rows differ from the fresh run")
	}

	// A different query over the same aggregated-sales subtree: the shared
	// group-by stage is served from cache, the new downstream work runs.
	shared := Scan("sales").
		Filter(Where("amount", OpGt, "200")).
		GroupBy([]string{"region"}, Sum("amount"), Count()).
		OrderBy("count(*)", false)
	res3 := e.execDAG(t, shared)
	if res3.Winners[0] != core.ModeMemo {
		t.Fatalf("shared subtree stage winner = %q, want memo (%v)", res3.Winners[0], res3.Winners)
	}
	if res3.Winners[len(res3.Winners)-1] == core.ModeMemo {
		t.Fatalf("novel order-by stage cannot be a cache hit (%v)", res3.Winners)
	}

	// Mutate a base-table block: the write generation moves, every entry
	// over sales is stale, and the repeat runs fresh end to end.
	sales, err := e.cat.Lookup("sales")
	if err != nil {
		t.Fatal(err)
	}
	old, err := rt.DFS.Contents(sales.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.DFS.OverwriteInstant(sales.Files[0], old, nil); err != nil {
		t.Fatal(err)
	}
	// Invalidation is dependency-precise: the sales group-by (0), the join
	// (2), and the order-by (3) all fold the mutated table into their
	// lineage and must run fresh; the returns group-by (1) reads an
	// untouched table and legitimately still hits.
	res4 := e.execDAG(t, branchyPlan())
	for _, i := range []int{0, 2, 3} {
		if res4.Winners[i] == core.ModeMemo {
			t.Fatalf("post-mutation stage %d served from cache (%v)", i, res4.Winners)
		}
	}
	if res4.Winners[1] != core.ModeMemo {
		t.Fatalf("untouched returns subtree should still hit (%v)", res4.Winners)
	}
	if !reflect.DeepEqual(canonRows(res1.Rows), canonRows(res4.Rows)) {
		t.Fatal("identical-bytes overwrite changed the result rows")
	}
}
