package query

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/mapreduce"
)

// SubmitMode selects how the runner submits each compiled stage.
type SubmitMode int

// Submission modes.
const (
	// ViaSpeculative races D+ and U+ per stage kind; after the first query
	// the history pre-decides each stage kind instantly — the paper's
	// intended deployment for Hive/Pig-style bursts.
	ViaSpeculative SubmitMode = iota
	ViaDPlus
	ViaUPlus
)

// StageSkipped marks a stage whose input was empty: no job ran, the stage's
// output files were materialized empty.
const StageSkipped = core.ModeKind("skipped")

// Runner executes compiled queries through the MRapid framework, one stage
// at a time in plan order. It is the sequential baseline the DAGRunner is
// measured against; both produce identical result tables.
type Runner struct {
	FW   *core.Framework
	Cat  *Catalog
	Mode SubmitMode

	qseq int
}

// NewRunner builds a query runner over a started framework.
func NewRunner(fw *core.Framework, cat *Catalog) *Runner {
	return &Runner{FW: fw, Cat: cat, Mode: ViaSpeculative}
}

// Result is a finished query: its rows, output table, and execution
// statistics.
type Result struct {
	Table   *Table
	Rows    []Row
	Stages  int
	Elapsed float64 // virtual seconds: summed per stage (chain) or makespan (DAG)
	Winners []core.ModeKind

	// MaxConcurrent is the peak number of this query's stages in flight at
	// once: always 1 for the sequential Runner, ≥2 when the DAG runner
	// overlapped independent branches.
	MaxConcurrent int

	// AggParseErrors counts non-numeric values the query's aggregates
	// skipped (also fed to the query_agg_parse_errors metric).
	AggParseErrors int64

	// Recoveries counts lineage-recovery rounds the DAG runner ran after
	// losing unreplicated intermediates with a dead node (always 0 for the
	// sequential Runner, whose intermediates never outlive a stage
	// submission by much but which simply fails on loss).
	Recoveries int
}

// stageInputBytes totals a stage's input size across the intermediate store
// and HDFS. Missing files contribute nothing.
func stageInputBytes(rt *mapreduce.Runtime, files []string) int64 {
	var total int64
	for _, f := range files {
		if rt.Intermediates != nil {
			if n, ok := rt.Intermediates.Size(f); ok {
				total += n
				continue
			}
		}
		if df, err := rt.DFS.Lookup(f); err == nil {
			total += df.Size()
		}
	}
	return total
}

// emitEmptyOutputs materializes a skipped stage's output files as empty, so
// consumers still find them: store entries for intra-query stages, zero-byte
// HDFS files for the result stage (zero-size blocks yield no input splits,
// so downstream jobs and ReadTable both see an empty table).
func emitEmptyOutputs(rt *mapreduce.Runtime, st *Stage) error {
	node := rt.Cluster.Workers()[0]
	for _, f := range st.Out.Files {
		if st.Spec.IntermediateOutput && rt.Intermediates != nil {
			rt.Intermediates.Put(f, nil, node)
			continue
		}
		if _, err := rt.DFS.PutInstant(f, nil, node); err != nil {
			return err
		}
	}
	return nil
}

// finishQuery loads the result table and settles the aggregate-skip
// accounting shared by both runners.
func finishQuery(fw *core.Framework, cat *Catalog, compiled *Compiled, res *Result, done func(*Result, error)) {
	rows, err := cat.ReadTable(compiled.Out)
	if err != nil {
		done(nil, err)
		return
	}
	res.Rows = rows
	res.AggParseErrors = compiled.AggParseErrors.Load()
	if res.AggParseErrors > 0 {
		fw.RT.Reg.Add("query_agg_parse_errors", res.AggParseErrors)
	}
	done(res, nil)
}

// Run compiles and executes the plan, invoking done with the result. The
// caller drives the simulation engine (stages chain asynchronously on the
// virtual clock).
func (r *Runner) Run(p *Plan, done func(*Result, error)) {
	if done == nil {
		panic("query: Run needs a completion callback")
	}
	r.qseq++
	qid := fmt.Sprintf("q%04d", r.qseq)
	compiled, err := Compile(r.Cat, qid, p)
	if err != nil {
		r.FW.RT.Eng.After(0, func() { done(nil, err) })
		return
	}
	r.FW.RT.EnsureIntermediates()
	res := &Result{Table: compiled.Out, Stages: len(compiled.Stages), MaxConcurrent: 1}
	r.runStage(compiled, 0, res, done)
}

func (r *Runner) runStage(compiled *Compiled, i int, res *Result, done func(*Result, error)) {
	if i == len(compiled.Stages) {
		finishQuery(r.FW, r.Cat, compiled, res, done)
		return
	}
	st := compiled.Stages[i]
	next := func(elapsed float64, winner core.ModeKind, err error) {
		if err != nil {
			done(nil, fmt.Errorf("query: stage %d (%s): %w", i, st.Kind, err))
			return
		}
		res.Elapsed += elapsed
		res.Winners = append(res.Winners, winner)
		r.runStage(compiled, i+1, res, done)
	}
	// A stage with nothing to read (every input empty — e.g. a filter that
	// matched no rows upstream) cannot run as a job: there are no input
	// splits. Materialize its empty output and move on.
	if stageInputBytes(r.FW.RT, st.Spec.InputFiles) == 0 {
		if err := emitEmptyOutputs(r.FW.RT, st); err != nil {
			done(nil, fmt.Errorf("query: stage %d (%s): %w", i, st.Kind, err))
			return
		}
		next(0, StageSkipped, nil)
		return
	}
	switch r.Mode {
	case ViaDPlus:
		r.FW.SubmitDPlus(st.Spec, func(jr *mapreduce.Result) {
			next(jr.Elapsed(), core.ModeDPlus, jr.Err)
		})
	case ViaUPlus:
		r.FW.SubmitUPlus(st.Spec, func(jr *mapreduce.Result) {
			next(jr.Elapsed(), core.ModeUPlus, jr.Err)
		})
	default:
		r.FW.SubmitSpeculative(st.Spec, func(sr *core.SpecResult) {
			next(sr.Elapsed(), sr.Winner, sr.Result.Err)
		})
	}
}
