package query

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/mapreduce"
)

// SubmitMode selects how the runner submits each compiled stage.
type SubmitMode int

// Submission modes.
const (
	// ViaSpeculative races D+ and U+ per stage kind; after the first query
	// the history pre-decides each stage kind instantly — the paper's
	// intended deployment for Hive/Pig-style bursts.
	ViaSpeculative SubmitMode = iota
	ViaDPlus
	ViaUPlus
)

// Runner executes compiled queries through the MRapid framework.
type Runner struct {
	FW   *core.Framework
	Cat  *Catalog
	Mode SubmitMode

	qseq int
}

// NewRunner builds a query runner over a started framework.
func NewRunner(fw *core.Framework, cat *Catalog) *Runner {
	return &Runner{FW: fw, Cat: cat, Mode: ViaSpeculative}
}

// Result is a finished query: its rows, output table, and execution
// statistics.
type Result struct {
	Table   *Table
	Rows    []Row
	Stages  int
	Elapsed float64 // summed virtual seconds across stages
	Winners []core.ModeKind
}

// Run compiles and executes the plan, invoking done with the result. The
// caller drives the simulation engine (stages chain asynchronously on the
// virtual clock).
func (r *Runner) Run(p *Plan, done func(*Result, error)) {
	if done == nil {
		panic("query: Run needs a completion callback")
	}
	r.qseq++
	qid := fmt.Sprintf("q%04d", r.qseq)
	compiled, err := Compile(r.Cat, qid, p)
	if err != nil {
		r.FW.RT.Eng.After(0, func() { done(nil, err) })
		return
	}
	res := &Result{Table: compiled.Out, Stages: len(compiled.Stages)}
	r.runStage(compiled, 0, res, done)
}

func (r *Runner) runStage(compiled *Compiled, i int, res *Result, done func(*Result, error)) {
	if i == len(compiled.Stages) {
		rows, err := r.Cat.ReadTable(compiled.Out)
		if err != nil {
			done(nil, err)
			return
		}
		res.Rows = rows
		done(res, nil)
		return
	}
	st := compiled.Stages[i]
	next := func(elapsed float64, winner core.ModeKind, err error) {
		if err != nil {
			done(nil, fmt.Errorf("query: stage %d (%s): %w", i, st.Kind, err))
			return
		}
		res.Elapsed += elapsed
		res.Winners = append(res.Winners, winner)
		r.runStage(compiled, i+1, res, done)
	}
	switch r.Mode {
	case ViaDPlus:
		r.FW.SubmitDPlus(st.Spec, func(jr *mapreduce.Result) {
			next(jr.Elapsed(), core.ModeDPlus, jr.Err)
		})
	case ViaUPlus:
		r.FW.SubmitUPlus(st.Spec, func(jr *mapreduce.Result) {
			next(jr.Elapsed(), core.ModeUPlus, jr.Err)
		})
	default:
		r.FW.SubmitSpeculative(st.Spec, func(sr *core.SpecResult) {
			next(sr.Elapsed(), sr.Winner, sr.Result.Err)
		})
	}
}
