package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"mrapid/internal/mapreduce"
)

// Query-stage compute rates: parsing delimited rows is lighter than
// WordCount tokenization; aggregation streams fast.
const (
	stageMapRate    = 8e6
	stageReduceRate = 20e6
)

// Reduce-count heuristic defaults: one reducer per this many estimated
// input bytes, capped. Small enough that modest tables already exercise
// partitioned intermediates, large enough that the tiny golden-test tables
// stay single-reduce.
const (
	DefaultTargetBytesPerReduce = 256 << 10
	DefaultMaxReduces           = 8
)

// CompileOptions tune the physical planner.
type CompileOptions struct {
	// TargetBytesPerReduce sizes each shuffle stage's reduce count from its
	// estimated input: reduces = ceil(est / target), clamped to
	// [1, MaxReduces]. Order-by stages always use one reducer (global
	// order needs a single sorted stream). Zero means the default.
	TargetBytesPerReduce int64

	// MaxReduces caps the per-stage reduce count. Zero means the default.
	MaxReduces int
}

func (o CompileOptions) reducesFor(estBytes int64) int {
	target := o.TargetBytesPerReduce
	if target <= 0 {
		target = DefaultTargetBytesPerReduce
	}
	maxR := o.MaxReduces
	if maxR <= 0 {
		maxR = DefaultMaxReduces
	}
	r := int((estBytes + target - 1) / target)
	if r < 1 {
		r = 1
	}
	if r > maxR {
		r = maxR
	}
	return r
}

// Stage is one MapReduce job of a compiled query, producing a temp table.
type Stage struct {
	// ID is the stage's index in Compiled.Stages; Deps lists the IDs of the
	// stages whose outputs this stage reads (base tables contribute no
	// edge). The slice order is a valid topological order — producers are
	// always emitted before their consumers — so the sequential Runner can
	// still execute stages front to back, while the DAG runner launches
	// every dependency-free stage concurrently.
	ID   int
	Deps []int

	Spec *mapreduce.JobSpec
	Out  *Table
	Kind string // "groupby", "join", "orderby", "materialize"

	// Sig is the stage's plan-content signature: operator, rendered
	// predicates/aggregates, reduce count, and the signatures of everything
	// upstream, all the way down to base-table scans. Two stages from
	// *different* queries share a Sig exactly when they compute the same
	// table from the same base tables — the identity the cross-job memo
	// cache keys on (query IDs and temp-table paths never appear in it).
	Sig string

	// EstInBytes is the planner's input-size estimate that sized the
	// stage's reduce count.
	EstInBytes int64
}

// Compiled is the physical plan: a stage DAG (Stages in topological order,
// dependency edges in Stage.Deps), the last stage producing the result.
type Compiled struct {
	Stages []*Stage
	Out    *Table

	// AggParseErrors counts non-numeric values that SUM/MIN/MAX/AVG
	// aggregates skipped during this query's map tasks (satellite: the old
	// planner silently aggregated them as 0). Incremented from worker-pool
	// goroutines, hence atomic; under a speculative race both modes map the
	// same rows, so treat the count as a lower-bounded signal, not an exact
	// row count.
	AggParseErrors *atomic.Int64
}

// compiler carries naming state for one compilation.
type compiler struct {
	cat   *Catalog
	qid   string
	opts  CompileOptions
	stage int
	out   []*Stage
	errs  *atomic.Int64
}

// source is a fusable input: files plus a row transform pending application
// in the next stage's map function. producer is the stage that wrote the
// files (-1 for base tables); estBytes is the planner's size estimate. sig
// accumulates the plan-content signature of the rows this source yields —
// scan plus any fused filters/projections, or a producer stage's Sig.
type source struct {
	files     []string
	schema    Schema
	transform func(Row) (Row, bool) // nil = identity
	producer  int
	estBytes  int64
	sig       string
}

// apply runs the pending transform.
func (s *source) apply(r Row) (Row, bool) {
	if s.transform == nil {
		return r, true
	}
	return s.transform(r)
}

// deps returns the dependency edges a stage reading these sources needs.
func stageDeps(srcs ...*source) []int {
	var deps []int
	for _, s := range srcs {
		if s.producer >= 0 {
			deps = append(deps, s.producer)
		}
	}
	return deps
}

// Compile lowers a logical plan to MapReduce stages with default options.
func Compile(cat *Catalog, qid string, p *Plan) (*Compiled, error) {
	return CompileWith(cat, qid, p, CompileOptions{})
}

// CompileWith lowers a logical plan to a stage DAG, fusing filters and
// projections into the map phase of the nearest downstream shuffle — the
// way Hive's physical planner packs operators into job boundaries. Interior
// map-only work never becomes its own stage: a `materialize` stage appears
// only at the result boundary, when the plan ends in fused-but-unapplied
// transforms (or is a bare scan). Every stage except the result producer is
// marked IntermediateOutput, routing its table through the runtime's
// intermediate store instead of HDFS.
func CompileWith(cat *Catalog, qid string, p *Plan, opts CompileOptions) (*Compiled, error) {
	c := &compiler{cat: cat, qid: qid, opts: opts, errs: &atomic.Int64{}}
	src, err := c.compileNode(p)
	if err != nil {
		return nil, err
	}
	// A plan ending in scan/filter/project (pending transform, or no stage
	// at all) still needs one job to materialize its result.
	var out *Table
	if src.transform == nil && src.producer >= 0 {
		out = c.out[src.producer].Out
	} else {
		st, err := c.materialize(src)
		if err != nil {
			return nil, err
		}
		out = st.Out
	}
	// The result table stays in HDFS; everything upstream is intra-query.
	for _, st := range c.out {
		st.Spec.IntermediateOutput = st.Out != out
	}
	return &Compiled{Stages: c.out, Out: out, AggParseErrors: c.errs}, nil
}

// tmpTable allocates the next stage's output table.
func (c *compiler) tmpTable(schema Schema, reduces int) *Table {
	name := fmt.Sprintf("%s-stage%d", c.qid, c.stage)
	base := fmt.Sprintf("/query/%s/stage-%d", c.qid, c.stage)
	c.stage++
	t := &Table{Name: name, Schema: schema}
	for p := 0; p < reduces; p++ {
		t.Files = append(t.Files, mapreduce.PartFileName(base, p))
	}
	return t
}

// outputBase recovers the OutputFile prefix from a tmp table. A table whose
// files do not follow the /part- layout cannot serve as a job output
// directory — report that instead of slicing at index -1.
func outputBase(t *Table) (string, error) {
	if len(t.Files) == 0 {
		return "", fmt.Errorf("query: table %q has no files", t.Name)
	}
	f := t.Files[0]
	i := strings.LastIndex(f, "/part-")
	if i < 0 {
		return "", fmt.Errorf("query: table %q file %q is not a part file (want .../part-NNNNN)", t.Name, f)
	}
	return f[:i], nil
}

// tableBytes sums the on-DFS sizes of a source's files for the reduce-count
// heuristic. Files that do not exist yet (another stage's pending output)
// contribute nothing — callers estimate those from the producer instead.
func (c *compiler) tableBytes(files []string) int64 {
	var total int64
	for _, name := range files {
		if f, err := c.cat.dfs.Lookup(name); err == nil {
			total += f.Size()
		}
	}
	return total
}

// compileNode returns the fusable source for a plan node, emitting stages
// for every shuffle boundary beneath it.
func (c *compiler) compileNode(p *Plan) (*source, error) {
	switch p.kind {
	case nodeScan:
		t, err := c.cat.Lookup(p.table)
		if err != nil {
			return nil, err
		}
		if len(t.Files) == 0 {
			return nil, fmt.Errorf("query: table %q has no files", t.Name)
		}
		return &source{
			files:    t.Files,
			schema:   t.Schema,
			producer: -1,
			estBytes: c.tableBytes(t.Files),
			sig:      fmt.Sprintf("scan[%s|%s]", t.Name, strings.Join(t.Schema, ",")),
		}, nil

	case nodeFilter:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(p.conds))
		for i, cond := range p.conds {
			j, err := src.schema.Index(cond.Col)
			if err != nil {
				return nil, err
			}
			idx[i] = j
		}
		conds := p.conds
		prev := src.transform
		src.transform = func(r Row) (Row, bool) {
			if prev != nil {
				var ok bool
				if r, ok = prev(r); !ok {
					return nil, false
				}
			}
			for i, cond := range conds {
				if !cond.eval(r[idx[i]]) {
					return nil, false
				}
			}
			return r, true
		}
		rendered := make([]string, len(conds))
		for i, cond := range conds {
			rendered[i] = cond.Col + string(cond.Op) + cond.Val
		}
		src.sig = fmt.Sprintf("filter[%s](%s)", strings.Join(rendered, "&"), src.sig)
		return src, nil

	case nodeProject:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(p.cols))
		for i, col := range p.cols {
			j, err := src.schema.Index(col)
			if err != nil {
				return nil, err
			}
			idx[i] = j
		}
		prev := src.transform
		src.transform = func(r Row) (Row, bool) {
			if prev != nil {
				var ok bool
				if r, ok = prev(r); !ok {
					return nil, false
				}
			}
			out := make(Row, len(idx))
			for i, j := range idx {
				out[i] = r[j]
			}
			return out, true
		}
		src.schema = append(Schema(nil), p.cols...)
		src.sig = fmt.Sprintf("project[%s](%s)", strings.Join(p.cols, ","), src.sig)
		return src, nil

	case nodeGroupBy:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		return c.groupByStage(src, p.keys, p.aggs)

	case nodeJoin:
		left, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		right, err := c.compileNode(p.right)
		if err != nil {
			return nil, err
		}
		return c.joinStage(left, right, p.on[0], p.on[1])

	case nodeOrderBy:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		return c.orderByStage(src, p.cols[0], p.desc)

	default:
		return nil, fmt.Errorf("query: unknown plan node %d", p.kind)
	}
}

// newStage builds the common JobSpec skeleton for one stage and appends the
// stage to the plan with its dependency edges.
func (c *compiler) newStage(kind string, inputs []string, out *Table, estIn int64, deps []int) (*Stage, error) {
	base, err := outputBase(out)
	if err != nil {
		return nil, err
	}
	st := &Stage{
		ID:   len(c.out),
		Deps: deps,
		Out:  out,
		Kind: kind,

		EstInBytes: estIn,
		Spec: &mapreduce.JobSpec{
			Name:       out.Name,
			JobKey:     "query-" + kind,
			InputFiles: inputs,
			OutputFile: base,
			NumReduces: len(out.Files),
			Format:     mapreduce.LineFormat{},
			MapRate:    stageMapRate,
			ReduceRate: stageReduceRate,
		},
	}
	c.out = append(c.out, st)
	return st, nil
}

// decodeStageLine recovers a row from either a raw table line or a
// pair-encoded stage output line (key TAB value; order-by stages put the
// row in the value).
func decodeStageLine(line []byte) Row {
	for i := 0; i < len(line); i++ {
		if line[i] == '\t' {
			key, val := line[:i], line[i+1:]
			if len(val) > 0 {
				return DecodeRow(val)
			}
			return DecodeRow(key)
		}
	}
	return DecodeRow(line)
}

// materialize emits a pass-through stage for plans ending without a
// shuffle: rows become keys so the output is deterministic (sorted within
// each partition), with duplicate rows preserved through value
// multiplicity. Interior map-only work is always fused into its consumer's
// map function, so this stage only ever sits at the result boundary.
func (c *compiler) materialize(src *source) (*Stage, error) {
	out := c.tmpTable(src.schema, c.opts.reducesFor(src.estBytes))
	st, err := c.newStage("materialize", src.files, out, src.estBytes, stageDeps(src))
	if err != nil {
		return nil, err
	}
	st.Sig = fmt.Sprintf("materialize[]x%d(%s)", len(out.Files), src.sig)
	st.Spec.Map = func(_, line []byte, emit mapreduce.Emit) {
		row, ok := src.apply(decodeStageLine(line))
		if !ok {
			return
		}
		emit(EncodeRow(row), nil)
	}
	st.Spec.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		for range values {
			emit(key, nil)
		}
	}
	return st, nil
}

// aggState is the mergeable partial state of all aggregates for one key:
// per aggregate, (count, sum, min, max) encoded compactly so map-side
// combining works. A value that fails to parse as a number contributes an
// empty state (count 0) instead of silently aggregating as 0, and ticks the
// skipped counter; COUNT counts rows regardless.
func encodeAggStates(row Row, aggIdx []int, aggs []Agg, skipped *atomic.Int64) []byte {
	parts := make([]string, len(aggs))
	for i := range aggs {
		if aggs[i].Kind == AggCount {
			parts[i] = "1,0,0,0"
			continue
		}
		v, ok := numeric(row[aggIdx[i]])
		if !ok {
			if skipped != nil {
				skipped.Add(1)
			}
			parts[i] = "0,0,0,0"
			continue
		}
		parts[i] = "1," + formatNum(v) + "," + formatNum(v) + "," + formatNum(v)
	}
	return []byte(strings.Join(parts, colSep))
}

func mergeAggStates(values [][]byte, n int) ([]int64, []float64, []float64, []float64, error) {
	cnt := make([]int64, n)
	sum := make([]float64, n)
	mn := make([]float64, n)
	mx := make([]float64, n)
	for i := range mn {
		mn[i] = math.Inf(1)
		mx[i] = math.Inf(-1)
	}
	for _, v := range values {
		parts := strings.Split(string(v), colSep)
		if len(parts) != n {
			return nil, nil, nil, nil, fmt.Errorf("query: corrupt agg state %q", v)
		}
		for i, p := range parts {
			f := strings.SplitN(p, ",", 4)
			if len(f) != 4 {
				return nil, nil, nil, nil, fmt.Errorf("query: corrupt agg field %q", p)
			}
			c, err := strconv.ParseInt(f[0], 10, 64)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			// Empty states (count 0, from skipped non-numeric values) carry
			// no observation: folding their placeholder min/max/sum would
			// resurrect the silent-zero bug this encoding exists to fix.
			if c == 0 {
				continue
			}
			s, _ := strconv.ParseFloat(f[1], 64)
			lo, _ := strconv.ParseFloat(f[2], 64)
			hi, _ := strconv.ParseFloat(f[3], 64)
			cnt[i] += c
			sum[i] += s
			if lo < mn[i] {
				mn[i] = lo
			}
			if hi > mx[i] {
				mx[i] = hi
			}
		}
	}
	return cnt, sum, mn, mx, nil
}

// groupByStage emits the aggregation job.
func (c *compiler) groupByStage(src *source, keys []string, aggs []Agg) (*source, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("query: group-by needs at least one key")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("query: group-by needs at least one aggregate")
	}
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j, err := src.schema.Index(k)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = j
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Kind == AggCount {
			continue
		}
		j, err := src.schema.Index(a.Col)
		if err != nil {
			return nil, err
		}
		aggIdx[i] = j
	}
	outSchema := append(Schema(nil), keys...)
	for _, a := range aggs {
		outSchema = append(outSchema, a.Name())
	}
	out := c.tmpTable(outSchema, c.opts.reducesFor(src.estBytes))
	st, err := c.newStage("groupby", src.files, out, src.estBytes, stageDeps(src))
	if err != nil {
		return nil, err
	}
	aggNames := make([]string, len(aggs))
	for i, a := range aggs {
		aggNames[i] = a.Name()
	}
	st.Sig = fmt.Sprintf("groupby[%s;%s]x%d(%s)",
		strings.Join(keys, ","), strings.Join(aggNames, ","), len(out.Files), src.sig)
	skipped := c.errs
	st.Spec.Map = func(_, line []byte, emit mapreduce.Emit) {
		row, ok := src.apply(decodeStageLine(line))
		if !ok {
			return
		}
		keyParts := make([]string, len(keyIdx))
		for i, j := range keyIdx {
			keyParts[i] = row[j]
		}
		emit([]byte(strings.Join(keyParts, colSep)), encodeAggStates(row, aggIdx, aggs, skipped))
	}
	mergeAndEmit := func(key []byte, values [][]byte, emit mapreduce.Emit, final bool) {
		cnt, sum, mn, mx, err := mergeAggStates(values, len(aggs))
		if err != nil {
			panic(err)
		}
		if !final {
			parts := make([]string, len(aggs))
			for i := range aggs {
				if cnt[i] == 0 {
					parts[i] = "0,0,0,0"
					continue
				}
				parts[i] = fmt.Sprintf("%d,%s,%s,%s", cnt[i], formatNum(sum[i]), formatNum(mn[i]), formatNum(mx[i]))
			}
			emit(key, []byte(strings.Join(parts, colSep)))
			return
		}
		row := DecodeRow(key)
		for i, a := range aggs {
			var v float64
			switch a.Kind {
			case AggCount:
				row = append(row, strconv.FormatInt(cnt[i], 10))
				continue
			case AggSum:
				v = sum[i]
			case AggMin:
				v = mn[i]
			case AggMax:
				v = mx[i]
			case AggAvg:
				if cnt[i] > 0 {
					v = sum[i] / float64(cnt[i])
				}
			}
			if cnt[i] == 0 {
				// Every value in the group failed to parse: surface NULL
				// rather than a fabricated 0 (or ±Inf from the identity
				// elements).
				row = append(row, "NULL")
				continue
			}
			row = append(row, formatNum(v))
		}
		emit(EncodeRow(row), nil)
	}
	st.Spec.Combine = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		mergeAndEmit(key, values, emit, false)
	}
	st.Spec.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		mergeAndEmit(key, values, emit, true)
	}
	// Grouping collapses rows; a quarter of the input is a workable prior
	// for sizing downstream stages.
	return &source{files: out.Files, schema: outSchema, producer: st.ID, estBytes: src.estBytes / 4, sig: st.Sig}, nil
}

// joinStage emits the repartition join job: both sides' files feed one job
// whose per-file map tags each row with its side. The two input subtrees
// are independent — the stage's Deps carry one edge per side that is itself
// a stage, which is exactly where the DAG runner overlaps branches.
func (c *compiler) joinStage(left, right *source, leftCol, rightCol string) (*source, error) {
	li, err := left.schema.Index(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.schema.Index(rightCol)
	if err != nil {
		return nil, err
	}
	outSchema := append(append(Schema(nil), left.schema...), right.schema...)
	estIn := left.estBytes + right.estBytes
	out := c.tmpTable(outSchema, c.opts.reducesFor(estIn))
	inputs := append(append([]string(nil), left.files...), right.files...)
	st, err := c.newStage("join", inputs, out, estIn, stageDeps(left, right))
	if err != nil {
		return nil, err
	}
	st.Sig = fmt.Sprintf("join[%s=%s]x%d(%s|%s)",
		leftCol, rightCol, len(out.Files), left.sig, right.sig)

	leftFiles := map[string]bool{}
	for _, f := range left.files {
		leftFiles[f] = true
	}
	mkSide := func(side *source, keyCol int, tag string) mapreduce.MapFunc {
		return func(_, line []byte, emit mapreduce.Emit) {
			row, ok := side.apply(decodeStageLine(line))
			if !ok {
				return
			}
			emit([]byte(row[keyCol]), []byte(tag+colSep+string(EncodeRow(row))))
		}
	}
	leftMap := mkSide(left, li, "L")
	rightMap := mkSide(right, ri, "R")
	st.Spec.MapFor = func(file string) mapreduce.MapFunc {
		if leftFiles[file] {
			return leftMap
		}
		return rightMap
	}
	st.Spec.Reduce = func(_ []byte, values [][]byte, emit mapreduce.Emit) {
		var ls, rs []Row
		for _, v := range values {
			s := string(v)
			i := strings.Index(s, colSep)
			if i < 0 {
				panic(fmt.Sprintf("query: corrupt join value %q", s))
			}
			row := DecodeRow([]byte(s[i+len(colSep):]))
			if s[:i] == "L" {
				ls = append(ls, row)
			} else {
				rs = append(rs, row)
			}
		}
		for _, l := range ls {
			for _, r := range rs {
				emit(EncodeRow(append(append(Row(nil), l...), r...)), nil)
			}
		}
	}
	return &source{files: out.Files, schema: outSchema, producer: st.ID, estBytes: estIn, sig: st.Sig}, nil
}

// orderByStage emits the single-reducer sort job. Numeric columns sort
// numerically via an order-preserving fixed-width encoding of the float
// bits; string columns sort lexically.
func (c *compiler) orderByStage(src *source, col string, desc bool) (*source, error) {
	ci, err := src.schema.Index(col)
	if err != nil {
		return nil, err
	}
	// Global order needs one sorted stream: the reduce count stays 1
	// regardless of input size.
	out := c.tmpTable(src.schema, 1)
	st, err := c.newStage("orderby", src.files, out, src.estBytes, stageDeps(src))
	if err != nil {
		return nil, err
	}
	st.Sig = fmt.Sprintf("orderby[%s;desc=%v]x1(%s)", col, desc, src.sig)
	st.Spec.Map = func(_, line []byte, emit mapreduce.Emit) {
		row, ok := src.apply(decodeStageLine(line))
		if !ok {
			return
		}
		emit(sortKey(row[ci], desc), EncodeRow(row))
	}
	st.Spec.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		for _, v := range values {
			emit(key, v)
		}
	}
	return &source{files: out.Files, schema: src.schema, producer: st.ID, estBytes: src.estBytes, sig: st.Sig}, nil
}

// sortKey builds an order-preserving byte encoding of a column value:
// numerics map through the IEEE-754 total-order trick to 16 hex digits
// (prefixed "n"), everything else sorts lexically after all numerics
// (prefixed "s"), matching SQL's numeric-before-string comparison.
func sortKey(v string, desc bool) []byte {
	if f, ok := numeric(v); ok {
		bits := math.Float64bits(f)
		if f >= 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		if desc {
			bits = ^bits
		}
		return []byte(fmt.Sprintf("n%016x", bits))
	}
	if desc {
		// Descending strings: invert each byte, then close with a 0xff
		// sentinel. The sentinel fixes prefix ordering — without it, the
		// inverted encoding of "ab" is a prefix of the inverted "abc" and
		// sorts before it, putting the shorter string first when descending
		// order demands it last. 0xff cannot collide with inverted content:
		// the catalog rejects NUL bytes in values, so no inverted byte is
		// ever 0xff.
		b := []byte(v)
		inv := make([]byte, len(b)+1)
		for i, ch := range b {
			inv[i] = 0xff - ch
		}
		inv[len(b)] = 0xff
		return append([]byte("s"), inv...)
	}
	return append([]byte("s"), v...)
}
