package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mrapid/internal/mapreduce"
)

// Query-stage compute rates: parsing delimited rows is lighter than
// WordCount tokenization; aggregation streams fast.
const (
	stageMapRate    = 8e6
	stageReduceRate = 20e6
)

// Stage is one MapReduce job of a compiled query, producing a temp table.
type Stage struct {
	Spec *mapreduce.JobSpec
	Out  *Table
	Kind string // "groupby", "join", "orderby", "materialize"
}

// Compiled is the physical plan: stages to run in order, last one producing
// the result table.
type Compiled struct {
	Stages []*Stage
	Out    *Table
}

// compiler carries naming state for one compilation.
type compiler struct {
	cat   *Catalog
	qid   string
	stage int
	out   []*Stage
}

// source is a fusable input: files plus a row transform pending application
// in the next stage's map function.
type source struct {
	files     []string
	schema    Schema
	transform func(Row) (Row, bool) // nil = identity
}

// apply runs the pending transform.
func (s *source) apply(r Row) (Row, bool) {
	if s.transform == nil {
		return r, true
	}
	return s.transform(r)
}

// Compile lowers a logical plan to MapReduce stages, fusing filters and
// projections into the map phase of the nearest downstream shuffle — the
// way Hive's physical planner packs operators into job boundaries.
func Compile(cat *Catalog, qid string, p *Plan) (*Compiled, error) {
	c := &compiler{cat: cat, qid: qid}
	src, err := c.compileNode(p)
	if err != nil {
		return nil, err
	}
	// A plan ending in scan/filter/project (pending transform, or no stage
	// at all) still needs one job to materialize its result.
	var out *Table
	endsAtStage := src.transform == nil && len(c.out) > 0 &&
		c.out[len(c.out)-1].Out.Files[0] == src.files[0]
	if endsAtStage {
		out = c.out[len(c.out)-1].Out
	} else {
		st, err := c.materialize(src)
		if err != nil {
			return nil, err
		}
		out = st.Out
	}
	return &Compiled{Stages: c.out, Out: out}, nil
}

// tmpTable allocates the next stage's output table.
func (c *compiler) tmpTable(schema Schema, reduces int) *Table {
	name := fmt.Sprintf("%s-stage%d", c.qid, c.stage)
	base := fmt.Sprintf("/query/%s/stage-%d", c.qid, c.stage)
	c.stage++
	t := &Table{Name: name, Schema: schema}
	for p := 0; p < reduces; p++ {
		t.Files = append(t.Files, mapreduce.PartFileName(base, p))
	}
	return t
}

// outputBase recovers the OutputFile prefix from a tmp table.
func outputBase(t *Table) string {
	f := t.Files[0]
	return f[:strings.LastIndex(f, "/part-")]
}

// compileNode returns the fusable source for a plan node, emitting stages
// for every shuffle boundary beneath it.
func (c *compiler) compileNode(p *Plan) (*source, error) {
	switch p.kind {
	case nodeScan:
		t, err := c.cat.Lookup(p.table)
		if err != nil {
			return nil, err
		}
		return &source{files: t.Files, schema: t.Schema}, nil

	case nodeFilter:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(p.conds))
		for i, cond := range p.conds {
			j, err := src.schema.Index(cond.Col)
			if err != nil {
				return nil, err
			}
			idx[i] = j
		}
		conds := p.conds
		prev := src.transform
		src.transform = func(r Row) (Row, bool) {
			if prev != nil {
				var ok bool
				if r, ok = prev(r); !ok {
					return nil, false
				}
			}
			for i, cond := range conds {
				if !cond.eval(r[idx[i]]) {
					return nil, false
				}
			}
			return r, true
		}
		return src, nil

	case nodeProject:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(p.cols))
		for i, col := range p.cols {
			j, err := src.schema.Index(col)
			if err != nil {
				return nil, err
			}
			idx[i] = j
		}
		prev := src.transform
		src.transform = func(r Row) (Row, bool) {
			if prev != nil {
				var ok bool
				if r, ok = prev(r); !ok {
					return nil, false
				}
			}
			out := make(Row, len(idx))
			for i, j := range idx {
				out[i] = r[j]
			}
			return out, true
		}
		src.schema = append(Schema(nil), p.cols...)
		return src, nil

	case nodeGroupBy:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		return c.groupByStage(src, p.keys, p.aggs)

	case nodeJoin:
		left, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		right, err := c.compileNode(p.right)
		if err != nil {
			return nil, err
		}
		return c.joinStage(left, right, p.on[0], p.on[1])

	case nodeOrderBy:
		src, err := c.compileNode(p.left)
		if err != nil {
			return nil, err
		}
		return c.orderByStage(src, p.cols[0], p.desc)

	default:
		return nil, fmt.Errorf("query: unknown plan node %d", p.kind)
	}
}

// newStageSpec builds the common JobSpec skeleton for one stage.
func (c *compiler) newStageSpec(kind string, inputs []string, out *Table, reduces int) *mapreduce.JobSpec {
	return &mapreduce.JobSpec{
		Name:       out.Name,
		JobKey:     "query-" + kind,
		InputFiles: inputs,
		OutputFile: outputBase(out),
		NumReduces: reduces,
		Format:     mapreduce.LineFormat{},
		MapRate:    stageMapRate,
		ReduceRate: stageReduceRate,
	}
}

// decodeStageLine recovers a row from either a raw table line or a
// pair-encoded stage output line (key TAB value; order-by stages put the
// row in the value).
func decodeStageLine(line []byte) Row {
	for i := 0; i < len(line); i++ {
		if line[i] == '\t' {
			key, val := line[:i], line[i+1:]
			if len(val) > 0 {
				return DecodeRow(val)
			}
			return DecodeRow(key)
		}
	}
	return DecodeRow(line)
}

// materialize emits a pass-through stage for plans ending without a
// shuffle: rows become keys so the output is deterministic (sorted), with
// duplicate rows preserved through value multiplicity.
func (c *compiler) materialize(src *source) (*Stage, error) {
	out := c.tmpTable(src.schema, 1)
	spec := c.newStageSpec("materialize", src.files, out, 1)
	spec.Map = func(_, line []byte, emit mapreduce.Emit) {
		row, ok := src.apply(decodeStageLine(line))
		if !ok {
			return
		}
		emit(EncodeRow(row), nil)
	}
	spec.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		for range values {
			emit(key, nil)
		}
	}
	st := &Stage{Spec: spec, Out: out, Kind: "materialize"}
	c.out = append(c.out, st)
	return st, nil
}

// aggState is the mergeable partial state of all aggregates for one key:
// per aggregate, (count, sum, min, max) encoded compactly so map-side
// combining works.
func encodeAggStates(row Row, aggIdx []int, aggs []Agg) []byte {
	parts := make([]string, len(aggs))
	for i := range aggs {
		v := 0.0
		if aggs[i].Kind != AggCount {
			v, _ = numeric(row[aggIdx[i]])
		}
		parts[i] = "1," + formatNum(v) + "," + formatNum(v) + "," + formatNum(v)
	}
	return []byte(strings.Join(parts, colSep))
}

func mergeAggStates(values [][]byte, n int) ([]int64, []float64, []float64, []float64, error) {
	cnt := make([]int64, n)
	sum := make([]float64, n)
	mn := make([]float64, n)
	mx := make([]float64, n)
	for i := range mn {
		mn[i] = math.Inf(1)
		mx[i] = math.Inf(-1)
	}
	for _, v := range values {
		parts := strings.Split(string(v), colSep)
		if len(parts) != n {
			return nil, nil, nil, nil, fmt.Errorf("query: corrupt agg state %q", v)
		}
		for i, p := range parts {
			f := strings.SplitN(p, ",", 4)
			if len(f) != 4 {
				return nil, nil, nil, nil, fmt.Errorf("query: corrupt agg field %q", p)
			}
			c, err := strconv.ParseInt(f[0], 10, 64)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			s, _ := strconv.ParseFloat(f[1], 64)
			lo, _ := strconv.ParseFloat(f[2], 64)
			hi, _ := strconv.ParseFloat(f[3], 64)
			cnt[i] += c
			sum[i] += s
			if lo < mn[i] {
				mn[i] = lo
			}
			if hi > mx[i] {
				mx[i] = hi
			}
		}
	}
	return cnt, sum, mn, mx, nil
}

// groupByStage emits the aggregation job.
func (c *compiler) groupByStage(src *source, keys []string, aggs []Agg) (*source, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("query: group-by needs at least one key")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("query: group-by needs at least one aggregate")
	}
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j, err := src.schema.Index(k)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = j
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Kind == AggCount {
			continue
		}
		j, err := src.schema.Index(a.Col)
		if err != nil {
			return nil, err
		}
		aggIdx[i] = j
	}
	outSchema := append(Schema(nil), keys...)
	for _, a := range aggs {
		outSchema = append(outSchema, a.Name())
	}
	out := c.tmpTable(outSchema, 1)
	spec := c.newStageSpec("groupby", src.files, out, 1)
	spec.Map = func(_, line []byte, emit mapreduce.Emit) {
		row, ok := src.apply(decodeStageLine(line))
		if !ok {
			return
		}
		keyParts := make([]string, len(keyIdx))
		for i, j := range keyIdx {
			keyParts[i] = row[j]
		}
		emit([]byte(strings.Join(keyParts, colSep)), encodeAggStates(row, aggIdx, aggs))
	}
	mergeAndEmit := func(key []byte, values [][]byte, emit mapreduce.Emit, final bool) {
		cnt, sum, mn, mx, err := mergeAggStates(values, len(aggs))
		if err != nil {
			panic(err)
		}
		if !final {
			parts := make([]string, len(aggs))
			for i := range aggs {
				parts[i] = fmt.Sprintf("%d,%s,%s,%s", cnt[i], formatNum(sum[i]), formatNum(mn[i]), formatNum(mx[i]))
			}
			emit(key, []byte(strings.Join(parts, colSep)))
			return
		}
		row := DecodeRow(key)
		for i, a := range aggs {
			var v float64
			switch a.Kind {
			case AggCount:
				row = append(row, strconv.FormatInt(cnt[i], 10))
				continue
			case AggSum:
				v = sum[i]
			case AggMin:
				v = mn[i]
			case AggMax:
				v = mx[i]
			case AggAvg:
				if cnt[i] > 0 {
					v = sum[i] / float64(cnt[i])
				}
			}
			row = append(row, formatNum(v))
		}
		emit(EncodeRow(row), nil)
	}
	spec.Combine = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		mergeAndEmit(key, values, emit, false)
	}
	spec.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		mergeAndEmit(key, values, emit, true)
	}
	c.out = append(c.out, &Stage{Spec: spec, Out: out, Kind: "groupby"})
	return &source{files: out.Files, schema: outSchema}, nil
}

// joinStage emits the repartition join job: both sides' files feed one job
// whose per-file map tags each row with its side.
func (c *compiler) joinStage(left, right *source, leftCol, rightCol string) (*source, error) {
	li, err := left.schema.Index(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.schema.Index(rightCol)
	if err != nil {
		return nil, err
	}
	outSchema := append(append(Schema(nil), left.schema...), right.schema...)
	out := c.tmpTable(outSchema, 1)
	inputs := append(append([]string(nil), left.files...), right.files...)
	spec := c.newStageSpec("join", inputs, out, 1)

	leftFiles := map[string]bool{}
	for _, f := range left.files {
		leftFiles[f] = true
	}
	mkSide := func(side *source, keyCol int, tag string) mapreduce.MapFunc {
		return func(_, line []byte, emit mapreduce.Emit) {
			row, ok := side.apply(decodeStageLine(line))
			if !ok {
				return
			}
			emit([]byte(row[keyCol]), []byte(tag+colSep+string(EncodeRow(row))))
		}
	}
	leftMap := mkSide(left, li, "L")
	rightMap := mkSide(right, ri, "R")
	spec.MapFor = func(file string) mapreduce.MapFunc {
		if leftFiles[file] {
			return leftMap
		}
		return rightMap
	}
	spec.Reduce = func(_ []byte, values [][]byte, emit mapreduce.Emit) {
		var ls, rs []Row
		for _, v := range values {
			s := string(v)
			i := strings.Index(s, colSep)
			if i < 0 {
				panic(fmt.Sprintf("query: corrupt join value %q", s))
			}
			row := DecodeRow([]byte(s[i+len(colSep):]))
			if s[:i] == "L" {
				ls = append(ls, row)
			} else {
				rs = append(rs, row)
			}
		}
		for _, l := range ls {
			for _, r := range rs {
				emit(EncodeRow(append(append(Row(nil), l...), r...)), nil)
			}
		}
	}
	c.out = append(c.out, &Stage{Spec: spec, Out: out, Kind: "join"})
	return &source{files: out.Files, schema: outSchema}, nil
}

// orderByStage emits the single-reducer sort job. Numeric columns sort
// numerically via an order-preserving fixed-width encoding of the float
// bits; string columns sort lexically (descending strings are rejected at
// compile time — there is no order-reversing encoding for unbounded
// strings).
func (c *compiler) orderByStage(src *source, col string, desc bool) (*source, error) {
	ci, err := src.schema.Index(col)
	if err != nil {
		return nil, err
	}
	out := c.tmpTable(src.schema, 1)
	spec := c.newStageSpec("orderby", src.files, out, 1)
	spec.Map = func(_, line []byte, emit mapreduce.Emit) {
		row, ok := src.apply(decodeStageLine(line))
		if !ok {
			return
		}
		emit(sortKey(row[ci], desc), EncodeRow(row))
	}
	spec.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emit) {
		for _, v := range values {
			emit(key, v)
		}
	}
	c.out = append(c.out, &Stage{Spec: spec, Out: out, Kind: "orderby"})
	return &source{files: out.Files, schema: src.schema}, nil
}

// sortKey builds an order-preserving byte encoding of a column value:
// numerics map through the IEEE-754 total-order trick to 16 hex digits
// (prefixed "n"), everything else sorts lexically after all numerics
// (prefixed "s"), matching SQL's numeric-before-string comparison.
func sortKey(v string, desc bool) []byte {
	if f, ok := numeric(v); ok {
		bits := math.Float64bits(f)
		if f >= 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		if desc {
			bits = ^bits
		}
		return []byte(fmt.Sprintf("n%016x", bits))
	}
	if desc {
		// Descending strings: invert each byte. Works for the ASCII data
		// the catalog stores.
		b := []byte(v)
		inv := make([]byte, len(b))
		for i, ch := range b {
			inv[i] = 0xff - ch
		}
		return append([]byte("s"), inv...)
	}
	return append([]byte("s"), v...)
}
