package query

import "fmt"

// Op compares a column against a literal in a filter condition.
type Op string

// Comparison operators.
const (
	OpEq       Op = "="
	OpNe       Op = "!="
	OpLt       Op = "<"
	OpLe       Op = "<="
	OpGt       Op = ">"
	OpGe       Op = ">="
	OpContains Op = "contains"
)

// Cond is one filter condition: column OP literal. Comparisons are numeric
// when both sides parse as numbers, lexical otherwise (Hive's loose-typing
// behaviour for string columns).
type Cond struct {
	Col string
	Op  Op
	Val string
}

// eval applies the condition to a value.
func (c Cond) eval(v string) bool {
	if c.Op == OpContains {
		return contains(v, c.Val)
	}
	if a, okA := numeric(v); okA {
		if b, okB := numeric(c.Val); okB {
			return cmpOrd(c.Op, compareFloat(a, b))
		}
	}
	return cmpOrd(c.Op, compareString(v, c.Val))
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpOrd(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		panic(fmt.Sprintf("query: unknown operator %q", op))
	}
}

func contains(haystack, needle string) bool {
	if needle == "" {
		return true
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// AggKind identifies an aggregation function.
type AggKind int

// Aggregation kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[k]
}

// Agg is one aggregation over a column (Count ignores its column).
type Agg struct {
	Kind AggKind
	Col  string
}

// Name is the output column name, e.g. "sum(amount)".
func (a Agg) Name() string {
	if a.Kind == AggCount {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Col)
}

// Convenience constructors.
func Count() Agg         { return Agg{Kind: AggCount} }
func Sum(col string) Agg { return Agg{Kind: AggSum, Col: col} }
func Min(col string) Agg { return Agg{Kind: AggMin, Col: col} }
func Max(col string) Agg { return Agg{Kind: AggMax, Col: col} }
func Avg(col string) Agg { return Agg{Kind: AggAvg, Col: col} }
func Where(col string, op Op, val string) Cond {
	return Cond{Col: col, Op: op, Val: val}
}

// nodeKind discriminates plan operators.
type nodeKind int

const (
	nodeScan nodeKind = iota
	nodeFilter
	nodeProject
	nodeGroupBy
	nodeJoin
	nodeOrderBy
)

// Plan is a logical query plan node. Plans are built fluently:
//
//	Scan("sales").
//	    Filter(Where("amount", OpGt, "100")).
//	    GroupBy([]string{"region"}, Sum("amount"), Count())
type Plan struct {
	kind  nodeKind
	table string // scan
	conds []Cond // filter
	cols  []string
	keys  []string // group-by keys
	aggs  []Agg
	left  *Plan // join/unary input
	right *Plan // join right input
	on    [2]string
	desc  bool // order-by direction
}

// Scan reads a catalog table.
func Scan(table string) *Plan { return &Plan{kind: nodeScan, table: table} }

// Filter keeps rows matching every condition.
func (p *Plan) Filter(conds ...Cond) *Plan {
	return &Plan{kind: nodeFilter, conds: conds, left: p}
}

// Project keeps the named columns, in order.
func (p *Plan) Project(cols ...string) *Plan {
	return &Plan{kind: nodeProject, cols: cols, left: p}
}

// GroupBy groups on keys and computes the aggregates; the output schema is
// keys followed by aggregate columns.
func (p *Plan) GroupBy(keys []string, aggs ...Agg) *Plan {
	return &Plan{kind: nodeGroupBy, keys: keys, aggs: aggs, left: p}
}

// Join inner-joins p with right on p.leftCol = right.rightCol; the output
// schema is the left schema followed by the right schema.
func (p *Plan) Join(right *Plan, leftCol, rightCol string) *Plan {
	return &Plan{kind: nodeJoin, left: p, right: right, on: [2]string{leftCol, rightCol}}
}

// OrderBy sorts the result by one column (numeric when the values parse).
func (p *Plan) OrderBy(col string, desc bool) *Plan {
	return &Plan{kind: nodeOrderBy, cols: []string{col}, desc: desc, left: p}
}

func (p *Plan) String() string {
	switch p.kind {
	case nodeScan:
		return fmt.Sprintf("scan(%s)", p.table)
	case nodeFilter:
		return fmt.Sprintf("filter(%v, %s)", p.conds, p.left)
	case nodeProject:
		return fmt.Sprintf("project(%v, %s)", p.cols, p.left)
	case nodeGroupBy:
		return fmt.Sprintf("groupby(%v, %s)", p.keys, p.left)
	case nodeJoin:
		return fmt.Sprintf("join(%s=%s, %s, %s)", p.on[0], p.on[1], p.left, p.right)
	case nodeOrderBy:
		return fmt.Sprintf("orderby(%s desc=%v, %s)", p.cols[0], p.desc, p.left)
	default:
		return "?"
	}
}
