package bench

import (
	"fmt"
	"time"

	"mrapid/internal/flight"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
)

// The engine experiment is a pure event storm: no mapreduce job, just the
// discrete-event engine driven through the same primitives the cluster
// simulation hammers — staggered per-node heartbeat tickers, same-instant
// launch bursts, FIFO device queues, semaphore churn, watchdog timers that
// are almost always cancelled, and a per-event metrics sample. It exists
// to measure the simulator itself: the flight recorder's self-profiler
// summarizes the run as BENCH_engine.json (events/sec, allocs/event,
// host-ns/virtual-sec), which CI diffs against a committed baseline.
//
// The storm is fully deterministic; the experiment runs it twice and
// fails if the two virtual timelines or metric dumps diverge.

// engineStormConfig sizes one storm run.
type engineStormConfig struct {
	Nodes     int           // heartbeat tickers
	Burst     int           // container launches per heartbeat
	Pings     int           // status-RPC acks per heartbeat (pure engine events)
	Heartbeat time.Duration // ticker period
	Duration  time.Duration // virtual run length
}

func defaultStorm(scale float64) engineStormConfig {
	d := time.Duration(300 * scale * float64(time.Second))
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	// 256 nodes × 96 status RPCs spread over up to ~96 ms keeps ~12k events
	// pending at any instant — the regime a large cluster simulation lives
	// in, where a binary heap pays a deep pointer-chasing sift per event and
	// a calendar queue stays O(1).
	return engineStormConfig{Nodes: 256, Burst: 4, Pings: 96, Heartbeat: 100 * time.Millisecond, Duration: d}
}

// stormOutcome captures everything deterministic about one storm run, for
// the run-vs-run identity check.
type stormOutcome struct {
	Fired    uint64
	Now      sim.Time
	Launches int64
	Timeouts int64
	Counters map[string]int64
}

// runEngineStorm drives one storm and returns the deterministic outcome
// plus the self-profiler's host-lane summary.
func runEngineStorm(cfg engineStormConfig) (stormOutcome, flight.EngineBench) {
	eng := sim.NewEngine()
	reg := metrics.New()
	rec := flight.New(eng, reg, nil, flight.Config{Interval: 250 * time.Millisecond})

	disk := sim.NewDevice(eng, "disk", 400e6)
	slots := sim.NewSemaphore(eng, "containers", cfg.Nodes*2)

	var launches, timeouts int64
	// Hot-path metric handles, bound once at setup the way the yarn and
	// mapreduce layers bind theirs: per-sample cost is one atomic.
	launchCounters := make([]metrics.Counter, cfg.Nodes)
	for n := range launchCounters {
		launchCounters[n] = reg.CounterHandle("storm_launches_total", "node", fmt.Sprintf("node%02d", n))
	}
	heartbeats := reg.CounterHandle("storm_heartbeats_total")
	watchdogTimeouts := reg.CounterHandle("storm_watchdog_timeouts_total")
	launchSeconds := reg.HistogramHandle("storm_launch_seconds")

	// One heartbeat: a same-instant burst of container launches, each of
	// which queues a disk transfer, takes a semaphore slot for a while, and
	// arms a watchdog timer that the completion path almost always cancels
	// — the exact shape of the NM/RM hot path, with its timer churn.
	watchdogFired := func() {
		timeouts++
		watchdogTimeouts.Inc()
	}
	launch := func(node int) {
		launches++
		launchCounters[node].Inc()
		watchdog := eng.AfterTimer(80*time.Millisecond, watchdogFired)
		disk.Use(16<<10, func() {
			slots.Acquire(1, func() {
				eng.After(5*time.Millisecond, func() {
					slots.Release(1)
					watchdog.Stop()
					launchSeconds.Observe(0.005)
				})
			})
		})
	}

	// Status-RPC acks: the pure-engine lane. A real node's heartbeat fans
	// out dozens of small RPCs whose completions are events with trivial
	// callbacks; this is the traffic that dominates at 1000-node scale.
	pingDone := func() {}
	tickers := make([]*sim.Ticker, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		n := n
		// Stagger starts so heartbeats do not all land on one instant,
		// then let each burst be genuinely same-instant.
		eng.After(time.Duration(n)*time.Millisecond, func() {
			tickers[n] = eng.Every(cfg.Heartbeat, func() {
				heartbeats.Inc()
				for p := 0; p < cfg.Pings; p++ {
					eng.After(time.Duration(p+1)*time.Millisecond, pingDone)
				}
				for b := 0; b < cfg.Burst; b++ {
					launch(n)
				}
			})
		})
	}
	// A slice of far-future maintenance timers keeps the overflow tier of
	// the queue populated the whole run.
	for i := 0; i < 64; i++ {
		eng.After(cfg.Duration+time.Duration(i)*time.Second, func() {})
	}

	rec.Start()
	eng.RunUntil(sim.Time(0).Add(cfg.Duration))
	for _, t := range tickers {
		if t != nil {
			t.Stop()
		}
	}
	rec.Stop()
	eng.Run() // drain the far-future tail so Fired covers every event

	return stormOutcome{
		Fired:    eng.Fired(),
		Now:      eng.Now(),
		Launches: launches,
		Timeouts: timeouts,
		Counters: reg.Counters(),
	}, rec.SelfProfiler().Summary()
}

func sameOutcome(a, b stormOutcome) error {
	if a.Fired != b.Fired || a.Now != b.Now || a.Launches != b.Launches || a.Timeouts != b.Timeouts {
		return fmt.Errorf("engine storm diverged: fired %d vs %d, now %v vs %v, launches %d vs %d, timeouts %d vs %d",
			a.Fired, b.Fired, a.Now, b.Now, a.Launches, b.Launches, a.Timeouts, b.Timeouts)
	}
	if len(a.Counters) != len(b.Counters) {
		return fmt.Errorf("engine storm diverged: %d vs %d counter series", len(a.Counters), len(b.Counters))
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			return fmt.Errorf("engine storm diverged: %s = %d vs %d", k, v, b.Counters[k])
		}
	}
	return nil
}

// EngineStorm regenerates the engine self-benchmark: two identical storms
// (checked for determinism), with the second run's host-lane summary
// reported and, when Options.EngineBenchOut is set, written as
// BENCH_engine.json.
func EngineStorm(o Options) (*Figure, error) {
	o = o.normalized()
	cfg := defaultStorm(o.Scale)

	first, _ := runEngineStorm(cfg)
	second, eb := runEngineStorm(cfg)
	if err := sameOutcome(first, second); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}

	fig := &Figure{
		ID: "engine", Title: "Engine event-storm self-benchmark",
		XLabel:  "metric",
		Columns: []string{"value"},
		Points: []Point{
			{X: 0, Label: "events", Seconds: map[string]float64{"value": float64(eb.Events)}},
			{X: 1, Label: "events/host-sec", Seconds: map[string]float64{"value": eb.EventsPerHostSec}},
			{X: 2, Label: "allocs/event", Seconds: map[string]float64{"value": eb.AllocsPerEvent}},
			{X: 3, Label: "bytes/event", Seconds: map[string]float64{"value": eb.BytesPerEvent}},
			{X: 4, Label: "host-ns/virtual-sec", Seconds: map[string]float64{"value": eb.HostNsPerVirtualSec}},
			{X: 5, Label: "max-live-pending", Seconds: map[string]float64{"value": float64(eb.MaxEventHeapDepth)}},
		},
		Notes: []string{
			"host-side numbers (vary per machine); virtual timeline checked identical across two runs",
			fmt.Sprintf("storm: %d nodes x %v heartbeats, burst %d, %v virtual", cfg.Nodes, cfg.Heartbeat, cfg.Burst, cfg.Duration),
		},
	}
	if o.EngineBenchOut != "" {
		if err := writeEngineBenchFile(o.EngineBenchOut, "engine", eb); err != nil {
			return nil, err
		}
	}
	return fig, nil
}
