package bench

import (
	"testing"
	"time"

	"mrapid/internal/core"
)

// TestThroughputSmoke runs a reduced multi-tenant workload through the
// JobServer under both admission policies — the CI gate for the whole
// submission stack (launcher, admission, queues, arrival processes).
func TestThroughputSmoke(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 7}
	for _, policy := range []core.AdmissionPolicy{core.PolicyFIFO, core.PolicyWeightedFair} {
		r, err := RunThroughput(A3x4(), WorkloadConfig{
			Jobs: 12, Tenants: 3, Arrival: "poisson:200ms", Policy: policy,
		}, o)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if r.Jobs != 12 || r.Makespan <= 0 {
			t.Fatalf("%s: degenerate result %+v", policy, r)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: latency quantiles wrong: p50=%v p99=%v", policy, r.P50, r.P99)
		}
		if r.Fairness <= 0 || r.Fairness > 1+1e-9 {
			t.Errorf("%s: Jain index out of range: %v", policy, r.Fairness)
		}
		for _, name := range r.TenantOrder {
			ts := r.Tenants[name]
			if ts.Jobs != 4 {
				t.Errorf("%s: tenant %s completed %d jobs, want 4", policy, name, ts.Jobs)
			}
		}
	}
}

// TestThroughputDeterminism pins that the workload driver is a pure function
// of its inputs: two runs with identical options agree exactly.
func TestThroughputDeterminism(t *testing.T) {
	run := func() *ThroughputResult {
		r, err := RunThroughput(A3x4(), WorkloadConfig{
			Jobs: 8, Tenants: 2, Arrival: "poisson:300ms", Policy: core.PolicyWeightedFair,
		}, Options{Scale: 0.05, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.P50 != b.P50 || a.P99 != b.P99 || a.MeanWait != b.MeanWait {
		t.Fatalf("runs diverged:\n a=%+v\n b=%+v", a, b)
	}
}

// TestArrivalTimes covers the arrival-spec parser.
func TestArrivalTimes(t *testing.T) {
	if ts, err := arrivalTimes("burst", 3, 1); err != nil || ts[0] != 0 || ts[2] != 0 {
		t.Errorf("burst: %v %v", ts, err)
	}
	if ts, err := arrivalTimes("uniform:100ms", 3, 1); err != nil || ts[2] != 200*time.Millisecond {
		t.Errorf("uniform: %v %v", ts, err)
	}
	ts, err := arrivalTimes("poisson:100ms", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("poisson arrivals not increasing: %v", ts)
		}
	}
	again, _ := arrivalTimes("poisson:100ms", 4, 1)
	for i := range ts {
		if ts[i] != again[i] {
			t.Fatalf("poisson arrivals not deterministic: %v vs %v", ts, again)
		}
	}
	for _, bad := range []string{"normal:1s", "uniform:-5s", "uniform:x", "poisson:0s"} {
		if _, err := arrivalTimes(bad, 2, 1); err == nil {
			t.Errorf("arrival %q accepted", bad)
		}
	}
}
