package bench

import (
	"testing"
)

// TestDAGQuerySmoke is the CI gate for the query DAG scheduler: on a reduced
// workload the experiment itself enforces row-identity between the chain and
// DAG modes and a strict makespan win for the DAG; the test checks the
// reported figure is shaped and signed as documented.
func TestDAGQuerySmoke(t *testing.T) {
	fig, err := DAGQuery(Options{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(fig.Points))
	}
	chain, dag := fig.Points[0], fig.Points[1]
	if chain.Label != "chain" || dag.Label != "dag" {
		t.Fatalf("labels = %q, %q", chain.Label, dag.Label)
	}
	if dag.Seconds["makespan"] >= chain.Seconds["makespan"] {
		t.Errorf("dag makespan %.2f did not beat chain %.2f",
			dag.Seconds["makespan"], chain.Seconds["makespan"])
	}
	// Both modes route intra-query intermediates through the store; only the
	// final result tables hit HDFS.
	for _, p := range fig.Points {
		if p.Seconds["saved-mb"] <= 0 {
			t.Errorf("%s: saved-mb = %v, want > 0", p.Label, p.Seconds["saved-mb"])
		}
		if p.Seconds["hdfs-mb"] <= 0 {
			t.Errorf("%s: hdfs-mb = %v, want > 0", p.Label, p.Seconds["hdfs-mb"])
		}
	}
	// The headline of the tentpole: the DAG overlapped a query's independent
	// branches; the chain never had more than one stage in flight per query.
	if chain.Seconds["max-conc"] != 1 {
		t.Errorf("chain max-conc = %v, want 1", chain.Seconds["max-conc"])
	}
	if dag.Seconds["max-conc"] < 2 {
		t.Errorf("dag max-conc = %v, want >= 2", dag.Seconds["max-conc"])
	}
}

// TestDAGQueryDeterminism: same options, same figure.
func TestDAGQueryDeterminism(t *testing.T) {
	a, err := DAGQuery(Options{Scale: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DAGQuery(Options{Scale: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for _, col := range a.Columns {
			if a.Points[i].Seconds[col] != b.Points[i].Seconds[col] {
				t.Errorf("point %d %s: %v != %v", i, col, a.Points[i].Seconds[col], b.Points[i].Seconds[col])
			}
		}
	}
}
