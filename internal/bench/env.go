// Package bench regenerates every table and figure of the paper's
// evaluation (Table II, Figures 7–15) on the simulated cluster. Each data
// point runs in a fresh, deterministic simulation; each figure compares the
// four execution modes (stock Hadoop distributed, stock Uber, MRapid D+,
// MRapid U+) or, for the ablation figures, a cumulative stack of individual
// optimizations.
package bench

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/costmodel"
	"mrapid/internal/flight"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/memo"
	"mrapid/internal/metrics"
	"mrapid/internal/shuffle"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
	"mrapid/internal/yarn"
)

// horizon bounds a single job simulation; any job still unfinished after
// this much virtual time is reported as hung.
const horizon = sim.Time(1 << 42) // ≈ 4400 virtual seconds

// sharedMapCache memoizes pure map-function results across the hundreds of
// simulations a figure sweep builds: the execution modes differ only in
// scheduling and I/O charging, never in what the map function computes over
// the same bytes. Purely a host-CPU saving; simulated results are
// unaffected.
var sharedMapCache = mapreduce.NewMapCache(1 << 30)

// ClusterSetup describes the simulated cluster for one run.
type ClusterSetup struct {
	Instance topology.InstanceType
	Workers  int
	Racks    int
	Params   costmodel.Params
	Seed     int64

	// HostWorkers opts the runtime into parallel host-side execution of
	// the pure map/reduce computations (see mapreduce.Runtime.Workers):
	// 0 or 1 is sequential, > 1 sizes the worker pool, < 0 uses
	// GOMAXPROCS. Simulated results are identical either way.
	HostWorkers int

	// NodeFaults scripts machine crashes for fault-tolerance runs. Crash
	// times are measured from cluster-ready (after the AM pool is up, just
	// before the job is submitted).
	NodeFaults []mapreduce.NodeFault
}

// A3x4 is the paper's first testbed: 1 NameNode + 4 A3 DataNodes.
func A3x4() ClusterSetup {
	return ClusterSetup{Instance: topology.A3, Workers: 4, Racks: 2, Params: costmodel.Default(), Seed: 1}
}

// A2x9 is the paper's second testbed: 1 NameNode + 9 A2 DataNodes.
func A2x9() ClusterSetup {
	return ClusterSetup{Instance: topology.A2, Workers: 9, Racks: 2, Params: costmodel.Default(), Seed: 1}
}

// Variant pins down exactly how a job is scheduled and submitted — one
// column of a figure.
type Variant struct {
	Name string

	// NewScheduler builds the RM scheduler (stock or a D+ configuration).
	NewScheduler func() yarn.Scheduler

	// UseFramework routes submission through the MRapid proxy/AM pool.
	UseFramework bool
	PoolSize     int
	// NotifyPoll keeps stock client polling even under the framework (used
	// by the ablation stacks that add "reduced communication" last).
	NotifyPoll bool

	// Mode selects the execution engine.
	Mode  core.ModeKind
	UOpts core.UPlusOptions
}

// The four standard variants of Figures 7–13.
func VariantHadoop() Variant {
	return Variant{Name: "hadoop", NewScheduler: func() yarn.Scheduler { return yarn.NewStockScheduler() }, Mode: core.ModeHadoop}
}

func VariantUber() Variant {
	return Variant{Name: "uber", NewScheduler: func() yarn.Scheduler { return yarn.NewStockScheduler() }, Mode: core.ModeUber}
}

func VariantDPlus() Variant {
	return Variant{
		Name:         "dplus",
		NewScheduler: func() yarn.Scheduler { return core.NewDPlusScheduler(core.FullDPlus()) },
		UseFramework: true, PoolSize: 3,
		Mode: core.ModeDPlus,
		// The framework always carries full U+ options so speculative
		// submissions on this environment race a properly configured U+.
		UOpts: core.FullUPlus(),
	}
}

func VariantUPlus() Variant {
	return Variant{
		Name:         "uplus",
		NewScheduler: func() yarn.Scheduler { return core.NewDPlusScheduler(core.FullDPlus()) },
		UseFramework: true, PoolSize: 3,
		Mode: core.ModeUPlus, UOpts: core.FullUPlus(),
	}
}

// StandardVariants returns the four mode columns in display order.
func StandardVariants() []Variant {
	return []Variant{VariantHadoop(), VariantUber(), VariantDPlus(), VariantUPlus()}
}

// Env is one fully wired simulation.
type Env struct {
	Eng     *sim.Engine
	Cluster *topology.Cluster
	DFS     *hdfs.DFS
	RM      *yarn.RM
	RT      *mapreduce.Runtime
	FW      *core.Framework

	// Params is the validated cost model the env was built with.
	Params costmodel.Params

	// Trace and Reg are set by EnableObservability; nil otherwise.
	Trace *trace.Log
	Reg   *metrics.Registry

	// Flight is set by EnableFlightRecorder; nil otherwise.
	Flight *flight.Recorder
}

// EnableObservability attaches a span tracer and a metrics registry to
// every instrumented component (RM, runtime, HDFS). Call it right after
// NewEnv, before submitting work, so spans form complete trees.
func (e *Env) EnableObservability(eventLimit int) (*trace.Log, *metrics.Registry) {
	if e.Trace == nil {
		e.Trace = trace.New(e.Eng, eventLimit)
		e.Reg = metrics.New()
		e.RM.Trace = e.Trace
		e.RM.Reg = e.Reg
		e.RT.Trace = e.Trace
		e.RT.Reg = e.Reg
		e.DFS.Trace = e.Trace
	}
	return e.Trace, e.Reg
}

// NewEnv builds and starts a simulation for one variant. When the variant
// uses the framework, the AM pool is brought up before NewEnv returns (that
// cost is cluster startup, not job time).
func NewEnv(setup ClusterSetup, v Variant) (*Env, error) {
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: setup.Instance, Workers: setup.Workers, Racks: setup.Racks})
	if err != nil {
		return nil, err
	}
	params := setup.Params
	if err := params.Validate(); err != nil {
		return nil, err
	}
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, setup.Seed)
	rm := yarn.NewRM(eng, cluster, params, v.NewScheduler())
	rm.Start()
	rt := mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
	rt.MapCache = sharedMapCache
	rt.Workers = setup.HostWorkers
	if params.ShuffleService {
		if _, err := shuffle.Attach(rt); err != nil {
			return nil, err
		}
	}
	env := &Env{Eng: eng, Cluster: cluster, DFS: dfs, RM: rm, RT: rt, Params: params}
	if v.UseFramework {
		fw := core.NewFramework(rt, v.PoolSize, v.UOpts)
		fw.NotifyPoll = v.NotifyPoll
		ready := false
		eng.After(0, func() { fw.Start(func() { ready = true }) })
		eng.RunUntil(sim.Time(1 << 36))
		if !ready {
			return nil, fmt.Errorf("bench: AM pool failed to start")
		}
		env.FW = fw
	}
	if len(setup.NodeFaults) > 0 {
		if err := rt.ScheduleNodeFaults(setup.NodeFaults); err != nil {
			return nil, err
		}
	}
	// The cross-job memo cache hangs off the framework (the lookup lives in
	// core.Submit); it needs the registry for its hit/miss counters, so
	// turning it on implies observability.
	if params.MemoCache && env.FW != nil {
		env.EnableObservability(1 << 16)
		env.FW.Memo = memo.New(env.Reg, cluster.Workers(), memo.Config{
			MemBytes:  params.MemoMemBytes,
			DiskBytes: params.MemoDiskBytes,
		})
	}
	return env, nil
}

// Close releases host-side resources (the worker pool, when HostWorkers
// enabled one). The simulated state is untouched.
func (e *Env) Close() { e.RT.CloseWorkers() }

// Run executes one job under the variant and returns the client-observed
// result. The simulation is driven until the job completes.
func (e *Env) Run(v Variant, spec *mapreduce.JobSpec) (*mapreduce.Result, error) {
	var res *mapreduce.Result
	e.Eng.After(0, func() {
		done := func(r *mapreduce.Result) {
			res = r
			e.RM.Stop()
			e.Flight.StopIfRunning()
		}
		switch v.Mode {
		case core.ModeHadoop:
			mapreduce.Submit(e.RT, spec, mapreduce.ModeDistributed, done)
		case core.ModeUber:
			mapreduce.Submit(e.RT, spec, mapreduce.ModeUber, done)
		case core.ModeDPlus:
			if e.FW != nil {
				e.FW.SubmitDPlus(spec, done)
			} else {
				mapreduce.Submit(e.RT, spec, mapreduce.ModeDistributed, done)
			}
		case core.ModeUPlus:
			if e.FW != nil {
				e.FW.SubmitUPlus(spec, done)
			} else {
				core.SubmitUPlusCold(e.RT, spec, v.UOpts, done)
			}
		default:
			panic(fmt.Sprintf("bench: unknown mode %q", v.Mode))
		}
	})
	e.Eng.RunUntil(horizon)
	if res == nil {
		return nil, fmt.Errorf("bench: job %q did not finish within the horizon", spec.Name)
	}
	if res.Err != nil {
		return nil, fmt.Errorf("bench: job %q failed: %w", spec.Name, res.Err)
	}
	return res, nil
}
