package bench

import (
	"testing"
)

// Regression for the percentile off-by-one: nearest-rank means the smallest
// value with at least ⌈p·n⌉ samples at or below it. The old int(p·n) index
// read one rank too high (p50 of 10 samples returned the 6th value).
func TestPercentileNearestRank(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.99, 7},
		{"p0 clamps to first", ten, 0, 1},
		{"p50 of 10 is the 5th", ten, 0.50, 5},
		{"p90 of 10 is the 9th", ten, 0.90, 9},
		{"p99 of 10 is the 10th", ten, 0.99, 10},
		{"p100 of 10 is the 10th", ten, 1.0, 10},
		{"p50 of 4 is the 2nd", []float64{10, 20, 30, 40}, 0.50, 20},
		{"p25 of 4 is the 1st", []float64{10, 20, 30, 40}, 0.25, 10},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

// TestWarmSweepSmoke is the CI gate for the calibrating estimator: on a
// reduced warm workload the predicted rows must actually skip dual-launches,
// spend materially fewer cluster-slot seconds than the always-racing
// baseline, and produce byte-identical outputs.
func TestWarmSweepSmoke(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 7}
	cfgRace := warmWorkload(false)
	cfgPred := warmWorkload(true)
	cfgRace.Jobs, cfgPred.Jobs = 10, 10

	race, err := RunThroughput(A3x4(), cfgRace, o)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := RunThroughput(A3x4(), cfgPred, o)
	if err != nil {
		t.Fatal(err)
	}

	// The baseline raced everything; the calibrated run raced only until the
	// class converged (MinRuns=3) and pre-decided the rest.
	if race.Races != 10 || race.DirectPrediction != 0 {
		t.Fatalf("baseline: races=%d direct=%d, want 10/0", race.Races, race.DirectPrediction)
	}
	if pred.Races != 3 {
		t.Errorf("calibrated run raced %d jobs, want the 3 warm-up races", pred.Races)
	}
	if pred.DirectPrediction != 7 {
		t.Errorf("calibrated run pre-decided %d jobs, want 7", pred.DirectPrediction)
	}
	// Slot-seconds are the headline: direct picks hold one admission slot
	// instead of two, so consumption must drop materially.
	if pred.SlotSeconds >= 0.8*race.SlotSeconds {
		t.Errorf("slot-seconds %0.1f not materially below the always-racing %0.1f",
			pred.SlotSeconds, race.SlotSeconds)
	}
	if pred.PredErrMean < 0 || pred.PredErrMean > 0.5 {
		t.Errorf("mean prediction error %v out of plausible range", pred.PredErrMean)
	}
	// Correctness contract: every job's output identical across the rows.
	for job, want := range race.OutputHashes {
		if got := pred.OutputHashes[job]; got != want {
			t.Errorf("job %s: output %s under prediction, %s under the race", job, got, want)
		}
	}
}
