package bench

import (
	"bytes"
	"fmt"
	"strings"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/workloads"
)

// ShuffleRun summarizes one workload execution under one shuffle-service
// configuration.
type ShuffleRun struct {
	Fetches   int64   // shuffle fetch operations (per-map or consolidated)
	NetworkMB float64 // shuffle bytes that crossed a NIC
	TotalMB   float64 // all shuffle bytes (memory + disk + network transports)
	Seconds   float64 // client-observed job completion time

	outputs map[string][]byte // part-file contents, for byte-identity checks
}

// shuffleConfig is one service setting column of the experiment.
type shuffleConfig struct {
	Name    string
	Enabled bool
	Codec   string
}

func shuffleConfigs() []shuffleConfig {
	return []shuffleConfig{
		{Name: "off", Enabled: false, Codec: "none"},
		{Name: "svc", Enabled: true, Codec: "none"},
		{Name: "svc+lz", Enabled: true, Codec: "lz"},
	}
}

// shuffleCase is one workload row: gen stages input and builds the job.
type shuffleCase struct {
	Name     string
	Reduces  int
	Combiner bool // whether the spec carries a combiner the service can re-apply
	Gen      func(env *Env, o Options) (*mapreduce.JobSpec, string, error)
}

func shuffleCases() []shuffleCase {
	return []shuffleCase{
		{
			// WordCount with the map-side combiner on: the service's in-node
			// re-combine collapses duplicate words across a node's map tasks.
			Name: "wordcount", Reduces: 1, Combiner: true,
			Gen: func(env *Env, o Options) (*mapreduce.JobSpec, string, error) {
				names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/shuf/wc", workloads.WordCountConfig{
					Files: 8, FileBytes: o.bytes(4 * mb), Seed: o.Seed,
				})
				if err != nil {
					return nil, "", err
				}
				return workloads.WordCountSpec("shuffle-wordcount", names, "/out/shuf/wc", true), "/out/shuf/wc", nil
			},
		},
		{
			// Grep search: sum combiner over matched words (every word
			// containing "a" matches — a dense, skewed match set).
			Name: "grep", Reduces: 1, Combiner: true,
			Gen: func(env *Env, o Options) (*mapreduce.JobSpec, string, error) {
				names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/shuf/grep", workloads.WordCountConfig{
					Files: 8, FileBytes: o.bytes(2 * mb), Seed: o.Seed,
				})
				if err != nil {
					return nil, "", err
				}
				return workloads.GrepSearchSpec("shuffle-grep", names, "/out/shuf/grep", "a"), "/out/shuf/grep", nil
			},
		},
		{
			// TeraSort: no combiner (identity reduce), so the service's win is
			// fetch consolidation and, under lz, wire compression alone.
			Name: "terasort", Reduces: 2, Combiner: false,
			Gen: func(env *Env, o Options) (*mapreduce.JobSpec, string, error) {
				rows := int64(200_000 * o.Scale)
				if rows < 16 {
					rows = 16
				}
				names, err := workloads.TeraGen(env.DFS, env.Cluster, "/in/shuf/ts", workloads.TeraGenConfig{
					Rows: rows, Files: 8, Seed: o.Seed,
				})
				if err != nil {
					return nil, "", err
				}
				spec, err := workloads.TeraSortSpec(env.DFS, "shuffle-terasort", names, "/out/shuf/ts", 2)
				return spec, "/out/shuf/ts", err
			},
		},
	}
}

// RunShuffleCase executes one workload under one shuffle-service
// configuration on the stock distributed engine (the mode whose shuffle the
// service replaces) and reads the fetch/byte counters from the run's
// metrics registry.
func RunShuffleCase(setup ClusterSetup, c shuffleCase, cfg shuffleConfig, o Options) (*ShuffleRun, error) {
	o = o.normalized()
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup.Params.ShuffleService = cfg.Enabled
	setup.Params.ShuffleCodec = cfg.Codec
	setup.HostWorkers = o.HostWorkers
	setup.NodeFaults = o.NodeFaults
	v := VariantHadoop()
	env, err := NewEnv(setup, v)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.EnableObservability(1 << 16)
	spec, output, err := c.Gen(env, o)
	if err != nil {
		return nil, err
	}
	res, err := env.Run(v, spec)
	if err != nil {
		return nil, err
	}
	run := &ShuffleRun{Seconds: res.Elapsed(), outputs: map[string][]byte{}}
	for name, n := range env.Reg.Counters() {
		if strings.HasPrefix(name, "mapreduce_shuffle_fetch_total{") {
			run.Fetches += n
		}
	}
	for name, h := range env.Reg.Histograms() {
		if !strings.HasPrefix(name, "mapreduce_shuffle_bytes{") || h == nil {
			continue
		}
		run.TotalMB += h.Sum / mb
		if name == metrics.With("mapreduce_shuffle_bytes", "transport", "network") {
			run.NetworkMB += h.Sum / mb
		}
	}
	for p := 0; p < c.Reduces; p++ {
		part := mapreduce.PartFileName(output, p)
		data, err := env.DFS.Contents(part)
		if err != nil {
			return nil, fmt.Errorf("bench: reading %s: %w", part, err)
		}
		run.outputs[part] = data
	}
	return run, nil
}

// Shuffle is the registered shuffle-service experiment: each workload runs
// under the per-map baseline ("off"), the consolidating service ("svc"), and
// the service with lz wire compression ("svc+lz") on the stock distributed
// engine. Besides the measurements, the experiment enforces the service's
// two contracts: every workload's final output is byte-identical across all
// three configurations, and consolidated fetch counts never exceed
// nodes × reduces.
func Shuffle(o Options) (*Figure, error) {
	o = o.normalized()
	setup := A3x4()
	fig := &Figure{
		ID:      "shuffle",
		Title:   "Shuffle service: per-map vs consolidated fetches (A3×4, distributed engine)",
		XLabel:  "workload / service",
		Columns: []string{"fetches", "net-MB", "shuffle-MB", "seconds"},
		Notes: []string{
			"outputs verified byte-identical across off/svc/svc+lz for every workload",
		},
	}
	for _, c := range shuffleCases() {
		var base *ShuffleRun
		for _, cfg := range shuffleConfigs() {
			r, err := RunShuffleCase(setup, c, cfg, o)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.Name, cfg.Name, err)
			}
			if base == nil {
				base = r
			} else {
				for part, want := range base.outputs {
					if !bytes.Equal(want, r.outputs[part]) {
						return nil, fmt.Errorf("%s/%s: output %s differs from the per-map baseline", c.Name, cfg.Name, part)
					}
				}
				if maxFetches := int64(setup.Workers * c.Reduces); r.Fetches > maxFetches {
					return nil, fmt.Errorf("%s/%s: %d consolidated fetches, want ≤ nodes×reduces = %d", c.Name, cfg.Name, r.Fetches, maxFetches)
				}
			}
			fig.Points = append(fig.Points, Point{
				X: float64(len(fig.Points)), Label: c.Name + "/" + cfg.Name,
				Seconds: map[string]float64{
					"fetches": float64(r.Fetches), "net-MB": r.NetworkMB,
					"shuffle-MB": r.TotalMB, "seconds": r.Seconds,
				},
			})
		}
	}
	return fig, nil
}
