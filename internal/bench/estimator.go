package bench

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/profiler"
	"mrapid/internal/workloads"
)

// EstimatorAccuracy is a supplementary experiment (not a paper figure, but
// the mechanism §III-C rests on): across the Figure 7 sweep, compare the
// decision maker's Equation 2/3 estimates with the measured D+ and U+
// completion times and check that the *decision* — which mode to kill —
// matches the mode that actually wins. The estimates deliberately omit the
// terms shared by both modes (AM setup, the reduce phase), so their
// absolute values sit below the measured times; only their ordering is
// load-bearing.
func EstimatorAccuracy(o Options) (*Figure, error) {
	o = o.normalized()
	fig := &Figure{
		ID:     "estimator",
		Title:  "Decision-maker estimates vs measured mode times (WordCount, A3×4)",
		XLabel: "files",
		Columns: []string{
			"dplus-measured", "uplus-measured", "dplus-estimate", "uplus-estimate",
		},
	}
	correct, total := 0, 0
	for _, files := range []int{1, 2, 4, 8, 16} {
		var measured = map[core.ModeKind]float64{}
		var sample *profiler.Summary
		for _, v := range []Variant{VariantDPlus(), VariantUPlus()} {
			setup := A3x4()
			setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
			setup = o.applyTo(setup)
			env, err := NewEnv(setup, v)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/wc", workloads.WordCountConfig{
				Files: files, FileBytes: o.bytes(10 * mb), Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			spec := workloads.WordCountSpec(fmt.Sprintf("est-%d", files), names, "/out", false)
			res, err := env.Run(v, spec)
			if err != nil {
				return nil, err
			}
			measured[core.ModeKind(v.Name)] = res.Elapsed()
			if v.Name == "dplus" {
				s := res.Profile.Summarize()
				sample = &s
			}
		}

		// Build the estimator inputs the way the decision maker does, from
		// the profiled summary plus the cluster structure.
		setup := A3x4()
		in := core.InputsFromProfile(*sample, files*1, /* one split per file */
			setup.Workers*setup.Instance.MaxContainers(),
			setup.Instance.Cores, setup.Instance, setup.Params)
		estD := core.EstimateDPlus(in).Seconds()
		estU := core.EstimateUPlus(in).Seconds()

		p := Point{X: float64(files), Label: fmt.Sprintf("%d", files), Seconds: map[string]float64{
			"dplus-measured": measured[core.ModeDPlus],
			"uplus-measured": measured[core.ModeUPlus],
			"dplus-estimate": estD,
			"uplus-estimate": estU,
		}}
		fig.Points = append(fig.Points, p)

		total++
		predicted := core.Decide(in)
		actual := core.ModeUPlus
		if measured[core.ModeDPlus] < measured[core.ModeUPlus] {
			actual = core.ModeDPlus
		}
		if predicted == actual {
			correct++
		} else {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"%d files: estimator picked %s, %s was faster (measured %.2fs vs %.2fs)",
				files, predicted, actual, measured[core.ModeDPlus], measured[core.ModeUPlus]))
		}
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("decision matched the measured winner at %d/%d sweep points", correct, total))
	fig.Notes = append(fig.Notes,
		"Equation 2 omits U+ cache-overflow spills (the paper's model has the same blind spot), so mispredictions cluster at the largest inputs")
	return fig, nil
}
