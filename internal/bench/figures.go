package bench

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
	"mrapid/internal/workloads"
	"mrapid/internal/yarn"
)

// Options control a reproduction run.
type Options struct {
	// Scale multiplies every input size (file bytes, TeraSort rows, PI
	// samples) and the U+ cache budget. 1.0 reproduces the paper's sizes;
	// tests use smaller scales for speed. Scale preserves all I/O-vs-I/O
	// shape relationships; fixed overheads (launches, heartbeats) do not
	// shrink, so small scales exaggerate MRapid's relative advantage — the
	// recorded EXPERIMENTS.md numbers use Scale = 1.
	Scale float64
	// Seed drives input synthesis and replica placement.
	Seed int64
	// HostWorkers enables parallel host-side execution of the pure
	// map/reduce computations (see ClusterSetup.HostWorkers). Purely a
	// wall-clock optimization; every figure's numbers are identical.
	HostWorkers int
	// NodeFaults scripts machine crashes into every simulation of the run
	// (crash times measured from cluster-ready). The fault-tolerance
	// machinery re-executes lost work, so figures still complete — slower,
	// which is the point of running them this way.
	NodeFaults []mapreduce.NodeFault
	// ShuffleService attaches the per-node consolidating shuffle service
	// (internal/shuffle) to every simulation of the run, shipping map output
	// through ShuffleCodec ("none" or "lz") on the wire. Off by default —
	// the per-map shuffle is the paper's baseline. The dedicated "shuffle"
	// experiment ignores these and sweeps its own configurations.
	ShuffleService bool
	ShuffleCodec   string

	// MemoCache attaches the cross-job memoization cache (internal/memo) to
	// every framework-backed simulation of the run: repeat submissions of an
	// identical job over unchanged inputs are served from the cache without
	// launching an AM or a container. Off by default — first-sight workloads
	// are the paper's baseline. Outputs are byte-identical with it on or off.
	MemoCache bool

	// FlightRecorder turns on the flight recorder (internal/flight) for
	// workload runs: virtual-clock time-series, per-tenant SLO burn rates,
	// and the engine self-profile. Sampling is read-only on the virtual
	// clock, so results are byte-identical with it on or off.
	FlightRecorder bool
	// SeriesOut/DashOut/EngineBenchOut, when non-empty, make the recording
	// experiments write the Prometheus series dump, the HTML dashboard,
	// and the engine self-profile JSON to these paths.
	SeriesOut      string
	DashOut        string
	EngineBenchOut string
}

// applyTo copies the run-wide Options knobs onto one simulation's setup.
func (o Options) applyTo(setup ClusterSetup) ClusterSetup {
	setup.HostWorkers = o.HostWorkers
	setup.NodeFaults = o.NodeFaults
	if o.ShuffleService {
		setup.Params.ShuffleService = true
		setup.Params.ShuffleCodec = o.ShuffleCodec
	}
	if o.FlightRecorder {
		setup.Params.FlightRecorder = true
	}
	if o.MemoCache {
		setup.Params.MemoCache = true
	}
	return setup
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) bytes(n float64) int64 {
	return int64(n * o.Scale)
}

// Point is one x-position of a figure with one measured value per column.
type Point struct {
	X       float64
	Label   string
	Seconds map[string]float64
}

// Figure is a reproduced table/figure: completion times per column over a
// sweep.
type Figure struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Points  []Point
	Notes   []string
}

// Get returns the measured seconds for a column at a point index.
func (f *Figure) Get(i int, column string) float64 {
	return f.Points[i].Seconds[column]
}

// Improvement returns the percentage improvement of column b over column a
// at point i: (a-b)/a × 100.
func (f *Figure) Improvement(i int, a, b string) float64 {
	base := f.Get(i, a)
	if base == 0 {
		return 0
	}
	return (base - f.Get(i, b)) / base * 100
}

const mb = float64(1 << 20)

// runWordCount executes one WordCount configuration under one variant on a
// fresh simulation and returns the completion time in seconds.
func runWordCount(setup ClusterSetup, v Variant, files int, fileBytes int64, o Options) (float64, error) {
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)
	env, err := NewEnv(setup, v)
	if err != nil {
		return 0, err
	}
	defer env.Close()
	names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/wc", workloads.WordCountConfig{
		Files: files, FileBytes: fileBytes, Seed: o.Seed,
	})
	if err != nil {
		return 0, err
	}
	spec := workloads.WordCountSpec(fmt.Sprintf("wordcount-%dx%dMB", files, fileBytes/(1<<20)), names, "/out/wc", false)
	res, err := env.Run(v, spec)
	if err != nil {
		return 0, err
	}
	return res.Elapsed(), nil
}

// runTeraSort executes one TeraSort configuration.
func runTeraSort(setup ClusterSetup, v Variant, rows int64, files int, o Options) (float64, error) {
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)
	env, err := NewEnv(setup, v)
	if err != nil {
		return 0, err
	}
	defer env.Close()
	names, err := workloads.TeraGen(env.DFS, env.Cluster, "/in/ts", workloads.TeraGenConfig{
		Rows: rows, Files: files, Seed: o.Seed,
	})
	if err != nil {
		return 0, err
	}
	spec, err := workloads.TeraSortSpec(env.DFS, fmt.Sprintf("terasort-%dk", rows/1000), names, "/out/ts", 1)
	if err != nil {
		return 0, err
	}
	res, err := env.Run(v, spec)
	if err != nil {
		return 0, err
	}
	if err := workloads.VerifyTeraSortOutput(env.DFS, "/out/ts", 1, rows); err != nil {
		return 0, fmt.Errorf("bench: terasort output invalid: %w", err)
	}
	return res.Elapsed(), nil
}

// runPi executes one PI configuration.
func runPi(setup ClusterSetup, v Variant, maps int, samples int64, o Options) (float64, error) {
	setup = o.applyTo(setup)
	env, err := NewEnv(setup, v)
	if err != nil {
		return 0, err
	}
	defer env.Close()
	names, err := workloads.GeneratePiInput(env.DFS, env.Cluster, "/in/pi", workloads.PiConfig{
		Maps: maps, Samples: samples / int64(maps),
	})
	if err != nil {
		return 0, err
	}
	spec := workloads.PiSpec(env.DFS, fmt.Sprintf("pi-%dm", samples/1_000_000), names, "/out/pi")
	res, err := env.Run(v, spec)
	if err != nil {
		return 0, err
	}
	return res.Elapsed(), nil
}

// sweep runs every variant at every x-position through run().
func sweep(xs []float64, labels []string, variants []Variant,
	run func(x float64, v Variant) (float64, error)) ([]Point, error) {
	points := make([]Point, 0, len(xs))
	for i, x := range xs {
		p := Point{X: x, Label: labels[i], Seconds: make(map[string]float64, len(variants))}
		for _, v := range variants {
			secs, err := run(x, v)
			if err != nil {
				return nil, fmt.Errorf("%s at %s: %w", v.Name, labels[i], err)
			}
			p.Seconds[v.Name] = secs
		}
		points = append(points, p)
	}
	return points, nil
}

func columnNames(vs []Variant) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// Fig7 — WordCount on the A3 cluster, file size fixed at 10 MB, file count
// varying 1..16.
func Fig7(o Options) (*Figure, error) {
	o = o.normalized()
	xs := []float64{1, 2, 4, 8, 16}
	labels := []string{"1", "2", "4", "8", "16"}
	vs := StandardVariants()
	points, err := sweep(xs, labels, vs, func(x float64, v Variant) (float64, error) {
		return runWordCount(A3x4(), v, int(x), o.bytes(10*mb), o)
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig7", Title: "WordCount, A3×4, 10 MB files, varying file count",
		XLabel: "files", Columns: columnNames(vs), Points: points,
	}, nil
}

// Fig8 — WordCount with 4 files, file size varying 5..40 MB.
func Fig8(o Options) (*Figure, error) {
	o = o.normalized()
	xs := []float64{5, 10, 20, 40}
	labels := []string{"5MB", "10MB", "20MB", "40MB"}
	vs := StandardVariants()
	points, err := sweep(xs, labels, vs, func(x float64, v Variant) (float64, error) {
		return runWordCount(A3x4(), v, 4, o.bytes(x*mb), o)
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig8", Title: "WordCount, A3×4, 4 files, varying file size",
		XLabel: "file size", Columns: columnNames(vs), Points: points,
	}, nil
}

// Fig9 — WordCount with the total input fixed at 60 MB, split over 2..4
// files.
func Fig9(o Options) (*Figure, error) {
	o = o.normalized()
	xs := []float64{2, 3, 4}
	labels := []string{"2x30MB", "3x20MB", "4x15MB"}
	vs := StandardVariants()
	points, err := sweep(xs, labels, vs, func(x float64, v Variant) (float64, error) {
		return runWordCount(A3x4(), v, int(x), o.bytes(60*mb/x), o)
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig9", Title: "WordCount, A3×4, total input 60 MB, varying split",
		XLabel: "files", Columns: columnNames(vs), Points: points,
	}, nil
}

// Fig10 — TeraSort with 4 input blocks, rows varying 100k..1600k.
func Fig10(o Options) (*Figure, error) {
	o = o.normalized()
	xs := []float64{100, 200, 400, 800, 1600}
	labels := []string{"100k", "200k", "400k", "800k", "1600k"}
	vs := StandardVariants()
	points, err := sweep(xs, labels, vs, func(x float64, v Variant) (float64, error) {
		rows := int64(x * 1000 * o.Scale)
		if rows < 4 {
			rows = 4
		}
		return runTeraSort(A3x4(), v, rows, 4, o)
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig10", Title: "TeraSort, A3×4, 4 blocks, varying row count",
		XLabel: "rows (k)", Columns: columnNames(vs), Points: points,
	}, nil
}

// Fig11 — PI with 4 maps, total samples varying 100m..1600m.
func Fig11(o Options) (*Figure, error) {
	o = o.normalized()
	xs := []float64{100, 200, 400, 800, 1600}
	labels := []string{"100m", "200m", "400m", "800m", "1600m"}
	vs := StandardVariants()
	points, err := sweep(xs, labels, vs, func(x float64, v Variant) (float64, error) {
		samples := int64(x * 1e6 * o.Scale)
		if samples < 4 {
			samples = 4
		}
		return runPi(A3x4(), v, 4, samples, o)
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig11", Title: "PI, A3×4, 4 maps, varying sample count",
		XLabel: "samples (m)", Columns: columnNames(vs), Points: points,
	}, nil
}

// Fig12 — WordCount (4×10 MB) on the A2 cluster with 1 vs 2 containers per
// core, achieved as the paper's era did through container memory sizing.
func Fig12(o Options) (*Figure, error) {
	o = o.normalized()
	vs := StandardVariants()
	mkSetup := func(cpc int) ClusterSetup {
		setup := A2x9()
		it := setup.Instance
		switch cpc {
		case 1:
			it.ContainerMB = 1792 // 2 containers on 3.5 GB = 1 per core
			it.VCores = 2
		case 2:
			it.ContainerMB = 896 // 4 containers = 2 per core
			it.VCores = 4
		}
		setup.Instance = it
		return setup
	}
	xs := []float64{1, 2}
	labels := []string{"1/core", "2/core"}
	points, err := sweep(xs, labels, vs, func(x float64, v Variant) (float64, error) {
		return runWordCount(mkSetup(int(x)), v, 4, o.bytes(10*mb), o)
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig12", Title: "WordCount, A2×9, 4×10 MB, varying containers per core",
		XLabel: "containers/core", Columns: columnNames(vs), Points: points,
	}, nil
}

// Fig13 — WordCount across two equal-cost clusters: 10-node A2 (9 workers)
// vs 5-node A3 (4 workers), varying file count. Columns are mode@cluster.
func Fig13(o Options) (*Figure, error) {
	o = o.normalized()
	xs := []float64{1, 2, 4, 8, 16}
	labels := []string{"1", "2", "4", "8", "16"}
	type combo struct {
		name  string
		setup ClusterSetup
		v     Variant
	}
	var combos []combo
	for _, v := range []Variant{VariantDPlus(), VariantUPlus()} {
		v := v
		a2, a3 := v, v
		a2.Name = v.Name + "@A2x10"
		a3.Name = v.Name + "@A3x5"
		combos = append(combos,
			combo{a2.Name, A2x9(), a2},
			combo{a3.Name, A3x4(), a3},
		)
	}
	var columns []string
	for _, c := range combos {
		columns = append(columns, c.name)
	}
	points := make([]Point, 0, len(xs))
	for i, x := range xs {
		p := Point{X: x, Label: labels[i], Seconds: map[string]float64{}}
		for _, c := range combos {
			secs, err := runWordCount(c.setup, c.v, int(x), o.bytes(10*mb), o)
			if err != nil {
				return nil, fmt.Errorf("%s at %s: %w", c.name, labels[i], err)
			}
			p.Seconds[c.name] = secs
		}
		points = append(points, p)
	}
	return &Figure{
		ID: "fig13", Title: "WordCount on equal-cost clusters (10×A2 vs 5×A3), 10 MB files",
		XLabel: "files", Columns: columns, Points: points,
		Notes: []string{"clusters cost the same per hour (Table II): 10×$0.18 = 5×$0.36"},
	}, nil
}

// dplusStack is the cumulative optimization stack of Figure 14: each step
// adds one D+ optimization on top of the previous ones.
func dplusStack() []Variant {
	stock := func() yarn.Scheduler { return yarn.NewStockScheduler() }
	spread := func() yarn.Scheduler {
		return core.NewDPlusScheduler(core.DPlusOptions{BalancedSpread: true})
	}
	spreadLocal := func() yarn.Scheduler {
		return core.NewDPlusScheduler(core.DPlusOptions{BalancedSpread: true, LocalityAware: true})
	}
	full := func() yarn.Scheduler { return core.NewDPlusScheduler(core.FullDPlus()) }
	// The submission framework (+ampool) includes the proxy's direct-RPC
	// completion notification — that is how the real framework works — so
	// the later sub-second steps are not quantized by the stock client's
	// 1 s status poll. "+comms" isolates the same-heartbeat scheduler
	// response, the D+ communication reduction of §III-A.
	return []Variant{
		{Name: "hadoop", NewScheduler: stock, Mode: core.ModeHadoop},
		{Name: "+scheduler", NewScheduler: spread, Mode: core.ModeHadoop},
		{Name: "+ampool", NewScheduler: spread, Mode: core.ModeDPlus, UseFramework: true, PoolSize: 3},
		{Name: "+locality", NewScheduler: spreadLocal, Mode: core.ModeDPlus, UseFramework: true, PoolSize: 3},
		{Name: "+comms", NewScheduler: full, Mode: core.ModeDPlus, UseFramework: true, PoolSize: 3},
	}
}

// uplusStack is the cumulative optimization stack of Figure 15.
func uplusStack() []Variant {
	stock := func() yarn.Scheduler { return yarn.NewStockScheduler() }
	parallelOnly := core.UPlusOptions{ThreadsPerCore: 1, MemoryCache: false}
	return []Variant{
		{Name: "uber", NewScheduler: stock, Mode: core.ModeUber},
		{Name: "+parallel", NewScheduler: stock, Mode: core.ModeUPlus, UOpts: parallelOnly},
		{Name: "+ampool", NewScheduler: stock, Mode: core.ModeUPlus, UOpts: parallelOnly, UseFramework: true, PoolSize: 3, NotifyPoll: true},
		{Name: "+memcache", NewScheduler: stock, Mode: core.ModeUPlus, UOpts: core.FullUPlus(), UseFramework: true, PoolSize: 3, NotifyPoll: true},
		{Name: "+comms", NewScheduler: stock, Mode: core.ModeUPlus, UOpts: core.FullUPlus(), UseFramework: true, PoolSize: 3, NotifyPoll: false},
	}
}

// runStack measures a cumulative ablation stack on the Figure 14/15
// workload (WordCount, eight 10 MB files, 5-node cluster) and reports each
// step's marginal contribution to the total improvement.
func runStack(stack []Variant, id, title string, o Options) (*Figure, error) {
	o = o.normalized()
	points := make([]Point, 0, len(stack))
	for i, v := range stack {
		secs, err := runWordCount(A3x4(), v, 8, o.bytes(10*mb), o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		points = append(points, Point{X: float64(i), Label: v.Name, Seconds: map[string]float64{"elapsed": secs}})
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "optimization stack", Columns: []string{"elapsed"}, Points: points,
	}
	fig.Notes = contributions(points)
	return fig, nil
}

// contributions formats each step's share of the total improvement.
func contributions(points []Point) []string {
	if len(points) < 2 {
		return nil
	}
	base := points[0].Seconds["elapsed"]
	final := points[len(points)-1].Seconds["elapsed"]
	total := base - final
	if total <= 0 {
		return []string{"no net improvement"}
	}
	var notes []string
	prev := base
	for _, p := range points[1:] {
		cur := p.Seconds["elapsed"]
		notes = append(notes, fmt.Sprintf("%s: %.0f%% of total improvement (%.2fs → %.2fs)",
			p.Label, (prev-cur)/total*100, prev, cur))
		prev = cur
	}
	return notes
}

// Fig14 — contribution of each D+ optimization.
func Fig14(o Options) (*Figure, error) {
	return runStack(dplusStack(), "fig14", "D+ optimization contributions (WordCount, 8×10 MB, 5 nodes)", o)
}

// Fig15 — contribution of each U+ optimization.
func Fig15(o Options) (*Figure, error) {
	return runStack(uplusStack(), "fig15", "U+ optimization contributions (WordCount, 8×10 MB, 5 nodes)", o)
}

// TableII renders the instance catalog as a figure-shaped table for uniform
// reporting.
func TableII(Options) (*Figure, error) {
	fig := &Figure{
		ID: "table2", Title: "Microsoft Azure instance types (Table II)",
		XLabel:  "instance",
		Columns: []string{"cores", "memoryGB", "diskGB", "price$/hr"},
	}
	for i, it := range topology.InstanceCatalog {
		fig.Points = append(fig.Points, Point{
			X: float64(i), Label: it.Name,
			Seconds: map[string]float64{
				"cores":     float64(it.Cores),
				"memoryGB":  float64(it.MemoryMB) / 1024,
				"diskGB":    float64(it.DiskGB),
				"price$/hr": it.PricePerHour,
			},
		})
	}
	return fig, nil
}

// Runner regenerates one experiment.
type Runner func(Options) (*Figure, error)

// Registry maps every reproduced table/figure to its runner, in paper
// order.
var Registry = []struct {
	ID    string
	Run   Runner
	Short string
}{
	{"table2", TableII, "Azure instance catalog"},
	{"fig7", Fig7, "WordCount vs file count"},
	{"fig8", Fig8, "WordCount vs file size"},
	{"fig9", Fig9, "WordCount, fixed 60 MB total"},
	{"fig10", Fig10, "TeraSort vs rows"},
	{"fig11", Fig11, "PI vs samples"},
	{"fig12", Fig12, "containers per core"},
	{"fig13", Fig13, "equal-cost cluster shapes"},
	{"fig14", Fig14, "D+ ablation"},
	{"fig15", Fig15, "U+ ablation"},
	{"estimator", EstimatorAccuracy, "Eq. 2/3 estimates vs measured (supplementary)"},
	{"phases", PhaseBreakdown, "phase attribution per mode (observability)"},
	{"throughput", Throughput, "multi-tenant JobServer throughput & fairness"},
	{"shuffle", Shuffle, "shuffle service: consolidated fetches, combine & compression"},
	{"warm", Warm, "calibrating estimator: warm workloads skip the 2× dual-launch"},
	{"dagquery", DAGQuery, "query DAG scheduler: parallel branches vs sequential chains"},
	{"memo", Memo, "cross-job memoization: digest-keyed result reuse skips execution"},
	{"engine", EngineStorm, "discrete-event engine self-benchmark (events/sec, allocs/event)"},
}

// Lookup finds a registered experiment by ID.
func Lookup(id string) (Runner, bool) {
	for _, r := range Registry {
		if r.ID == id {
			return r.Run, true
		}
	}
	return nil, false
}
