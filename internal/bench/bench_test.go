package bench

import (
	"fmt"
	"strings"
	"testing"
)

// testOpts shrinks the inputs ~8× so the full pipeline still runs (same
// code paths, same mechanisms) at unit-test speed. Assertions below only
// check scale-robust properties: MRapid modes beating their stock
// counterparts, monotone ablation stacks, and structural integrity.
func testOpts() Options { return Options{Scale: 0.125, Seed: 1} }

func requireColumns(t *testing.T, f *Figure, cols ...string) {
	t.Helper()
	for _, c := range cols {
		found := false
		for _, have := range f.Columns {
			if have == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing column %q (have %v)", f.ID, c, f.Columns)
		}
	}
	for i, p := range f.Points {
		for _, c := range f.Columns {
			v, ok := p.Seconds[c]
			if !ok || v <= 0 {
				t.Fatalf("%s point %d column %q = %v", f.ID, i, c, v)
			}
		}
	}
}

func TestTableII(t *testing.T) {
	fig, err := TableII(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 3 {
		t.Fatalf("rows = %d", len(fig.Points))
	}
	if fig.Points[2].Label != "A3" || fig.Points[2].Seconds["cores"] != 4 {
		t.Fatalf("A3 row wrong: %+v", fig.Points[2])
	}
}

func TestFig7Shapes(t *testing.T) {
	fig, err := Fig7(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "hadoop", "uber", "dplus", "uplus")
	if len(fig.Points) != 5 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	for i, p := range fig.Points {
		if fig.Improvement(i, "hadoop", "dplus") <= 0 {
			t.Errorf("at %s files D+ (%.2fs) not faster than hadoop (%.2fs)",
				p.Label, fig.Get(i, "dplus"), fig.Get(i, "hadoop"))
		}
		if fig.Improvement(i, "uber", "uplus") <= 0 {
			t.Errorf("at %s files U+ (%.2fs) not faster than uber (%.2fs)",
				p.Label, fig.Get(i, "uplus"), fig.Get(i, "uber"))
		}
	}
	// Times grow with input size in every mode.
	for _, c := range fig.Columns {
		if fig.Get(4, c) <= fig.Get(0, c) {
			t.Errorf("%s did not grow from 1 to 16 files (%.2f → %.2f)",
				c, fig.Get(0, c), fig.Get(4, c))
		}
	}
	// Stock uber degrades fastest with file count: its sequential execution
	// adds the full per-map cost 16 times, while U+ overlaps maps and D+
	// spreads them. Compare absolute growth from 1 to 16 files.
	uberGrowth := fig.Get(4, "uber") - fig.Get(0, "uber")
	uplusGrowth := fig.Get(4, "uplus") - fig.Get(0, "uplus")
	if uberGrowth <= uplusGrowth {
		t.Errorf("uber grew %.2fs over the sweep, U+ %.2fs — sequential uber should degrade faster",
			uberGrowth, uplusGrowth)
	}
}

func TestFig8Shapes(t *testing.T) {
	fig, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "hadoop", "uber", "dplus", "uplus")
	// D+'s absolute gain over stock Hadoop grows with file size (the
	// paper's "D+ gains more on larger file size").
	firstGain := fig.Get(0, "hadoop") - fig.Get(0, "dplus")
	lastGain := fig.Get(len(fig.Points)-1, "hadoop") - fig.Get(len(fig.Points)-1, "dplus")
	if lastGain <= firstGain*0.8 {
		t.Errorf("D+ gain shrank with file size: %.2fs → %.2fs", firstGain, lastGain)
	}
}

func TestFig9Shapes(t *testing.T) {
	fig, err := Fig9(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "hadoop", "uber", "dplus", "uplus")
	// With total input fixed, more files (more parallelism) never hurts
	// the parallel modes: 4 splits beat 2 splits for D+ and U+.
	for _, c := range []string{"dplus", "uplus"} {
		if fig.Get(2, c) > fig.Get(0, c)*1.05 {
			t.Errorf("%s slower with more parallelism: 2 files %.2fs, 4 files %.2fs",
				c, fig.Get(0, c), fig.Get(2, c))
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	fig, err := Fig10(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "hadoop", "uber", "dplus", "uplus")
	// TeraSort: U+ beats D+ throughout (the paper's "U+ is always better
	// than the D+ mode" for this I/O-light, shuffle-heavy job).
	for i, p := range fig.Points {
		if fig.Get(i, "uplus") >= fig.Get(i, "dplus") {
			t.Errorf("at %s rows U+ (%.2fs) not faster than D+ (%.2fs)",
				p.Label, fig.Get(i, "uplus"), fig.Get(i, "dplus"))
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	fig, err := Fig11(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "hadoop", "uber", "dplus", "uplus")
	n := len(fig.Points)
	// PI: at small sample counts stock-uber beats stock-distributed (no
	// launch overhead); at large counts stock-distributed wins (parallel
	// compute) — the paper's crossover.
	if fig.Get(0, "uber") >= fig.Get(0, "hadoop") {
		t.Errorf("small PI: uber (%.2fs) should beat hadoop (%.2fs)",
			fig.Get(0, "uber"), fig.Get(0, "hadoop"))
	}
	if fig.Get(n-1, "hadoop") >= fig.Get(n-1, "uber") {
		t.Errorf("large PI: hadoop (%.2fs) should beat sequential uber (%.2fs)",
			fig.Get(n-1, "hadoop"), fig.Get(n-1, "uber"))
	}
	// U+ stays the best MRapid mode across the sweep (4 maps fit one wave).
	for i, p := range fig.Points {
		if fig.Get(i, "uplus") > fig.Get(i, "dplus") {
			t.Errorf("at %s U+ (%.2fs) worse than D+ (%.2fs)",
				p.Label, fig.Get(i, "uplus"), fig.Get(i, "dplus"))
		}
	}
}

func TestFig12Shapes(t *testing.T) {
	fig, err := Fig12(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "hadoop", "uber", "dplus", "uplus")
	// Stock Hadoop degrades (or at worst stays flat, below the 1 s client
	// poll quantum at small test scales) when two containers share a core;
	// MRapid's modes never fluctuate more than it does — U+ uses a single
	// container and D+ picks idle nodes. The full-scale degradation is
	// recorded in EXPERIMENTS.md.
	hadoopDelta := fig.Get(1, "hadoop") - fig.Get(0, "hadoop")
	uplusDelta := fig.Get(1, "uplus") - fig.Get(0, "uplus")
	if hadoopDelta < 0 {
		t.Errorf("hadoop improved at 2 containers/core: %.2fs → %.2fs",
			fig.Get(0, "hadoop"), fig.Get(1, "hadoop"))
	}
	if uplusDelta > hadoopDelta {
		t.Errorf("U+ fluctuated more than stock hadoop (%.2fs vs %.2fs)", uplusDelta, hadoopDelta)
	}
}

func TestFig13Shapes(t *testing.T) {
	fig, err := Fig13(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "dplus@A2x10", "dplus@A3x5", "uplus@A2x10", "uplus@A3x5")
	// U+ always prefers the fatter A3 nodes (more cores, faster disk).
	for i, p := range fig.Points {
		if fig.Get(i, "uplus@A3x5") >= fig.Get(i, "uplus@A2x10") {
			t.Errorf("at %s files U+ on A3 (%.2fs) not faster than on A2 (%.2fs)",
				p.Label, fig.Get(i, "uplus@A3x5"), fig.Get(i, "uplus@A2x10"))
		}
	}
	// D+ prefers A3 when the job is small.
	if fig.Get(0, "dplus@A3x5") >= fig.Get(0, "dplus@A2x10") {
		t.Errorf("1 file: D+ on A3 (%.2fs) not faster than on A2 (%.2fs)",
			fig.Get(0, "dplus@A3x5"), fig.Get(0, "dplus@A2x10"))
	}
}

func TestFig14StackMonotone(t *testing.T) {
	fig, err := Fig14(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("stack steps = %d", len(fig.Points))
	}
	for i := 1; i < len(fig.Points); i++ {
		prev := fig.Points[i-1].Seconds["elapsed"]
		cur := fig.Points[i].Seconds["elapsed"]
		if cur > prev*1.02 { // each optimization must not hurt
			t.Errorf("step %s regressed: %.2fs → %.2fs", fig.Points[i].Label, prev, cur)
		}
	}
	base := fig.Points[0].Seconds["elapsed"]
	final := fig.Points[len(fig.Points)-1].Seconds["elapsed"]
	if final >= base {
		t.Fatalf("full D+ stack (%.2fs) not faster than stock (%.2fs)", final, base)
	}
	if len(fig.Notes) == 0 {
		t.Fatal("no contribution notes")
	}
}

func TestFig15StackMonotone(t *testing.T) {
	fig, err := Fig15(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("stack steps = %d", len(fig.Points))
	}
	for i := 1; i < len(fig.Points); i++ {
		prev := fig.Points[i-1].Seconds["elapsed"]
		cur := fig.Points[i].Seconds["elapsed"]
		if cur > prev*1.02 {
			t.Errorf("step %s regressed: %.2fs → %.2fs", fig.Points[i].Label, prev, cur)
		}
	}
	// Parallelism is the dominant U+ contribution (the paper's 64%).
	base := fig.Points[0].Seconds["elapsed"]
	afterParallel := fig.Points[1].Seconds["elapsed"]
	final := fig.Points[len(fig.Points)-1].Seconds["elapsed"]
	total := base - final
	if total <= 0 {
		t.Fatalf("no net improvement: %.2fs → %.2fs", base, final)
	}
	// At the paper's scale parallelism contributes ~64%; at the shrunken
	// test scale the per-map compute shrinks while the fixed AM costs do
	// not, so only require a substantial share here. The full-scale split
	// is recorded in EXPERIMENTS.md.
	if (base-afterParallel)/total < 0.15 {
		t.Errorf("parallelism contributed only %.0f%%, expected a substantial share",
			(base-afterParallel)/total*100)
	}
}

func TestEstimatorExperiment(t *testing.T) {
	fig, err := EstimatorAccuracy(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireColumns(t, fig, "dplus-measured", "uplus-measured", "dplus-estimate", "uplus-estimate")
	if len(fig.Points) != 5 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// The decision maker must be right most of the time; it is allowed to
	// miss near crossovers (Eq. 2 ignores cache-overflow spills).
	var correct int
	for _, n := range fig.Notes {
		if _, err := fmt.Sscanf(n, "decision matched the measured winner at %d/5", &correct); err == nil {
			break
		}
	}
	if correct < 3 {
		t.Fatalf("estimator matched only %d/5 decisions", correct)
	}
	// Estimates scale with the sweep: U+'s estimate grows once waves exceed
	// one (8→16 files doubles the waves).
	if fig.Get(4, "uplus-estimate") <= fig.Get(0, "uplus-estimate") {
		t.Error("U+ estimate did not grow across the sweep")
	}
}

func TestRegistryAndLookup(t *testing.T) {
	want := []string{"table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "estimator", "phases", "throughput", "shuffle", "warm", "dagquery", "memo", "engine"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries", len(Registry))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, Registry[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown ID succeeded")
	}
}

func TestRenderTable(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "demo", XLabel: "x",
		Columns: []string{"hadoop", "uber", "dplus", "uplus"},
		Points: []Point{
			{X: 1, Label: "1", Seconds: map[string]float64{"hadoop": 10, "uber": 8, "dplus": 6, "uplus": 4}},
		},
		Notes: []string{"a note"},
	}
	var b strings.Builder
	if err := Render(&b, fig); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"FIGX", "hadoop", "10.00", "improvements:", "40.0%", "60.0%", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestEnvRejectsBadSetup(t *testing.T) {
	setup := A3x4()
	setup.Workers = 0
	if _, err := NewEnv(setup, VariantHadoop()); err == nil {
		t.Fatal("zero-worker setup accepted")
	}
	setup = A3x4()
	setup.Params.Replication = 0
	if _, err := NewEnv(setup, VariantHadoop()); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestDeterministicFigure(t *testing.T) {
	a, err := Fig9(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for _, c := range a.Columns {
			if a.Points[i].Seconds[c] != b.Points[i].Seconds[c] {
				t.Fatalf("nondeterministic: %s %s %v vs %v", a.Points[i].Label, c,
					a.Points[i].Seconds[c], b.Points[i].Seconds[c])
			}
		}
	}
}
