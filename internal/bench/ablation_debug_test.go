package bench

import (
	"testing"

	"mrapid/internal/core"
	"mrapid/internal/profiler"
	"mrapid/internal/workloads"
	"mrapid/internal/yarn"
)

func TestDebugSchedulerAblation(t *testing.T) {
	run := func(v Variant) *profiler.JobProfile {
		env, err := NewEnv(A3x4(), v)
		if err != nil {
			t.Fatal(err)
		}
		names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/wc", workloads.WordCountConfig{
			Files: 8, FileBytes: 10 << 20, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		spec := workloads.WordCountSpec("abl", names, "/out", false)
		res, err := env.Run(v, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile
	}
	stock := Variant{Name: "hadoop", NewScheduler: func() yarn.Scheduler { return yarn.NewStockScheduler() }, Mode: core.ModeHadoop}
	spread := Variant{Name: "spread", NewScheduler: func() yarn.Scheduler {
		return core.NewDPlusScheduler(core.DPlusOptions{BalancedSpread: true})
	}, Mode: core.ModeHadoop}
	for _, v := range []Variant{stock, spread} {
		p := run(v)
		nodes := map[string]int{}
		var mapSpan float64
		for _, tp := range p.Tasks {
			if tp.Kind == profiler.MapTask {
				nodes[tp.Node]++
			}
		}
		mapSpan = p.MapsDoneAt.Sub(p.FirstTaskAt).Seconds()
		t.Logf("%s: amReady=%v firstTask=%v mapsDone=%v done=%v mapSpan=%.2fs placement=%v",
			v.Name, p.AMReadyAt, p.FirstTaskAt, p.MapsDoneAt, p.DoneAt, mapSpan, nodes)
	}
}
