package bench

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/workloads"
)

// SpeculationOverhead measures the paper's §III-C mechanism directly: the
// same WordCount submitted twice through the framework on one cluster. The
// first submission has no history, so both modes race and the decision
// maker kills the loser; the second is answered from the recorded history
// and runs the winner alone. It returns both completion times in virtual
// seconds — their difference is the speculative execution overhead the
// paper accepts on first runs.
func SpeculationOverhead(o Options) (firstRun, historyRun float64, err error) {
	o = o.normalized()
	v := VariantDPlus()
	v.UOpts = core.FullUPlus()
	setup := A3x4()
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)
	env, err := NewEnv(setup, v)
	if err != nil {
		return 0, 0, err
	}
	defer env.Close()
	inputs, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/spec", workloads.WordCountConfig{
		Files: 4, FileBytes: o.bytes(10 * mb), Seed: o.Seed,
	})
	if err != nil {
		return 0, 0, err
	}

	submit := func(name, out string) (*core.SpecResult, error) {
		spec := workloads.WordCountSpec(name, inputs, out, false)
		var res *core.SpecResult
		env.Eng.After(0, func() {
			env.FW.SubmitSpeculative(spec, func(r *core.SpecResult) { res = r })
		})
		env.Eng.RunUntil(env.Eng.Now().Add(1 << 41))
		if res == nil {
			return nil, fmt.Errorf("bench: speculative job %q hung", name)
		}
		if res.Result.Err != nil {
			return nil, res.Result.Err
		}
		return res, nil
	}

	first, err := submit("spec-first", "/out/first")
	if err != nil {
		return 0, 0, err
	}
	if first.FromHistory {
		return 0, 0, fmt.Errorf("bench: first run unexpectedly had history")
	}
	second, err := submit("spec-second", "/out/second")
	if err != nil {
		return 0, 0, err
	}
	if !second.FromHistory {
		return 0, 0, fmt.Errorf("bench: second run ignored history")
	}
	env.RM.Stop()
	return first.Elapsed(), second.Elapsed(), nil
}
