package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"mrapid/internal/flight"
	"mrapid/internal/metrics"
	"mrapid/internal/report"
)

// DefaultSLO is the objective the workload experiments hold every tenant
// to: p99 queue wait under 10s, with a 10% bad-event budget burned over
// 30s/2m/10m windows. The blocked-FIFO throughput run violates it hard
// for the later tenants, which is exactly what the burn-rate lanes are
// meant to show.
func DefaultSLO() flight.SLOConfig {
	return flight.SLOConfig{
		TargetWait: 10 * time.Second,
		MissBudget: 0.1,
	}
}

// EnableFlightRecorder attaches a flight recorder (and, when slo has a
// target, the per-tenant SLO tracker) with the standard cluster gauges:
// per-node running containers, the scheduler's pending-container backlog,
// shuffle bytes in flight, intermediate-store residency, and AM-pool
// occupancy. Registry counters — including uplus_cache_bytes and every
// *_total rate — ride along automatically. Gauges are read-only probes, so
// the recorder cannot perturb the run. The recorder is created started;
// Env.Run stops it with the job, and other drivers call StopIfRunning.
func (e *Env) EnableFlightRecorder(slo flight.SLOConfig) *flight.Recorder {
	if e.Flight != nil {
		return e.Flight
	}
	e.EnableObservability(1 << 16)
	cfg := flight.ConfigFromParams(e.Params)
	cfg.SLO = slo
	rec := flight.New(e.Eng, e.Reg, e.Trace, cfg)

	rec.AddGauge(func(sample func(string, float64)) {
		byNode := e.RM.ContainersByNode()
		names := make([]string, 0, len(byNode))
		for n := range byNode {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sample(metrics.With("yarn_running_containers", "node", n), float64(byNode[n]))
		}
		sample("yarn_pending_asks", float64(e.RM.PendingAsks()))
		sample("mapreduce_shuffle_bytes_in_flight", float64(e.RT.ShuffleBytesInFlight()))
		if st := e.RT.Intermediates; st != nil {
			sample("intermediate_store_mem_bytes", float64(st.MemBytes))
			sample("intermediate_store_disk_bytes", float64(st.DiskBytes))
		}
		if e.FW != nil && e.FW.Pool != nil {
			sample("ampool_idle", float64(e.FW.Pool.Idle()))
			sample("ampool_alive", float64(e.FW.Pool.AliveAMs()))
			sample("ampool_size", float64(e.FW.Pool.Size()))
		}
		if e.FW != nil && e.FW.Memo != nil {
			s := e.FW.Memo.Snapshot()
			sample("memo_cache_mem_bytes", float64(s.MemBytes))
			sample("memo_cache_disk_bytes", float64(s.DiskBytes))
			sample("memo_cache_entries", float64(s.Entries))
		}
	})

	rec.Start()
	e.Flight = rec
	return rec
}

// FlightDashboard renders the env's recorder into a Dashboard value with
// the top-k slowest phases filled in from the trace. Engine is left nil so
// the output stays deterministic; callers wanting the host lane set it
// from the recorder's SelfProfiler after stopping.
func (e *Env) FlightDashboard(title string, topK int) flight.Dashboard {
	return flight.Dashboard{
		Title:    title,
		Rec:      e.Flight,
		TopSpans: report.TopSpans(e.Trace, topK),
	}
}

// WriteFlightArtifacts writes whichever flight artifacts the options ask
// for: the Prometheus series dump (SeriesOut), the HTML dashboard
// (DashOut, host lane included when bench != nil), and the engine
// self-profile (EngineBenchOut).
func writeFlightArtifacts(env *Env, o Options, title string, bench *flight.EngineBench) error {
	if env.Flight == nil {
		return nil
	}
	if o.SeriesOut != "" {
		f, err := os.Create(o.SeriesOut)
		if err != nil {
			return err
		}
		if err := env.Flight.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.DashOut != "" {
		d := env.FlightDashboard(title, 15)
		d.Engine = bench
		f, err := os.Create(o.DashOut)
		if err != nil {
			return err
		}
		if err := flight.WriteDashboard(f, d); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.EngineBenchOut != "" && bench != nil {
		if err := writeEngineBenchFile(o.EngineBenchOut, "engine", *bench); err != nil {
			return err
		}
	}
	return nil
}

// writeEngineBenchFile writes one self-profiler summary as a BENCH_*.json
// artifact.
func writeEngineBenchFile(path, id string, b flight.EngineBench) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := flight.WriteEngineBench(f, id, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TenantSLOReport is one tenant's SLO outcome in a ThroughputResult: the
// tracker's view (bucket-interpolated p99, burn rates, breaches) alongside
// the experiment's own raw nearest-rank p99, which RunThroughput asserts
// the tracker against.
type TenantSLOReport struct {
	TargetSeconds float64
	P99Wait       float64 // bucket-interpolated, from the SLO tracker
	RawP99Wait    float64 // nearest-rank, from the run's raw wait samples
	Events        int64
	Bad           int64
	Breaches      int64
	Burn          map[string]float64 // window label → burn rate at end of run
}

func (t *TenantSLOReport) String() string {
	return fmt.Sprintf("p99=%.3fs raw=%.3fs bad=%d/%d breaches=%d",
		t.P99Wait, t.RawP99Wait, t.Bad, t.Events, t.Breaches)
}
