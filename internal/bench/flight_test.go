package bench

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/flight"
	"mrapid/internal/mapreduce"
)

// flightWorkload is the shared small workload for the recorder tests.
func flightWorkload() WorkloadConfig {
	return WorkloadConfig{
		Jobs: 8, Tenants: 2, Arrival: "poisson:200ms",
		Policy: core.PolicyWeightedFair, Blocked: true,
	}
}

// TestFlightRecorderByteIdentity is the recorder's core contract: sampling
// is a pure observer. Across recorder on/off, sequential vs parallel host
// workers, and a node-crash chaos schedule, every job's output must hash
// identically.
func TestFlightRecorderByteIdentity(t *testing.T) {
	// The crash lands mid-workload (after the AM pool is fully up) and the
	// node comes back, so every schedule still completes all jobs.
	chaos := []mapreduce.NodeFault{{Node: "node-02", At: 6 * time.Second, RestartAfter: 8 * time.Second}}
	for _, faults := range [][]mapreduce.NodeFault{nil, chaos} {
		var base map[string]string
		for _, recorder := range []bool{false, true} {
			for _, workers := range []int{0, 4} {
				o := Options{Scale: 0.05, Seed: 3, HostWorkers: workers,
					FlightRecorder: recorder, NodeFaults: faults}
				r, err := RunThroughput(A3x4(), flightWorkload(), o)
				if err != nil {
					t.Fatalf("recorder=%v workers=%d faults=%v: %v", recorder, workers, faults, err)
				}
				if base == nil {
					base = r.OutputHashes
					continue
				}
				for job, want := range base {
					if got := r.OutputHashes[job]; got != want {
						t.Fatalf("recorder=%v workers=%d faults=%v: %s output %s, want %s",
							recorder, workers, faults, job, got, want)
					}
				}
			}
		}
	}
}

// TestFlightRecorderSeriesDeterminism pins the series artifact itself: two
// identical recorder-on runs must produce byte-identical Prometheus dumps
// and byte-identical dashboards (host lane excluded), independent of host
// worker count.
func TestFlightRecorderSeriesDeterminism(t *testing.T) {
	dump := func(workers int) (series, dash []byte) {
		o := Options{Scale: 0.05, Seed: 3, HostWorkers: workers, FlightRecorder: true}
		r, err := RunThroughput(A3x4(), flightWorkload(), o)
		if err != nil {
			t.Fatal(err)
		}
		var sb bytes.Buffer
		if err := r.flightEnv.Flight.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		var db bytes.Buffer
		if err := writeDashboardTo(&db, r); err != nil {
			t.Fatal(err)
		}
		return sb.Bytes(), db.Bytes()
	}
	s1, d1 := dump(0)
	s2, d2 := dump(0)
	s3, d3 := dump(4)
	if !bytes.Equal(s1, s2) || !bytes.Equal(s1, s3) {
		t.Fatal("Prometheus series dumps differ between identical runs")
	}
	if !bytes.Equal(d1, d2) || !bytes.Equal(d1, d3) {
		t.Fatal("dashboards differ between identical runs")
	}
	if len(s1) == 0 {
		t.Fatal("empty series dump")
	}
}

func writeDashboardTo(w *bytes.Buffer, r *ThroughputResult) error {
	d := r.flightEnv.FlightDashboard("determinism check", 10)
	return flight.WriteDashboard(w, d)
}

// TestFlightRecorderSLOPopulated checks the recorder-on result carries the
// cross-verified SLO reports (RunThroughput errors out if the tracker and
// the raw recomputation disagree, so reaching here means they agreed).
func TestFlightRecorderSLOPopulated(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 7, FlightRecorder: true}
	r, err := RunThroughput(A3x4(), flightWorkload(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlightSamples == 0 {
		t.Fatal("no samples recorded")
	}
	if len(r.SLO) != 2 {
		t.Fatalf("SLO reports for %d tenants, want 2", len(r.SLO))
	}
	for tn, rep := range r.SLO {
		if rep.Events == 0 {
			t.Errorf("%s: no SLO events", tn)
		}
		if len(rep.Burn) != 3 {
			t.Errorf("%s: burn windows = %v, want 3", tn, rep.Burn)
		}
		if rep.TargetSeconds != 10 {
			t.Errorf("%s: target = %v", tn, rep.TargetSeconds)
		}
	}
	if r.Engine == nil || r.Engine.Events == 0 || r.Engine.MaxEventHeapDepth == 0 {
		t.Fatalf("engine self-profile degenerate: %+v", r.Engine)
	}
	// The recorder-off result must carry none of it.
	r2, err := RunThroughput(A3x4(), flightWorkload(), Options{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r2.SLO != nil || r2.Engine != nil || r2.FlightSamples != 0 {
		t.Fatal("recorder-off run carries flight results")
	}
	// And the recorder must not move the measured numbers at all.
	if r.Makespan != r2.Makespan || r.P50 != r2.P50 || r.MeanWait != r2.MeanWait {
		t.Fatalf("recorder shifted measurements: %v/%v vs %v/%v",
			r.Makespan, r.P50, r2.Makespan, r2.P50)
	}
}

// TestFlightArtifactsWritten drives the artifact path end to end through a
// temp dir: series dump, dashboard, and engine bench all written and
// non-trivial.
func TestFlightArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	o := Options{Scale: 0.05, Seed: 7, FlightRecorder: true,
		SeriesOut:      dir + "/series.prom",
		DashOut:        dir + "/dash.html",
		EngineBenchOut: dir + "/BENCH_engine.json",
	}
	r, err := RunThroughput(A3x4(), flightWorkload(), o)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteFlightArtifacts(o, "artifact test"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{o.SeriesOut, o.DashOut, o.EngineBenchOut} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) < 100 {
			t.Fatalf("%s: suspiciously small (%d bytes)", f, len(data))
		}
	}
	series, _ := os.ReadFile(o.SeriesOut)
	if !bytes.Contains(series, []byte(`slo_burn_rate{tenant="tenant-0",window="30s"}`)) {
		t.Fatal("series dump missing SLO burn series")
	}
	dash, _ := os.ReadFile(o.DashOut)
	if !bytes.Contains(dash, []byte("self-profile")) {
		t.Fatal("dashboard missing the host-lane block")
	}
}

func ExampleTenantSLOReport_String() {
	rep := &TenantSLOReport{P99Wait: 1.5, RawP99Wait: 1.25, Events: 10, Bad: 2, Breaches: 1}
	fmt.Println(rep)
	// Output: p99=1.500s raw=1.250s bad=2/10 breaches=1
}
