package bench

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/memo"
	"mrapid/internal/query"
	"mrapid/internal/sim"
)

// memoWorkload is the repeat-heavy job stream both Memo rows run: three
// tenants resubmitting the same three WordCount jobs (Mix=3 input sets,
// job i reads set i%3) under fresh JobKeys, so neither the exact-match
// history nor the class estimator — only the digest-keyed memo cache — can
// recognize a repeat. Every set's first submission must execute; with the
// cache on, later revisits whose first run has committed are served without
// launching anything.
func memoWorkload() WorkloadConfig {
	return WorkloadConfig{
		Jobs: 18, Tenants: 3, Arrival: "uniform:2s",
		Speculative: true, UniqueKeys: true, Mix: 3,
	}
}

// memoVariantPlan is dagQueryPlan(0) with the final sort flipped ascending:
// the two group-by branches and the join compile to byte-identical stage
// signatures, so a warm cache serves them, while the order-by is novel and
// must run — the partial-overlap case of cross-query reuse.
func memoVariantPlan() *query.Plan {
	sales := query.Scan("sales").
		Filter(query.Where("amount", query.OpGt, "100")).
		GroupBy([]string{"cell"}, query.Sum("amount"), query.Count())
	returns := query.Scan("returns").
		Filter(query.Where("refund", query.OpGt, "20")).
		GroupBy([]string{"cell"}, query.Sum("refund"))
	return sales.Join(returns, "cell", "cell").OrderBy("sum(amount)", false)
}

// memoQueryStats is one cache mode's outcome over the query stream.
type memoQueryStats struct {
	makespan float64
	slotSec  float64
	hits     int64 // memo_hits_total at end of run
	misses   int64 // memo_misses_total at end of run
	stages   []int // per query
	memoWins []int // per query, stages won by ModeMemo
	rows     [][]string
}

// runMemoQueryMode drives a three-query stream through the DAG runner on a
// fresh simulation — a cold join-heavy query, its exact repeat, and a
// variant sharing everything but the final sort — submitted sequentially so
// each query sees its predecessors' committed outputs. The only difference
// between modes is whether the cross-job memo cache is attached.
func runMemoQueryMode(memoOn bool, o Options) (*memoQueryStats, error) {
	setup := A3x4()
	setup.Seed = o.Seed
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)
	setup.Params.MemoCache = memoOn

	v := VariantDPlus()
	v.UseFramework = false
	env, err := NewEnv(setup, v)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.EnableObservability(1 << 16)
	fw := core.NewFramework(env.RT, dagQueryPool, core.FullUPlus())
	srv, err := core.NewJobServer(fw, core.JobServerConfig{Policy: core.PolicyWeightedFair})
	if err != nil {
		return nil, err
	}
	ready := false
	env.Eng.After(0, func() { fw.Start(func() { ready = true }) })
	env.Eng.RunUntil(sim.Time(1 << 36))
	if !ready {
		return nil, fmt.Errorf("bench: AM pool failed to start")
	}
	env.FW = fw
	if memoOn {
		fw.Memo = memo.New(env.Reg, env.Cluster.Workers(), memo.Config{
			MemBytes:  setup.Params.MemoMemBytes,
			DiskBytes: setup.Params.MemoDiskBytes,
		})
	}

	cat := query.NewCatalog(env.DFS, env.Cluster)
	if err := dagQueryTables(cat, o); err != nil {
		return nil, err
	}
	dr, err := query.NewDAGRunner(fw, srv, cat)
	if err != nil {
		return nil, err
	}
	dr.Mode = query.ViaDPlus

	plans := []*query.Plan{dagQueryPlan(0), dagQueryPlan(0), memoVariantPlan()}
	stats := &memoQueryStats{
		stages:   make([]int, len(plans)),
		memoWins: make([]int, len(plans)),
		rows:     make([][]string, len(plans)),
	}
	start := env.Eng.Now()
	var lastDone sim.Time
	var runErr error
	var launch func(i int)
	launch = func(i int) {
		dr.Run(plans[i], func(res *query.Result, err error) {
			if err != nil {
				if runErr == nil {
					runErr = fmt.Errorf("bench: memo query %d failed: %w", i, err)
				}
				env.RM.Stop()
				return
			}
			stats.rows[i] = canonQueryRows(res.Rows)
			stats.stages[i] = res.Stages
			for _, w := range res.Winners {
				if w == core.ModeMemo {
					stats.memoWins[i]++
				}
			}
			lastDone = env.Eng.Now()
			if i+1 < len(plans) {
				launch(i + 1)
			} else {
				env.RM.Stop()
			}
		})
	}
	env.Eng.After(0, func() { launch(0) })
	env.Eng.RunUntil(horizon)
	if runErr != nil {
		return nil, runErr
	}
	if lastDone == 0 || stats.rows[len(plans)-1] == nil {
		return nil, fmt.Errorf("bench: memo query stream did not finish within the horizon")
	}
	stats.makespan = lastDone.Sub(start).Seconds()
	stats.slotSec = srv.SlotSeconds
	counters := env.Reg.Counters()
	stats.hits = counters["memo_hits_total"]
	stats.misses = counters["memo_misses_total"]
	return stats, nil
}

// Memo is the registered cross-job memoization experiment, in two halves.
//
// Jobs: an 18-job, 3-tenant speculative stream cycling over three distinct
// input sets under fresh JobKeys — a repeat-heavy trace where only the
// digest-keyed cache can recognize a resubmission. Cache off, every job
// pays the full dual-launch; cache on, revisits are served from the cache
// without an AM or a container.
//
// Queries: a cold join-heavy query, its exact repeat, and a variant sharing
// all but the final sort, run through the DAG runner cache off vs on —
// cross-query intermediate reuse via the query layer's stage signatures.
//
// Both halves enforce the cache's correctness contract: every output is
// byte-identical (job hashes, query rows) between the off and on rows, the
// exact repeat must be served entirely from the cache, the variant must hit
// on exactly its shared subtree, and the warm rows must win on makespan and
// slot-seconds.
func Memo(o Options) (*Figure, error) {
	o = o.normalized()
	fig := &Figure{
		ID:      "memo",
		Title:   "Cross-job memoization: repeat-heavy jobs and overlapping queries, cache off vs on (A3x4, D+ env)",
		XLabel:  "workload / cache",
		Columns: []string{"makespan", "slot-sec", "hits", "misses", "hit-rate"},
		Notes: []string{
			"jobs: 18 speculative WordCounts over 3 input sets, fresh JobKeys — repeats only the digest cache can see",
			"queries: cold + exact repeat + shared-subtree variant through the DAG runner, submitted sequentially",
			"slot-sec is admission-cost × execution-time (jobs) or the query server's same integral (queries)",
			"outputs are byte-identical between cache-off and cache-on rows (enforced)",
		},
	}
	addPoint := func(label string, makespan, slotSec float64, hits, misses int64) {
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fig.Points = append(fig.Points, Point{
			X: float64(len(fig.Points)), Label: label,
			Seconds: map[string]float64{
				"makespan": makespan, "slot-sec": slotSec,
				"hits": float64(hits), "misses": float64(misses), "hit-rate": rate,
			},
		})
	}

	// Jobs half.
	off, err := RunThroughput(A3x4(), memoWorkload(), o)
	if err != nil {
		return nil, fmt.Errorf("bench: memo jobs, cache off: %w", err)
	}
	oOn := o
	oOn.MemoCache = true
	on, err := RunThroughput(A3x4(), memoWorkload(), oOn)
	if err != nil {
		return nil, fmt.Errorf("bench: memo jobs, cache on: %w", err)
	}
	for job, want := range off.OutputHashes {
		if got := on.OutputHashes[job]; got != want {
			return nil, fmt.Errorf("bench: memo changed %s output: %s vs %s", job, got, want)
		}
	}
	if on.MemoHits == 0 {
		return nil, fmt.Errorf("bench: repeat-heavy stream produced no cache hits (misses %d)", on.MemoMisses)
	}
	if on.SlotSeconds >= off.SlotSeconds {
		return nil, fmt.Errorf("bench: cache-on slot-seconds %.2f did not beat cache-off %.2f", on.SlotSeconds, off.SlotSeconds)
	}
	addPoint("jobs/off", off.Makespan, off.SlotSeconds, 0, 0)
	addPoint("jobs/on", on.Makespan, on.SlotSeconds, on.MemoHits, on.MemoMisses)
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"jobs: %d/%d lookups hit; cache-on saves %.1f%% slot-seconds and %.1f%% makespan",
		on.MemoHits, on.MemoHits+on.MemoMisses,
		(off.SlotSeconds-on.SlotSeconds)/off.SlotSeconds*100,
		(off.Makespan-on.Makespan)/off.Makespan*100))

	// Queries half.
	qoff, err := runMemoQueryMode(false, o)
	if err != nil {
		return nil, err
	}
	qon, err := runMemoQueryMode(true, o)
	if err != nil {
		return nil, err
	}
	for i := range qoff.rows {
		a, b := qoff.rows[i], qon.rows[i]
		if len(a) != len(b) {
			return nil, fmt.Errorf("bench: memo query %d: cache off returned %d rows, on %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				return nil, fmt.Errorf("bench: memo query %d row %d: off %q != on %q", i, j, a[j], b[j])
			}
		}
	}
	if qon.memoWins[0] != 0 {
		return nil, fmt.Errorf("bench: cold query won %d stages from an empty cache", qon.memoWins[0])
	}
	if qon.memoWins[1] != qon.stages[1] {
		return nil, fmt.Errorf("bench: exact repeat won %d of %d stages from the cache", qon.memoWins[1], qon.stages[1])
	}
	if qon.memoWins[2] != qon.stages[2]-1 {
		return nil, fmt.Errorf("bench: shared-subtree variant won %d of %d stages, want all but the sort", qon.memoWins[2], qon.stages[2])
	}
	if qon.makespan >= qoff.makespan {
		return nil, fmt.Errorf("bench: cache-on query makespan %.2fs did not beat cache-off %.2fs", qon.makespan, qoff.makespan)
	}
	addPoint("query/off", qoff.makespan, qoff.slotSec, 0, 0)
	addPoint("query/on", qon.makespan, qon.slotSec, qon.hits, qon.misses)
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"queries: repeat served %d/%d stages, variant %d/%d (all but the sort); cache-on beats cache-off makespan by %.1f%%",
		qon.memoWins[1], qon.stages[1], qon.memoWins[2], qon.stages[2],
		(qoff.makespan-qon.makespan)/qoff.makespan*100))
	return fig, nil
}
