package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/query"
	"mrapid/internal/sim"
)

// dagQueryCount is how many queries the workload submits, dagQueryGap the
// arrival spacing between them (an ad-hoc Hive-style stream, not a burst:
// a burst saturates the 4-worker testbed and makes makespan purely
// work-bound, hiding scheduling differences), and dagQueryPool the AM pool
// size both modes share. The pool is sized so the DAG runner can overlap
// every in-flight query's two independent branches while the chain baseline
// — one stage in flight per query — never comes close to using it.
const (
	dagQueryCount = 3
	dagQueryPool  = 6
)

const dagQueryGap = 6 * time.Second

// dagQueryPlan builds the i-th query of the workload: a join-heavy shape
// whose two group-by inputs are independent branches the DAG runner can
// overlap. Thresholds vary per query so the three result tables differ.
// Grouping is on "cell", a high-cardinality key (≈ one cell per 8 rows), so
// the group-by outputs and the joined table are real intermediate data, not
// a handful of summary rows.
func dagQueryPlan(i int) *query.Plan {
	sales := query.Scan("sales").
		Filter(query.Where("amount", query.OpGt, strconv.Itoa(100+60*i))).
		GroupBy([]string{"cell"}, query.Sum("amount"), query.Count())
	returns := query.Scan("returns").
		Filter(query.Where("refund", query.OpGt, strconv.Itoa(20+10*i))).
		GroupBy([]string{"cell"}, query.Sum("refund"))
	return sales.Join(returns, "cell", "cell").OrderBy("sum(amount)", true)
}

// dagQueryTables materializes the synthetic sales/returns warehouse. Row
// counts scale with Options.Scale; generation is deterministic in the seed.
func dagQueryTables(cat *query.Catalog, o Options) error {
	rng := rand.New(rand.NewSource(o.Seed))
	nSales := int(20000 * o.Scale)
	if nSales < 240 {
		nSales = 240
	}
	nReturns := nSales / 2
	cells := nSales / 8
	sales := make([]query.Row, nSales)
	for i := range sales {
		sales[i] = query.Row{
			strconv.Itoa(i),
			fmt.Sprintf("c%05d", rng.Intn(cells)),
			strconv.Itoa(rng.Intn(1000)),
		}
	}
	if _, err := cat.Create("sales", query.Schema{"id", "cell", "amount"}, sales, 4); err != nil {
		return err
	}
	returns := make([]query.Row, nReturns)
	for i := range returns {
		returns[i] = query.Row{
			strconv.Itoa(i),
			fmt.Sprintf("c%05d", rng.Intn(cells)),
			strconv.Itoa(rng.Intn(200)),
		}
	}
	_, err := cat.Create("returns", query.Schema{"rid", "cell", "refund"}, returns, 3)
	return err
}

// canonQueryRows canonicalizes a result for cross-mode comparison: encoded
// rows, sorted (part-file order is scheduling-dependent; content is not).
func canonQueryRows(rows []query.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(out)
	return out
}

// dagQueryStats is one mode's measured outcome.
type dagQueryStats struct {
	makespan float64
	meanLat  float64 // mean per-query latency, submission to rows back
	hdfsMB   float64 // HDFS bytes written by the queries
	savedMB  float64 // intermediate bytes that skipped the HDFS write path
	maxConc  int     // peak in-flight stages of any single query
	rows     [][]string
}

// runDagQueryMode executes the whole workload on a fresh simulation under
// one scheduling mode: sequential per-query chains (dag=false) or the DAG
// runner (dag=true). Both see the same arrival stream and run stages as
// plain D+ jobs, so the only difference is whether a query's independent
// branches may overlap.
func runDagQueryMode(dag bool, o Options) (*dagQueryStats, error) {
	setup := A3x4()
	setup.Seed = o.Seed
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)

	// Hand-assembled like RunThroughput: the DAG mode's JobServer must exist
	// before the pool starts so its admission accounting sees a clean slate.
	v := VariantDPlus()
	v.UseFramework = false
	env, err := NewEnv(setup, v)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.EnableObservability(1 << 16)
	fw := core.NewFramework(env.RT, dagQueryPool, core.FullUPlus())
	var srv *core.JobServer
	if dag {
		srv, err = core.NewJobServer(fw, core.JobServerConfig{Policy: core.PolicyWeightedFair})
		if err != nil {
			return nil, err
		}
	}
	ready := false
	env.Eng.After(0, func() { fw.Start(func() { ready = true }) })
	env.Eng.RunUntil(sim.Time(1 << 36))
	if !ready {
		return nil, fmt.Errorf("bench: AM pool failed to start")
	}
	env.FW = fw

	cat := query.NewCatalog(env.DFS, env.Cluster)
	if err := dagQueryTables(cat, o); err != nil {
		return nil, err
	}

	var run func(p *query.Plan, done func(*query.Result, error))
	if dag {
		dr, err := query.NewDAGRunner(fw, srv, cat)
		if err != nil {
			return nil, err
		}
		dr.Mode = query.ViaDPlus
		run = dr.Run
	} else {
		r := query.NewRunner(fw, cat)
		r.Mode = query.ViaDPlus
		run = r.Run
	}

	baseline := env.DFS.BytesWritten
	start := env.Eng.Now()
	stats := &dagQueryStats{rows: make([][]string, dagQueryCount)}
	finished := 0
	var runErr error
	var lastDone sim.Time
	var latSum float64
	for i := 0; i < dagQueryCount; i++ {
		i := i
		env.Eng.After(time.Duration(i)*dagQueryGap, func() {
			submitted := env.Eng.Now()
			run(dagQueryPlan(i), func(res *query.Result, err error) {
				if err != nil && runErr == nil {
					runErr = fmt.Errorf("bench: query %d failed: %w", i, err)
				}
				if err == nil {
					stats.rows[i] = canonQueryRows(res.Rows)
					if res.MaxConcurrent > stats.maxConc {
						stats.maxConc = res.MaxConcurrent
					}
				}
				latSum += env.Eng.Now().Sub(submitted).Seconds()
				lastDone = env.Eng.Now()
				finished++
				if finished == dagQueryCount {
					env.RM.Stop()
				}
			})
		})
	}
	env.Eng.RunUntil(horizon)
	if runErr != nil {
		return nil, runErr
	}
	if finished != dagQueryCount {
		return nil, fmt.Errorf("bench: only %d of %d queries finished within the horizon", finished, dagQueryCount)
	}
	stats.makespan = lastDone.Sub(start).Seconds()
	stats.meanLat = latSum / dagQueryCount
	stats.hdfsMB = float64(env.DFS.BytesWritten-baseline) / mb
	if env.RT.Intermediates != nil {
		stats.savedMB = float64(env.RT.Intermediates.HDFSBytesAvoided) / mb
	}
	return stats, nil
}

// DAGQuery compares sequential-chain and DAG execution of a join-heavy
// multi-query workload: a stream of queries, each with two independent
// group-by branches feeding a join and an order-by. Both modes see the same
// compiled stages on identical clusters; the DAG runner overlaps the
// branches and the chain does not. The run fails if the two modes disagree
// on any query's rows or if the DAG does not beat the chain's makespan.
func DAGQuery(o Options) (*Figure, error) {
	o = o.normalized()
	chain, err := runDagQueryMode(false, o)
	if err != nil {
		return nil, fmt.Errorf("bench: chain mode: %w", err)
	}
	dag, err := runDagQueryMode(true, o)
	if err != nil {
		return nil, fmt.Errorf("bench: dag mode: %w", err)
	}
	for i := range chain.rows {
		a, b := chain.rows[i], dag.rows[i]
		if len(a) != len(b) {
			return nil, fmt.Errorf("bench: query %d: chain returned %d rows, dag %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				return nil, fmt.Errorf("bench: query %d row %d: chain %q != dag %q", i, j, a[j], b[j])
			}
		}
	}
	if dag.makespan >= chain.makespan {
		return nil, fmt.Errorf("bench: dag makespan %.2fs did not beat chain %.2fs", dag.makespan, chain.makespan)
	}
	fig := &Figure{
		ID:      "dagquery",
		Title:   "Query DAG scheduling: sequential chains vs parallel branches",
		XLabel:  "execution mode",
		Columns: []string{"makespan", "mean-latency", "hdfs-mb", "saved-mb", "max-conc"},
		Notes: []string{
			fmt.Sprintf("%d join-heavy queries (4 stages each) arriving every %s, AM pool %d; stages run as D+ jobs in both modes", dagQueryCount, dagQueryGap, dagQueryPool),
			"makespan: first arrival to last query done (virtual s); max-conc: peak in-flight stages of one query",
			"hdfs-mb: HDFS bytes the queries wrote; saved-mb: intermediate bytes kept in the producer-local store instead",
			fmt.Sprintf("DAG beats chain by %.1f%% on makespan and %.1f%% on mean latency with row-identical results",
				(chain.makespan-dag.makespan)/chain.makespan*100, (chain.meanLat-dag.meanLat)/chain.meanLat*100),
		},
	}
	for i, s := range []*dagQueryStats{chain, dag} {
		label := "chain"
		if i == 1 {
			label = "dag"
		}
		fig.Points = append(fig.Points, Point{
			X: float64(i), Label: label,
			Seconds: map[string]float64{
				"makespan":     s.makespan,
				"mean-latency": s.meanLat,
				"hdfs-mb":      s.hdfsMB,
				"saved-mb":     s.savedMB,
				"max-conc":     float64(s.maxConc),
			},
		})
	}
	return fig, nil
}
