package bench

import "testing"

// The storm must be deterministic run-to-run — that is what makes its
// before/after throughput numbers comparable and keeps the experiment
// honest about the engine's (time, seq) contract.
func TestEngineStormDeterministic(t *testing.T) {
	cfg := defaultStorm(0.02)
	a, _ := runEngineStorm(cfg)
	b, _ := runEngineStorm(cfg)
	if err := sameOutcome(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Launches == 0 || a.Fired == 0 {
		t.Fatalf("storm did nothing: %+v", a)
	}
	if a.Timeouts >= a.Launches {
		t.Fatalf("watchdogs should almost never fire: %d timeouts of %d launches", a.Timeouts, a.Launches)
	}
}

func TestEngineStormFigure(t *testing.T) {
	fig, err := EngineStorm(Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "engine" || len(fig.Points) == 0 {
		t.Fatalf("unexpected figure: %+v", fig)
	}
}

func BenchmarkEngineStorm(b *testing.B) {
	cfg := defaultStorm(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runEngineStorm(cfg)
	}
}
