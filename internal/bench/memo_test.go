package bench

import (
	"bytes"
	"testing"
	"time"

	"mrapid/internal/mapreduce"
)

// TestMemoByteIdentityGolden is the cache's core contract at workload
// scale: across cache on/off, sequential vs parallel host workers, and a
// node-crash chaos schedule, every job of the repeat-heavy stream must
// hash identically — a memo hit is indistinguishable from a fresh run.
// (The companion invalidation golden — a mutated input forcing a re-run
// that must again match a from-scratch execution — is pinned at the
// framework level in core's TestMemoHitSkipsExecution.)
func TestMemoByteIdentityGolden(t *testing.T) {
	chaos := []mapreduce.NodeFault{{Node: "node-02", At: 6 * time.Second, RestartAfter: 8 * time.Second}}
	for _, faults := range [][]mapreduce.NodeFault{nil, chaos} {
		var base map[string]string
		for _, cache := range []bool{false, true} {
			for _, workers := range []int{0, 4} {
				o := Options{Scale: 0.05, Seed: 3, HostWorkers: workers,
					MemoCache: cache, NodeFaults: faults}
				r, err := RunThroughput(A3x4(), memoWorkload(), o)
				if err != nil {
					t.Fatalf("cache=%v workers=%d faults=%v: %v", cache, workers, faults, err)
				}
				if cache && faults == nil && r.MemoHits == 0 {
					t.Fatalf("workers=%d: cache-on run recorded no hits", workers)
				}
				if !cache && r.MemoHits+r.MemoMisses != 0 {
					t.Fatalf("cache-off run recorded lookups: %d/%d", r.MemoHits, r.MemoMisses)
				}
				if base == nil {
					base = r.OutputHashes
					continue
				}
				for job, want := range base {
					if got := r.OutputHashes[job]; got != want {
						t.Fatalf("cache=%v workers=%d faults=%v: %s output %s, want %s",
							cache, workers, faults, job, got, want)
					}
				}
			}
		}
	}
}

// TestMemoFlightSeries pins the recorder's view of the cache: two identical
// cache-on recorder-on runs must dump byte-identical Prometheus series —
// memo counters and residency gauges included — and the dashboard must
// carry the cache row.
func TestMemoFlightSeries(t *testing.T) {
	dump := func() (series, dash []byte, hits int64) {
		o := Options{Scale: 0.05, Seed: 3, MemoCache: true, FlightRecorder: true}
		r, err := RunThroughput(A3x4(), memoWorkload(), o)
		if err != nil {
			t.Fatal(err)
		}
		var sb, db bytes.Buffer
		if err := r.flightEnv.Flight.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if err := writeDashboardTo(&db, r); err != nil {
			t.Fatal(err)
		}
		return sb.Bytes(), db.Bytes(), r.MemoHits
	}
	s1, d1, hits := dump()
	s2, d2, _ := dump()
	if !bytes.Equal(s1, s2) {
		t.Fatal("Prometheus series dumps differ between identical cache-on runs")
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("dashboards differ between identical cache-on runs")
	}
	if hits == 0 {
		t.Fatal("recorded run had no cache hits")
	}
	for _, want := range []string{"memo_hits_total", "memo_misses_total", "memo_cache_entries", "memo_cache_mem_bytes"} {
		if !bytes.Contains(s1, []byte(want)) {
			t.Fatalf("series dump missing %s", want)
		}
	}
	if !bytes.Contains(d1, []byte("cross-job memo")) {
		t.Fatal("dashboard missing the cache row")
	}
}

// TestMemoExperiment runs the registered experiment end to end at test
// scale; every correctness gate (byte identity, all-stage repeat hits,
// shared-subtree precision, makespan and slot-second wins) is enforced
// inside Memo itself, so this pins that they all hold.
func TestMemoExperiment(t *testing.T) {
	fig, err := Memo(Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(fig.Points))
	}
	for _, label := range []string{"jobs/on", "query/on"} {
		found := false
		for _, p := range fig.Points {
			if p.Label == label {
				found = true
				if p.Seconds["hit-rate"] <= 0 {
					t.Errorf("%s: hit rate %v, want > 0", label, p.Seconds["hit-rate"])
				}
			}
		}
		if !found {
			t.Errorf("missing point %q", label)
		}
	}
}
