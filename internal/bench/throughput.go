package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/flight"
	"mrapid/internal/mapreduce"
	"mrapid/internal/memo"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/workloads"
	"mrapid/internal/yarn"
)

// WorkloadConfig describes a multi-tenant job stream for the throughput
// experiment and the mrapid CLI's multi-job mode.
type WorkloadConfig struct {
	// Jobs is the total number of submissions across all tenants.
	Jobs int
	// Tenants is the number of capacity queues the jobs are spread over
	// (round-robin). Each tenant gets an equal share of 70% of the cluster;
	// the remaining 30% is the default queue the AM pool runs in.
	Tenants int
	// Arrival picks the inter-arrival process: "burst" (everything at t=0),
	// "uniform:<gap>" (fixed spacing), or "poisson:<mean>" (exponential
	// inter-arrival times, seeded deterministically).
	Arrival string
	// Policy orders admission; empty means FIFO.
	Policy core.AdmissionPolicy
	// Blocked assigns jobs to tenants in contiguous blocks (tenant-0's whole
	// batch arrives first) instead of round-robin. Block arrival is where
	// admission policies diverge: FIFO drains the first tenant's backlog
	// before later tenants run, weighted-fair interleaves them.
	Blocked bool
	// PoolSize sizes the AM pool (and thereby the default admission window);
	// zero means the paper's default of 3.
	PoolSize int

	// Speculative routes every job through the full speculative workflow
	// (D+/U+ race + decision maker) instead of alternating fixed modes.
	Speculative bool
	// Predict turns on the framework's calibrating estimator, letting
	// confident workload classes skip the dual-launch (Framework.Predict).
	Predict bool
	// UniqueKeys gives every submission its own JobKey, so the exact-match
	// history never pre-decides a later job — only the class estimator can.
	// This is the warm-workload regime: similar jobs, never the same one.
	UniqueKeys bool

	// Mix spreads the stream over this many distinct input sets (job i reads
	// set i%Mix), each generated from its own seed. 0 or 1 keeps the classic
	// single shared input. With the memo cache on, Mix controls the repeat
	// structure: every set's first job misses, every revisit hits.
	Mix int
}

// TenantStats aggregates one tenant's view of a workload run.
type TenantStats struct {
	Jobs        int
	MeanLatency float64 // seconds, submission → client-observed completion
	MeanWait    float64 // seconds spent queued in the JobServer
}

// ThroughputResult is one workload run's summary.
type ThroughputResult struct {
	Policy      core.AdmissionPolicy
	Jobs        int
	Makespan    float64 // seconds, first arrival → last completion
	P50         float64 // seconds, median job latency
	P99         float64 // seconds, 99th-percentile job latency
	MeanWait    float64 // seconds, mean JobServer queue wait over all jobs
	Fairness    float64 // Jain's index over per-tenant mean latency (1 = equal)
	TenantOrder []string
	Tenants     map[string]*TenantStats

	// Estimator accounting for speculative workloads: SlotSeconds is the
	// JobServer's admission-cost × execution-time integral (the dual-launch
	// pays 2× here), Races/DirectHistory/DirectPrediction split the jobs by
	// how the mode was chosen, PredErrMean is the mean relative prediction
	// error of the direct picks, and Regret counts picks the skipped mode
	// would have beaten.
	SlotSeconds      float64
	Races            int64
	DirectHistory    int64
	DirectPrediction int64
	PredErrMean      float64
	Regret           int64

	// Memo accounting, non-zero only when Params.MemoCache was on: lookups
	// served from the cross-job cache vs. missed (memo_hits_total /
	// memo_misses_total at end of run).
	MemoHits   int64
	MemoMisses int64

	// OutputHashes fingerprints each job's final output (job name → FNV-64a
	// of the concatenated part files), so two runs of the same workload can
	// be checked for byte-identical results.
	OutputHashes map[string]string

	// Flight-recorder results, populated only when Options.FlightRecorder
	// was set: per-tenant SLO outcomes (already cross-checked against the
	// run's raw measurements), the sample count, and the engine's host-side
	// self-profile.
	SLO           map[string]*TenantSLOReport
	FlightSamples int64
	Engine        *flight.EngineBench

	// flightEnv keeps the recorded simulation alive for artifact writing.
	flightEnv *Env
}

// WriteFlightArtifacts writes the series dump / dashboard / engine-bench
// files the options ask for. No-op when the run had no recorder.
func (r *ThroughputResult) WriteFlightArtifacts(o Options, title string) error {
	if r.flightEnv == nil {
		return nil
	}
	return writeFlightArtifacts(r.flightEnv, o, title, r.Engine)
}

// arrivalTimes expands a WorkloadConfig.Arrival spec into one absolute
// submission offset per job, deterministically from the seed.
func arrivalTimes(dist string, n int, seed int64) ([]time.Duration, error) {
	out := make([]time.Duration, n)
	switch {
	case dist == "" || dist == "burst":
		return out, nil
	case strings.HasPrefix(dist, "uniform:"):
		gap, err := time.ParseDuration(strings.TrimPrefix(dist, "uniform:"))
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("bench: bad uniform arrival %q", dist)
		}
		for i := range out {
			out[i] = time.Duration(i) * gap
		}
		return out, nil
	case strings.HasPrefix(dist, "poisson:"):
		mean, err := time.ParseDuration(strings.TrimPrefix(dist, "poisson:"))
		if err != nil || mean <= 0 {
			return nil, fmt.Errorf("bench: bad poisson arrival %q", dist)
		}
		rng := rand.New(rand.NewSource(seed))
		var at time.Duration
		for i := range out {
			at += time.Duration(rng.ExpFloat64() * float64(mean))
			out[i] = at
		}
		return out, nil
	}
	return nil, fmt.Errorf("bench: unknown arrival distribution %q (want burst, uniform:<gap>, or poisson:<mean>)", dist)
}

// tenantQueues carves the cluster into equal tenant shares, leaving the
// default queue (where the AM pool lives) 30% headroom.
func tenantQueues(tenants int) []yarn.QueueConfig {
	share := 0.7 / float64(tenants)
	qs := make([]yarn.QueueConfig, tenants)
	for i := range qs {
		qs[i] = yarn.QueueConfig{Name: fmt.Sprintf("tenant-%d", i), Capacity: share}
	}
	return qs
}

// RunThroughput drives a multi-tenant WordCount stream through a JobServer
// on the D+ environment and reports latency, makespan, queue wait, and
// per-tenant fairness. Jobs alternate D+ and U+ mode; tenant assignment is
// round-robin. Everything is deterministic in (setup.Seed, cfg, o).
func RunThroughput(setup ClusterSetup, cfg WorkloadConfig, o Options) (*ThroughputResult, error) {
	o = o.normalized()
	if cfg.Jobs <= 0 || cfg.Tenants <= 0 {
		return nil, fmt.Errorf("bench: workload needs at least one job and one tenant")
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 3
	}
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)

	// The framework is assembled by hand (not by NewEnv) so the JobServer can
	// install the tenant queues before the pool starts — that way the
	// reserved AM containers are charged against the default queue.
	v := VariantDPlus()
	v.UseFramework = false
	env, err := NewEnv(setup, v)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.EnableObservability(1 << 16)
	fw := core.NewFramework(env.RT, cfg.PoolSize, core.FullUPlus())
	srv, err := core.NewJobServer(fw, core.JobServerConfig{
		Queues: tenantQueues(cfg.Tenants),
		Policy: cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	ready := false
	env.Eng.After(0, func() { fw.Start(func() { ready = true }) })
	env.Eng.RunUntil(sim.Time(1 << 36))
	if !ready {
		return nil, fmt.Errorf("bench: AM pool failed to start")
	}
	env.FW = fw
	fw.Predict = cfg.Predict
	// NewEnv can't attach the memo cache here (the framework is hand-built),
	// so mirror its wiring: registry-backed counters, cluster-wide residency.
	if setup.Params.MemoCache {
		fw.Memo = memo.New(env.Reg, env.Cluster.Workers(), memo.Config{
			MemBytes:  setup.Params.MemoMemBytes,
			DiskBytes: setup.Params.MemoDiskBytes,
		})
	}

	// Flight recorder: cluster gauges from the env, JobServer gauges here,
	// and the SLO tracker fed through a tap that also keeps the raw events,
	// so the tracker's percentiles and burn rates can be verified against
	// an independent recomputation after the run.
	var rec *flight.Recorder
	var tap *sloTap
	if setup.Params.FlightRecorder {
		rec = env.EnableFlightRecorder(DefaultSLO())
		rec.AddGauge(func(sample func(string, float64)) {
			pending := srv.PendingByTenant()
			names := make([]string, 0, len(pending))
			for n := range pending {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				sample(metrics.With("jobserver_pending_jobs", "tenant", n), float64(pending[n]))
			}
			sample("jobserver_inflight_jobs", float64(srv.InFlight()))
		})
		tap = &sloTap{eng: env.Eng, inner: rec.SLO(), events: make(map[string][]sloRawEvent)}
		srv.Observer = tap
	}

	mix := cfg.Mix
	if mix <= 0 {
		mix = 1
	}
	inputSets := make([][]string, mix)
	for m := 0; m < mix; m++ {
		dir := "/in/tp"
		if mix > 1 {
			dir = fmt.Sprintf("/in/tp/%d", m)
		}
		names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, dir, workloads.WordCountConfig{
			Files: 4, FileBytes: o.bytes(2 * mb), Seed: o.Seed + int64(m),
		})
		if err != nil {
			return nil, err
		}
		inputSets[m] = names
	}
	arrivals, err := arrivalTimes(cfg.Arrival, cfg.Jobs, o.Seed)
	if err != nil {
		return nil, err
	}

	type jobEnd struct {
		tenant  string
		latency float64
	}
	var ends []jobEnd
	var firstArrival, lastDone sim.Time
	var submitErr error
	specs := make([]*mapreduce.JobSpec, cfg.Jobs)
	start := env.Eng.Now()
	firstArrival = start.Add(arrivals[0])
	for i := 0; i < cfg.Jobs; i++ {
		i := i
		ti := i % cfg.Tenants
		if cfg.Blocked {
			ti = i * cfg.Tenants / cfg.Jobs
		}
		tenant := fmt.Sprintf("tenant-%d", ti)
		mode := core.ModeDPlus
		if i%2 == 1 {
			mode = core.ModeUPlus
		}
		if cfg.Speculative {
			mode = core.ModeSpeculative
		}
		spec := workloads.WordCountSpec(fmt.Sprintf("wc-%s-%d", tenant, i), inputSets[i%mix], fmt.Sprintf("/out/tp/%d", i), false)
		if cfg.UniqueKeys {
			spec.JobKey = spec.Name
		}
		specs[i] = spec
		env.Eng.After(arrivals[i], func() {
			submittedAt := env.Eng.Now()
			err := srv.Submit(tenant, mode, spec, func(res *mapreduce.Result) {
				if res.Err != nil && submitErr == nil {
					submitErr = fmt.Errorf("bench: job %s failed: %w", spec.Name, res.Err)
				}
				lastDone = env.Eng.Now()
				ends = append(ends, jobEnd{tenant, lastDone.Sub(submittedAt).Seconds()})
				if len(ends) == cfg.Jobs {
					env.RM.Stop()
					env.Flight.StopIfRunning()
				}
			})
			if err != nil && submitErr == nil {
				submitErr = err
			}
		})
	}
	env.Eng.RunUntil(horizon)
	if submitErr != nil {
		return nil, submitErr
	}
	if len(ends) != cfg.Jobs {
		return nil, fmt.Errorf("bench: only %d of %d jobs finished within the horizon (pending %d)", len(ends), cfg.Jobs, srv.Pending())
	}

	res := &ThroughputResult{
		Policy:   srvPolicy(cfg.Policy),
		Jobs:     cfg.Jobs,
		Makespan: lastDone.Sub(firstArrival).Seconds(),
		Tenants:  make(map[string]*TenantStats),
	}
	lats := make([]float64, 0, len(ends))
	for _, e := range ends {
		lats = append(lats, e.latency)
		ts := res.Tenants[e.tenant]
		if ts == nil {
			ts = &TenantStats{}
			res.Tenants[e.tenant] = ts
		}
		ts.Jobs++
		ts.MeanLatency += e.latency
	}
	sort.Float64s(lats)
	res.P50 = percentile(lats, 0.50)
	res.P99 = percentile(lats, 0.99)
	hists := env.Reg.Histograms()
	var waitSum float64
	var waitN int64
	for i := 0; i < cfg.Tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		res.TenantOrder = append(res.TenantOrder, name)
		ts := res.Tenants[name]
		if ts == nil {
			ts = &TenantStats{}
			res.Tenants[name] = ts
		}
		if ts.Jobs > 0 {
			ts.MeanLatency /= float64(ts.Jobs)
		}
		if h := hists[metrics.With("jobserver_queue_wait_seconds", "tenant", name)]; h != nil {
			ts.MeanWait = h.Mean()
			waitSum += h.Sum
			waitN += h.Count
		}
	}
	if waitN > 0 {
		res.MeanWait = waitSum / float64(waitN)
	}
	res.Fairness = jainIndex(res.TenantOrder, res.Tenants)

	// Estimator accounting: how the speculative jobs picked their mode, and
	// what the admission layer paid for them in cluster-slot time.
	res.SlotSeconds = srv.SlotSeconds
	counters := env.Reg.Counters()
	res.Races = counters["estimator_race_total"]
	res.DirectHistory = counters[metrics.With("estimator_direct_total", "source", "history")]
	res.DirectPrediction = counters[metrics.With("estimator_direct_total", "source", "prediction")]
	for name, n := range counters {
		if strings.HasPrefix(name, "estimator_regret_total{") {
			res.Regret += n
		}
	}
	if h := hists["estimator_prediction_error"]; h != nil {
		res.PredErrMean = h.Mean()
	}
	res.MemoHits = counters["memo_hits_total"]
	res.MemoMisses = counters["memo_misses_total"]

	// Fingerprint every job's final output so runs of the same workload under
	// different decision paths (race vs direct pick) can be proven identical.
	res.OutputHashes = make(map[string]string, cfg.Jobs)
	for _, spec := range specs {
		hash := fnv.New64a()
		for p := 0; p < spec.NumReduces; p++ {
			data, err := env.DFS.Contents(mapreduce.PartFileName(spec.OutputFile, p))
			if err != nil {
				return nil, fmt.Errorf("bench: reading output of %s: %w", spec.Name, err)
			}
			hash.Write(data)
		}
		res.OutputHashes[spec.Name] = fmt.Sprintf("%016x", hash.Sum64())
	}

	if rec != nil {
		if err := collectSLO(res, env, rec, tap); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// sloRawEvent is the tap's independent record of one SLO event.
type sloRawEvent struct {
	at   sim.Time
	wait float64 // seconds; admissions only (completions carry -1)
	bad  bool
}

// sloTap sits between the JobServer and the SLO tracker: it forwards every
// observation and keeps its own copy, so the tracker's outputs can be
// verified against a from-scratch recomputation.
type sloTap struct {
	eng    *sim.Engine
	inner  core.AdmissionObserver
	events map[string][]sloRawEvent
}

func (t *sloTap) JobAdmitted(tenant string, wait time.Duration) {
	t.events[tenant] = append(t.events[tenant], sloRawEvent{
		at: t.eng.Now(), wait: wait.Seconds(),
		bad: wait > DefaultSLO().TargetWait,
	})
	t.inner.JobAdmitted(tenant, wait)
}

func (t *sloTap) JobCompleted(tenant string, missedDeadline bool) {
	t.events[tenant] = append(t.events[tenant], sloRawEvent{
		at: t.eng.Now(), wait: -1, bad: missedDeadline,
	})
	t.inner.JobCompleted(tenant, missedDeadline)
}

// collectSLO fills ThroughputResult's flight fields and enforces the
// recorder's accuracy contract: for every tenant, the tracker's
// bucket-interpolated p99 queue wait must land within one histogram bucket
// of the nearest-rank p99 computed from the raw waits, and every window's
// burn rate must exactly match a recomputation from the tap's event log.
func collectSLO(res *ThroughputResult, env *Env, rec *flight.Recorder, tap *sloTap) error {
	slo := rec.SLO()
	scfg := slo.Config()
	now := env.Eng.Now()
	res.FlightSamples = rec.Samples()
	res.SLO = make(map[string]*TenantSLOReport)
	res.flightEnv = env

	eb := rec.SelfProfiler().Summary()
	res.Engine = &eb

	for _, tn := range slo.Tenants() {
		total, bad := slo.Events(tn)
		rep := &TenantSLOReport{
			TargetSeconds: scfg.TargetWait.Seconds(),
			P99Wait:       slo.P99Wait(tn),
			Events:        total,
			Bad:           bad,
			Breaches:      slo.Breaches(tn),
			Burn:          make(map[string]float64, len(scfg.Windows)),
		}

		var waits []float64
		var rawTotal, rawBad int64
		for _, e := range tap.events[tn] {
			rawTotal++
			if e.bad {
				rawBad++
			}
			if e.wait >= 0 {
				waits = append(waits, e.wait)
			}
		}
		if rawTotal != total || rawBad != bad {
			return fmt.Errorf("bench: SLO tracker for %s counted (%d,%d) events, tap saw (%d,%d)",
				tn, total, bad, rawTotal, rawBad)
		}
		sort.Float64s(waits)
		rep.RawP99Wait = percentile(waits, 0.99)
		if err := quantilesAgree(rep.P99Wait, rep.RawP99Wait); err != nil {
			return fmt.Errorf("bench: tenant %s p99 queue wait: %w", tn, err)
		}

		for _, w := range scfg.Windows {
			got := slo.BurnRate(tn, w)
			cutoff := now.Add(-w)
			var wTotal, wBad int64
			for _, e := range tap.events[tn] {
				if e.at < cutoff {
					continue
				}
				wTotal++
				if e.bad {
					wBad++
				}
			}
			var want float64
			if wTotal > 0 {
				want = float64(wBad) / float64(wTotal) / scfg.MissBudget
			}
			if math.Abs(got-want) > 1e-9 {
				return fmt.Errorf("bench: tenant %s burn over %s: tracker %v, recomputed %v",
					tn, w, got, want)
			}
			rep.Burn[w.String()] = got
		}
		res.SLO[tn] = rep
	}
	return nil
}

// quantilesAgree checks that a bucket-interpolated quantile and a raw
// nearest-rank quantile fall in the same or adjacent histogram bucket —
// the tightest bound interpolation can honestly promise (the interpolated
// rank can sit one sample below the nearest-rank sample).
func quantilesAgree(interp, raw float64) error {
	bi := sort.SearchFloat64s(metrics.DefaultDurationBuckets, interp)
	br := sort.SearchFloat64s(metrics.DefaultDurationBuckets, raw)
	if bi > br+1 || br > bi+1 {
		return fmt.Errorf("interpolated %.4fs (bucket %d) vs raw %.4fs (bucket %d)", interp, bi, raw, br)
	}
	return nil
}

func srvPolicy(p core.AdmissionPolicy) core.AdmissionPolicy {
	if p == "" {
		return core.PolicyFIFO
	}
	return p
}

// percentile reads the p-quantile of sorted samples by the nearest-rank
// definition: the smallest value with at least ⌈p·n⌉ samples at or below it.
// (The old int(p·n) indexing was off by one — p50 of 10 samples read index 5,
// the 6th value, and p100 always needed the clamp.)
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// jainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over per-tenant
// mean latency: 1.0 when every tenant sees the same average latency, 1/n
// when one tenant absorbs all the delay.
func jainIndex(order []string, tenants map[string]*TenantStats) float64 {
	var sum, sumSq float64
	n := 0
	for _, name := range order {
		x := tenants[name].MeanLatency
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Throughput is the registered multi-job experiment: the same 60-job,
// 3-tenant Poisson stream through the JobServer under FIFO and weighted-fair
// admission. Jobs arrive in tenant blocks (tenant-0's batch first) — the
// regime where the policies diverge: FIFO drains each backlog in arrival
// order while weighted-fair interleaves tenants. Columns are makespan,
// p50/p99 job latency, mean queue wait (all seconds), and Jain's per-tenant
// fairness index (dimensionless).
func Throughput(o Options) (*Figure, error) {
	o = o.normalized()
	fig := &Figure{
		ID:      "throughput",
		Title:   "JobServer throughput: 60 jobs, 3 tenants, Poisson arrivals (A3x4, D+ env)",
		XLabel:  "admission policy",
		Columns: []string{"makespan", "p50", "p99", "mean-wait", "fairness"},
		Notes: []string{
			"fairness is Jain's index over per-tenant mean latency (1 = perfectly even)",
			"mean-wait is time queued in the JobServer before admission",
		},
	}
	workload := func(policy core.AdmissionPolicy) WorkloadConfig {
		return WorkloadConfig{
			Jobs: 60, Tenants: 3, Arrival: "poisson:250ms", Policy: policy, Blocked: true,
		}
	}
	var wfair *ThroughputResult
	for i, policy := range []core.AdmissionPolicy{core.PolicyFIFO, core.PolicyWeightedFair} {
		r, err := RunThroughput(A3x4(), workload(policy), o)
		if err != nil {
			return nil, err
		}
		if policy == core.PolicyWeightedFair {
			wfair = r
		}
		fig.Points = append(fig.Points, Point{
			X: float64(i), Label: string(policy),
			Seconds: map[string]float64{
				"makespan": r.Makespan, "p50": r.P50, "p99": r.P99,
				"mean-wait": r.MeanWait, "fairness": r.Fairness,
			},
		})
	}

	// Third row: the weighted-fair run again with the flight recorder on.
	// Recording must be a pure observer — every job's output has to hash
	// identically to the recorder-off row — and RunThroughput has already
	// cross-checked the recorder's p99s and burn rates against the run's
	// own raw measurements. This row is also where the series dump /
	// dashboard / engine-bench artifacts come from when paths are set.
	fo := o
	fo.FlightRecorder = true
	fr, err := RunThroughput(A3x4(), workload(core.PolicyWeightedFair), fo)
	if err != nil {
		return nil, err
	}
	for job, want := range wfair.OutputHashes {
		if got := fr.OutputHashes[job]; got != want {
			return nil, fmt.Errorf("bench: recorder changed %s output: %s vs %s", job, got, want)
		}
	}
	fig.Points = append(fig.Points, Point{
		X: 2, Label: "wfair+recorder",
		Seconds: map[string]float64{
			"makespan": fr.Makespan, "p50": fr.P50, "p99": fr.P99,
			"mean-wait": fr.MeanWait, "fairness": fr.Fairness,
		},
	})
	fig.Notes = append(fig.Notes,
		"wfair+recorder re-runs the wfair row with the flight recorder sampling every 250ms of virtual time; outputs are verified byte-identical and all columns must match the recorder-off row")
	if err := fr.WriteFlightArtifacts(fo, "throughput: weighted-fair, flight recorder on"); err != nil {
		return nil, err
	}
	return fig, nil
}

// warmWorkload is the warm-workload stream both Warm rows run: a stream of
// WordCount jobs that are all structurally alike (same workload class) but
// each under a fresh JobKey, so the exact-match history can never pre-decide
// — the only way to avoid the 2× dual-launch is the calibrating estimator.
func warmWorkload(predict bool) WorkloadConfig {
	return WorkloadConfig{
		Jobs: 24, Tenants: 2, Arrival: "uniform:2s",
		Speculative: true, Predict: predict, UniqueKeys: true,
	}
}

// Warm is the registered warm-workload experiment: the same 24-job stream of
// class-identical (but never key-identical) speculative WordCounts, first
// with the estimator off — every job pays the D+/U+ dual-launch — and then
// with the calibrating estimator on, where the first few jobs race to
// calibrate the class and every confident successor launches its predicted
// winner alone. Besides the measurements, the experiment enforces the
// estimator's correctness contract: every job's final output is
// byte-identical between the two rows (a direct pick must produce exactly
// what the race's winner would have).
func Warm(o Options) (*Figure, error) {
	o = o.normalized()
	fig := &Figure{
		ID:      "warm",
		Title:   "Warm workload: 24 class-identical speculative jobs, estimator off vs on (A3x4, D+ env)",
		XLabel:  "estimator",
		Columns: []string{"makespan", "slot-sec", "races", "direct", "pred-err", "regret"},
		Notes: []string{
			"slot-sec is admission-cost × execution-time summed over jobs (the dual-launch pays 2×)",
			"direct counts jobs whose mode was picked up front (no race); pred-err is their mean relative prediction error",
			"regret counts direct picks the skipped mode would have beaten (model-judged from the run's own sample)",
			"outputs are verified byte-identical between the two rows",
		},
	}
	var base *ThroughputResult
	for i, predict := range []bool{false, true} {
		label := "race-always"
		if predict {
			label = "calibrated"
		}
		r, err := RunThroughput(A3x4(), warmWorkload(predict), o)
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = r
		} else {
			for job, want := range base.OutputHashes {
				if got := r.OutputHashes[job]; got != want {
					return nil, fmt.Errorf("bench: %s output %s under the estimator, %s under the race", job, got, want)
				}
			}
		}
		fig.Points = append(fig.Points, Point{
			X: float64(i), Label: label,
			Seconds: map[string]float64{
				"makespan": r.Makespan, "slot-sec": r.SlotSeconds,
				"races": float64(r.Races), "direct": float64(r.DirectHistory + r.DirectPrediction),
				"pred-err": r.PredErrMean, "regret": float64(r.Regret),
			},
		})
	}
	return fig, nil
}
