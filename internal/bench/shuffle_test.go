package bench

import "testing"

// TestShuffleExperiment runs the shuffle-service experiment at test scale.
// The experiment itself enforces byte-identical outputs and the
// nodes × reduces fetch bound; the assertions here cover the claims the
// EXPERIMENTS table makes: consolidation cuts the fetch count on every
// workload, the in-node combiner cuts shuffle bytes on combiner workloads,
// and lz compression cuts network bytes everywhere.
func TestShuffleExperiment(t *testing.T) {
	fig, err := Shuffle(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cases := shuffleCases()
	configs := shuffleConfigs()
	if len(fig.Points) != len(cases)*len(configs) {
		t.Fatalf("points = %d, want %d", len(fig.Points), len(cases)*len(configs))
	}
	get := func(ci, fi int, col string) float64 {
		return fig.Points[ci*len(configs)+fi].Seconds[col]
	}
	for ci, c := range cases {
		off, svc, lz := get(ci, 0, "fetches"), get(ci, 1, "fetches"), get(ci, 2, "fetches")
		if svc >= off {
			t.Errorf("%s: consolidated fetches %.0f not below per-map %.0f", c.Name, svc, off)
		}
		if lz != svc {
			t.Errorf("%s: codec changed the fetch count (%.0f vs %.0f)", c.Name, lz, svc)
		}
		if c.Combiner {
			if get(ci, 1, "shuffle-MB") >= get(ci, 0, "shuffle-MB") {
				t.Errorf("%s: in-node combine did not reduce shuffle bytes (%.3f vs %.3f MB)",
					c.Name, get(ci, 1, "shuffle-MB"), get(ci, 0, "shuffle-MB"))
			}
		}
		if get(ci, 2, "net-MB") >= get(ci, 1, "net-MB") {
			t.Errorf("%s: lz did not reduce network bytes (%.3f vs %.3f MB)",
				c.Name, get(ci, 2, "net-MB"), get(ci, 1, "net-MB"))
		}
		for fi := range configs {
			if get(ci, fi, "seconds") <= 0 {
				t.Errorf("%s/%s: non-positive job time", c.Name, configs[fi].Name)
			}
		}
	}
}

// TestShuffleDeterministic re-runs one service configuration and requires
// identical measurements — the consolidated shuffle must not perturb the
// simulation's determinism.
func TestShuffleDeterministic(t *testing.T) {
	c := shuffleCases()[0]
	cfg := shuffleConfigs()[2] // svc+lz, the most machinery engaged
	o := Options{Scale: 0.05, Seed: 3}
	a, err := RunShuffleCase(A3x4(), c, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShuffleCase(A3x4(), c, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fetches != b.Fetches || a.NetworkMB != b.NetworkMB || a.TotalMB != b.TotalMB || a.Seconds != b.Seconds {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
