package bench

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a figure as an aligned text table, the form EXPERIMENTS.md
// and the bench binary report.
func Render(w io.Writer, f *Figure) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)

	header := append([]string{f.XLabel}, f.Columns...)
	rows := [][]string{header}
	for _, p := range f.Points {
		row := []string{p.Label}
		for _, c := range f.Columns {
			row = append(row, fmt.Sprintf("%.2f", p.Seconds[c]))
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)

	// Mode figures get the headline improvement columns the paper quotes.
	if hasColumns(f, "hadoop", "dplus") || hasColumns(f, "uber", "uplus") {
		fmt.Fprintln(&b, "improvements:")
		impRows := [][]string{{f.XLabel, "D+ vs hadoop", "U+ vs uber", "best vs hadoop"}}
		for i, p := range f.Points {
			row := []string{p.Label}
			if hasColumns(f, "hadoop", "dplus") {
				row = append(row, fmt.Sprintf("%.1f%%", f.Improvement(i, "hadoop", "dplus")))
			} else {
				row = append(row, "-")
			}
			if hasColumns(f, "uber", "uplus") {
				row = append(row, fmt.Sprintf("%.1f%%", f.Improvement(i, "uber", "uplus")))
			} else {
				row = append(row, "-")
			}
			if hasColumns(f, "hadoop", "dplus", "uplus") {
				best := f.Get(i, "dplus")
				if u := f.Get(i, "uplus"); u < best {
					best = u
				}
				h := f.Get(i, "hadoop")
				row = append(row, fmt.Sprintf("%.1f%%", (h-best)/h*100))
			} else {
				row = append(row, "-")
			}
			impRows = append(impRows, row)
		}
		writeAligned(&b, impRows)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	fmt.Fprintln(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func hasColumns(f *Figure, names ...string) bool {
	for _, n := range names {
		found := false
		for _, c := range f.Columns {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// writeAligned renders rows with columns padded to equal width.
func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}
