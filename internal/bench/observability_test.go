package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"mrapid/internal/report"
	"mrapid/internal/trace"
	"mrapid/internal/workloads"
)

// tracedRun executes one small observed WordCount under a variant and
// returns the trace, the root span, and the job's elapsed virtual nanos.
func tracedRun(t *testing.T, v Variant) (*trace.Log, trace.SpanID, int64) {
	t.Helper()
	setup := A3x4()
	env, err := NewEnv(setup, v)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, _ := env.EnableObservability(1 << 14)
	names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/obs", workloads.WordCountConfig{
		Files: 2, FileBytes: 2 << 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := workloads.WordCountSpec("wordcount-obs", names, "/out/obs", false)
	res, err := env.Run(v, spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res.Profile.Span, int64(res.Profile.Elapsed())
}

// TestReportSumsToJobElapsed is the PR's acceptance gate: for every
// execution mode, a single traced run yields a span tree whose analyzer
// report partitions the job's wall-clock virtual time exactly — phase
// durations sum to the profiler's elapsed time with zero error.
func TestReportSumsToJobElapsed(t *testing.T) {
	for _, v := range StandardVariants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			tr, root, elapsed := tracedRun(t, v)
			if root == 0 {
				t.Fatal("job profile has no root span")
			}
			rep, err := report.Analyze(tr, root)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalNanos != elapsed {
				t.Fatalf("report window %d ns != job elapsed %d ns", rep.TotalNanos, elapsed)
			}
			var sum int64
			for _, p := range rep.Phases {
				sum += p.Nanos
			}
			if sum != rep.TotalNanos {
				t.Fatalf("phase sum %d != total %d (report: %+v)", sum, rep.TotalNanos, rep.Phases)
			}
			if rep.Open != 0 {
				t.Fatalf("%d spans left open on a clean run", rep.Open)
			}
		})
	}
}

// TestTraceCoversLifecycle asserts the span tree records the full job
// lifecycle the issue names: AM allocation, container scheduling and
// launch, and the map/shuffle/reduce sub-phases.
func TestTraceCoversLifecycle(t *testing.T) {
	tr, root, _ := tracedRun(t, VariantHadoop())
	phases := map[string]int{}
	names := map[string]bool{}
	for _, s := range tr.Subtree(root) {
		phases[s.Phase]++
		names[s.Name] = true
	}
	for _, want := range []string{"submit", "am", "schedule", "launch", "map", "shuffle", "commit", "reduce", "notify"} {
		if phases[want] == 0 {
			t.Errorf("no %q spans in the job tree (phases: %v)", want, phases)
		}
	}
	for _, want := range []string{"am-startup", "map-0", "read", "compute", "reduce-0", "poll wait"} {
		if !names[want] {
			t.Errorf("no %q span in the job tree", want)
		}
	}
	// The pooled D+ path must mark its AM phase as a pool hit instead.
	trD, rootD, _ := tracedRun(t, VariantDPlus())
	foundDispatch := false
	for _, s := range trD.Subtree(rootD) {
		if s.Name == "am-dispatch" {
			foundDispatch = true
			for _, a := range s.Attrs {
				if a.Key == "pool_hit" && a.Value != "true" {
					t.Errorf("am-dispatch pool_hit = %q", a.Value)
				}
			}
		}
	}
	if !foundDispatch {
		t.Error("D+ run has no am-dispatch span")
	}
}

// exportAll renders every observability artifact of one traced run to
// bytes: the Chrome trace, the JSON summary, and the text report.
func exportAll(t *testing.T, v Variant) []byte {
	t.Helper()
	setup := A3x4()
	env, err := NewEnv(setup, v)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, reg := env.EnableObservability(1 << 14)
	names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/det", workloads.WordCountConfig{
		Files: 2, FileBytes: 1 << 20, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := workloads.WordCountSpec("wordcount-det", names, "/out/det", false)
	res, err := env.Run(v, spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.Analyze(tr, res.Profile.Span)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteJSON(&b, rep, reg); err != nil {
		t.Fatal(err)
	}
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestObservabilityDeterministic runs the same seeded simulation twice and
// requires byte-identical trace, summary, and report output.
func TestObservabilityDeterministic(t *testing.T) {
	a := exportAll(t, VariantDPlus())
	b := exportAll(t, VariantDPlus())
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs exported different observability bytes")
	}
}

// TestChromeExportOfRealRunIsValid loads a real run's Chrome export and
// checks the event stream is well-formed and covers the lifecycle.
func TestChromeExportOfRealRunIsValid(t *testing.T) {
	setup := A3x4()
	v := VariantUPlus()
	env, err := NewEnv(setup, v)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, _ := env.EnableObservability(1 << 14)
	names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/cv", workloads.WordCountConfig{
		Files: 2, FileBytes: 1 << 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Run(v, workloads.WordCountSpec("wordcount-cv", names, "/out/cv", false)); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Phase string         `json:"ph"`
			Cat   string         `json:"cat"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	for _, e := range out.TraceEvents {
		if e.Phase == "X" {
			cats[e.Cat]++
		}
	}
	for _, want := range []string{"am", "map", "shuffle", "reduce"} {
		if cats[want] == 0 {
			t.Errorf("no complete events with cat %q (got %v)", want, cats)
		}
	}
}

// TestPhaseBreakdownFigure runs the registered "phases" experiment at a
// small scale and checks every mode's row partitions its total.
func TestPhaseBreakdownFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode sweep")
	}
	fig, err := PhaseBreakdown(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("points = %d, want 5 modes", len(fig.Points))
	}
	for _, p := range fig.Points {
		total := p.Seconds["total"]
		if total <= 0 {
			t.Fatalf("%s: total = %v", p.Label, total)
		}
		var sum float64
		for _, c := range phaseColumns {
			if c != "total" {
				sum += p.Seconds[c]
			}
		}
		if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: phase sum %v != total %v", p.Label, sum, total)
		}
	}
}
