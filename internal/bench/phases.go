package bench

import (
	"fmt"

	"mrapid/internal/core"
	"mrapid/internal/report"
	"mrapid/internal/trace"
	"mrapid/internal/workloads"
)

// phaseColumns are the breakdown columns of the phases experiment, in
// pipeline order, plus the job total.
var phaseColumns = []string{
	"submit", "am", "schedule", "launch", "map", "shuffle", "commit",
	"reduce", "notify", "other", "total",
}

// runPhases runs one traced WordCount (4×10 MB, A3×4) under a variant and
// returns the critical-path analyzer's phase attribution.
func runPhases(v Variant, speculative bool, o Options) (*report.Report, error) {
	setup := A3x4()
	setup.Params.UberCacheBytes = int64(float64(setup.Params.UberCacheBytes) * o.Scale)
	setup = o.applyTo(setup)
	env, err := NewEnv(setup, v)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	tr, _ := env.EnableObservability(1 << 16)
	names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/ph", workloads.WordCountConfig{
		Files: 4, FileBytes: o.bytes(10 * mb), Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	spec := workloads.WordCountSpec("wordcount-phases", names, "/out/ph", false)

	var root trace.SpanID
	if speculative {
		var res *core.SpecResult
		env.Eng.After(0, func() {
			env.FW.SubmitSpeculative(spec, func(r *core.SpecResult) { res = r })
		})
		env.Eng.RunUntil(horizon)
		if res == nil {
			return nil, fmt.Errorf("bench: speculative phases job hung")
		}
		if res.Result.Err != nil {
			return nil, res.Result.Err
		}
		env.RM.Stop()
		root = res.Span
	} else {
		res, err := env.Run(v, spec)
		if err != nil {
			return nil, err
		}
		root = res.Profile.Span
	}
	return report.Analyze(tr, root)
}

// PhaseBreakdown reproduces the paper's motivating observation — where a
// short job's time actually goes — as one analyzer report per execution
// mode. Each row is a mode, each column a phase's seconds; rows sum (with
// "other") to the job total, so the table shows exactly which phases each
// MRapid optimization removes.
func PhaseBreakdown(o Options) (*Figure, error) {
	o = o.normalized()
	type row struct {
		name        string
		v           Variant
		speculative bool
	}
	stock := VariantHadoop()
	stock.Name = "stock"
	rows := []row{
		{"stock", stock, false},
		{"uber", VariantUber(), false},
		{"dplus", VariantDPlus(), false},
		{"uplus", VariantUPlus(), false},
		{"speculative", VariantDPlus(), true},
	}
	fig := &Figure{
		ID: "phases", Title: "Phase attribution per mode (WordCount, 4×10 MB, A3×4)",
		XLabel: "mode", Columns: phaseColumns,
	}
	for i, r := range rows {
		rep, err := runPhases(r.v, r.speculative, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		secs := make(map[string]float64, len(phaseColumns))
		for _, c := range phaseColumns {
			secs[c] = 0
		}
		for _, p := range rep.Phases {
			secs[p.Phase] = p.Seconds
		}
		secs["total"] = rep.Total
		fig.Points = append(fig.Points, Point{X: float64(i), Label: r.name, Seconds: secs})
		fig.Notes = append(fig.Notes, rep.Headline())
	}
	return fig, nil
}
