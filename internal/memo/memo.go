// Package memo is the cluster-wide, cross-job memoization cache: a
// digest-keyed map from (job-spec fingerprint × input write-generation
// digest) to the job's committed output bytes. MRapid's U+ cache memoizes
// map outputs *within* one job; this cache closes the loop *across* jobs —
// a repeat submission of an identical computation over unchanged inputs is
// answered from the cache and never launches an AM or a single container.
//
// Entries live in two tiers. The memory tier models the cache service's own
// replicated RAM: always readable, bounded by Config.MemBytes. Overflow is
// demoted to the disk tier — a single unreplicated copy on one worker's
// local disk, recorded as (node, boot epoch) exactly like intra-query
// intermediates — and is lost when that node dies or reboots; a lookup then
// fails with ErrEntryLost and the caller falls through to normal execution.
//
// Eviction is cost-aware, not LRU: the victim is the entry with the lowest
// recomputation-cost-per-byte (measured job seconds over output bytes), so
// the cache preferentially keeps outputs that are expensive to regenerate
// and cheap to hold — the survey's "benefit density" policy, priced with
// the job's own measured runtime rather than a model guess.
//
// All methods run on the engine goroutine; the mutex only guards the
// counters' visibility to host-side test goroutines under -race.
package memo

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"mrapid/internal/metrics"
	"mrapid/internal/topology"
)

// ErrMiss reports that no usable entry exists for the key; the caller runs
// the job normally and commits the result.
var ErrMiss = errors.New("memo: no entry")

// ErrEntryLost reports that the entry's backing disk node died or rebooted
// since the commit: the key matched and the inputs are unchanged, but the
// bytes are gone. The entry is dropped and the caller falls through to
// normal execution — the fault-tolerance contract of satellite disk tiers.
var ErrEntryLost = errors.New("memo: cached output lost with its disk node")

// Config sizes a Cache; zero fields fall back to the defaults the
// costmodel's MemoMemBytes / MemoDiskBytes knobs carry.
type Config struct {
	MemBytes  int64
	DiskBytes int64
}

// entry is one memoized job output.
type entry struct {
	key    string
	digest uint64
	parts  [][]byte
	bytes  int64
	cost   float64 // measured recomputation cost, virtual seconds

	inMemory bool
	node     *topology.Node // disk-tier holder (nil while in memory)
	epoch    int            // holder's boot epoch at demotion time
	seq      int64          // insertion order, the deterministic tie-break
}

// costPerByte is the eviction priority: cheapest recomputation per cached
// byte goes first. Empty outputs are free to hold and never selected.
func (e *entry) costPerByte() float64 {
	if e.bytes == 0 {
		return 0
	}
	return e.cost / float64(e.bytes)
}

// available reports whether the entry's bytes are still readable.
func (e *entry) available() bool {
	return e.inMemory || e.node.AliveEpoch(e.epoch)
}

// Hit is a successful lookup: the cached output and where it resides, so
// the materializer can price the read (free from the memory tier, a disk
// read from the holder otherwise).
type Hit struct {
	Parts    [][]byte
	Bytes    int64
	InMemory bool
	Node     *topology.Node // disk-tier holder; nil for memory-tier hits
	Cost     float64        // the recomputation seconds the hit just saved
}

// Cache is the cluster-wide memoization service.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	workers []*topology.Node
	entries map[string]*entry
	memUsed int64
	dskUsed int64
	seq     int64

	hits, misses, invalidations, evictions, lost int64

	mHits, mMisses, mInval, mEvict, mLost metrics.Counter
}

// New builds an empty cache over the cluster's workers (the disk-tier
// placement domain). reg may be nil; the counters then stay internal.
func New(reg *metrics.Registry, workers []*topology.Node, cfg Config) *Cache {
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 256 << 20
	}
	if cfg.DiskBytes <= 0 {
		cfg.DiskBytes = 1 << 30
	}
	return &Cache{
		cfg:     cfg,
		workers: workers,
		entries: make(map[string]*entry),
		mHits:   reg.CounterHandle("memo_hits_total"),
		mMisses: reg.CounterHandle("memo_misses_total"),
		mInval:  reg.CounterHandle("memo_invalidations_total"),
		mEvict:  reg.CounterHandle("memo_evictions_total"),
		mLost:   reg.CounterHandle("memo_lost_total"),
	}
}

// Lookup resolves a key against the current input digest. Exactly one of
// hits/misses advances per call; invalidations (digest moved — an input
// block was rewritten) and losses (disk node died) additionally advance
// their own counters and drop the dead entry before reporting the miss.
func (c *Cache) Lookup(key string, digest uint64) (*Hit, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return nil, ErrMiss
	}
	if e.digest != digest {
		c.drop(e)
		c.invalidations++
		c.mInval.Inc()
		c.misses++
		c.mMisses.Inc()
		return nil, fmt.Errorf("%w (input generation moved)", ErrMiss)
	}
	if !e.available() {
		c.drop(e)
		c.lost++
		c.mLost.Inc()
		c.misses++
		c.mMisses.Inc()
		return nil, ErrEntryLost
	}
	c.hits++
	c.mHits.Inc()
	return &Hit{Parts: e.parts, Bytes: e.bytes, InMemory: e.inMemory, Node: e.node, Cost: e.cost}, nil
}

// Commit stores a finished job's output under its cache identity,
// replacing any stale entry for the key. costSeconds is the measured
// completion time — the recomputation this entry will save, and the
// numerator of its eviction priority. Outputs too large for even the disk
// budget are not cached.
func (c *Cache) Commit(key string, digest uint64, parts [][]byte, costSeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.drop(old)
	}
	var bytes int64
	copied := make([][]byte, len(parts))
	for i, p := range parts {
		// Snapshot the bytes: HDFS blocks and store entries are shared
		// immutable views, but the output file itself may be deleted and
		// rewritten while the cache still serves this entry.
		copied[i] = append([]byte(nil), p...)
		bytes += int64(len(p))
	}
	if bytes > c.cfg.MemBytes && bytes > c.cfg.DiskBytes {
		return
	}
	c.seq++
	e := &entry{
		key: key, digest: digest, parts: copied, bytes: bytes,
		cost: costSeconds, inMemory: true, seq: c.seq,
	}
	c.entries[key] = e
	c.memUsed += bytes
	c.rebalance()
}

// drop removes an entry and refunds its tier budget. Caller holds the lock.
func (c *Cache) drop(e *entry) {
	if e.inMemory {
		c.memUsed -= e.bytes
	} else {
		c.dskUsed -= e.bytes
	}
	delete(c.entries, e.key)
}

// victims returns the entries of one tier ordered by eviction priority:
// lowest cost-per-byte first, insertion order as the deterministic
// tie-break. Caller holds the lock.
func (c *Cache) victims(inMemory bool) []*entry {
	var out []*entry
	for _, e := range c.entries {
		if e.inMemory == inMemory {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].costPerByte(), out[j].costPerByte()
		if ci != cj {
			return ci < cj
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// rebalance restores both tier budgets: memory overflow demotes the
// cheapest-to-recompute entries to a worker disk (or evicts them when no
// live worker can take the copy), disk overflow evicts outright. Caller
// holds the lock.
func (c *Cache) rebalance() {
	if c.memUsed > c.cfg.MemBytes {
		for _, e := range c.victims(true) {
			if c.memUsed <= c.cfg.MemBytes {
				break
			}
			c.memUsed -= e.bytes
			if n := c.diskNodeFor(e.key); n != nil && e.bytes <= c.cfg.DiskBytes {
				e.inMemory, e.node, e.epoch = false, n, n.Epoch()
				c.dskUsed += e.bytes
			} else {
				delete(c.entries, e.key)
				c.evictions++
				c.mEvict.Inc()
			}
		}
	}
	if c.dskUsed > c.cfg.DiskBytes {
		for _, e := range c.victims(false) {
			if c.dskUsed <= c.cfg.DiskBytes {
				break
			}
			c.drop(e)
			c.evictions++
			c.mEvict.Inc()
		}
	}
}

// diskNodeFor picks the disk-tier holder for a key: a deterministic hash
// over the live workers, so identical runs place identical copies.
func (c *Cache) diskNodeFor(key string) *topology.Node {
	var live []*topology.Node
	for _, n := range c.workers {
		if n.Alive() {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return live[h.Sum64()%uint64(len(live))]
}

// Stats is a snapshot of the cache's counters and residency, the raw
// material of the bench tables and the dashboard's hit-rate row.
type Stats struct {
	Hits, Misses, Invalidations, Evictions, Lost int64
	Entries                                      int
	MemBytes, DiskBytes                          int64
}

// Snapshot reads the cache state. Safe to call from any goroutine.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations,
		Evictions: c.evictions, Lost: c.lost,
		Entries: len(c.entries), MemBytes: c.memUsed, DiskBytes: c.dskUsed,
	}
}
