package memo

import (
	"errors"
	"testing"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func testWorkers(t *testing.T, n int) []*topology.Node {
	t.Helper()
	eng := sim.NewEngine()
	c, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: n, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c.Workers()
}

func parts(sizes ...int) [][]byte {
	out := make([][]byte, len(sizes))
	for i, n := range sizes {
		p := make([]byte, n)
		for j := range p {
			p[j] = byte(i + 1)
		}
		out[i] = p
	}
	return out
}

func TestLookupCommitInvalidation(t *testing.T) {
	reg := metrics.New()
	c := New(reg, testWorkers(t, 4), Config{MemBytes: 1 << 20, DiskBytes: 1 << 20})

	if _, err := c.Lookup("k", 1); !errors.Is(err, ErrMiss) {
		t.Fatalf("empty cache lookup: %v, want ErrMiss", err)
	}
	c.Commit("k", 1, parts(100, 50), 3.5)
	hit, err := c.Lookup("k", 1)
	if err != nil {
		t.Fatalf("lookup after commit: %v", err)
	}
	if len(hit.Parts) != 2 || len(hit.Parts[0]) != 100 || len(hit.Parts[1]) != 50 {
		t.Fatalf("hit parts wrong: %d pieces", len(hit.Parts))
	}
	if !hit.InMemory || hit.Bytes != 150 || hit.Cost != 3.5 {
		t.Fatalf("hit metadata wrong: %+v", hit)
	}

	// A moved input digest is an invalidation: the stale entry must be
	// dropped (not served, not retained) and the lookup must miss.
	if _, err := c.Lookup("k", 2); !errors.Is(err, ErrMiss) {
		t.Fatalf("stale-digest lookup: %v, want ErrMiss", err)
	}
	if _, err := c.Lookup("k", 1); !errors.Is(err, ErrMiss) {
		t.Fatal("invalidated entry was retained")
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 3 || s.Invalidations != 1 || s.Entries != 0 {
		t.Fatalf("counters: %+v", s)
	}
	if reg.Get("memo_hits_total") != 1 || reg.Get("memo_misses_total") != 3 || reg.Get("memo_invalidations_total") != 1 {
		t.Fatal("registry counters disagree with snapshot")
	}

	// Committed bytes are snapshots: mutating the caller's slice afterwards
	// must not reach the cache.
	src := parts(4)
	c.Commit("snap", 9, src, 1)
	src[0][0] = 0xFF
	hit, err = c.Lookup("snap", 9)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Parts[0][0] == 0xFF {
		t.Fatal("cache aliased the caller's bytes")
	}
}

func TestCostAwareEviction(t *testing.T) {
	c := New(nil, testWorkers(t, 4), Config{MemBytes: 250, DiskBytes: 250})

	// Three 100-byte entries with very different recomputation costs. The
	// third commit overflows memory: a pure LRU would demote the oldest
	// ("expensive"), but the cost-aware policy must demote "cheap" — the
	// lowest cost-per-byte.
	c.Commit("expensive", 1, parts(100), 50)
	c.Commit("cheap", 1, parts(100), 0.1)
	c.Commit("mid", 1, parts(100), 10)
	he, _ := c.Lookup("expensive", 1)
	hc, _ := c.Lookup("cheap", 1)
	if he == nil || !he.InMemory {
		t.Fatalf("expensive entry should stay in memory: %+v", he)
	}
	if hc == nil || hc.InMemory || hc.Node == nil {
		t.Fatalf("cheap entry should have been demoted to a worker disk: %+v", hc)
	}

	// Flood the disk tier: the cheapest disk resident is evicted outright.
	c.Commit("flood1", 1, parts(100), 0.2)
	c.Commit("flood2", 1, parts(100), 0.3)
	if _, err := c.Lookup("cheap", 1); !errors.Is(err, ErrMiss) {
		t.Fatalf("cheapest disk entry survived the overflow: %v", err)
	}
	s := c.Snapshot()
	if s.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
	if s.MemBytes > 250 || s.DiskBytes > 250 {
		t.Fatalf("budgets exceeded after rebalance: %+v", s)
	}

	// An output larger than both budgets is simply not cached.
	c.Commit("huge", 1, parts(1000), 100)
	if _, err := c.Lookup("huge", 1); !errors.Is(err, ErrMiss) {
		t.Fatal("over-budget output was cached")
	}
}

// TestEntryLostWithDiskNode is the stale-entry chaos contract: a cached
// output whose backing disk node died (or rebooted — same epoch rule as
// intermediates) must fail the lookup with ErrEntryLost, drop the entry,
// and leave the caller to fall through to normal execution.
func TestEntryLostWithDiskNode(t *testing.T) {
	workers := testWorkers(t, 4)
	c := New(nil, workers, Config{MemBytes: 50, DiskBytes: 1 << 20})

	// 100 bytes > MemBytes, so the entry lands straight on a worker disk.
	c.Commit("k", 7, parts(100), 5)
	hit, err := c.Lookup("k", 7)
	if err != nil {
		t.Fatal(err)
	}
	if hit.InMemory || hit.Node == nil {
		t.Fatalf("entry should be disk-resident: %+v", hit)
	}

	hit.Node.Fail()
	if _, err := c.Lookup("k", 7); !errors.Is(err, ErrEntryLost) {
		t.Fatalf("lookup with dead holder: %v, want ErrEntryLost", err)
	}
	if _, err := c.Lookup("k", 7); !errors.Is(err, ErrMiss) {
		t.Fatal("lost entry was retained")
	}
	s := c.Snapshot()
	if s.Lost != 1 || s.Entries != 0 || s.DiskBytes != 0 {
		t.Fatalf("loss accounting wrong: %+v", s)
	}
	hit.Node.Restart()

	// Reboot between commit and lookup: the node is alive again but its
	// local disk state is a fresh epoch — the entry is still gone.
	c.Commit("k2", 7, parts(100), 5)
	h2, err := c.Lookup("k2", 7)
	if err != nil {
		t.Fatal(err)
	}
	h2.Node.Fail()
	h2.Node.Restart()
	if _, err := c.Lookup("k2", 7); !errors.Is(err, ErrEntryLost) {
		t.Fatalf("lookup after holder reboot: %v, want ErrEntryLost", err)
	}

	// With every worker down, memory overflow cannot demote — entries are
	// evicted rather than placed on dead disks.
	for _, n := range workers {
		n.Fail()
	}
	c.Commit("a", 1, parts(40), 1)
	c.Commit("b", 1, parts(40), 2)
	if _, err := c.Lookup("a", 1); !errors.Is(err, ErrMiss) {
		t.Fatal("entry was demoted onto a dead cluster")
	}
	if ha, _ := c.Lookup("b", 1); ha == nil || !ha.InMemory {
		t.Fatal("surviving entry should be the costlier one, in memory")
	}
}
