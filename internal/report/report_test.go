package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

func at(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

// buildTree lays out a synthetic job with known phase intervals:
//
//	root      [0, 10]
//	am        [0, 2]
//	schedule  [2, 2.5]
//	launch    [2.5, 3]
//	map       [3, 7]
//	shuffle   [6, 8]    (overlaps map 6–7: map wins by priority)
//	reduce    [8, 9.5]
//	notify    [9.5, 10]
func buildTree(t *testing.T) (*trace.Log, trace.SpanID) {
	t.Helper()
	eng := sim.NewEngine()
	l := trace.New(eng, 0)
	var root trace.SpanID
	add := func(s, e float64, component, name, phase string) {
		eng.After(time.Duration(e*float64(time.Second)), func() {
			l.SpanSince(root, component, name, phase, at(s))
		})
	}
	eng.After(0, func() {
		root = l.StartSpan(0, "job", "wordcount", "", trace.A("mode", "dplus"))
	})
	add(0, 2, "am", "am-startup", "am")
	add(2, 2.5, "rm", "alloc map-0", "schedule")
	add(2.5, 3, "nm/node-01", "launch map-0", "launch")
	add(3, 7, "task/node-01", "map-0", "map")
	add(6, 8, "task/node-02", "fetch map-0.p0", "shuffle")
	add(8, 9.5, "task/node-02", "reduce-0", "reduce")
	add(9.5, 10, "client", "poll wait", "notify")
	eng.After(10*time.Second, func() { l.EndSpan(root) })
	eng.Run()
	return l, root
}

func TestAnalyzePartitionsExactly(t *testing.T) {
	l, root := buildTree(t)
	rep, err := Analyze(l, root)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"am": 2, "schedule": 0.5, "launch": 0.5, "map": 4,
		"shuffle": 1, "reduce": 1.5, "notify": 0.5,
	}
	if len(rep.Phases) != len(want) {
		t.Fatalf("phases = %+v, want %d entries", rep.Phases, len(want))
	}
	var sum int64
	for _, p := range rep.Phases {
		if p.Seconds != want[p.Phase] {
			t.Errorf("%s = %vs, want %vs", p.Phase, p.Seconds, want[p.Phase])
		}
		sum += p.Nanos
	}
	if sum != rep.TotalNanos {
		t.Fatalf("phase sum %d != total %d", sum, rep.TotalNanos)
	}
	if rep.Total != 10 || rep.Mode != "dplus" || rep.Job != "wordcount" {
		t.Fatalf("report header = %+v", rep)
	}
	// Rendering order is the pipeline order.
	order := make([]string, len(rep.Phases))
	for i, p := range rep.Phases {
		order[i] = p.Phase
	}
	wantOrder := []string{"am", "schedule", "launch", "map", "shuffle", "reduce", "notify"}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", order, wantOrder)
		}
	}
}

func TestAnalyzeChargesGapsToOther(t *testing.T) {
	eng := sim.NewEngine()
	l := trace.New(eng, 0)
	var root trace.SpanID
	eng.After(0, func() { root = l.StartSpan(0, "job", "j", "") })
	eng.After(4*time.Second, func() {
		l.SpanSince(root, "task/n", "map-0", "map", at(1)) // [1,4]
	})
	eng.After(6*time.Second, func() { l.EndSpan(root) })
	eng.Run()
	rep, err := Analyze(l, root)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, p := range rep.Phases {
		got[p.Phase] = p.Seconds
	}
	// Uncovered [0,1] and [4,6] → 3 s of "other".
	if got["map"] != 3 || got[Other] != 3 {
		t.Fatalf("phases = %+v", rep.Phases)
	}
}

func TestAnalyzeOpenSpansChargeToNow(t *testing.T) {
	eng := sim.NewEngine()
	l := trace.New(eng, 0)
	var root trace.SpanID
	eng.After(0, func() {
		root = l.StartSpan(0, "job", "j", "")
		l.StartSpan(root, "task/n", "map-0", "map") // abandoned, never ends
	})
	eng.After(5*time.Second, func() {})
	eng.Run()
	rep, err := Analyze(l, root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Open != 2 || rep.Total != 5 {
		t.Fatalf("open=%d total=%v", rep.Open, rep.Total)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Phase != "map" || rep.Phases[0].Seconds != 5 {
		t.Fatalf("phases = %+v", rep.Phases)
	}
}

func TestAnalyzeUnknownRoot(t *testing.T) {
	eng := sim.NewEngine()
	l := trace.New(eng, 0)
	if _, err := Analyze(l, 7); err == nil {
		t.Fatal("expected error for unknown root span")
	}
}

func TestHeadlineAndRender(t *testing.T) {
	l, root := buildTree(t)
	rep, err := Analyze(l, root)
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Headline()
	if !strings.Contains(h, "wordcount (dplus) took 10.000s:") ||
		!strings.Contains(h, "2.000s am") || !strings.Contains(h, "4.000s map") {
		t.Fatalf("Headline = %q", h)
	}
	var b bytes.Buffer
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "map") || !strings.Contains(out, "40.0%") {
		t.Fatalf("Render = %q", out)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	l, root := buildTree(t)
	rep, err := Analyze(l, root)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	reg.Inc("yarn_allocations_total")
	reg.Define("d", metrics.DefaultDurationBuckets)
	reg.Observe("d", 0.5)
	var b bytes.Buffer
	if err := WriteJSON(&b, rep, reg); err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Report == nil || got.Report.TotalNanos != rep.TotalNanos {
		t.Fatalf("report lost in round trip: %+v", got.Report)
	}
	if got.Counters["yarn_allocations_total"] != 1 {
		t.Fatalf("counters = %+v", got.Counters)
	}
	if h := got.Histograms["d"]; h == nil || h.Count != 1 {
		t.Fatalf("histograms = %+v", got.Histograms)
	}
	// WriteJSON must tolerate a nil registry (trace-only runs).
	if err := WriteJSON(&bytes.Buffer{}, rep, nil); err != nil {
		t.Fatal(err)
	}
}
