// Package report is the critical-path analyzer: it walks a finished job's
// span tree (package trace) and attributes every instant of the job's wall
// clock to one phase — AM startup, scheduling waits, map, shuffle, commit,
// reduce, client notification — reproducing the paper's Figure 2-style
// breakdown for any run. Because the attribution partitions the root
// span's interval, the phase durations always sum exactly to the job's
// elapsed virtual time.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// Other labels time inside the job window not covered by any phase span:
// RPC round trips, AM heartbeat gaps, and similar protocol idle time.
const Other = "other"

// phasePriority decides which phase owns an instant when spans overlap
// (e.g. the shuffle running under a still-open map wave): later pipeline
// stages win, so overlap is charged to the stage that finishes the job.
var phasePriority = map[string]int{
	"reduce":   90,
	"map":      80,
	"shuffle":  70,
	"commit":   60,
	"launch":   50,
	"schedule": 40,
	"am":       30,
	"submit":   20,
	"notify":   10,
	Other:      0,
}

// phaseOrder is the canonical pipeline order for rendering.
var phaseOrder = []string{
	"submit", "am", "schedule", "launch", "map", "shuffle", "commit",
	"reduce", "notify", Other,
}

// PhaseDur is one row of the breakdown. Nanos is the exact virtual-time
// attribution; Seconds is its float rendering for human consumers.
type PhaseDur struct {
	Phase    string  `json:"phase"`
	Nanos    int64   `json:"nanos"`
	Seconds  float64 `json:"seconds"`
	Fraction float64 `json:"fraction"`

	dur sim.Time
}

// Report is a job's phase-attribution breakdown.
type Report struct {
	Job        string     `json:"job"`
	Mode       string     `json:"mode,omitempty"`
	Total      float64    `json:"total_seconds"`
	TotalNanos int64      `json:"total_nanos"`
	Phases     []PhaseDur `json:"phases"`
	Spans      int        `json:"spans"`
	Open       int        `json:"open_spans"` // spans abandoned by node deaths
	RootID     int        `json:"root_span"`
	start      sim.Time
	end        sim.Time
	totalNS    sim.Time
}

// TotalTime returns the analyzed window on the virtual clock.
func (r *Report) TotalTime() sim.Time { return r.totalNS }

// Analyze attributes the wall clock of the span tree rooted at root. The
// window is [root.Start, root.End] (an open root is charged to l.Now()).
func Analyze(l *trace.Log, root trace.SpanID) (*Report, error) {
	rs := l.Span(root)
	if rs == nil {
		return nil, fmt.Errorf("report: no span %d in trace", int(root))
	}
	now := l.Now()
	end := rs.End
	if !rs.Ended {
		end = now
	}
	rep := &Report{
		Job:     rs.Name,
		RootID:  int(root),
		start:   rs.Start,
		end:     end,
		totalNS: end - rs.Start,
	}
	for _, a := range rs.Attrs {
		if a.Key == "mode" {
			rep.Mode = a.Value
		}
	}

	// Collect the phase-carrying spans, clipped to the window.
	type interval struct {
		start, end sim.Time
		prio       int
		phase      string
	}
	var ivs []interval
	var bounds []sim.Time
	for _, s := range l.Subtree(root) {
		rep.Spans++
		if !s.Ended {
			rep.Open++
		}
		if s.Phase == "" {
			continue
		}
		st, en := s.Start, s.End
		if !s.Ended {
			en = now
		}
		if st < rs.Start {
			st = rs.Start
		}
		if en > end {
			en = end
		}
		if en <= st {
			continue
		}
		ivs = append(ivs, interval{start: st, end: en, prio: phasePriority[s.Phase], phase: s.Phase})
		bounds = append(bounds, st, en)
	}
	bounds = append(bounds, rs.Start, end)

	// Sweep the boundary instants: each elementary interval between two
	// consecutive boundaries belongs to exactly one phase (the open span
	// with the highest priority, or "other" when none is open), so the
	// per-phase sums partition the window exactly.
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	sums := map[string]sim.Time{}
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		best, bestPrio := Other, -1
		for _, iv := range ivs {
			if iv.start <= lo && hi <= iv.end && iv.prio > bestPrio {
				best, bestPrio = iv.phase, iv.prio
			}
		}
		sums[best] += hi - lo
	}

	for _, p := range phaseOrder {
		d, ok := sums[p]
		if !ok || d == 0 {
			continue
		}
		pd := PhaseDur{Phase: p, Nanos: int64(d), Seconds: d.Seconds(), dur: d}
		if rep.totalNS > 0 {
			pd.Fraction = float64(d) / float64(rep.totalNS)
		}
		rep.Phases = append(rep.Phases, pd)
	}
	rep.Total = rep.totalNS.Seconds()
	rep.TotalNanos = int64(rep.totalNS)
	return rep, nil
}

// Headline is the one-line summary: "wordcount (dplus) took 8.400s:
// 1.900s am, 0.700s schedule, 4.100s map, …".
func (r *Report) Headline() string {
	s := r.Job
	if r.Mode != "" {
		s += " (" + r.Mode + ")"
	}
	s += fmt.Sprintf(" took %s:", r.totalNS)
	for i, p := range r.Phases {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf(" %s %s", p.dur, p.Phase)
	}
	return s
}

// Render writes the human-readable breakdown.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, r.Headline()); err != nil {
		return err
	}
	for _, p := range r.Phases {
		if _, err := fmt.Fprintf(w, "  %-10s %12s  %5.1f%%\n", p.Phase, p.dur, p.Fraction*100); err != nil {
			return err
		}
	}
	if r.Open > 0 {
		if _, err := fmt.Fprintf(w, "  (%d of %d spans left open — abandoned by node deaths)\n", r.Open, r.Spans); err != nil {
			return err
		}
	}
	return nil
}

// SlowSpan is one row of the top-k slowest-phases table: a closed
// phase-carrying span and how long it ran on the virtual clock.
type SlowSpan struct {
	Component string  `json:"component"`
	Name      string  `json:"name"`
	Phase     string  `json:"phase"`
	Start     float64 `json:"start_seconds"`
	Seconds   float64 `json:"seconds"`
}

// TopSpans returns the k longest phase-carrying spans in the log, longest
// first (open spans are measured up to the current virtual instant). Ties
// break by start time then span order, so the table is deterministic. The
// flight-recorder dashboard renders this as its "slowest phases" table.
func TopSpans(l *trace.Log, k int) []SlowSpan {
	if l == nil || k <= 0 {
		return nil
	}
	now := l.Now()
	var out []SlowSpan
	for _, s := range l.Spans() {
		if s.Phase == "" {
			continue
		}
		d := s.Duration(now)
		if d <= 0 {
			continue
		}
		out = append(out, SlowSpan{
			Component: s.Component, Name: s.Name, Phase: s.Phase,
			Start: s.Start.Seconds(), Seconds: d.Seconds(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Start < out[j].Start
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Summary is the machine-readable JSON envelope: the phase report plus a
// snapshot of the metrics registry. Quantiles carries bucket-interpolated
// p50/p90/p99 per histogram (metrics.Histogram.Quantile), so consumers do
// not reimplement percentile math over the raw bucket counts.
type Summary struct {
	Report     *Report                       `json:"report,omitempty"`
	Counters   map[string]int64              `json:"counters,omitempty"`
	Histograms map[string]*metrics.Histogram `json:"histograms,omitempty"`
	Quantiles  map[string]map[string]float64 `json:"quantiles,omitempty"`
}

// WriteJSON serializes a summary. Either field may be nil. Output is
// deterministic: encoding/json sorts map keys.
func WriteJSON(w io.Writer, rep *Report, reg *metrics.Registry) error {
	hists := reg.Histograms()
	var quantiles map[string]map[string]float64
	if len(hists) > 0 {
		quantiles = make(map[string]map[string]float64, len(hists))
		for name, h := range hists {
			if h.Count == 0 {
				continue
			}
			quantiles[name] = map[string]float64{
				"p50": h.Quantile(0.50),
				"p90": h.Quantile(0.90),
				"p99": h.Quantile(0.99),
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(Summary{
		Report:     rep,
		Counters:   reg.Counters(),
		Histograms: hists,
		Quantiles:  quantiles,
	})
}
