package costmodel

import (
	"testing"
	"time"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestContainerStart(t *testing.T) {
	p := Default()
	if got := p.ContainerStart(); got != p.ContainerLaunch+p.JVMStart {
		t.Fatalf("ContainerStart = %v", got)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"NMHeartbeat", func(p *Params) { p.NMHeartbeat = 0 }},
		{"AMHeartbeat", func(p *Params) { p.AMHeartbeat = -time.Second }},
		{"SortBufferBytes", func(p *Params) { p.SortBufferBytes = 0 }},
		{"UberCacheBytes", func(p *Params) { p.UberCacheBytes = -1 }},
		{"SortCPUBytesPerSec", func(p *Params) { p.SortCPUBytesPerSec = 0 }},
		{"HDFSBlockBytes", func(p *Params) { p.HDFSBlockBytes = 0 }},
		{"Replication", func(p *Params) { p.Replication = 0 }},
		{"AMPoolSize", func(p *Params) { p.AMPoolSize = -1 }},
		{"SpeculationProfileWaves", func(p *Params) { p.SpeculationProfileWaves = 0 }},
	}
	for _, m := range mutations {
		p := Default()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %s not caught by Validate", m.name)
		} else if err.Error() == "" {
			t.Errorf("mutation %s produced empty error", m.name)
		}
	}
}

func TestUberCacheZeroAllowed(t *testing.T) {
	// A zero cache budget is the "stock Uber" ablation: everything spills.
	p := Default()
	p.UberCacheBytes = 0
	if err := p.Validate(); err != nil {
		t.Fatalf("zero UberCacheBytes should be valid: %v", err)
	}
}

func TestDefaultsMatchHadoop2(t *testing.T) {
	p := Default()
	if p.NMHeartbeat != time.Second {
		t.Errorf("NMHeartbeat = %v, want 1s (Hadoop 2 default)", p.NMHeartbeat)
	}
	if p.SortBufferBytes != 100<<20 {
		t.Errorf("SortBufferBytes = %d, want 100 MB (io.sort.mb)", p.SortBufferBytes)
	}
	if p.HDFSBlockBytes != 128<<20 {
		t.Errorf("HDFSBlockBytes = %d, want 128 MB", p.HDFSBlockBytes)
	}
	if p.Replication != 3 {
		t.Errorf("Replication = %d, want 3", p.Replication)
	}
	if p.AMPoolSize != 3 {
		t.Errorf("AMPoolSize = %d, want 3 (paper default)", p.AMPoolSize)
	}
}
