// Package costmodel centralizes every framework time constant charged to the
// virtual clock: heartbeat periods, container and JVM launch costs, RPC
// latencies, and the MapReduce runtime's buffer sizes. Workload compute
// rates live with the workloads; device (disk/NIC) rates live with the
// instance types. Keeping the knobs in one struct makes experiments and
// ablations explicit about what they vary.
package costmodel

import "time"

// Params is the set of framework cost constants for one simulation. The
// zero value is not useful; start from Default().
type Params struct {
	// NMHeartbeat is the NodeManager → ResourceManager heartbeat period
	// (yarn.resourcemanager.nodemanagers.heartbeat-interval-ms, default 1 s).
	// The stock scheduler can only hand out a node's resources when that
	// node's heartbeat arrives, which is the latency D+ removes.
	NMHeartbeat time.Duration

	// AMHeartbeat is the ApplicationMaster → ResourceManager allocate
	// heartbeat period. Stock Hadoop delivers allocations on the heartbeat
	// *after* the one carrying the request; D+ answers in the same beat.
	AMHeartbeat time.Duration

	// RPCLatency is the one-way latency of a direct RPC (client↔RM,
	// AM↔NM start-container, proxy↔AM).
	RPCLatency time.Duration

	// ContainerAllocate is the ResourceManager-side bookkeeping cost to
	// grant one container (small; the waiting dominates).
	ContainerAllocate time.Duration

	// ContainerLaunch is the NodeManager-side cost to localize and start a
	// container before the JVM boots (t^l's non-JVM half).
	ContainerLaunch time.Duration

	// JVMStart is the cost of starting a task JVM inside a fresh container.
	JVMStart time.Duration

	// AMInit is the ApplicationMaster's own initialization after its JVM is
	// up: parsing configuration, registering with the RM, computing splits.
	// The jar/configuration download from HDFS is charged separately as
	// real I/O.
	AMInit time.Duration

	// TaskCommit is the per-task cleanup/commit handshake with the AM.
	TaskCommit time.Duration

	// JobJarBytes and JobConfBytes are the sizes of the artifacts a client
	// uploads to HDFS at submission and every container localizes before
	// running (step 6 of the Hadoop submission flow).
	JobJarBytes  int64
	JobConfBytes int64

	// SortBufferBytes is io.sort.mb: the map-side in-memory sort buffer. A
	// map whose output exceeds it spills multiple times and pays a merge
	// pass (Eq. 1's s^o/d^o + s^o/d^i term).
	SortBufferBytes int64

	// UberCacheBytes is the U+ in-memory intermediate-data budget per job.
	// Below it, map outputs stay in memory and the reduce reads them for
	// free; above it, U+ degrades to spilling like the stock Uber mode
	// (the knee visible in the paper's Figure 7 at 160 MB total input).
	UberCacheBytes int64

	// SortCPUBytesPerSec is the CPU cost of sorting/serializing
	// intermediate data during spill and merge, charged on a core.
	SortCPUBytesPerSec float64

	// HDFSBlockBytes is the HDFS block size. The paper's short jobs use
	// one map per file, each file well under a block, so the default is
	// the Hadoop 2 default of 128 MB.
	HDFSBlockBytes int64

	// Replication is the HDFS replication factor (paper: "HDFS's default
	// replica is three").
	Replication int

	// AMPoolSize is the number of ApplicationMasters the submission
	// framework keeps reserved ("which is 3 by default").
	AMPoolSize int

	// ClientPollInterval is how often a stock Hadoop client polls the job
	// status (mapreduce.client.progressmonitor.pollinterval). A stock
	// submission only observes completion at the next poll tick; the MRapid
	// proxy notifies the client over a direct RPC instead, which is part of
	// the "reducing communication" contribution in the paper's Figures
	// 14–15 ablations.
	ClientPollInterval time.Duration

	// SpeculationProfileWaves is how many map waves the speculative
	// executor profiles before consulting the decision maker.
	SpeculationProfileWaves int

	// MaxTaskAttempts is how many times a failed task attempt is retried
	// before the job fails (mapreduce.map.maxattempts, default 4).
	MaxTaskAttempts int

	// NMLivenessInterval is how often the RM's liveness monitor scans for
	// NodeManagers that stopped heartbeating
	// (yarn.resourcemanager.nm.liveness-monitor.interval-ms).
	NMLivenessInterval time.Duration

	// NMExpiry is how long a NodeManager may stay silent before the RM
	// declares the node lost and reports its containers to their AMs
	// (yarn.nm.liveness-monitor.expiry-interval-ms; Hadoop defaults to 10
	// min — far longer than a short job — so the simulation uses a few
	// heartbeat periods to keep failure experiments in the same time scale
	// as the jobs).
	NMExpiry time.Duration

	// MaxAMAttempts bounds how many times the framework relaunches a job
	// whose ApplicationMaster was lost to node failure
	// (yarn.resourcemanager.am.max-attempts, default 2).
	MaxAMAttempts int

	// AMContainerMB and AMContainerVCores size the ApplicationMaster
	// container (yarn.app.mapreduce.am.resource.mb / .cpu-vcores). The AM
	// resource is a job-configuration constant, never derived from any
	// particular node's shape — deriving it from Workers()[0] breaks on
	// heterogeneous clusters.
	AMContainerMB     int
	AMContainerVCores int

	// ShuffleService enables the per-node shuffle service
	// (internal/shuffle): committed map outputs register with their node,
	// are merged and re-combined across tasks, and reducers issue one fetch
	// per (node, partition) instead of one per (map, partition). Off by
	// default — stock Hadoop (and the paper's measurements) shuffle per map.
	ShuffleService bool

	// ShuffleCodec names the codec the shuffle service compresses
	// consolidated partitions with before they cross the network: "" or
	// "none" for no compression, "lz" for an LZ-class splittable codec
	// modeled by ShuffleLZRatio and the instance type's compression rates
	// (mapreduce.map.output.compress).
	ShuffleCodec string

	// ShuffleLZRatio is the modeled compressed/raw size ratio of the "lz"
	// codec on shuffled key-value data. Snappy/LZ4-class codecs land near
	// half size on the text-heavy intermediate data of the paper's
	// workloads.
	ShuffleLZRatio float64

	// FlightRecorder enables the cluster flight recorder
	// (internal/flight): the simulation is sampled on the virtual clock
	// every FlightInterval into ring-buffered time-series — registry rates,
	// cluster gauges, per-tenant SLO burn rates — exportable as Prometheus
	// text, Chrome-trace counter lanes, and an HTML dashboard. Off by
	// default; sampling is read-only, so job outputs are byte-identical
	// either way.
	FlightRecorder bool

	// FlightInterval is the virtual-clock sampling period of the flight
	// recorder (zero means the 250 ms default).
	FlightInterval time.Duration

	// FlightRingCap bounds the samples retained per series (zero means the
	// 4096 default); beyond it the oldest samples fall off the ring.
	FlightRingCap int

	// MemoCache enables the cross-job memoization cache (internal/memo): a
	// repeat submission of an identical job spec over unchanged inputs
	// (same transform symbols, parameters, and input write generations) is
	// served from the cached output — no AM, no containers — under the
	// "memo" transport label. Off by default; the served bytes are the
	// committed output verbatim, so results are byte-identical either way.
	MemoCache bool

	// MemoMemBytes bounds the memoization cache's memory tier (the cache
	// service's replicated RAM, always readable); MemoDiskBytes bounds the
	// disk tier entries demote to (a single copy on one worker's local
	// disk, lost with the node). Zero means the 256 MB / 1 GB defaults.
	MemoMemBytes  int64
	MemoDiskBytes int64
}

// Default returns the calibrated baseline used by all experiments. Values
// follow Hadoop 2.2 defaults where one exists and 2013-era measurements
// otherwise.
func Default() Params {
	return Params{
		NMHeartbeat:             1000 * time.Millisecond,
		AMHeartbeat:             1000 * time.Millisecond,
		RPCLatency:              30 * time.Millisecond,
		ContainerAllocate:       20 * time.Millisecond,
		ContainerLaunch:         800 * time.Millisecond,
		JVMStart:                1700 * time.Millisecond,
		AMInit:                  1500 * time.Millisecond,
		TaskCommit:              100 * time.Millisecond,
		JobJarBytes:             2 << 20,   // 2 MB job jar
		JobConfBytes:            64 << 10,  // 64 KB configuration
		SortBufferBytes:         100 << 20, // io.sort.mb = 100
		UberCacheBytes:          128 << 20,
		SortCPUBytesPerSec:      120e6,
		HDFSBlockBytes:          128 << 20,
		Replication:             3,
		AMPoolSize:              3,
		ClientPollInterval:      1000 * time.Millisecond,
		SpeculationProfileWaves: 1,
		MaxTaskAttempts:         4,
		NMLivenessInterval:      1000 * time.Millisecond,
		NMExpiry:                5000 * time.Millisecond,
		MaxAMAttempts:           2,
		AMContainerMB:           1024,
		AMContainerVCores:       1,
		ShuffleService:          false,
		ShuffleCodec:            "none",
		ShuffleLZRatio:          0.55,
		FlightRecorder:          false,
		FlightInterval:          250 * time.Millisecond,
		FlightRingCap:           4096,
		MemoCache:               false,
		MemoMemBytes:            256 << 20,
		MemoDiskBytes:           1 << 30,
	}
}

// ContainerStart returns the full cost of bringing up a task in a fresh
// container: the launch plus the JVM boot (the paper's t^l).
func (p Params) ContainerStart() time.Duration {
	return p.ContainerLaunch + p.JVMStart
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.NMHeartbeat <= 0:
		return errBad("NMHeartbeat")
	case p.AMHeartbeat <= 0:
		return errBad("AMHeartbeat")
	case p.SortBufferBytes <= 0:
		return errBad("SortBufferBytes")
	case p.UberCacheBytes < 0:
		return errBad("UberCacheBytes")
	case p.SortCPUBytesPerSec <= 0:
		return errBad("SortCPUBytesPerSec")
	case p.HDFSBlockBytes <= 0:
		return errBad("HDFSBlockBytes")
	case p.Replication <= 0:
		return errBad("Replication")
	case p.AMPoolSize < 0:
		return errBad("AMPoolSize")
	case p.ClientPollInterval <= 0:
		return errBad("ClientPollInterval")
	case p.SpeculationProfileWaves <= 0:
		return errBad("SpeculationProfileWaves")
	case p.MaxTaskAttempts <= 0:
		return errBad("MaxTaskAttempts")
	case p.NMLivenessInterval <= 0:
		return errBad("NMLivenessInterval")
	case p.NMExpiry < p.NMHeartbeat:
		return errBad("NMExpiry") // would expire nodes between healthy heartbeats
	case p.MaxAMAttempts <= 0:
		return errBad("MaxAMAttempts")
	case p.AMContainerMB <= 0:
		return errBad("AMContainerMB")
	case p.AMContainerVCores <= 0:
		return errBad("AMContainerVCores")
	case p.ShuffleCodec != "" && p.ShuffleCodec != "none" && p.ShuffleCodec != "lz":
		return errBad("ShuffleCodec")
	case p.ShuffleCodec == "lz" && (p.ShuffleLZRatio <= 0 || p.ShuffleLZRatio > 1):
		return errBad("ShuffleLZRatio")
	case p.FlightInterval < 0:
		return errBad("FlightInterval")
	case p.FlightRingCap < 0:
		return errBad("FlightRingCap")
	case p.MemoMemBytes < 0:
		return errBad("MemoMemBytes")
	case p.MemoDiskBytes < 0:
		return errBad("MemoDiskBytes")
	}
	return nil
}

type errBad string

func (e errBad) Error() string { return "costmodel: invalid parameter " + string(e) }
