package shuffle

import (
	"fmt"
	"time"

	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
)

// Service is the per-node shuffle service. One Service instance covers the
// whole cluster (each node's state is keyed by the node), mirroring how one
// auxiliary shuffle handler runs inside every NodeManager. It implements
// mapreduce.ShuffleProvider; Attach wires it into a Runtime.
//
// All methods run on the engine goroutine, like every other simulated
// component; the metrics registry does its own locking.
type Service struct {
	rt    *mapreduce.Runtime
	codec Codec

	// registered counts live committed outputs per node (bookkeeping the
	// AMs maintain through Register/Forget; surfaced as a labeled gauge).
	registered map[*topology.Node]int

	// Consolidation totals. rawBytes/combinedBytes accumulate over every
	// consolidated group; combineRaw/combineOut only over groups whose job
	// had a combiner, which is what the estimator's measured combine ratio
	// must reflect.
	rawBytes      int64
	combinedBytes int64
	combineRaw    int64
	combineOut    int64

	// Transfer totals: post-combine bytes that crossed the network and
	// their on-the-wire (post-compress) size.
	sentRaw  int64
	sentWire int64

	// Pre-resolved gauge handles for the per-register and per-fetch paths.
	// Bound per registry — rt.Reg is assignable after Attach, so rebinding
	// is keyed on the field (see handles).
	gaugeSrc         *metrics.Registry
	regGauges        map[*topology.Node]metrics.Gauge
	combineSaved     metrics.Gauge
	combineReduction metrics.Gauge
	compressSaved    metrics.Gauge
	compressRatio    metrics.Gauge
}

// handles rebinds the service's gauge handles when the runtime's registry
// changed (or on first use).
func (s *Service) handles() {
	if s.gaugeSrc == s.rt.Reg && s.regGauges != nil {
		return
	}
	s.gaugeSrc = s.rt.Reg
	s.regGauges = make(map[*topology.Node]metrics.Gauge)
	s.combineSaved = s.rt.Reg.GaugeHandle("shuffle_combine_saved_bytes")
	s.combineReduction = s.rt.Reg.GaugeHandle("shuffle_combine_reduction_permille")
	s.compressSaved = s.rt.Reg.GaugeHandle("shuffle_compress_saved_bytes")
	s.compressRatio = s.rt.Reg.GaugeHandle("shuffle_compression_ratio_permille")
}

// registeredGauge returns the node-labeled registered-outputs gauge,
// binding it on first sight of the node.
func (s *Service) registeredGauge(n *topology.Node) metrics.Gauge {
	s.handles()
	g, ok := s.regGauges[n]
	if !ok {
		g = s.rt.Reg.GaugeHandle("shuffle_service_registered_outputs", "node", n.Name)
		s.regGauges[n] = g
	}
	return g
}

// Attach builds a Service from the runtime's configured codec and installs
// it as rt.Shuffle. It is how every opt-in site (bench, CLIs, tests)
// enables the service.
func Attach(rt *mapreduce.Runtime) (*Service, error) {
	codec, err := CodecFor(rt.Params)
	if err != nil {
		return nil, err
	}
	s := &Service{rt: rt, codec: codec, registered: make(map[*topology.Node]int)}
	rt.Shuffle = s
	return s, nil
}

// Codec reports the codec the service compresses consolidated partitions
// with.
func (s *Service) Codec() Codec { return s.codec }

// Register notes a committed map output with the service on its node.
func (s *Service) Register(spec *mapreduce.JobSpec, mo *mapreduce.MapOutput) {
	s.registered[mo.Node]++
	s.registeredGauge(mo.Node).Set(int64(s.registered[mo.Node]))
}

// Forget withdraws a registered output (lost with its node, or its job
// finished and the intermediate data is garbage).
func (s *Service) Forget(spec *mapreduce.JobSpec, mo *mapreduce.MapOutput) {
	if s.registered[mo.Node] > 0 {
		s.registered[mo.Node]--
	}
	s.registeredGauge(mo.Node).Set(int64(s.registered[mo.Node]))
}

// Registered reports how many committed outputs the service currently holds
// on node.
func (s *Service) Registered(node *topology.Node) int { return s.registered[node] }

// Consolidate merges one node's committed outputs into a single synthetic
// output (in-node combining when the job has a combiner) and folds the
// byte-reduction into the service's running stats and gauges.
func (s *Service) Consolidate(spec *mapreduce.JobSpec, group []*mapreduce.MapOutput) *mapreduce.Consolidated {
	c := mapreduce.ConsolidateGroup(spec, group)
	var raw int64
	for _, mo := range group {
		raw += mo.TotalBytes
	}
	s.rawBytes += raw
	s.combinedBytes += c.Out.TotalBytes
	if spec.Combine != nil {
		s.combineRaw += raw
		s.combineOut += c.Out.TotalBytes
	}
	if s.rawBytes > 0 {
		s.handles()
		saved := s.rawBytes - s.combinedBytes
		s.combineSaved.Set(saved)
		s.combineReduction.Set(saved * 1000 / s.rawBytes)
	}
	return c
}

// MeasuredCombineRatio is consolidated/raw bytes over combiner jobs so far
// (1 before any combiner traffic).
func (s *Service) MeasuredCombineRatio() float64 {
	if s.combineRaw == 0 {
		return 1
	}
	return float64(s.combineOut) / float64(s.combineRaw)
}

// WireRatio estimates post-combine, post-compress shuffled bytes per raw
// map-output byte: the codec's ratio times the combine reduction measured
// so far. Before the service has seen combiner traffic the combine factor
// is 1 — the estimator never guesses a reduction it has no evidence for.
func (s *Service) WireRatio(spec *mapreduce.JobSpec) float64 {
	r := s.codec.Ratio
	if spec.Combine != nil {
		r *= s.MeasuredCombineRatio()
	}
	return r
}

// Fetch moves one consolidated partition to dst. The cost model, phase by
// phase:
//
//   - the source node's service merges the members' sorted runs and
//     re-combines them (CPU over the raw member bytes, only when there is
//     more than one member), then compresses the consolidated partition —
//     charged as elapsed time on the node but not against a task core: the
//     shuffle handler is a NodeManager auxiliary daemon, not a container;
//   - spilled member bytes are read off the source disk (U+ in-memory
//     members cost nothing to pick up);
//   - the wire-sized bytes cross source NIC, destination NIC, and the core
//     switch when the nodes sit in different racks — all in parallel, like
//     FetchPartition;
//   - the destination decompresses before handing the bytes to the reducer.
//
// A same-node fetch skips the codec and the network entirely. Availability
// is re-checked when the transfer completes, so a source node dying
// mid-fetch still charges the devices but reports ErrOutputLost — the AM
// then reverts every member of the group through the PR-2 per-map recovery.
func (s *Service) Fetch(parent trace.SpanID, spec *mapreduce.JobSpec, c *mapreduce.Consolidated, part int, dst *topology.Node, done func(error)) {
	if done == nil {
		panic("shuffle: Fetch needs a completion callback")
	}
	rt := s.rt
	out := c.Out
	if !out.Available() {
		rt.Eng.After(rt.Params.RPCLatency, func() { done(mapreduce.ErrOutputLost) })
		return
	}
	combined := out.PartBytes[part]
	memberRaw := c.RawPartBytes(part)
	spilled := c.SpilledPartBytes(part)
	wire := s.codec.Wire(combined)
	transport := mapreduce.ShuffleTransport(out, dst)
	var span trace.SpanID
	if rt.Trace != nil {
		span = rt.Trace.StartSpan(parent, "task/"+dst.Name,
			fmt.Sprintf("fetch %s.p%d (%d maps)", out.Node.Name, part, len(c.Members)), "shuffle",
			trace.A("from", out.Node.Name),
			trace.A("maps", fmt.Sprint(len(c.Members))),
			trace.A("transport", transport),
			trace.A("raw_bytes", fmt.Sprint(memberRaw)),
			trace.A("bytes", fmt.Sprint(combined)),
			trace.A("wire_bytes", fmt.Sprint(wire)))
	}

	rt.AddShuffleInFlight(wire)
	finish := func(moved int64, err error) {
		rt.AddShuffleInFlight(-wire)
		if err != nil {
			if span != 0 {
				rt.Trace.EndSpan(span, trace.A("error", err.Error()))
			}
			done(err)
			return
		}
		if span != 0 {
			rt.Trace.EndSpan(span)
		}
		rt.ObserveShuffle("consolidated", transport, moved)
		done(nil)
	}

	// The cross-task merge happens once per consolidated partition on the
	// source, whatever the transport; it replaces reduce-side merge work
	// the per-map shuffle would have charged over the raw bytes.
	prep := time.Duration(0)
	if len(c.Members) > 1 {
		prep += time.Duration(float64(memberRaw) / (rt.Params.SortCPUBytesPerSec * out.Node.Type.CPUSpeed) * float64(time.Second))
	}

	if out.Node == dst {
		// Local pickup: spilled members come off the disk, in-memory ones
		// straight from the heap; no codec on a loopback transfer.
		rt.Eng.After(prep, func() {
			if spilled == 0 {
				if !out.Available() {
					finish(0, mapreduce.ErrOutputLost)
					return
				}
				finish(combined, nil)
				return
			}
			dst.Disk.Use(spilled, func() {
				if !out.Available() {
					finish(0, mapreduce.ErrOutputLost)
					return
				}
				finish(spilled, nil)
			})
		})
		return
	}

	prep += s.codec.CompressTime(combined, out.Node)
	rt.Eng.After(prep, func() {
		if !out.Available() {
			finish(0, mapreduce.ErrOutputLost)
			return
		}
		if wire == 0 {
			finish(0, nil)
			return
		}
		pending := 0
		dispatched := false
		complete := func() {
			pending--
			if pending > 0 || !dispatched {
				return
			}
			rt.Eng.After(s.codec.DecompressTime(combined, dst), func() {
				if !out.Available() {
					finish(0, mapreduce.ErrOutputLost)
					return
				}
				s.sentRaw += combined
				s.sentWire += wire
				if s.sentRaw > 0 {
					s.handles()
					s.compressSaved.Set(s.sentRaw - s.sentWire)
					s.compressRatio.Set(s.sentWire * 1000 / s.sentRaw)
				}
				finish(wire, nil)
			})
		}
		if spilled > 0 {
			pending++
			out.Node.Disk.Use(spilled, complete)
		}
		pending++
		out.Node.NIC.Use(wire, complete)
		pending++
		dst.NIC.Use(wire, complete)
		if out.Node.Rack != dst.Rack {
			pending++
			rt.Cluster.CoreSwitch.Use(wire, complete)
		}
		dispatched = true
	})
}
