package shuffle

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/workloads"
	"mrapid/internal/yarn"
)

// world is one fully wired simulation for the golden tests.
type world struct {
	rt  *mapreduce.Runtime
	svc *Service
	reg *metrics.Registry
}

// newWorld builds a 4-node A3 runtime; codec == "" leaves the service off.
func newWorld(t testing.TB, seed int64, hostWorkers int, attach bool, codec string) *world {
	t.Helper()
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := costmodel.Default()
	if attach {
		params.ShuffleService = true
		params.ShuffleCodec = codec
	}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, seed)
	// The D+ spreading scheduler places maps across nodes (the stock
	// scheduler packs them onto one), so consolidated fetches exercise the
	// network path, not just local pickup.
	rm := yarn.NewRM(eng, cluster, params, core.NewDPlusScheduler(core.FullDPlus()))
	rm.Start()
	rt := mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
	rt.Workers = hostWorkers
	rt.Reg = metrics.New()
	w := &world{rt: rt, reg: rt.Reg}
	if attach {
		svc, err := Attach(rt)
		if err != nil {
			t.Fatal(err)
		}
		w.svc = svc
	}
	t.Cleanup(rt.CloseWorkers)
	return w
}

// stageWC stages a 6×512 KB WordCount input and builds the combiner spec.
func stageWC(t testing.TB, w *world) *mapreduce.JobSpec {
	t.Helper()
	names, err := workloads.GenerateWordCountInput(w.rt.DFS, w.rt.Cluster, "/in/wc", workloads.WordCountConfig{
		Files: 6, FileBytes: 512 << 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return workloads.WordCountSpec("wc", names, "/out", true)
}

// runDistributed drives one distributed-mode job to completion and returns
// the result plus the single reduce partition's bytes.
func runDistributed(t testing.TB, w *world, spec *mapreduce.JobSpec, faults []mapreduce.NodeFault) (*mapreduce.Result, []byte) {
	t.Helper()
	if len(faults) > 0 {
		if err := w.rt.ScheduleNodeFaults(faults); err != nil {
			t.Fatal(err)
		}
	}
	var res *mapreduce.Result
	w.rt.Eng.After(0, func() {
		mapreduce.Submit(w.rt, spec, mapreduce.ModeDistributed, func(r *mapreduce.Result) { res = r })
	})
	w.rt.Eng.RunUntil(w.rt.Eng.Now().Add(600 * time.Second))
	w.rt.RM.Stop()
	if res == nil {
		t.Fatal("job did not finish")
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	out, err := w.rt.DFS.Contents(mapreduce.PartFileName(spec.OutputFile, 0))
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

// The golden determinism contract: attaching the service — with or without
// compression — must not change a single byte of job output, at any host
// worker count. Virtual completion time may differ (the service changes the
// cost model); within one configuration it must not depend on HostWorkers.
func TestGoldenOutputAcrossServiceAndWorkers(t *testing.T) {
	type cfg struct {
		name    string
		attach  bool
		codec   string
		workers int
	}
	cfgs := []cfg{
		{"off/seq", false, "", 0},
		{"off/par", false, "", 4},
		{"svc/seq", true, "none", 0},
		{"svc/par", true, "none", 4},
		{"lz/seq", true, "lz", 0},
		{"lz/par", true, "lz", 4},
	}
	var goldenOut []byte
	elapsed := map[string]float64{}
	for _, c := range cfgs {
		w := newWorld(t, 1, c.workers, c.attach, c.codec)
		res, out := runDistributed(t, w, stageWC(t, w), nil)
		if goldenOut == nil {
			goldenOut = out
		} else if !bytes.Equal(goldenOut, out) {
			t.Fatalf("%s: output diverged from baseline", c.name)
		}
		key := strings.Split(c.name, "/")[0]
		if prev, ok := elapsed[key]; ok && prev != res.Elapsed() {
			t.Fatalf("%s: elapsed %.6fs differs from same-config run %.6fs — HostWorkers leaked into the virtual timeline",
				c.name, res.Elapsed(), prev)
		}
		elapsed[key] = res.Elapsed()
	}
}

// Crashing a node mid-job under the service must fall back to per-map
// recovery (every member of the consolidated group re-executes) and still
// produce byte-identical output — the PR-2 chaos contract extended to
// consolidated fetches.
func TestGoldenOutputUnderNodeFault(t *testing.T) {
	clean := newWorld(t, 1, 0, true, "lz")
	cleanRes, cleanOut := runDistributed(t, clean, stageWC(t, clean), nil)
	mid := time.Duration(cleanRes.Elapsed()/2*float64(time.Second)) + time.Millisecond
	for _, fault := range []mapreduce.NodeFault{
		{Node: "node-02", At: mid},
		{Node: "node-03", At: mid, RestartAfter: 10 * time.Second},
	} {
		w := newWorld(t, 1, 0, true, "lz")
		res, out := runDistributed(t, w, stageWC(t, w), []mapreduce.NodeFault{fault})
		if !bytes.Equal(cleanOut, out) {
			t.Fatalf("output diverged after crashing %s at %s", fault.Node, fault.At)
		}
		// Completion is quantized by the 1 s client poll, so recovery may
		// hide inside the same poll window — but it can never be faster.
		if res.Elapsed() < cleanRes.Elapsed() {
			t.Errorf("faulty run (%.2fs) faster than clean run (%.2fs)", res.Elapsed(), cleanRes.Elapsed())
		}
	}
}

// sumCounters totals every series of a labeled counter family.
func sumCounters(reg *metrics.Registry, family string) int64 {
	var n int64
	for name, v := range reg.Counters() {
		if strings.HasPrefix(name, family+"{") {
			n += v
		}
	}
	return n
}

// The service's headline effect: one fetch per (node, partition) instead of
// per (map, partition), every one labeled kind=consolidated.
func TestConsolidatedFetchCount(t *testing.T) {
	off := newWorld(t, 1, 0, false, "")
	runDistributed(t, off, stageWC(t, off), nil)
	perMap := sumCounters(off.reg, "mapreduce_shuffle_fetch_total")

	on := newWorld(t, 1, 0, true, "none")
	runDistributed(t, on, stageWC(t, on), nil)
	consolidated := sumCounters(on.reg, "mapreduce_shuffle_fetch_total")

	if perMap != 6 { // one per map task × 1 reduce
		t.Errorf("per-map fetches = %d, want 6", perMap)
	}
	if consolidated >= perMap {
		t.Errorf("consolidated fetches %d not below per-map %d", consolidated, perMap)
	}
	if consolidated > 4 { // ≤ nodes × reduces
		t.Errorf("consolidated fetches %d exceed nodes×reduces = 4", consolidated)
	}
	for name := range on.reg.Counters() {
		if strings.HasPrefix(name, "mapreduce_shuffle_fetch_total{") && !strings.Contains(name, "kind=consolidated") {
			t.Errorf("service run recorded a non-consolidated fetch series %q", name)
		}
	}
}

// Consolidation stats feed the estimator: a combiner job's measured combine
// ratio drops below 1, the wire ratio compounds it with the codec, and a
// combinerless spec sees the codec ratio alone.
func TestWireRatioTracksMeasurements(t *testing.T) {
	w := newWorld(t, 1, 0, true, "lz")
	spec := stageWC(t, w)
	if got := w.svc.WireRatio(spec); got != w.svc.Codec().Ratio {
		t.Fatalf("pre-evidence WireRatio = %v, want codec ratio %v", got, w.svc.Codec().Ratio)
	}
	runDistributed(t, w, spec, nil)
	mcr := w.svc.MeasuredCombineRatio()
	if mcr <= 0 || mcr >= 1 {
		t.Fatalf("measured combine ratio = %v, want in (0, 1)", mcr)
	}
	want := w.svc.Codec().Ratio * mcr
	if got := w.svc.WireRatio(spec); got != want {
		t.Errorf("WireRatio = %v, want %v", got, want)
	}
	plain := *spec
	plain.Combine = nil
	if got := w.svc.WireRatio(&plain); got != w.svc.Codec().Ratio {
		t.Errorf("combinerless WireRatio = %v, want codec ratio %v", got, w.svc.Codec().Ratio)
	}
	if w.reg.Get("shuffle_combine_saved_bytes") <= 0 {
		t.Error("combine-saved gauge not set")
	}
	if r := w.reg.Get("shuffle_compression_ratio_permille"); r <= 0 || r > 1000 {
		t.Errorf("compression ratio gauge = %d permille", r)
	}
}

// Registered outputs drain back to zero when the job finishes: the AM
// forgets its intermediate data, exactly like the real shuffle handler
// garbage-collecting a completed application's spills.
func TestRegisteredOutputsDrain(t *testing.T) {
	w := newWorld(t, 1, 0, true, "none")
	runDistributed(t, w, stageWC(t, w), nil)
	for _, node := range w.rt.Cluster.Workers() {
		if n := w.svc.Registered(node); n != 0 {
			t.Errorf("%s still holds %d registered outputs after job completion", node.Name, n)
		}
	}
}

// The U+ cache path consolidates too: a framework-less cold U+ run with the
// service attached produces output byte-identical to the service-off run.
func TestUPlusGoldenOutput(t *testing.T) {
	outs := map[string][]byte{}
	for _, attach := range []bool{false, true} {
		w := newWorld(t, 1, 0, attach, "lz")
		spec := stageWC(t, w)
		var res *mapreduce.Result
		w.rt.Eng.After(0, func() {
			core.SubmitUPlusCold(w.rt, spec, core.FullUPlus(), func(r *mapreduce.Result) { res = r })
		})
		w.rt.Eng.RunUntil(w.rt.Eng.Now().Add(600 * time.Second))
		w.rt.RM.Stop()
		if res == nil || res.Err != nil {
			t.Fatalf("attach=%v: U+ job failed: %+v", attach, res)
		}
		out, err := w.rt.DFS.Contents(mapreduce.PartFileName(spec.OutputFile, 0))
		if err != nil {
			t.Fatal(err)
		}
		key := "off"
		if attach {
			key = "on"
		}
		outs[key] = out
	}
	if !bytes.Equal(outs["off"], outs["on"]) {
		t.Fatal("U+ output diverged with the service attached")
	}
}
