package shuffle

import (
	"testing"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func TestCodecFor(t *testing.T) {
	p := costmodel.Default()
	for _, name := range []string{"", "none"} {
		p.ShuffleCodec = name
		c, err := CodecFor(p)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if c.Enabled() || c.Ratio != 1 {
			t.Fatalf("%q resolved to %+v", name, c)
		}
	}
	p.ShuffleCodec = "lz"
	c, err := CodecFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() || c.Ratio != p.ShuffleLZRatio {
		t.Fatalf("lz resolved to %+v", c)
	}
	p.ShuffleLZRatio = 1.5
	if _, err := CodecFor(p); err == nil {
		t.Error("ratio > 1 accepted")
	}
	p.ShuffleLZRatio = 0
	if _, err := CodecFor(p); err == nil {
		t.Error("zero ratio accepted")
	}
	p = costmodel.Default()
	p.ShuffleCodec = "snappy"
	if _, err := CodecFor(p); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestCodecWire(t *testing.T) {
	none := Codec{Name: "none", Ratio: 1}
	if got := none.Wire(1000); got != 1000 {
		t.Errorf("none.Wire(1000) = %d", got)
	}
	lz := Codec{Name: "lz", Ratio: 0.5}
	if got := lz.Wire(1000); got != 500 {
		t.Errorf("lz.Wire(1000) = %d", got)
	}
	// A non-empty partition never compresses to nothing.
	if got := lz.Wire(1); got != 1 {
		t.Errorf("lz.Wire(1) = %d", got)
	}
	if got := lz.Wire(0); got != 0 {
		t.Errorf("lz.Wire(0) = %d", got)
	}
}

func TestCodecTimes(t *testing.T) {
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 2, Racks: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := cluster.Workers()[0]
	lz := Codec{Name: "lz", Ratio: 0.55}
	n := int64(10 << 20)
	wantC := time.Duration(float64(n) / (node.Type.CompressBps * node.Type.CPUSpeed) * float64(time.Second))
	if got := lz.CompressTime(n, node); got != wantC {
		t.Errorf("CompressTime = %v, want %v", got, wantC)
	}
	wantD := time.Duration(float64(n) / (node.Type.DecompressBps * node.Type.CPUSpeed) * float64(time.Second))
	if got := lz.DecompressTime(n, node); got != wantD {
		t.Errorf("DecompressTime = %v, want %v", got, wantD)
	}
	if wantD >= wantC {
		t.Errorf("decompression (%v) not faster than compression (%v)", wantD, wantC)
	}
	none := Codec{Name: "none", Ratio: 1}
	if none.CompressTime(n, node) != 0 || none.DecompressTime(n, node) != 0 {
		t.Error("disabled codec charged CPU time")
	}
}
