// Package shuffle implements the per-node shuffle service: every committed
// map output registers with the service on its node, the service merges and
// re-combines the registered partitions across tasks (the in-node combiner —
// applied only when the job has a combiner), optionally compresses each
// consolidated partition through a pluggable codec model, and serves one
// fetch per (node, partition) instead of one per (map, partition). The
// reduction matters exactly where Equation 1 says it does: the shuffle term
// charges s^o · n^c over the network, and short jobs with many small maps
// pay it once per map without the service.
package shuffle

import (
	"fmt"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/topology"
)

// Codec models an intermediate-data compression codec by a size ratio and
// per-core throughput rates. Only the ratio lives here; the rates come from
// the instance type, because codec speed is a property of the hardware the
// service runs on.
type Codec struct {
	// Name is "none" or "lz".
	Name string

	// Ratio is wire bytes per raw byte: 1 for "none", ShuffleLZRatio for
	// "lz".
	Ratio float64
}

// CodecFor resolves the codec configured in the cost-model parameters.
func CodecFor(p costmodel.Params) (Codec, error) {
	switch p.ShuffleCodec {
	case "", "none":
		return Codec{Name: "none", Ratio: 1}, nil
	case "lz":
		if p.ShuffleLZRatio <= 0 || p.ShuffleLZRatio > 1 {
			return Codec{}, fmt.Errorf("shuffle: ShuffleLZRatio %v outside (0, 1]", p.ShuffleLZRatio)
		}
		return Codec{Name: "lz", Ratio: p.ShuffleLZRatio}, nil
	default:
		return Codec{}, fmt.Errorf("shuffle: unknown codec %q (want none or lz)", p.ShuffleCodec)
	}
}

// Enabled reports whether the codec actually transforms bytes.
func (c Codec) Enabled() bool { return c.Name != "none" && c.Ratio < 1 }

// Wire returns the on-the-wire size of n raw bytes. Compressing never
// rounds a non-empty partition down to nothing (the codec framing alone is
// at least a byte).
func (c Codec) Wire(n int64) int64 {
	if !c.Enabled() || n <= 0 {
		return n
	}
	w := int64(float64(n) * c.Ratio)
	if w < 1 {
		w = 1
	}
	return w
}

// CompressTime is the CPU time to compress n raw bytes on one of node's
// cores. A zero CompressBps rate keeps the size reduction but charges no
// CPU (a "free codec" ablation).
func (c Codec) CompressTime(n int64, node *topology.Node) time.Duration {
	return codecTime(c, n, node.Type.CompressBps*node.Type.CPUSpeed)
}

// DecompressTime is the CPU time to decompress n raw bytes' worth of wire
// data on one of node's cores.
func (c Codec) DecompressTime(n int64, node *topology.Node) time.Duration {
	return codecTime(c, n, node.Type.DecompressBps*node.Type.CPUSpeed)
}

func codecTime(c Codec, n int64, rate float64) time.Duration {
	if !c.Enabled() || n <= 0 || rate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / rate * float64(time.Second))
}
