package trace

import (
	"strings"
	"testing"
	"time"

	"mrapid/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add("rm", "message %d", 1)
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log retained events")
	}
	var b strings.Builder
	if err := l.Dump(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil dump wrote output")
	}
}

func TestAddRecordsVirtualTime(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 0)
	eng.After(2*time.Second, func() { l.Add("rm", "allocated %d", 3) })
	eng.Run()
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	e := l.Events()[0]
	if e.At != sim.Time(2*time.Second) || e.Component != "rm" || e.Message != "allocated 3" {
		t.Fatalf("event = %+v", e)
	}
	if !strings.Contains(e.String(), "rm") {
		t.Fatalf("String = %q", e.String())
	}
}

func TestLimitDropsOldest(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 3)
	for i := 0; i < 10; i++ {
		l.Add("c", "event %d", i)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Events()[0].Message != "event 7" {
		t.Fatalf("oldest retained = %q", l.Events()[0].Message)
	}
}

func TestFilter(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 0)
	l.Add("rm", "a")
	l.Add("nm/node-01", "b")
	l.Add("rm", "c")
	got := l.Filter("rm")
	if len(got) != 2 || got[0].Message != "a" || got[1].Message != "c" {
		t.Fatalf("Filter = %+v", got)
	}
}

func TestDumpWritesLines(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 0)
	l.Add("hdfs", "read 10 bytes")
	var b strings.Builder
	if err := l.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "read 10 bytes") {
		t.Fatalf("Dump = %q", b.String())
	}
}
