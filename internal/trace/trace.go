// Package trace records structured observability data for a simulation
// run: a flat event log (which component did what at which virtual
// instant) and a causal span tree (how long each operation took and what
// it was part of), for debugging scheduling decisions, for the CLI's
// -trace output, and for the critical-path analyzer (package report).
// Tracing is optional: a nil *Log is safe to use and records nothing.
package trace

import (
	"fmt"
	"io"

	"mrapid/internal/sim"
)

// Event is one timestamped log entry.
type Event struct {
	At        sim.Time
	Component string // "rm", "nm/node-01", "am/wc", "hdfs", ...
	Message   string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s  %-14s %s", e.At, e.Component, e.Message)
}

// Log accumulates events in firing order and spans in open order. The zero
// value is unusable; nil is a valid "disabled" log. A Log is driven only
// from the simulation engine's goroutine, like the engine itself.
type Log struct {
	eng     *sim.Engine
	events  []Event
	limit   int
	dropped int64

	spans []*Span
}

// New creates a log bound to the engine's clock. limit bounds event memory
// (0 means unlimited); beyond it old events are dropped from the front and
// counted (see Dropped). Spans are always retained.
func New(eng *sim.Engine, limit int) *Log {
	return &Log{eng: eng, limit: limit}
}

// Add records an event at the current virtual time. Safe on a nil log.
func (l *Log) Add(component, format string, args ...any) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{
		At:        l.eng.Now(),
		Component: component,
		Message:   fmt.Sprintf(format, args...),
	})
	if l.limit > 0 && len(l.events) > l.limit {
		l.dropped += int64(len(l.events) - l.limit)
		l.events = l.events[len(l.events)-l.limit:]
	}
}

// Len reports the number of retained events. Safe on a nil log.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Dropped reports how many events the ring limit evicted. Safe on a nil
// log.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Events returns the retained events in order. Safe on a nil log.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Filter returns the events whose component matches exactly.
func (l *Log) Filter(component string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Component == component {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes every retained event, one per line. When the ring limit has
// evicted events, the first line says how many are missing instead of
// silently truncating the front. Safe on a nil log.
func (l *Log) Dump(w io.Writer) error {
	if l.Dropped() > 0 {
		if _, err := fmt.Fprintf(w, "… %d earlier events dropped (ring limit %d)\n", l.dropped, l.limit); err != nil {
			return err
		}
	}
	for _, e := range l.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
