// Package trace records a structured event log of a simulation run —
// which component did what at which virtual instant — for debugging
// scheduling decisions and for the CLI's -trace output. Tracing is
// optional: a nil *Log is safe to use and records nothing.
package trace

import (
	"fmt"
	"io"

	"mrapid/internal/sim"
)

// Event is one timestamped log entry.
type Event struct {
	At        sim.Time
	Component string // "rm", "nm/node-01", "am/wc", "hdfs", ...
	Message   string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s  %-14s %s", e.At, e.Component, e.Message)
}

// Log accumulates events in firing order. The zero value is unusable; nil
// is a valid "disabled" log.
type Log struct {
	eng    *sim.Engine
	events []Event
	limit  int
}

// New creates a log bound to the engine's clock. limit bounds memory (0
// means unlimited); beyond it old events are dropped from the front.
func New(eng *sim.Engine, limit int) *Log {
	return &Log{eng: eng, limit: limit}
}

// Add records an event at the current virtual time. Safe on a nil log.
func (l *Log) Add(component, format string, args ...any) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{
		At:        l.eng.Now(),
		Component: component,
		Message:   fmt.Sprintf(format, args...),
	})
	if l.limit > 0 && len(l.events) > l.limit {
		l.events = l.events[len(l.events)-l.limit:]
	}
}

// Len reports the number of retained events. Safe on a nil log.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Events returns the retained events in order. Safe on a nil log.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Filter returns the events whose component matches exactly.
func (l *Log) Filter(component string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Component == component {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes every retained event, one per line. Safe on a nil log.
func (l *Log) Dump(w io.Writer) error {
	for _, e := range l.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
