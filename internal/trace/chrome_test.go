package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mrapid/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenLog builds a small but representative span tree: a job root, an AM
// startup with a scheduling wait under it, one map with a read sub-span, an
// open (abandoned) task, and a flat log event.
func goldenLog() *Log {
	eng := sim.NewEngine()
	l := New(eng, 16)
	var root, am, task SpanID
	eng.After(1*time.Second, func() {
		root = l.StartSpan(0, "job", "wordcount", "", A("mode", "dplus"))
		am = l.StartSpan(root, "am", "am-startup", "am", A("cold", "true"))
	})
	eng.After(1500*time.Millisecond, func() {
		l.SpanSince(am, "rm", "alloc am", "schedule", sim.Time(1200*time.Millisecond))
		l.EndSpan(am)
		task = l.StartSpan(root, "task/node-01", "map-0", "map")
		read := l.StartSpan(task, "task/node-01", "read", "map")
		l.EndSpan(read, A("bytes", "1048576"))
		l.Add("hdfs", "read /in/wc-0 [0,1048576) on node-01")
	})
	eng.After(3*time.Second, func() {
		l.EndSpan(task, A("out_bytes", "2097152"))
		l.StartSpan(root, "task/node-02", "map-1", "map") // abandoned: stays open
		l.EndSpan(root)
	})
	eng.Run()
	return l
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceIsValidAndComplete(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   *float64       `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var complete, instant, meta, open int
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "X":
			complete++
			if e.Dur == nil {
				t.Fatalf("complete event %q lacks dur", e.Name)
			}
			if e.Name == "map-1" {
				if e.Args["open"] != true {
					t.Fatalf("abandoned span not flagged open: %v", e.Args)
				}
				open++
			}
		case "i":
			instant++
		case "M":
			meta++
		}
		if e.PID != 1 {
			t.Fatalf("event %q pid = %d", e.Name, e.PID)
		}
	}
	if complete != 6 { // root, am, alloc, map-0, read, map-1
		t.Fatalf("complete events = %d, want 6", complete)
	}
	if instant != 1 || open != 1 {
		t.Fatalf("instant = %d open = %d", instant, open)
	}
	// One lane per component (job, am, rm, hdfs, task/node-01,
	// task/node-02) plus the process name.
	if meta != 7 {
		t.Fatalf("metadata events = %d, want 7", meta)
	}
	// The am-startup span must convert virtual ns to µs: 1s → 1e6 µs.
	for _, e := range out.TraceEvents {
		if e.Phase == "X" && e.Name == "am-startup" {
			if e.TS != 1e6 || *e.Dur != 0.5e6 {
				t.Fatalf("am-startup ts=%v dur=%v, want 1e6/0.5e6", e.TS, *e.Dur)
			}
		}
	}
}

func TestChromeTraceNilLog(t *testing.T) {
	var l *Log
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenLog().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenLog().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical logs exported different bytes")
	}
}
