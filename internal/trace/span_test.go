package trace

import (
	"strings"
	"testing"
	"time"

	"mrapid/internal/sim"
)

func TestNilLogSpansAreSafe(t *testing.T) {
	var l *Log
	if id := l.StartSpan(0, "rm", "x", "schedule"); id != 0 {
		t.Fatalf("nil StartSpan = %d", id)
	}
	if id := l.SpanSince(0, "rm", "x", "schedule", 0); id != 0 {
		t.Fatalf("nil SpanSince = %d", id)
	}
	l.EndSpan(1)
	l.Annotate(1, A("k", "v"))
	if l.Span(1) != nil || l.Spans() != nil || l.Subtree(1) != nil {
		t.Fatal("nil log returned spans")
	}
	if l.Now() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log clock/dropped nonzero")
	}
}

func TestSpanTree(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 0)
	var root, child, grand, sibling SpanID
	eng.After(1*time.Second, func() {
		root = l.StartSpan(0, "job", "wordcount", "", A("mode", "dplus"))
		child = l.StartSpan(root, "am", "am-startup", "am")
	})
	eng.After(2*time.Second, func() {
		grand = l.StartSpan(child, "rm", "alloc am", "schedule")
		l.EndSpan(grand)
		l.EndSpan(child, A("ready", "true"))
	})
	eng.After(3*time.Second, func() {
		sibling = l.StartSpan(root, "task/node-01", "map-0", "map")
	})
	eng.After(5*time.Second, func() { l.EndSpan(root) })
	eng.Run()

	if root != 1 || child != 2 || grand != 3 || sibling != 4 {
		t.Fatalf("ids = %d %d %d %d, want sequential from 1", root, child, grand, sibling)
	}
	rs := l.Span(root)
	if rs == nil || rs.Start != sim.Time(1*time.Second) || rs.End != sim.Time(5*time.Second) || !rs.Ended {
		t.Fatalf("root span = %+v", rs)
	}
	cs := l.Span(child)
	if cs.Parent != root || cs.Phase != "am" || cs.Duration(0) != sim.Time(1*time.Second) {
		t.Fatalf("child span = %+v", cs)
	}
	if got := len(cs.Attrs); got != 1 {
		t.Fatalf("child attrs = %d (EndSpan attrs lost?)", got)
	}
	// Sibling was never ended: open spans charge until the observation point.
	ss := l.Span(sibling)
	if ss.Ended || ss.Duration(l.Now()) != sim.Time(2*time.Second) {
		t.Fatalf("open span = %+v dur=%v", ss, ss.Duration(l.Now()))
	}
	if kids := l.Children(root); len(kids) != 2 || kids[0].ID != child || kids[1].ID != sibling {
		t.Fatalf("Children(root) = %+v", kids)
	}
	if sub := l.Subtree(root); len(sub) != 4 {
		t.Fatalf("Subtree(root) = %d spans, want 4", len(sub))
	}
	if sub := l.Subtree(child); len(sub) != 2 || sub[1].ID != grand {
		t.Fatalf("Subtree(child) = %+v", sub)
	}
}

func TestEndSpanIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 0)
	var id SpanID
	eng.After(1*time.Second, func() {
		id = l.StartSpan(0, "job", "j", "")
		l.EndSpan(id, A("winner", "dplus"))
	})
	eng.After(2*time.Second, func() {
		// A speculative loser's kill path may end the span again, later;
		// the first close must win.
		l.EndSpan(id, A("killed", "true"))
	})
	eng.Run()
	s := l.Span(id)
	if s.End != sim.Time(1*time.Second) || len(s.Attrs) != 1 {
		t.Fatalf("double EndSpan mutated span: %+v", s)
	}
	l.EndSpan(0)      // span 0 is a no-op target
	l.EndSpan(999)    // unknown id is a no-op
	l.Annotate(0)     // ditto
	l.Annotate(99999) // ditto
}

func TestSpanSinceIsRetroactiveAndClosed(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 0)
	var id SpanID
	eng.After(4*time.Second, func() {
		id = l.SpanSince(0, "rm", "alloc map-0", "schedule", sim.Time(1*time.Second), A("node", "node-01"))
	})
	eng.Run()
	s := l.Span(id)
	if !s.Ended || s.Start != sim.Time(1*time.Second) || s.End != sim.Time(4*time.Second) {
		t.Fatalf("SpanSince = %+v", s)
	}
	if len(s.Attrs) != 1 || s.Attrs[0].Value != "node-01" {
		t.Fatalf("SpanSince attrs = %+v", s.Attrs)
	}
}

func TestDroppedEventsCountedAndReported(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, 3)
	for i := 0; i < 10; i++ {
		l.Add("c", "event %d", i)
	}
	if l.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", l.Dropped())
	}
	var b strings.Builder
	if err := l.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "7 earlier events dropped") {
		t.Fatalf("Dump missing dropped prefix:\n%s", b.String())
	}
	// Spans are never ring-limited; only the flat event log is.
	l.StartSpan(0, "c", "s", "")
	if len(l.Spans()) != 1 {
		t.Fatal("span was dropped by the event ring limit")
	}
}
