package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mrapid/internal/sim"
)

// Chrome trace_event export: the span tree and event log serialized in the
// Trace Event Format that chrome://tracing and Perfetto load. Components
// map to threads (one lane per component), spans to complete ("X") events,
// and log events to instant ("i") events. Output is deterministic: lanes
// are sorted by name, spans and events keep log order.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds of virtual time
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(t sim.Time) float64 { return float64(t) / 1e3 }

// CounterSample is one (virtual time, value) point of a counter lane.
type CounterSample struct {
	At    sim.Time
	Value float64
}

// CounterSeries is one named counter lane for the Chrome trace export —
// the flight recorder hands its time-series over in this shape so Perfetto
// renders utilization lanes next to the span tree.
type CounterSeries struct {
	Name    string
	Samples []CounterSample
}

// WriteChromeTrace serializes the log as Chrome trace_event JSON. Spans
// still open (e.g. abandoned by a node death) are drawn up to the current
// virtual instant and flagged with an "open" arg. Safe on a nil log, which
// writes an empty (but valid) trace.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	return l.WriteChromeTraceCounters(w, nil)
}

// WriteChromeTraceCounters is WriteChromeTrace plus counter ("C") events:
// each CounterSeries becomes a value lane in the viewer, stacked under the
// span lanes. With no counters the output is byte-identical to
// WriteChromeTrace.
func (l *Log) WriteChromeTraceCounters(w io.Writer, counters []CounterSeries) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	// One lane per component, sorted for a stable layout.
	laneSet := map[string]bool{}
	for _, s := range l.Spans() {
		laneSet[s.Component] = true
	}
	for _, e := range l.Events() {
		laneSet[e.Component] = true
	}
	lanes := make([]string, 0, len(laneSet))
	for c := range laneSet {
		lanes = append(lanes, c)
	}
	sort.Strings(lanes)
	tid := make(map[string]int, len(lanes))
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "mrapid simulation"},
	})
	for i, c := range lanes {
		tid[c] = i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": c},
		})
	}

	now := l.Now()
	for _, s := range l.Spans() {
		dur := micros(s.Duration(now))
		args := map[string]any{
			"span_id": int(s.ID),
			"parent":  int(s.Parent),
		}
		if s.Phase != "" {
			args["phase"] = s.Phase
		}
		if !s.Ended {
			args["open"] = true
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		cat := s.Phase
		if cat == "" {
			cat = "span"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: cat, Phase: "X",
			TS: micros(s.Start), Dur: &dur,
			PID: 1, TID: tid[s.Component], Args: args,
		})
	}
	for _, e := range l.Events() {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Message, Cat: "log", Phase: "i",
			TS: micros(e.At), PID: 1, TID: tid[e.Component], Scope: "t",
		})
	}
	for _, cs := range counters {
		for _, s := range cs.Samples {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: cs.Name, Cat: "counter", Phase: "C",
				TS: micros(s.At), PID: 1, TID: 0,
				Args: map[string]any{"value": s.Value},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	return nil
}
