package trace

import "mrapid/internal/sim"

// SpanID identifies a span within one Log. Zero is "no span": it is a
// valid parent (meaning "root") and a no-op target for EndSpan/Annotate,
// so callers can thread span IDs through without nil checks.
type SpanID int

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// A builds an attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed operation on the virtual clock, causally linked to the
// operation that started it. The span tree of a job — submission under it,
// AM startup, per-container scheduling waits, task sub-phases, shuffle
// fetches — is what the critical-path analyzer consumes.
type Span struct {
	ID        SpanID
	Parent    SpanID // 0 = root
	Component string // which simulated component owns the time, e.g. "rm", "task/node-02"
	Name      string // operation, e.g. "map-3", "alloc map-3", "am-startup"

	// Phase buckets the span for phase attribution: "submit", "am",
	// "schedule", "launch", "map", "shuffle", "commit", "reduce",
	// "notify", or "" for structural spans (job roots) that own no time
	// themselves.
	Phase string

	Start sim.Time
	End   sim.Time
	Ended bool // false while the span is still open (or was abandoned by a node death)

	Attrs []Attr
}

// Duration returns End-Start for closed spans and upTo-Start for open ones
// (an abandoned span is charged until the observation point).
func (s *Span) Duration(upTo sim.Time) sim.Time {
	end := s.End
	if !s.Ended {
		end = upTo
	}
	if end < s.Start {
		return 0
	}
	return end - s.Start
}

// StartSpan opens a span at the current virtual time and returns its ID.
// Safe on a nil log (returns 0).
func (l *Log) StartSpan(parent SpanID, component, name, phase string, attrs ...Attr) SpanID {
	if l == nil {
		return 0
	}
	return l.startAt(parent, component, name, phase, l.eng.Now(), attrs)
}

// SpanSince records an already-finished operation: a span opened
// retroactively at start and closed now. Used where the start instant was
// only stamped, not acted on — e.g. a container ask's wait, measured when
// the grant finally happens. Safe on a nil log.
func (l *Log) SpanSince(parent SpanID, component, name, phase string, start sim.Time, attrs ...Attr) SpanID {
	if l == nil {
		return 0
	}
	id := l.startAt(parent, component, name, phase, start, attrs)
	l.EndSpan(id)
	return id
}

func (l *Log) startAt(parent SpanID, component, name, phase string, start sim.Time, attrs []Attr) SpanID {
	id := SpanID(len(l.spans) + 1)
	l.spans = append(l.spans, &Span{
		ID: id, Parent: parent, Component: component, Name: name, Phase: phase,
		Start: start, Attrs: attrs,
	})
	return id
}

// EndSpan closes a span at the current virtual time, appending any extra
// attributes. Ending an already-closed span, span 0, or a span on a nil
// log is a no-op, so completion paths that can race a kill need no guards.
func (l *Log) EndSpan(id SpanID, attrs ...Attr) {
	sp := l.lookup(id)
	if sp == nil || sp.Ended {
		return
	}
	sp.End = l.eng.Now()
	sp.Ended = true
	sp.Attrs = append(sp.Attrs, attrs...)
}

// Annotate appends attributes to a span (open or closed). Safe on a nil
// log and for span 0.
func (l *Log) Annotate(id SpanID, attrs ...Attr) {
	if sp := l.lookup(id); sp != nil {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
}

func (l *Log) lookup(id SpanID) *Span {
	if l == nil || id <= 0 || int(id) > len(l.spans) {
		return nil
	}
	return l.spans[id-1]
}

// Span returns the span with the given ID, or nil. Safe on a nil log.
func (l *Log) Span(id SpanID) *Span { return l.lookup(id) }

// Spans returns every recorded span in open order. Safe on a nil log.
func (l *Log) Spans() []*Span {
	if l == nil {
		return nil
	}
	return l.spans
}

// Children returns the direct children of a span (in open order); parent 0
// returns the roots.
func (l *Log) Children(parent SpanID) []*Span {
	var out []*Span
	for _, s := range l.Spans() {
		if s.Parent == parent {
			out = append(out, s)
		}
	}
	return out
}

// Subtree returns the span with the given ID and all its descendants, in
// open order. Safe on a nil log.
func (l *Log) Subtree(root SpanID) []*Span {
	if l.lookup(root) == nil {
		return nil
	}
	in := make(map[SpanID]bool, 16)
	in[root] = true
	var out []*Span
	// Spans are appended in open order and a child is always opened after
	// its parent, so one forward pass collects the whole subtree.
	for _, s := range l.spans {
		if s.ID == root || in[s.Parent] {
			in[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// Now exposes the log's clock (used by exporters to close open spans at
// the observation instant). Safe on a nil log, returning 0.
func (l *Log) Now() sim.Time {
	if l == nil {
		return 0
	}
	return l.eng.Now()
}
