package sim

import (
	"testing"
	"time"
)

// Back-to-back same-instant callbacks must merge into one engine event yet
// run in submission order.
func TestCoalescerMergesBackToBack(t *testing.T) {
	eng := NewEngine()
	co := NewCoalescer(eng)
	var order []int
	eng.After(time.Millisecond, func() {
		for i := 0; i < 5; i++ {
			i := i
			co.After(time.Millisecond, func() { order = append(order, i) })
		}
	})
	eng.Run()
	if eng.Fired() != 2 { // the seed event + one batch
		t.Fatalf("fired %d events, want 2", eng.Fired())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d callbacks, want 5", len(order))
	}
}

// An unrelated event scheduled between two coalescer calls must flush the
// batch: merging across it would hoist the second callback ahead of the
// interloper in the timeline.
func TestCoalescerPreservesInterleaving(t *testing.T) {
	eng := NewEngine()
	co := NewCoalescer(eng)
	var order []string
	eng.After(time.Millisecond, func() {
		co.After(0, func() { order = append(order, "a") })
		eng.After(0, func() { order = append(order, "x") })
		co.After(0, func() { order = append(order, "b") })
	})
	eng.Run()
	want := []string{"a", "x", "b"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// Different due instants never merge.
func TestCoalescerSplitsByDueTime(t *testing.T) {
	eng := NewEngine()
	co := NewCoalescer(eng)
	var n int
	co.After(time.Millisecond, func() { n++ })
	co.After(2*time.Millisecond, func() { n++ })
	eng.Run()
	if n != 2 || eng.Fired() != 2 {
		t.Fatalf("n=%d fired=%d, want 2 events", n, eng.Fired())
	}
}

// A callback scheduled from inside a running batch must not be absorbed
// into that batch (it would never run); it gets a fresh event.
func TestCoalescerNoSelfAbsorption(t *testing.T) {
	eng := NewEngine()
	co := NewCoalescer(eng)
	var ran []string
	co.After(0, func() {
		ran = append(ran, "first")
		co.After(0, func() { ran = append(ran, "second") })
	})
	eng.Run()
	if len(ran) != 2 || ran[1] != "second" {
		t.Fatalf("ran = %v", ran)
	}
}
