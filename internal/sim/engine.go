// Package sim implements a deterministic discrete-event simulation engine.
//
// All components of the simulated Hadoop cluster (HDFS, YARN, the MapReduce
// runtime, and the MRapid extensions) advance a shared virtual clock by
// scheduling events on an Engine. Events fire in (time, sequence) order, so
// two events scheduled for the same instant fire in the order they were
// scheduled, making every simulation run bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start of
// the simulation. It is kept as a distinct type so call sites cannot confuse
// virtual instants with wall-clock instants or with durations.
type Time time.Duration

// Infinity is a virtual instant later than any reachable event time.
const Infinity = Time(math.MaxInt64)

// Seconds reports t as a floating-point number of virtual seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted forward by d. Negative results are clamped to zero:
// an event can never be scheduled before the start of the simulation.
func (t Time) Add(d time.Duration) Time {
	r := t + Time(d)
	if r < 0 {
		return 0
	}
	return r
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats t with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// An event is a callback scheduled to fire at a virtual instant.
type event struct {
	at     Time
	seq    uint64 // tie-break: schedule order
	fn     func()
	cancel *bool // non-nil when the event can be cancelled
	index  int   // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all simulated "parallelism" is expressed as interleaved
// events on the one virtual timeline.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventHeap
	fired    uint64
	running  bool
	maxDepth int
}

// NewEngine returns an engine whose clock starts at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far; useful in tests and as a
// runaway guard.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending reports the deepest the event heap has ever grown — the
// engine's high-water mark, recorded for the self-profiler lane of the
// flight recorder and the engine benchmark.
func (e *Engine) MaxPending() int { return e.maxDepth }

func (e *Engine) noteDepth() {
	if n := len(e.queue); n > e.maxDepth {
		e.maxDepth = n
	}
}

// At schedules fn to fire at virtual instant t. Scheduling into the past
// (t < Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
	e.noteDepth()
}

// After schedules fn to fire d from now. Negative d fires "now" (after all
// events already scheduled for the current instant).
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires.
type Timer struct {
	cancelled *bool
}

// Stop cancels the timer. It is safe to call multiple times, and after the
// event has fired (in which case it has no effect).
func (t *Timer) Stop() {
	if t != nil && t.cancelled != nil {
		*t.cancelled = true
	}
}

// AfterTimer schedules fn to fire d from now and returns a Timer that can
// cancel it.
func (e *Engine) AfterTimer(d time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: AfterTimer called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	cancelled := new(bool)
	e.seq++
	heap.Push(&e.queue, &event{at: e.now.Add(d), seq: e.seq, fn: fn, cancel: cancelled})
	e.noteDepth()
	return &Timer{cancelled: cancelled}
}

// Ticker repeatedly fires a callback at a fixed period until stopped.
type Ticker struct {
	stopped bool
}

// Stop halts the ticker; the callback will not fire again.
func (t *Ticker) Stop() { t.stopped = true }

// Every schedules fn to fire every period, with the first firing one full
// period from now (matching heartbeat semantics: a heartbeat is sent after
// the interval elapses, not immediately). The period must be positive.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	if fn == nil {
		panic("sim: Every called with nil callback")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if t.stopped {
			return
		}
		e.After(period, tick)
	}
	e.After(period, tick)
	return t
}

// Run fires events in order until the queue is empty, and returns the final
// virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(Infinity)
}

// RunUntil fires events in order until the queue is empty or the next event
// would fire after the deadline, and returns the current virtual time. Events
// exactly at the deadline fire. The clock stays at the last fired event; it
// does not jump to the deadline, so work can resume afterwards.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Run re-entered from within an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if next.cancel != nil && *next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	return e.now
}

// Step fires the single next pending event (skipping cancelled ones) and
// reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		if next.cancel != nil && *next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}
