// Package sim implements a deterministic discrete-event simulation engine.
//
// All components of the simulated Hadoop cluster (HDFS, YARN, the MapReduce
// runtime, and the MRapid extensions) advance a shared virtual clock by
// scheduling events on an Engine. Events fire in (time, sequence) order, so
// two events scheduled for the same instant fire in the order they were
// scheduled, making every simulation run bit-reproducible.
//
// The event queue is a ladder queue tuned for the cluster's workload shape
// (dense near-future RPC traffic plus sparse far-future maintenance
// timers): a small binary heap holds only the current time window, future
// windows sit unsorted in calendar buckets that are heapified — or split
// into finer rungs — only when the clock reaches them, and everything past
// the last rung overflows into an unsorted spill that is re-laddered on
// demand. Events are stored by value in a slab with a free list, so
// steady-state scheduling allocates nothing and a cancelled Timer releases
// its slot immediately instead of churning through the queue as a dead
// entry.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start of
// the simulation. It is kept as a distinct type so call sites cannot confuse
// virtual instants with wall-clock instants or with durations.
type Time time.Duration

// Infinity is a virtual instant later than any reachable event time.
const Infinity = Time(math.MaxInt64)

// Seconds reports t as a floating-point number of virtual seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted forward by d. Negative results are clamped to zero:
// an event can never be scheduled before the start of the simulation.
func (t Time) Add(d time.Duration) Time {
	r := t + Time(d)
	if r < 0 {
		return 0
	}
	return r
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats t with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// A slot holds one scheduled callback in the engine's slab. The generation
// counter increments every time the slot is released (fired or cancelled),
// so a stale queue reference or Timer from a previous occupancy can never
// touch the slot's new tenant.
type slot struct {
	fn  func()
	gen uint32
}

// A ref is the queued, by-value form of an event: its firing key plus the
// slab coordinates of its callback. Refs are what the heaps and buckets
// shuffle around — 24 bytes, no pointers into the heap beyond the slab.
type ref struct {
	at  Time
	seq uint64
	idx int32
	gen uint32
}

func refLess(a, b ref) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// A rung is one calendar tier: equal-width buckets covering [start, end).
// Buckets before next are consumed. count tracks refs across the live
// buckets so an exhausted rung is popped without scanning.
type rung struct {
	start   Time
	width   Time
	end     Time
	next    int
	count   int
	buckets [][]ref
}

const (
	// spawnThreshold is the bucket occupancy above which a bucket is split
	// into a finer child rung instead of being sorted as the current
	// window. Below it, a binary heap of the bucket is cheap enough.
	spawnThreshold = 48
	// childBuckets is the fan-out of a spawned child rung.
	childBuckets = 16
	// minRootBuckets/maxRootBuckets bound the root rung built from the
	// overflow spill; the root aims for ~1 ref per bucket. Simulated time
	// is heavily clustered (events land on round instants), so generous
	// fan-out is what lets a bucket hold a single instant and be adopted
	// without a re-ladder; empty buckets between clusters cost one nil
	// check each to skip.
	minRootBuckets = 16
	maxRootBuckets = 8192
)

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all simulated "parallelism" is expressed as interleaved
// events on the one virtual timeline.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	running bool

	live     int // scheduled and not yet fired or cancelled
	maxDepth int

	slab []slot
	free []int32

	// cur is the sorted tier: an ascending array of every pending ref with
	// at < curEnd, consumed from curFront. Refs at or past curEnd live in
	// the rungs (calendar buckets, deepest == finest last) or, past the
	// last rung, in the unsorted far spill.
	cur      []ref
	curFront int
	curEnd   Time
	rungs    []rung
	far      []ref
	farLo    Time // min/max at across far, maintained incrementally
	farHi    Time

	// bucketCache recycles drained bucket backing arrays; rungCache
	// recycles the bucket-table arrays of popped rungs.
	bucketCache [][]ref
	rungCache   [][][]ref
}

// NewEngine returns an engine whose clock starts at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far; useful in tests and as a
// runaway guard.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of live scheduled events. Cancelled timers
// release their slot immediately and are not counted, so this is a true
// backlog figure (the flight recorder's engine_pending_events lane).
func (e *Engine) Pending() int { return e.live }

// MaxPending reports the most live events ever scheduled at once — the
// engine's high-water mark, recorded for the self-profiler lane of the
// flight recorder and the engine benchmark.
func (e *Engine) MaxPending() int { return e.maxDepth }

// SeqMark returns an opaque mark that changes whenever an event is
// scheduled. Coalescer uses it to detect whether anything else was
// scheduled between two of its appends — the condition under which merging
// them into one event would reorder the timeline.
func (e *Engine) SeqMark() uint64 { return e.seq }

// alloc claims a slab slot for fn and returns its coordinates.
func (e *Engine) alloc(fn func()) (int32, uint32) {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		s := &e.slab[idx]
		s.fn = fn
		return idx, s.gen
	}
	e.slab = append(e.slab, slot{fn: fn})
	return int32(len(e.slab) - 1), 0
}

// release frees a slot, dropping its callback so cancelled work is
// collectable immediately, and bumps the generation to invalidate any
// outstanding refs or Timers.
func (e *Engine) release(idx int32) {
	s := &e.slab[idx]
	s.fn = nil
	s.gen++
	e.free = append(e.free, idx)
	e.live--
}

// schedule claims a slot, assigns the next sequence number and files the
// ref into the right tier.
func (e *Engine) schedule(at Time, fn func()) (int32, uint32) {
	e.seq++
	idx, gen := e.alloc(fn)
	e.insert(ref{at: at, seq: e.seq, idx: idx, gen: gen})
	e.live++
	if e.live > e.maxDepth {
		e.maxDepth = e.live
	}
	return idx, gen
}

// insert files a ref: the current window's heap, a calendar bucket, or the
// far spill. The rung walk goes deepest (finest) first; a ref below the
// deepest rung's range (possible after a re-ladder leaves a gap over an
// empty stretch) joins the current heap, which keeps ordering correct
// because everything in the rungs is later than any such gap.
func (e *Engine) insert(r ref) {
	if r.at < e.curEnd {
		e.pushCur(r)
		return
	}
	for i := len(e.rungs) - 1; i >= 0; i-- {
		rg := &e.rungs[i]
		if r.at < rg.end {
			if r.at < rg.start {
				e.pushCur(r)
				return
			}
			b := int((r.at - rg.start) / rg.width)
			// The last bucket absorbs the rounding slack when the rung's
			// nominal span saturated at Infinity.
			if b >= len(rg.buckets) {
				b = len(rg.buckets) - 1
			}
			if rg.buckets[b] == nil {
				rg.buckets[b] = e.getBucket()
			}
			rg.buckets[b] = append(rg.buckets[b], r)
			rg.count++
			return
		}
	}
	if len(e.far) == 0 {
		e.farLo, e.farHi = r.at, r.at
	} else {
		if r.at < e.farLo {
			e.farLo = r.at
		}
		if r.at > e.farHi {
			e.farHi = r.at
		}
	}
	e.far = append(e.far, r)
}

// pushCur inserts into the sorted current window. The window is an
// ascending array consumed from curFront; an insert binary-searches its
// slot and shifts whichever side is shorter. The common mid-window insert
// is an After(0) — next to fire, right at the front — which shifts nothing
// when pops have opened space there.
func (e *Engine) pushCur(r ref) {
	h := e.cur
	lo, hi := e.curFront, len(h)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if refLess(h[m], r) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if f := e.curFront; f > 0 && lo-f <= len(h)-lo {
		copy(h[f-1:], h[f:lo])
		h[lo-1] = r
		e.curFront = f - 1
		return
	}
	h = append(h, ref{})
	copy(h[lo+1:], h[lo:])
	h[lo] = r
	e.cur = h
}

// popCur consumes the front of the current window.
func (e *Engine) popCur() {
	e.curFront++
	if e.curFront == len(e.cur) {
		e.cur = e.cur[:0]
		e.curFront = 0
	}
}

// sortRefs insertion-sorts a window. Buckets arrive nearly sorted — equal
// instants are appended in schedule order, so inversions only come from
// distinct instants interleaved at insert time — which keeps this O(n) in
// practice; it only runs when adoptCur's scan found an inversion at all.
func sortRefs(h []ref) {
	for i := 1; i < len(h); i++ {
		r := h[i]
		j := i - 1
		for j >= 0 && refLess(r, h[j]) {
			h[j+1] = h[j]
			j--
		}
		h[j+1] = r
	}
}

func (e *Engine) getBucket() []ref {
	if n := len(e.bucketCache); n > 0 {
		b := e.bucketCache[n-1]
		e.bucketCache = e.bucketCache[:n-1]
		return b
	}
	return make([]ref, 0, 8)
}

func (e *Engine) putBucket(b []ref) {
	if cap(b) >= 8 && len(e.bucketCache) < 1024 {
		e.bucketCache = append(e.bucketCache, b[:0])
	}
}

// getBuckets returns a zeroed bucket table of exactly n entries, reusing a
// cached array when one is big enough.
func (e *Engine) getBuckets(n int) [][]ref {
	for i := len(e.rungCache) - 1; i >= 0; i-- {
		if t := e.rungCache[i]; cap(t) >= n {
			e.rungCache[i] = e.rungCache[len(e.rungCache)-1]
			e.rungCache = e.rungCache[:len(e.rungCache)-1]
			t = t[:n]
			for j := range t {
				t[j] = nil
			}
			return t
		}
	}
	return make([][]ref, n)
}

func (e *Engine) putBuckets(t [][]ref) {
	if len(e.rungCache) < 8 {
		e.rungCache = append(e.rungCache, t)
	}
}

// satAfter returns t+d saturated at Infinity.
func satAfter(t, d Time) Time {
	if d > Infinity-t {
		return Infinity
	}
	return t + d
}

// adoptCur makes refs the new current window, recycling the old backing
// array. A same-instant cluster — the dominant shape in simulations whose
// events land on round timestamps — passes the inversion scan untouched
// and is consumed by pure front-index increments.
func (e *Engine) adoptCur(refs []ref) {
	e.putBucket(e.cur)
	for i := 1; i < len(refs); i++ {
		if refLess(refs[i], refs[i-1]) {
			sortRefs(refs)
			break
		}
	}
	e.cur = refs
	e.curFront = 0
}

// spawnRung re-ladders one overweight bucket spanning [start, end) into a
// finer child rung — or, when the refs turn out to be one same-instant
// cluster (the dominant case in a simulation whose events land on round
// timestamps), adopts them as the current window directly: no subdivision
// can separate refs that share an instant, and re-laddering them down to
// 1-unit buckets is exactly the pathology a ladder queue must avoid. The
// child rung subdivides the refs' actual [lo, hi] span, not the bucket's
// nominal one, so one level almost always separates the clusters; its end
// stays the bucket's nominal end to keep the tier coverage contiguous.
func (e *Engine) spawnRung(start, end Time, refs []ref) {
	lo, hi := refs[0].at, refs[0].at
	for _, r := range refs[1:] {
		if r.at < lo {
			lo = r.at
		}
		if r.at > hi {
			hi = r.at
		}
	}
	if lo == hi {
		// Equal instants are appended in schedule order, so the cluster is
		// already sorted by (at, seq): adopt without adoptCur's scan.
		e.putBucket(e.cur)
		e.cur = refs
		e.curFront = 0
		e.curEnd = end
		return
	}
	width := (hi - lo + childBuckets) / childBuckets // covers [lo, hi] in <= childBuckets
	rg := rung{
		start:   lo,
		width:   width,
		end:     end,
		count:   len(refs),
		buckets: e.getBuckets(childBuckets),
	}
	for _, r := range refs {
		b := int((r.at - lo) / width)
		if b >= childBuckets {
			b = childBuckets - 1
		}
		if rg.buckets[b] == nil {
			rg.buckets[b] = e.getBucket()
		}
		rg.buckets[b] = append(rg.buckets[b], r)
	}
	e.putBucket(refs)
	e.rungs = append(e.rungs, rg)
}

// refill builds a fresh root rung from the far spill. Width adapts to the
// spill's span so typical occupancy stays near one bucket per window; the
// arithmetic only shapes bucket boundaries, never firing order, so the
// degenerate cases (one far event, clustered outliers) merely fall back to
// plain-heap behavior.
func (e *Engine) refill() {
	far := e.far
	lo, hi := e.farLo, e.farHi
	// A small spill skips the calendar altogether: it becomes the current
	// window directly, spanning through its last event. This is the idle
	// regime — a handful of heartbeats and retry timers — where bucket
	// bookkeeping would cost more than the heap it avoids.
	if len(far) <= 8 {
		e.far = e.getBucket()
		e.adoptCur(far)
		e.curEnd = satAfter(hi, 1)
		return
	}
	nb := minRootBuckets
	for nb < len(far)/2 && nb < maxRootBuckets {
		nb <<= 1
	}
	// The root's span tracks the bulk of the spill, not its extremes: a few
	// far-future outliers (maintenance timers, horizon sentinels) would
	// otherwise stretch the bucket width until every near-term bucket holds
	// thousands of refs and has to be re-laddered. 2*(mean-lo) equals the
	// true span for a uniform spill and shrinks under skew; whatever falls
	// past the root stays in far for a later refill, by which time the
	// clock is closer and the span estimate tighter.
	var sum Time
	for _, r := range far {
		sum += r.at - lo
	}
	span := hi - lo
	if bulk := 2*(sum/Time(len(far))) + 1; bulk < span {
		span = bulk
	}
	width := span/Time(nb) + 1
	rg := rung{
		start:   lo,
		width:   width,
		end:     satAfter(lo, span+Time(nb)), // >= lo + nb*width, saturated
		count:   0,
		buckets: e.getBuckets(nb),
	}
	kept := far[:0]
	var keptLo, keptHi Time
	for _, r := range far {
		if r.at >= rg.end {
			if len(kept) == 0 {
				keptLo, keptHi = r.at, r.at
			} else {
				if r.at < keptLo {
					keptLo = r.at
				}
				if r.at > keptHi {
					keptHi = r.at
				}
			}
			kept = append(kept, r)
			continue
		}
		b := int((r.at - lo) / width)
		if b >= nb {
			b = nb - 1
		}
		if rg.buckets[b] == nil {
			rg.buckets[b] = e.getBucket()
		}
		rg.buckets[b] = append(rg.buckets[b], r)
		rg.count++
	}
	e.far = kept
	e.farLo, e.farHi = keptLo, keptHi
	e.rungs = append(e.rungs, rg)
}

// advance moves the current window forward: adopt the next non-empty
// bucket (splitting it first if overweight), pop exhausted rungs, or
// re-ladder the far spill. Reports whether any pending ref exists.
func (e *Engine) advance() bool {
	for {
		if e.curFront < len(e.cur) { // a refill may have filled the window directly
			return true
		}
		if n := len(e.rungs); n > 0 {
			rg := &e.rungs[n-1]
			if rg.count == 0 {
				// Extend the empty current window to the rung's end so
				// later inserts in this range stay correctly routed.
				e.curEnd = rg.end
				for _, b := range rg.buckets {
					e.putBucket(b)
				}
				e.putBuckets(rg.buckets)
				e.rungs = e.rungs[:n-1]
				continue
			}
			j := rg.next
			for len(rg.buckets[j]) == 0 {
				j++
			}
			refs := rg.buckets[j]
			rg.buckets[j] = nil
			rg.next = j + 1
			rg.count -= len(refs)
			bstart := rg.start + Time(j)*rg.width
			bend := satAfter(bstart, rg.width)
			if j == len(rg.buckets)-1 || bend > rg.end {
				bend = rg.end
			}
			if len(refs) > spawnThreshold && bend-bstart > 1 {
				e.spawnRung(bstart, bend, refs)
				continue
			}
			e.adoptCur(refs)
			e.curEnd = bend
			return true
		}
		if len(e.far) == 0 {
			return false
		}
		e.refill()
	}
}

// peekLive returns the earliest live ref without removing it, discarding
// cancelled refs as it encounters them.
func (e *Engine) peekLive() (ref, bool) {
	for {
		for e.curFront < len(e.cur) {
			r := e.cur[e.curFront]
			if e.slab[r.idx].gen == r.gen {
				return r, true
			}
			e.popCur()
		}
		if !e.advance() {
			return ref{}, false
		}
	}
}

// At schedules fn to fire at virtual instant t. Scheduling into the past
// (t < Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, e.now))
	}
	e.schedule(t, fn)
}

// After schedules fn to fire d from now. Negative d fires "now" (after all
// events already scheduled for the current instant).
func (e *Engine) After(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	e.schedule(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero Timer is valid and inert.
type Timer struct {
	eng *Engine
	idx int32
	gen uint32
}

// Stop cancels the timer, releasing its slot — and its callback — at once.
// It is safe to call multiple times, and after the event has fired (in
// which case it has no effect).
func (t Timer) Stop() {
	e := t.eng
	if e == nil {
		return
	}
	if s := &e.slab[t.idx]; s.gen == t.gen && s.fn != nil {
		e.release(t.idx)
	}
}

// AfterTimer schedules fn to fire d from now and returns a Timer that can
// cancel it.
func (e *Engine) AfterTimer(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: AfterTimer called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	idx, gen := e.schedule(e.now.Add(d), fn)
	return Timer{eng: e, idx: idx, gen: gen}
}

// Ticker repeatedly fires a callback at a fixed period until stopped.
type Ticker struct {
	stopped bool
	timer   Timer
}

// Stop halts the ticker; the callback will not fire again, and the pending
// tick's slot and closure are released immediately.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Every schedules fn to fire every period, with the first firing one full
// period from now (matching heartbeat semantics: a heartbeat is sent after
// the interval elapses, not immediately). The period must be positive.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	if fn == nil {
		panic("sim: Every called with nil callback")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		fn()
		if t.stopped {
			return
		}
		t.timer = e.AfterTimer(period, tick)
	}
	t.timer = e.AfterTimer(period, tick)
	return t
}

// Run fires events in order until the queue is empty, and returns the final
// virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(Infinity)
}

// RunUntil fires events in order until the queue is empty or the next event
// would fire after the deadline, and returns the current virtual time. Events
// exactly at the deadline fire. The clock stays at the last fired event; it
// does not jump to the deadline, so work can resume afterwards.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Run re-entered from within an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		r, ok := e.peekLive()
		if !ok || r.at > deadline {
			break
		}
		e.popCur()
		fn := e.slab[r.idx].fn
		e.release(r.idx)
		e.now = r.at
		e.fired++
		fn()
	}
	return e.now
}

// Step fires the single next pending event (skipping cancelled ones) and
// reports whether an event fired.
func (e *Engine) Step() bool {
	r, ok := e.peekLive()
	if !ok {
		return false
	}
	e.popCur()
	fn := e.slab[r.idx].fn
	e.release(r.idx)
	e.now = r.at
	e.fired++
	fn()
	return true
}
