package sim

import "time"

// Coalescer batches callbacks that are scheduled back-to-back for the same
// instant into a single engine event, so N container launches on one node
// cost one queue insertion instead of N. Ordering is preserved exactly: a
// batch only absorbs a callback when nothing else has been scheduled on the
// engine since the batch itself (checked via SeqMark), so merged callbacks
// occupy the same position in the virtual timeline that N separate events
// would have — they run consecutively either way. Anything that would
// interleave (a different due time, or an unrelated event scheduled in
// between) starts a fresh batch.
//
// A Coalescer is single-owner, like the Engine itself: use one per
// component (e.g. per NodeManager), from engine callbacks only.
type Coalescer struct {
	eng  *Engine
	cur  *coalesceBatch
	at   Time
	mark uint64
}

type coalesceBatch struct {
	fns []func()
}

// NewCoalescer returns a coalescer scheduling on eng.
func NewCoalescer(eng *Engine) *Coalescer {
	return &Coalescer{eng: eng}
}

// After schedules fn after d, merging it into the pending batch when that
// is provably order-preserving (same due instant, no intervening engine
// activity).
func (c *Coalescer) After(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Coalescer.After called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	due := c.eng.Now().Add(d)
	if c.cur != nil && c.at == due && c.eng.SeqMark() == c.mark {
		c.cur.fns = append(c.cur.fns, fn)
		return
	}
	b := &coalesceBatch{fns: append(make([]func(), 0, 4), fn)}
	c.cur = b
	c.at = due
	c.eng.At(due, func() {
		// Once the batch starts running it must not absorb more callbacks —
		// they would be silently skipped. Detach before firing.
		if c.cur == b {
			c.cur = nil
		}
		for _, f := range b.fns {
			f()
		}
	})
	c.mark = c.eng.SeqMark()
}
