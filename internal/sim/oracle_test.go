package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The ladder-queue engine is verified here against a brutally simple
// oracle: an unordered list popped by linear min-scan on (time, seq).
// Both queues are driven through the same byte script — same-instant
// bursts, far-future outliers, cancels, staged RunUntil segments — and
// must fire the same events at the same virtual instants in the same
// order.

// oracleQueue is the reference implementation. O(n) per pop, obviously
// correct, test-only.
type oracleQueue struct {
	now    Time
	seq    uint64
	events []*oracleEvent
}

type oracleEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
}

func (o *oracleQueue) after(d time.Duration, id int) *oracleEvent {
	if d < 0 {
		d = 0
	}
	o.seq++
	e := &oracleEvent{at: o.now.Add(d), seq: o.seq, id: id}
	o.events = append(o.events, e)
	return e
}

func (o *oracleQueue) pending() int {
	n := 0
	for _, e := range o.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// runUntil pops events in (at, seq) order through the deadline, firing ids.
func (o *oracleQueue) runUntil(deadline Time, fire func(id int, at Time)) {
	for {
		best := -1
		for i, e := range o.events {
			if e.cancelled {
				continue
			}
			if best < 0 || e.at < o.events[best].at ||
				(e.at == o.events[best].at && e.seq < o.events[best].seq) {
				best = i
			}
		}
		if best < 0 || o.events[best].at > deadline {
			return
		}
		e := o.events[best]
		o.events[best] = o.events[len(o.events)-1]
		o.events = o.events[:len(o.events)-1]
		o.now = e.at
		fire(e.id, e.at)
	}
}

type firing struct {
	id int
	at Time
}

// runOracleScript drives the engine and the oracle through one script and
// compares every observable: firing order, firing instants, pending counts
// after each advance, and the final clock.
func runOracleScript(t testing.TB, script []byte) {
	eng := NewEngine()
	var oracle oracleQueue

	var engLog, oraLog []firing
	engTimers := make(map[int]Timer)
	oraTimers := make(map[int]*oracleEvent)
	var liveIDs []int
	nextID := 0

	scheduleBoth := func(d time.Duration, cancellable bool) {
		id := nextID
		nextID++
		if cancellable {
			engTimers[id] = eng.AfterTimer(d, func() {
				engLog = append(engLog, firing{id, eng.Now()})
				delete(engTimers, id)
			})
			oraTimers[id] = oracle.after(d, id)
			liveIDs = append(liveIDs, id)
		} else {
			eng.After(d, func() { engLog = append(engLog, firing{id, eng.Now()}) })
			oracle.after(d, id)
		}
	}
	advanceBoth := func(d time.Duration) {
		deadline := eng.Now().Add(d)
		eng.RunUntil(deadline)
		oracle.runUntil(deadline, func(id int, at Time) {
			oraLog = append(oraLog, firing{id, at})
			delete(oraTimers, id)
		})
	}

	i := 0
	next := func() byte {
		if i >= len(script) {
			return 0
		}
		b := script[i]
		i++
		return b
	}
	for i < len(script) {
		switch op := next(); op % 6 {
		case 0: // same-instant burst
			k := int(next())%32 + 1
			d := time.Duration(next()) * time.Millisecond
			for j := 0; j < k; j++ {
				scheduleBoth(d, j%2 == 0)
			}
		case 1: // short, sub-ms granularity
			scheduleBoth(time.Duration(next())*37*time.Microsecond, false)
		case 2: // far-future outlier
			scheduleBoth(time.Duration(next())*3*time.Second, true)
		case 3: // mid-range cancellable
			scheduleBoth(time.Duration(next())*700*time.Microsecond, true)
		case 4: // cancel a random live timer (in both)
			if len(liveIDs) > 0 {
				j := int(next()) % len(liveIDs)
				id := liveIDs[j]
				liveIDs[j] = liveIDs[len(liveIDs)-1]
				liveIDs = liveIDs[:len(liveIDs)-1]
				if tm, ok := engTimers[id]; ok {
					tm.Stop()
					delete(engTimers, id)
				}
				if ev, ok := oraTimers[id]; ok {
					ev.cancelled = true
					delete(oraTimers, id)
				}
			}
		case 5: // advance time
			advanceBoth(time.Duration(next()) * 13 * time.Millisecond)
			if eng.Pending() != oracle.pending() {
				t.Fatalf("pending diverged mid-run: engine %d, oracle %d", eng.Pending(), oracle.pending())
			}
		}
	}
	// Drain both completely.
	advanceBoth(500 * time.Hour)

	if len(engLog) != len(oraLog) {
		t.Fatalf("fired %d events, oracle fired %d", len(engLog), len(oraLog))
	}
	for j := range engLog {
		if engLog[j] != oraLog[j] {
			t.Fatalf("firing %d diverged: engine %+v, oracle %+v", j, engLog[j], oraLog[j])
		}
	}
	if eng.Pending() != 0 || oracle.pending() != 0 {
		t.Fatalf("undrained: engine %d pending, oracle %d", eng.Pending(), oracle.pending())
	}
	if got, want := eng.Now(), oracle.now; len(engLog) > 0 && got != want {
		t.Fatalf("final clock diverged: engine %v, oracle %v", got, want)
	}
}

// TestEngineMatchesOracle runs randomized scripts over many seeds.
func TestEngineMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := make([]byte, 400)
		rng.Read(script)
		runOracleScript(t, script)
	}
}

// TestEngineOracleAdversarial pins the shapes randomized scripts might
// miss: everything at one instant, cancel-everything, and a spill whose
// span is poisoned by one far outlier (the refill skew case).
func TestEngineOracleAdversarial(t *testing.T) {
	t.Run("single-instant-burst", func(t *testing.T) {
		// op 0 with k=32, d=5ms, repeatedly; then advance.
		var s []byte
		for j := 0; j < 20; j++ {
			s = append(s, 0, 255, 5)
		}
		s = append(s, 5, 255)
		runOracleScript(t, s)
	})
	t.Run("cancel-heavy", func(t *testing.T) {
		var s []byte
		for j := 0; j < 30; j++ {
			s = append(s, 3, byte(j*7), 4, byte(j*13))
		}
		s = append(s, 5, 255)
		runOracleScript(t, s)
	})
	t.Run("skewed-far-spill", func(t *testing.T) {
		var s []byte
		s = append(s, 2, 255) // one outlier ~12.7min out
		for j := 0; j < 40; j++ {
			s = append(s, 1, byte(j*11))
		}
		s = append(s, 5, 255, 5, 255, 5, 255)
		runOracleScript(t, s)
	})
}

// FuzzEngineOrder lets the fuzzer hunt for schedules where the ladder
// queue and the oracle disagree.
func FuzzEngineOrder(f *testing.F) {
	f.Add([]byte{0, 255, 5, 5, 255})
	f.Add([]byte{2, 200, 1, 3, 5, 100, 4, 0, 5, 255})
	f.Add([]byte{3, 9, 3, 9, 4, 1, 0, 31, 0, 5, 40})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			return
		}
		runOracleScript(t, script)
	})
}
