package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleAndFire measures raw event throughput of the engine, the
// floor under every simulation in the repository.
func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkNestedCascade measures chains of events scheduling events, the
// dominant pattern in task state machines.
func BenchmarkNestedCascade(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var step func(remaining int)
	step = func(remaining int) {
		if remaining > 0 {
			e.After(time.Millisecond, func() { step(remaining - 1) })
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(100)
		e.Run()
	}
}

// BenchmarkDeviceQueue measures the FIFO device under heavy contention, the
// disk/NIC hot path.
func BenchmarkDeviceQueue(b *testing.B) {
	e := NewEngine()
	d := NewDevice(e, "disk", 100e6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Use(1<<20, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkSemaphoreChurn measures acquire/release cycles on a contended
// core semaphore.
func BenchmarkSemaphoreChurn(b *testing.B) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(1, func() {
			e.After(time.Millisecond, func() { s.Release(1) })
		})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkTimerCancelChurn measures the watchdog pattern that dominates
// NodeManager launches: arm a timer, do a little work, cancel it before it
// fires. The free list must make the cancelled slot reusable immediately.
func BenchmarkTimerCancelChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := e.AfterTimer(80*time.Millisecond, func() {})
		e.After(time.Duration(i%500)*time.Microsecond, func() {})
		w.Stop()
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkFarFutureInserts measures a deep pending set salted with
// far-future outliers — the shape that forces the overflow spill and its
// outlier-robust refill, rather than the near-term calendar.
func BenchmarkFarFutureInserts(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			e.After(time.Duration(i%7+1)*10*time.Second, func() {})
		} else {
			e.After(time.Duration(i%997)*time.Microsecond, func() {})
		}
		if i%8192 == 8191 {
			e.Run()
		}
	}
	e.Run()
}
