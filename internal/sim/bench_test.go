package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleAndFire measures raw event throughput of the engine, the
// floor under every simulation in the repository.
func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkNestedCascade measures chains of events scheduling events, the
// dominant pattern in task state machines.
func BenchmarkNestedCascade(b *testing.B) {
	e := NewEngine()
	var step func(remaining int)
	step = func(remaining int) {
		if remaining > 0 {
			e.After(time.Millisecond, func() { step(remaining - 1) })
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(100)
		e.Run()
	}
}

// BenchmarkDeviceQueue measures the FIFO device under heavy contention, the
// disk/NIC hot path.
func BenchmarkDeviceQueue(b *testing.B) {
	e := NewEngine()
	d := NewDevice(e, "disk", 100e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Use(1<<20, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkSemaphoreChurn measures acquire/release cycles on a contended
// core semaphore.
func BenchmarkSemaphoreChurn(b *testing.B) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(1, func() {
			e.After(time.Millisecond, func() { s.Release(1) })
		})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
