package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	end := e.Run()
	if end != Time(3*time.Second) {
		t.Fatalf("final time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(time.Second, func() {
		times = append(times, e.Now())
		e.After(2*time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != Time(time.Second) || times[1] != Time(3*time.Second) {
		t.Fatalf("times = %v, want [1s 3s]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(time.Second, func() {
		e.After(-5*time.Second, func() {
			fired = true
			if e.Now() != Time(time.Second) {
				t.Errorf("fired at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.After(1*time.Second, func() { fired = append(fired, 1) })
	e.After(2*time.Second, func() { fired = append(fired, 2) })
	e.After(3*time.Second, func() { fired = append(fired, 3) })
	now := e.RunUntil(Time(2 * time.Second))
	if now != Time(2*time.Second) {
		t.Fatalf("RunUntil returned %v, want 2s", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events 1 and 2 only", fired)
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after Run, want all three", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.AfterTimer(time.Second, func() { fired = true })
	tm.Stop()
	tm.Stop() // double stop is safe
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerFiresWhenNotStopped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AfterTimer(time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tk *Ticker
	tk = e.Every(time.Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, at := range ticks {
		want := Time(time.Duration(i+1) * time.Second)
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.After(time.Second, func() { n++ })
	e.After(2*time.Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("after first Step n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("after second Step n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(2 * time.Second)
	if got := a.Add(3 * time.Second); got != Time(5*time.Second) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Add(-5 * time.Second); got != 0 {
		t.Errorf("Add negative clamped = %v, want 0", got)
	}
	if got := a.Sub(Time(500 * time.Millisecond)); got != 1500*time.Millisecond {
		t.Errorf("Sub = %v", got)
	}
	if a.Seconds() != 2.0 {
		t.Errorf("Seconds = %v", a.Seconds())
	}
	if a.String() != "2.000s" {
		t.Errorf("String = %q", a.String())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine ends at the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			if dd > max {
				max = dd
			}
			e.After(dd, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		if len(delays) > 0 && e.Now() != Time(max) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two engines fed the same schedule fire identically (determinism).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		run := func() []Time {
			rng := rand.New(rand.NewSource(seed))
			e := NewEngine()
			var fired []Time
			for i := 0; i < int(n); i++ {
				e.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
					fired = append(fired, e.Now())
				})
			}
			e.Run()
			return fired
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceSerializesTransfers(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, "disk", 100) // 100 B/s
	var done []Time
	d.Use(100, func() { done = append(done, e.Now()) }) // 1s
	d.Use(200, func() { done = append(done, e.Now()) }) // +2s
	e.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[0] != Time(time.Second) || done[1] != Time(3*time.Second) {
		t.Fatalf("completion times = %v, want [1s 3s]", done)
	}
}

func TestDeviceZeroSizeWaitsForBacklog(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, "disk", 100)
	d.Use(100, func() {})
	var at Time
	d.Use(0, func() { at = e.Now() })
	e.Run()
	if at != Time(time.Second) {
		t.Fatalf("zero-size completed at %v, want 1s", at)
	}
}

func TestDeviceBacklogAndBusy(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, "disk", 100)
	d.Use(100, func() {})
	d.Use(100, func() {})
	if got := d.Backlog(); got != 2*time.Second {
		t.Fatalf("Backlog = %v, want 2s", got)
	}
	e.Run()
	if got := d.Backlog(); got != 0 {
		t.Fatalf("Backlog after drain = %v, want 0", got)
	}
	if got := d.BusyTime(); got != 2*time.Second {
		t.Fatalf("BusyTime = %v, want 2s", got)
	}
}

func TestDeviceTransferTime(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, "net", 1e6)
	if got := d.TransferTime(5e5); got != 500*time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
	if got := d.TransferTime(0); got != 0 {
		t.Fatalf("TransferTime(0) = %v", got)
	}
	if got := d.TransferTime(-5); got != 0 {
		t.Fatalf("TransferTime(-5) = %v", got)
	}
}

func TestDeviceRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice with zero rate did not panic")
		}
	}()
	NewDevice(NewEngine(), "bad", 0)
}

func TestSemaphoreImmediateGrant(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 2)
	granted := false
	s.Acquire(2, func() { granted = true })
	e.Run()
	if !granted {
		t.Fatal("acquire within capacity was not granted")
	}
	if s.Available() != 0 {
		t.Fatalf("Available = %d, want 0", s.Available())
	}
}

func TestSemaphoreFIFOQueueing(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Acquire(1, func() {
			order = append(order, i)
			e.After(time.Second, func() { s.Release(1) })
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("end time = %v, want 3s (serialized)", e.Now())
	}
}

func TestSemaphoreLargeRequestBlocksSmaller(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 2)
	var order []string
	s.Acquire(2, func() {
		order = append(order, "big")
		e.After(time.Second, func() { s.Release(2) })
	})
	s.Acquire(2, func() {
		order = append(order, "big2")
		e.After(time.Second, func() { s.Release(2) })
	})
	s.Acquire(1, func() { order = append(order, "small") })
	e.Run()
	if len(order) != 3 || order[0] != "big" || order[1] != "big2" || order[2] != "small" {
		t.Fatalf("order = %v, want big, big2, small (FIFO)", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 2)
	if !s.TryAcquire(1) {
		t.Fatal("TryAcquire(1) failed with 2 free")
	}
	if s.TryAcquire(2) {
		t.Fatal("TryAcquire(2) succeeded with 1 free")
	}
	s.Release(1)
	if !s.TryAcquire(2) {
		t.Fatal("TryAcquire(2) failed after release")
	}
	if s.TryAcquire(0) {
		t.Fatal("TryAcquire(0) succeeded")
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Release(1)
}

// Property: a semaphore never grants more permits than its capacity, for any
// interleaving of acquire sizes and hold times.
func TestQuickSemaphoreNeverOversubscribed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		capacity := 1 + rng.Intn(8)
		s := NewSemaphore(e, "cores", capacity)
		inUse, maxInUse := 0, 0
		for i := 0; i < 50; i++ {
			n := 1 + rng.Intn(capacity)
			hold := time.Duration(rng.Intn(500)) * time.Millisecond
			e.After(time.Duration(rng.Intn(2000))*time.Millisecond, func() {
				s.Acquire(n, func() {
					inUse += n
					if inUse > maxInUse {
						maxInUse = inUse
					}
					e.After(hold, func() {
						inUse -= n
						s.Release(n)
					})
				})
			})
		}
		e.Run()
		return maxInUse <= capacity && inUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
