package sim

import (
	"fmt"
	"time"
)

// Device models a rate-limited, FIFO-serialized resource such as a disk or a
// network interface. Requests are served one at a time at a fixed byte rate;
// concurrent users therefore see their transfers stretched exactly as they
// would under fair sharing of the same aggregate bandwidth, while keeping the
// event schedule deterministic.
type Device struct {
	eng  *Engine
	name string
	rate float64 // bytes per second
	// free is the earliest instant at which the device can begin a new
	// transfer; it advances monotonically as requests queue behind one
	// another.
	free Time

	// busy accumulates total busy time for utilization reporting.
	busy time.Duration
}

// NewDevice creates a device served at rate bytes per second.
func NewDevice(eng *Engine, name string, rate float64) *Device {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: device %q needs a positive rate, got %v", name, rate))
	}
	return &Device{eng: eng, name: name, rate: rate}
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Rate returns the service rate in bytes per second.
func (d *Device) Rate() float64 { return d.rate }

// TransferTime reports how long moving n bytes takes at the device's rate,
// ignoring queueing.
func (d *Device) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / d.rate * float64(time.Second))
}

// Use enqueues a transfer of n bytes and invokes done when it completes.
// Zero or negative sizes complete after any already-queued work drains, with
// no service time of their own.
func (d *Device) Use(n int64, done func()) {
	if done == nil {
		panic("sim: Device.Use called with nil completion")
	}
	start := d.eng.Now()
	if d.free > start {
		start = d.free
	}
	dur := d.TransferTime(n)
	end := start.Add(dur)
	d.free = end
	d.busy += dur
	d.eng.At(end, done)
}

// BusyTime reports the cumulative time the device has spent (or is committed
// to spend) serving transfers.
func (d *Device) BusyTime() time.Duration { return d.busy }

// Backlog reports how long a new zero-size request would wait before being
// served, i.e. the current queue depth in time.
func (d *Device) Backlog() time.Duration {
	if d.free <= d.eng.Now() {
		return 0
	}
	return d.free.Sub(d.eng.Now())
}

// Semaphore is a counting semaphore with FIFO waiters, used to model
// exclusive resources such as CPU cores on a node.
type Semaphore struct {
	eng     *Engine
	name    string
	total   int
	avail   int
	waiters []waiter
}

type waiter struct {
	n  int
	fn func()
}

// NewSemaphore creates a semaphore with the given number of permits.
func NewSemaphore(eng *Engine, name string, permits int) *Semaphore {
	if permits <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q needs positive permits, got %d", name, permits))
	}
	return &Semaphore{eng: eng, name: name, total: permits, avail: permits}
}

// Total returns the permit capacity.
func (s *Semaphore) Total() int { return s.total }

// Available returns the number of currently free permits.
func (s *Semaphore) Available() int { return s.avail }

// Waiting returns the number of queued acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// Acquire requests n permits and schedules fn for the instant they are all
// granted (possibly immediately, in the current event). Requests are granted
// strictly in FIFO order; a large request at the head blocks later small
// ones, which models YARN's per-node allocation queue faithfully enough for
// our purposes.
func (s *Semaphore) Acquire(n int, fn func()) {
	if n <= 0 || n > s.total {
		panic(fmt.Sprintf("sim: semaphore %q cannot acquire %d of %d permits", s.name, n, s.total))
	}
	if fn == nil {
		panic("sim: Semaphore.Acquire called with nil callback")
	}
	s.waiters = append(s.waiters, waiter{n: n, fn: fn})
	s.dispatch()
}

// TryAcquire immediately takes n permits if available and reports success.
// It does not queue.
func (s *Semaphore) TryAcquire(n int) bool {
	if n <= 0 || n > s.total {
		return false
	}
	if len(s.waiters) > 0 || s.avail < n {
		return false
	}
	s.avail -= n
	return true
}

// Release returns n permits and wakes queued acquirers in order.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q release of %d", s.name, n))
	}
	s.avail += n
	if s.avail > s.total {
		panic(fmt.Sprintf("sim: semaphore %q over-released (%d > %d)", s.name, s.avail, s.total))
	}
	s.dispatch()
}

func (s *Semaphore) dispatch() {
	for len(s.waiters) > 0 && s.waiters[0].n <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		// Fire through the engine so the callback runs as its own event at
		// the current instant, keeping stack depth bounded and ordering
		// explicit.
		s.eng.After(0, w.fn)
	}
}
