// Package topology describes the simulated cluster: instance types, nodes,
// racks, and the multi-dimensional resources (virtual cores and memory)
// scheduled by YARN and by MRapid's D+ scheduler.
package topology

import "fmt"

// Resource is a two-dimensional resource vector, matching the YARN resource
// model the paper schedules against: virtual CPU cores and memory.
type Resource struct {
	VCores   int
	MemoryMB int
}

// Zero reports whether both dimensions are zero.
func (r Resource) Zero() bool { return r.VCores == 0 && r.MemoryMB == 0 }

// FitsIn reports whether r can be satisfied out of capacity c.
func (r Resource) FitsIn(c Resource) bool {
	return r.VCores <= c.VCores && r.MemoryMB <= c.MemoryMB
}

// Add returns the component-wise sum r + o.
func (r Resource) Add(o Resource) Resource {
	return Resource{VCores: r.VCores + o.VCores, MemoryMB: r.MemoryMB + o.MemoryMB}
}

// Sub returns the component-wise difference r − o. It panics if the result
// would go negative in either dimension: resource accounting bugs must not
// pass silently.
func (r Resource) Sub(o Resource) Resource {
	out := Resource{VCores: r.VCores - o.VCores, MemoryMB: r.MemoryMB - o.MemoryMB}
	if out.VCores < 0 || out.MemoryMB < 0 {
		panic(fmt.Sprintf("topology: resource underflow: %v - %v", r, o))
	}
	return out
}

// Scale returns r multiplied by k in both dimensions.
func (r Resource) Scale(k int) Resource {
	return Resource{VCores: r.VCores * k, MemoryMB: r.MemoryMB * k}
}

// Dominant identifies which resource dimension is dominant.
type Dominant int

// Dominant resource dimensions.
const (
	DominantVCores Dominant = iota
	DominantMemory
)

func (d Dominant) String() string {
	if d == DominantVCores {
		return "vcores"
	}
	return "memory"
}

// Of returns the magnitude of dimension d within r.
func (d Dominant) Of(r Resource) int {
	if d == DominantVCores {
		return r.VCores
	}
	return r.MemoryMB
}

// DominantOf determines the cluster-wide dominant resource: the dimension
// with the highest usage ratio used/total. This follows the paper's
// definition ("Dominant resource is a kind of resource such as CPU or memory
// that has the highest usage ratio in the cluster"), which is cluster-global
// rather than DRF's per-user share. Ties favor vcores, the scarcer dimension
// for map scheduling.
func DominantOf(used, total Resource) Dominant {
	cpuRatio := ratio(used.VCores, total.VCores)
	memRatio := ratio(used.MemoryMB, total.MemoryMB)
	if memRatio > cpuRatio {
		return DominantMemory
	}
	return DominantVCores
}

func ratio(used, total int) float64 {
	if total <= 0 {
		return 0
	}
	return float64(used) / float64(total)
}

func (r Resource) String() string {
	return fmt.Sprintf("<%d vcores, %d MB>", r.VCores, r.MemoryMB)
}
