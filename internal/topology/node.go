package topology

import (
	"fmt"

	"mrapid/internal/sim"
)

// Node is one simulated machine: a DataNode + NodeManager host. It owns the
// physical devices tasks contend for — a disk, a network interface, and CPU
// cores — all driven by the shared event engine.
type Node struct {
	ID   int
	Name string
	Rack string
	Type InstanceType

	Disk  *sim.Device    // sequential disk bandwidth, shared by all tasks on the node
	NIC   *sim.Device    // network interface, shared by HDFS reads and shuffle
	Cores *sim.Semaphore // physical cores; compute phases hold one core each

	eng *sim.Engine

	// down and epoch model machine liveness for fault injection. Simulated
	// events cannot be cancelled, so in-flight work belonging to a crashed
	// machine is abandoned instead: each task captures Epoch() when it starts
	// and checks AliveEpoch at every continuation.
	down  bool
	epoch int
}

// NewNode builds a node of the given instance type.
func NewNode(eng *sim.Engine, id int, rack string, it InstanceType) *Node {
	name := fmt.Sprintf("node-%02d", id)
	return &Node{
		ID:    id,
		Name:  name,
		Rack:  rack,
		Type:  it,
		Disk:  sim.NewDevice(eng, name+"/disk", it.DiskReadBps),
		NIC:   sim.NewDevice(eng, name+"/nic", it.NetworkBps),
		Cores: sim.NewSemaphore(eng, name+"/cores", it.Cores),
		eng:   eng,
	}
}

// Alive reports whether the machine is up.
func (n *Node) Alive() bool { return !n.down }

// Epoch returns the machine's boot generation. It increments on every crash,
// so a continuation scheduled before a crash can tell that the process it
// belonged to no longer exists even if the machine has since rebooted.
func (n *Node) Epoch() int { return n.epoch }

// AliveEpoch reports whether the machine is up AND still in the given boot
// generation — the check every in-flight task continuation makes.
func (n *Node) AliveEpoch(e int) bool { return !n.down && n.epoch == e }

// Fail crashes the machine: every process on it dies instantly. Local disk
// contents (HDFS block replicas) survive and become readable again after
// Restart, like a real machine losing power. Failing a dead machine is a
// no-op.
func (n *Node) Fail() {
	if n.down {
		return
	}
	n.down = true
	n.epoch++
}

// Restart boots a crashed machine with fresh devices: queued work on the old
// disk/NIC/cores belonged to processes that died with the previous epoch, so
// the reborn machine starts with empty queues. Restarting a live machine is
// a no-op.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.Disk = sim.NewDevice(n.eng, n.Name+"/disk", n.Type.DiskReadBps)
	n.NIC = sim.NewDevice(n.eng, n.Name+"/nic", n.Type.NetworkBps)
	n.Cores = sim.NewSemaphore(n.eng, n.Name+"/cores", n.Type.Cores)
}

// Capacity returns the node's schedulable resource vector.
func (n *Node) Capacity() Resource { return n.Type.Resource() }

func (n *Node) String() string {
	return fmt.Sprintf("%s(%s,%s)", n.Name, n.Type.Name, n.Rack)
}

// Cluster is the set of simulated nodes plus the rack map. By convention
// node 0 hosts the NameNode and ResourceManager (the paper's clusters have a
// dedicated NameNode); worker nodes are DataNodes.
type Cluster struct {
	Eng   *sim.Engine
	Nodes []*Node // all nodes; Nodes[0] is the master
	racks map[string][]*Node

	// CoreSwitch carries all cross-rack traffic. Its aggregate bandwidth is
	// half the sum of the worker NICs, modeling the 2:1 oversubscription
	// typical of the era's datacenter fabrics; this is what makes RackLocal
	// placement cheaper than ANY.
	CoreSwitch *sim.Device
}

// Spec describes a homogeneous cluster to build: one master plus Workers
// DataNodes of the given instance type, spread over Racks racks.
type Spec struct {
	Instance InstanceType
	Workers  int
	Racks    int
}

// NewCluster builds a cluster per spec. Workers are assigned to racks
// round-robin; the master lives in the first rack. Racks defaults to 2 when
// unset so that the RackLocal/ANY distinction in HDFS placement and the D+
// scheduler is always exercised.
func NewCluster(eng *sim.Engine, spec Spec) (*Cluster, error) {
	if spec.Workers <= 0 {
		return nil, fmt.Errorf("topology: cluster needs at least one worker, got %d", spec.Workers)
	}
	racks := spec.Racks
	if racks <= 0 {
		racks = 2
	}
	if racks > spec.Workers {
		racks = spec.Workers
	}
	c := &Cluster{Eng: eng, racks: make(map[string][]*Node)}
	master := NewNode(eng, 0, rackName(0), spec.Instance)
	c.Nodes = append(c.Nodes, master)
	c.racks[master.Rack] = append(c.racks[master.Rack], master)
	for i := 1; i <= spec.Workers; i++ {
		rack := rackName((i - 1) % racks)
		n := NewNode(eng, i, rack, spec.Instance)
		c.Nodes = append(c.Nodes, n)
		c.racks[rack] = append(c.racks[rack], n)
	}
	c.CoreSwitch = sim.NewDevice(eng, "core-switch", float64(spec.Workers)*spec.Instance.NetworkBps/2)
	return c, nil
}

func rackName(i int) string { return fmt.Sprintf("rack-%d", i) }

// Master returns the node hosting the NameNode and ResourceManager.
func (c *Cluster) Master() *Node { return c.Nodes[0] }

// Workers returns the DataNode/NodeManager hosts (everything but the master).
func (c *Cluster) Workers() []*Node { return c.Nodes[1:] }

// Racks returns the sorted list of rack names.
func (c *Cluster) RackOf(n *Node) string { return n.Rack }

// NodesInRack returns the nodes in the named rack (including the master when
// it lives there).
func (c *Cluster) NodesInRack(rack string) []*Node { return c.racks[rack] }

// SameRack reports whether two nodes share a rack.
func SameRack(a, b *Node) bool { return a.Rack == b.Rack }

// TotalWorkerResource sums the capacity of all worker nodes.
func (c *Cluster) TotalWorkerResource() Resource {
	var total Resource
	for _, n := range c.Workers() {
		total = total.Add(n.Capacity())
	}
	return total
}
