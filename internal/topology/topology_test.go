package topology

import (
	"testing"
	"testing/quick"

	"mrapid/internal/sim"
)

func TestResourceFitsIn(t *testing.T) {
	cases := []struct {
		r, c Resource
		want bool
	}{
		{Resource{1, 512}, Resource{2, 1024}, true},
		{Resource{2, 1024}, Resource{2, 1024}, true},
		{Resource{3, 512}, Resource{2, 1024}, false},
		{Resource{1, 2048}, Resource{2, 1024}, false},
		{Resource{}, Resource{}, true},
	}
	for _, c := range cases {
		if got := c.r.FitsIn(c.c); got != c.want {
			t.Errorf("%v.FitsIn(%v) = %v, want %v", c.r, c.c, got, c.want)
		}
	}
}

func TestResourceArithmetic(t *testing.T) {
	a := Resource{2, 1024}
	b := Resource{1, 512}
	if got := a.Add(b); got != (Resource{3, 1536}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resource{1, 512}) {
		t.Errorf("Sub = %v", got)
	}
	if got := b.Scale(3); got != (Resource{3, 1536}) {
		t.Errorf("Scale = %v", got)
	}
	if !(Resource{}).Zero() {
		t.Error("zero resource not Zero()")
	}
	if a.Zero() {
		t.Error("nonzero resource reported Zero()")
	}
}

func TestResourceSubUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub underflow did not panic")
		}
	}()
	Resource{1, 100}.Sub(Resource{2, 50})
}

// Property: Add then Sub round-trips for non-negative vectors.
func TestQuickResourceAddSubRoundTrip(t *testing.T) {
	f := func(av, am, bv, bm uint8) bool {
		a := Resource{int(av), int(am)}
		b := Resource{int(bv), int(bm)}
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDominantOf(t *testing.T) {
	total := Resource{VCores: 10, MemoryMB: 1000}
	if d := DominantOf(Resource{5, 100}, total); d != DominantVCores {
		t.Errorf("cpu-heavy usage: dominant = %v", d)
	}
	if d := DominantOf(Resource{1, 900}, total); d != DominantMemory {
		t.Errorf("mem-heavy usage: dominant = %v", d)
	}
	// Ties favor vcores.
	if d := DominantOf(Resource{5, 500}, total); d != DominantVCores {
		t.Errorf("tie: dominant = %v", d)
	}
	// Degenerate totals do not divide by zero.
	if d := DominantOf(Resource{5, 500}, Resource{}); d != DominantVCores {
		t.Errorf("zero total: dominant = %v", d)
	}
}

func TestDominantAccessors(t *testing.T) {
	r := Resource{3, 700}
	if DominantVCores.Of(r) != 3 || DominantMemory.Of(r) != 700 {
		t.Errorf("Of accessors wrong: %d %d", DominantVCores.Of(r), DominantMemory.Of(r))
	}
	if DominantVCores.String() != "vcores" || DominantMemory.String() != "memory" {
		t.Error("Dominant String() wrong")
	}
}

func TestInstanceCatalogMatchesTableII(t *testing.T) {
	want := []struct {
		name   string
		cores  int
		memMB  int
		diskGB int
		price  float64
	}{
		{"A1", 1, 1792, 70, 0.09},
		{"A2", 2, 3584, 135, 0.18},
		{"A3", 4, 7168, 285, 0.36},
	}
	if len(InstanceCatalog) != len(want) {
		t.Fatalf("catalog size = %d, want %d", len(InstanceCatalog), len(want))
	}
	for i, w := range want {
		it := InstanceCatalog[i]
		if it.Name != w.name || it.Cores != w.cores || it.MemoryMB != w.memMB ||
			it.DiskGB != w.diskGB || it.PricePerHour != w.price {
			t.Errorf("catalog[%d] = %+v, want %+v", i, it, w)
		}
	}
}

func TestInstanceByName(t *testing.T) {
	it, err := InstanceByName("A2")
	if err != nil || it.Cores != 2 {
		t.Fatalf("InstanceByName(A2) = %+v, %v", it, err)
	}
	if _, err := InstanceByName("X9"); err == nil {
		t.Fatal("unknown instance did not error")
	}
}

func TestInstanceContainerFit(t *testing.T) {
	// Hadoop 2.2 sizes containers by memory only: A3's 7 GB take seven 1 GB
	// containers despite having 4 physical cores (CPU oversubscription).
	if got := A3.MaxContainers(); got != 7 {
		t.Errorf("A3.MaxContainers = %d, want 7", got)
	}
	// A2: 3.5 GB → 3 containers on 2 cores.
	if got := A2.MaxContainers(); got != 3 {
		t.Errorf("A2.MaxContainers = %d, want 3", got)
	}
	// A1: 1.75 GB → 1 container.
	if got := A1.MaxContainers(); got != 1 {
		t.Errorf("A1.MaxContainers = %d, want 1", got)
	}
	if got := A3.ContainerResource(); got != (Resource{1, 1024}) {
		t.Errorf("A3.ContainerResource = %v", got)
	}
	// Schedulable vcores exceed physical cores by design.
	if A3.SchedulableVCores() != 7 || A3.Cores != 4 {
		t.Errorf("A3 vcores/cores = %d/%d", A3.SchedulableVCores(), A3.Cores)
	}
	// Explicit VCores override.
	it := A2
	it.VCores = 4
	if it.SchedulableVCores() != 4 {
		t.Errorf("override SchedulableVCores = %d", it.SchedulableVCores())
	}
	it.VCores = 0
	if it.SchedulableVCores() != it.Cores {
		t.Errorf("default SchedulableVCores = %d", it.SchedulableVCores())
	}
}

func TestCostParityOfPaperClusters(t *testing.T) {
	// The paper compares a 10-node A2 cluster with a 5-node A3 cluster
	// "which have around the same cost" — verify from our Table II data.
	a2Cost := 10 * A2.PricePerHour
	a3Cost := 5 * A3.PricePerHour
	if a2Cost != a3Cost {
		t.Errorf("cost parity broken: 10×A2 = $%.2f, 5×A3 = $%.2f", a2Cost, a3Cost)
	}
}

func TestNewClusterShape(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, Spec{Instance: A3, Workers: 4, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5 (1 master + 4 workers)", len(c.Nodes))
	}
	if len(c.Workers()) != 4 {
		t.Fatalf("workers = %d, want 4", len(c.Workers()))
	}
	if c.Master().ID != 0 {
		t.Fatalf("master ID = %d", c.Master().ID)
	}
	// Round-robin racks: workers 1..4 → rack-0, rack-1, rack-0, rack-1.
	racks := map[string]int{}
	for _, n := range c.Workers() {
		racks[n.Rack]++
	}
	if racks["rack-0"] != 2 || racks["rack-1"] != 2 {
		t.Fatalf("rack distribution = %v, want 2/2", racks)
	}
}

func TestNewClusterValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewCluster(eng, Spec{Instance: A1, Workers: 0}); err == nil {
		t.Fatal("zero workers did not error")
	}
	// More racks than workers clamps.
	c, err := NewCluster(eng, Spec{Instance: A1, Workers: 2, Racks: 5})
	if err != nil {
		t.Fatal(err)
	}
	racks := map[string]bool{}
	for _, n := range c.Workers() {
		racks[n.Rack] = true
	}
	if len(racks) != 2 {
		t.Fatalf("got %d racks for 2 workers, want 2", len(racks))
	}
}

func TestClusterRackQueries(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := NewCluster(eng, Spec{Instance: A2, Workers: 4, Racks: 2})
	w := c.Workers()
	if !SameRack(w[0], w[2]) {
		t.Error("workers 1 and 3 should share rack-0")
	}
	if SameRack(w[0], w[1]) {
		t.Error("workers 1 and 2 should be in different racks")
	}
	in0 := c.NodesInRack("rack-0")
	if len(in0) != 3 { // master + workers 1,3
		t.Errorf("rack-0 has %d nodes, want 3", len(in0))
	}
	if c.RackOf(w[0]) != "rack-0" {
		t.Errorf("RackOf = %q", c.RackOf(w[0]))
	}
}

func TestTotalWorkerResource(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := NewCluster(eng, Spec{Instance: A3, Workers: 4})
	got := c.TotalWorkerResource()
	want := Resource{VCores: 28, MemoryMB: 4 * 7168}
	if got != want {
		t.Fatalf("TotalWorkerResource = %v, want %v", got, want)
	}
}

func TestNodeDevices(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 3, "rack-1", A2)
	if n.Disk.Rate() != A2.DiskReadBps {
		t.Errorf("disk rate = %v", n.Disk.Rate())
	}
	if n.NIC.Rate() != A2.NetworkBps {
		t.Errorf("nic rate = %v", n.NIC.Rate())
	}
	if n.Cores.Total() != 2 {
		t.Errorf("physical cores = %d", n.Cores.Total())
	}
	if n.Capacity() != (Resource{3, 3584}) {
		t.Errorf("capacity = %v", n.Capacity())
	}
	if n.String() == "" || n.Name != "node-03" {
		t.Errorf("naming wrong: %q / %q", n.String(), n.Name)
	}
}
