package topology

import "fmt"

// InstanceType describes a cloud VM flavor hosting one simulated node. The
// catalog mirrors Table II of the paper (Microsoft Azure A-series), extended
// with the I/O characteristics our cost model needs. The A-series used
// shared HDD-backed storage and a ~100 Mb/s-class virtual NIC per core-ish;
// exact rates do not matter for reproducing the paper's comparisons — only
// that disk and network costs are on the order of seconds for tens of
// megabytes, which these values give.
type InstanceType struct {
	Name          string
	Cores         int
	MemoryMB      int
	DiskGB        int
	PricePerHour  float64 // USD, from Table II; used by the cost-parity experiment
	DiskReadBps   float64 // sustained sequential read
	DiskWriteBps  float64 // sustained sequential write
	NetworkBps    float64 // per-node NIC bandwidth
	CPUSpeed      float64 // relative per-core compute speed (A-series baseline = 1.0)
	CompressBps   float64 // LZ-class codec compression throughput per core
	DecompressBps float64 // LZ-class codec decompression throughput per core
	ContainerMB   int     // default YARN container size on this instance
	ContainerCore int     // default vcores per container

	// VCores is the node's schedulable virtual-core capacity. Zero means
	// equal to Cores. Setting VCores = 2×Cores reproduces the paper's
	// Figure 12 configuration of two containers per physical core: YARN
	// hands out twice as many containers while the tasks still contend for
	// the physical cores.
	VCores int
}

// SchedulableVCores returns the YARN vcore capacity of one node.
func (it InstanceType) SchedulableVCores() int {
	if it.VCores > 0 {
		return it.VCores
	}
	return it.Cores
}

// Resource returns the schedulable capacity of one node of this type.
func (it InstanceType) Resource() Resource {
	return Resource{VCores: it.SchedulableVCores(), MemoryMB: it.MemoryMB}
}

// ContainerResource returns the default resource request for one task
// container on this instance type.
func (it InstanceType) ContainerResource() Resource {
	return Resource{VCores: it.ContainerCore, MemoryMB: it.ContainerMB}
}

// MaxContainers returns how many default containers fit on one node.
func (it InstanceType) MaxContainers() int {
	byCore := it.SchedulableVCores() / it.ContainerCore
	byMem := it.MemoryMB / it.ContainerMB
	if byMem < byCore {
		return byMem
	}
	return byCore
}

// The Azure A-series catalog from Table II of the paper. Disk and network
// rates are calibrated to 2013-era Azure A-series measurements (shared
// HDD-backed blob storage around 20–35 MB/s effective, 100 Mb/s-class NIC
// per instance, scaling modestly with size).
var (
	// A1: 1 core, 1.75 GB, 70 GB disk, $0.09/hr.
	A1 = InstanceType{
		Name: "A1", Cores: 1, MemoryMB: 1792, DiskGB: 70, PricePerHour: 0.09,
		DiskReadBps: 24e6, DiskWriteBps: 20e6, NetworkBps: 10e6,
		CPUSpeed: 1.0, CompressBps: 80e6, DecompressBps: 240e6,
		ContainerMB: 1024, ContainerCore: 1, VCores: 1,
	}
	// A2: 2 cores, 3.5 GB, 135 GB disk, $0.18/hr.
	A2 = InstanceType{
		Name: "A2", Cores: 2, MemoryMB: 3584, DiskGB: 135, PricePerHour: 0.18,
		DiskReadBps: 28e6, DiskWriteBps: 24e6, NetworkBps: 15e6,
		CPUSpeed: 1.0, CompressBps: 80e6, DecompressBps: 240e6,
		ContainerMB: 1024, ContainerCore: 1, VCores: 3,
	}
	// A3: 4 cores, 7 GB, 285 GB disk, $0.36/hr.
	A3 = InstanceType{
		Name: "A3", Cores: 4, MemoryMB: 7168, DiskGB: 285, PricePerHour: 0.36,
		DiskReadBps: 34e6, DiskWriteBps: 29e6, NetworkBps: 25e6,
		CPUSpeed: 1.0, CompressBps: 80e6, DecompressBps: 240e6,
		ContainerMB: 1024, ContainerCore: 1, VCores: 7,
	}
)

// The Compress/DecompressBps rates model a 2013-era Snappy/LZ4-class codec
// on one A-series core: ~80 MB/s in, ~240 MB/s out. The shuffle service
// charges them when Params.ShuffleCodec is "lz"; a zero rate disables the
// corresponding CPU charge (the bytes still shrink by ShuffleLZRatio).

// The VCores values above intentionally exceed the physical core counts:
// Hadoop 2.2's CapacityScheduler sized containers by memory only
// (DefaultResourceCalculator), so a 7 GB node accepted seven 1 GB task
// containers regardless of its 4 cores, oversubscribing the CPU. Tasks
// still contend for the physical cores (Node.Cores), which is exactly the
// load-imbalance penalty the paper's greedy-scheduling critique rests on.

// InstanceCatalog lists the instance types from Table II in paper order.
var InstanceCatalog = []InstanceType{A1, A2, A3}

// InstanceByName looks up a catalog entry by name ("A1", "A2", "A3").
func InstanceByName(name string) (InstanceType, error) {
	for _, it := range InstanceCatalog {
		if it.Name == name {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("topology: unknown instance type %q", name)
}
