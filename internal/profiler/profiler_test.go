package profiler

import (
	"strings"
	"testing"
	"time"

	"mrapid/internal/sim"
)

func mapTask(idx int, cpu time.Duration, in, out int64) *TaskProfile {
	return &TaskProfile{
		Kind: MapTask, Index: idx, Node: "node-01",
		Started:    sim.Time(time.Duration(idx) * time.Second),
		Ended:      sim.Time(time.Duration(idx)*time.Second + cpu),
		ComputeDur: cpu, InputBytes: in, OutputBytes: out,
	}
}

func TestTaskKindString(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Fatal("kind strings wrong")
	}
}

func TestTaskElapsed(t *testing.T) {
	tp := mapTask(2, 3*time.Second, 10, 20)
	if tp.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v", tp.Elapsed())
	}
}

func TestJobProfileTimelineAndElapsed(t *testing.T) {
	jp := &JobProfile{
		Job: "wc", Mode: "dplus",
		SubmittedAt: sim.Time(1 * time.Second),
		DoneAt:      sim.Time(11 * time.Second),
	}
	if jp.Elapsed() != 10*time.Second {
		t.Fatalf("Elapsed = %v", jp.Elapsed())
	}
}

func TestSummarizeAverages(t *testing.T) {
	jp := &JobProfile{Job: "wc", Mode: "uplus"}
	jp.Add(mapTask(0, 2*time.Second, 100, 200))
	jp.Add(mapTask(1, 4*time.Second, 300, 400))
	jp.Add(&TaskProfile{Kind: ReduceTask, ComputeDur: time.Second, InputBytes: 600})

	s := jp.Summarize()
	if s.MapCount != 2 {
		t.Fatalf("MapCount = %d", s.MapCount)
	}
	if s.AvgMapCPU != 3*time.Second {
		t.Fatalf("AvgMapCPU = %v", s.AvgMapCPU)
	}
	if s.AvgIn != 200 || s.AvgOut != 300 {
		t.Fatalf("averages = %d/%d", s.AvgIn, s.AvgOut)
	}
	if s.ReduceCPU != time.Second || s.ReduceInput != 600 {
		t.Fatalf("reduce aggregates = %v/%d", s.ReduceCPU, s.ReduceInput)
	}
	if s.Job != "wc" || s.Mode != "uplus" {
		t.Fatalf("identity lost: %+v", s)
	}
}

func TestSummarizeEmptyProfile(t *testing.T) {
	jp := &JobProfile{Job: "empty"}
	s := jp.Summarize()
	if s.MapCount != 0 || s.AvgMapCPU != 0 || s.AvgIn != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	jp := &JobProfile{Job: "wc", Mode: "dplus"}
	jp.Add(mapTask(0, time.Second, 10, 20))
	out := jp.Summarize().String()
	for _, want := range []string{"wc", "dplus", "1 maps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q missing %q", out, want)
		}
	}
}
