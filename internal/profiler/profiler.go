// Package profiler records per-task and per-job execution information —
// phase durations, input/output sizes, achieved locality — the way the
// paper's ASM-based bytecode profiler instruments Hadoop tasks. The MRapid
// decision maker feeds these records into its cost model (Equations 1–3) to
// estimate D+ vs U+ completion times.
package profiler

import (
	"fmt"
	"math"
	"time"

	"mrapid/internal/sim"
	"mrapid/internal/trace"
)

// TaskKind distinguishes map from reduce records.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskProfile is the record for one task attempt.
type TaskProfile struct {
	Kind    TaskKind
	Index   int    // split index for maps, partition for reduces
	Node    string // where it ran
	Started sim.Time
	Ended   sim.Time

	// Phase durations (the paper's map sub-phases: setup is charged as the
	// container launch, read/map/spill/merge are recorded here; reduces
	// record shuffle in ReadDur and the final HDFS write in SpillDur).
	ReadDur    time.Duration
	ComputeDur time.Duration
	SpillDur   time.Duration
	MergeDur   time.Duration

	InputBytes  int64
	OutputBytes int64
	Records     int64
	Spills      int  // how many spill files the task produced
	NodeLocal   bool // whether the input was read from a local replica

	// Attempt numbers retries (0 = first attempt); Failed marks attempts
	// that crashed and were rescheduled.
	Attempt int
	Failed  bool
}

// Elapsed returns the task's wall time on the virtual clock.
func (p *TaskProfile) Elapsed() time.Duration { return p.Ended.Sub(p.Started) }

// JobProfile aggregates a single job execution in one mode.
type JobProfile struct {
	Job  string // job identity key, e.g. "wordcount"
	Mode string // "hadoop", "uber", "dplus", "uplus"

	SubmittedAt sim.Time
	AMReadyAt   sim.Time
	FirstTaskAt sim.Time
	MapsDoneAt  sim.Time
	DoneAt      sim.Time

	// AMStartup is how long the job waited for a running AM (container
	// allocation + localization + JVM/AM init), i.e. AMReadyAt-SubmittedAt
	// for cold starts and the (near-zero) pool dispatch time for D+/U+
	// pool hits. AMPoolHit records which of those it was.
	AMStartup time.Duration
	AMPoolHit bool

	// DecidedAt is the instant the speculative racer (or history) picked a
	// winner; zero for non-speculative runs.
	DecidedAt sim.Time

	// Span is the root of this job's span tree in the run's trace.Log
	// (0 when tracing is off); the critical-path analyzer walks it.
	Span trace.SpanID

	Tasks []*TaskProfile

	NumMaps       int
	NumReduces    int
	NumWorkers    int // DataNodes in the cluster
	NumContainers int // max simultaneous task containers available to the job
}

// Add appends a finished task record.
func (jp *JobProfile) Add(tp *TaskProfile) { jp.Tasks = append(jp.Tasks, tp) }

// Elapsed is the job completion time from submission.
func (jp *JobProfile) Elapsed() time.Duration { return jp.DoneAt.Sub(jp.SubmittedAt) }

// Summary is the aggregate the estimator consumes: the measured averages
// standing in for the paper's Table I symbols.
type Summary struct {
	Job  string
	Mode string

	MapCount  int
	AvgMapCPU time.Duration // t^m: average map-function compute time
	MapCPUStd time.Duration // stddev of map compute across the job's tasks
	AvgIn     int64         // s^i: average map input bytes
	AvgOut    int64         // s^o: average map output bytes

	ReduceCPU   time.Duration // reduce-function compute time
	ReduceInput int64
}

// Summarize reduces a job profile to the estimator's inputs.
func (jp *JobProfile) Summarize() Summary {
	s := Summary{Job: jp.Job, Mode: jp.Mode}
	var mapCPU time.Duration
	var in, out int64
	for _, t := range jp.Tasks {
		if t.Failed {
			// Crashed attempts carry partial measurements; the estimator
			// only wants completed-task averages.
			continue
		}
		switch t.Kind {
		case MapTask:
			s.MapCount++
			mapCPU += t.ComputeDur
			in += t.InputBytes
			out += t.OutputBytes
		case ReduceTask:
			s.ReduceCPU += t.ComputeDur
			s.ReduceInput += t.InputBytes
		}
	}
	if s.MapCount > 0 {
		s.AvgMapCPU = mapCPU / time.Duration(s.MapCount)
		s.AvgIn = in / int64(s.MapCount)
		s.AvgOut = out / int64(s.MapCount)
	}
	if s.MapCount > 1 {
		// Within-job spread of map compute: the calibrating estimator uses
		// it to keep internally skewed workloads behind the confidence gate.
		var sq float64
		mean := float64(s.AvgMapCPU)
		for _, t := range jp.Tasks {
			if t.Failed || t.Kind != MapTask {
				continue
			}
			d := float64(t.ComputeDur) - mean
			sq += d * d
		}
		s.MapCPUStd = time.Duration(math.Sqrt(sq / float64(s.MapCount-1)))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%s/%s: %d maps, t^m=%v, s^i=%d, s^o=%d",
		s.Job, s.Mode, s.MapCount, s.AvgMapCPU, s.AvgIn, s.AvgOut)
}
