package yarn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func testRM(t *testing.T, workers int) (*sim.Engine, *topology.Cluster, *RM) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: workers, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rm := NewRM(eng, c, costmodel.Default(), NewStockScheduler())
	rm.Start()
	return eng, c, rm
}

func oneContainer() topology.Resource { return topology.Resource{VCores: 1, MemoryMB: 1024} }

func TestStockNeedsTwoHeartbeatsAndNodeReport(t *testing.T) {
	eng, _, rm := testRM(t, 4)
	app := rm.NewApp("j")
	ask := &Ask{App: app, Resource: oneContainer(), Tag: "map-0"}

	var first, second []*Container
	var firstAt, secondAt sim.Time
	eng.After(0, func() {
		rm.Allocate(app, []*Ask{ask}, func(cs []*Container) {
			first = cs
			firstAt = eng.Now()
			// Second heartbeat one AM period later, as the AM loop would.
			eng.After(rm.Params.AMHeartbeat, func() {
				rm.Allocate(app, nil, func(cs2 []*Container) {
					second = cs2
					secondAt = eng.Now()
				})
			})
		})
	})
	eng.RunUntil(sim.Time(10 * time.Second))
	if len(first) != 0 {
		t.Fatalf("stock scheduler granted %d containers in the requesting heartbeat", len(first))
	}
	if len(second) != 1 {
		t.Fatalf("second heartbeat delivered %d containers, want 1", len(second))
	}
	if secondAt.Sub(firstAt) < rm.Params.AMHeartbeat {
		t.Fatalf("delivery after %v, want at least one AM heartbeat period", secondAt.Sub(firstAt))
	}
}

func TestStockGreedyPacksFirstReportingNode(t *testing.T) {
	eng, _, rm := testRM(t, 4)
	app := rm.NewApp("j")
	// 4 asks; an A3 node fits 4 one-core containers, so the greedy scheduler
	// should put all four on the first node that heartbeats.
	var asks []*Ask
	for i := 0; i < 4; i++ {
		asks = append(asks, &Ask{App: app, Resource: oneContainer(), Tag: "map"})
	}
	var got []*Container
	eng.After(0, func() {
		rm.Allocate(app, asks, func([]*Container) {
			eng.After(2*rm.Params.AMHeartbeat, func() {
				rm.Allocate(app, nil, func(cs []*Container) { got = cs })
			})
		})
	})
	eng.RunUntil(sim.Time(10 * time.Second))
	if len(got) != 4 {
		t.Fatalf("got %d containers, want 4", len(got))
	}
	node := got[0].Node
	for _, c := range got {
		if c.Node != node {
			t.Fatalf("greedy scheduler spread containers: %s vs %s", c.Node.Name, node.Name)
		}
	}
}

func TestStockIgnoresLocality(t *testing.T) {
	eng, c, rm := testRM(t, 4)
	app := rm.NewApp("j")
	// Prefer the last node in heartbeat order; greedy assigns to the first
	// reporter anyway.
	pref := c.Workers()[3]
	ask := &Ask{App: app, Resource: oneContainer(), PreferredNodes: []*topology.Node{pref}, Tag: "map"}
	var got []*Container
	eng.After(0, func() {
		rm.Allocate(app, []*Ask{ask}, func([]*Container) {
			eng.After(2*rm.Params.AMHeartbeat, func() {
				rm.Allocate(app, nil, func(cs []*Container) { got = cs })
			})
		})
	})
	eng.RunUntil(sim.Time(10 * time.Second))
	if len(got) != 1 {
		t.Fatalf("got %d containers", len(got))
	}
	if got[0].Node == pref {
		t.Skip("first reporter happened to be the preferred node")
	}
	if rm.Metrics.ByLocality[Any] != 1 {
		t.Fatalf("locality metrics = %v, want one ANY", rm.Metrics.ByLocality)
	}
}

func TestReleaseFreesOnNextNodeHeartbeat(t *testing.T) {
	eng, _, rm := testRM(t, 1)
	app := rm.NewApp("j")
	big := topology.Resource{VCores: 7, MemoryMB: 7168} // full A3 node
	ask := &Ask{App: app, Resource: big, Tag: "map"}
	var c1 *Container
	var availAtRelease topology.Resource
	eng.After(0, func() {
		rm.Allocate(app, []*Ask{ask}, func([]*Container) {
			eng.After(2*rm.Params.AMHeartbeat, func() {
				rm.Allocate(app, nil, func(cs []*Container) {
					if len(cs) == 1 {
						c1 = cs[0]
						rm.ReleaseContainer(c1)
						// Release is queued on the NM: the RM's view must
						// not change until the node's next heartbeat.
						availAtRelease = rm.TrackerFor(c1.Node).Avail
					}
				})
			})
		})
	})
	eng.RunUntil(sim.Time(7 * time.Second))
	if c1 == nil {
		t.Fatal("container never granted")
	}
	if availAtRelease.VCores != 0 {
		t.Fatalf("resources freed immediately (%v); stock releases only on NM heartbeat", availAtRelease)
	}
	if nt := rm.TrackerFor(c1.Node); nt.Avail.VCores != 7 {
		t.Fatalf("resources not freed after heartbeat: %v", nt.Avail)
	}
	if rm.Metrics.Releases != 1 {
		t.Fatalf("Releases = %d", rm.Metrics.Releases)
	}
}

func TestSubmitAppLaunchesAM(t *testing.T) {
	eng, _, rm := testRM(t, 4)
	var gotApp *App
	var gotC *Container
	var at sim.Time
	rm.SubmitApp("job", oneContainer(), func(a *App, c *Container) {
		gotApp, gotC = a, c
		at = eng.Now()
	})
	eng.RunUntil(sim.Time(20 * time.Second))
	if gotApp == nil || gotC == nil {
		t.Fatal("AM never launched")
	}
	if gotC.Tag != "am" {
		t.Fatalf("AM container tag = %q", gotC.Tag)
	}
	// Must include at least the container start cost plus a node heartbeat
	// wait.
	min := rm.Params.ContainerStart()
	if at < sim.Time(min) {
		t.Fatalf("AM up at %v, want ≥ %v", at, min)
	}
}

func TestKillAppDropsAsksAndReleasesContainers(t *testing.T) {
	eng, _, rm := testRM(t, 2)
	sched := rm.Sched.(*StockScheduler)
	app := rm.NewApp("j")
	var asks []*Ask
	for i := 0; i < 12; i++ { // more than the cluster holds
		asks = append(asks, &Ask{App: app, Resource: oneContainer(), Tag: "map"})
	}
	eng.After(0, func() {
		rm.Allocate(app, asks, func([]*Container) {})
	})
	eng.RunUntil(sim.Time(3 * time.Second))
	if rm.LiveContainers() == 0 {
		t.Fatal("no containers granted before kill")
	}
	rm.KillApp(app)
	if len(app.PendingAsks()) != 0 {
		t.Fatalf("%d asks still pending after kill", len(app.PendingAsks()))
	}
	eng.RunUntil(sim.Time(10 * time.Second))
	if rm.LiveContainers() != 0 {
		t.Fatalf("%d containers live after kill + heartbeats", rm.LiveContainers())
	}
	if got := rm.TotalUsed(); !got.Zero() {
		t.Fatalf("TotalUsed = %v after kill", got)
	}
	// Dead asks still in the scheduler FIFO are purged lazily.
	eng.RunUntil(sim.Time(12 * time.Second))
	if sched.Queued() != 0 {
		t.Fatalf("scheduler still holds %d asks", sched.Queued())
	}
	if rm.Metrics.AppsKilled != 1 {
		t.Fatalf("AppsKilled = %d", rm.Metrics.AppsKilled)
	}
}

func TestFinishAppIdempotent(t *testing.T) {
	_, _, rm := testRM(t, 2)
	app := rm.NewApp("j")
	rm.FinishApp(app)
	rm.FinishApp(app)
	rm.KillApp(app) // after finish: no-op
	if app.State != AppFinished {
		t.Fatalf("state = %v", app.State)
	}
}

func TestWarmContainerSkipsJVMStart(t *testing.T) {
	eng, c, rm := testRM(t, 2)
	node := c.Workers()[0]
	nm := rm.NMOn(node)
	app := rm.NewApp("j")
	nt := rm.TrackerFor(node)
	cold := rm.Grant(&Ask{App: app, Resource: oneContainer(), Tag: "t"}, nt)
	warm := rm.Grant(&Ask{App: app, Resource: oneContainer(), Tag: "t"}, nt)
	var coldAt, warmAt sim.Time
	nm.StartContainer(cold, false, func() { coldAt = eng.Now() })
	nm.StartContainer(warm, true, func() { warmAt = eng.Now() })
	eng.RunUntil(sim.Time(10 * time.Second))
	if warmAt >= coldAt {
		t.Fatalf("warm start (%v) not faster than cold start (%v)", warmAt, coldAt)
	}
	if warmAt != sim.Time(rm.Params.RPCLatency) {
		t.Fatalf("warm start = %v, want just the RPC latency", warmAt)
	}
	if nm.Running() != 2 || nm.ContainersLaunched != 2 {
		t.Fatalf("NM bookkeeping wrong: running=%d launched=%d", nm.Running(), nm.ContainersLaunched)
	}
}

func TestStartContainerWrongNodePanics(t *testing.T) {
	_, c, rm := testRM(t, 2)
	app := rm.NewApp("j")
	nt := rm.TrackerFor(c.Workers()[0])
	ctr := rm.Grant(&Ask{App: app, Resource: oneContainer(), Tag: "t"}, nt)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-node start did not panic")
		}
	}()
	rm.NMOn(c.Workers()[1]).StartContainer(ctr, false, func() {})
}

func TestAskLocalityOn(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A2, Workers: 4, Racks: 2})
	w := c.Workers()
	ask := &Ask{PreferredNodes: []*topology.Node{w[0]}, PreferredRacks: []string{w[0].Rack}}
	if got := ask.LocalityOn(w[0]); got != NodeLocal {
		t.Errorf("LocalityOn(preferred) = %v", got)
	}
	if got := ask.LocalityOn(w[2]); got != RackLocal { // same rack as w[0]
		t.Errorf("LocalityOn(same rack) = %v", got)
	}
	if got := ask.LocalityOn(w[1]); got != Any {
		t.Errorf("LocalityOn(other rack) = %v", got)
	}
	for _, l := range []Locality{NodeLocal, RackLocal, Any} {
		if l.String() == "" {
			t.Error("empty locality string")
		}
	}
}

func TestNodeTrackerAccounting(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 1})
	nt := &NodeTracker{Node: c.Workers()[0], Cap: c.Workers()[0].Capacity(), Avail: c.Workers()[0].Capacity()}
	r := topology.Resource{VCores: 2, MemoryMB: 2048}
	nt.Allocate(r)
	if nt.Used() != r {
		t.Fatalf("Used = %v", nt.Used())
	}
	nt.Release(r)
	if !nt.Used().Zero() {
		t.Fatalf("Used after release = %v", nt.Used())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	nt.Release(r)
	nt.Release(nt.Cap)
}

// Property: however many asks of whatever size arrive, no node tracker ever
// goes negative and total grants never exceed capacity.
func TestQuickNoOvercommit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 1 + rng.Intn(6), Racks: 2})
		rm := NewRM(eng, c, costmodel.Default(), NewStockScheduler())
		rm.Start()
		app := rm.NewApp("q")
		var asks []*Ask
		for i := 0; i < 5+rng.Intn(30); i++ {
			asks = append(asks, &Ask{
				App:      app,
				Resource: topology.Resource{VCores: 1 + rng.Intn(2), MemoryMB: 512 * (1 + rng.Intn(4))},
				Tag:      "m",
			})
		}
		eng.After(0, func() { rm.Allocate(app, asks, func([]*Container) {}) })
		eng.RunUntil(sim.Time(30 * time.Second))
		for _, nt := range rm.Trackers() {
			u := nt.Used()
			if u.VCores < 0 || u.MemoryMB < 0 || !u.FitsIn(nt.Cap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateAfterKillReturnsNothing(t *testing.T) {
	eng, _, rm := testRM(t, 2)
	app := rm.NewApp("j")
	rm.KillApp(app)
	var resp []*Container
	called := false
	eng.After(0, func() {
		rm.Allocate(app, []*Ask{{App: app, Resource: oneContainer(), Tag: "m"}}, func(cs []*Container) {
			called = true
			resp = cs
		})
	})
	eng.RunUntil(sim.Time(5 * time.Second))
	if !called {
		t.Fatal("allocate callback never fired")
	}
	if len(resp) != 0 {
		t.Fatalf("killed app received %d containers", len(resp))
	}
}
