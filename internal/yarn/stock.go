package yarn

// StockScheduler reproduces the Hadoop 2 CapacityScheduler behaviour the
// paper describes for short jobs:
//
//   - Container requests arriving on an AM heartbeat are only queued
//     (CONTAINER_STATUS_UPDATE); nothing is granted in that heartbeat.
//   - When a NodeManager heartbeat arrives (NODE_STATUS_UPDATE), the
//     scheduler greedily packs the reporting node with as many queued asks
//     as fit, regardless of data locality — "deploys tasks to DataNodes as
//     few as possible".
//   - Grants sit in the app's buffer until its next AM heartbeat.
//
// The result, for short jobs, is the paper's three defects: at least two
// AM heartbeats of latency, container pile-up on whichever node reported
// first, and locality-blind placement.
type StockScheduler struct {
	// queue is the FIFO of unsatisfied asks across all apps.
	queue []*Ask
}

// NewStockScheduler returns the baseline Hadoop scheduler.
func NewStockScheduler() *StockScheduler { return &StockScheduler{} }

// Name implements Scheduler.
func (s *StockScheduler) Name() string { return "hadoop-capacity" }

// OnAllocate implements Scheduler: queue everything, grant nothing yet.
func (s *StockScheduler) OnAllocate(rm *RM, app *App, asks []*Ask) []*Container {
	for _, a := range asks {
		if a.App != app {
			panic("yarn: ask routed to wrong app")
		}
		s.queue = append(s.queue, a)
		app.AddPending(a)
	}
	return nil
}

// OnNodeUpdate implements Scheduler: greedily pack the reporting node from
// the front of the queue.
func (s *StockScheduler) OnNodeUpdate(rm *RM, nt *NodeTracker) {
	remaining := s.queue[:0]
	for i, a := range s.queue {
		if !a.App.Alive() {
			a.App.RemovePending(a)
			continue
		}
		if !a.Resource.FitsIn(nt.Avail) {
			// Node full (or this ask too big): keep this and all later asks.
			remaining = append(remaining, s.queue[i:]...)
			s.queue = remaining
			return
		}
		if !rm.QueueAllows(a.App, a.Resource) {
			// This tenant is at its queue capacity: skip the ask (it stays
			// queued) so other tenants behind it are not starved, the way
			// the CapacityScheduler walks past blocked queues.
			remaining = append(remaining, a)
			continue
		}
		c := rm.Grant(a, nt)
		a.App.RemovePending(a)
		a.Deliver(c)
	}
	s.queue = remaining
}

// Queued reports the number of pending asks (for tests).
func (s *StockScheduler) Queued() int { return len(s.queue) }
