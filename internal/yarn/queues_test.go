package yarn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func TestConfigureQueuesValidation(t *testing.T) {
	_, _, rm := testRM(t, 2)
	bad := [][]QueueConfig{
		{},
		{{Name: "", Capacity: 0.5}},
		{{Name: "a", Capacity: 0}},
		{{Name: "a", Capacity: 1.5}},
		{{Name: "a", Capacity: 0.5}, {Name: "a", Capacity: 0.5}},
		{{Name: "a", Capacity: 0.7}, {Name: "b", Capacity: 0.7}},
	}
	for i, cfg := range bad {
		if err := rm.ConfigureQueues(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := rm.ConfigureQueues([]QueueConfig{
		{Name: "default", Capacity: 0.5}, {Name: "adhoc", Capacity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigureQueuesRejectionMessages pins the reason each bad
// configuration is refused, and that a refused reconfiguration leaves the
// previously installed queues untouched (ConfigureQueues validates fully
// before mutating the RM).
func TestConfigureQueuesRejectionMessages(t *testing.T) {
	_, _, rm := testRM(t, 2)
	if err := rm.ConfigureQueues([]QueueConfig{
		{Name: "default", Capacity: 0.5}, {Name: "prod", Capacity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cfg  []QueueConfig
		want string
	}{
		{nil, "at least one queue"},
		{[]QueueConfig{{Name: "", Capacity: 0.5}}, "needs a name"},
		{[]QueueConfig{{Name: "a", Capacity: -0.1}}, "outside (0,1]"},
		{[]QueueConfig{{Name: "a", Capacity: 1.01}}, "outside (0,1]"},
		{[]QueueConfig{{Name: "a", Capacity: 0.4}, {Name: "a", Capacity: 0.4}}, "duplicate"},
		{[]QueueConfig{{Name: "a", Capacity: 0.6}, {Name: "b", Capacity: 0.6}}, "sum"},
	} {
		err := rm.ConfigureQueues(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ConfigureQueues(%+v) = %v, want error containing %q", tc.cfg, err, tc.want)
		}
	}
	// The failed reconfigurations must not have clobbered the live queues.
	if !rm.ValidQueue("prod") || !rm.ValidQueue("") || rm.ValidQueue("a") {
		t.Fatal("failed reconfiguration disturbed the installed queues")
	}
}

// TestSubmitAppInQueueUnknownPanics covers the cold submission path: like
// NewAppInQueue, an unroutable queue is a caller bug (validation belongs at
// the submission boundary via ValidQueue) and panics.
func TestSubmitAppInQueueUnknownPanics(t *testing.T) {
	_, _, rm := testRM(t, 2)
	if err := rm.ConfigureQueues([]QueueConfig{{Name: "prod", Capacity: 1.0}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SubmitAppInQueue with unknown queue did not panic")
		}
	}()
	rm.SubmitAppInQueue("x", "dev", oneContainer(), func(*App, *Container) {})
}

func TestQueueValidation(t *testing.T) {
	_, _, rm := testRM(t, 2)
	// Without queues, only the default is valid.
	if !rm.ValidQueue("") || !rm.ValidQueue(DefaultQueue) || rm.ValidQueue("other") {
		t.Fatal("pre-config queue validity wrong")
	}
	rm.ConfigureQueues([]QueueConfig{{Name: "prod", Capacity: 1.0}})
	if rm.ValidQueue("") { // no "default" queue configured
		t.Fatal("empty queue valid without a default queue")
	}
	if !rm.ValidQueue("prod") || rm.ValidQueue("dev") {
		t.Fatal("post-config queue validity wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewAppInQueue with unknown queue did not panic")
		}
	}()
	rm.NewAppInQueue("x", "dev")
}

func TestQueueCapacityEnforced(t *testing.T) {
	eng, _, rm := testRM(t, 2) // 2×A3 workers: 14 vcores, 14336 MB total
	if err := rm.ConfigureQueues([]QueueConfig{
		{Name: "default", Capacity: 0.5},
		{Name: "batch", Capacity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	app := rm.NewAppInQueue("j", "batch")
	var asks []*Ask
	for i := 0; i < 12; i++ { // far over batch's 7-vcore half
		asks = append(asks, &Ask{App: app, Resource: oneContainer(), Tag: "m"})
	}
	var got []*Container
	eng.After(0, func() {
		rm.Allocate(app, asks, func([]*Container) {
			eng.After(3*rm.Params.AMHeartbeat, func() {
				rm.Allocate(app, nil, func(cs []*Container) { got = cs })
			})
		})
	})
	eng.RunUntil(sim.Time(10 * time.Second))
	if len(got) != 7 {
		t.Fatalf("batch queue received %d containers, want 7 (half of 14 vcores)", len(got))
	}
	used := rm.QueueUsed("batch")
	if used.VCores != 7 {
		t.Fatalf("QueueUsed = %v", used)
	}
	// Releasing containers frees queue budget at the next NM heartbeat and
	// the remaining asks proceed.
	for _, c := range got[:4] {
		rm.ReleaseContainer(c)
	}
	var more []*Container
	eng.After(0, func() {
		eng.After(2*time.Second, func() {
			rm.Allocate(app, nil, func(cs []*Container) { more = cs })
		})
	})
	eng.RunUntil(sim.Time(20 * time.Second))
	if len(more) != 4 {
		t.Fatalf("after release got %d more, want 4", len(more))
	}
	if u := rm.QueueUsed("batch"); u.VCores != 7 {
		t.Fatalf("steady-state queue usage = %v, want back at the 7-vcore cap", u)
	}
}

func TestQueuesIsolateTenants(t *testing.T) {
	eng, _, rm := testRM(t, 2)
	rm.ConfigureQueues([]QueueConfig{
		{Name: "default", Capacity: 0.5},
		{Name: "batch", Capacity: 0.5},
	})
	hog := rm.NewAppInQueue("hog", "batch")
	light := rm.NewAppInQueue("light", "default")
	var hogAsks []*Ask
	for i := 0; i < 20; i++ {
		hogAsks = append(hogAsks, &Ask{App: hog, Resource: oneContainer(), Tag: "m"})
	}
	var lightGot []*Container
	eng.After(0, func() {
		rm.Allocate(hog, hogAsks, func([]*Container) {})
		// The light tenant submits after the hog has flooded the queue.
		eng.After(2*time.Second, func() {
			rm.Allocate(light, []*Ask{{App: light, Resource: oneContainer(), Tag: "m"}}, func([]*Container) {
				eng.After(2*rm.Params.AMHeartbeat, func() {
					rm.Allocate(light, nil, func(cs []*Container) { lightGot = cs })
				})
			})
		})
	})
	eng.RunUntil(sim.Time(15 * time.Second))
	if len(lightGot) != 1 {
		t.Fatalf("light tenant starved despite its own queue: got %d", len(lightGot))
	}
	if u := rm.QueueUsed("batch"); u.VCores > 7 {
		t.Fatalf("hog exceeded its queue: %v", u)
	}
}

// Property: under random ask streams across two tenants, neither queue's
// usage ever exceeds its capacity ceiling.
func TestQuickQueueNeverOverCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 2 + rng.Intn(4), Racks: 2})
		rm := NewRM(eng, c, costmodel.Default(), NewStockScheduler())
		rm.Start()
		fracA := 0.2 + rng.Float64()*0.5
		if err := rm.ConfigureQueues([]QueueConfig{
			{Name: "a", Capacity: fracA},
			{Name: "b", Capacity: 1 - fracA},
		}); err != nil {
			return false
		}
		appA := rm.NewAppInQueue("a", "a")
		appB := rm.NewAppInQueue("b", "b")
		for i := 0; i < 30; i++ {
			app := appA
			if rng.Intn(2) == 0 {
				app = appB
			}
			ask := &Ask{App: app, Resource: oneContainer(), Tag: "m"}
			eng.After(time.Duration(rng.Intn(3000))*time.Millisecond, func() {
				rm.Allocate(app, []*Ask{ask}, func(cs []*Container) {
					for _, ctr := range cs {
						ctr := ctr
						eng.After(time.Duration(rng.Intn(2000))*time.Millisecond, func() {
							rm.ReleaseContainer(ctr)
						})
					}
				})
			})
		}
		ok := true
		check := eng.Every(500*time.Millisecond, func() {
			total := rm.TotalCapacity()
			for q, frac := range map[string]float64{"a": fracA, "b": 1 - fracA} {
				u := rm.QueueUsed(q)
				if u.VCores > int(float64(total.VCores)*frac) ||
					u.MemoryMB > int(float64(total.MemoryMB)*frac) {
					ok = false
				}
			}
		})
		eng.RunUntil(sim.Time(20 * time.Second))
		check.Stop()
		rm.Stop()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNoQueuesMeansUnlimited(t *testing.T) {
	_, _, rm := testRM(t, 2)
	app := rm.NewApp("j")
	if !rm.QueueAllows(app, topology.Resource{VCores: 100, MemoryMB: 1 << 20}) {
		t.Fatal("unconfigured queues limited an allocation")
	}
	if got := rm.QueueUsed("anything"); !got.Zero() {
		t.Fatal("usage nonzero without queues")
	}
}
