package yarn

import (
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
)

// NM is a NodeManager: it launches containers on its node when the AM asks,
// and reports completed containers back to the ResourceManager on its next
// heartbeat — the release lag stock Hadoop pays.
type NM struct {
	rm   *RM
	Node *topology.Node

	pendingRelease []*Container
	running        map[ContainerID]*Container

	// launches coalesces the start-container completions of one allocation
	// burst: N containers granted to this node in one scheduler pass become
	// one engine event, not N (same timeline — the callbacks run in the
	// same consecutive order).
	launches *sim.Coalescer

	// launched is the node-labeled launch counter, bound once per registry.
	launched    metrics.Counter
	launchedSrc *metrics.Registry

	// ContainersLaunched counts lifetime launches for metrics.
	ContainersLaunched int64
}

func newNM(rm *RM, n *topology.Node) *NM {
	return &NM{rm: rm, Node: n, running: make(map[ContainerID]*Container), launches: sim.NewCoalescer(rm.Eng)}
}

// StartContainer models the AM→NM start-container RPC followed by container
// localization and, for cold containers, a JVM boot. warm containers (the
// reused ApplicationMasters of the MRapid submission framework) skip both
// the launch and the JVM start and pay only the RPC. ready fires on the
// node once the process is accepting work.
func (nm *NM) StartContainer(c *Container, warm bool, ready func()) {
	if ready == nil {
		panic("yarn: StartContainer needs a ready callback")
	}
	if c.Node != nm.Node {
		panic("yarn: container started on wrong node")
	}
	p := nm.rm.Params
	delay := p.RPCLatency
	var span trace.SpanID
	if !warm {
		delay += p.ContainerLaunch + p.JVMStart
		if nm.rm.Trace != nil {
			span = nm.rm.Trace.StartSpan(c.App.Span, "nm/"+nm.Node.Name, "launch "+c.Tag, "launch",
				trace.A("container", c.String()))
		}
	}
	epoch := nm.Node.Epoch()
	nm.launches.After(delay, func() {
		if !nm.Node.AliveEpoch(epoch) {
			// The node died before (or while) the container process came up:
			// ready never fires (the launch span stays open), and the RM
			// reports the container lost once the liveness monitor notices.
			return
		}
		if span != 0 {
			nm.rm.Trace.EndSpan(span)
		}
		nm.running[c.ID] = c
		nm.ContainersLaunched++
		if nm.launchedSrc != nm.rm.Reg {
			nm.launchedSrc = nm.rm.Reg
			nm.launched = nm.rm.Reg.CounterHandle("yarn_containers_launched_total", "node", nm.Node.Name)
		}
		nm.launched.Inc()
		ready()
	})
}

// crash wipes the NM's volatile state when its machine dies: running
// containers are gone and queued release reports will never be sent.
func (nm *NM) crash() {
	nm.running = make(map[ContainerID]*Container)
	nm.pendingRelease = nil
}

// queueRelease records a finished container; the RM is told at the next
// heartbeat.
func (nm *NM) queueRelease(c *Container) {
	delete(nm.running, c.ID)
	nm.pendingRelease = append(nm.pendingRelease, c)
}

func (nm *NM) drainReleases() []*Container {
	out := nm.pendingRelease
	nm.pendingRelease = nil
	return out
}

// Running reports how many containers the NM currently hosts.
func (nm *NM) Running() int { return len(nm.running) }
