package yarn

import (
	"testing"
	"time"

	"mrapid/internal/sim"
)

func TestSilentNodeExpires(t *testing.T) {
	eng, c, rm := testRM(t, 4)
	victim := c.Workers()[1]
	capBefore := rm.TotalCapacity()
	eng.After(2*time.Second, victim.Fail)
	eng.RunUntil(sim.Time(20 * time.Second))

	nt := rm.TrackerFor(victim)
	if nt.Live {
		t.Fatal("silent node still marked live")
	}
	for _, l := range rm.Trackers() {
		if l.Node == victim {
			t.Fatal("expired node still in the RM's tracker snapshot")
		}
	}
	if rm.Metrics.NodesExpired != 1 {
		t.Fatalf("NodesExpired = %d, want 1", rm.Metrics.NodesExpired)
	}
	capAfter := rm.TotalCapacity()
	if capAfter.VCores >= capBefore.VCores {
		t.Fatalf("cluster capacity did not shrink: %v -> %v", capBefore, capAfter)
	}
}

func TestLostContainerReportedToApp(t *testing.T) {
	eng, _, rm := testRM(t, 4)
	var amC *Container
	app := rm.SubmitApp("j", oneContainer(), func(_ *App, c *Container) { amC = c })
	var lost *Container
	app.OnContainerLost = func(c *Container) { lost = c }
	eng.RunUntil(sim.Time(10 * time.Second))
	if amC == nil {
		t.Fatal("AM container never launched")
	}
	eng.After(0, func() { amC.Node.Fail() })
	eng.RunUntil(sim.Time(40 * time.Second))
	if lost != amC {
		t.Fatalf("OnContainerLost got %v, want %v", lost, amC)
	}
	if rm.Metrics.ContainersLost != 1 {
		t.Fatalf("ContainersLost = %d, want 1", rm.Metrics.ContainersLost)
	}
	if rm.LiveContainers() != 0 {
		t.Fatalf("lost container still tracked as live: %d", rm.LiveContainers())
	}
}

func TestRestartedNodeReadmittedWithFullCapacity(t *testing.T) {
	eng, c, rm := testRM(t, 4)
	victim := c.Workers()[2]
	eng.After(time.Second, victim.Fail)
	// Restart well after the expiry window so the node is declared lost
	// first, then re-admitted by its next heartbeat.
	eng.After(15*time.Second, victim.Restart)
	eng.RunUntil(sim.Time(30 * time.Second))

	nt := rm.TrackerFor(victim)
	if !nt.Live {
		t.Fatal("restarted node not re-admitted")
	}
	if rm.Metrics.NodesExpired != 1 || rm.Metrics.NodesRestored != 1 {
		t.Fatalf("expired/restored = %d/%d, want 1/1",
			rm.Metrics.NodesExpired, rm.Metrics.NodesRestored)
	}
	if nt.Avail != nt.Cap {
		t.Fatalf("re-admitted node avail %v, want full capacity %v", nt.Avail, nt.Cap)
	}
	found := false
	for _, l := range rm.Trackers() {
		if l.Node == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("re-admitted node missing from the tracker snapshot")
	}
}

// A crash-and-quick-reboot never goes silent long enough to expire, but the
// NM comes back with a new boot epoch: the RM must treat that as a RESYNC
// and declare the previous boot's containers dead.
func TestQuickRebootResyncLosesContainers(t *testing.T) {
	eng, _, rm := testRM(t, 4)
	var amC *Container
	app := rm.SubmitApp("j", oneContainer(), func(_ *App, c *Container) { amC = c })
	var lost *Container
	app.OnContainerLost = func(c *Container) { lost = c }
	eng.RunUntil(sim.Time(10 * time.Second))
	if amC == nil {
		t.Fatal("AM container never launched")
	}
	eng.After(0, func() {
		amC.Node.Fail()
		eng.After(500*time.Millisecond, amC.Node.Restart)
	})
	eng.RunUntil(sim.Time(30 * time.Second))
	if rm.Metrics.NodesExpired != 0 {
		t.Fatalf("NodesExpired = %d, want 0 (node never went silent long enough)", rm.Metrics.NodesExpired)
	}
	if lost != amC {
		t.Fatal("resync did not report the previous boot's container as lost")
	}
	nt := rm.TrackerFor(amC.Node)
	if !nt.Live || nt.Avail != nt.Cap {
		t.Fatalf("rebooted node live=%v avail=%v cap=%v", nt.Live, nt.Avail, nt.Cap)
	}
}
