// Package yarn implements the simulated cluster resource manager: a
// ResourceManager with pluggable scheduling, per-node NodeManagers that
// heartbeat status and launch containers, and the application-master
// allocate protocol. The stock scheduler reproduces the Hadoop 2 behaviour
// the paper criticizes — container requests are only served when a
// NodeManager heartbeat arrives, greedily packing the reporting node — so
// that the D+ scheduler (package core) has the real baseline to beat.
package yarn

import (
	"fmt"

	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
)

// ContainerID identifies a granted container.
type ContainerID int

// Container is a granted lease of resources on one node.
type Container struct {
	ID       ContainerID
	Node     *topology.Node
	Resource topology.Resource
	App      *App
	Tag      string // diagnostic label, e.g. "map-3", "reduce-0", "am"

	// released guards against double release: an app kill and the task's
	// own completion can both hand the container back.
	released bool
}

func (c *Container) String() string {
	return fmt.Sprintf("container-%d(%s on %s)", c.ID, c.Tag, c.Node.Name)
}

// Locality classifies how well an allocation matched its ask's preference.
type Locality int

// Locality levels, best first.
const (
	NodeLocal Locality = iota
	RackLocal
	Any
)

func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "NODE_LOCAL"
	case RackLocal:
		return "RACK_LOCAL"
	default:
		return "ANY"
	}
}

// Ask is one container request with locality preferences, the unit the
// scheduler works on. PreferredNodes come from the input split's replica
// locations; PreferredRacks from those replicas' racks.
type Ask struct {
	App            *App
	Resource       topology.Resource
	PreferredNodes []*topology.Node
	PreferredRacks []string
	Tag            string

	// direct, when set, receives the granted container immediately instead
	// of the grant being buffered for the app's next AM heartbeat. The RM
	// uses it for ApplicationMaster containers, which have no AM to
	// heartbeat yet.
	direct func(*Container)

	// arrived is when the RM accepted the ask; Grant turns it into the
	// scheduling-wait span (same-beat D+ answers show ~zero wait, stock
	// heartbeat-driven grants show the full wait).
	arrived sim.Time
}

// IsDirect reports whether this ask bypasses heartbeat delivery (AM
// container asks). Schedulers must route direct asks through Deliver even
// when answering a request in its own heartbeat.
func (a *Ask) IsDirect() bool { return a.direct != nil }

// Deliver routes a granted container: direct asks fire their callback, all
// others buffer on the app until its next allocate heartbeat drains them.
func (a *Ask) Deliver(c *Container) {
	if a.direct != nil {
		a.direct(c)
		return
	}
	a.App.granted = append(a.App.granted, c)
}

// LocalityOn classifies what locality assigning this ask to node n achieves.
func (a *Ask) LocalityOn(n *topology.Node) Locality {
	for _, p := range a.PreferredNodes {
		if p == n {
			return NodeLocal
		}
	}
	for _, r := range a.PreferredRacks {
		if r == n.Rack {
			return RackLocal
		}
	}
	return Any
}

// NodeTracker is the ResourceManager's view of one node: its capacity and
// currently unallocated resources. This collection is exactly the "Cluster
// Resource" structure of the paper's Figure 3, which the D+ scheduler
// consults to answer requests without waiting for node heartbeats.
type NodeTracker struct {
	Node  *topology.Node
	Cap   topology.Resource
	Avail topology.Resource

	// Live is the RM's belief about the node. It lags reality: a crashed
	// node stays Live (and schedulable) until the liveness monitor notices
	// the missed heartbeats, exactly Hadoop's window of doomed allocations.
	Live bool

	// lastHeartbeat is when the node last reported; epochSeen is the node
	// boot generation of that report, used to detect a crash+restart that
	// happened entirely between two heartbeats (Hadoop's NM RESYNC).
	lastHeartbeat sim.Time
	epochSeen     int
}

// Allocate reserves r on the node. It panics on overcommit: scheduler bugs
// must fail loudly.
func (nt *NodeTracker) Allocate(r topology.Resource) {
	nt.Avail = nt.Avail.Sub(r)
}

// Release returns r to the node.
func (nt *NodeTracker) Release(r topology.Resource) {
	nt.Avail = nt.Avail.Add(r)
	if !nt.Avail.FitsIn(nt.Cap) {
		panic(fmt.Sprintf("yarn: node %s over-released: %v > %v", nt.Node.Name, nt.Avail, nt.Cap))
	}
}

// Used returns the allocated resources.
func (nt *NodeTracker) Used() topology.Resource { return nt.Cap.Sub(nt.Avail) }

// Scheduler decides container placement. Implementations: the stock greedy
// CapacityScheduler (this package) and MRapid's Algorithm 1 (package core).
type Scheduler interface {
	// Name identifies the scheduler in traces and metrics.
	Name() string

	// OnAllocate handles the asks arriving on an AM heartbeat
	// (CONTAINER_STATUS_UPDATE). It may grant immediately from the RM's
	// cluster-resource view and return the containers — the D+ behaviour —
	// or queue the asks and return nil, the stock behaviour.
	OnAllocate(rm *RM, app *App, asks []*Ask) []*Container

	// OnNodeUpdate handles a node heartbeat (NODE_STATUS_UPDATE), the only
	// moment the stock scheduler hands out that node's resources. Grants
	// made here are buffered on the app and delivered at its next AM
	// heartbeat.
	OnNodeUpdate(rm *RM, nt *NodeTracker)

	// Queued reports the asks currently waiting in the scheduler — the
	// pending-container backlog the flight recorder samples as a gauge.
	// Schedulers that grant immediately (D+) report 0 except for asks
	// deferred to a later heartbeat.
	Queued() int
}

// AppState tracks an application's lifecycle.
type AppState int

// Application lifecycle states.
const (
	AppSubmitted AppState = iota
	AppRunning
	AppFinished
	AppKilled
)

// App is the ResourceManager's record of one running application.
type App struct {
	ID    int
	Name  string
	State AppState
	// Queue is the tenant queue the app submits to ("" = default).
	Queue string

	// Span is the trace span the app's activity (scheduling waits,
	// container launches) nests under — the owning job's root span, or 0
	// when untraced. The AM that adopts the app sets it.
	Span trace.SpanID

	// granted buffers containers allocated by node-heartbeat-driven
	// scheduling until the AM's next allocate heartbeat picks them up.
	granted []*Container
	// queued are asks accepted but not yet satisfied.
	queued []*Ask

	// OnContainerLost, when set, is how the RM tells this app's AM that a
	// container vanished with its node (delivered one RPC latency after the
	// RM notices). The container's work must be considered gone: AMs
	// reschedule the task, the AM pool replenishes a lost pooled AM.
	OnContainerLost func(*Container)
}

// PendingAsks returns the app's unsatisfied asks (the scheduler's queue).
func (a *App) PendingAsks() []*Ask { return a.queued }

// AddPending records an accepted-but-unsatisfied ask on the app. Schedulers
// call it when they enqueue an ask.
func (a *App) AddPending(ask *Ask) { a.queued = append(a.queued, ask) }

// RemovePending drops a satisfied or abandoned ask from the app's pending
// list; removing an unknown ask is a no-op.
func (a *App) RemovePending(ask *Ask) {
	for i, x := range a.queued {
		if x == ask {
			a.queued = append(a.queued[:i], a.queued[i+1:]...)
			return
		}
	}
}

// Alive reports whether the app can still receive containers.
func (a *App) Alive() bool { return a.State != AppKilled && a.State != AppFinished }

// dropGranted removes a container from the undelivered-grant buffer (its
// node died before the AM's next heartbeat could pick it up).
func (a *App) dropGranted(c *Container) {
	for i, g := range a.granted {
		if g == c {
			a.granted = append(a.granted[:i], a.granted[i+1:]...)
			return
		}
	}
}
