package yarn

import (
	"fmt"
	"time"

	"mrapid/internal/costmodel"
	"mrapid/internal/metrics"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/trace"
)

// Metrics counts protocol activity for analysis and tests.
type Metrics struct {
	AMHeartbeats  int64
	NMHeartbeats  int64
	Allocations   int64
	Releases      int64
	AppsSubmitted int64
	AppsKilled    int64
	// ByLocality counts allocations per achieved locality level.
	ByLocality [3]int64

	// NodesExpired counts nodes the liveness monitor declared lost;
	// NodesRestored counts re-admissions after a restarted NM heartbeats
	// again; ContainersLost counts containers that vanished with their node.
	NodesExpired   int64
	NodesRestored  int64
	ContainersLost int64
}

// RM is the simulated ResourceManager. It owns the authoritative per-node
// resource view (the Cluster Resource structure of the paper's Figure 3),
// drives NodeManager heartbeats, and delegates placement to a pluggable
// Scheduler.
type RM struct {
	Eng     *sim.Engine
	Cluster *topology.Cluster
	Params  costmodel.Params
	Sched   Scheduler
	Metrics Metrics

	// Trace, when non-nil, records scheduling events and spans on the
	// virtual clock.
	Trace *trace.Log

	// Reg, when non-nil, receives labeled counters and the allocation-
	// latency histogram.
	Reg *metrics.Registry

	trackers  []*NodeTracker
	trackerOf map[*topology.Node]*NodeTracker
	nms       map[*topology.Node]*NM

	nextContainer ContainerID
	nextApp       int
	live          map[ContainerID]*Container
	started       bool
	tickers       []*sim.Ticker

	// h caches pre-resolved metric handles for the per-grant and
	// per-heartbeat paths; see handles().
	h rmHandles

	// queues, when configured, enforces per-tenant capacity ceilings.
	queues *queues
}

// NewRM builds a ResourceManager over the cluster's worker nodes.
func NewRM(eng *sim.Engine, cluster *topology.Cluster, params costmodel.Params, sched Scheduler) *RM {
	rm := &RM{
		Eng:       eng,
		Cluster:   cluster,
		Params:    params,
		Sched:     sched,
		trackerOf: make(map[*topology.Node]*NodeTracker),
		nms:       make(map[*topology.Node]*NM),
		live:      make(map[ContainerID]*Container),
	}
	for _, n := range cluster.Workers() {
		nt := &NodeTracker{Node: n, Cap: n.Capacity(), Avail: n.Capacity(), Live: true, epochSeen: n.Epoch()}
		rm.trackers = append(rm.trackers, nt)
		rm.trackerOf[n] = nt
		rm.nms[n] = newNM(rm, n)
	}
	return rm
}

// rmHandles holds the pre-resolved metric handles for the RM's hot paths:
// one histogram for allocation latency, one counter per achieved locality
// level, one for AM heartbeats. Binding happens once per registry — Reg is
// a public field assigned after construction (and swapped by some tests),
// so handles() rebinds whenever the field changes rather than at NewRM.
type rmHandles struct {
	src          *metrics.Registry
	allocLatency metrics.Observer
	amHeartbeats metrics.Counter
	allocations  [3]metrics.Counter
}

func (rm *RM) handles() *rmHandles {
	if rm.h.src != rm.Reg {
		rm.h.src = rm.Reg
		rm.h.allocLatency = rm.Reg.HistogramHandle("yarn_alloc_latency_seconds")
		rm.h.amHeartbeats = rm.Reg.CounterHandle("yarn_am_heartbeats_total")
		for loc := range rm.h.allocations {
			rm.h.allocations[loc] = rm.Reg.CounterHandle("yarn_allocations_total",
				"locality", Locality(loc).String(), "sched", rm.Sched.Name())
		}
	}
	return &rm.h
}

// Start begins NodeManager heartbeats, staggered deterministically across
// the heartbeat period so node reports interleave the way independent NM
// daemons do rather than arriving in one burst.
func (rm *RM) Start() {
	if rm.started {
		panic("yarn: RM started twice")
	}
	rm.started = true
	n := len(rm.trackers)
	now := rm.Eng.Now()
	for i, nt := range rm.trackers {
		nt := nt
		nt.lastHeartbeat = now // expiry countdown starts at RM start
		offset := rm.Params.NMHeartbeat * time.Duration(i+1) / time.Duration(n+1)
		rm.Eng.After(offset, func() {
			rm.nodeHeartbeat(nt)
			rm.tickers = append(rm.tickers, rm.Eng.Every(rm.Params.NMHeartbeat, func() { rm.nodeHeartbeat(nt) }))
		})
	}
	// The liveness monitor expires nodes whose NM went silent. Guarded so
	// hand-built Params without the liveness knobs keep their old behavior.
	if rm.Params.NMLivenessInterval > 0 && rm.Params.NMExpiry > 0 {
		rm.tickers = append(rm.tickers, rm.Eng.Every(rm.Params.NMLivenessInterval, rm.checkLiveness))
	}
}

// Stop halts all NodeManager heartbeats so the event queue can drain; used
// when a simulation run is complete. A stopped RM may be started again for
// a subsequent job in the same simulation.
func (rm *RM) Stop() {
	for _, t := range rm.tickers {
		t.Stop()
	}
	rm.tickers = nil
	rm.started = false
}

func (rm *RM) nodeHeartbeat(nt *NodeTracker) {
	if !nt.Node.Alive() {
		// A crashed machine sends nothing; the liveness monitor will notice.
		return
	}
	if nt.epochSeen != nt.Node.Epoch() {
		// The node crashed and rebooted entirely between two reports: the NM
		// re-registers (Hadoop's RESYNC) and every container it hosted died
		// with the previous boot.
		rm.loseNodeContainers(nt, "nm resync")
		nt.epochSeen = nt.Node.Epoch()
	}
	nt.lastHeartbeat = rm.Eng.Now()
	if !nt.Live {
		nt.Live = true
		rm.Metrics.NodesRestored++
		rm.Trace.Add("rm", "node %s re-admitted", nt.Node.Name)
	}
	rm.Metrics.NMHeartbeats++
	nm := rm.nms[nt.Node]
	// Releases reported by the NM free resources first, then the scheduler
	// sees the NODE_STATUS_UPDATE.
	for _, c := range nm.drainReleases() {
		nt.Release(c.Resource)
		rm.creditQueue(c.App, c.Resource)
		delete(rm.live, c.ID)
		rm.Metrics.Releases++
		if rm.Trace != nil {
			rm.Trace.Add("rm", "released %s", c)
		}
	}
	rm.Sched.OnNodeUpdate(rm, nt)
}

// checkLiveness is the RM's NM liveness monitor: any node silent for
// NMExpiry is declared lost.
func (rm *RM) checkLiveness() {
	now := rm.Eng.Now()
	for _, nt := range rm.trackers {
		if nt.Live && now.Sub(nt.lastHeartbeat) >= rm.Params.NMExpiry {
			rm.expireNode(nt)
		}
	}
}

// expireNode removes a silent node from the schedulable cluster and reports
// its containers as lost to their owning applications.
func (rm *RM) expireNode(nt *NodeTracker) {
	nt.Live = false
	rm.Metrics.NodesExpired++
	rm.Trace.Add("rm", "node %s expired (no heartbeat for %s)", nt.Node.Name, rm.Params.NMExpiry)
	rm.loseNodeContainers(nt, "node expired")
}

// loseNodeContainers declares every container on the node gone: resources
// are returned to the (now empty) tracker and tenant queues, and owning apps
// that registered OnContainerLost hear about it after one RPC latency.
// Containers whose release was queued at the dead NM are cleaned up silently
// — their work had already completed.
func (rm *RM) loseNodeContainers(nt *NodeTracker, why string) {
	rm.nms[nt.Node].crash()
	// All of a node's loss notifications share one RPC-latency event: the
	// callbacks run consecutively in container order, exactly as N separate
	// same-instant events would, at one queue insertion.
	var lost []func()
	for _, c := range rm.liveOnNode(nt.Node) {
		delete(rm.live, c.ID)
		rm.creditQueue(c.App, c.Resource)
		rm.Metrics.ContainersLost++
		if rm.Trace != nil {
			rm.Trace.Add("rm", "lost %s (%s)", c, why)
		}
		if c.released {
			continue
		}
		c.released = true
		// An undelivered grant dies before the AM ever saw the container.
		c.App.dropGranted(c)
		if cb := c.App.OnContainerLost; cb != nil && c.App.Alive() {
			cc := c
			lost = append(lost, func() { cb(cc) })
		}
	}
	if len(lost) > 0 {
		rm.Eng.After(rm.Params.RPCLatency, func() {
			for _, f := range lost {
				f()
			}
		})
	}
	nt.Avail = nt.Cap
}

func (rm *RM) liveOnNode(n *topology.Node) []*Container {
	var out []*Container
	for _, c := range rm.live {
		if c.Node == n {
			out = append(out, c)
		}
	}
	// Deterministic order.
	sortContainers(out)
	return out
}

// Trackers exposes the RM's per-node resource view — the Cluster Resource
// structure the D+ scheduler allocates from. Expired nodes are excluded: a
// dead node must never appear in the snapshot the D+ scheduler packs.
func (rm *RM) Trackers() []*NodeTracker {
	live := make([]*NodeTracker, 0, len(rm.trackers))
	for _, nt := range rm.trackers {
		if nt.Live {
			live = append(live, nt)
		}
	}
	return live
}

// TrackerFor returns the tracker for a worker node.
func (rm *RM) TrackerFor(n *topology.Node) *NodeTracker { return rm.trackerOf[n] }

// NMOn returns the NodeManager on a worker node.
func (rm *RM) NMOn(n *topology.Node) *NM { return rm.nms[n] }

// TotalUsed sums allocated resources across live nodes.
func (rm *RM) TotalUsed() topology.Resource {
	var u topology.Resource
	for _, nt := range rm.Trackers() {
		u = u.Add(nt.Used())
	}
	return u
}

// TotalCapacity sums live worker capacity (an expired node's resources are
// not schedulable, so tenant-queue ceilings shrink with it).
func (rm *RM) TotalCapacity() topology.Resource {
	var c topology.Resource
	for _, nt := range rm.Trackers() {
		c = c.Add(nt.Cap)
	}
	return c
}

// NewApp registers an application record in the default queue.
func (rm *RM) NewApp(name string) *App {
	return rm.NewAppInQueue(name, "")
}

// NewAppInQueue registers an application under a tenant queue. An invalid
// queue panics: submission-time validation belongs to the caller
// (ValidQueue), and a scheduler must never see an unroutable app.
func (rm *RM) NewAppInQueue(name, queue string) *App {
	if !rm.ValidQueue(queue) {
		panic(fmt.Sprintf("yarn: unknown queue %q", queue))
	}
	rm.nextApp++
	rm.Metrics.AppsSubmitted++
	return &App{ID: rm.nextApp, Name: name, Queue: queue, State: AppSubmitted}
}

// Grant is the scheduler's allocation primitive: it debits the node tracker,
// mints a container, and records locality metrics. The caller decides how
// the container reaches the app (buffered for the next AM heartbeat, direct
// callback, or an immediate D+ response).
func (rm *RM) Grant(ask *Ask, nt *NodeTracker) *Container {
	nt.Allocate(ask.Resource)
	rm.chargeQueue(ask.App, ask.Resource)
	rm.nextContainer++
	c := &Container{ID: rm.nextContainer, Node: nt.Node, Resource: ask.Resource, App: ask.App, Tag: ask.Tag}
	rm.live[c.ID] = c
	loc := ask.LocalityOn(nt.Node)
	rm.Metrics.Allocations++
	rm.Metrics.ByLocality[loc]++
	if rm.Trace != nil {
		rm.Trace.Add("rm", "granted %s to app %d (%s)", c, ask.App.ID, loc)
		// The scheduling-wait span: ask arrival → grant. A same-heartbeat D+
		// answer shows ~2×RPC of wait; a stock grant shows the node-heartbeat
		// wait the paper's Figure 2 attributes to allocation.
		rm.Trace.SpanSince(ask.App.Span, "rm", "alloc "+ask.Tag, "schedule", ask.arrived,
			trace.A("app", fmt.Sprint(ask.App.ID)),
			trace.A("container", fmt.Sprint(int(c.ID))),
			trace.A("node", nt.Node.Name),
			trace.A("locality", loc.String()))
	}
	h := rm.handles()
	h.allocLatency.Observe(rm.Eng.Now().Sub(ask.arrived).Seconds())
	h.allocations[loc].Inc()
	return c
}

// Allocate is one AM→RM allocate heartbeat carrying new asks; the response
// (delivered after the round-trip RPC latency) contains any containers
// granted immediately by the scheduler plus everything buffered since the
// previous heartbeat. With the stock scheduler a request is never satisfied
// in its own heartbeat — the paper's "waiting for at least two heartbeats".
func (rm *RM) Allocate(app *App, asks []*Ask, respond func([]*Container)) {
	if respond == nil {
		panic("yarn: Allocate needs a response callback")
	}
	rm.Eng.After(rm.Params.RPCLatency, func() {
		rm.Metrics.AMHeartbeats++
		rm.handles().amHeartbeats.Inc()
		if app.State == AppKilled || app.State == AppFinished {
			rm.Eng.After(rm.Params.RPCLatency, func() { respond(nil) })
			return
		}
		app.State = AppRunning
		for _, a := range asks {
			a.arrived = rm.Eng.Now()
		}
		immediate := rm.Sched.OnAllocate(rm, app, asks)
		response := append(app.granted, immediate...)
		app.granted = nil
		rm.Eng.After(rm.Params.RPCLatency, func() { respond(response) })
	})
}

// SubmitApp models steps 1–3 of the Hadoop submission flow for a job that
// does NOT use the MRapid submission framework: the client submits over RPC,
// the scheduler finds an AM container (with the stock scheduler this waits
// for a node heartbeat), the chosen NodeManager launches the AM JVM, and
// launched(app, container) fires once the AM process is up (its own
// initialization is charged by the caller).
func (rm *RM) SubmitApp(name string, amResource topology.Resource, launched func(*App, *Container)) *App {
	return rm.SubmitAppInQueue(name, "", amResource, launched)
}

// SubmitAppInQueue is SubmitApp for a tenant queue: the app (and therefore
// its AM container and every task container it asks for) is charged against
// the queue's capacity ceiling. An invalid queue panics, like NewAppInQueue:
// validation belongs at the submission boundary (ValidQueue).
func (rm *RM) SubmitAppInQueue(name, queue string, amResource topology.Resource, launched func(*App, *Container)) *App {
	if launched == nil {
		panic("yarn: SubmitApp needs a launch callback")
	}
	app := rm.NewAppInQueue(name, queue)
	ask := &Ask{App: app, Resource: amResource, Tag: "am"}
	ask.direct = func(c *Container) {
		rm.nms[c.Node].StartContainer(c, false, func() { launched(app, c) })
	}
	rm.Eng.After(rm.Params.RPCLatency, func() {
		ask.arrived = rm.Eng.Now()
		rm.Sched.OnAllocate(rm, app, []*Ask{ask})
	})
	return app
}

// ReleaseContainer returns a finished container's resources. The NM queues
// the release and the RM learns of it at the node's next heartbeat, exactly
// the lag stock Hadoop has. Releasing the same container again (an app kill
// racing the task's own completion) is a no-op.
func (rm *RM) ReleaseContainer(c *Container) {
	if c.released {
		return
	}
	c.released = true
	nm, ok := rm.nms[c.Node]
	if !ok {
		panic(fmt.Sprintf("yarn: release on unknown node %s", c.Node.Name))
	}
	nm.queueRelease(c)
}

// KillApp terminates an application: queued asks are dropped and all its
// live containers are released. Used by speculative execution to stop the
// losing mode.
func (rm *RM) KillApp(app *App) {
	if app.State == AppKilled || app.State == AppFinished {
		return
	}
	app.State = AppKilled
	rm.Metrics.AppsKilled++
	rm.Trace.Add("rm", "killed app %d (%s)", app.ID, app.Name)
	app.queued = nil
	app.granted = nil
	for _, c := range rm.liveOf(app) {
		rm.ReleaseContainer(c)
	}
}

// FinishApp marks an application complete and releases any straggler
// containers it still holds.
func (rm *RM) FinishApp(app *App) {
	if app.State == AppKilled || app.State == AppFinished {
		return
	}
	app.State = AppFinished
	for _, c := range rm.liveOf(app) {
		rm.ReleaseContainer(c)
	}
}

func (rm *RM) liveOf(app *App) []*Container {
	var out []*Container
	for _, c := range rm.live {
		if c.App == app {
			out = append(out, c)
		}
	}
	// Deterministic order.
	sortContainers(out)
	return out
}

// LiveContainers reports the number of currently allocated containers.
func (rm *RM) LiveContainers() int { return len(rm.live) }

// ContainersByNode counts the live containers on each worker node, keyed by
// node name — the per-node running-container gauge the flight recorder
// samples. Every tracked node appears, so an idle node reports 0 rather
// than vanishing from the series.
func (rm *RM) ContainersByNode() map[string]int {
	out := make(map[string]int, len(rm.trackers))
	for _, nt := range rm.trackers {
		out[nt.Node.Name] = 0
	}
	for _, c := range rm.live {
		out[c.Node.Name]++
	}
	return out
}

// PendingAsks reports the scheduler's queued-ask backlog: container
// requests accepted but not yet granted.
func (rm *RM) PendingAsks() int { return rm.Sched.Queued() }

func sortContainers(cs []*Container) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].ID < cs[j-1].ID; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
