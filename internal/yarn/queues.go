package yarn

import (
	"fmt"

	"mrapid/internal/topology"
)

// QueueConfig sizes one tenant queue as a fraction of cluster capacity.
// The paper's background section describes this CapacityScheduler feature:
// "allows multiple tenants to share a large cluster and allocate resources
// under constraints of specified capacities for each user."
type QueueConfig struct {
	Name     string
	Capacity float64 // fraction of cluster capacity, (0, 1]
}

// DefaultQueue is where apps land when no queue is named, or when queues
// are not configured at all.
const DefaultQueue = "default"

// queues tracks per-queue usage against configured capacity ceilings. This
// models hard capacities (CapacityScheduler with maximum-capacity equal to
// capacity); elastic over-capacity borrowing is out of scope for the
// paper's experiments, which run a single tenant.
type queues struct {
	capacity map[string]float64
	used     map[string]topology.Resource
}

// ConfigureQueues installs tenant queues on the RM. Capacities must each be
// in (0, 1] and sum to at most 1. Apps name their queue at creation;
// unknown queue names are rejected at submission time.
func (rm *RM) ConfigureQueues(configs []QueueConfig) error {
	if len(configs) == 0 {
		return fmt.Errorf("yarn: ConfigureQueues needs at least one queue")
	}
	capacity := make(map[string]float64, len(configs))
	var sum float64
	for _, c := range configs {
		if c.Name == "" {
			return fmt.Errorf("yarn: queue needs a name")
		}
		if c.Capacity <= 0 || c.Capacity > 1 {
			return fmt.Errorf("yarn: queue %q capacity %v outside (0,1]", c.Name, c.Capacity)
		}
		if _, dup := capacity[c.Name]; dup {
			return fmt.Errorf("yarn: duplicate queue %q", c.Name)
		}
		capacity[c.Name] = c.Capacity
		sum += c.Capacity
	}
	if sum > 1.0+1e-9 {
		return fmt.Errorf("yarn: queue capacities sum to %v > 1", sum)
	}
	rm.queues = &queues{capacity: capacity, used: make(map[string]topology.Resource)}
	return nil
}

// queueOf resolves an app's effective queue.
func queueOf(app *App) string {
	if app.Queue == "" {
		return DefaultQueue
	}
	return app.Queue
}

// QueueAllows reports whether granting r to the app would keep its queue
// within capacity. With no queues configured, everything is allowed.
func (rm *RM) QueueAllows(app *App, r topology.Resource) bool {
	if rm.queues == nil {
		return true
	}
	q := queueOf(app)
	frac, ok := rm.queues.capacity[q]
	if !ok {
		return false
	}
	total := rm.TotalCapacity()
	limit := topology.Resource{
		VCores:   int(float64(total.VCores) * frac),
		MemoryMB: int(float64(total.MemoryMB) * frac),
	}
	want := rm.queues.used[q].Add(r)
	return want.FitsIn(limit)
}

// QueueUsed reports a queue's current allocation.
func (rm *RM) QueueUsed(name string) topology.Resource {
	if rm.queues == nil {
		return topology.Resource{}
	}
	return rm.queues.used[name]
}

// chargeQueue and creditQueue keep per-queue accounting in step with
// grants and releases.
func (rm *RM) chargeQueue(app *App, r topology.Resource) {
	if rm.queues == nil {
		return
	}
	q := queueOf(app)
	rm.queues.used[q] = rm.queues.used[q].Add(r)
}

func (rm *RM) creditQueue(app *App, r topology.Resource) {
	if rm.queues == nil {
		return
	}
	q := queueOf(app)
	rm.queues.used[q] = rm.queues.used[q].Sub(r)
}

// ValidQueue reports whether the queue name is submittable.
func (rm *RM) ValidQueue(name string) bool {
	if rm.queues == nil {
		return name == "" || name == DefaultQueue
	}
	if name == "" {
		_, ok := rm.queues.capacity[DefaultQueue]
		return ok
	}
	_, ok := rm.queues.capacity[name]
	return ok
}
