package workloads

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"

	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
)

// TeraSampleSpec builds the MapReduce sampling job TeraSort can run instead
// of the client-side prefix sample: the map emits a deterministic subset of
// the row keys with a count of 1, and the combiner and reducer sum the
// counts into a compact key-frequency table (Hadoop's
// InputSampler.IntervalSampler run as a job). Summing sample counts is
// associative and commutative, so cross-task in-node combining is
// semantically valid here — the non-wordcount combiner coverage the shuffle
// service needs on the terasort path.
//
// every selects roughly one of each `every` keys. Selection hashes the key
// bytes instead of counting rows so it is stateless: map tasks may execute
// concurrently on the host (PR 1's worker pool), and a shared row counter
// would make the sample depend on execution order.
func TeraSampleSpec(name string, inputs []string, output string, every int) *mapreduce.JobSpec {
	if every < 1 {
		every = 1
	}
	return &mapreduce.JobSpec{
		Name:       name,
		JobKey:     "tera-sample",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: 1,
		Format:     mapreduce.FixedFormat{KeyLen: TeraKeyLen, ValLen: TeraValueLen},
		Map: func(key, _ []byte, emit mapreduce.Emit) {
			if every == 1 || fnv32(key)%uint32(every) == 0 {
				emit(key, one)
			}
		},
		Combine:    wordCountReduce,
		Reduce:     wordCountReduce,
		MapRate:    TeraSortMapRate,
		ReduceRate: GrepReduceRate,
	}
}

// fnv32 is the 32-bit FNV-1a hash, inlined to keep key selection
// allocation-free on the map hot path.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// CutPointsFromSample turns a TeraSampleSpec job's output into reduces-1
// total-order cut points at the weighted key quantiles: a key sampled n
// times carries weight n, so dense key ranges get proportionally more
// partitions.
func CutPointsFromSample(dfs *hdfs.DFS, sampleOutput string, reduces int) ([][]byte, error) {
	if reduces <= 1 {
		return nil, nil
	}
	data, err := dfs.Contents(mapreduce.PartFileName(sampleOutput, 0))
	if err != nil {
		return nil, err
	}
	type sample struct {
		key    []byte
		weight int64
	}
	var samples []sample
	var total int64
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, '\t')
		if i < 0 {
			return nil, fmt.Errorf("workloads: malformed sample line %q", line)
		}
		n, err := strconv.ParseInt(string(line[i+1:]), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("workloads: malformed sample count in %q", line)
		}
		samples = append(samples, sample{key: line[:i], weight: n})
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("workloads: sample job produced no keys")
	}
	// Reduce output is already key-sorted; assert rather than trust.
	if !sort.SliceIsSorted(samples, func(i, j int) bool {
		return bytes.Compare(samples[i].key, samples[j].key) < 0
	}) {
		return nil, fmt.Errorf("workloads: sample output not key-sorted")
	}
	cuts := make([][]byte, 0, reduces-1)
	var seen int64
	next := 1
	for _, s := range samples {
		seen += s.weight
		for next < reduces && seen > int64(next)*total/int64(reduces) {
			cuts = append(cuts, s.key)
			next++
		}
	}
	for next < reduces {
		// Degenerate tail (fewer distinct keys than partitions): repeat the
		// last key so the partitioner still has reduces-1 cut points.
		cuts = append(cuts, samples[len(samples)-1].key)
		next++
	}
	return cuts, nil
}

// TeraSortSpecFromCuts builds the TeraSort job around externally computed
// cut points — the shape used when the cut points come from a
// TeraSampleSpec job instead of the client-side prefix sample.
func TeraSortSpecFromCuts(name string, inputs []string, output string, reduces int, cuts [][]byte) *mapreduce.JobSpec {
	return &mapreduce.JobSpec{
		Name:       name,
		JobKey:     "terasort",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: reduces,
		Format:     mapreduce.FixedFormat{KeyLen: TeraKeyLen, ValLen: TeraValueLen},
		Map: func(key, value []byte, emit mapreduce.Emit) {
			emit(key, value)
		},
		Reduce: func(key []byte, values [][]byte, emit mapreduce.Emit) {
			for _, v := range values {
				emit(key, v)
			}
		},
		Partition:  totalOrderPartitioner(cuts),
		MapRate:    TeraSortMapRate,
		ReduceRate: TeraSortReduceRate,
	}
}
