package workloads

import (
	"bytes"
	"strings"
	"testing"

	"mrapid/internal/mapreduce"
)

func TestGrepSearchMapFiltersAndCounts(t *testing.T) {
	spec := GrepSearchSpec("g", []string{"/in"}, "/out", "err")
	var pairs []mapreduce.Pair
	mapreduce.LineFormat{}.Scan([]byte("error noise err again\nerrand clean\n"), func(k, v []byte) {
		spec.Map(k, v, func(key, val []byte) {
			pairs = append(pairs, mapreduce.Pair{Key: key, Value: val})
		})
	})
	got := map[string]int{}
	for _, p := range pairs {
		got[string(p.Key)]++
	}
	want := map[string]int{"error": 1, "err": 1, "errand": 1}
	if len(got) != len(want) {
		t.Fatalf("matches = %v", got)
	}
	for k := range want {
		if got[k] != 1 {
			t.Fatalf("missing match %q", k)
		}
	}
}

func TestGrepSortSpecOrdersDescending(t *testing.T) {
	spec := GrepSortSpec("gs", []string{"/x"}, "/out")
	// Feed it the search job's output format: word TAB count lines.
	input := []byte("apple\t3\nzebra\t10\nmid\t7\n")
	mo := mapreduce.ExecMap(spec, input)
	out := mapreduce.ExecReduce(spec, 0, []*mapreduce.MapOutput{mo})
	var counts []string
	var words []string
	for _, p := range out {
		counts = append(counts, string(p.Key))
		words = append(words, string(p.Value))
	}
	if strings.Join(words, ",") != "zebra,mid,apple" {
		t.Fatalf("order = %v (%v)", words, counts)
	}
}

func TestGrepEndToEndChained(t *testing.T) {
	d, c := testDFS(t)
	// Synthetic corpus with known pattern frequencies.
	text := bytes.Repeat([]byte("alpha beta request-a request-b request-a\nplain words here\n"), 500)
	d.PutInstant("/in/grep/part-0", text, c.Workers()[0])
	d.PutInstant("/in/grep/part-1", bytes.Repeat([]byte("request-c request-a\n"), 300), c.Workers()[1])

	// This unit test drives the two jobs' functions directly (the
	// submission-path integration is covered by the core/bench tests).
	search := GrepSearchSpec("gsearch", []string{"/in/grep/part-0", "/in/grep/part-1"}, "/grep/tmp", "request")
	var outputs []*mapreduce.MapOutput
	for _, f := range []string{"/in/grep/part-0", "/in/grep/part-1"} {
		data, _ := d.Contents(f)
		outputs = append(outputs, mapreduce.ExecMap(search, data))
	}
	searchOut := mapreduce.EncodePairs(mapreduce.ExecReduce(search, 0, outputs))
	d.PutInstant("/grep/tmp/part-00000", searchOut, c.Workers()[0])

	sortSpec := GrepSortSpec("gsort", []string{"/grep/tmp/part-00000"}, "/grep/out")
	data, _ := d.Contents("/grep/tmp/part-00000")
	sorted := mapreduce.ExecReduce(sortSpec, 0, []*mapreduce.MapOutput{mapreduce.ExecMap(sortSpec, data)})
	d.PutInstant("/grep/out/part-00000", mapreduce.EncodePairs(sorted), c.Workers()[0])

	matches, err := ParseGrepOutput(d, "/grep/out")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"request-a": 1300, "request-b": 500, "request-c": 300}
	if len(matches) != len(want) {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Word != "request-a" || matches[0].Count != 1300 {
		t.Fatalf("top match = %+v", matches[0])
	}
	for _, m := range matches {
		if want[m.Word] != m.Count {
			t.Fatalf("count[%s] = %d, want %d", m.Word, m.Count, want[m.Word])
		}
	}
}

func TestParseGrepOutputRejectsGarbage(t *testing.T) {
	d, c := testDFS(t)
	d.PutInstant("/bad/part-00000", []byte("notanumber\tword\n"), c.Workers()[0])
	if _, err := ParseGrepOutput(d, "/bad"); err == nil {
		t.Fatal("garbage accepted")
	}
	d.PutInstant("/asc/part-00000", []byte("1\ta\n5\tb\n"), c.Workers()[0])
	if _, err := ParseGrepOutput(d, "/asc"); err == nil {
		t.Fatal("ascending output accepted")
	}
}
